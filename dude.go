// Package dudetm is a Go reproduction of DudeTM (Liu et al., ASPLOS
// 2017): durable transactions for persistent memory built by decoupling
// each transaction into three asynchronous steps — Perform on a shadow
// DRAM mirror under an out-of-the-box transactional memory, Persist of
// the redo log to (simulated) NVM with a single fence per transaction
// group, and Reproduce of the logged updates into the persistent data.
//
// This package is the public facade. A Pool is a mounted persistent
// memory region; transactions read and write 8-byte words at pool
// addresses through a Tx:
//
//	pool, _ := dudetm.Create(dudetm.Options{})
//	tid, _ := pool.Update(0, func(tx *dudetm.Tx) error {
//	    tx.Store(pool.Root(0), 42)
//	    return nil
//	})
//	pool.WaitDurable(tid)
//
// Higher-level building blocks live in the internal packages and are
// re-exported where useful: a transactional heap allocator, hash table,
// and B+-tree (internal/memdb) run directly over *Tx.
//
// The NVM itself is simulated (internal/pmem): stores become durable
// only after explicit write-back and fencing, a crash discards
// everything else, and persist barriers stall for a configurable
// latency/bandwidth model — the same emulation methodology as the
// paper's evaluation.
package dudetm

import (
	"fmt"
	"os"
	"time"

	idudetm "dudetm/internal/dudetm"
	"dudetm/internal/memdb"
	"dudetm/internal/obs"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// Tx is a durable transaction handle: transactional Load/Store of
// 8-byte words at pool addresses, plus Abort. It satisfies the
// transaction context of the bundled data structures.
type Tx = idudetm.Tx

// TraceRecord is one lifecycle trace stamp (see Pool.TraceOf).
type TraceRecord = obs.Record

// StallReport is the watchdog's diagnostic dump for one pipeline stall
// episode (see Options.Watchdog).
type StallReport = idudetm.StallReport

// CrashReport is the post-crash forensic summary of a pool image: the
// durable frontier provable from the log region plus what the
// persistent flight recorder says the pipeline was doing when power
// failed (see Forensics and Stats().Recovery.Report).
type CrashReport = idudetm.CrashReport

// RecoveryStats instruments a recovery mount: per-phase wall times,
// replay volume, and the forensic report (see Stats().Recovery).
type RecoveryStats = idudetm.RecoveryStats

// Heap is the transactional allocator type usable inside transactions.
type Heap = memdb.Heap

// ReplSink receives every sealed persist group from the Persist
// coordinator when replication is enabled (implemented by the
// log-shipping sender in internal/repl).
type ReplSink = idudetm.ReplSink

// ReplQuorumStats is a snapshot of the replication quorum gate (see
// Stats().Repl).
type ReplQuorumStats = idudetm.ReplQuorumStats

// Entry is one redo-log entry (an 8-byte store at a pool address), the
// unit shipped groups are made of.
type Entry = redolog.Entry

// rootWords reserves the first page of the pool for application roots.
const rootWords = 512

// Options configures a Pool.
type Options struct {
	// DataSize is the persistent data region size (default 64 MiB).
	DataSize uint64
	// Threads is the number of concurrent Update/View callers; each
	// must pass a distinct slot in [0, Threads). Default 4.
	Threads int
	// Sync makes every transaction flush its own log and wait for
	// durability before returning (the DUDETM-Sync configuration).
	Sync bool
	// HTM runs Perform on the simulated hardware TM instead of the STM.
	HTM bool
	// GroupSize combines this many consecutive transactions into one
	// persist group (cross-transaction write combination).
	GroupSize int
	// Compress lz4-compresses persisted groups.
	Compress bool
	// PersistThreads is the Persist-stage worker count: sealed groups
	// are dealt round-robin to this many log writers (0 = default,
	// min(2, GOMAXPROCS) or DUDETM_STAGE_THREADS).
	PersistThreads int
	// ReproThreads is the Reproduce-stage applier count: large groups
	// are split by address shard and applied concurrently under one
	// persist barrier (0 = same default).
	ReproThreads int
	// ShadowBytes, when non-zero, uses a demand-paged shadow memory of
	// this size instead of a full mirror.
	ShadowBytes uint64
	// HWPaging selects simulated hardware paging for the paged shadow.
	HWPaging bool
	// TraceSampleEvery enables lifecycle tracing for every N-th
	// transaction: sampled transactions are stamped at commit,
	// group-seal, persist-fence and reproduce-apply (TraceOf
	// reconstructs the timeline) and feed the commit→durable /
	// commit→reproduced latency histograms in Stats().Obs. 1 traces
	// everything, 0 (default) disables per-transaction tracing;
	// per-group metrics are always recorded.
	TraceSampleEvery int
	// Watchdog, when non-zero, runs a stall watchdog sampling the
	// pipeline at this interval: a frontier with work queued behind it
	// that stops advancing (outside PausePersist/PauseReproduce) is
	// reported via OnStall, or to the standard logger when nil.
	Watchdog time.Duration
	// OnStall receives watchdog stall reports.
	OnStall func(StallReport)
	// BlackboxEntries sizes the persistent flight-recorder ring stamped
	// at pipeline milestones and decoded into the post-crash
	// CrashReport. 0 selects the default (1024 slots); negative
	// disables the recorder.
	BlackboxEntries int
	// ReplFactor is the number of peer replicas sealed persist groups
	// are shipped to (0 = replication off). The pool only gates on
	// acknowledgments; attach the transport with EnableReplication.
	ReplFactor int
	// ReplQuorum is how many replica acknowledgments a transaction
	// needs, beyond local durability, before WaitDurable releases it
	// (default: ReplFactor, i.e. wait for all replicas).
	ReplQuorum int
	// ReplDegradeLocal falls back to local-only durability (flagged in
	// metrics, never silent) when fewer than ReplQuorum replicas are
	// live, instead of failing waiters with ErrQuorumLost.
	ReplDegradeLocal bool
	// Timing enables the NVM delay model.
	Timing bool
	// Latency and Bandwidth parameterize the delay model (defaults:
	// 1000 cycles at 3.4 GHz and 1 GB/s, the paper's baseline).
	Latency   time.Duration
	Bandwidth float64
}

func (o Options) config() idudetm.Config {
	cfg := idudetm.Config{
		DataSize:         o.DataSize,
		Threads:          o.Threads,
		GroupSize:        o.GroupSize,
		Compress:         o.Compress,
		PersistThreads:   o.PersistThreads,
		ReproThreads:     o.ReproThreads,
		TraceSampleEvery: o.TraceSampleEvery,
		Watchdog:         o.Watchdog,
		OnStall:          o.OnStall,
		BlackboxEntries:  o.BlackboxEntries,
		ReplFactor:       o.ReplFactor,
		ReplQuorum:       o.ReplQuorum,
		ReplDegradeLocal: o.ReplDegradeLocal,
	}
	if cfg.Threads == 0 {
		cfg.Threads = 4
	}
	if o.Sync {
		cfg.Mode = idudetm.ModeSync
	}
	if o.HTM {
		cfg.Engine = idudetm.EngineHTM
	}
	if o.ShadowBytes != 0 {
		cfg.Shadow = idudetm.ShadowSW
		if o.HWPaging {
			cfg.Shadow = idudetm.ShadowHW
		}
		cfg.ShadowBytes = o.ShadowBytes
	}
	cfg.Pmem = pmem.Config{
		WriteLatency: o.Latency,
		Bandwidth:    o.Bandwidth,
		DelayEnabled: o.Timing,
	}
	if cfg.Pmem.WriteLatency == 0 {
		cfg.Pmem.WriteLatency = pmem.Latency1000
	}
	if cfg.Pmem.Bandwidth == 0 {
		cfg.Pmem.Bandwidth = pmem.GB
	}
	return cfg
}

// Pool is a mounted persistent memory pool.
type Pool struct {
	sys  *idudetm.System
	heap Heap
}

// Create initializes a fresh pool (simulated NVM included) and formats
// its heap.
func Create(o Options) (*Pool, error) {
	sys, err := idudetm.Create(o.config())
	if err != nil {
		return nil, err
	}
	p := newPool(sys)
	if _, err := p.Update(0, func(tx *Tx) error {
		p.heap.Format(tx)
		return nil
	}); err != nil {
		sys.Close()
		return nil, err
	}
	return p, nil
}

func newPool(sys *idudetm.System) *Pool {
	return &Pool{
		sys: sys,
		heap: Heap{
			Base: rootWords * 8,
			Size: sys.DataSize() - rootWords*8,
		},
	}
}

// OpenSnapshot mounts a pool from a snapshot taken by Snapshot or
// SaveImage, running crash recovery: the durable prefix of the redo logs
// is replayed and unacknowledged transactions are discarded.
func OpenSnapshot(img []byte, o Options) (*Pool, error) {
	dev := pmem.New(pmem.Config{
		Size:         uint64(len(img)),
		WriteLatency: o.Latency,
		Bandwidth:    o.Bandwidth,
		DelayEnabled: o.Timing,
	})
	dev.Restore(img)
	sys, err := idudetm.Recover(dev, o.config())
	if err != nil {
		return nil, err
	}
	return newPool(sys), nil
}

// OpenImage mounts a pool image file written by SaveImage.
func OpenImage(path string, o Options) (*Pool, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenSnapshot(img, o)
}

// Update runs fn as a read-write durable transaction on behalf of
// caller slot and returns its transaction ID. The transaction is
// guaranteed durable once WaitDurable(tid) returns (immediately at
// return in Sync mode). Conflicts retry transparently; returning an
// error or calling Abort rolls back.
func (p *Pool) Update(slot int, fn func(tx *Tx) error) (uint64, error) {
	return p.sys.Run(slot, fn)
}

// View runs fn as a transaction intended for reading. (Writes are not
// prevented — the underlying TM treats transactions uniformly — but a
// read-only fn commits without consuming a transaction ID.)
func (p *Pool) View(slot int, fn func(tx *Tx) error) error {
	_, err := p.sys.Run(slot, fn)
	return err
}

// Root returns the pool address of application root word i (512 words
// are reserved for roots, e.g. heads of application data structures).
func (p *Pool) Root(i int) uint64 {
	if i < 0 || i >= rootWords {
		panic(fmt.Sprintf("dudetm: root index %d out of range", i))
	}
	return uint64(i) * 8
}

// Heap returns the pool's transactional allocator.
func (p *Pool) Heap() Heap { return p.heap }

// Threads returns the pool's configured concurrency: valid Update/View
// slots are [0, Threads). Servers multiplexing many clients over the
// pool size their slot pool with this.
func (p *Pool) Threads() int { return p.sys.Threads() }

// Alloc allocates n bytes from the pool heap within tx.
func (p *Pool) Alloc(tx *Tx, n uint64) (uint64, error) { return p.heap.Alloc(tx, n) }

// Free releases an allocation within tx.
func (p *Pool) Free(tx *Tx, addr uint64) { p.heap.Free(tx, addr) }

// Errors returned by durability waiters when the pool dies before the
// waited-for transaction becomes durable.
var (
	// ErrCrashed: a simulated power failure (Crash) discarded the
	// transaction before its log group was persisted.
	ErrCrashed = idudetm.ErrCrashed
	// ErrClosed: the pool was closed while the waiter was subscribed
	// for an ID the pipeline will never reach.
	ErrClosed = idudetm.ErrClosed
	// ErrQuorumLost: fewer than ReplQuorum replicas were live while the
	// waited-for transaction was beyond the quorum-acked frontier (the
	// transaction IS locally durable; the replication guarantee is what
	// failed). Only returned when ReplDegradeLocal is false.
	ErrQuorumLost = idudetm.ErrQuorumLost
	// ErrReplGap: a group offered to IngestGroup does not extend the
	// replica's dense transaction-ID stream.
	ErrReplGap = idudetm.ErrReplGap
)

// WaitDurable blocks until the transaction with the given ID is durable
// and returns nil. If the pool crashes or closes first, it returns
// ErrCrashed or ErrClosed instead of hanging — a waiter can never be
// stranded on an ID the durable frontier will not reach.
func (p *Pool) WaitDurable(tid uint64) error { return p.sys.WaitDurable(tid) }

// WaitDurableChan subscribes to the durability of one transaction: the
// returned channel receives nil once the durable ID reaches tid, or
// ErrCrashed/ErrClosed if the pool dies first. The channel is buffered
// and receives exactly one value; callers may select on it or abandon
// it freely.
func (p *Pool) WaitDurableChan(tid uint64) <-chan error {
	return p.sys.WaitDurableChan(tid)
}

// DurableUpdates subscribes to durable-frontier advances. The channel
// carries the most recent durable transaction ID after every advance
// (coalesced: a slow consumer observes the latest value, never a
// backlog) and is closed when the pool crashes or closes or cancel is
// called. A server's group-commit acknowledgment loop watches this: a
// single advance — one persist fence — acknowledges every client
// transaction whose ID it passed.
func (p *Pool) DurableUpdates() (<-chan uint64, func()) {
	return p.sys.DurableUpdates()
}

// Crash simulates a power failure and tears the pool down: the pipeline
// halts where it is, unpersisted cache lines are discarded, and the
// durable device image is returned for remounting with OpenSnapshot.
// All Update/View calls must have returned and the pipeline stages must
// not be left paused. Concurrent WaitDurable callers are unblocked;
// those whose transactions never became durable get ErrCrashed —
// exactly the transactions recovery will discard.
func (p *Pool) Crash() []byte { return p.sys.Crash() }

// Durable returns the global durable transaction ID.
func (p *Pool) Durable() uint64 { return p.sys.Durable() }

// AckFrontier returns the durability frontier WaitDurable gates on:
// the local durable frontier, additionally capped by the quorum-acked
// replica frontier when replication is enabled. Servers acknowledge
// clients from this, never from Durable.
func (p *Pool) AckFrontier() uint64 { return p.sys.AckFrontier() }

// EnableReplication attaches a replication sink (the log-shipping
// sender) and the quorum gate to a fresh pool: every sealed persist
// group is handed to sink in dense transaction-ID order, and
// WaitDurable releases a transaction only once Options.ReplQuorum of
// the named peers acked a frontier covering it.
func (p *Pool) EnableReplication(sink ReplSink, peers []string) error {
	return p.sys.EnableReplication(sink, peers)
}

// ReplicaAcked records a replica's durable frontier (monotonic per
// peer — a reconnect re-acking an older frontier never moves the
// quorum frontier backward).
func (p *Pool) ReplicaAcked(peer string, frontier uint64) { p.sys.ReplicaAcked(peer, frontier) }

// ReplicaLive records a replica connecting or dying; quorum loss is
// surfaced through Stats().Repl and either ErrQuorumLost waiters or
// the flagged local-only fallback.
func (p *Pool) ReplicaLive(peer string, live bool) { p.sys.ReplicaLive(peer, live) }

// ReplicaGroupSent stamps a group's frame fully written to a peer's
// socket (the sender's optional tracing surface; peer is the index
// into its peer list).
func (p *Pool) ReplicaGroupSent(peer int, minTid, maxTid uint64) {
	p.sys.ReplicaGroupSent(peer, minTid, maxTid)
}

// ReplicaGroupAcked stamps a replica's group acknowledgment carrying
// its self-measured ingest duration, extending sampled transactions'
// timelines across nodes (see Pool.CritpathOf).
func (p *Pool) ReplicaGroupAcked(peer int, minTid, maxTid uint64, ingestNanos int64) {
	p.sys.ReplicaGroupAcked(peer, minTid, maxTid, ingestNanos)
}

// ReplStats returns a snapshot of the replication quorum gate.
func (p *Pool) ReplStats() ReplQuorumStats { return p.sys.ReplStats() }

// IngestGroup fences one replicated group into this (replica) pool,
// advancing its durable frontier and feeding Reproduce — the replica
// half of log shipping. Groups must extend the dense tid stream;
// catch-up duplicates are skipped idempotently. Ingest must stop
// before the pool is closed or crashed.
func (p *Pool) IngestGroup(minTid, maxTid uint64, entries []Entry) error {
	return p.sys.IngestGroup(minTid, maxTid, entries)
}

// Reproduced returns the largest transaction ID already applied to
// persistent data.
func (p *Pool) Reproduced() uint64 { return p.sys.Reproduced() }

// Stats returns pipeline and device statistics.
func (p *Pool) Stats() idudetm.Stats { return p.sys.Stats() }

// AuditRecovery cross-checks an ID that was acknowledged as durable
// before a crash against this recovered pool: it returns nil when the
// recovered durable frontier covers the ID, and an error carrying the
// forensic crash report when the durability contract was broken.
func (p *Pool) AuditRecovery(ackedTid uint64) error { return p.sys.AuditRecovery(ackedTid) }

// Forensics decodes a pool image (a Snapshot, a Crash image, or a file
// read from disk) into a CrashReport without mounting it: the durable
// frontier recomputed from the logs, sealed-but-unpersisted groups,
// in-flight persist barriers, torn-record counts and the surviving
// flight-recorder event tail.
func Forensics(img []byte) (*CrashReport, error) {
	dev := pmem.New(pmem.Config{Size: uint64(len(img))})
	dev.Restore(img)
	return idudetm.Forensics(dev)
}

// TraceOf reconstructs the lifecycle timeline of a sampled transaction
// (Options.TraceSampleEvery): commit → group-seal → persist-fence →
// reproduce-apply, ordered by timestamp. Transactions old enough to
// have been overwritten in the trace rings return a partial or empty
// timeline.
func (p *Pool) TraceOf(tid uint64) []TraceRecord { return p.sys.TraceOf(tid) }

// TraceTail returns the most recent n trace records across the pool's
// trace rings (all of them when n <= 0), oldest first.
func (p *Pool) TraceTail(n int) []TraceRecord { return p.sys.TraceTail(n) }

// Critpath is one sampled transaction's critical-path decomposition:
// the commit→acknowledged window tiled into named segments whose sum
// equals the measured end-to-end latency exactly (see Pool.CritpathOf).
type Critpath = obs.Critpath

// CritSegment names one critical-path segment (ring_dwell, seal_wait,
// persist_fence, repl_ship, quorum_wait, notify).
type CritSegment = obs.CritSegment

// CritpathOf decomposes a sampled transaction's commit→acknowledged
// latency into critical-path segments from the live trace rings. ok is
// false when the timeline is incomplete: the transaction was not
// sampled, its records were overwritten, or it is not yet quorum-acked.
func (p *Pool) CritpathOf(tid uint64) (Critpath, bool) { return p.sys.CritpathOf(tid) }

// LastStall returns the most recent watchdog stall report, or nil.
func (p *Pool) LastStall() *StallReport { return p.sys.LastStall() }

// PausePersist freezes the Persist step (transactions keep committing
// but stop becoming durable) — for crash drills and tests.
func (p *Pool) PausePersist() { p.sys.PausePersist() }

// ResumePersist releases PausePersist.
func (p *Pool) ResumePersist() { p.sys.ResumePersist() }

// PauseReproduce freezes the Reproduce step (transactions become
// durable in the log but are not applied to persistent data).
func (p *Pool) PauseReproduce() { p.sys.PauseReproduce() }

// ResumeReproduce releases PauseReproduce.
func (p *Pool) ResumeReproduce() { p.sys.ResumeReproduce() }

// Snapshot returns the durable contents of the simulated NVM — exactly
// what a power failure at this instant would leave behind. Callers must
// ensure the pool is quiescent: either Close it first, or stop issuing
// transactions and pause both pipeline stages (PausePersist and
// PauseReproduce block until their stage is idle) for a mid-pipeline
// snapshot.
func (p *Pool) Snapshot() []byte { return p.sys.Device().PersistedImage() }

// SaveImage writes Snapshot to a file (readable by OpenImage and the
// dudectl tool).
func (p *Pool) SaveImage(path string) error {
	return os.WriteFile(path, p.Snapshot(), 0o644)
}

// Close drains the pipeline and stops the pool. All Update/View calls
// must have returned.
func (p *Pool) Close() { p.sys.Close() }
