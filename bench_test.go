// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per table/figure. These run each configuration at
// benchmark scale on one Perform thread for stable per-op numbers; the
// full multi-threaded sweeps with formatted output are produced by
// cmd/dudebench (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
package dudetm_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	idudetm "dudetm/internal/dudetm"
	"dudetm/internal/harness"
	"dudetm/internal/pmem"
	"dudetm/internal/workload/tatp"
	"dudetm/internal/workload/tpcc"
)

// benchLoop sets up kind/bench and drives b.N transactions on slot 0.
func benchLoop(b *testing.B, kind harness.SysKind, bench harness.Bench, o harness.Options) {
	b.Helper()
	o.DelaysOn = true
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.DataSize < bench.DataSize() {
		o.DataSize = bench.DataSize()
	}
	sys, err := harness.NewSystem(kind, o)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := bench.Setup(sys); err != nil {
		b.Fatal(err)
	}
	nvmlB, _ := bench.(harness.NVMLBench)
	nvmlS, isNVML := sys.(*harness.NVMLSys)
	rng := rand.New(rand.NewSource(1))
	before := sys.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if isNVML {
			err = nvmlB.OpNVML(nvmlS, 0, rng)
		} else {
			_, err = bench.Op(sys, 0, rng)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := sys.Stats()
	if w := after.Writes - before.Writes; w > 0 {
		b.ReportMetric(float64(w)/float64(b.N), "writes/tx")
	}
	if nb := after.NVMBytes - before.NVMBytes; nb > 0 {
		b.ReportMetric(float64(nb)/float64(b.N), "NVM-B/tx")
	}
}

func fig2Benches() map[string]func() harness.Bench {
	return map[string]func() harness.Bench{
		"BTree":      func() harness.Bench { return harness.NewBTreeBench() },
		"TPCC-BTree": func() harness.Bench { return harness.NewTPCCBench(tpcc.BTreeStorage) },
		"TATP-BTree": func() harness.Bench { return harness.NewTATPBench(tatp.BTreeStorage) },
		"HashTable":  func() harness.Bench { return harness.NewHashBench() },
		"TPCC-Hash":  func() harness.Bench { return harness.NewTPCCBench(tpcc.HashStorage) },
		"TATP-Hash":  func() harness.Bench { return harness.NewTATPBench(tatp.HashStorage) },
	}
}

// BenchmarkFig2 measures the Figure 2 systems at the 1 GB/s baseline.
func BenchmarkFig2(b *testing.B) {
	for name, mk := range fig2Benches() {
		for _, kind := range []harness.SysKind{
			harness.VolatileSTM, harness.DudeSTM, harness.DudeInf, harness.DudeSync,
		} {
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				benchLoop(b, kind, mk(), harness.Options{})
			})
		}
	}
}

// BenchmarkTable1 measures DUDETM on every benchmark, reporting the
// writes-per-transaction column of Table 1 as a metric.
func BenchmarkTable1(b *testing.B) {
	for name, mk := range fig2Benches() {
		b.Run(name, func(b *testing.B) {
			benchLoop(b, harness.DudeSTM, mk(), harness.Options{})
		})
	}
}

// BenchmarkTable2 compares DUDETM against DUDETM-Sync, Mnemosyne and
// NVML (hash benchmarks only for NVML, as in the paper).
func BenchmarkTable2(b *testing.B) {
	for name, mk := range fig2Benches() {
		for _, kind := range []harness.SysKind{
			harness.DudeSTM, harness.DudeSync, harness.Mnemosyne, harness.NVML,
		} {
			if kind == harness.NVML {
				switch name {
				case "HashTable", "TPCC-Hash", "TATP-Hash":
				default:
					continue
				}
			}
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				benchLoop(b, kind, mk(), harness.Options{})
			})
		}
	}
}

// BenchmarkTable3 measures durable-acknowledgement latency on hash-based
// TPC-C: every transaction waits for durability, so ns/op is the mean
// durable latency per system.
func BenchmarkTable3(b *testing.B) {
	for _, kind := range []harness.SysKind{
		harness.DudeSTM, harness.DudeSync, harness.Mnemosyne, harness.NVML,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			var bench harness.Bench = harness.NewTPCCBench(tpcc.HashStorage)
			o := harness.Options{Threads: 1, DelaysOn: true, DataSize: bench.DataSize()}
			sys, err := harness.NewSystem(kind, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := bench.Setup(sys); err != nil {
				b.Fatal(err)
			}
			nvmlB, _ := bench.(harness.NVMLBench)
			nvmlS, isNVML := sys.(*harness.NVMLSys)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if isNVML {
					if err := nvmlB.OpNVML(nvmlS, 0, rng); err != nil {
						b.Fatal(err)
					}
					continue
				}
				tid, err := bench.Op(sys, 0, rng)
				if err != nil {
					b.Fatal(err)
				}
				sys.WaitDurable(tid)
			}
		})
	}
}

// BenchmarkFig3 sweeps the persist group size of the log-combination
// optimization on YCSB; the NVM-B/tx metric is the Figure 3 signal.
func BenchmarkFig3(b *testing.B) {
	for _, group := range []int{1, 10, 100, 1000, 10000} {
		for _, compress := range []bool{false, true} {
			name := fmt.Sprintf("group=%d/lz4=%v", group, compress)
			b.Run(name, func(b *testing.B) {
				benchLoop(b, harness.DudeSTM, harness.NewYCSBBench(), harness.Options{
					GroupSize: group,
					Compress:  compress,
				})
			})
		}
	}
}

// BenchmarkFig4 sweeps the shadow-memory size for software and
// simulated-hardware paging on the KV update workload.
func BenchmarkFig4(b *testing.B) {
	for _, theta := range []float64{0.99, 1.07} {
		for _, mode := range []struct {
			name string
			kind idudetm.ShadowKind
		}{{"sw", idudetm.ShadowSW}, {"hw", idudetm.ShadowHW}} {
			for _, mb := range []uint64{3, 12, 48} {
				name := fmt.Sprintf("zipf=%.2f/%s/%dMB", theta, mode.name, mb)
				b.Run(name, func(b *testing.B) {
					benchLoop(b, harness.DudeSTM, harness.NewKVUpdateBench(theta), harness.Options{
						Shadow:      mode.kind,
						ShadowBytes: mb << 20,
					})
				})
			}
		}
	}
}

// BenchmarkFig5 measures TPC-C (B+-tree) at 1, 2 and 4 threads.
func BenchmarkFig5(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			bench := harness.NewTPCCBench(tpcc.BTreeStorage)
			o := harness.Options{Threads: threads, DelaysOn: true, DataSize: bench.DataSize()}
			sys, err := harness.NewSystem(harness.DudeSTM, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := bench.Setup(sys); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// Explicit workers: each engine slot must have exactly one
			// goroutine (testing.B's RunParallel spawns GOMAXPROCS
			// workers regardless of the thread count under test).
			var wg sync.WaitGroup
			per := b.N / threads
			for s := 0; s < threads; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(s) + 9))
					for i := 0; i < per; i++ {
						if _, err := bench.Op(sys, s, rng); err != nil {
							b.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
		})
	}
}

// BenchmarkTable4 compares STM- and HTM-based DudeTM with their
// volatile upper bounds.
func BenchmarkTable4(b *testing.B) {
	benches := map[string]func() harness.Bench{
		"BTree":      func() harness.Bench { return harness.NewBTreeBench() },
		"HashTable":  func() harness.Bench { return harness.NewHashBench() },
		"TATP-BTree": func() harness.Bench { return harness.NewTATPBench(tatp.BTreeStorage) },
	}
	for name, mk := range benches {
		for _, kind := range []harness.SysKind{
			harness.VolatileSTM, harness.DudeSTM, harness.VolatileHTM, harness.DudeHTM,
		} {
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				benchLoop(b, kind, mk(), harness.Options{})
			})
		}
	}
}

// BenchmarkAblationGroupLatency shows the combination trade-off the
// paper discusses in §5.4: larger persist groups cut NVM writes but
// stretch durable latency (ns/op here includes the durability wait).
func BenchmarkAblationGroupLatency(b *testing.B) {
	for _, group := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("group=%d", group), func(b *testing.B) {
			bench := harness.NewYCSBBench()
			o := harness.Options{
				Threads: 1, DelaysOn: true, GroupSize: group,
				DataSize: bench.DataSize(),
			}
			sys, err := harness.NewSystem(harness.DudeSTM, o)
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			if err := bench.Setup(sys); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tid, err := bench.Op(sys, 0, rng)
				if err != nil {
					b.Fatal(err)
				}
				sys.WaitDurable(tid)
			}
		})
	}
}

// BenchmarkAblationVLogCapacity shows Perform back-pressure when the
// volatile log buffer is small and the NVM is slow — the blocking the
// DUDETM-Inf configuration removes.
func BenchmarkAblationVLogCapacity(b *testing.B) {
	for _, entries := range []int{1 << 10, 1 << 16, 1 << 20} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			benchLoop(b, harness.DudeSTM, harness.NewHashBench(), harness.Options{
				VLogEntries: entries,
				Bandwidth:   0.25 * pmem.GB, // slow NVM to expose the bound
			})
		})
	}
}

// BenchmarkAblationLatencyModel sweeps the modeled NVM persist latency
// for the synchronous design, showing why decoupling matters as
// latency grows (compare DudeSync across rows with BenchmarkFig2's
// DudeSTM numbers).
func BenchmarkAblationLatencyModel(b *testing.B) {
	for _, lat := range []time.Duration{pmem.Latency1000, pmem.Latency3500} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			benchLoop(b, harness.DudeSync, harness.NewTATPBench(tatp.HashStorage), harness.Options{
				Latency: lat,
			})
		})
	}
}

// BenchmarkPipeline measures the parallel background pipeline on the
// hot-set zipfian KV-update workload (harness.PipelineBench /
// harness.PipelineOptions — the same configuration dudebench's pipeline
// experiment runs), sweeping the replay-epoch group cap (epoch=1 is
// per-group replay, the pre-epoch behavior) plus one Compress=true row
// exercising the lz4 group path. Each iteration is a fixed-size
// fully-drained run, so ns/op compares end-to-end pipeline completion
// across epoch settings; every run is also recorded to
// BENCH_pipeline.json (same schema as dudebench -json) with the stage
// busy/fence counters, the epoch coalescing counters and the per-stage
// utilizations. The final iteration of each row asserts the epoch
// economy itself: at the largest epoch the replay fences must drop
// roughly by the epoch factor, Reproduce busy time must at least halve
// against the epoch=1 baseline, and Reproduce utilization must fall
// below Persist's. On a single-core host the busy comparison is
// wall-clock noisy, but the deterministic write-back stalls of the
// constrained-bandwidth timing model anchor it.
func BenchmarkPipeline(b *testing.B) {
	harness.StartRecording()
	harness.SetExperiment("pipeline")
	var base harness.Result // epoch=1 row, the amortization baseline
	run := func(b *testing.B, epoch int, compress bool) harness.Result {
		var res harness.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = harness.Run(harness.DudeSTM, harness.PipelineBench(),
				harness.PipelineOptions(2, epoch, compress),
				harness.MeasureOpts{TotalOps: 30000, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TPS, "tps")
			if res.Stats.PersistBusyNS == 0 || res.Stats.ReproBusyNS == 0 {
				b.Fatalf("stage utilization counters idle: %+v", res.Stats)
			}
			if epoch > 1 && res.Stats.ReproEpochs == 0 {
				b.Fatalf("epoch=%d but no replay epochs formed: %+v", epoch, res.Stats)
			}
		}
		return res
	}
	for _, epoch := range []int{1, 4, 64} {
		b.Run(fmt.Sprintf("epoch=%d", epoch), func(b *testing.B) {
			res := run(b, epoch, false)
			switch epoch {
			case 1:
				base = res
			case 64:
				if base.Stats.ReproFences > 0 && res.Stats.ReproFences > base.Stats.ReproFences/16 {
					b.Errorf("repro fences %d not amortized vs epoch=1 baseline %d",
						res.Stats.ReproFences, base.Stats.ReproFences)
				}
				if base.Stats.ReproBusyNS > 0 && res.Stats.ReproBusyNS > base.Stats.ReproBusyNS/2 {
					b.Errorf("repro busy %v not halved vs epoch=1 baseline %v",
						time.Duration(res.Stats.ReproBusyNS), time.Duration(base.Stats.ReproBusyNS))
				}
				if res.Stats.ReproUtil >= res.Stats.PersistUtil {
					b.Errorf("repro utilization %.2f not below persist %.2f",
						res.Stats.ReproUtil, res.Stats.PersistUtil)
				}
			}
		})
	}
	b.Run("epoch=64/lz4", func(b *testing.B) { run(b, 64, true) })
	f, err := os.Create("BENCH_pipeline.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := harness.WriteJSON(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkObs sweeps the observability layer's sampling period on the
// pipeline workload: tracing off, 1-in-64, and every transaction. The
// tps metric across the three rows is the tracing overhead signal (off
// vs. 1-in-64 should be within noise; the obs package's alloc tests pin
// the disabled hot path at zero allocations). Runs are recorded to
// BENCH_obs.json with the dur_p50/p99/p999 latency quantiles filled.
func BenchmarkObs(b *testing.B) {
	harness.StartRecording()
	harness.SetExperiment("obs")
	for _, sample := range []int{-1, 64, 1} {
		name := fmt.Sprintf("sample=%d", sample)
		if sample < 0 {
			name = "sample=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.DudeSTM, harness.NewHashBench(), harness.Options{
					Threads:          2,
					GroupSize:        64,
					PersistThreads:   2,
					ReproThreads:     2,
					TraceSampleEvery: sample,
				}, harness.MeasureOpts{TotalOps: 30000, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TPS, "tps")
				ob := res.Stats.Obs
				if sample > 0 && (ob.SampledCommits == 0 || ob.CommitDurable.Count == 0) {
					b.Fatalf("sampling 1-in-%d recorded nothing: %+v", sample, ob)
				}
				if sample < 0 && ob.SampledCommits != 0 {
					b.Fatalf("tracing off but %d commits sampled", ob.SampledCommits)
				}
			}
		})
	}
	f, err := os.Create("BENCH_obs.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := harness.WriteJSON(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBlackbox sweeps the persistent flight recorder on the
// pipeline workload: recorder disabled vs. the default ring. The tps
// metric across the two rows is the steady-state recording overhead
// signal — stamps ride the pipeline's existing persist barriers
// (TestBlackboxFenceBudget pins the fence budget and the blackbox
// package's alloc test pins the stamp path at zero allocations), so on
// vs. off should be within noise. Runs are recorded to
// BENCH_blackbox.json (same schema as dudebench -json); the off row
// comes first.
func BenchmarkBlackbox(b *testing.B) {
	harness.StartRecording()
	harness.SetExperiment("blackbox")
	for _, entries := range []int{-1, 0} {
		name := "ring=1024"
		if entries < 0 {
			name = "ring=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.DudeSTM, harness.NewHashBench(), harness.Options{
					Threads:         2,
					GroupSize:       64,
					PersistThreads:  2,
					ReproThreads:    2,
					BlackboxEntries: entries,
				}, harness.MeasureOpts{TotalOps: 30000, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.TPS, "tps")
			}
		})
	}
	f, err := os.Create("BENCH_blackbox.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := harness.WriteJSON(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExtensionMixes measures the full TPC-C and TATP transaction
// blends (repository extensions beyond the paper's single-transaction
// workloads) under DUDETM and its synchronous variant.
func BenchmarkExtensionMixes(b *testing.B) {
	benches := map[string]func() harness.Bench{
		"TPCCMix-BTree": func() harness.Bench { return harness.NewTPCCMixBench(tpcc.BTreeStorage) },
		"TATPMix-Hash":  func() harness.Bench { return harness.NewTATPMixBench(tatp.HashStorage) },
	}
	for name, mk := range benches {
		for _, kind := range []harness.SysKind{harness.DudeSTM, harness.DudeSync} {
			b.Run(fmt.Sprintf("%s/%s", name, kind), func(b *testing.B) {
				benchLoop(b, kind, mk(), harness.Options{})
			})
		}
	}
}
