#!/usr/bin/env bash
# Tier-1 verification for this repository: build, vet, the dudelint
# persist-ordering/concurrency suite, the full test suite, and the race
# detector over the pipeline-critical packages. CI and pre-merge checks
# run exactly this script; it must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
go build ./cmd/dudesrv

echo "== go vet"
go vet ./...

echo "== dudelint"
go run ./cmd/dudelint ./...

echo "== go test"
go test ./...

echo "== go test -race (stm, redolog, dudetm, server)"
go test -race ./internal/stm ./internal/redolog ./internal/dudetm ./internal/server

echo "ok: all tier-1 checks passed"
