#!/usr/bin/env bash
# Tier-1 verification for this repository: build, vet, the dudelint
# persist-ordering/concurrency suite, the full test suite, and the race
# detector over the pipeline-critical packages. CI and pre-merge checks
# run exactly this script; it must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
go build ./cmd/dudesrv

echo "== go vet"
go vet ./...

echo "== dudelint"
go run ./cmd/dudelint ./...

echo "== dudelint -json (schema + per-analyzer counts)"
# Hold the machine-readable report to its contract: it parses, carries
# the schema version CI consumers pin against, and zero-fills a count
# for every analyzer (so a check silently disappearing is loud).
go run ./cmd/dudelint -json ./... >/tmp/dudelint.check.json
python3 - <<'EOF'
import json, sys
rep = json.load(open("/tmp/dudelint.check.json"))
if rep.get("schema") != 1:
    sys.exit(f"dudelint -json schema {rep.get('schema')!r}, want 1")
counts = rep.get("counts")
if not isinstance(counts, dict) or not counts:
    sys.exit("dudelint -json lacks per-analyzer counts")
for name in ("persistorder", "fencepair", "fencebudget", "noalloc", "unlockpath"):
    if name not in counts:
        sys.exit(f"dudelint -json counts lack analyzer {name!r}")
if not isinstance(rep.get("diagnostics"), list):
    sys.exit("dudelint -json diagnostics is not a list")
summary = ", ".join(f"{k} {v}" for k, v in sorted(counts.items()))
print(f"dudelint report: schema {rep['schema']}, {rep['suppressed']} suppressed; {summary}")
EOF
rm -f /tmp/dudelint.check.json

echo "== go test"
go test ./...

echo "== go test -race (stm, redolog, dudetm, server, obs, repl; 4 stage threads)"
# DUDETM_STAGE_THREADS=4 forces the parallel Persist/Reproduce paths in
# every test that does not pin its own worker counts, and
# DUDETM_TRACE_SAMPLE=4 turns the lifecycle tracer on underneath them,
# so the race pass exercises the sharded pipeline with trace stamps and
# stat scrapes racing it — not the single-worker, tracing-off
# degenerate case. internal/obs rides along for the concurrent
# histogram-merge and trace-ring reader tests; internal/repl because
# its sender/receiver goroutines race real TCP reconnects.
DUDETM_STAGE_THREADS=4 DUDETM_TRACE_SAMPLE=4 go test -race -count=1 ./internal/stm ./internal/redolog ./internal/dudetm ./internal/server ./internal/obs ./internal/repl

echo "== dudebench -list (experiment registry)"
# The registry is scriptable surface: stable order, one line per
# experiment. The observability experiments must stay registered.
go run ./cmd/dudebench -list | tee /tmp/dudebench.list.txt
grep -q '^loadcurve ' /tmp/dudebench.list.txt || { echo "dudebench -list lost the loadcurve experiment"; exit 1; }
grep -q '^critpath ' /tmp/dudebench.list.txt || { echo "dudebench -list lost the critpath experiment"; exit 1; }
rm -f /tmp/dudebench.list.txt

echo "== dudebench smoke (stage utilization counters)"
# Fails if the persist or reproduce utilization counters stay zero — a
# regression that routed work around the worker pools.
go run ./cmd/dudebench -experiment smoke -quick

echo "== dudesrv /metrics smoke (live scrape gate)"
# Boot a real dudesrv with the observability endpoint, drive load
# through the wire protocol, then hold the endpoint to its contract:
# dudectl top -check fails on any missing or non-finite required series
# (frontier gauges, per-stage utilization, durability quantiles).
SRV_ADDR=127.0.0.1:17070
MET_ADDR=127.0.0.1:17071
go build -o /tmp/dudesrv.check ./cmd/dudesrv
go build -o /tmp/dudectl.check ./cmd/dudectl
/tmp/dudesrv.check -addr "$SRV_ADDR" -metrics "$MET_ADDR" -trace-sample 8 \
    >/tmp/dudesrv.check.log 2>&1 &
SRV_PID=$!
trap 'kill "$SRV_PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
    if /tmp/dudectl.check top -addr "$MET_ADDR" -check >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "dudesrv metrics endpoint never came up"; cat /tmp/dudesrv.check.log; exit 1; fi
    sleep 0.1
done
go run ./examples/netbank -addr "$SRV_ADDR" >/dev/null
/tmp/dudectl.check top -addr "$MET_ADDR" -n 1
/tmp/dudectl.check top -addr "$MET_ADDR" -check

echo "== metrics/docs consistency (live /metrics vs DESIGN.md inventory)"
# The "Metrics inventory" section of DESIGN.md is a checked contract:
# every dudetm_*/dudesrv_* family the live endpoint exports must be
# documented there, and every family documented there must still be
# exported. Catches both undocumented additions and stale docs.
curl -fsS "http://$MET_ADDR/metrics" >/tmp/dude.check.metrics.txt
python3 - <<'EOF'
import re, sys
live = set()
for line in open("/tmp/dude.check.metrics.txt"):
    m = re.match(r"# TYPE ((?:dudetm|dudesrv)_[a-z0-9_]+) ", line)
    if m:
        live.add(m.group(1))
design = open("DESIGN.md").read()
m = re.search(r"^## Metrics inventory$(.*?)^## ", design, re.S | re.M)
if not m:
    sys.exit("DESIGN.md lacks a '## Metrics inventory' section")
documented = set(re.findall(r"`((?:dudetm|dudesrv)_[a-z0-9_]+)`", m.group(1)))
undocumented = sorted(live - documented)
stale = sorted(documented - live)
if undocumented:
    sys.exit(f"exported but missing from DESIGN.md metrics inventory: {undocumented}")
if stale:
    sys.exit(f"in DESIGN.md metrics inventory but not exported: {stale}")
print(f"metrics/docs consistency: {len(live)} families documented and exported")
EOF
rm -f /tmp/dude.check.metrics.txt

kill -TERM "$SRV_PID"
wait "$SRV_PID"
trap - EXIT

echo "== open-loop load curve smoke (SLO gate + artifact check)"
# Two offered-load points bracketing the calibrated capacity: the
# experiment itself fails on any SLO violation, and dudectl loadcurve
# -check holds the written artifact to its schema — at least two points,
# every series present and finite, knee metadata consistent.
LC_JSON=/tmp/dude.check.loadcurve.json
rm -f "$LC_JSON"
go run ./cmd/dudebench -experiment loadcurve -quick -loadcurve-points 2 \
    -loadcurve-out "$LC_JSON"
test -s "$LC_JSON" || { echo "loadcurve smoke wrote no report"; exit 1; }
/tmp/dudectl.check loadcurve -check "$LC_JSON"
rm -f "$LC_JSON"

echo "== crash forensics gate (netbank drill + dudectl forensics)"
# Run the netbank kill -9 drill (which itself audits recovery with
# AuditRecovery), keep its pre-recovery crash image, and hold the
# forensic decoder to its contract: the report pretty-prints, the -json
# form parses, and its durable frontier exactly matches what recovery
# restores from the same image (-verify recovers a scratch copy and
# compares).
CRASH_IMG=/tmp/dude.check.crash.img
rm -f "$CRASH_IMG"
go run ./examples/netbank -crash-image "$CRASH_IMG" >/dev/null
test -s "$CRASH_IMG" || { echo "netbank drill wrote no crash image"; exit 1; }
/tmp/dudectl.check forensics "$CRASH_IMG" | grep -q "log frontier" \
    || { echo "forensics report missing the frontier line"; exit 1; }
/tmp/dudectl.check forensics -json -verify "$CRASH_IMG" >/tmp/dude.check.report.json
python3 - "$CRASH_IMG" <<'EOF'
import json, subprocess, sys
rep = json.load(open("/tmp/dude.check.report.json"))
for key in ("log_frontier", "last_durable_stamp", "events"):
    if key not in rep:
        sys.exit(f"forensics -json lacks {key!r}")
if rep["log_frontier"] <= 0:
    sys.exit(f"forensics frontier {rep['log_frontier']} not positive after a loaded drill")
if rep["last_durable_stamp"] > rep["log_frontier"]:
    sys.exit("durable stamp ahead of the log frontier")
print(f"forensics gate: frontier {rep['log_frontier']}, "
      f"{len(rep['events'])} recorder events, verified against recovery")
EOF
rm -f "$CRASH_IMG" /tmp/dude.check.report.json

echo "== replicated failover gate (1 primary / 2 replicas, primary killed mid-load)"
# The replicated netbank drill: client acks gate on a 2/2 replica
# quorum, the primary is killed mid-load (pool, server and sender all
# die), and the drill itself checks AuditRecovery plus conservation and
# acknowledged-generation presence on the promoted replica's crash
# image. The forensic decoder then independently verifies that image:
# its reported frontier must match what recovery restores from it.
REPL_IMG=/tmp/dude.check.repl.img
rm -f "$REPL_IMG"
go run ./examples/netbank -replicas 2 -crash-image "$REPL_IMG"
test -s "$REPL_IMG" || { echo "replicated drill wrote no crash image"; exit 1; }
/tmp/dudectl.check forensics -json -verify "$REPL_IMG" >/dev/null \
    || { echo "promoted replica image failed forensic verification"; exit 1; }
rm -f "$REPL_IMG"

echo "ok: all tier-1 checks passed"
