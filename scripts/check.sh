#!/usr/bin/env bash
# Tier-1 verification for this repository: build, vet, the dudelint
# persist-ordering/concurrency suite, the full test suite, and the race
# detector over the pipeline-critical packages. CI and pre-merge checks
# run exactly this script; it must exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
go build ./cmd/dudesrv

echo "== go vet"
go vet ./...

echo "== dudelint"
go run ./cmd/dudelint ./...

echo "== go test"
go test ./...

echo "== go test -race (stm, redolog, dudetm, server; 4 stage threads)"
# DUDETM_STAGE_THREADS=4 forces the parallel Persist/Reproduce paths in
# every test that does not pin its own worker counts, so the race pass
# exercises the sharded pipeline, not the single-worker degenerate case.
DUDETM_STAGE_THREADS=4 go test -race -count=1 ./internal/stm ./internal/redolog ./internal/dudetm ./internal/server

echo "== dudebench smoke (stage utilization counters)"
# Fails if the persist or reproduce utilization counters stay zero — a
# regression that routed work around the worker pools.
go run ./cmd/dudebench -experiment smoke -quick

echo "ok: all tier-1 checks passed"
