package word

import (
	"sync"
	"testing"
)

func TestAllocAlignment(t *testing.T) {
	for _, n := range []uint64{0, 1, 7, 8, 9, 63, 64, 4096} {
		b := Alloc(n)
		if uint64(len(b)) != n {
			t.Fatalf("Alloc(%d) returned %d bytes", n, len(b))
		}
		if n >= 8 {
			Store(b, 0, 0x1122334455667788) // must not fault
			if Load(b, 0) != 0x1122334455667788 {
				t.Fatal("round trip failed")
			}
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := Alloc(128)
	for off := uint64(0); off < 128; off += 8 {
		Store(b, off, off*3+1)
	}
	for off := uint64(0); off < 128; off += 8 {
		if Load(b, off) != off*3+1 {
			t.Fatalf("offset %d", off)
		}
	}
	// Byte view agrees with word view (little-endian host).
	Store(b, 0, 0x01)
	if b[0] != 1 || b[1] != 0 {
		t.Fatal("byte/word view mismatch")
	}
}

func TestUnalignedPanics(t *testing.T) {
	b := Alloc(64)
	for _, f := range []func(){
		func() { Load(b, 4) },
		func() { Store(b, 12, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentWordAccessIsRaceClean(t *testing.T) {
	// Concurrent atomic word access to the same location must be clean
	// under the race detector — this is the property the whole
	// repository's optimistic TMs rely on.
	b := Alloc(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if w%2 == 0 {
					Store(b, 0, uint64(i))
				} else {
					_ = Load(b, 0)
				}
			}
		}(w)
	}
	wg.Wait()
}
