// Package word provides 8-byte-aligned byte buffers with atomic word
// access.
//
// Transactional memories race by design: an optimistic reader may load a
// word concurrently with a writer and detect the conflict afterwards.
// Real hardware makes aligned 8-byte accesses single-copy atomic; to model
// that (and stay clean under the Go race detector), every word-granular
// load and store in this repository goes through the atomic accessors
// here. Buffers must be allocated with Alloc so word offsets are
// guaranteed to be 8-byte aligned in memory.
//
// Words are read and written in native byte order; this repository
// assumes a little-endian host (as every platform in the paper's
// evaluation is), keeping atomic word access and encoding/binary
// little-endian views of the same bytes interchangeable.
package word

import (
	"sync/atomic"
	"unsafe"
)

// Alloc returns a zeroed byte slice of length n whose backing array is
// 8-byte aligned, so any 8-aligned offset supports atomic word access.
func Alloc(n uint64) []byte {
	w := make([]uint64, (n+7)/8)
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)[:n]
}

// Load atomically reads the little-endian word at off, which must be
// 8-byte aligned.
func Load(b []byte, off uint64) uint64 {
	if off%8 != 0 {
		panic("word: unaligned load")
	}
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&b[off])))
}

// Store atomically writes the little-endian word at off, which must be
// 8-byte aligned.
func Store(b []byte, off, val uint64) {
	if off%8 != 0 {
		panic("word: unaligned store")
	}
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&b[off])), val)
}
