package dudetm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/obs"
	"dudetm/internal/obs/blackbox"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
	"dudetm/internal/shadow"
	"dudetm/internal/stm"
)

// System is a mounted DudeTM pool: a simulated NVM device, a shadow
// memory, a TM engine, and the Persist/Reproduce pipeline.
type System struct {
	cfg    Config
	dev    *pmem.Device
	lay    layout
	engine stm.TM
	space  shadow.Space

	threads []*thread
	writers []*redolog.Writer

	reproCh    chan repoMsg
	durable    atomic.Uint64
	reproduced atomic.Uint64
	startTid   uint64

	// Persist-stage parallelism (ModeAsync): the coordinator reserves a
	// dense sequence per sealed group in window and deals it to
	// dispatch[seq%PersistThreads]; workers complete out of order and
	// the durable frontier advances through the window's
	// contiguous-completion scan. persistWG tracks the workers so the
	// coordinator can close reproCh only after the last in-flight
	// append.
	window    seqWindow
	dispatch  []chan persistMsg
	persistWG sync.WaitGroup

	// Reproduce-stage parallelism: the ordering loop fans each large
	// group out to ReproThreads appliers over applyCh, sharded by
	// address, and joins them before the group's single fence.
	applyCh chan applyTask

	// Stage-utilization instrumentation.
	pm stageMetrics // Persist
	rm stageMetrics // Reproduce

	// Lifecycle tracing and latency histograms. Source-ring ownership:
	// [0, Threads) the Perform threads, Threads the Persist
	// coordinator, then the persist workers, then the Reproduce loop
	// (srcCoord / srcWorker / srcRepro), then two multi-writer
	// replication rings serialized inside the Observer (srcReplTrace
	// for ship/sent/replica-fence stamps, srcAckTrace for the
	// acked-frontier stamps).
	obs *obs.Observer

	// Persistent flight recorder (nil when BlackboxEntries < 0): stamped
	// at pipeline milestones, decoded by forensics after a crash.
	bb *blackbox.Recorder

	// Recovery instrumentation from the Recover that produced this mount
	// (zero-valued on a fresh Create).
	recov RecoveryStats

	// Stall watchdog (Config.Watchdog > 0).
	watchStop chan struct{}
	watchOnce sync.Once
	stalls    atomic.Uint64
	lastStall atomic.Pointer[StallReport]
	// Pause flags shadow the gates so the watchdog can tell an
	// operator-frozen stage from a stalled one.
	persistPaused atomic.Bool
	reproPaused   atomic.Bool

	dense denseTracker // ModeSync durable-frontier tracking
	notif durNotifier  // durable-ID waiters and subscribers

	// Replication (nil / durable-following when not attached): the
	// quorum gate EnableReplication installs, the published
	// acknowledgment frontier WaitDurable gates on, and the replica-side
	// ingest serialization.
	repl     atomic.Pointer[replState]
	acked    atomic.Uint64
	ingestMu sync.Mutex

	stopping atomic.Bool
	halted   atomic.Bool // Crash: pipeline stops where it is, no drain
	closed   atomic.Bool
	wg       sync.WaitGroup

	// Pause points for crash-consistency tests and operational control:
	// the Persist coordinator and the Reproduce loop acquire these per
	// iteration; each persist worker additionally acquires its own
	// workerGates entry per group, so PausePersist quiesces the whole
	// worker pool, not just the coordinator.
	persistGate   sync.Mutex
	workerGates   []sync.Mutex
	reproduceGate sync.Mutex

	// Statistics.
	writes      atomic.Uint64 // dtmWrite count
	rawEntries  atomic.Uint64 // log entries before combination
	combEntries atomic.Uint64 // log entries after combination
	groups      atomic.Uint64 // persisted groups
	txCommitted atomic.Uint64 // committed write transactions
}

// thread is the per-Perform-thread state.
type thread struct {
	sys    *System
	slot   int
	ring   *redolog.Ring
	writer *redolog.Writer // ModeSync: this thread's persistent log

	// Per-transaction state.
	tx      Tx
	wrote   bool
	pages   []uint64        // pinned shadow pages (paged shadow only)
	entries []redolog.Entry // ModeSync: current transaction's writes
	burned  []uint64        // ModeSync: no-op commit IDs to flush
	scratch []redolog.Entry
}

// Tx is the durable transaction handle: the paper's dtmRead / dtmWrite /
// dtmAbort, layered over the underlying TM transaction.
type Tx struct {
	inner stm.Tx
	th    *thread
}

// Load performs a transactional read (dtmRead): a direct shadow-memory
// read through the TM, with no log lookup or address remapping.
func (t *Tx) Load(addr uint64) uint64 { return t.inner.Load(addr) }

// Store performs a transactional write (dtmWrite): append to the
// volatile redo log, then write through to shadow memory.
func (t *Tx) Store(addr, val uint64) {
	th := t.th
	if th.sys.cfg.Mode == ModeSync {
		th.entries = append(th.entries, redolog.Entry{Addr: addr, Val: val})
	} else {
		th.ring.Append(addr, val)
	}
	th.wrote = true
	th.sys.writes.Add(1)
	if th.sys.paged() {
		page := addr / th.sys.lay.pageSize
		pinned := false
		for _, p := range th.pages {
			if p == page {
				pinned = true
				break
			}
		}
		if !pinned {
			th.sys.space.PinWritePage(addr)
			th.pages = append(th.pages, page)
		}
	}
	t.inner.Store(addr, val)
}

// Abort aborts the transaction (dtmAbort): the shadow state rolls back,
// the log entries are discarded, and Run returns stm.ErrAborted.
func (t *Tx) Abort() { t.inner.Abort() }

func (s *System) paged() bool { return s.cfg.Shadow != ShadowFlat }

// Create initializes a fresh pool (and its simulated NVM device) and
// starts the pipeline.
func Create(cfg Config) (*System, error) {
	cfg.applyDefaults()
	// ModeAsync lays out one log per persist worker (each worker owns a
	// disjoint log region); ModeSync one per Perform thread. A pool
	// sized for the larger of the two mounts under either mode.
	nlogs := cfg.Threads
	if cfg.PersistThreads > nlogs {
		nlogs = cfg.PersistThreads
	}
	lay := computeLayout(uint64(nlogs), cfg.LogBufBytes, cfg.DataSize, cfg.PageSize, cfg.bbEntries())
	pc := cfg.Pmem
	pc.Size = lay.total
	dev := pmem.New(pc)
	dev.SetRegions(lay.regions())
	writeHeader(dev, lay)
	if lay.bbEntries > 0 {
		blackbox.Format(dev, lay.bbOff, lay.bbEntries)
	}

	s, err := build(cfg, dev, lay, 0)
	if err != nil {
		return nil, err
	}
	for i := range s.writers {
		s.writers[i] = redolog.NewWriter(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize, cfg.Compress)
	}
	s.bindWriters()
	s.start()
	return s, nil
}

// build constructs the System shell shared by Create and Recover:
// everything except the writers, which differ between a fresh pool and a
// recovered one.
func build(cfg Config, dev *pmem.Device, lay layout, startTid uint64) (*System, error) {
	if uint64(cfg.Threads) > lay.nlogs {
		return nil, fmt.Errorf("dudetm: pool has %d logs, config wants %d threads", lay.nlogs, cfg.Threads)
	}
	if uint64(cfg.PersistThreads) > lay.nlogs {
		// The pool was created with fewer logs than the mount asks
		// persist workers for; the persistent geometry wins (Recover).
		cfg.PersistThreads = int(lay.nlogs)
	}
	s := &System{
		cfg:     cfg,
		dev:     dev,
		lay:     lay,
		writers: make([]*redolog.Writer, lay.nlogs),
		// The group channel is the volatile copy of the persisted log
		// kept for Reproduce (§3.3). Its capacity bounds how far
		// Persist can run ahead of Reproduce before back-pressure
		// stalls it (relevant when Reproduce is paused for drills).
		reproCh:  make(chan repoMsg, 1<<16),
		startTid: startTid,
	}
	if cfg.Mode == ModeAsync {
		// Per-worker dispatch queues sized to the reservation window, so
		// a send after a successful reserve never blocks.
		s.dispatch = make([]chan persistMsg, cfg.PersistThreads)
		for i := range s.dispatch {
			s.dispatch[i] = make(chan persistMsg, persistWindow)
		}
		s.workerGates = make([]sync.Mutex, cfg.PersistThreads)
	}
	s.applyCh = make(chan applyTask, cfg.ReproThreads)
	s.obs = obs.New(obs.Config{
		SampleEvery: cfg.TraceSampleEvery,
		Sources:     cfg.Threads + 1 + cfg.PersistThreads + 3,
		RingEntries: cfg.TraceRingEntries,
	})
	s.durable.Store(startTid)
	s.acked.Store(startTid)
	s.reproduced.Store(startTid)
	s.dense = denseTracker{next: startTid + 1, pend: make(map[uint64]struct{})}
	if lay.bbEntries > 0 {
		bb, err := blackbox.Open(dev, lay.bbOff)
		if err != nil {
			return nil, err
		}
		s.bb = bb
		// Async durable-advance stamps ride the completion window's
		// mutex (see seqWindow.onAdvance for why); the write-back still
		// batches with the worker's next bbFlush.
		s.window.onAdvance = func(tid uint64) {
			bb.Stamp(blackbox.KindDurable, tid, 0, 0)
		}
	}

	switch cfg.Shadow {
	case ShadowFlat:
		s.space = shadow.NewFlat(lay.dataSize, pmSource{s}, lay.pageSize)
	case ShadowSW, ShadowHW:
		mode := shadow.SWPaging
		if cfg.Shadow == ShadowHW {
			mode = shadow.HWPaging
		}
		s.space = shadow.NewPaged(shadow.PagedConfig{
			Size:        lay.dataSize,
			ShadowBytes: cfg.ShadowBytes,
			PageSize:    lay.pageSize,
			Mode:        mode,
		}, pmSource{s})
	default:
		return nil, fmt.Errorf("dudetm: unknown shadow kind %d", cfg.Shadow)
	}

	switch cfg.Engine {
	case EngineSTM:
		e := stm.New(s.space, stm.Config{
			OrecCount:    cfg.OrecCount,
			MaxSlots:     cfg.Threads,
			OnNoopCommit: s.onNoopCommit,
		})
		e.SetClock(startTid)
		s.engine = e
	case EngineHTM:
		e := stm.NewHTM(s.space, stm.HTMConfig{MaxSlots: cfg.Threads})
		e.SetClock(startTid)
		s.engine = e
	default:
		return nil, fmt.Errorf("dudetm: unknown engine kind %d", cfg.Engine)
	}

	s.threads = make([]*thread, cfg.Threads)
	for i := range s.threads {
		th := &thread{sys: s, slot: i, ring: redolog.NewRing(cfg.VLogEntries)}
		th.tx = Tx{th: th}
		s.threads[i] = th
	}
	return s, nil
}

// Trace-ring source indices (see the obs field comment): each lifecycle
// stamp comes from exactly one goroutine, the ring's single writer —
// except the last two, whose several writers (per-peer sender
// goroutines, frontier publishers) are serialized by the Observer.
func (s *System) srcCoord() int        { return s.cfg.Threads }
func (s *System) srcWorker(wi int) int { return s.cfg.Threads + 1 + wi }
func (s *System) srcRepro() int        { return s.cfg.Threads + 1 + s.cfg.PersistThreads }
func (s *System) srcReplTrace() int    { return s.srcRepro() + 1 }
func (s *System) srcAckTrace() int     { return s.srcRepro() + 2 }

func (s *System) bindWriters() {
	for i, th := range s.threads {
		th.writer = s.writers[i]
	}
}

// Flight-recorder helpers: nil-safe so a disabled recorder costs one
// branch per milestone. Stamps are batched — bbFlush rides the
// pipeline's existing barriers — and bbSync fences immediately (boot,
// stall).
func (s *System) bbStamp(kind blackbox.Kind, a, b, c uint64) {
	if s.bb != nil {
		s.bb.Stamp(kind, a, b, c)
	}
}

func (s *System) bbFlush() {
	if s.bb != nil {
		s.bb.Flush()
	}
}

func (s *System) bbSync() {
	if s.bb != nil {
		s.bb.Sync()
	}
}

func (s *System) start() {
	// The boot stamp opens a new forensic epoch: recovery discards
	// uncommitted IDs, so stamps from earlier epochs may reference
	// transaction IDs this mount will reassign.
	s.bbStamp(blackbox.KindBoot, s.startTid, uint64(s.cfg.Mode), 0)
	s.bbSync()
	s.pm.markStart()
	s.rm.markStart()
	s.wg.Add(1)
	go s.reproduceLoop()
	if s.cfg.ReproThreads > 1 {
		for i := 0; i < s.cfg.ReproThreads; i++ {
			s.wg.Add(1)
			go s.reproApplier()
		}
	}
	if s.cfg.Mode == ModeAsync {
		for i := range s.dispatch {
			s.persistWG.Add(1)
			go s.persistWorker(i)
		}
		s.wg.Add(1)
		go s.persistLoop()
	}
	if s.cfg.Watchdog > 0 {
		s.watchStop = make(chan struct{})
		s.wg.Add(1)
		go s.watchdogLoop(s.cfg.Watchdog)
	}
}

// stopWatchdog retires the watchdog goroutine (idempotent; no-op when
// the watchdog was never started).
func (s *System) stopWatchdog() {
	if s.watchStop != nil {
		s.watchOnce.Do(func() { close(s.watchStop) })
	}
}

// Device returns the underlying simulated NVM device (for statistics and
// crash simulation in tests and benchmarks).
func (s *System) Device() *pmem.Device { return s.dev }

// Engine returns the underlying TM (for abort statistics).
func (s *System) Engine() stm.TM { return s.engine }

// ShadowStats returns paging statistics.
func (s *System) ShadowStats() shadow.Stats { return s.space.Stats() }

// DataSize returns the size of the persistent data region.
func (s *System) DataSize() uint64 { return s.lay.dataSize }

// Threads returns the configured concurrency: valid Run slots are
// [0, Threads).
func (s *System) Threads() int { return s.cfg.Threads }

// Durable returns the global durable transaction ID: every transaction
// with a smaller or equal ID is persistent (§3.3).
func (s *System) Durable() uint64 { return s.durable.Load() }

// Reproduced returns the largest transaction ID replayed to persistent
// data.
func (s *System) Reproduced() uint64 { return s.reproduced.Load() }

// Clock returns the largest transaction ID assigned so far.
func (s *System) Clock() uint64 { return s.engine.Clock() }

// WaitDurable blocks until the global durable ID reaches tid and
// returns nil. It yield-spins first — durable-acknowledgement waits are
// normally a few microseconds, far below the OS timer resolution, and
// Table 3 measures exactly this latency — then parks on the notifier.
// If the system crashes or closes while tid is still beyond the durable
// frontier, it returns ErrCrashed or ErrClosed instead of hanging.
func (s *System) WaitDurable(tid uint64) error {
	for spin := 0; spin < 256; spin++ {
		if s.acked.Load() >= tid {
			return nil
		}
		runtime.Gosched()
	}
	return <-s.notif.wait(tid)
}

// WaitDurableChan subscribes to the durability of a single transaction:
// the returned channel receives nil once the durable frontier reaches
// tid, or ErrCrashed/ErrClosed if the system dies first. The channel is
// buffered and receives exactly one value, so callers may select on it
// or abandon it freely.
func (s *System) WaitDurableChan(tid uint64) <-chan error {
	return s.notif.wait(tid)
}

// DurableUpdates subscribes to durable-frontier advances: the returned
// channel carries the most recent durable ID after every advance
// (coalesced — a slow consumer observes the latest value, never a
// backlog) and is closed when the system crashes or closes, or when
// cancel is called. This is the hook a server's group-commit
// acknowledgment loop watches: one frontier advance acknowledges every
// client transaction it passed.
func (s *System) DurableUpdates() (<-chan uint64, func()) {
	ch, cancel := s.notif.subscribe()
	return ch, cancel
}

// setDurable publishes a new durable frontier and wakes waiters and
// subscribers whose IDs the acknowledgment frontier passed. With
// replication attached, the local advance routes through the quorum
// gate and waiters wake only when enough replicas have acked too.
func (s *System) setDurable(f uint64) {
	for {
		cur := s.durable.Load()
		if cur >= f || s.durable.CompareAndSwap(cur, f) {
			break
		}
	}
	s.publishDurable(f)
	s.obs.DurableAdvanced(f)
	// The durable-advance flight-recorder stamp is NOT issued here: it
	// must happen-before waiters wake, or a caller that waits out the
	// frontier and then snapshots the device races with the stamp's
	// store. The async path stamps inside the completion window's
	// critical section (seqWindow.onAdvance); the sync path stamps in
	// markDurable on the committing thread.
}

// Run executes fn as a durable transaction on behalf of thread slot and
// returns its transaction ID. In ModeAsync it returns right after the
// Perform step — the transaction is durable once Durable() >= tid
// (WaitDurable). In ModeSync it returns only after the transaction is
// durable. Read-only transactions return the snapshot ID they observed;
// they are durable once Durable() reaches it.
func (s *System) Run(slot int, fn func(*Tx) error) (tid uint64, err error) {
	if s.closed.Load() {
		panic("dudetm: Run on closed system")
	}
	th := s.threads[slot]
	defer func() {
		if r := recover(); r != nil {
			s.cleanupAttempt(th)
			s.flushBurned(th)
			panic(r)
		}
	}()
	tid, err = s.engine.Run(slot, func(itx stm.Tx) error {
		s.cleanupAttempt(th)
		th.wrote = false
		th.tx.inner = itx
		return fn(&th.tx)
	})
	if err != nil {
		s.cleanupAttempt(th)
		s.flushBurned(th)
		return 0, err
	}
	if !th.wrote {
		s.flushBurned(th)
		return tid, nil
	}
	s.txCommitted.Add(1)
	// Stamp before the transaction is published downstream (AppendTxEnd
	// / syncCommit), so the commit record orders before every later
	// stamp of the same transaction.
	s.obs.Commit(slot, tid)
	if s.cfg.Mode == ModeSync {
		s.syncCommit(th, tid)
		return tid, nil
	}
	// Pins must survive until the touching IDs carry the commit ID, so
	// a swapped-out page can never be re-read without this
	// transaction's updates (§4.3).
	if s.paged() {
		s.space.CommitPages(th.pages, tid)
		th.pages = th.pages[:0]
	}
	th.ring.AppendTxEnd(tid)
	return tid, nil
}

// cleanupAttempt discards the residue of a conflicted or failed attempt:
// un-published log entries and page pins.
func (s *System) cleanupAttempt(th *thread) {
	if s.cfg.Mode == ModeSync {
		th.entries = th.entries[:0]
	} else {
		th.ring.PopToLastTx()
	}
	if len(th.pages) > 0 {
		s.space.ReleasePages(th.pages)
		th.pages = th.pages[:0]
	}
}

// onNoopCommit accounts for a commit timestamp consumed by a failed
// validation: the ID must still appear in the log stream so Reproduce's
// ID-ordered replay stays dense.
func (s *System) onNoopCommit(slot int, tid uint64) {
	th := s.threads[slot]
	if s.cfg.Mode == ModeSync {
		th.entries = th.entries[:0]
		th.burned = append(th.burned, tid)
		return
	}
	th.ring.PopToLastTx()
	th.ring.AppendTxEnd(tid)
}

// flushBurned persists empty groups for no-op commit IDs (ModeSync; in
// ModeAsync the ring carries them).
func (s *System) flushBurned(th *thread) {
	if s.cfg.Mode != ModeSync || len(th.burned) == 0 {
		return
	}
	for _, b := range th.burned {
		g := &redolog.Group{MinTid: b, MaxTid: b}
		th.writer.AppendGroup(g)
		s.pm.groups.Add(1)
		s.pm.fences.Add(1)
		s.markDurable(b)
		s.rm.enqueue()
		s.reproCh <- repoMsg{g: g, w: th.writer, wi: th.slot}
	}
	th.burned = th.burned[:0]
}

// syncCommit is the DUDETM-Sync path: persist this transaction's log
// immediately and wait until it is durable.
func (s *System) syncCommit(th *thread, tid uint64) {
	if s.paged() {
		s.space.CommitPages(th.pages, tid)
		th.pages = th.pages[:0]
	}
	s.flushBurned(th)
	ep := getEntrySlice()
	*ep = append((*ep)[:0], th.entries...)
	g := &redolog.Group{MinTid: tid, MaxTid: tid, Entries: *ep}
	// The synchronous path seals, appends and fences inline on the
	// Perform thread, so its lifecycle stamps share the thread's ring.
	sealAt := s.obs.GroupSealed(th.slot, tid, tid, 1, len(th.entries))
	s.bbStamp(blackbox.KindGroupSeal, tid, tid, 1)
	s.bbStamp(blackbox.KindFenceBegin, tid, tid, uint64(th.slot))
	s.bbFlush()
	startAt := s.obs.Now()
	th.writer.AppendGroup(g)
	endAt := s.obs.Now()
	s.bbStamp(blackbox.KindPersistFence, tid, tid, uint64(th.slot))
	s.obs.GroupPersisted(th.slot, tid, tid, sealAt, startAt, endAt)
	s.pm.busy.Add(uint64(endAt - startAt))
	s.pm.groups.Add(1)
	s.pm.fences.Add(1)
	s.rawEntries.Add(uint64(len(th.entries)))
	s.combEntries.Add(uint64(len(th.entries)))
	s.groups.Add(1)
	s.markDurable(tid)
	s.bbFlush()
	s.rm.enqueue()
	s.reproCh <- repoMsg{g: g, w: th.writer, wi: th.slot, ep: ep}
	th.entries = th.entries[:0]
	s.WaitDurable(tid)
}

// markDurable records tid as flushed and advances the durable frontier
// to the largest prefix-complete ID.
func (s *System) markDurable(tid uint64) {
	f := s.dense.mark(tid)
	// Batched: the caller's bbFlush writes it back. Stamped on the
	// committing thread itself, so it is sequenced before Run returns.
	s.bbStamp(blackbox.KindDurable, f, 0, 0)
	s.setDurable(f)
}

// Close drains the pipeline and stops the background threads. All Run
// calls must have returned. The pool remains fully reproduced: durable,
// reproduced and clock coincide.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.stopping.Store(true)
	s.stopWatchdog()
	if s.cfg.Mode == ModeSync {
		close(s.reproCh)
	}
	// ModeAsync: the persist loop observes stopping, drains the rings,
	// seals the last group and closes reproCh itself.
	s.wg.Wait()
	// The pipeline's stamp sources are quiet: drain the critical-path
	// collector so Stats() reflects every completed sampled transaction.
	s.obs.Close()
	// Every committed transaction is durable now; any waiter still
	// subscribed is waiting for an ID the pipeline will never assign.
	s.notif.fail(ErrClosed)
}

// Crash simulates a power failure and tears the system down: the
// pipeline halts where it is (nothing is drained), every cache line not
// yet written back is discarded, and the durable image of the device is
// returned for remounting with Recover or the facade's OpenSnapshot.
// All Run calls must have returned and neither pipeline stage may be
// left paused. Concurrent WaitDurable / WaitDurableChan callers are
// unblocked: waiters whose IDs the durable frontier never reached get
// ErrCrashed — exactly the transactions recovery will discard.
func (s *System) Crash() []byte {
	if s.closed.Swap(true) {
		panic("dudetm: Crash on closed system")
	}
	s.halted.Store(true)
	s.stopping.Store(true)
	s.stopWatchdog()
	if s.cfg.Mode == ModeSync {
		close(s.reproCh)
	}
	s.wg.Wait()
	s.obs.Close()
	s.dev.Crash()
	img := s.dev.PersistedImage()
	s.notif.fail(ErrCrashed)
	return img
}

// Stats is a snapshot of system activity.
type Stats struct {
	Writes      uint64 // dtmWrite calls
	Committed   uint64 // committed write transactions
	RawEntries  uint64 // log entries before combination
	CombEntries uint64 // log entries after combination
	Groups      uint64 // persisted groups
	LogBytes    uint64 // serialized bytes appended to persistent logs
	Durable     uint64
	Reproduced  uint64
	Clock       uint64
	TM          stm.Stats
	Shadow      shadow.Stats
	Device      pmem.Stats
	Persist     StageStats // Persist-stage utilization
	Reproduce   StageStats // Reproduce-stage utilization
	// Obs holds the lifecycle-latency histograms and trace counters
	// (mergeable; interval activity is After.Obs.Sub(Before.Obs)).
	Obs obs.Snapshot
	// Stalls counts watchdog stall episodes.
	Stalls uint64
	// Recovery describes the Recover that produced this mount (Recovered
	// is false on a fresh Create).
	Recovery RecoveryStats
	// Regions breaks device flush/fence/byte traffic down by pool region
	// (header, meta, blackbox, log, data).
	Regions []pmem.RegionStats
	// Repl is the replication quorum gate (Enabled false when the pool
	// is not replicated).
	Repl ReplQuorumStats
}

// Stats returns a snapshot of system activity.
func (s *System) Stats() Stats {
	var logBytes uint64
	for _, w := range s.writers {
		if w != nil {
			logBytes += w.BytesAppended()
		}
	}
	return Stats{
		Writes:      s.writes.Load(),
		Committed:   s.txCommitted.Load(),
		RawEntries:  s.rawEntries.Load(),
		CombEntries: s.combEntries.Load(),
		Groups:      s.groups.Load(),
		LogBytes:    logBytes,
		Durable:     s.durable.Load(),
		Reproduced:  s.reproduced.Load(),
		Clock:       s.engine.Clock(),
		TM:          s.engine.Stats(),
		Shadow:      s.space.Stats(),
		Device:      s.dev.Stats(),
		Persist:     s.PersistStats(),
		Reproduce:   s.ReproduceStats(),
		Obs:         s.obs.Snapshot(),
		Stalls:      s.stalls.Load(),
		Recovery:    s.recov,
		Regions:     s.dev.RegionStats(),
		Repl:        s.ReplStats(),
	}
}

// TraceOf reconstructs the lifecycle timeline of a sampled transaction
// from the trace rings: commit → group-seal → persist-fence →
// reproduce-apply, ordered by timestamp. Older transactions may have
// been overwritten and return a partial (or empty) timeline.
func (s *System) TraceOf(tid uint64) []obs.Record { return s.obs.TraceOf(tid) }

// TraceTail returns the most recent n trace records across all rings
// (all of them when n <= 0), oldest first.
func (s *System) TraceTail(n int) []obs.Record { return s.obs.TraceTail(n) }

// CritpathOf decomposes a sampled transaction's commit→acknowledged
// window into critical-path segments from the live trace rings.
// ok is false when the timeline is incomplete (unsampled, evicted, or
// the transaction has not been quorum-acked yet).
func (s *System) CritpathOf(tid uint64) (obs.Critpath, bool) { return s.obs.CritpathOf(tid) }

// LastStall returns the most recent watchdog stall report, or nil.
func (s *System) LastStall() *StallReport { return s.lastStall.Load() }

// PersistStats returns the Persist stage's utilization snapshot. Busy
// time is summed across the worker pool, so Utilization is normalized
// per worker.
func (s *System) PersistStats() StageStats {
	n := s.cfg.PersistThreads
	if s.cfg.Mode == ModeSync {
		// Appends happen inline on the Perform threads.
		n = s.cfg.Threads
	}
	st := s.pm.snapshot(n, n)
	if s.cfg.Mode == ModeAsync {
		st.WindowDepth = s.window.depth()
	}
	if rs := s.repl.Load(); rs != nil {
		st.ReplRawBytes, st.ReplWireBytes = rs.sink.ShipStats()
	}
	return st
}

// ReproduceStats returns the Reproduce stage's utilization snapshot.
// Busy time is the wall time of the ordering loop's apply+fence
// sections (the sharded appliers run inside it), so the divisor is 1.
func (s *System) ReproduceStats() StageStats {
	return s.rm.snapshot(s.cfg.ReproThreads, 1)
}

// PausePersist freezes the Persist step: transactions keep committing
// but stop becoming durable. It returns only once the step is quiescent
// (the coordinator parked and no worker in-flight on a log append), so
// a Device snapshot taken afterwards is coherent. ResumePersist
// releases it; the step must be resumed before Close. Lock order is
// coordinator gate first, then worker gates in index order.
func (s *System) PausePersist() {
	// The flag is raised before the gates so the watchdog never sees a
	// frozen frontier without the pause that explains it.
	s.persistPaused.Store(true)
	s.persistGate.Lock()
	for i := range s.workerGates {
		s.workerGates[i].Lock()
	}
}

// ResumePersist releases PausePersist.
func (s *System) ResumePersist() {
	for i := len(s.workerGates) - 1; i >= 0; i-- {
		s.workerGates[i].Unlock()
	}
	s.persistGate.Unlock()
	s.persistPaused.Store(false)
}

// PauseReproduce freezes the Reproduce step: transactions become
// durable in the log but are not applied to persistent data. It returns
// only once the step is quiescent (no in-flight replay or recycle).
// ResumeReproduce releases it; the step must be resumed before Close.
func (s *System) PauseReproduce() {
	s.reproPaused.Store(true)
	s.reproduceGate.Lock()
}

// ResumeReproduce releases PauseReproduce.
func (s *System) ResumeReproduce() {
	s.reproduceGate.Unlock()
	s.reproPaused.Store(false)
}

// denseTracker computes the largest ID D such that every ID <= D has
// been marked. Transaction IDs are dense (no-op commits are flushed as
// empty groups), so D is the durable frontier.
type denseTracker struct {
	mu   sync.Mutex
	next uint64
	pend map[uint64]struct{}
}

func (d *denseTracker) mark(tid uint64) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if tid == d.next {
		d.next++
		for {
			if _, ok := d.pend[d.next]; !ok {
				break
			}
			delete(d.pend, d.next)
			d.next++
		}
	} else if tid > d.next {
		d.pend[tid] = struct{}{}
	}
	return d.next - 1
}

// entryPool recycles group entry slices between the Persist and
// Reproduce steps to keep GC pressure off the hot path.
var entryPool = sync.Pool{
	New: func() any {
		s := make([]redolog.Entry, 0, 1024)
		return &s
	},
}

func getEntrySlice() *[]redolog.Entry { return entryPool.Get().(*[]redolog.Entry) }

func putEntrySlice(ep *[]redolog.Entry) {
	if ep != nil {
		entryPool.Put(ep)
	}
}

// Drain blocks until every committed transaction has been persisted and
// reproduced. Callers must have stopped issuing transactions.
func (s *System) Drain() {
	for {
		c := s.engine.Clock()
		if s.durable.Load() >= c && s.reproduced.Load() >= c {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}
