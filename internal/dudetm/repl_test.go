package dudetm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// captureSink records every shipped group (copying the pooled entry
// slice, per the ReplSink contract).
type captureSink struct {
	mu     sync.Mutex
	groups []capturedGroup
	raw    uint64
}

type capturedGroup struct {
	minTid, maxTid uint64
	entries        []redolog.Entry
}

func (c *captureSink) ShipGroup(minTid, maxTid uint64, entries []redolog.Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.groups = append(c.groups, capturedGroup{
		minTid:  minTid,
		maxTid:  maxTid,
		entries: append([]redolog.Entry(nil), entries...),
	})
	c.raw += uint64(len(entries) * redolog.EntrySize)
}

func (c *captureSink) ShipStats() (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw, c.raw
}

func (c *captureSink) snapshot() []capturedGroup {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]capturedGroup(nil), c.groups...)
}

func replConfig(quorum int, degradeLocal bool) Config {
	cfg := testConfig()
	cfg.ReplFactor = 2
	cfg.ReplQuorum = quorum
	cfg.ReplDegradeLocal = degradeLocal
	return cfg
}

// mustWaitErr reads a WaitDurableChan result with a timeout.
func mustWaitErr(t *testing.T, ch <-chan error, within time.Duration) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(within):
		t.Fatal("durability waiter hung")
		return nil
	}
}

func TestReplQuorumGatesWaiters(t *testing.T) {
	// R=2 Q=2: a locally durable transaction must not be acknowledged
	// until both replicas acked it, regardless of ack arrival order.
	s, err := Create(replConfig(2, false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sink := &captureSink{}
	if err := s.EnableReplication(sink, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// No replica has connected: the gate starts degraded and waiters
	// fail fast instead of hanging.
	st := s.ReplStats()
	if !st.Enabled || !st.Degraded || st.Quorum != 2 || st.Peers != 2 {
		t.Fatalf("post-attach stats = %+v", st)
	}
	tid, err := s.Run(0, func(tx *Tx) error { tx.Store(0, 42); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := mustWaitErr(t, s.WaitDurableChan(tid), 5*time.Second); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("degraded wait: got %v, want ErrQuorumLost", err)
	}

	// Both replicas connect: degraded clears, but nothing new is
	// published until acks cover the tid.
	s.ReplicaLive("a", true)
	s.ReplicaLive("b", true)
	if st := s.ReplStats(); st.Degraded {
		t.Fatal("still degraded with both replicas live")
	}
	ch := s.WaitDurableChan(tid)
	select {
	case err := <-ch:
		t.Fatalf("waiter released before quorum ack: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Acks arrive out of order: the later replica first. One ack out of
	// two must not release the waiter.
	s.ReplicaAcked("b", tid)
	select {
	case err := <-ch:
		t.Fatalf("waiter released at 1/2 acks: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.ReplicaAcked("a", tid)
	if err := mustWaitErr(t, ch, 5*time.Second); err != nil {
		t.Fatalf("quorum-acked wait: %v", err)
	}
	if got := s.AckFrontier(); got < tid {
		t.Fatalf("AckFrontier = %d, want >= %d", got, tid)
	}
	if st := s.ReplStats(); st.Published < tid || st.PeerAcked["a"] < tid || st.PeerAcked["b"] < tid {
		t.Fatalf("stats after quorum ack = %+v", st)
	}
}

func TestReplReplicaDeathMidWait(t *testing.T) {
	// R=2 Q=2 fail mode: a replica dying while a waiter is parked must
	// fail the waiter with ErrQuorumLost — quorum loss is never silent.
	s, err := Create(replConfig(2, false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	s.ReplicaLive("a", true)
	s.ReplicaLive("b", true)
	tid, err := s.Run(0, func(tx *Tx) error { tx.Store(8, 7); return nil })
	if err != nil {
		t.Fatal(err)
	}
	ch := s.WaitDurableChan(tid)
	select {
	case err := <-ch:
		t.Fatalf("waiter released without acks: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.ReplicaLive("b", false)
	if err := mustWaitErr(t, ch, 5*time.Second); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("death mid-wait: got %v, want ErrQuorumLost", err)
	}
	st := s.ReplStats()
	if !st.Degraded || st.DegradedEvents < 2 { // attach-time + this death
		t.Fatalf("stats after death = %+v", st)
	}

	// The quorum heals: the dead replica reconnects and acks. Waiters
	// park and release normally again.
	s.ReplicaLive("b", true)
	if st := s.ReplStats(); st.Degraded {
		t.Fatal("still degraded after reconnect")
	}
	ch = s.WaitDurableChan(tid)
	s.ReplicaAcked("a", tid)
	s.ReplicaAcked("b", tid)
	if err := mustWaitErr(t, ch, 5*time.Second); err != nil {
		t.Fatalf("post-heal wait: %v", err)
	}
}

func TestReplDegradeLocalFallsBack(t *testing.T) {
	// ReplDegradeLocal: quorum loss degrades to local-only durability —
	// waiters are released by the local frontier, and the flag shows in
	// stats (flagged, never silent).
	s, err := Create(replConfig(2, true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	tid, err := s.Run(0, func(tx *Tx) error { tx.Store(16, 9); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(tid); err != nil {
		t.Fatalf("degraded local wait: %v", err)
	}
	st := s.ReplStats()
	if !st.Degraded || st.DegradedEvents == 0 {
		t.Fatalf("degraded fallback not flagged: %+v", st)
	}
	// Healing switches back to quorum gating: a new transaction parks
	// until acks cover it.
	s.ReplicaLive("a", true)
	s.ReplicaLive("b", true)
	tid2, err := s.Run(0, func(tx *Tx) error { tx.Store(24, 11); return nil })
	if err != nil {
		t.Fatal(err)
	}
	ch := s.WaitDurableChan(tid2)
	select {
	case err := <-ch:
		t.Fatalf("waiter released before quorum ack after heal: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	s.ReplicaAcked("a", tid2)
	s.ReplicaAcked("b", tid2)
	if err := mustWaitErr(t, ch, 5*time.Second); err != nil {
		t.Fatalf("post-heal quorum wait: %v", err)
	}
}

func TestReplReconnectOlderAckNeverRegresses(t *testing.T) {
	// A reconnecting replica re-acks from its recovered frontier, which
	// may trail what it acked before the disconnect. The quorum frontier
	// must never move backward.
	s, err := Create(replConfig(1, true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(0); i < 10; i++ {
		tid, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := s.WaitDurable(last); err != nil { // Q=1 degrade-local: releases locally
		t.Fatal(err)
	}
	s.ReplicaAcked("a", last)
	published := s.ReplStats().Published
	if published < last {
		t.Fatalf("published = %d, want >= %d", published, last)
	}
	// Disconnect, reconnect, re-ack an older frontier.
	s.ReplicaLive("a", false)
	s.ReplicaLive("a", true)
	s.ReplicaAcked("a", last/2)
	st := s.ReplStats()
	if st.Published < published {
		t.Fatalf("published regressed: %d -> %d", published, st.Published)
	}
	if st.PeerAcked["a"] < last {
		t.Fatalf("peer ack regressed: %d -> %d", last, st.PeerAcked["a"])
	}
	if s.AckFrontier() < published {
		t.Fatalf("AckFrontier regressed: %d -> %d", published, s.AckFrontier())
	}
	// Out-of-order duplicate ack from the other peer is harmless too.
	s.ReplicaAcked("b", 1)
	if got := s.ReplStats().Published; got < published {
		t.Fatalf("published regressed on duplicate ack: %d -> %d", published, got)
	}
}

func TestReplEnableValidation(t *testing.T) {
	cfg := replConfig(2, false)
	cfg.Mode = ModeSync
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err == nil {
		t.Error("ModeSync EnableReplication succeeded")
	}
	s.Close()

	s, err = Create(replConfig(2, false))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.EnableReplication(nil, []string{"a", "b"}); err == nil {
		t.Error("nil sink accepted")
	}
	if err := s.EnableReplication(&captureSink{}, []string{"a"}); err == nil {
		t.Error("quorum 2 with 1 peer accepted")
	}
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableReplication(&captureSink{}, []string{"a", "b"}); err == nil {
		t.Error("double EnableReplication accepted")
	}
	// Acks for unknown peers are ignored, not crashes.
	s.ReplicaAcked("nobody", 99)
	s.ReplicaLive("nobody", true)
}

func TestIngestGroupDedupeAndGap(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := s.Durable() // the mount's own format transaction(s)
	entries := []redolog.Entry{{Addr: 0, Val: 1}, {Addr: 8, Val: 2}}

	// A gap beyond the dense frontier is rejected.
	if err := s.IngestGroup(base+2, base+3, entries); !errors.Is(err, ErrReplGap) {
		t.Fatalf("gap ingest: got %v, want ErrReplGap", err)
	}
	// Degenerate ranges are rejected.
	if err := s.IngestGroup(0, 0, entries); err == nil {
		t.Fatal("tid 0 ingest accepted")
	}
	if err := s.IngestGroup(base+2, base+1, entries); err == nil {
		t.Fatal("inverted range accepted")
	}
	// The dense next group lands and advances the durable frontier.
	if err := s.IngestGroup(base+1, base+2, entries); err != nil {
		t.Fatal(err)
	}
	if got := s.Durable(); got != base+2 {
		t.Fatalf("durable = %d, want %d", got, base+2)
	}
	groups := s.Stats().Groups
	// A catch-up duplicate is skipped without re-appending (recovery's
	// dense replay would stop at a repeated tid range).
	if err := s.IngestGroup(base+1, base+2, entries); err != nil {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if got := s.Stats().Groups; got != groups {
		t.Fatalf("duplicate ingest re-appended: groups %d -> %d", groups, got)
	}
	if got := s.Durable(); got != base+2 {
		t.Fatalf("durable moved on duplicate: %d", got)
	}
	if err := s.WaitDurable(base + 2); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaIngestCrashRecoverAudit(t *testing.T) {
	// End-to-end at the dudetm layer: a primary ships sealed groups, a
	// replica ingests them, the replica crashes, and recovery plus the
	// durability audit prove every shipped-and-ingested transaction
	// survived on the replica's image.
	cfg := testConfig()
	primary, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &captureSink{}
	// Quorum 0: the sink observes every sealed group while the primary
	// acks locally.
	if err := primary.EnableReplication(sink, []string{"r1"}); err != nil {
		t.Fatal(err)
	}
	replica, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var last uint64
	for i := uint64(0); i < 50; i++ {
		tid, err := primary.Run(0, func(tx *Tx) error { tx.Store(i*8, i+100); return nil })
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := primary.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if raw, wire := sink.ShipStats(); raw == 0 || wire == 0 {
		t.Fatalf("ship stats raw=%d wire=%d", raw, wire)
	}
	if st := primary.PersistStats(); st.ReplRawBytes == 0 {
		t.Fatalf("PersistStats.ReplRawBytes = 0")
	}

	// Replay the shipped stream into the replica. The replica mounted
	// with the same Config, so its own format transaction occupies the
	// same tid prefix: shipped groups at or below its durable frontier
	// dedupe, the rest extend it densely.
	for _, g := range sink.snapshot() {
		if err := replica.IngestGroup(g.minTid, g.maxTid, g.entries); err != nil {
			t.Fatalf("ingest [%d,%d]: %v", g.minTid, g.maxTid, err)
		}
	}
	if got := replica.Durable(); got < last {
		t.Fatalf("replica durable = %d, want >= %d", got, last)
	}
	primary.Close()

	// Power-fail the replica and recover from its image: this is the
	// failover path a promoted replica runs.
	img := replica.Crash()
	dev := pmem.New(pmem.Config{Size: uint64(len(img))})
	dev.Restore(img)
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AuditRecovery(last); err != nil {
		t.Fatalf("promoted replica failed the durability audit: %v", err)
	}
	s2.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < 50; i++ {
			if v := tx.Load(i * 8); v != i+100 {
				t.Errorf("addr %d = %d, want %d (replicated tx lost)", i*8, v, i+100)
			}
		}
		return nil
	})
}
