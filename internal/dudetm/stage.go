package dudetm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// persistWindow bounds how many sealed groups may be in flight across
// the persist workers at once. The coordinator reserves a dense sequence
// number per group and blocks when the window is full, so a stalled
// worker back-pressures the whole stage instead of letting completions
// accumulate without bound.
const persistWindow = 1024

// seqWindow tracks out-of-order completion of densely numbered groups
// and exposes the contiguous-completion frontier: sequence s is "done"
// only once every sequence <= s has completed. It is a fixed-size bitmap
// ring (one bit and one saved MaxTid per in-flight group), not a heap —
// completion and frontier advance are O(groups completed), with no
// per-group allocation. next and done are written only under mu but
// read with atomics, so depth is lock-free and observers (stats,
// watchdog) never contend with the coordinator or the workers.
type seqWindow struct {
	mu   sync.Mutex
	next atomic.Uint64 // next sequence to reserve
	done atomic.Uint64 // frontier: every sequence < done has completed
	bits [persistWindow / 64]uint64
	tids [persistWindow]uint64 // MaxTid per slot, read when the frontier passes it
	// onAdvance, when set, runs under mu each time complete advances
	// the contiguous frontier, before the advance is published. Work
	// that must happen-before a WaitDurable return (the flight
	// recorder's durable-advance stamp) belongs here: a worker whose
	// advance lost the race to a later one still holds mu while
	// stamping, so the winning worker's frontier publication — and
	// therefore any snapshot taken after waiting on it — orders after
	// every stamp.
	onAdvance func(tid uint64)
}

// reserve hands out the next sequence number, blocking while the window
// is full. It returns false if the system halts (Crash) while waiting.
func (w *seqWindow) reserve(halted *atomic.Bool) (uint64, bool) {
	for spins := 0; ; spins++ {
		w.mu.Lock()
		if seq := w.next.Load(); seq-w.done.Load() < persistWindow {
			w.next.Store(seq + 1)
			w.mu.Unlock()
			return seq, true
		}
		w.mu.Unlock()
		if halted.Load() {
			return 0, false
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// complete marks seq done with the given group MaxTid. When seq extends
// the contiguous prefix it advances the frontier over every completed
// slot and returns (largest MaxTid passed, true); otherwise the
// completion is parked in the bitmap and it returns (0, false).
func (w *seqWindow) complete(seq, maxTid uint64) (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	slot := seq % persistWindow
	w.tids[slot] = maxTid
	w.bits[slot/64] |= 1 << (slot % 64)
	done := w.done.Load()
	if seq != done {
		return 0, false
	}
	next := w.next.Load()
	var last uint64
	for done < next {
		s := done % persistWindow
		if w.bits[s/64]&(1<<(s%64)) == 0 {
			break
		}
		w.bits[s/64] &^= 1 << (s % 64)
		last = w.tids[s]
		done++
	}
	w.done.Store(done)
	if w.onAdvance != nil {
		w.onAdvance(last)
	}
	return last, true
}

// depth returns the number of reserved-but-not-yet-retired sequences,
// lock-free. done is loaded first: both counters are monotonic, so a
// racing advance can only make the result conservative, never negative.
func (w *seqWindow) depth() uint64 {
	done := w.done.Load()
	return w.next.Load() - done
}

// stageMetrics is the per-stage utilization instrumentation shared by
// Persist and Reproduce: busy time, work counts, queue depth, and timer
// wakeups, all updated with atomics on the hot path.
type stageMetrics struct {
	busy     atomic.Uint64 // nanoseconds spent doing stage work
	groups   atomic.Uint64 // groups processed
	fences   atomic.Uint64 // persist barriers issued
	queue    atomic.Int64  // groups enqueued and not yet processed
	maxQueue atomic.Int64  // high-water mark of queue
	wakes    atomic.Uint64 // recycle-timer wakeups (Reproduce only)
	start    atomic.Int64  // stage start, ns since an arbitrary epoch

	// Replay-epoch instrumentation (Reproduce only): coalesced epochs,
	// entries entering / surviving last-writer-wins coalescing, and
	// cache lines written back by replay.
	epochs      atomic.Uint64
	coalesceIn  atomic.Uint64
	coalesceOut atomic.Uint64
	lines       atomic.Uint64
}

func (m *stageMetrics) markStart() { m.start.Store(time.Now().UnixNano()) }

func (m *stageMetrics) enqueue() {
	q := m.queue.Add(1)
	for {
		hi := m.maxQueue.Load()
		if q <= hi || m.maxQueue.CompareAndSwap(hi, q) {
			return
		}
	}
}

func (m *stageMetrics) dequeue() { m.queue.Add(-1) }

// snapshot renders the counters as a StageStats with the given worker
// count and busy-time divisor (1 for a stage whose busy time is wall
// time of a single ordering loop, workers for a stage that sums busy
// time across workers).
func (m *stageMetrics) snapshot(workers, busyDiv int) StageStats {
	st := StageStats{
		Workers:       workers,
		Groups:        m.groups.Load(),
		Fences:        m.fences.Load(),
		BusyNanos:     m.busy.Load(),
		QueueDepth:    max(m.queue.Load(), 0),
		MaxQueueDepth: m.maxQueue.Load(),
		TimerWakes:    m.wakes.Load(),
		Epochs:        m.epochs.Load(),
		CoalesceIn:    m.coalesceIn.Load(),
		CoalesceOut:   m.coalesceOut.Load(),
		LinesFlushed:  m.lines.Load(),
	}
	if s := m.start.Load(); s != 0 {
		st.WallNanos = uint64(time.Now().UnixNano() - s)
	}
	if st.WallNanos > 0 && busyDiv > 0 {
		st.Utilization = float64(st.BusyNanos) / float64(busyDiv) / float64(st.WallNanos)
	}
	return st
}

// StageStats is a utilization snapshot of one background stage.
type StageStats struct {
	// Workers is the configured worker count (PersistThreads or
	// ReproThreads).
	Workers int
	// Groups is the number of groups the stage has processed.
	Groups uint64
	// Fences is the number of persist barriers the stage has issued.
	Fences uint64
	// BusyNanos is time spent doing stage work: summed across workers
	// for Persist (log appends), wall time of the apply+fence section
	// for Reproduce.
	BusyNanos uint64
	// WallNanos is elapsed time since the stage started.
	WallNanos uint64
	// Utilization is BusyNanos normalized per worker over WallNanos,
	// in [0, 1] in steady state.
	Utilization float64
	// QueueDepth is the current backlog (sealed-but-unpersisted groups
	// for Persist, persisted-but-unreproduced groups for Reproduce).
	QueueDepth int64
	// MaxQueueDepth is the backlog high-water mark.
	MaxQueueDepth int64
	// TimerWakes counts recycle-timer wakeups (Reproduce only); it
	// stays flat while the pool is idle because the timer is armed only
	// when a recycle is pending.
	TimerWakes uint64
	// WindowDepth is the Persist stage's reserved-but-unretired
	// dispatch-sequence count (ModeAsync only; 0 elsewhere). It differs
	// from QueueDepth near the completion scan: a group leaves the
	// queue when its append finishes but leaves the window only when
	// the contiguous prefix passes it.
	WindowDepth uint64
	// Epochs counts coalesced replay epochs (Reproduce only): dense
	// backlog runs of 2..ReplayEpochGroups groups replayed under one
	// fence. It stays 0 under light load, when every group takes the
	// per-group fast path.
	Epochs uint64
	// CoalesceIn and CoalesceOut are the entries entering and surviving
	// last-writer-wins coalescing across epoch groups (Reproduce only);
	// In/Out is the replay-work reduction factor from coalescing.
	CoalesceIn  uint64
	CoalesceOut uint64
	// LinesFlushed counts the distinct cache lines replay wrote back
	// (Reproduce only) — the line-granular flush economy: without dedup
	// this would be one flush per 8-byte entry.
	LinesFlushed uint64
	// ReplRawBytes and ReplWireBytes are the replication sender's
	// cumulative shipped group payload before and after lz4 compression
	// (both zero when replication is not attached); their quotient is
	// the shipping compression ratio.
	ReplRawBytes  uint64
	ReplWireBytes uint64
}
