package dudetm

import (
	"fmt"
	"strings"
	"time"

	"dudetm/internal/obs/blackbox"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// TidRange is an inclusive transaction-ID range (one persist group).
type TidRange struct {
	MinTid uint64 `json:"min_tid"`
	MaxTid uint64 `json:"max_tid"`
}

// BBEvent is one decoded flight-recorder stamp, rendered for reports.
// A/B/C are the kind-specific operands (see blackbox.Kind).
type BBEvent struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	At   int64  `json:"at_unix_nano"`
	A    uint64 `json:"a"`
	B    uint64 `json:"b"`
	C    uint64 `json:"c"`
}

// eventTail bounds the event dump attached to a CrashReport.
const eventTail = 64

// CrashReport is the post-crash forensic summary of a pool image: what
// the log region proves was durable, and what the flight recorder says
// the pipeline was doing when power failed.
type CrashReport struct {
	// LogFrontier is the durable frontier recomputable from the log
	// image alone: the largest ID reachable from Anchor through a
	// gap-free chain of live groups. Recovery restores exactly this.
	LogFrontier uint64 `json:"log_frontier"`
	// Anchor is the reproduce watermark the last recycle persisted.
	Anchor uint64 `json:"anchor"`
	// LastDurableStamp is the highest durable-frontier advance the
	// flight recorder captured. Always <= LogFrontier: the stamp is
	// written back only after the group's own persist barrier.
	LastDurableStamp uint64 `json:"last_durable_stamp"`
	// SealedUnpersisted lists groups the coordinator sealed (their seal
	// stamp is on media) that never made it into a log: the work the
	// crash destroyed between seal and append.
	SealedUnpersisted []TidRange `json:"sealed_unpersisted,omitempty"`
	// InFlightFences lists groups whose fence-begin stamp is on media
	// with no matching persist-fence stamp and no surviving log group:
	// persist barriers the crash interrupted mid-append.
	InFlightFences []TidRange `json:"in_flight_fences,omitempty"`
	// TornBlackboxSlots counts recorder slots failing their CRC.
	TornBlackboxSlots int `json:"torn_blackbox_slots"`
	// TornLogs counts logs whose scan ended at a half-written record
	// (as opposed to a clean end of the durable prefix).
	TornLogs int `json:"torn_logs"`
	// LiveGroups and LiveEntries size the surviving, unrecycled log
	// content recovery has to consider.
	LiveGroups  int `json:"live_groups"`
	LiveEntries int `json:"live_entries"`
	// Events is the tail of the flight recorder from the current boot
	// epoch, oldest first.
	Events []BBEvent `json:"events,omitempty"`
}

// String renders the report as a multi-line diagnostic dump.
func (r *CrashReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash report: log frontier %d (anchor %d, last durable stamp %d)",
		r.LogFrontier, r.Anchor, r.LastDurableStamp)
	fmt.Fprintf(&b, "\n  live log content: %d groups, %d entries; %d torn log(s), %d torn recorder slot(s)",
		r.LiveGroups, r.LiveEntries, r.TornLogs, r.TornBlackboxSlots)
	for _, g := range r.SealedUnpersisted {
		fmt.Fprintf(&b, "\n  sealed but unpersisted: tids [%d,%d]", g.MinTid, g.MaxTid)
	}
	for _, g := range r.InFlightFences {
		fmt.Fprintf(&b, "\n  fence in flight at crash: tids [%d,%d]", g.MinTid, g.MaxTid)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "\n  #%-6d %-13s a=%d b=%d c=%d at %s",
			e.Seq, e.Kind, e.A, e.B, e.C, time.Unix(0, e.At).UTC().Format(time.RFC3339Nano))
	}
	return b.String()
}

// scanPool scans every persistent log of the pool at lay, returning the
// per-log scan results, the replay anchor (the largest persisted
// reproduce watermark) and every live group.
func scanPool(dev *pmem.Device, lay layout) ([]redolog.ScanResult, uint64, []redolog.Group, error) {
	results := make([]redolog.ScanResult, lay.nlogs)
	var anchor uint64
	var groups []redolog.Group
	for i := range results {
		res, err := redolog.Scan(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize)
		if err != nil {
			return nil, 0, nil, err
		}
		results[i] = res
		if res.ReproTid > anchor {
			anchor = res.ReproTid
		}
		groups = append(groups, res.Groups...)
	}
	return results, anchor, groups, nil
}

// buildCrashReport combines the log-scan evidence with the decoded
// flight-recorder stamps. Only stamps from the current boot epoch are
// analyzed: the ring keeps the newest stamps, so everything after the
// last surviving boot stamp (or everything, when the boot itself was
// lapped away) belongs to the epoch that crashed — earlier epochs may
// reference transaction IDs recovery discarded and this mount reused.
func buildCrashReport(dev *pmem.Device, lay layout, results []redolog.ScanResult,
	anchor, frontier uint64, groups []redolog.Group) *CrashReport {
	rep := &CrashReport{
		LogFrontier: frontier,
		Anchor:      anchor,
	}
	for _, res := range results {
		if res.Torn {
			rep.TornLogs++
		}
	}
	rep.LiveGroups = len(groups)
	for _, g := range groups {
		rep.LiveEntries += len(g.Entries)
	}
	if lay.bbEntries == 0 {
		return rep
	}
	recs, torn, err := blackbox.Decode(dev, lay.bbOff)
	if err != nil {
		// A destroyed ring is itself a finding, not a fatal condition:
		// the log-side evidence stands on its own.
		rep.TornBlackboxSlots = int(lay.bbEntries)
		return rep
	}
	rep.TornBlackboxSlots = torn

	// Trim to the current boot epoch.
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Kind == blackbox.KindBoot {
			recs = recs[i:]
			break
		}
	}

	// A group range present in a log survived its append, whatever the
	// stamps say.
	live := make(map[TidRange]bool, len(groups))
	for _, g := range groups {
		live[TidRange{g.MinTid, g.MaxTid}] = true
	}
	fenced := make(map[TidRange]bool) // ranges whose persist-fence stamp survived
	for _, rec := range recs {
		if rec.Kind == blackbox.KindPersistFence {
			fenced[TidRange{rec.A, rec.B}] = true
		}
	}
	for _, rec := range recs {
		tr := TidRange{rec.A, rec.B}
		switch rec.Kind {
		case blackbox.KindDurable:
			if rec.A > rep.LastDurableStamp {
				rep.LastDurableStamp = rec.A
			}
		case blackbox.KindGroupSeal:
			if tr.MinTid > frontier && !live[tr] {
				rep.SealedUnpersisted = append(rep.SealedUnpersisted, tr)
			}
		case blackbox.KindFenceBegin:
			if tr.MinTid > frontier && !live[tr] && !fenced[tr] {
				rep.InFlightFences = append(rep.InFlightFences, tr)
			}
		}
	}

	if n := len(recs); n > eventTail {
		recs = recs[n-eventTail:]
	}
	rep.Events = make([]BBEvent, len(recs))
	for i, rec := range recs {
		rep.Events[i] = BBEvent{
			Seq:  rec.Seq,
			Kind: rec.Kind.String(),
			At:   rec.At,
			A:    rec.A,
			B:    rec.B,
			C:    rec.C,
		}
	}
	return rep
}

// Forensics decodes a pool image — typically a crash image from Crash,
// a server Kill drill, or a device file on disk — into a CrashReport
// without mounting or modifying it.
func Forensics(dev *pmem.Device) (*CrashReport, error) {
	lay, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	results, anchor, groups, err := scanPool(dev, lay)
	if err != nil {
		return nil, err
	}
	frontier := denseFrontier(anchor, groups)
	return buildCrashReport(dev, lay, results, anchor, frontier, groups), nil
}

// AuditRecovery cross-checks an acknowledged-durable transaction ID
// against the recovered state: every ID acknowledged as durable before
// the crash must be at or below the recovered durable frontier. A
// failure means the durability contract was broken, and the error
// carries the forensic report for the post-mortem.
func (s *System) AuditRecovery(ackedTid uint64) error {
	durable := s.durable.Load()
	if durable >= ackedTid {
		return nil
	}
	msg := fmt.Sprintf("dudetm: durability audit failed: acked tid %d beyond recovered durable frontier %d",
		ackedTid, durable)
	if s.recov.Report != nil {
		msg += "\n" + s.recov.Report.String()
	}
	return fmt.Errorf("%s", msg)
}
