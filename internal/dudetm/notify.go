package dudetm

import (
	"container/heap"
	"errors"
	"sync"
)

// Errors delivered to durability waiters when the pool dies before
// their transaction reaches the durable frontier.
var (
	// ErrCrashed is returned by WaitDurable and WaitDurableChan when a
	// simulated power failure (Crash) tore the system down while the
	// waited-for ID was still beyond the durable frontier: the
	// transaction was never acknowledged and is discarded by recovery.
	ErrCrashed = errors.New("dudetm: crashed before transaction became durable")
	// ErrClosed is returned when the pool was closed while a waiter was
	// subscribed for an ID the pipeline will never reach (an ID beyond
	// the commit clock at Close).
	ErrClosed = errors.New("dudetm: closed before transaction became durable")
)

// durNotifier is the durable-ID subscription table. It serves two kinds
// of consumers:
//
//   - single-ID waiters (WaitDurableChan): a min-heap keyed by
//     transaction ID, so one frontier advance releases every waiter the
//     new frontier has passed in a single wake-up — the group-commit
//     amortization a network server builds its acknowledgment path on;
//   - broadcast subscribers (SubscribeDurable): coalescing channels
//     that observe the latest frontier after every advance.
//
// When the system crashes or closes, every remaining waiter is failed
// with the corresponding error and subscriber channels are closed, so
// no consumer can hang on an ID that will never become durable.
type durNotifier struct {
	mu       sync.Mutex
	frontier uint64
	failed   error
	// degraded is a soft, recoverable failure (replication quorum
	// lost): waiters beyond the frontier are failed with it, but unlike
	// failed it clears when the quorum heals and advances keep working.
	degraded error
	waiters  waiterHeap
	subs     map[chan uint64]struct{}
}

// durWaiter is one WaitDurableChan subscription. Its channel has
// capacity 1 and receives exactly one value, so the notifier never
// blocks delivering it.
type durWaiter struct {
	tid uint64
	ch  chan error
}

// wait returns a channel that receives nil once the durable frontier
// reaches tid, or an error if the system fails first. The result is
// delivered exactly once; the channel is buffered, so the caller may
// abandon it.
func (n *durNotifier) wait(tid uint64) <-chan error {
	ch := make(chan error, 1)
	n.mu.Lock()
	defer n.mu.Unlock()
	switch {
	case tid <= n.frontier:
		ch <- nil
	case n.failed != nil:
		ch <- n.failed
	case n.degraded != nil:
		ch <- n.degraded
	default:
		heap.Push(&n.waiters, durWaiter{tid: tid, ch: ch})
	}
	return ch
}

// advance publishes a new durable frontier: waiters at or below f are
// released together, and every subscriber observes the latest value
// (stale unconsumed updates are replaced, never queued).
func (n *durNotifier) advance(f uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed != nil || f <= n.frontier {
		return
	}
	n.frontier = f
	for n.waiters.Len() > 0 && n.waiters[0].tid <= f {
		heap.Pop(&n.waiters).(durWaiter).ch <- nil
	}
	for ch := range n.subs {
		select {
		case <-ch:
		default:
		}
		select {
		case ch <- f:
		default:
		}
	}
}

// fail terminates the notifier: every remaining waiter receives err
// (their IDs are beyond the final frontier) and subscriber channels are
// closed. Later wait calls observe the failure immediately; later
// advances are ignored.
func (n *durNotifier) fail(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed != nil {
		return
	}
	n.failed = err
	for n.waiters.Len() > 0 {
		heap.Pop(&n.waiters).(durWaiter).ch <- err
	}
	for ch := range n.subs {
		close(ch)
	}
	n.subs = nil
}

// setDegraded raises a soft failure: every parked waiter (all are
// beyond the frontier by construction) receives err, and later wait
// calls for IDs beyond the frontier fail immediately with it. Unlike
// fail, the notifier keeps working — advances still release IDs the
// frontier passes, subscribers stay subscribed, and clearDegraded
// restores normal parking.
func (n *durNotifier) setDegraded(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed != nil || n.degraded != nil {
		return
	}
	n.degraded = err
	for n.waiters.Len() > 0 {
		heap.Pop(&n.waiters).(durWaiter).ch <- err
	}
}

// clearDegraded ends a soft failure raised by setDegraded.
func (n *durNotifier) clearDegraded() {
	n.mu.Lock()
	n.degraded = nil
	n.mu.Unlock()
}

// subscribe registers a broadcast subscriber. The returned channel has
// capacity 1 and carries the most recent durable frontier; it is closed
// when the system fails or the cancel function runs.
func (n *durNotifier) subscribe() (ch chan uint64, cancel func()) {
	ch = make(chan uint64, 1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failed != nil {
		close(ch)
		return ch, func() {}
	}
	if n.subs == nil {
		n.subs = make(map[chan uint64]struct{})
	}
	n.subs[ch] = struct{}{}
	if n.frontier > 0 {
		ch <- n.frontier
	}
	return ch, func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if _, ok := n.subs[ch]; ok {
			delete(n.subs, ch)
			close(ch)
		}
	}
}

// waiterHeap is a min-heap of waiters keyed by transaction ID.
type waiterHeap []durWaiter

func (h waiterHeap) Len() int           { return len(h) }
func (h waiterHeap) Less(i, j int) bool { return h[i].tid < h[j].tid }
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)        { *h = append(*h, x.(durWaiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	m := old[len(old)-1]
	*h = old[:len(old)-1]
	return m
}
