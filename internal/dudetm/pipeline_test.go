package dudetm

import (
	"testing"
	"time"
)

// TestPipelineStageStats runs a write-heavy async workload through the
// parallel pipeline (2 persist workers, 4 repro appliers, groups large
// enough to take the sharded fan-out path) and checks that the stage
// utilization counters move: a zero here means work was routed around
// the worker pools.
func TestPipelineStageStats(t *testing.T) {
	cfg := testConfig()
	cfg.GroupSize = 16
	cfg.PersistThreads = 2
	cfg.ReproThreads = 4
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// 16 txs/group x 8 stores over a wide address range keeps combined
	// groups well above minShardEntries, so the appliers actually run.
	for i := uint64(0); i < 400; i++ {
		w := int(i) % cfg.Threads
		if _, err := s.Run(w, func(tx *Tx) error {
			for j := uint64(0); j < 8; j++ {
				tx.Store(((i*8+j)%(1<<14))*8, i^j)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	ps := s.PersistStats()
	if ps.Workers != 2 {
		t.Errorf("persist workers = %d, want 2", ps.Workers)
	}
	if ps.Groups == 0 || ps.Fences == 0 || ps.BusyNanos == 0 {
		t.Errorf("persist counters idle: %+v", ps)
	}
	if ps.WallNanos <= 0 || ps.Utilization < 0 || ps.Utilization > 1 {
		t.Errorf("persist utilization out of range: %+v", ps)
	}

	rs := s.ReproduceStats()
	if rs.Workers != 4 {
		t.Errorf("repro workers = %d, want 4", rs.Workers)
	}
	if rs.Groups == 0 || rs.Fences == 0 || rs.BusyNanos == 0 {
		t.Errorf("reproduce counters idle: %+v", rs)
	}
	if got := s.Stats(); got.Persist.Groups == 0 || got.Reproduce.Groups == 0 {
		t.Errorf("Stats() does not carry stage snapshots: %+v / %+v", got.Persist, got.Reproduce)
	}

	// Drained pipeline: no backlog left in either stage.
	if ps.QueueDepth != 0 {
		t.Errorf("persist queue depth %d after Drain, want 0", ps.QueueDepth)
	}
	if rs.QueueDepth != 0 {
		t.Errorf("reproduce queue depth %d after Drain, want 0", rs.QueueDepth)
	}
	if ps.MaxQueueDepth == 0 {
		t.Errorf("persist max queue depth never moved: %+v", ps)
	}
}

// TestRecycleTimerIdle checks the lazy recycle timer: once the pipeline
// drains and the deferred recycles are flushed, the timer must stop
// firing. A wake count that keeps growing while the system is idle is
// the periodic-polling regression this timer was built to remove.
func TestRecycleTimerIdle(t *testing.T) {
	cfg := testConfig()
	cfg.GroupSize = 8
	cfg.ReproThreads = 2
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := uint64(0); i < 200; i++ {
		if _, err := s.Run(int(i)%cfg.Threads, func(tx *Tx) error {
			tx.Store(i%128*8, i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	// Wait for the wake count to settle (one final fire may be pending
	// right after Drain), then require it to hold still while idle.
	var stable uint64
	deadline := time.Now().Add(2 * time.Second)
	for {
		a := s.ReproduceStats().TimerWakes
		time.Sleep(5 * recycleInterval)
		b := s.ReproduceStats().TimerWakes
		if a == b {
			stable = b
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recycle timer still firing 2s after Drain: %d -> %d", a, b)
		}
	}
	time.Sleep(50 * recycleInterval)
	if got := s.ReproduceStats().TimerWakes; got != stable {
		t.Errorf("recycle timer fired while idle: wakes %d -> %d", stable, got)
	}
}
