package dudetm

import (
	"sync/atomic"
	"testing"
	"time"

	"dudetm/internal/obs"
)

// TestTraceLifecycleTimeline runs traced transactions through the full
// pipeline and checks that TraceOf reconstructs a monotonic
// Perform→Persist→Reproduce timeline: commit first, reproduce-apply
// last, timestamps non-decreasing.
func TestTraceLifecycleTimeline(t *testing.T) {
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		cfg := testConfig()
		cfg.Mode = mode
		cfg.Threads = 2
		cfg.GroupSize = 4
		cfg.TraceSampleEvery = 1
		s, err := Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		for i := uint64(0); i < 40; i++ {
			tid, err := s.Run(int(i%2), func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
			if err != nil {
				t.Fatal(err)
			}
			last = tid
		}
		s.Drain()
		s.Close()

		recs := s.TraceOf(last)
		if len(recs) < 3 {
			t.Fatalf("mode %d: TraceOf(%d) = %d records, want a full lifecycle: %v", mode, last, len(recs), recs)
		}
		seen := map[obs.EventKind]bool{}
		var prevAt int64 = -1
		for i, r := range recs {
			if r.MinTid > last || r.MaxTid < last {
				t.Fatalf("mode %d: record %d range [%d,%d] does not cover tid %d", mode, i, r.MinTid, r.MaxTid, last)
			}
			if r.At < prevAt {
				t.Fatalf("mode %d: record %d out of time order: %d < %d (%v)", mode, i, r.At, prevAt, recs)
			}
			prevAt = r.At
			seen[r.Kind] = true
		}
		for _, k := range []obs.EventKind{obs.EvCommit, obs.EvGroupSeal, obs.EvPersistFence, obs.EvReproApply} {
			if !seen[k] {
				t.Errorf("mode %d: timeline missing %s stamp: %v", mode, k, recs)
			}
		}
		if recs[0].Kind != obs.EvCommit {
			t.Errorf("mode %d: first record = %s, want commit", mode, recs[0].Kind)
		}
		if recs[len(recs)-1].Kind != obs.EvReproApply {
			t.Errorf("mode %d: last record = %s, want reproduce-apply", mode, recs[len(recs)-1].Kind)
		}
	}
}

// TestObsStatsHistograms checks that the latency histograms in
// Stats().Obs account for every committed transaction once the
// pipeline drains: with SampleEvery=1, one commit→durable and one
// commit→reproduced observation per commit.
func TestObsStatsHistograms(t *testing.T) {
	cfg := testConfig()
	cfg.GroupSize = 4
	cfg.TraceSampleEvery = 1
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := uint64(0); i < n; i++ {
		if _, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Obs.SampleEvery != 1 || st.Obs.SampledCommits != n {
		t.Errorf("sampled commits = %d (every %d), want %d (every 1)", st.Obs.SampledCommits, st.Obs.SampleEvery, n)
	}
	if st.Obs.CommitDurable.Count != n {
		t.Errorf("commit→durable observations = %d, want %d", st.Obs.CommitDurable.Count, n)
	}
	if st.Obs.CommitReproduced.Count != n {
		t.Errorf("commit→reproduced observations = %d, want %d", st.Obs.CommitReproduced.Count, n)
	}
	if st.Obs.Fence.Count == 0 || st.Obs.GroupTxns.Count == 0 {
		t.Errorf("per-group histograms empty: fences %d groups %d", st.Obs.Fence.Count, st.Obs.GroupTxns.Count)
	}
	if st.Obs.GroupTxns.Sum != n {
		t.Errorf("group-size histogram sums to %d transactions, want %d", st.Obs.GroupTxns.Sum, n)
	}
	if p50 := st.Obs.CommitDurable.Quantile(0.5); p50 == 0 {
		t.Error("commit→durable p50 = 0, want a positive latency")
	}
}

// TestTraceCrashRecovery crashes a system while the trace rings are
// active (sampling every transaction) and checks that recovery is
// unaffected and the recovered system traces cleanly: the rings are
// volatile observability state and must never leak into the durable
// image or the replay.
func TestTraceCrashRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.Threads = 1
	cfg.TraceSampleEvery = 1
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		if _, err := s.Run(0, func(tx *Tx) error { tx.Store((i-1)*8, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-pipeline: no drain, rings torn down wherever they are.
	img := s.Crash()
	dev := s.Device()
	dev.Restore(img)

	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := s2.Durable()
	if d != s2.Reproduced() || d != s2.Clock() {
		t.Fatalf("recovered frontiers diverge: durable=%d reproduced=%d clock=%d", d, s2.Reproduced(), s2.Clock())
	}
	s2.Run(0, func(tx *Tx) error {
		for i := uint64(1); i <= d; i++ {
			if v := tx.Load((i - 1) * 8); v != i {
				t.Errorf("addr %d = %d, want %d (durable tx lost)", (i-1)*8, v, i)
			}
		}
		return nil
	})
	// The recovered system's tracing starts fresh and works.
	tid, err := s2.Run(0, func(tx *Tx) error { tx.Store(0, 42); return nil })
	if err != nil {
		t.Fatal(err)
	}
	s2.Drain()
	if recs := s2.TraceOf(tid); len(recs) == 0 || recs[0].Kind != obs.EvCommit {
		t.Errorf("post-recovery TraceOf(%d) = %v, want a fresh timeline", tid, recs)
	}
	s2.Close()
}

// TestCritpathFenceBudget pins the zero-added-fence contract of the
// tracing and critpath paths: an identical deterministic workload run
// with sampling off and with sampling 1-in-1 issues exactly the same
// number of device persist barriers, and the persist stage spends one
// fence per group in both. The critpath collector fully settles before
// the counters are read, so its work is proven to never touch the
// device.
func TestCritpathFenceBudget(t *testing.T) {
	const n = 100
	run := func(sample int) (regions map[string]uint64, stageFences, groups uint64) {
		cfg := testConfig()
		cfg.Threads = 1
		cfg.GroupSize = 1 // every txn its own group: fence count is exact
		cfg.TraceSampleEvery = sample
		s, err := Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last uint64
		for i := uint64(0); i < n; i++ {
			tid, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
			if err != nil {
				t.Fatal(err)
			}
			last = tid
		}
		if err := s.WaitDurable(last); err != nil {
			t.Fatal(err)
		}
		s.Drain()
		if sample > 0 {
			// Wait for every sampled transaction to flow through the
			// background decomposition before reading the fence counters.
			deadline := time.Now().Add(5 * time.Second)
			for {
				crit := s.Stats().Obs.Crit
				if crit.Txns+crit.Incomplete+crit.Dropped >= n {
					if crit.Txns != n {
						t.Fatalf("sampling %d: decomposed %d of %d (incomplete %d, dropped %d)",
							sample, crit.Txns, n, crit.Incomplete, crit.Dropped)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("sampling %d: collector stuck at %+v", sample, crit)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		st := s.Stats()
		s.Close()
		return regionFences(t, st), st.Persist.Fences, st.Persist.Groups
	}
	rOff, fOff, gOff := run(0)
	rOn, fOn, gOn := run(1)
	if gOff != n || gOn != n {
		t.Fatalf("groups = %d/%d, want %d each (GroupSize 1)", gOff, gOn, n)
	}
	// Steady-state cost: exactly one persist barrier per group, and the
	// log region carries exactly that barrier — identical with tracing
	// off and fully on.
	if fOff != gOff || fOn != gOn {
		t.Errorf("persist fences = %d/%d for %d groups, want one fence per group", fOff, fOn, n)
	}
	if rOff["log"] != n || rOn["log"] != n {
		t.Errorf("log-region fences = %d/%d, want exactly %d with tracing off/on", rOff["log"], rOn["log"], n)
	}
	// Boot-time regions must match exactly; tracing happens after boot.
	for _, region := range []string{"header", "blackbox"} {
		if rOn[region] != rOff[region] {
			t.Errorf("%s-region fences: %d with sampling on vs %d off", region, rOn[region], rOff[region])
		}
	}
	// Batched maintenance (meta recycles on a deferral timer, data
	// replay epochs under backlog) may split a batch differently when
	// the tracer shifts timing by microseconds — but it must stay
	// batched, nowhere near one fence per transaction.
	for _, region := range []string{"meta", "data"} {
		if rOn[region] > n/4 || rOff[region] > n/4 {
			t.Errorf("%s-region fences = %d/%d for %d txns — maintenance no longer batched",
				region, rOff[region], rOn[region], n)
		}
	}
}

// regionFences indexes a Stats snapshot's per-region fence counters.
func regionFences(t *testing.T, st Stats) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, r := range st.Regions {
		out[r.Name] = r.Fences
	}
	return out
}

// TestWatchdogQuietDuringPauseDrills pins the suppression contract:
// PausePersist / PauseReproduce freeze a frontier with work queued
// behind it — the exact shape of a stall — and the watchdog must not
// fire, because the pause flags explain the freeze.
func TestWatchdogQuietDuringPauseDrills(t *testing.T) {
	var fired atomic.Int64
	cfg := testConfig()
	cfg.Threads = 1
	// Wide enough that two consecutive ticks never both land inside one
	// race-detector scheduling hiccup (a 2ms interval false-fires under
	// -race); the pause sleeps below still span several ticks, so the
	// watchdog does sample the frozen-frontier shape it must stay quiet
	// about.
	cfg.Watchdog = 25 * time.Millisecond
	cfg.OnStall = func(StallReport) { fired.Add(1) }
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(n int) uint64 {
		var last uint64
		for i := 0; i < n; i++ {
			tid, err := s.Run(0, func(tx *Tx) error { tx.Store(0, uint64(i)); return nil })
			if err != nil {
				t.Fatal(err)
			}
			last = tid
		}
		return last
	}
	run(20)

	s.PausePersist()
	run(10) // commits pile up behind the frozen durable frontier
	time.Sleep(100 * time.Millisecond)
	s.ResumePersist()

	last := run(10)
	s.WaitDurable(last)
	s.PauseReproduce()
	run(10)
	time.Sleep(100 * time.Millisecond)
	s.ResumeReproduce()

	s.Drain()
	s.Close()
	if n := fired.Load(); n != 0 {
		t.Fatalf("watchdog fired %d times during pause drills", n)
	}
	if st := s.Stats(); st.Stalls != 0 {
		t.Fatalf("Stats().Stalls = %d during pause drills", st.Stalls)
	}
}

// TestWatchdogFiresOnGenuineStall wedges the Persist coordinator
// directly — holding its gate without raising the pause flag, the
// shape of a real deadlock — and checks the watchdog fires with a
// usable report.
func TestWatchdogFiresOnGenuineStall(t *testing.T) {
	reports := make(chan StallReport, 16)
	cfg := testConfig()
	cfg.Threads = 1
	cfg.TraceSampleEvery = 1
	cfg.Watchdog = 2 * time.Millisecond
	cfg.OnStall = func(r StallReport) {
		select {
		case reports <- r:
		default:
		}
	}
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Run(0, func(tx *Tx) error { tx.Store(0, 1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	s.persistGate.Lock() // wedge the coordinator, no pause flag
	for i := 0; i < 5; i++ {
		if _, err := s.Run(0, func(tx *Tx) error { tx.Store(8, 2); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	var rep StallReport
	select {
	case rep = <-reports:
	case <-time.After(2 * time.Second):
		s.persistGate.Unlock()
		t.Fatal("watchdog never fired on a wedged persist coordinator")
	}
	s.persistGate.Unlock()

	if rep.Stage != "persist" {
		t.Errorf("report stage = %q, want persist", rep.Stage)
	}
	if rep.Clock <= rep.Durable {
		t.Errorf("report clock=%d durable=%d: no work behind the frontier", rep.Clock, rep.Durable)
	}
	if len(rep.Trace) == 0 {
		t.Error("report carries no trace tail")
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}

	s.Drain()
	s.Close()
	if s.Stats().Stalls == 0 {
		t.Error("Stats().Stalls = 0 after a detected stall")
	}
	if s.LastStall() == nil {
		t.Error("LastStall() = nil after a detected stall")
	}
}

// TestStallVerdict unit-tests the watchdog's pure decision function.
func TestStallVerdict(t *testing.T) {
	base := watchSample{valid: true, clock: 10, durable: 5, reproduced: 5}
	cases := []struct {
		name         string
		prev, cur    watchSample
		wantP, wantR bool
	}{
		{"first tick", watchSample{}, base, false, false},
		{"persist stuck", base, base, true, false},
		{"durable moved", base, watchSample{valid: true, clock: 12, durable: 7, reproduced: 5}, false, false},
		{"repro stuck", watchSample{valid: true, clock: 10, durable: 10, reproduced: 5},
			watchSample{valid: true, clock: 10, durable: 10, reproduced: 5}, false, true},
		{"both stuck", watchSample{valid: true, clock: 10, durable: 8, reproduced: 5},
			watchSample{valid: true, clock: 10, durable: 8, reproduced: 5}, true, true},
		{"idle", watchSample{valid: true, clock: 5, durable: 5, reproduced: 5},
			watchSample{valid: true, clock: 5, durable: 5, reproduced: 5}, false, false},
		{"persist paused", base, watchSample{valid: true, clock: 10, durable: 5, reproduced: 5, persistPaused: true}, false, false},
		{"persist pause also masks repro", watchSample{valid: true, clock: 10, durable: 8, reproduced: 5, persistPaused: true},
			watchSample{valid: true, clock: 10, durable: 8, reproduced: 5, persistPaused: true}, false, false},
		{"repro paused", watchSample{valid: true, clock: 10, durable: 10, reproduced: 5, reproPaused: true},
			watchSample{valid: true, clock: 10, durable: 10, reproduced: 5, reproPaused: true}, false, false},
		{"pause just released", watchSample{valid: true, clock: 10, durable: 5, reproduced: 5, persistPaused: true},
			base, false, false},
		{"shutdown", base, watchSample{valid: true, clock: 10, durable: 5, reproduced: 5, quiet: true}, false, false},
	}
	for _, c := range cases {
		p, r := stallVerdict(c.prev, c.cur)
		if p != c.wantP || r != c.wantR {
			t.Errorf("%s: verdict = (%v,%v), want (%v,%v)", c.name, p, r, c.wantP, c.wantR)
		}
	}
}

// TestWindowDepthStat checks the lock-free window gauge: zero when the
// pipeline has drained, and wired into PersistStats.
func TestWindowDepthStat(t *testing.T) {
	cfg := testConfig()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if _, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	s.Close()
	if d := s.PersistStats().WindowDepth; d != 0 {
		t.Fatalf("window depth = %d after drain, want 0", d)
	}
	if s.window.next.Load() == 0 {
		t.Fatal("window never reserved a sequence")
	}
}
