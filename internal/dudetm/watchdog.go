package dudetm

import (
	"fmt"
	"log"
	"strings"
	"time"

	"dudetm/internal/obs"
	"dudetm/internal/obs/blackbox"
)

// StallReport is the watchdog's diagnostic dump for one stall episode:
// a frontier with work queued behind it failed to advance across two
// consecutive watchdog samples.
type StallReport struct {
	// Stage is the stalled stage, "persist" or "reproduce".
	Stage string
	// Interval is the watchdog sampling interval the frontier sat
	// still across.
	Interval time.Duration
	// Clock, Durable and Reproduced are the pipeline frontiers at
	// detection time.
	Clock, Durable, Reproduced uint64
	// PersistQueue and ReproQueue are the stage backlogs (sealed
	// groups awaiting append; persisted groups awaiting replay).
	PersistQueue, ReproQueue int64
	// WindowDepth is the persist dispatch window's in-flight count.
	WindowDepth uint64
	// Trace is the tail of the lifecycle trace rings — the last
	// stamps the pipeline managed before it stopped moving.
	Trace []obs.Record
}

// String renders the report as a multi-line diagnostic dump.
func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s stage stalled for %v: clock=%d durable=%d reproduced=%d persistQ=%d reproQ=%d window=%d",
		r.Stage, r.Interval, r.Clock, r.Durable, r.Reproduced, r.PersistQueue, r.ReproQueue, r.WindowDepth)
	for _, rec := range r.Trace {
		fmt.Fprintf(&b, "\n  %-15s tids [%d,%d] at +%v", rec.Kind, rec.MinTid, rec.MaxTid, time.Duration(rec.At))
	}
	return b.String()
}

// watchSample is one watchdog observation of the pipeline frontiers and
// the states that legitimately freeze them.
type watchSample struct {
	valid                      bool
	clock, durable, reproduced uint64
	persistPaused, reproPaused bool
	quiet                      bool // stopping or halted: shutdown, not a stall
}

func (s *System) sampleWatch() watchSample {
	return watchSample{
		valid:         true,
		clock:         s.engine.Clock(),
		durable:       s.durable.Load(),
		reproduced:    s.reproduced.Load(),
		persistPaused: s.persistPaused.Load(),
		reproPaused:   s.reproPaused.Load(),
		quiet:         s.stopping.Load() || s.halted.Load(),
	}
}

// stallVerdict is the watchdog's pure decision function: a stage is
// stalled when its input frontier was ahead of its output frontier at
// both samples and the output frontier did not move between them.
// Operator pauses suppress the verdict — a reproduce verdict is also
// suppressed while Persist is paused, because the pause freezes the
// upstream feed. Shutdown (stopping/halted) at either sample
// suppresses everything. The residual-backlog problem — a resumed
// stage is not guaranteed to drain the work that piled up during the
// pause within one tick — is handled by the caller's post-pause hold
// (see watchdogLoop), not here.
func stallVerdict(prev, cur watchSample) (persist, repro bool) {
	if !prev.valid || cur.quiet || prev.quiet {
		return false, false
	}
	pPaused := cur.persistPaused || prev.persistPaused
	rPaused := cur.reproPaused || prev.reproPaused || pPaused
	persist = !pPaused &&
		prev.clock > prev.durable && cur.clock > cur.durable &&
		cur.durable == prev.durable
	repro = !rPaused &&
		prev.durable > prev.reproduced && cur.durable > cur.reproduced &&
		cur.reproduced == prev.reproduced
	return persist, repro
}

// watchdogLoop samples the pipeline every interval and fires OnStall
// once per stall episode (the report repeats only after the frontier
// moves and sticks again, not on every tick of one long stall).
func (s *System) watchdogLoop(interval time.Duration) {
	defer s.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var prev watchSample
	persistFiring, reproFiring := false, false
	// Post-pause hold: a pause freezes a frontier with work queued
	// behind it — the exact shape of a stall — and the backlog it
	// leaves is not guaranteed to drain within one tick of the resume
	// (nor within any fixed number: one slow group mid-drain re-freezes
	// the frontier). A pause therefore arms a hold on the stage's
	// verdict (persist pause also holds reproduce, whose feed it froze)
	// that is released only when the stage catches its input frontier —
	// the pause's backlog is fully cleared. The trade: a stage wedged
	// during or just after a pause drill is reported only after it
	// catches up once and sticks again.
	persistHold, reproHold := false, false
	for {
		select {
		case <-s.watchStop:
			return
		case <-ticker.C:
		}
		cur := s.sampleWatch()
		if cur.durable >= cur.clock {
			persistHold = false
		}
		if cur.reproduced >= cur.durable {
			reproHold = false
		}
		if cur.persistPaused {
			persistHold, reproHold = true, true
		}
		if cur.reproPaused {
			reproHold = true
		}
		p, r := stallVerdict(prev, cur)
		p = p && !persistHold
		r = r && !reproHold
		if p && !persistFiring {
			s.fireStall("persist", interval, cur)
		}
		if r && !reproFiring {
			s.fireStall("reproduce", interval, cur)
		}
		persistFiring, reproFiring = p, r
		prev = cur
	}
}

// stallTraceTail bounds the trace dump attached to a stall report.
const stallTraceTail = 32

func (s *System) fireStall(stage string, interval time.Duration, cur watchSample) {
	rep := StallReport{
		Stage:        stage,
		Interval:     interval,
		Clock:        cur.clock,
		Durable:      cur.durable,
		Reproduced:   cur.reproduced,
		PersistQueue: max(s.pm.queue.Load(), 0),
		ReproQueue:   max(s.rm.queue.Load(), 0),
		WindowDepth:  s.window.depth(),
		Trace:        s.obs.TraceTail(stallTraceTail),
	}
	s.stalls.Add(1)
	s.lastStall.Store(&rep)
	// Synced immediately: if the stall ends in a crash, the stamp is the
	// forensic evidence the pipeline was wedged, not merely behind.
	stageCode := uint64(1)
	if stage == "reproduce" {
		stageCode = 2
	}
	s.bbStamp(blackbox.KindStall, stageCode, cur.durable, cur.reproduced)
	s.bbSync()
	if s.cfg.OnStall != nil {
		s.cfg.OnStall(rep)
		return
	}
	log.Printf("dudetm: %s", rep.String())
}
