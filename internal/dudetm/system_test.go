package dudetm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dudetm/internal/pmem"
	"dudetm/internal/stm"
)

// testConfig returns a small, delay-free configuration.
func testConfig() Config {
	return Config{
		DataSize:    1 << 20,
		Threads:     4,
		VLogEntries: 1 << 12,
		LogBufBytes: 64 << 10,
	}
}

// variants enumerates the mode/engine/shadow combinations under test.
func variants() map[string]Config {
	v := map[string]Config{}
	base := testConfig()
	for _, m := range []struct {
		name string
		mode Mode
	}{{"async", ModeAsync}, {"sync", ModeSync}} {
		for _, e := range []struct {
			name string
			kind EngineKind
		}{{"stm", EngineSTM}, {"htm", EngineHTM}} {
			cfg := base
			cfg.Mode = m.mode
			cfg.Engine = e.kind
			v[m.name+"/"+e.name+"/flat"] = cfg
		}
	}
	paged := base
	paged.Shadow = ShadowSW
	paged.ShadowBytes = 64 << 10
	v["async/stm/swpaged"] = paged
	pagedHW := paged
	pagedHW.Shadow = ShadowHW
	v["async/stm/hwpaged"] = pagedHW
	return v
}

func TestBasicDurableTransactions(t *testing.T) {
	for name, cfg := range variants() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var last uint64
			for i := uint64(0); i < 100; i++ {
				tid, err := s.Run(0, func(tx *Tx) error {
					tx.Store(i*8, i+1)
					tx.Store((i+1)*8, tx.Load(i*8)*2)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				last = tid
			}
			s.WaitDurable(last)
			// Verify through a read-only transaction.
			_, err = s.Run(0, func(tx *Tx) error {
				if tx.Load(0) != 1 || tx.Load(8) != 2 {
					t.Errorf("got %d,%d", tx.Load(0), tx.Load(8))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Close()
			st := s.Stats()
			if st.Committed != 100 {
				t.Errorf("committed = %d", st.Committed)
			}
			if st.Durable < last || st.Reproduced < last {
				t.Errorf("after close: durable=%d reproduced=%d last=%d", st.Durable, st.Reproduced, last)
			}
		})
	}
}

func TestAbortAndErrorPaths(t *testing.T) {
	for name, cfg := range variants() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Run(0, func(tx *Tx) error { tx.Store(0, 7); return nil })
			if _, err := s.Run(0, func(tx *Tx) error {
				tx.Store(0, 99)
				tx.Abort()
				return nil
			}); !errors.Is(err, stm.ErrAborted) {
				t.Fatalf("err = %v", err)
			}
			boom := errors.New("boom")
			if _, err := s.Run(0, func(tx *Tx) error {
				tx.Store(0, 100)
				return boom
			}); !errors.Is(err, boom) {
				t.Fatalf("err = %v", err)
			}
			s.Run(0, func(tx *Tx) error {
				if v := tx.Load(0); v != 7 {
					t.Errorf("abort leaked: %d", v)
				}
				return nil
			})
		})
	}
}

func TestReadOnlyDurability(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wtid, _ := s.Run(0, func(tx *Tx) error { tx.Store(0, 1); return nil })
	s.WaitDurable(wtid)
	rtid, err := s.Run(0, func(tx *Tx) error { _ = tx.Load(0); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rtid > s.Durable() {
		t.Fatalf("read-only tid %d beyond durable %d", rtid, s.Durable())
	}
}

func TestConcurrentBank(t *testing.T) {
	for name, cfg := range variants() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const accounts = 32
			const initial = 100
			s.Run(0, func(tx *Tx) error {
				for i := uint64(0); i < accounts; i++ {
					tx.Store(i*8, initial)
				}
				return nil
			})
			var wg sync.WaitGroup
			for w := 0; w < cfg.Threads; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := uint64(w)*2654435761 + 7
					for i := 0; i < 300; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						src := (rng >> 30) % accounts
						dst := (rng >> 10) % accounts
						if src == dst {
							continue
						}
						s.Run(w, func(tx *Tx) error {
							b := tx.Load(src * 8)
							if b == 0 {
								tx.Abort()
							}
							tx.Store(src*8, b-1)
							tx.Store(dst*8, tx.Load(dst*8)+1)
							return nil
						})
					}
				}(w)
			}
			wg.Wait()
			s.Run(0, func(tx *Tx) error {
				var sum uint64
				for i := uint64(0); i < accounts; i++ {
					sum += tx.Load(i * 8)
				}
				if sum != accounts*initial {
					t.Errorf("sum = %d, want %d", sum, accounts*initial)
				}
				return nil
			})
			s.Close()
		})
	}
}

// restoreInto clones the persisted image of s's device into a fresh one.
func restoreInto(s *System) *pmem.Device {
	img := s.Device().PersistedImage()
	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	return dev
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	for name, cfg := range variants() {
		t.Run(name, func(t *testing.T) {
			s, err := Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 50; i++ {
				s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1000); return nil })
			}
			s.Close()
			dev := restoreInto(s)

			s2, err := Recover(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			s2.Run(0, func(tx *Tx) error {
				for i := uint64(0); i < 50; i++ {
					if v := tx.Load(i * 8); v != i+1000 {
						t.Errorf("addr %d = %d, want %d", i*8, v, i+1000)
					}
				}
				return nil
			})
			// New transactions must work and be durable.
			tid, err := s2.Run(0, func(tx *Tx) error { tx.Store(400, 1); return nil })
			if err != nil {
				t.Fatal(err)
			}
			s2.WaitDurable(tid)
		})
	}
}

func TestCrashDurableNotReproduced(t *testing.T) {
	// Transactions persisted to the log but never applied to data:
	// recovery must replay them from the log.
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		cfg := testConfig()
		cfg.Mode = mode
		s, err := Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.PauseReproduce()
		var last uint64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := uint64(0); i < 20; i++ {
				tid, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
				if err == nil {
					last = tid
				}
			}
		}()
		<-done
		s.WaitDurable(last)
		time.Sleep(20 * time.Millisecond) // let the persist loop go idle
		dev := restoreInto(s)
		s.ResumeReproduce()
		s.Close()

		s2, err := Recover(dev, cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		s2.Run(0, func(tx *Tx) error {
			for i := uint64(0); i < 20; i++ {
				if v := tx.Load(i * 8); v != i+1 {
					t.Errorf("mode %d: addr %d = %d, want %d (durable tx lost)", mode, i*8, v, i+1)
				}
			}
			return nil
		})
		// The durability audit cross-checks the acked frontier against
		// the recovered image and attaches the forensic report on
		// failure.
		if err := s2.AuditRecovery(last); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
		s2.Close()
	}
}

func TestCrashCommittedNotPersisted(t *testing.T) {
	// Transactions that committed in Perform but whose logs never hit
	// NVM: after a crash they are gone — and they were never
	// acknowledged as durable, so that is the correct semantics.
	cfg := testConfig()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.PausePersist()
	time.Sleep(10 * time.Millisecond) // persist loop parks at the gate
	for i := uint64(0); i < 20; i++ {
		s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
	}
	if d := s.Durable(); d != 0 {
		t.Fatalf("durable = %d with persist paused", d)
	}
	dev := restoreInto(s)
	s.ResumePersist()
	s.Close()

	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < 20; i++ {
			if v := tx.Load(i * 8); v != 0 {
				t.Errorf("addr %d = %d: unacknowledged tx survived crash", i*8, v)
			}
		}
		return nil
	})
	if c := s2.Clock(); c != 0 {
		t.Errorf("recovered clock = %d, want 0", c)
	}
}

func TestCrashMidPipelineBankInvariant(t *testing.T) {
	cfg := testConfig()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const accounts = 16
	const initial = 50
	init, _ := s.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < accounts; i++ {
			tx.Store(i*8, initial)
		}
		return nil
	})
	s.WaitDurable(init)
	// Freeze Reproduce mid-run so the crash happens with a deep log.
	s.PauseReproduce()
	var wg sync.WaitGroup
	var lastMu sync.Mutex
	var last uint64
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*40503 + 11
			for i := 0; i < 100; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				src := (rng >> 30) % accounts
				dst := (rng >> 10) % accounts
				if src == dst {
					continue
				}
				tid, err := s.Run(w, func(tx *Tx) error {
					b := tx.Load(src * 8)
					if b == 0 {
						tx.Abort()
					}
					tx.Store(src*8, b-1)
					tx.Store(dst*8, tx.Load(dst*8)+1)
					return nil
				})
				if err == nil {
					lastMu.Lock()
					if tid > last {
						last = tid
					}
					lastMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	s.WaitDurable(last)
	time.Sleep(20 * time.Millisecond)
	dev := restoreInto(s)
	s.ResumeReproduce()
	s.Close()

	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AuditRecovery(last); err != nil {
		t.Errorf("durable regressed: %v", err)
	}
	s2.Run(0, func(tx *Tx) error {
		var sum uint64
		for i := uint64(0); i < accounts; i++ {
			sum += tx.Load(i * 8)
		}
		if sum != accounts*initial {
			t.Errorf("sum after crash+recovery = %d, want %d", sum, accounts*initial)
		}
		return nil
	})
}

func TestGroupCombination(t *testing.T) {
	cfg := testConfig()
	cfg.GroupSize = 50
	cfg.FlushInterval = time.Millisecond
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 200 transactions all hammering the same 4 words: combination
	// should collapse most entries.
	var last uint64
	for i := uint64(0); i < 200; i++ {
		last, _ = s.Run(0, func(tx *Tx) error {
			tx.Store((i%4)*8, i)
			return nil
		})
	}
	s.WaitDurable(last)
	s.Close()
	st := s.Stats()
	if st.RawEntries != 200 {
		t.Fatalf("raw entries = %d", st.RawEntries)
	}
	if st.CombEntries >= st.RawEntries/10 {
		t.Fatalf("combination ineffective: %d -> %d", st.RawEntries, st.CombEntries)
	}
	// Final state must still be correct.
	dev := restoreInto(s)
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Run(0, func(tx *Tx) error {
		// Last writes to words 0..3 were i=196..199.
		for w := uint64(0); w < 4; w++ {
			want := 196 + w
			if v := tx.Load(w * 8); v != want {
				t.Errorf("word %d = %d, want %d", w, v, want)
			}
		}
		return nil
	})
}

func TestCompressionEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.GroupSize = 100
	cfg.Compress = true
	cfg.FlushInterval = time.Millisecond
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := uint64(0); i < 500; i++ {
		last, _ = s.Run(0, func(tx *Tx) error {
			tx.Store((i%64)*8, 7) // compressible payload
			return nil
		})
	}
	s.WaitDurable(last)
	s.Close()
	dev := restoreInto(s)
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Run(0, func(tx *Tx) error {
		for w := uint64(0); w < 64; w++ {
			if v := tx.Load(w * 8); v != 7 {
				t.Errorf("word %d = %d", w, v)
			}
		}
		return nil
	})
}

func TestRunAfterClosePanics(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Run(0, func(tx *Tx) error { return nil })
}

func TestRecoverRejectsGarbage(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20})
	dev.Store8(0, 0xbad)
	dev.Persist(0, 8)
	if _, err := Recover(dev, testConfig()); err == nil {
		t.Fatal("garbage pool accepted")
	}
}

func TestPagedShadowEndToEnd(t *testing.T) {
	for _, kind := range []ShadowKind{ShadowSW, ShadowHW} {
		cfg := testConfig()
		cfg.Shadow = kind
		cfg.ShadowBytes = 32 << 10 // 8 frames of 4K over 1MB data: heavy paging
		s, err := Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Touch many pages, forcing eviction and swap-in waits.
		var last uint64
		for i := uint64(0); i < 200; i++ {
			addr := (i % 100) * 8192 // stride across pages
			last, _ = s.Run(int(i)%cfg.Threads, func(tx *Tx) error {
				tx.Store(addr, tx.Load(addr)+1)
				return nil
			})
		}
		s.WaitDurable(last)
		// Each of the 100 addresses incremented twice.
		s.Run(0, func(tx *Tx) error {
			for i := uint64(0); i < 100; i++ {
				if v := tx.Load(i * 8192); v != 2 {
					t.Errorf("kind %d: addr %d = %d, want 2", kind, i*8192, v)
				}
			}
			return nil
		})
		st := s.ShadowStats()
		if st.Faults == 0 {
			t.Errorf("kind %d: no faults recorded", kind)
		}
		s.Close()
	}
}

func TestStatsCounters(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		s.Run(0, func(tx *Tx) error {
			tx.Store(i*8, i)
			tx.Store(i*8+512, i)
			return nil
		})
	}
	s.Close()
	st := s.Stats()
	if st.Writes != 20 {
		t.Errorf("writes = %d", st.Writes)
	}
	if st.Committed != 10 {
		t.Errorf("committed = %d", st.Committed)
	}
	if st.Groups == 0 || st.LogBytes == 0 {
		t.Errorf("groups=%d logbytes=%d", st.Groups, st.LogBytes)
	}
	if st.Device.BytesFlushed == 0 {
		t.Errorf("no NVM writes recorded")
	}
}
