// Package dudetm implements the DudeTM durable transaction system: the
// decoupled Perform / Persist / Reproduce pipeline of the paper, over the
// simulated persistent memory in internal/pmem, the TM engines in
// internal/stm, the shadow memory in internal/shadow, and the redo logs
// in internal/redolog.
//
// A transaction executes in three fully asynchronous steps:
//
//	Perform   — run on shadow DRAM under an out-of-the-box TM, emitting a
//	            volatile redo log per thread (never touching NVM).
//	Persist   — a background thread merges the volatile logs in commit-ID
//	            order, optionally combines and compresses groups of
//	            transactions, and flushes each group to the persistent
//	            log region with a single persist barrier, advancing the
//	            global durable ID.
//	Reproduce — a background thread replays persisted groups, in ID
//	            order, into the persistent data region, then recycles
//	            their log space.
//
// Dirty shadow data is never written back directly; the redo log is the
// only channel into persistent memory, so CPU-cache evictions (simulated
// by pmem) can never corrupt the durable state.
package dudetm

import (
	"os"
	"runtime"
	"strconv"
	"time"

	"dudetm/internal/pmem"
)

// Mode selects how the Persist step is driven.
type Mode int

const (
	// ModeAsync is DudeTM proper: Run returns after Perform; Persist and
	// Reproduce happen on background threads.
	ModeAsync Mode = iota
	// ModeSync is the DUDETM-Sync baseline (§5.1): each transaction
	// flushes its own redo log synchronously after Perform and returns
	// only once it is durable. Perform threads cannot run back-to-back.
	ModeSync
)

// EngineKind selects the TM the Perform step runs on.
type EngineKind int

const (
	// EngineSTM is the TinySTM-like software TM.
	EngineSTM EngineKind = iota
	// EngineHTM is the simulated hardware TM (§4.2).
	EngineHTM
)

// ShadowKind selects the shadow-memory configuration.
type ShadowKind int

const (
	// ShadowFlat mirrors the whole data region in DRAM (no paging).
	ShadowFlat ShadowKind = iota
	// ShadowSW uses software paging over ShadowBytes of DRAM.
	ShadowSW
	// ShadowHW uses simulated hardware (Dune-style) paging.
	ShadowHW
)

// Config describes a DudeTM system.
type Config struct {
	// DataSize is the persistent data region size in bytes (page
	// aligned).
	DataSize uint64
	// Threads is the number of Perform threads; Run's slot argument
	// must be in [0, Threads).
	Threads int
	// Mode selects asynchronous (decoupled) or synchronous persistence.
	Mode Mode
	// Engine selects the TM implementation.
	Engine EngineKind
	// Shadow selects the shadow-memory configuration.
	Shadow ShadowKind
	// ShadowBytes is the shadow DRAM budget for paged configurations.
	ShadowBytes uint64
	// PageSize is the paging granularity (default 4096).
	PageSize uint64
	// VLogEntries is the per-thread volatile redo-log capacity in
	// entries (default 1<<20, the paper's one million; use a large
	// value for the DUDETM-Inf configuration).
	VLogEntries int
	// LogBufBytes is the size of each persistent log buffer (default
	// 8 MiB).
	LogBufBytes uint64
	// GroupSize is the number of consecutive transactions combined into
	// one persist group (default 1 = no cross-transaction combination).
	GroupSize int
	// Compress enables lz4 compression of persisted groups.
	Compress bool
	// FlushInterval bounds how long a partially filled group may wait
	// before being persisted anyway (default 50us).
	FlushInterval time.Duration
	// RecycleEvery batches log recycling: the reproducer persists log
	// head metadata every N groups (default 64; a lazily armed timer
	// bounds how long a pending recycle can be deferred).
	RecycleEvery int
	// PersistThreads is the number of Persist-step log writers in
	// ModeAsync (§4.4): a coordinator merges the volatile rings in
	// commit-ID order and deals sealed groups round-robin to workers,
	// each owning its own persistent log region. Default
	// min(2, GOMAXPROCS), overridable with DUDETM_STAGE_THREADS.
	PersistThreads int
	// ReproThreads is the number of Reproduce-step appliers: each
	// group's combined entries are split by address shard
	// (cache line % N, so a line never spans shards) and applied
	// concurrently under one fence. Default min(2, GOMAXPROCS),
	// overridable with DUDETM_STAGE_THREADS.
	ReproThreads int
	// ReplayEpochGroups caps how many consecutive groups the Reproduce
	// step may coalesce into one replay epoch when it has fallen behind
	// (a dense backlog is buffered). Within an epoch duplicate
	// addresses collapse last-writer-wins and a single fence covers the
	// whole epoch, amortizing replay ordering across the backlog (only
	// per-address last-writer order matters — MOD). 1 disables
	// coalescing; default 16. Epochs form only under backlog, so light
	// load always takes the per-group fast path.
	ReplayEpochGroups int
	// ReplayEpochEntries bounds the combined (pre-coalesce) entry count
	// of one replay epoch, so huge groups don't pile into unbounded
	// epoch buffers (default 1<<16).
	ReplayEpochEntries int
	// TraceSampleEvery enables lifecycle tracing for every N-th
	// transaction ID: sampled transactions are stamped at commit,
	// group-seal, persist-fence and reproduce-apply (TraceOf
	// reconstructs the timeline) and their commit→durable /
	// commit→reproduced latencies feed the obs histograms. 1 traces
	// everything; 0 disables per-transaction tracing (the default,
	// overridable with DUDETM_TRACE_SAMPLE). Per-group metrics (fence
	// duration, group size, queue dwell) are always recorded.
	TraceSampleEvery int
	// TraceRingEntries is the per-source trace-ring capacity
	// (default 4096).
	TraceRingEntries int
	// Watchdog enables the stall watchdog: when > 0, a background
	// goroutine samples the pipeline every Watchdog interval and calls
	// OnStall when a frontier with work queued behind it fails to
	// advance across two consecutive samples (pauses via PausePersist /
	// PauseReproduce are suppressed). 0 disables it.
	Watchdog time.Duration
	// OnStall receives stall reports from the watchdog; nil logs the
	// report to the standard logger.
	OnStall func(StallReport)
	// BlackboxEntries sizes the persistent flight-recorder ring (one
	// 64-byte slot per entry, in its own pool region): the pipeline
	// stamps it at persistence milestones and the post-crash forensics
	// pass decodes the survivors into the CrashReport. 0 selects the
	// default (1024 slots); a negative value disables the recorder.
	BlackboxEntries int
	// ReplFactor is the number of peer replicas the attached
	// replication sender ships sealed groups to (R; 0 = replication
	// off). The pool itself only gates on acks — the sender attached
	// with EnableReplication does the shipping.
	ReplFactor int
	// ReplQuorum is the number of replica acknowledgments a transaction
	// needs, beyond local log durability, before WaitDurable releases
	// it (Q; default ReplFactor when ReplFactor > 0, i.e. wait for all
	// replicas).
	ReplQuorum int
	// ReplDegradeLocal selects the degraded-mode behavior when fewer
	// than ReplQuorum replicas are live: true falls back to local-only
	// durability (flagged in metrics, never silent); false fails
	// waiters with ErrQuorumLost until the quorum heals.
	ReplDegradeLocal bool
	// OrecCount overrides the STM ownership-record table size.
	OrecCount uint64
	// Pmem carries the NVM timing model (latency, bandwidth,
	// DelayEnabled); its Size field is computed from the layout.
	Pmem pmem.Config
}

func (c *Config) applyDefaults() {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.VLogEntries == 0 {
		c.VLogEntries = 1 << 20
	}
	if c.LogBufBytes == 0 {
		c.LogBufBytes = 8 << 20
	}
	if c.GroupSize == 0 {
		c.GroupSize = 1
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 50 * time.Microsecond
	}
	if c.RecycleEvery == 0 {
		c.RecycleEvery = 64
	}
	if c.PersistThreads == 0 {
		c.PersistThreads = defaultStageThreads()
	}
	if c.ReproThreads == 0 {
		c.ReproThreads = defaultStageThreads()
	}
	if c.ReplayEpochGroups == 0 {
		c.ReplayEpochGroups = 16
	}
	if c.ReplayEpochEntries == 0 {
		c.ReplayEpochEntries = 1 << 16
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = defaultTraceSample()
	}
	if c.TraceSampleEvery < 0 {
		c.TraceSampleEvery = 0
	}
	if c.BlackboxEntries == 0 {
		c.BlackboxEntries = 1024
	}
	if c.DataSize == 0 {
		c.DataSize = 64 << 20
	}
	if c.ReplFactor > 0 && c.ReplQuorum == 0 {
		c.ReplQuorum = c.ReplFactor
	}
	c.DataSize = (c.DataSize + c.PageSize - 1) &^ (c.PageSize - 1)
}

// bbEntries resolves BlackboxEntries to a ring slot count (0 when the
// recorder is disabled).
func (c *Config) bbEntries() uint64 {
	if c.BlackboxEntries <= 0 {
		return 0
	}
	return uint64(c.BlackboxEntries)
}

// defaultStageThreads resolves the default worker count for the two
// background stages: DUDETM_STAGE_THREADS when set (the CI knob that
// forces the parallel paths even in configs that don't ask for them),
// otherwise min(2, GOMAXPROCS).
func defaultStageThreads() int {
	if v := os.Getenv("DUDETM_STAGE_THREADS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return min(2, runtime.GOMAXPROCS(0))
}

// defaultTraceSample resolves the default trace-sampling period:
// DUDETM_TRACE_SAMPLE when set (the CI knob that exercises the tracing
// paths in configs that don't ask for them), otherwise disabled. A
// negative Config.TraceSampleEvery forces tracing off even when the
// environment sets a period.
func defaultTraceSample() int {
	if v := os.Getenv("DUDETM_TRACE_SAMPLE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}
