package dudetm

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dudetm/internal/obs/blackbox"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// Pool layout on the simulated NVM device:
//
//	[0,   64)               header (magic, nlogs, logSize, dataSize,
//	                        pageSize, bbEntries, crc)
//	[64,  64+64*nlogs)      per-log metadata blocks (redolog.MetaSize
//	                        used, line-aligned so each persists
//	                        atomically)
//	[bbOff, logsOff)        flight-recorder ring (blackbox.Size(bbEntries)
//	                        bytes; absent when bbEntries is 0)
//	[logsOff, ...)          nlogs persistent log buffers
//	[dataOff, +dataSize)    persistent data region (page aligned)
const (
	poolMagic     = 0x44554445544d3032 // "DUDETM02"
	headerBytes   = 64
	metaSlotBytes = 64
)

var headerCRCTable = crc32.MakeTable(crc32.Castagnoli)

type layout struct {
	nlogs     uint64
	logSize   uint64
	dataSize  uint64
	pageSize  uint64
	bbEntries uint64 // flight-recorder ring slots; 0 = no ring

	metaOff uint64
	bbOff   uint64
	logsOff uint64
	dataOff uint64
	total   uint64
}

func computeLayout(nlogs, logSize, dataSize, pageSize, bbEntries uint64) layout {
	l := layout{nlogs: nlogs, logSize: logSize, dataSize: dataSize,
		pageSize: pageSize, bbEntries: bbEntries}
	l.metaOff = headerBytes
	l.bbOff = l.metaOff + nlogs*metaSlotBytes
	l.logsOff = l.bbOff
	if bbEntries > 0 {
		l.logsOff += blackbox.Size(bbEntries)
	}
	l.dataOff = (l.logsOff + nlogs*logSize + pageSize - 1) &^ (pageSize - 1)
	l.total = l.dataOff + dataSize
	return l
}

func (l layout) metaAddr(i int) uint64 { return l.metaOff + uint64(i)*metaSlotBytes }
func (l layout) logAddr(i int) uint64  { return l.logsOff + uint64(i)*l.logSize }

// regions names the layout's sub-ranges for the device's per-region
// flush/fence/byte accounting.
func (l layout) regions() []pmem.Region {
	rs := []pmem.Region{
		{Name: "header", Addr: 0, Size: headerBytes},
		{Name: "meta", Addr: l.metaOff, Size: l.nlogs * metaSlotBytes},
	}
	if l.bbEntries > 0 {
		rs = append(rs, pmem.Region{Name: "blackbox", Addr: l.bbOff, Size: l.logsOff - l.bbOff})
	}
	return append(rs,
		pmem.Region{Name: "log", Addr: l.logsOff, Size: l.nlogs * l.logSize},
		pmem.Region{Name: "data", Addr: l.dataOff, Size: l.dataSize},
	)
}

// writeHeader persists the pool header.
func writeHeader(dev *pmem.Device, l layout) {
	var b [headerBytes]byte
	binary.LittleEndian.PutUint64(b[0:], poolMagic)
	binary.LittleEndian.PutUint64(b[8:], l.nlogs)
	binary.LittleEndian.PutUint64(b[16:], l.logSize)
	binary.LittleEndian.PutUint64(b[24:], l.dataSize)
	binary.LittleEndian.PutUint64(b[32:], l.pageSize)
	binary.LittleEndian.PutUint64(b[40:], l.bbEntries)
	crc := crc32.Checksum(b[:48], headerCRCTable)
	binary.LittleEndian.PutUint64(b[48:], uint64(crc))
	dev.Store(0, b[:])
	dev.Persist(0, headerBytes)
}

// readHeader validates and decodes the pool header.
func readHeader(dev *pmem.Device) (layout, error) {
	var b [headerBytes]byte
	dev.Load(0, b[:])
	if binary.LittleEndian.Uint64(b[0:]) != poolMagic {
		return layout{}, fmt.Errorf("dudetm: bad pool magic")
	}
	crc := binary.LittleEndian.Uint64(b[48:])
	if uint64(crc32.Checksum(b[:48], headerCRCTable)) != crc {
		return layout{}, fmt.Errorf("dudetm: corrupt pool header")
	}
	l := computeLayout(
		binary.LittleEndian.Uint64(b[8:]),
		binary.LittleEndian.Uint64(b[16:]),
		binary.LittleEndian.Uint64(b[24:]),
		binary.LittleEndian.Uint64(b[32:]),
		binary.LittleEndian.Uint64(b[40:]),
	)
	if l.total > dev.Size() {
		return layout{}, fmt.Errorf("dudetm: pool layout (%d bytes) exceeds device (%d bytes)", l.total, dev.Size())
	}
	return l, nil
}

// pmSource adapts the persistent data region as the shadow.Source paged
// shadow memories swap from.
type pmSource struct {
	s *System
}

// ReadPage implements shadow.Source.
func (p pmSource) ReadPage(page uint64, dst []byte) {
	p.s.dev.Load(p.s.lay.dataOff+page*p.s.lay.pageSize, dst)
}

// Reproduced implements shadow.Source.
func (p pmSource) Reproduced() uint64 { return p.s.reproduced.Load() }

// repoMsg carries one persisted group to the Reproduce step, along with
// the writer whose log space it occupies.
type repoMsg struct {
	g  *redolog.Group
	w  *redolog.Writer
	wi int
	ep *[]redolog.Entry // pooled backing slice, returned after replay
}
