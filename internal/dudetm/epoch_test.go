package dudetm

import (
	"math/rand"
	"sync"
	"testing"

	"dudetm/internal/pmem"
)

// TestEpochCoalesceLastWriterWins pins the correctness core of replay
// epochs: when a dense backlog of groups is coalesced, duplicate
// addresses must resolve to the LAST writer in transaction-ID order
// (the MOD property replay relies on). Every transaction overwrites
// the same shared words with values tagged by its index, so a
// first-writer or unordered merge would surface immediately; a unique
// per-transaction word checks that non-duplicated entries survive
// coalescing untouched.
func TestEpochCoalesceLastWriterWins(t *testing.T) {
	const (
		txs    = 256
		shared = 8
		unique = 0x4000
	)
	for _, epochs := range []int{64, 1} {
		cfg := testConfig()
		cfg.GroupSize = 1 // one group per transaction: a deep dense run
		cfg.ReplayEpochGroups = epochs
		s, err := Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Freeze Reproduce so the whole workload queues as a dense
		// backlog, then release it: epoch formation slurps the backlog
		// and coalesces it (or replays group-by-group when disabled).
		s.PauseReproduce()
		var last uint64
		for i := uint64(0); i < txs; i++ {
			last, err = s.Run(0, func(tx *Tx) error {
				for j := uint64(0); j < shared; j++ {
					tx.Store(j*8, i<<8|j)
				}
				tx.Store(unique+i*8, i+1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		s.WaitDurable(last)
		s.ResumeReproduce()
		s.Drain()

		st := s.Stats()
		if epochs > 1 {
			if st.Reproduce.Epochs == 0 {
				t.Errorf("epochs=%d: dense %d-group backlog formed no replay epochs", epochs, txs)
			}
			if st.Reproduce.CoalesceOut >= st.Reproduce.CoalesceIn {
				t.Errorf("epochs=%d: coalescing removed nothing: in=%d out=%d",
					epochs, st.Reproduce.CoalesceIn, st.Reproduce.CoalesceOut)
			}
		} else if st.Reproduce.Epochs != 0 {
			t.Errorf("epochs=1: replay epochs formed with coalescing disabled: %d", st.Reproduce.Epochs)
		}

		// The persistent data region must hold exactly the last writes.
		img := s.Crash()
		dev := pmem.New(pmem.Config{Size: s.Device().Size()})
		dev.Restore(img)
		s2, err := Recover(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s2.Run(0, func(tx *Tx) error {
			for j := uint64(0); j < shared; j++ {
				if got, want := tx.Load(j*8), uint64(txs-1)<<8|j; got != want {
					t.Errorf("epochs=%d: shared word %d = %#x, want %#x (not last writer)",
						epochs, j, got, want)
				}
			}
			for i := uint64(0); i < txs; i++ {
				if got := tx.Load(unique + i*8); got != i+1 {
					t.Errorf("epochs=%d: unique word of tx %d = %d, want %d", epochs, i, got, i+1)
				}
			}
			return nil
		})
		s2.Close()
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestCrashMidEpochRecovery is the crash drill for epoch replay: with
// coalesced epochs demonstrably running, freeze Reproduce, commit a
// durable tail so replay is strictly behind the acked frontier, then
// release the backlog and kill the system while its replay is in
// flight. The teardown path abandons the epoch-granular recycle
// bookkeeping wherever it stood (Crash never flushes pending
// recycles), so the image recovery sees has durable-but-unreplayed
// groups and stale recycle stamps behind coalesced epochs. Recovery
// must reproduce the exact last-writer-wins image of every
// acknowledged transaction, the durability audit must accept the
// acked frontier, and a second recovery of the same crash image must
// agree word for word.
func TestCrashMidEpochRecovery(t *testing.T) {
	const (
		words   = 1024
		workers = 2
		txPerW  = 200 // per phase
	)
	cfg := testConfig()
	cfg.Threads = workers
	cfg.GroupSize = 1
	cfg.ReplayEpochGroups = 64
	cfg.ReproThreads = 2 // exercise the sharded fan-out mid-crash
	// One group per transaction with Reproduce frozen means nothing
	// recycles until the release below: size the logs for a whole
	// phase's backlog so Persist never blocks on space.
	cfg.LogBufBytes = 256 << 10
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type write struct{ addr, val, tid uint64 }
	var mu sync.Mutex
	var history []write
	var lastMu sync.Mutex
	var last uint64
	workload := func(phase int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(phase*workers+w)*131 + 7))
				for i := 0; i < txPerW; i++ {
					n := 1 + r.Intn(4)
					addrs := make([]uint64, n)
					vals := make([]uint64, n)
					for j := range addrs {
						addrs[j] = uint64(r.Intn(words)) * 8
						vals[j] = r.Uint64()
					}
					tid, err := s.Run(w, func(tx *Tx) error {
						for j := range addrs {
							tx.Store(addrs[j], vals[j])
						}
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					for j := range addrs {
						history = append(history, write{addrs[j], vals[j], tid})
					}
					mu.Unlock()
					lastMu.Lock()
					if tid > last {
						last = tid
					}
					lastMu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}

	// Phase 1: queue a dense backlog, release it, and drain — the epoch
	// replay path (and its recycle batching) has demonstrably run before
	// the crash round below.
	s.PauseReproduce()
	workload(0)
	s.ResumeReproduce()
	s.Drain()
	if s.Stats().Reproduce.Epochs == 0 {
		t.Fatal("no replay epochs formed from a dense backlog")
	}

	// Phase 2: freeze Reproduce again and commit a durable tail, so
	// replay is strictly behind the acked frontier by construction.
	s.PauseReproduce()
	workload(1)
	s.WaitDurable(last)
	preCrash := s.Stats()
	if preCrash.Reproduced >= last {
		t.Fatalf("replay not behind the frontier (reproduced=%d of %d): not a mid-epoch drill",
			preCrash.Reproduced, last)
	}

	// Release the backlog and kill the system while its epoch replay is
	// in flight.
	s.ResumeReproduce()
	img := s.Crash()
	t.Logf("crash issued with %d epochs applied, reproduced=%d of %d acked",
		preCrash.Reproduce.Epochs, preCrash.Reproduced, last)

	// Every transaction was acknowledged durable before the crash, so
	// recovery must surface all of them: the expected image is the
	// last-writer-wins fold of the full history.
	expect := map[uint64]write{}
	for _, wr := range history {
		if cur, ok := expect[wr.addr]; !ok || wr.tid >= cur.tid {
			expect[wr.addr] = wr
		}
	}
	recoverAndCheck := func(tag string) *System {
		dev := pmem.New(pmem.Config{Size: s.Device().Size()})
		dev.Restore(img)
		s2, err := Recover(dev, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if err := s2.AuditRecovery(last); err != nil {
			t.Fatalf("%s: durable regressed: %v", tag, err)
		}
		s2.Run(0, func(tx *Tx) error {
			for addr, wr := range expect {
				if got := tx.Load(addr); got != wr.val {
					t.Errorf("%s: addr %d = %#x, want %#x (tid %d)", tag, addr, got, wr.val, wr.tid)
				}
			}
			return nil
		})
		return s2
	}
	a := recoverAndCheck("first recovery")
	defer a.Close()
	b := recoverAndCheck("second recovery")
	defer b.Close()
	// Both recoveries of the same crash image must agree word for word
	// across the whole working set, written or not.
	imgA := make([]uint64, words)
	a.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < words; i++ {
			imgA[i] = tx.Load(i * 8)
		}
		return nil
	})
	b.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < words; i++ {
			if vb := tx.Load(i * 8); vb != imgA[i] {
				t.Errorf("recoveries disagree at addr %d: %#x vs %#x", i*8, imgA[i], vb)
			}
		}
		return nil
	})
}
