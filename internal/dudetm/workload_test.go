package dudetm

import (
	"math/rand"
	"sync"
	"testing"

	"dudetm/internal/memdb"
	"dudetm/internal/pmem"
	"dudetm/internal/workload/tpcc"
)

// TestTPCCFullMixWithCrash runs the complete TPC-C transaction mix —
// including Delivery's table deletes and Payment's monetary updates —
// through the real decoupled pipeline, crashes mid-pipeline, recovers,
// and audits TPC-C's consistency conditions on the recovered state.
func TestTPCCFullMixWithCrash(t *testing.T) {
	cfg := Config{
		DataSize:    64 << 20,
		Threads:     3,
		VLogEntries: 1 << 14,
	}
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heap := memdb.Heap{Base: 4096, Size: cfg.DataSize - 4096}
	tcfg := tpcc.Config{
		Warehouses: 2, Districts: 4, Customers: 32, Items: 128,
		MaxOrders: 1 << 12, Storage: tpcc.BTreeStorage,
	}
	db, err := tpcc.Setup(tcfg, heap, func(fn func(memdb.Ctx) error) error {
		_, err := s.Run(0, func(tx *Tx) error { return fn(tx) })
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	// Freeze Reproduce so the crash happens with a deep log containing
	// inserts, field updates, and deletes.
	s.PauseReproduce()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var last uint64
	for w := 0; w < cfg.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 77))
			for i := 0; i < 150; i++ {
				tid, err := s.Run(w, func(tx *Tx) error {
					_, err := db.RunMix(tx, rng, w%tcfg.Warehouses)
					return err
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if tid > last {
					last = tid
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	s.WaitDurable(last)
	s.PausePersist()
	img := s.Device().PersistedImage()
	s.ResumePersist()
	s.ResumeReproduce()
	s.Close()

	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Durable() < last {
		t.Fatalf("durable regressed: %d < %d", s2.Durable(), last)
	}

	// Audit TPC-C consistency conditions on the recovered image.
	if _, err := s2.Run(0, func(tx *Tx) error {
		for w := 0; w < tcfg.Warehouses; w++ {
			// Condition 1: W_YTD == sum(D_YTD).
			wy, dy := db.YTD(tx, w)
			if wy != dy {
				t.Errorf("warehouse %d: YTD %d != district sum %d", w, wy, dy)
			}
			for d := 0; d < tcfg.Districts; d++ {
				// Condition 2: every order below the district cursor
				// exists with consistent lines; delivered orders have
				// no NEW-ORDER entry, undelivered ones do.
				next := db.NextOID(tx, w, d)
				for oid := uint64(1); oid < next; oid++ {
					key := db.OrderKey(w, d, oid)
					orow, ok := db.Orders.Get(tx, key)
					if !ok {
						t.Errorf("w%d d%d: order %d missing", w, d, oid)
						continue
					}
					_, hasNO := db.NewOrders.Get(tx, key)
					carrier := tx.Load(orow + 24) // oCarrier offset
					if (carrier == 0) != hasNO {
						t.Errorf("w%d d%d o%d: carrier=%d hasNewOrder=%v",
							w, d, oid, carrier, hasNO)
					}
					cnt := tx.Load(orow + 8) // oOLCnt
					for i := uint64(0); i < cnt; i++ {
						if _, ok := db.OrderLines.Get(tx, db.OrderLineKey(w, d, oid, int(i))); !ok {
							t.Errorf("w%d d%d o%d: line %d missing", w, d, oid, i)
						}
					}
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
