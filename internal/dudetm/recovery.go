package dudetm

import (
	"sort"
	"time"

	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// RecoveryStats instruments one Recover: per-phase wall times, replay
// volume, and the forensic report of the image it mounted. Zero-valued
// (Recovered false) on a pool mounted with Create.
type RecoveryStats struct {
	// Recovered reports whether this mount came from Recover.
	Recovered bool `json:"recovered"`
	// ScanNanos, ReplayNanos and RecycleNanos are the wall times of the
	// three recovery phases: scanning the persistent logs, replaying
	// the dense unreproduced prefix into the data region, and resetting
	// the logs for the fresh writers.
	ScanNanos    int64 `json:"scan_nanos"`
	ReplayNanos  int64 `json:"replay_nanos"`
	RecycleNanos int64 `json:"recycle_nanos"`
	// LogsScanned is the number of persistent logs examined.
	LogsScanned int `json:"logs_scanned"`
	// GroupsReplayed / EntriesReplayed / BytesReplayed size the replay:
	// groups and log entries applied, and bytes written back to the
	// persistent data region.
	GroupsReplayed  uint64 `json:"groups_replayed"`
	EntriesReplayed uint64 `json:"entries_replayed"`
	BytesReplayed   uint64 `json:"bytes_replayed"`
	// Report is the forensic analysis of the image as mounted.
	Report *CrashReport `json:"report,omitempty"`
}

// Recover mounts a pool image after a crash (§3.5): it scans every
// persistent log, replays the dense prefix of unreproduced groups in
// transaction-ID order into the persistent data region, abandons any
// group beyond the first missing ID (those transactions were never
// acknowledged as durable), and restarts the pipeline with fresh, empty
// logs and a fresh shadow memory.
//
// cfg supplies the runtime configuration (threads, mode, engine, shadow,
// timing model); the pool geometry (data size, page size, log size,
// flight-recorder size) is read from the pool header and overrides the
// corresponding cfg fields. Recovery itself is instrumented: phase
// timings, replay volume and the forensic CrashReport of the image are
// exposed through Stats().Recovery.
func Recover(dev *pmem.Device, cfg Config) (*System, error) {
	cfg.applyDefaults()
	lay, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	cfg.DataSize = lay.dataSize
	cfg.PageSize = lay.pageSize
	cfg.LogBufBytes = lay.logSize
	if lay.bbEntries > 0 {
		cfg.BlackboxEntries = int(lay.bbEntries)
	} else {
		cfg.BlackboxEntries = -1
	}
	if uint64(cfg.Threads) > lay.nlogs {
		// The pool was created with fewer Perform threads than the
		// mount configuration asks for; the persistent geometry wins.
		cfg.Threads = int(lay.nlogs)
	}
	dev.SetRegions(lay.regions())

	rec := RecoveryStats{Recovered: true, LogsScanned: int(lay.nlogs)}

	// Phase 1: scan all logs; the replay anchor is the largest
	// reproduced-ID any recycle persisted.
	scanStart := time.Now()
	results, anchor, all, err := scanPool(dev, lay)
	if err != nil {
		return nil, err
	}
	rec.ScanNanos = int64(time.Since(scanStart))

	frontier := denseFrontier(anchor, all)
	rec.Report = buildCrashReport(dev, lay, results, anchor, frontier, all)

	type gref struct {
		g  redolog.Group
		wi int
	}
	groups := make([]gref, 0, len(all))
	for i := range results {
		for _, g := range results[i].Groups {
			groups = append(groups, gref{g, i})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].g.MinTid < groups[j].g.MinTid })

	// Phase 2: replay the dense prefix above the anchor. Groups at or
	// below the anchor were already reproduced before the crash
	// (recycling lagged behind); groups beyond the first gap were never
	// durable. Replay is single-threaded, so the device's flushed-byte
	// delta is exactly the replay write-back volume.
	replayStart := time.Now()
	flushedBefore := dev.Stats().BytesFlushed
	next := anchor + 1
	b := dev.NewBatch()
	for _, gr := range groups {
		if gr.g.MaxTid <= anchor {
			continue
		}
		if gr.g.MinTid != next {
			break
		}
		for _, e := range gr.g.Entries {
			dev.Store8(lay.dataOff+e.Addr, e.Val)
		}
		for _, e := range gr.g.Entries {
			b.Flush(lay.dataOff+e.Addr, 8)
		}
		next = gr.g.MaxTid + 1
		rec.GroupsReplayed++
		rec.EntriesReplayed += uint64(len(gr.g.Entries))
	}
	b.Fence()
	rec.BytesReplayed = dev.Stats().BytesFlushed - flushedBefore
	rec.ReplayNanos = int64(time.Since(replayStart))

	s, err := build(cfg, dev, lay, frontier)
	if err != nil {
		return nil, err
	}

	// Phase 3: reset the logs — each writer restarts empty past the
	// scanned prefix, persisting the post-recovery watermark.
	recycleStart := time.Now()
	for i := range s.writers {
		s.writers[i] = redolog.Resume(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize,
			cfg.Compress, results[i], frontier)
	}
	rec.RecycleNanos = int64(time.Since(recycleStart))
	s.bindWriters()
	s.recov = rec
	s.start()
	return s, nil
}
