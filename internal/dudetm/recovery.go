package dudetm

import (
	"sort"

	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// Recover mounts a pool image after a crash (§3.5): it scans every
// persistent log, replays the dense prefix of unreproduced groups in
// transaction-ID order into the persistent data region, abandons any
// group beyond the first missing ID (those transactions were never
// acknowledged as durable), and restarts the pipeline with fresh, empty
// logs and a fresh shadow memory.
//
// cfg supplies the runtime configuration (threads, mode, engine, shadow,
// timing model); the pool geometry (data size, page size, log size) is
// read from the pool header and overrides the corresponding cfg fields.
func Recover(dev *pmem.Device, cfg Config) (*System, error) {
	cfg.applyDefaults()
	lay, err := readHeader(dev)
	if err != nil {
		return nil, err
	}
	cfg.DataSize = lay.dataSize
	cfg.PageSize = lay.pageSize
	cfg.LogBufBytes = lay.logSize
	if uint64(cfg.Threads) > lay.nlogs {
		// The pool was created with fewer Perform threads than the
		// mount configuration asks for; the persistent geometry wins.
		cfg.Threads = int(lay.nlogs)
	}

	// Scan all logs; the replay anchor is the largest reproduced-ID any
	// recycle persisted.
	results := make([]redolog.ScanResult, lay.nlogs)
	var anchor uint64
	type gref struct {
		g  redolog.Group
		wi int
	}
	var groups []gref
	for i := 0; i < int(lay.nlogs); i++ {
		res, err := redolog.Scan(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize)
		if err != nil {
			return nil, err
		}
		results[i] = res
		if res.ReproTid > anchor {
			anchor = res.ReproTid
		}
		for _, g := range res.Groups {
			groups = append(groups, gref{g, i})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].g.MinTid < groups[j].g.MinTid })

	// Replay the dense prefix above the anchor. Groups at or below the
	// anchor were already reproduced before the crash (recycling lagged
	// behind); groups beyond the first gap were never durable.
	next := anchor + 1
	frontier := anchor
	b := dev.NewBatch()
	for _, gr := range groups {
		if gr.g.MaxTid <= anchor {
			continue
		}
		if gr.g.MinTid != next {
			break
		}
		for _, e := range gr.g.Entries {
			dev.Store8(lay.dataOff+e.Addr, e.Val)
		}
		for _, e := range gr.g.Entries {
			b.Flush(lay.dataOff+e.Addr, 8)
		}
		next = gr.g.MaxTid + 1
		frontier = gr.g.MaxTid
	}
	b.Fence()

	s, err := build(cfg, dev, lay, frontier)
	if err != nil {
		return nil, err
	}
	for i := range s.writers {
		s.writers[i] = redolog.Resume(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize,
			cfg.Compress, results[i], frontier)
	}
	s.bindWriters()
	s.start()
	return s, nil
}
