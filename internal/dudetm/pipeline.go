package dudetm

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"dudetm/internal/obs/blackbox"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// persistMsg is one sealed group in flight from the Persist coordinator
// to a persist worker. seq is the coordinator's dense dispatch sequence;
// the worker completes it in the seqWindow so the durable frontier
// advances only over a contiguous prefix of appended groups.
type persistMsg struct {
	seq    uint64
	g      *redolog.Group
	ep     *[]redolog.Entry
	sealAt int64 // obs seal timestamp, for the queue-dwell measurement
}

// applyTask is one address shard of a group fanned out to a Reproduce
// applier. Appliers share the group's flush batch; the ordering loop
// joins wg and issues the single fence.
type applyTask struct {
	entries []redolog.Entry
	shard   uint64
	nshards uint64
	b       *pmem.Batch
	wg      *sync.WaitGroup
}

// persistLoop is the Persist-step coordinator (ModeAsync): it merges the
// per-thread volatile rings in commit-ID order, groups GroupSize
// consecutive transactions (combining overlapping writes), and deals
// each sealed group round-robin to the persist workers (§4.4 runs
// multiple persist threads for exactly this reason). Each worker owns a
// disjoint persistent log region and flushes its group with a single
// persist barrier; the global durable ID advances through the
// contiguous-completion window, so out-of-order appends never publish a
// durable frontier with holes behind it.
//
// Merging across all rings by ID is what makes cross-transaction
// combination sound: every group covers a globally contiguous ID range,
// so replaying groups in order equals replaying transactions in order.
func (s *System) persistLoop() {
	defer s.wg.Done()
	comb := redolog.NewCombiner()
	nextTid := s.startTid + 1
	var gMin, gMax uint64
	gCount := 0
	var ep *[]redolog.Entry
	lastActivity := time.Now()
	idle := 0

	// finish retires the worker pool: after the dispatch queues close
	// and the last in-flight append drains, reproCh can close too.
	finish := func() {
		for _, ch := range s.dispatch {
			close(ch)
		}
		s.persistWG.Wait()
		close(s.reproCh)
	}

	// seal hands the accumulated group to a worker. It returns false if
	// the system halted while waiting for window space (Crash during
	// back-pressure): the group is discarded, like power failing before
	// its log append.
	seal := func() bool {
		if gCount == 0 {
			return true
		}
		if s.cfg.GroupSize > 1 {
			ep = getEntrySlice()
			*ep = append((*ep)[:0], comb.Entries()...)
			s.rawEntries.Add(uint64(comb.RawCount()))
			s.combEntries.Add(uint64(comb.Len()))
			comb.Reset()
		}
		g := &redolog.Group{MinTid: gMin, MaxTid: gMax, Entries: *ep}
		// Replication ships from here — the single point where groups
		// exist in dense tid order. The sink copies synchronously; the
		// slice stays owned by the pipeline (pooled after Reproduce).
		s.shipGroup(gMin, gMax, *ep)
		// Sealed before the window reservation, so queue dwell includes
		// time spent blocked on window back-pressure.
		sealAt := s.obs.GroupSealed(s.srcCoord(), gMin, gMax, gCount, len(*ep))
		// The seal stamp must be on media before the group can appear in
		// a log: forensics treats a durable seal with no persisted group
		// as sealed-but-unpersisted work lost to the crash.
		s.bbStamp(blackbox.KindGroupSeal, gMin, gMax, uint64(gCount))
		s.bbFlush()
		seq, ok := s.window.reserve(&s.halted)
		if !ok {
			putEntrySlice(ep)
			ep = nil
			gCount = 0
			return false
		}
		s.pm.enqueue()
		// The queue has window capacity, so this send never blocks.
		s.dispatch[seq%uint64(len(s.dispatch))] <- persistMsg{seq: seq, g: g, ep: ep, sealAt: sealAt}
		ep = nil
		gCount = 0
		return true
	}

	for {
		// Crash halts the step where it is: in-flight volatile rings are
		// lost, exactly like power failing between persist barriers.
		if s.halted.Load() {
			finish()
			return
		}
		// The gate is held for the whole iteration so PausePersist
		// blocks until the coordinator is quiescent (crash drills and
		// snapshots rely on this; the workers have their own gates).
		s.persistGate.Lock()

		consumed := false
		for _, th := range s.threads {
			tid, ok := th.ring.PeekTid()
			if !ok || tid != nextTid {
				continue
			}
			if s.cfg.GroupSize == 1 {
				ep = getEntrySlice()
				*ep, _ = th.ring.ConsumeTx((*ep)[:0])
				s.rawEntries.Add(uint64(len(*ep)))
				s.combEntries.Add(uint64(len(*ep)))
			} else {
				th.scratch, _ = th.ring.ConsumeTx(th.scratch[:0])
				comb.AddAll(th.scratch)
			}
			if gCount == 0 {
				gMin = tid
			}
			gMax = tid
			gCount++
			nextTid++
			consumed = true
			lastActivity = time.Now()
			break
		}
		if consumed {
			idle = 0
			if gCount >= s.cfg.GroupSize {
				if !seal() {
					s.persistGate.Unlock()
					finish()
					return
				}
			}
			s.persistGate.Unlock()
			continue
		}
		if s.engine.Clock() >= nextTid {
			// The ID is assigned; its end mark is in flight between
			// commit and AppendTxEnd. Spin briefly.
			s.persistGate.Unlock()
			runtime.Gosched()
			continue
		}
		// No committed transaction pending.
		if gCount > 0 && time.Since(lastActivity) > s.cfg.FlushInterval {
			if !seal() {
				s.persistGate.Unlock()
				finish()
				return
			}
			s.persistGate.Unlock()
			continue
		}
		if s.stopping.Load() {
			seal()
			s.persistGate.Unlock()
			finish()
			return
		}
		s.persistGate.Unlock()
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// persistWorker owns one persistent log region: it appends each
// dispatched group with one persist barrier, completes its sequence in
// the window (advancing the global durable ID when the completed prefix
// grows), and forwards the group to Reproduce. Its gate makes
// PausePersist wait out an in-flight append.
//
// The budget pins the paper's fence economy: one persist barrier per
// group (AppendGroup's), with the flight-recorder write-backs riding
// behind it fence-free.
//
//dudelint:fencebudget 1
func (s *System) persistWorker(wi int) {
	defer s.persistWG.Done()
	w := s.writers[wi]
	for m := range s.dispatch[wi] {
		if s.halted.Load() {
			// Crash: drop the group on the floor — power failed before
			// its append. Later sequences can no longer complete the
			// prefix, so the durable frontier stays behind this group.
			s.pm.dequeue()
			continue
		}
		s.workerGates[wi].Lock()
		// Flushed before the append begins, so a crash inside the
		// append leaves a durable fence-begin with no matching
		// persist-fence — the forensic signature of an in-flight barrier.
		s.bbStamp(blackbox.KindFenceBegin, m.g.MinTid, m.g.MaxTid, uint64(wi))
		s.bbFlush()
		startAt := s.obs.Now()
		w.AppendGroup(m.g)
		endAt := s.obs.Now()
		s.bbStamp(blackbox.KindPersistFence, m.g.MinTid, m.g.MaxTid, uint64(wi))
		s.obs.GroupPersisted(s.srcWorker(wi), m.g.MinTid, m.g.MaxTid, m.sealAt, startAt, endAt)
		s.pm.busy.Add(uint64(endAt - startAt))
		s.pm.groups.Add(1)
		s.pm.fences.Add(1)
		s.groups.Add(1)
		if tid, ok := s.window.complete(m.seq, m.g.MaxTid); ok {
			s.setDurable(tid)
		}
		s.pm.dequeue()
		s.rm.enqueue()
		s.reproCh <- repoMsg{g: m.g, w: w, wi: wi, ep: m.ep}
		// One write-back for the fence/durable stamps above; it rides
		// after the group's own barrier, adding no fence of its own.
		s.bbFlush()
		s.workerGates[wi].Unlock()
	}
}

// reproApplier is one Reproduce-stage applier: it applies the address
// shard (addr>>6 % nshards, so a cache line never spans shards) of each
// fanned-out group and accumulates write-backs into the group's shared
// batch. The fence stays with the ordering loop — one barrier per group,
// issued only after every shard has joined.
func (s *System) reproApplier() {
	defer s.wg.Done()
	base := s.lay.dataOff
	for t := range s.applyCh {
		for _, e := range t.entries {
			if (e.Addr>>6)%t.nshards == t.shard {
				s.dev.Store8(base+e.Addr, e.Val)
			}
		}
		for _, e := range t.entries {
			if (e.Addr>>6)%t.nshards == t.shard {
				t.b.Flush(base+e.Addr, 8)
			}
		}
		t.wg.Done()
	}
}

// minShardEntries gates the Reproduce fan-out: below this, one thread
// applies the group inline — the wakeup and join cost would exceed the
// parallel win.
const minShardEntries = 64

// recycleInterval bounds how long a batched recycle can be deferred
// once one is pending.
const recycleInterval = 500 * time.Microsecond

// reproduceLoop is the Reproduce step: replay persisted groups in
// transaction-ID order into the persistent data region, then recycle
// their log space. Groups may arrive out of order (per-thread flushes in
// ModeSync, out-of-order persist workers in ModeAsync), so a min-heap
// buffers them until the next dense ID range is available. Large groups
// are split by address shard across the appliers; shards share one
// flush batch and the loop issues the group's single fence after the
// join, so the §3.4 ordering (data before recycle) is unchanged. The
// split is sound because combination made the group last-write-wins and
// entries for one address always land in the same shard, applied in
// entry order.
func (s *System) reproduceLoop() {
	defer s.wg.Done()
	defer close(s.applyCh)
	var h msgHeap
	next := s.startTid + 1

	type pending struct {
		pos, seq uint64
		count    int
	}
	pend := make([]pending, len(s.writers))
	pendingRecycles := 0

	flushRecycles := func() {
		for i := range pend {
			if pend[i].count > 0 {
				repro := s.reproduced.Load()
				s.writers[i].Recycle(pend[i].pos, pend[i].seq, repro)
				s.bbStamp(blackbox.KindRecycle, uint64(i), pend[i].seq, repro)
				pendingRecycles -= pend[i].count
				pend[i].count = 0
			}
		}
		s.bbFlush()
	}

	apply := func(m repoMsg) {
		if n := len(m.g.Entries); n > 0 {
			t0 := time.Now()
			// Apply all updates, then one write-back + fence. The only
			// persist ordering Reproduce needs is data-before-recycle
			// (§3.4), enforced by fencing here before Recycle below.
			b := s.dev.NewBatch()
			if r := s.cfg.ReproThreads; r > 1 && n >= minShardEntries {
				var wg sync.WaitGroup
				wg.Add(r)
				for shard := 0; shard < r; shard++ {
					s.applyCh <- applyTask{
						entries: m.g.Entries,
						shard:   uint64(shard),
						nshards: uint64(r),
						b:       b,
						wg:      &wg,
					}
				}
				wg.Wait()
			} else {
				for _, e := range m.g.Entries {
					s.dev.Store8(s.lay.dataOff+e.Addr, e.Val)
				}
				for _, e := range m.g.Entries {
					b.Flush(s.lay.dataOff+e.Addr, 8)
				}
			}
			b.Fence()
			s.rm.fences.Add(1)
			s.rm.busy.Add(uint64(time.Since(t0)))
		}
		s.reproduced.Store(m.g.MaxTid)
		s.obs.GroupApplied(s.srcRepro(), m.g.MinTid, m.g.MaxTid)
		s.obs.ReproducedAdvanced(m.g.MaxTid)
		s.rm.groups.Add(1)
		putEntrySlice(m.ep)
		p := &pend[m.wi]
		p.pos, p.seq = m.g.EndPos, m.g.Seq+1
		p.count++
		pendingRecycles++
		if p.count >= s.cfg.RecycleEvery {
			s.writers[m.wi].Recycle(p.pos, p.seq, m.g.MaxTid)
			s.bbStamp(blackbox.KindRecycle, uint64(m.wi), p.seq, m.g.MaxTid)
			s.bbFlush()
			pendingRecycles -= p.count
			p.count = 0
		}
	}

	drainReady := func() {
		for h.Len() > 0 && h[0].g.MinTid == next {
			m := heap.Pop(&h).(repoMsg)
			apply(m)
			next = m.g.MaxTid + 1
		}
	}

	// The timer bounds how long a batched recycle can be deferred, so a
	// writer blocked on log space always gets freed even when no new
	// groups arrive (RecycleEvery > 1). It is armed lazily — only while
	// a recycle is actually pending — so an idle pool takes no timer
	// wakeups at all (TimerWakes counts the fires).
	timer := time.NewTimer(recycleInterval)
	if !timer.Stop() {
		<-timer.C
	}
	var timerC <-chan time.Time

	rearm := func() {
		if pendingRecycles > 0 && timerC == nil {
			timer.Reset(recycleInterval)
			timerC = timer.C
		} else if pendingRecycles == 0 && timerC != nil {
			if !timer.Stop() {
				<-timer.C
			}
			timerC = nil
		}
	}

	for {
		select {
		case m, ok := <-s.reproCh:
			// The gate is held around every device mutation so
			// PauseReproduce blocks until the step is quiescent (the
			// sharded appliers only run inside apply, under this gate).
			s.reproduceGate.Lock()
			if !ok {
				if s.halted.Load() {
					// Crash: stop where we are. Durable-but-unreproduced
					// groups stay in the persistent log; recovery
					// replays them (gaps are possible when per-thread
					// flushes or persist workers raced the crash).
					s.reproduceGate.Unlock()
					return
				}
				drainReady()
				if h.Len() > 0 {
					panic("dudetm: gap in transaction IDs at shutdown")
				}
				flushRecycles()
				s.reproduceGate.Unlock()
				return
			}
			s.rm.dequeue()
			heap.Push(&h, m)
			drainReady()
			rearm()
			s.reproduceGate.Unlock()
		case <-timerC:
			timerC = nil
			s.reproduceGate.Lock()
			s.rm.wakes.Add(1)
			flushRecycles()
			rearm()
			s.reproduceGate.Unlock()
		}
	}
}

// msgHeap is a min-heap of groups keyed by MinTid.
type msgHeap []repoMsg

func (h msgHeap) Len() int           { return len(h) }
func (h msgHeap) Less(i, j int) bool { return h[i].g.MinTid < h[j].g.MinTid }
func (h msgHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)        { *h = append(*h, x.(repoMsg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
