package dudetm

import (
	"container/heap"
	"runtime"
	"time"

	"dudetm/internal/redolog"
)

// persistLoop is the Persist step (ModeAsync): one background thread
// merges the per-thread volatile rings in commit-ID order, groups
// GroupSize consecutive transactions (combining overlapping writes),
// flushes each group to the persistent log with a single persist
// barrier, advances the global durable ID, and hands the group to the
// Reproduce step through an in-DRAM channel (the volatile copy the paper
// keeps so Reproduce never reads NVM or decompresses, §3.3).
//
// Merging across all rings by ID is what makes cross-transaction
// combination sound: every group covers a globally contiguous ID range,
// so replaying groups in order equals replaying transactions in order.
func (s *System) persistLoop() {
	defer s.wg.Done()
	w := s.writers[0]
	comb := redolog.NewCombiner()
	nextTid := s.startTid + 1
	var gMin, gMax uint64
	gCount := 0
	var ep *[]redolog.Entry
	lastActivity := time.Now()
	idle := 0

	seal := func() {
		if gCount == 0 {
			return
		}
		if s.cfg.GroupSize > 1 {
			ep = getEntrySlice()
			*ep = append((*ep)[:0], comb.Entries()...)
			s.rawEntries.Add(uint64(comb.RawCount()))
			s.combEntries.Add(uint64(comb.Len()))
			comb.Reset()
		}
		g := &redolog.Group{MinTid: gMin, MaxTid: gMax, Entries: *ep}
		w.AppendGroup(g)
		s.groups.Add(1)
		s.setDurable(gMax)
		s.reproCh <- repoMsg{g: g, w: w, wi: 0, ep: ep}
		ep = nil
		gCount = 0
	}

	for {
		// Crash halts the step where it is: in-flight volatile rings are
		// lost, exactly like power failing between persist barriers.
		if s.halted.Load() {
			close(s.reproCh)
			return
		}
		// The gate is held for the whole iteration so PausePersist
		// blocks until the step is quiescent (crash drills and
		// snapshots rely on this).
		s.persistGate.Lock()

		consumed := false
		for _, th := range s.threads {
			tid, ok := th.ring.PeekTid()
			if !ok || tid != nextTid {
				continue
			}
			if s.cfg.GroupSize == 1 {
				ep = getEntrySlice()
				*ep, _ = th.ring.ConsumeTx((*ep)[:0])
				s.rawEntries.Add(uint64(len(*ep)))
				s.combEntries.Add(uint64(len(*ep)))
			} else {
				th.scratch, _ = th.ring.ConsumeTx(th.scratch[:0])
				comb.AddAll(th.scratch)
			}
			if gCount == 0 {
				gMin = tid
			}
			gMax = tid
			gCount++
			nextTid++
			consumed = true
			lastActivity = time.Now()
			break
		}
		if consumed {
			idle = 0
			if gCount >= s.cfg.GroupSize {
				seal()
			}
			s.persistGate.Unlock()
			continue
		}
		if s.engine.Clock() >= nextTid {
			// The ID is assigned; its end mark is in flight between
			// commit and AppendTxEnd. Spin briefly.
			s.persistGate.Unlock()
			runtime.Gosched()
			continue
		}
		// No committed transaction pending.
		if gCount > 0 && time.Since(lastActivity) > s.cfg.FlushInterval {
			seal()
			s.persistGate.Unlock()
			continue
		}
		if s.stopping.Load() {
			seal()
			close(s.reproCh)
			s.persistGate.Unlock()
			return
		}
		s.persistGate.Unlock()
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// reproduceLoop is the Reproduce step: replay persisted groups in
// transaction-ID order into the persistent data region, then recycle
// their log space. Groups may arrive out of order in ModeSync (each
// Perform thread flushes its own log), so a min-heap buffers them until
// the next dense ID range is available.
func (s *System) reproduceLoop() {
	defer s.wg.Done()
	var h msgHeap
	next := s.startTid + 1

	type pending struct {
		pos, seq uint64
		count    int
	}
	pend := make([]pending, len(s.writers))

	flushRecycles := func() {
		for i := range pend {
			if pend[i].count > 0 {
				s.writers[i].Recycle(pend[i].pos, pend[i].seq, s.reproduced.Load())
				pend[i].count = 0
			}
		}
	}

	apply := func(m repoMsg) {
		if len(m.g.Entries) > 0 {
			// Apply all updates, then one write-back + fence. The only
			// persist ordering Reproduce needs is data-before-recycle
			// (§3.4), enforced by fencing here before Recycle below.
			b := s.dev.NewBatch()
			for _, e := range m.g.Entries {
				s.dev.Store8(s.lay.dataOff+e.Addr, e.Val)
			}
			for _, e := range m.g.Entries {
				b.Flush(s.lay.dataOff+e.Addr, 8)
			}
			b.Fence()
		}
		s.reproduced.Store(m.g.MaxTid)
		putEntrySlice(m.ep)
		p := &pend[m.wi]
		p.pos, p.seq = m.g.EndPos, m.g.Seq+1
		p.count++
		if p.count >= s.cfg.RecycleEvery {
			s.writers[m.wi].Recycle(p.pos, p.seq, m.g.MaxTid)
			p.count = 0
		}
	}

	drainReady := func() {
		for h.Len() > 0 && h[0].g.MinTid == next {
			m := heap.Pop(&h).(repoMsg)
			apply(m)
			next = m.g.MaxTid + 1
		}
	}

	// The ticker bounds how long a batched recycle can be deferred, so a
	// writer blocked on log space always gets freed even when no new
	// groups arrive (RecycleEvery > 1).
	ticker := time.NewTicker(500 * time.Microsecond)
	defer ticker.Stop()

	for {
		select {
		case m, ok := <-s.reproCh:
			// The gate is held around every device mutation so
			// PauseReproduce blocks until the step is quiescent.
			s.reproduceGate.Lock()
			if !ok {
				if s.halted.Load() {
					// Crash: stop where we are. Durable-but-unreproduced
					// groups stay in the persistent log; recovery
					// replays them (gaps are possible in ModeSync when
					// per-thread flushes raced the crash).
					s.reproduceGate.Unlock()
					return
				}
				drainReady()
				if h.Len() > 0 {
					panic("dudetm: gap in transaction IDs at shutdown")
				}
				flushRecycles()
				s.reproduceGate.Unlock()
				return
			}
			heap.Push(&h, m)
			drainReady()
			s.reproduceGate.Unlock()
		case <-ticker.C:
			s.reproduceGate.Lock()
			flushRecycles()
			s.reproduceGate.Unlock()
		}
	}
}

// msgHeap is a min-heap of groups keyed by MinTid.
type msgHeap []repoMsg

func (h msgHeap) Len() int           { return len(h) }
func (h msgHeap) Less(i, j int) bool { return h[i].g.MinTid < h[j].g.MinTid }
func (h msgHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)        { *h = append(*h, x.(repoMsg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
