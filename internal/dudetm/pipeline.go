package dudetm

import (
	"container/heap"
	"runtime"
	"sync"
	"time"

	"dudetm/internal/obs/blackbox"
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// persistMsg is one sealed group in flight from the Persist coordinator
// to a persist worker. seq is the coordinator's dense dispatch sequence;
// the worker completes it in the seqWindow so the durable frontier
// advances only over a contiguous prefix of appended groups.
type persistMsg struct {
	seq    uint64
	g      *redolog.Group
	ep     *[]redolog.Entry
	sealAt int64 // obs seal timestamp, for the queue-dwell measurement
}

// applyTask is one pre-partitioned address shard of a replay run fanned
// out to a Reproduce applier: the shard's entries, plus the distinct
// cache lines (byte addresses) the partition pass assigned to it for
// write-back. Appliers share the run's flush batch; the ordering loop
// joins wg and issues the single fence.
type applyTask struct {
	entries []redolog.Entry
	lines   []uint64
	b       *pmem.Batch
	wg      *sync.WaitGroup
}

// persistLoop is the Persist-step coordinator (ModeAsync): it merges the
// per-thread volatile rings in commit-ID order, groups GroupSize
// consecutive transactions (combining overlapping writes), and deals
// each sealed group round-robin to the persist workers (§4.4 runs
// multiple persist threads for exactly this reason). Each worker owns a
// disjoint persistent log region and flushes its group with a single
// persist barrier; the global durable ID advances through the
// contiguous-completion window, so out-of-order appends never publish a
// durable frontier with holes behind it.
//
// Merging across all rings by ID is what makes cross-transaction
// combination sound: every group covers a globally contiguous ID range,
// so replaying groups in order equals replaying transactions in order.
func (s *System) persistLoop() {
	defer s.wg.Done()
	comb := redolog.NewCombiner()
	nextTid := s.startTid + 1
	var gMin, gMax uint64
	gCount := 0
	var ep *[]redolog.Entry
	lastActivity := time.Now()
	idle := 0

	// finish retires the worker pool: after the dispatch queues close
	// and the last in-flight append drains, reproCh can close too.
	finish := func() {
		for _, ch := range s.dispatch {
			close(ch)
		}
		s.persistWG.Wait()
		close(s.reproCh)
	}

	// seal hands the accumulated group to a worker. It returns false if
	// the system halted while waiting for window space (Crash during
	// back-pressure): the group is discarded, like power failing before
	// its log append.
	seal := func() bool {
		if gCount == 0 {
			return true
		}
		if s.cfg.GroupSize > 1 {
			ep = getEntrySlice()
			*ep = append((*ep)[:0], comb.Entries()...)
			s.rawEntries.Add(uint64(comb.RawCount()))
			s.combEntries.Add(uint64(comb.Len()))
			comb.Reset()
		}
		g := &redolog.Group{MinTid: gMin, MaxTid: gMax, Entries: *ep}
		// Replication ships from here — the single point where groups
		// exist in dense tid order. The sink copies synchronously; the
		// slice stays owned by the pipeline (pooled after Reproduce).
		s.shipGroup(gMin, gMax, *ep)
		// Sealed before the window reservation, so queue dwell includes
		// time spent blocked on window back-pressure.
		sealAt := s.obs.GroupSealed(s.srcCoord(), gMin, gMax, gCount, len(*ep))
		// The seal stamp must be on media before the group can appear in
		// a log: forensics treats a durable seal with no persisted group
		// as sealed-but-unpersisted work lost to the crash.
		s.bbStamp(blackbox.KindGroupSeal, gMin, gMax, uint64(gCount))
		s.bbFlush()
		seq, ok := s.window.reserve(&s.halted)
		if !ok {
			putEntrySlice(ep)
			ep = nil
			gCount = 0
			return false
		}
		s.pm.enqueue()
		// The queue has window capacity, so this send never blocks.
		s.dispatch[seq%uint64(len(s.dispatch))] <- persistMsg{seq: seq, g: g, ep: ep, sealAt: sealAt}
		ep = nil
		gCount = 0
		return true
	}

	for {
		// Crash halts the step where it is: in-flight volatile rings are
		// lost, exactly like power failing between persist barriers.
		if s.halted.Load() {
			finish()
			return
		}
		// The gate is held for the whole iteration so PausePersist
		// blocks until the coordinator is quiescent (crash drills and
		// snapshots rely on this; the workers have their own gates).
		s.persistGate.Lock()

		consumed := false
		for _, th := range s.threads {
			tid, ok := th.ring.PeekTid()
			if !ok || tid != nextTid {
				continue
			}
			if s.cfg.GroupSize == 1 {
				ep = getEntrySlice()
				*ep, _ = th.ring.ConsumeTx((*ep)[:0])
				s.rawEntries.Add(uint64(len(*ep)))
				s.combEntries.Add(uint64(len(*ep)))
			} else {
				th.scratch, _ = th.ring.ConsumeTx(th.scratch[:0])
				comb.AddAll(th.scratch)
			}
			if gCount == 0 {
				gMin = tid
			}
			gMax = tid
			gCount++
			nextTid++
			consumed = true
			lastActivity = time.Now()
			break
		}
		if consumed {
			idle = 0
			if gCount >= s.cfg.GroupSize {
				if !seal() {
					s.persistGate.Unlock()
					finish()
					return
				}
			}
			s.persistGate.Unlock()
			continue
		}
		if s.engine.Clock() >= nextTid {
			// The ID is assigned; its end mark is in flight between
			// commit and AppendTxEnd. Spin briefly.
			s.persistGate.Unlock()
			runtime.Gosched()
			continue
		}
		// No committed transaction pending.
		if gCount > 0 && time.Since(lastActivity) > s.cfg.FlushInterval {
			if !seal() {
				s.persistGate.Unlock()
				finish()
				return
			}
			s.persistGate.Unlock()
			continue
		}
		if s.stopping.Load() {
			seal()
			s.persistGate.Unlock()
			finish()
			return
		}
		s.persistGate.Unlock()
		idle++
		if idle < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// persistWorker owns one persistent log region: it appends each
// dispatched group with one persist barrier, completes its sequence in
// the window (advancing the global durable ID when the completed prefix
// grows), and forwards the group to Reproduce. Its gate makes
// PausePersist wait out an in-flight append.
//
// The budget pins the paper's fence economy: one persist barrier per
// group (AppendGroup's), with the flight-recorder write-backs riding
// behind it fence-free.
//
//dudelint:fencebudget 1
func (s *System) persistWorker(wi int) {
	defer s.persistWG.Done()
	w := s.writers[wi]
	for m := range s.dispatch[wi] {
		if s.halted.Load() {
			// Crash: drop the group on the floor — power failed before
			// its append. Later sequences can no longer complete the
			// prefix, so the durable frontier stays behind this group.
			s.pm.dequeue()
			continue
		}
		s.workerGates[wi].Lock()
		// Flushed before the append begins, so a crash inside the
		// append leaves a durable fence-begin with no matching
		// persist-fence — the forensic signature of an in-flight barrier.
		s.bbStamp(blackbox.KindFenceBegin, m.g.MinTid, m.g.MaxTid, uint64(wi))
		s.bbFlush()
		startAt := s.obs.Now()
		w.AppendGroup(m.g)
		endAt := s.obs.Now()
		s.bbStamp(blackbox.KindPersistFence, m.g.MinTid, m.g.MaxTid, uint64(wi))
		s.obs.GroupPersisted(s.srcWorker(wi), m.g.MinTid, m.g.MaxTid, m.sealAt, startAt, endAt)
		s.pm.busy.Add(uint64(endAt - startAt))
		s.pm.groups.Add(1)
		s.pm.fences.Add(1)
		s.groups.Add(1)
		if tid, ok := s.window.complete(m.seq, m.g.MaxTid); ok {
			s.setDurable(tid)
		}
		s.pm.dequeue()
		s.rm.enqueue()
		s.reproCh <- repoMsg{g: m.g, w: w, wi: wi, ep: m.ep}
		// One write-back for the fence/durable stamps above; it rides
		// after the group's own barrier, adding no fence of its own.
		s.bbFlush()
		s.workerGates[wi].Unlock()
	}
}

// reproApplier is one Reproduce-stage applier: it stores its
// pre-partitioned entry bucket into the persistent data region, then
// accumulates exactly the distinct cache lines the partition pass
// assigned to this shard into the run's shared batch. No per-entry
// shard filtering happens here anymore — the ordering loop's counting
// partition hands every applier a contiguous bucket, so the old
// O(entries × shards) rescans are gone. The fence stays with the
// ordering loop — one barrier per replay run, issued only after every
// shard has joined.
//
//dudelint:noalloc
//dudelint:fencebudget 0
func (s *System) reproApplier() {
	defer s.wg.Done()
	base := s.lay.dataOff
	for t := range s.applyCh {
		for _, e := range t.entries {
			s.dev.Store8(base+e.Addr, e.Val)
		}
		for _, a := range t.lines {
			t.b.Flush(a, pmem.LineSize)
		}
		t.wg.Done()
	}
}

// minShardEntries gates the Reproduce fan-out: below this, one thread
// applies the run inline — the wakeup and join cost would exceed the
// parallel win.
const minShardEntries = 64

// recycleInterval bounds how long a batched recycle can be deferred
// once one is pending.
const recycleInterval = 500 * time.Microsecond

// reproState owns the Reproduce loop's pooled replay buffers: the
// loop-lifetime flush batch (Fence resets it for reuse), the epoch
// combiner, the counting-partition backing arrays, and the
// epoch-stamped line-dedup map. Everything here is allocated once (or
// grown to a high-water mark by ensure, outside the annotated replay
// path), so steady-state replay — per-group or per-epoch — allocates
// nothing.
type reproState struct {
	batch *pmem.Batch
	wg    sync.WaitGroup
	comb  *redolog.Combiner
	epoch []repoMsg // dense run being coalesced, in ascending tid order

	// Counting-partition state: flat holds every entry, bucketed
	// contiguously per shard; lineBuf holds each shard's distinct
	// write-back lines (worst case 2 per entry: the entry's line plus a
	// straddled successor). buckets/lines are reslices of flat/lineBuf.
	flat    []redolog.Entry
	lineBuf []uint64
	buckets [][]redolog.Entry
	lines   [][]uint64
	counts  []int
	fill    []int
	lfill   []int

	// lineSeen dedups write-backs to cache-line granularity. Slots are
	// stamp-stamped like combiner slots: bumping stamp invalidates the
	// whole map in O(1) instead of clearing it.
	lineSeen map[uint64]uint64
	stamp    uint64
	flushed  int // distinct lines flushed by the last replay run
}

// newReproState sizes the replay buffers for the configured fan-out.
func newReproState(s *System) *reproState {
	r := s.cfg.ReproThreads
	return &reproState{
		batch:    s.dev.NewBatch(),
		comb:     redolog.NewCombiner(),
		epoch:    make([]repoMsg, 0, s.cfg.ReplayEpochGroups),
		buckets:  make([][]redolog.Entry, r),
		lines:    make([][]uint64, r),
		counts:   make([]int, r),
		fill:     make([]int, r),
		lfill:    make([]int, r),
		lineSeen: make(map[uint64]uint64, 4096),
	}
}

// ensure grows the partition backing arrays to hold n entries (and up
// to 2n write-back lines). Growth happens here, outside the annotated
// replay path, so replay itself stays allocation-free once the
// high-water mark is reached.
func (rs *reproState) ensure(n int) {
	if len(rs.flat) < n {
		grown := n + n/2
		rs.flat = make([]redolog.Entry, grown)
		rs.lineBuf = make([]uint64, 2*grown)
	}
}

// partition buckets a combined entry run by cache-line shard
// (line % ReproThreads, so a line never spans shards) with a two-pass
// counting sort into rs.flat, and computes each shard's distinct
// write-back lines into rs.lineBuf. Line dedup is per-shard-exact: an
// entry's own line always belongs to the entry's shard, so deduping it
// globally is safe; a straddled second line may belong to a different
// shard, so it is appended to this shard's list undeduped — the flush
// must be issued by the applier that performs the store (flush after
// store, same goroutine), and a duplicate flush of a line another shard
// also writes back is merely redundant, never unordered.
//
//dudelint:noalloc
//dudelint:fencebudget 0
func (s *System) partition(rs *reproState, entries []redolog.Entry) {
	base := s.lay.dataOff
	nsh := uint64(s.cfg.ReproThreads)
	for i := range rs.counts {
		rs.counts[i] = 0
	}
	for _, e := range entries {
		rs.counts[((base+e.Addr)/pmem.LineSize)%nsh]++
	}
	off := 0
	for i := range rs.counts {
		rs.fill[i] = off
		rs.lfill[i] = 2 * off
		off += rs.counts[i]
	}
	rs.stamp++
	rs.flushed = 0
	for _, e := range entries {
		a := base + e.Addr
		l1 := a / pmem.LineSize
		sh := l1 % nsh
		rs.flat[rs.fill[sh]] = e
		rs.fill[sh]++
		if rs.lineSeen[l1] != rs.stamp {
			rs.lineSeen[l1] = rs.stamp
			rs.lineBuf[rs.lfill[sh]] = l1 * pmem.LineSize
			rs.lfill[sh]++
			rs.flushed++
		}
		if l2 := (a + 7) / pmem.LineSize; l2 != l1 {
			rs.lineBuf[rs.lfill[sh]] = l2 * pmem.LineSize
			rs.lfill[sh]++
			rs.flushed++
		}
	}
	start := 0
	for i := range rs.counts {
		rs.buckets[i] = rs.flat[start:rs.fill[i]]
		rs.lines[i] = rs.lineBuf[2*start : rs.lfill[i]]
		start += rs.counts[i]
	}
}

// replayInline applies a combined entry run on the ordering loop
// itself: store everything, then write back each dirty cache line
// exactly once (stamp-bumped dedup), straddled lines included. This is
// the non-sharded path — small runs below minShardEntries and
// single-applier configs — and it gets the same line-granular flush
// economy as the fan-out.
//
//dudelint:noalloc
//dudelint:fencebudget 0
func (s *System) replayInline(rs *reproState, entries []redolog.Entry) {
	base := s.lay.dataOff
	for _, e := range entries {
		s.dev.Store8(base+e.Addr, e.Val)
	}
	rs.stamp++
	rs.flushed = 0
	for _, e := range entries {
		a := base + e.Addr
		l1 := a / pmem.LineSize
		if rs.lineSeen[l1] != rs.stamp {
			rs.lineSeen[l1] = rs.stamp
			rs.batch.Flush(l1*pmem.LineSize, pmem.LineSize)
			rs.flushed++
		}
		if l2 := (a + 7) / pmem.LineSize; l2 != l1 && rs.lineSeen[l2] != rs.stamp {
			rs.lineSeen[l2] = rs.stamp
			rs.batch.Flush(l2*pmem.LineSize, pmem.LineSize)
			rs.flushed++
		}
	}
}

// replayEntries stores one combined, ID-ordered entry run into the
// persistent data region and writes it back at cache-line granularity
// under a single fence — the epoch apply path. Large runs are
// partitioned once and fanned out to the appliers; small runs apply
// inline. Either way the only persist ordering Reproduce needs is
// data-before-recycle (§3.4), enforced by the one fence here before any
// Recycle the caller issues.
//
// The budget pins the epoch fence economy: exactly one barrier per
// replay run, whether the run is one group or a whole coalesced epoch.
//
//dudelint:noalloc
//dudelint:fencebudget 1
func (s *System) replayEntries(rs *reproState, entries []redolog.Entry) {
	if r := s.cfg.ReproThreads; r > 1 && len(entries) >= minShardEntries {
		s.partition(rs, entries)
		rs.wg.Add(r)
		for sh := 0; sh < r; sh++ {
			s.applyCh <- applyTask{
				entries: rs.buckets[sh],
				lines:   rs.lines[sh],
				b:       rs.batch,
				wg:      &rs.wg,
			}
		}
		rs.wg.Wait()
	} else {
		s.replayInline(rs, entries)
	}
	rs.batch.Fence()
}

// reproduceLoop is the Reproduce step: replay persisted groups in
// transaction-ID order into the persistent data region, then recycle
// their log space. Groups may arrive out of order (per-thread flushes in
// ModeSync, out-of-order persist workers in ModeAsync), so a min-heap
// buffers them until the next dense ID range is available.
//
// When Reproduce has fallen behind — a dense backlog is buffered — up
// to ReplayEpochGroups consecutive groups are coalesced into one replay
// epoch: duplicate addresses collapse last-writer-wins (only
// per-address last-writer order matters during replay — MOD), each
// dirty cache line is written back once, and a single fence covers the
// whole epoch. This is sound because replay is idempotent (re-storing a
// prefix of an epoch after a crash is repaired by recovery replaying
// the same groups from the log) and §3.4's data-before-recycle ordering
// holds at epoch granularity: every Recycle below happens after the
// epoch fence that made its groups' data durable. Under light load the
// heap never holds a dense successor and the per-group fast path runs
// unchanged.
func (s *System) reproduceLoop() {
	defer s.wg.Done()
	defer close(s.applyCh)
	var h msgHeap
	next := s.startTid + 1
	rs := newReproState(s)

	type pending struct {
		pos, seq uint64
		count    int
	}
	pend := make([]pending, len(s.writers))
	pendingRecycles := 0

	flushRecycles := func() {
		for i := range pend {
			if pend[i].count > 0 {
				repro := s.reproduced.Load()
				s.writers[i].Recycle(pend[i].pos, pend[i].seq, repro)
				s.bbStamp(blackbox.KindRecycle, uint64(i), pend[i].seq, repro)
				pendingRecycles -= pend[i].count
				pend[i].count = 0
			}
		}
		s.bbFlush()
	}

	// retire publishes one applied group's frontier and recycle
	// bookkeeping. Epochs retire their groups one by one in ascending
	// order, after the epoch fence, so the reproduced frontier, the
	// GroupApplied/ReproducedAdvanced trace stamps and the blackbox
	// recycle stamps advance exactly as they would group-by-group —
	// monotonic, none skipped, none reordered.
	retire := func(m repoMsg) {
		s.reproduced.Store(m.g.MaxTid)
		s.obs.GroupApplied(s.srcRepro(), m.g.MinTid, m.g.MaxTid)
		s.obs.ReproducedAdvanced(m.g.MaxTid)
		s.rm.groups.Add(1)
		putEntrySlice(m.ep)
		p := &pend[m.wi]
		p.pos, p.seq = m.g.EndPos, m.g.Seq+1
		p.count++
		pendingRecycles++
		if p.count >= s.cfg.RecycleEvery {
			s.writers[m.wi].Recycle(p.pos, p.seq, m.g.MaxTid)
			s.bbStamp(blackbox.KindRecycle, uint64(m.wi), p.seq, m.g.MaxTid)
			s.bbFlush()
			pendingRecycles -= p.count
			p.count = 0
		}
	}

	// apply is the single-group fast path — identical fence economy and
	// stamp order to the pre-epoch pipeline, and allocation-free.
	apply := func(m repoMsg) {
		if n := len(m.g.Entries); n > 0 {
			t0 := time.Now()
			rs.ensure(n)
			s.replayEntries(rs, m.g.Entries)
			s.rm.fences.Add(1)
			s.rm.lines.Add(uint64(rs.flushed))
			s.rm.busy.Add(uint64(time.Since(t0)))
		}
		retire(m)
	}

	// applyEpoch replays rs.epoch — a dense run of groups — as one
	// coalesced run under one fence, then retires each group in order.
	applyEpoch := func() {
		t0 := time.Now()
		rs.comb.Reset()
		for _, m := range rs.epoch {
			rs.comb.AddAll(m.g.Entries)
		}
		in, out := rs.comb.RawCount(), rs.comb.Len()
		if out > 0 {
			rs.ensure(out)
			s.replayEntries(rs, rs.comb.Entries())
			s.rm.fences.Add(1)
			s.rm.lines.Add(uint64(rs.flushed))
		}
		s.rm.busy.Add(uint64(time.Since(t0)))
		s.rm.epochs.Add(1)
		s.rm.coalesceIn.Add(uint64(in))
		s.rm.coalesceOut.Add(uint64(out))
		s.obs.EpochCoalesced(len(rs.epoch), out)
		for i := range rs.epoch {
			retire(rs.epoch[i])
			rs.epoch[i] = repoMsg{} // drop the group/slice references
		}
		rs.epoch = rs.epoch[:0]
	}

	drainReady := func() {
		for h.Len() > 0 && h[0].g.MinTid == next {
			m := heap.Pop(&h).(repoMsg)
			// Backlog-adaptive epoch formation: coalesce only while the
			// heap already holds the dense successor, up to the group
			// cap and the combined entry budget.
			if s.cfg.ReplayEpochGroups > 1 && h.Len() > 0 && h[0].g.MinTid == m.g.MaxTid+1 {
				rs.epoch = append(rs.epoch[:0], m)
				budget := len(m.g.Entries)
				for len(rs.epoch) < s.cfg.ReplayEpochGroups && h.Len() > 0 &&
					h[0].g.MinTid == rs.epoch[len(rs.epoch)-1].g.MaxTid+1 &&
					budget+len(h[0].g.Entries) <= s.cfg.ReplayEpochEntries {
					mm := heap.Pop(&h).(repoMsg)
					budget += len(mm.g.Entries)
					rs.epoch = append(rs.epoch, mm)
				}
				if len(rs.epoch) > 1 {
					next = rs.epoch[len(rs.epoch)-1].g.MaxTid + 1
					applyEpoch()
					continue
				}
				// The entry budget excluded the successor: fall back to
				// the single-group path.
				m = rs.epoch[0]
				rs.epoch = rs.epoch[:0]
			}
			apply(m)
			next = m.g.MaxTid + 1
		}
	}

	// The timer bounds how long a batched recycle can be deferred, so a
	// writer blocked on log space always gets freed even when no new
	// groups arrive (RecycleEvery > 1). It is armed lazily — only while
	// a recycle is actually pending — so an idle pool takes no timer
	// wakeups at all (TimerWakes counts the fires).
	timer := time.NewTimer(recycleInterval)
	if !timer.Stop() {
		<-timer.C
	}
	var timerC <-chan time.Time

	rearm := func() {
		if pendingRecycles > 0 && timerC == nil {
			timer.Reset(recycleInterval)
			timerC = timer.C
		} else if pendingRecycles == 0 && timerC != nil {
			if !timer.Stop() {
				<-timer.C
			}
			timerC = nil
		}
	}

	for {
		select {
		case m, ok := <-s.reproCh:
			// The gate is held around every device mutation so
			// PauseReproduce blocks until the step is quiescent (the
			// sharded appliers only run inside replayEntries, under this
			// gate).
			s.reproduceGate.Lock()
			open := ok
			if ok {
				s.rm.dequeue()
				heap.Push(&h, m)
				// An in-order backlog accumulates in the channel, not
				// the heap (drainReady pops every dense group as soon as
				// it is pushed), so slurp whatever Persist has already
				// queued before replaying — that backlog is what epoch
				// formation coalesces.
			slurp:
				for {
					select {
					case m2, ok2 := <-s.reproCh:
						if !ok2 {
							open = false
							break slurp
						}
						s.rm.dequeue()
						heap.Push(&h, m2)
					default:
						break slurp
					}
				}
			}
			if !open && s.halted.Load() {
				// Crash: stop where we are. Durable-but-unreproduced
				// groups stay in the persistent log; recovery replays
				// them (gaps are possible when per-thread flushes or
				// persist workers raced the crash).
				s.reproduceGate.Unlock()
				return
			}
			drainReady()
			if !open {
				if h.Len() > 0 {
					panic("dudetm: gap in transaction IDs at shutdown")
				}
				flushRecycles()
				s.reproduceGate.Unlock()
				return
			}
			rearm()
			s.reproduceGate.Unlock()
		case <-timerC:
			timerC = nil
			s.reproduceGate.Lock()
			s.rm.wakes.Add(1)
			flushRecycles()
			rearm()
			s.reproduceGate.Unlock()
		}
	}
}

// msgHeap is a min-heap of groups keyed by MinTid.
type msgHeap []repoMsg

func (h msgHeap) Len() int           { return len(h) }
func (h msgHeap) Less(i, j int) bool { return h[i].g.MinTid < h[j].g.MinTid }
func (h msgHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)        { *h = append(*h, x.(repoMsg)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}
