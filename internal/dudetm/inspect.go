package dudetm

import (
	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// PoolInfo describes the persistent state of a pool image without
// mounting it (used by the dudectl inspector).
type PoolInfo struct {
	NLogs    uint64
	LogSize  uint64
	DataSize uint64
	PageSize uint64
	// Anchor is the recovery replay anchor: the largest reproduced
	// transaction ID any log recycle persisted.
	Anchor uint64
	// Frontier is the largest transaction ID recovery would restore
	// (the dense durable prefix).
	Frontier uint64
	Logs     []LogInfo
}

// LogInfo summarizes one persistent log.
type LogInfo struct {
	LiveGroups  int
	LiveEntries int
	NextSeq     uint64
	ReproTid    uint64
	MinTid      uint64 // of live groups; 0 when empty
	MaxTid      uint64
}

// Inspect reads a pool image's header and logs.
func Inspect(dev *pmem.Device) (PoolInfo, error) {
	lay, err := readHeader(dev)
	if err != nil {
		return PoolInfo{}, err
	}
	info := PoolInfo{
		NLogs:    lay.nlogs,
		LogSize:  lay.logSize,
		DataSize: lay.dataSize,
		PageSize: lay.pageSize,
	}
	var all []redolog.Group
	for i := 0; i < int(lay.nlogs); i++ {
		res, err := redolog.Scan(dev, lay.metaAddr(i), lay.logAddr(i), lay.logSize)
		if err != nil {
			return PoolInfo{}, err
		}
		li := LogInfo{
			LiveGroups: len(res.Groups),
			NextSeq:    res.NextSeq,
			ReproTid:   res.ReproTid,
		}
		for _, g := range res.Groups {
			li.LiveEntries += len(g.Entries)
			if li.MinTid == 0 || g.MinTid < li.MinTid {
				li.MinTid = g.MinTid
			}
			if g.MaxTid > li.MaxTid {
				li.MaxTid = g.MaxTid
			}
		}
		info.Logs = append(info.Logs, li)
		if res.ReproTid > info.Anchor {
			info.Anchor = res.ReproTid
		}
		all = append(all, res.Groups...)
	}
	// Compute the dense durable frontier the same way Recover does.
	info.Frontier = denseFrontier(info.Anchor, all)
	return info, nil
}

// denseFrontier returns the largest ID reachable from anchor through a
// gap-free chain of live groups.
func denseFrontier(anchor uint64, groups []redolog.Group) uint64 {
	next := anchor + 1
	frontier := anchor
	for {
		advanced := false
		for _, g := range groups {
			if g.MinTid == next {
				next = g.MaxTid + 1
				frontier = g.MaxTid
				advanced = true
			}
		}
		if !advanced {
			return frontier
		}
	}
}
