package dudetm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dudetm/internal/pmem"
)

// TestWaitDurableCrashRace drives many concurrent WaitDurable callers —
// for committed IDs, for IDs near the frontier, and for IDs that will
// never be assigned — against a racing Crash. Every waiter must return:
// nil only if its ID is covered by the post-crash durable frontier,
// ErrCrashed otherwise. A hang here is the bug the notifier exists to
// prevent.
func TestWaitDurableCrashRace(t *testing.T) {
	for _, mode := range []struct {
		name string
		mode Mode
	}{{"async", ModeAsync}, {"sync", ModeSync}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Mode = mode.mode
			// Pin the stage worker counts so the race runs against the
			// parallel pipeline (per-acceptance: PersistThreads=2,
			// ReproThreads=4), independent of host defaults.
			cfg.PersistThreads = 2
			cfg.ReproThreads = 4
			s, err := Create(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var last uint64
			for i := uint64(0); i < 200; i++ {
				tid, err := s.Run(int(i)%cfg.Threads, func(tx *Tx) error {
					tx.Store(i%64*8, i)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				last = tid
			}

			const waiters = 96
			results := make([]error, waiters)
			tids := make([]uint64, waiters)
			var wg sync.WaitGroup
			var started sync.WaitGroup
			for w := 0; w < waiters; w++ {
				// A third wait for committed IDs, a third for the last
				// ID, a third for IDs beyond the clock (never issued).
				tid := last - uint64(w%10)
				if w%3 == 1 {
					tid = last
				} else if w%3 == 2 {
					tid = last + 1 + uint64(w)
				}
				tids[w] = tid
				wg.Add(1)
				started.Add(1)
				go func(w int, tid uint64) {
					defer wg.Done()
					started.Done()
					if w%2 == 0 {
						results[w] = s.WaitDurable(tid)
					} else {
						results[w] = <-s.WaitDurableChan(tid)
					}
				}(w, tid)
			}
			started.Wait()
			img := s.Crash()

			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("waiters hung across Crash")
			}

			frontier := s.Durable()
			for w, err := range results {
				if tids[w] <= frontier && err != nil {
					t.Errorf("waiter %d (tid %d <= frontier %d): unexpected error %v", w, tids[w], frontier, err)
				}
				if tids[w] > frontier && !errors.Is(err, ErrCrashed) {
					t.Errorf("waiter %d (tid %d > frontier %d): got %v, want ErrCrashed", w, tids[w], frontier, err)
				}
			}

			// Waiters arriving after the crash fail immediately.
			if err := s.WaitDurable(last + 1000); !errors.Is(err, ErrCrashed) {
				t.Errorf("post-crash WaitDurable: got %v, want ErrCrashed", err)
			}

			// The image remounts, and every ID at or below the crash
			// frontier recovered.
			dev := pmem.New(pmem.Config{Size: uint64(len(img))})
			dev.Restore(img)
			s2, err := Recover(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Durable() < frontier {
				t.Errorf("recovered durable %d < crash frontier %d", s2.Durable(), frontier)
			}
		})
	}
}

// TestDurableUpdatesSubscription checks the broadcast hook: a
// subscriber observes a monotone sequence of frontier advances ending
// at the final durable ID, coalescing is lossy only in the middle, and
// the channel closes on Close.
func TestDurableUpdatesSubscription(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := s.DurableUpdates()
	defer cancel()
	var seen atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prev uint64
		for f := range ch {
			if f < prev {
				t.Errorf("frontier went backwards: %d after %d", f, prev)
			}
			prev = f
			seen.Store(f)
		}
	}()
	var last uint64
	for i := uint64(0); i < 100; i++ {
		tid, err := s.Run(0, func(tx *Tx) error {
			tx.Store(0, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := s.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("subscription channel not closed on Close")
	}
	if got := seen.Load(); got < last {
		t.Errorf("subscriber saw final frontier %d, want >= %d", got, last)
	}
}

// TestWaitDurableCloseUnblocks: a waiter for an ID beyond the clock
// must be failed with ErrClosed by Close rather than hang.
func TestWaitDurableCloseUnblocks(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tid, err := s.Run(0, func(tx *Tx) error {
		tx.Store(0, 7)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.WaitDurable(tid + 100) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung across Close")
	}
}
