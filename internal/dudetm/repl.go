package dudetm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dudetm/internal/obs/blackbox"
	"dudetm/internal/redolog"
)

// Replication support. The sealed persist group — the unit the paper
// fences into the NVM log — is also the unit of log shipping: the
// Persist coordinator hands every group it seals, in dense
// transaction-ID order, to an attached ReplSink, and the durability
// acknowledgment frontier generalizes from "fenced into the local log"
// to "fenced locally AND acked by at least ReplQuorum replicas".
//
// The System stays transport-agnostic: internal/repl provides the TCP
// sender/receiver, feeding replica acks back through ReplicaAcked and
// liveness transitions through ReplicaLive. On a replica, IngestGroup
// is the inverse of the coordinator's seal: append the shipped group to
// the local NVM log with one fence, advance the durable frontier, and
// hand the group to Reproduce — so a promoted replica recovers with
// exactly the machinery (Recover, forensics, AuditRecovery) a primary
// would.

// Replication errors.
var (
	// ErrQuorumLost is delivered to durability waiters when fewer than
	// ReplQuorum replicas are live and the pool is configured to fail
	// (rather than degrade to local-only durability). The transaction IS
	// locally durable; what failed is the replication guarantee.
	ErrQuorumLost = errors.New("dudetm: replication quorum lost before transaction was quorum-acked")
	// ErrReplGap: a shipped group does not extend the replica's dense
	// tid stream (the connection missed groups); the receiver must
	// resync from its durable frontier.
	ErrReplGap = errors.New("dudetm: replicated group leaves a gap in the tid stream")
)

// ReplSink receives every sealed persist group, in dense
// transaction-ID order, from the Persist coordinator. ShipGroup is
// called on the coordinator's goroutine and must not retain entries
// after returning (the slice is pooled); implementations serialize or
// copy synchronously and do the network work elsewhere. ShipStats
// reports cumulative serialized bytes before and after compression for
// the StageStats replication-ratio counters.
type ReplSink interface {
	ShipGroup(minTid, maxTid uint64, entries []redolog.Entry)
	ShipStats() (rawBytes, wireBytes uint64)
}

// replPeer is the primary's view of one replica.
type replPeer struct {
	acked uint64 // largest durable frontier this peer ever acked (monotonic)
	live  bool
}

// replState is the quorum bookkeeping attached by EnableReplication.
type replState struct {
	sink         ReplSink
	quorum       int
	degradeLocal bool

	mu        sync.Mutex
	peers     map[string]*replPeer
	local     uint64 // local durable frontier high-water
	published uint64 // quorum-acked frontier actually published to waiters
	degraded  bool
	scratch   []uint64

	degradedEvents atomic.Uint64
}

// ReplQuorumStats is a snapshot of the quorum gate.
type ReplQuorumStats struct {
	// Enabled reports whether replication is attached.
	Enabled bool
	// Quorum is the configured replica-ack requirement Q.
	Quorum int
	// Peers is the number of attached replicas R.
	Peers int
	// Published is the quorum-acked frontier WaitDurable gates on.
	Published uint64
	// Degraded reports that fewer than Quorum replicas are live.
	Degraded bool
	// DegradedEvents counts quorum-lost transitions (never reset; a
	// nonzero value means durability ran degraded at some point).
	DegradedEvents uint64
	// PeerAcked maps each replica to its last acked frontier.
	PeerAcked map[string]uint64
}

// EnableReplication attaches a replication sink and the quorum gate.
// It must be called on a fresh, idle pool — before any transaction
// beyond the mount itself — and only in ModeAsync (the coordinator is
// the single in-order shipping point; ModeSync threads flush logs
// concurrently with no global order to ship). peers names the replicas
// acks will arrive under; Config.ReplQuorum of them must ack before the
// durability frontier is published.
func (s *System) EnableReplication(sink ReplSink, peers []string) error {
	if s.cfg.Mode != ModeAsync {
		return errors.New("dudetm: replication requires ModeAsync")
	}
	if sink == nil {
		return errors.New("dudetm: nil replication sink")
	}
	if s.cfg.ReplQuorum > len(peers) {
		return fmt.Errorf("dudetm: quorum %d exceeds %d peers", s.cfg.ReplQuorum, len(peers))
	}
	// Quiesce the pipeline first: every already-committed transaction
	// must be sealed and locally durable before the sink attaches, so
	// the first shipped group starts exactly at durable+1. A replica
	// holding the same pre-attach prefix (same Options, or a restored
	// image of this pool) then sees a dense stream; a group straddling
	// the attach point would partially overlap the replica's history
	// and be rejected as a gap it can never fill.
	if err := s.WaitDurable(s.engine.Clock()); err != nil {
		return err
	}
	rs := &replState{
		sink:         sink,
		quorum:       s.cfg.ReplQuorum,
		degradeLocal: s.cfg.ReplDegradeLocal,
		peers:        make(map[string]*replPeer, len(peers)),
		local:        s.durable.Load(),
	}
	for _, p := range peers {
		rs.peers[p] = &replPeer{}
	}
	// Nothing is quorum-acked yet beyond what the mount itself already
	// made durable (the pre-attach prefix — heap format, recovery
	// frontier — which predates replication and stays locally gated).
	rs.published = rs.local
	if !s.repl.CompareAndSwap(nil, rs) {
		return errors.New("dudetm: replication already enabled")
	}
	s.acked.Store(rs.published)
	// The critical-path pass now waits for the quorum-th replica fence
	// before decomposing a sampled transaction.
	s.obs.SetReplQuorum(rs.quorum)
	if rs.quorum > 0 {
		// No replica has connected yet: the gate starts degraded and
		// heals as acks arrive. Waiters fail fast (or gate locally)
		// instead of hanging on a quorum that was never reachable.
		rs.mu.Lock()
		s.setDegradedLocked(rs, true)
		rs.mu.Unlock()
	}
	return nil
}

// ReplStats returns a snapshot of the quorum gate (Enabled false when
// replication was never attached).
func (s *System) ReplStats() ReplQuorumStats {
	rs := s.repl.Load()
	if rs == nil {
		return ReplQuorumStats{}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	st := ReplQuorumStats{
		Enabled:        true,
		Quorum:         rs.quorum,
		Peers:          len(rs.peers),
		Published:      rs.published,
		Degraded:       rs.degraded,
		DegradedEvents: rs.degradedEvents.Load(),
		PeerAcked:      make(map[string]uint64, len(rs.peers)),
	}
	for name, p := range rs.peers {
		st.PeerAcked[name] = p.acked
	}
	return st
}

// AckFrontier returns the durability frontier WaitDurable gates on: the
// local durable frontier, capped by the quorum-acked replica frontier
// when replication is enabled.
func (s *System) AckFrontier() uint64 { return s.acked.Load() }

// publishDurable routes a local durable-frontier advance through the
// quorum gate (when enabled) and wakes waiters the published frontier
// passed. The non-replicated fast path is the pre-replication behavior:
// publish the local frontier directly.
func (s *System) publishDurable(f uint64) {
	rs := s.repl.Load()
	if rs == nil {
		s.publishAcked(f)
		return
	}
	rs.mu.Lock()
	if f > rs.local {
		rs.local = f
	}
	pub := s.recomputePublishedLocked(rs)
	rs.mu.Unlock()
	s.publishAcked(pub)
}

// publishAcked raises the acknowledgment frontier, stamps the acked
// pass for every pending sampled transaction it covers (the
// critical-path window end), and wakes waiters. Stamp before wake: a
// waiter that returns from WaitDurable and immediately reads its trace
// must see the acked record.
//
//dudelint:fencebudget 0
func (s *System) publishAcked(f uint64) {
	storeMax(&s.acked, f)
	s.obs.AckedAdvanced(s.srcAckTrace(), f)
	s.notif.advance(f)
}

// ReplicaAcked records a replica's durable frontier. Frontiers are
// taken as a monotonic maximum per peer, so a reconnecting replica
// re-acking an older frontier (catch-up always restarts from the last
// ack) can never move the quorum frontier backward. An ack also counts
// as a liveness signal.
func (s *System) ReplicaAcked(peer string, frontier uint64) {
	rs := s.repl.Load()
	if rs == nil {
		return
	}
	rs.mu.Lock()
	p, ok := rs.peers[peer]
	if !ok {
		rs.mu.Unlock()
		return
	}
	if frontier > p.acked {
		p.acked = frontier
	}
	if !p.live {
		p.live = true
		s.updateDegradedLocked(rs)
	}
	pub := s.recomputePublishedLocked(rs)
	rs.mu.Unlock()
	s.publishAcked(pub)
}

// ReplicaLive records a replica connecting (live) or dying (not live).
// Quorum loss — fewer live replicas than ReplQuorum — is never silent:
// the degraded flag (and its metrics series) raises, and waiters either
// fail with ErrQuorumLost or, with Config.ReplDegradeLocal, fall back
// to local-only durability until the quorum heals.
func (s *System) ReplicaLive(peer string, live bool) {
	rs := s.repl.Load()
	if rs == nil {
		return
	}
	rs.mu.Lock()
	p, ok := rs.peers[peer]
	if !ok {
		rs.mu.Unlock()
		return
	}
	p.live = live
	s.updateDegradedLocked(rs)
	pub := s.recomputePublishedLocked(rs)
	rs.mu.Unlock()
	s.publishAcked(pub)
}

// updateDegradedLocked re-derives the degraded flag from peer liveness.
func (s *System) updateDegradedLocked(rs *replState) {
	liveCount := 0
	for _, p := range rs.peers {
		if p.live {
			liveCount++
		}
	}
	s.setDegradedLocked(rs, liveCount < rs.quorum)
}

// setDegradedLocked applies a degraded-state transition: entering
// degraded fails current and future waiters with ErrQuorumLost (unless
// the pool degrades to local-only durability), leaving it restores
// normal quorum gating.
func (s *System) setDegradedLocked(rs *replState, degraded bool) {
	if degraded == rs.degraded {
		return
	}
	rs.degraded = degraded
	if degraded {
		rs.degradedEvents.Add(1)
		if !rs.degradeLocal {
			s.notif.setDegraded(ErrQuorumLost)
		}
	} else {
		s.notif.clearDegraded()
	}
}

// recomputePublishedLocked derives the published frontier: the local
// durable frontier capped by the Q-th largest per-peer acked frontier
// (so at least Q replicas hold everything at or below it). Degraded
// pools with ReplDegradeLocal publish the local frontier instead. The
// result is monotonic: a recomputation can never regress it.
func (s *System) recomputePublishedLocked(rs *replState) uint64 {
	var pub uint64
	switch {
	case rs.quorum == 0:
		pub = rs.local
	case rs.degraded && rs.degradeLocal:
		pub = rs.local
	default:
		rs.scratch = rs.scratch[:0]
		for _, p := range rs.peers {
			rs.scratch = append(rs.scratch, p.acked)
		}
		sort.Slice(rs.scratch, func(i, j int) bool { return rs.scratch[i] > rs.scratch[j] })
		qth := uint64(0)
		if rs.quorum <= len(rs.scratch) {
			qth = rs.scratch[rs.quorum-1]
		}
		pub = min(rs.local, qth)
	}
	if pub > rs.published {
		rs.published = pub
	}
	return rs.published
}

// shipGroup hands a sealed group to the replication sink, if attached.
// Called only from the Persist coordinator (dense tid order). The ship
// stamp is taken after the synchronous part of ShipGroup (serialize,
// compress, per-peer enqueue), so repl-ship critical-path time starts
// where the coordinator's own work on the group ends.
//
//dudelint:fencebudget 0
func (s *System) shipGroup(minTid, maxTid uint64, entries []redolog.Entry) {
	if rs := s.repl.Load(); rs != nil {
		rs.sink.ShipGroup(minTid, maxTid, entries)
		s.obs.ReplShipped(s.srcReplTrace(), minTid, maxTid)
	}
}

// ReplicaGroupSent stamps a group's frame fully written to a peer's
// socket (called from the sender's per-peer write loops).
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (s *System) ReplicaGroupSent(peer int, minTid, maxTid uint64) {
	s.obs.ReplSent(s.srcReplTrace(), minTid, maxTid, peer)
}

// ReplicaGroupAcked stamps a replica's group acknowledgment: the
// replica fenced [minTid,maxTid] into its local log, self-measuring
// ingestNanos for the append+barrier (clock-free; the primary anchors
// the replica's span at the ack's arrival). Called from the sender's
// per-peer ack readers just before the frontier feeds ReplicaAcked.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (s *System) ReplicaGroupAcked(peer int, minTid, maxTid uint64, ingestNanos int64) {
	s.obs.ReplicaFenced(s.srcReplTrace(), minTid, maxTid, peer, ingestNanos)
}

// storeMax raises an atomic to v if it is below it.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// IngestGroup appends one replicated group to this (replica) pool: the
// entries are fenced into the local NVM log exactly like a
// coordinator-sealed group, the durable frontier advances, and the
// group flows into Reproduce for replay and log recycling. Groups must
// arrive in dense tid order: a group at or below the durable frontier
// is a catch-up duplicate and is skipped (idempotent — it may be
// re-acked, and crucially it is NOT re-appended, since recovery's
// dense replay stops at a repeated tid range); a group beyond the next
// expected tid fails with ErrReplGap and the stream must resync from
// the acked frontier.
//
// The caller (internal/repl's receiver) must stop ingesting before the
// pool is closed or crashed.
//
//dudelint:fencebudget 1
func (s *System) IngestGroup(minTid, maxTid uint64, entries []redolog.Entry) error {
	if s.cfg.Mode != ModeAsync {
		return errors.New("dudetm: IngestGroup requires ModeAsync")
	}
	if minTid == 0 || maxTid < minTid {
		return fmt.Errorf("dudetm: ingest group tid range [%d,%d]", minTid, maxTid)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.stopping.Load() || s.closed.Load() {
		return ErrClosed
	}
	cur := s.durable.Load()
	if maxTid <= cur {
		return nil // duplicate from catch-up: already fenced, just re-ack
	}
	if minTid != cur+1 {
		return fmt.Errorf("%w: got [%d,%d], durable frontier %d", ErrReplGap, minTid, maxTid, cur)
	}
	ep := getEntrySlice()
	*ep = append((*ep)[:0], entries...)
	g := &redolog.Group{MinTid: minTid, MaxTid: maxTid, Entries: *ep}
	w := s.writers[0]
	txns := int(maxTid - minTid + 1)
	// The same forensic choreography as a locally sealed group: seal
	// stamp on media before the append, fence stamps around it, durable
	// stamp behind the group's own barrier — so dudectl forensics reads
	// a promoted replica's log exactly like a primary's.
	sealAt := s.obs.GroupSealed(s.srcCoord(), minTid, maxTid, txns, len(entries))
	s.bbStamp(blackbox.KindGroupSeal, minTid, maxTid, uint64(txns))
	s.bbStamp(blackbox.KindFenceBegin, minTid, maxTid, 0)
	s.bbFlush()
	startAt := s.obs.Now()
	w.AppendGroup(g)
	endAt := s.obs.Now()
	s.bbStamp(blackbox.KindPersistFence, minTid, maxTid, 0)
	s.obs.GroupPersisted(s.srcCoord(), minTid, maxTid, sealAt, startAt, endAt)
	s.pm.busy.Add(uint64(endAt - startAt))
	s.pm.groups.Add(1)
	s.pm.fences.Add(1)
	s.rawEntries.Add(uint64(len(entries)))
	s.combEntries.Add(uint64(len(entries)))
	s.groups.Add(1)
	s.setDurable(maxTid)
	s.bbStamp(blackbox.KindDurable, maxTid, 0, 0)
	s.bbFlush()
	s.rm.enqueue()
	s.reproCh <- repoMsg{g: g, w: w, wi: 0, ep: ep}
	return nil
}
