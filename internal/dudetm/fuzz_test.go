package dudetm

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"dudetm/internal/pmem"
)

// TestCrashRecoveryFuzz drives randomized multi-threaded workloads
// through repeated crash/recover cycles, crashing with the pipeline
// frozen at random depths, and checks the fundamental contract after
// every recovery: the surviving state is exactly the writes of the
// transactions up to the recovered durable frontier — a prefix of the
// commit order, nothing more, nothing less.
func TestCrashRecoveryFuzz(t *testing.T) {
	const (
		rounds  = 6
		words   = 256
		txPerW  = 120
		workers = 3
	)
	type write struct {
		addr, val, tid uint64
	}

	rng := rand.New(rand.NewSource(99))
	cfg := testConfig()
	cfg.Threads = workers
	// The random schedule also varies the stage worker counts and the
	// replay-epoch group cap across rounds (1 = per-group replay, the
	// pre-epoch behavior); lay the pool out for the widest persist
	// configuration so every remount fits the persistent geometry.
	stageChoices := []int{1, 2, 4}
	epochChoices := []int{1, 4, 64}
	cfg.PersistThreads = 4
	cfg.ReproThreads = 4
	cfg.ReplayEpochGroups = epochChoices[rng.Intn(len(epochChoices))]
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// All committed writes ever made, with their transaction IDs.
	var historyMu sync.Mutex
	var history []write

	for round := 0; round < rounds; round++ {
		// Optionally freeze a pipeline stage before the workload so the
		// crash catches the system at different depths.
		freeze := rng.Intn(3) // 0: none, 1: reproduce, 2: persist+reproduce
		if freeze >= 1 {
			s.PauseReproduce()
		}
		if freeze == 2 {
			s.PausePersist()
		}

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < txPerW; i++ {
					n := 1 + r.Intn(4)
					addrs := make([]uint64, n)
					vals := make([]uint64, n)
					for j := range addrs {
						addrs[j] = uint64(r.Intn(words)) * 8
						vals[j] = r.Uint64()
					}
					tid, err := s.Run(w, func(tx *Tx) error {
						for j := range addrs {
							tx.Store(addrs[j], vals[j])
						}
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					historyMu.Lock()
					for j := range addrs {
						history = append(history, write{addrs[j], vals[j], tid})
					}
					historyMu.Unlock()
				}
			}(w, rng.Int63())
		}
		wg.Wait()

		// Quiesce whatever is still running, then crash.
		if freeze == 0 {
			// Let the pipeline make arbitrary progress, then freeze.
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			s.PausePersist()
			s.PauseReproduce()
		} else if freeze == 1 {
			s.PausePersist()
		}
		img := s.Device().PersistedImage()
		s.ResumePersist()
		s.ResumeReproduce()
		s.Close()

		dev := pmem.New(pmem.Config{Size: s.Device().Size()})
		dev.Restore(img)
		cfg.PersistThreads = stageChoices[rng.Intn(len(stageChoices))]
		cfg.ReproThreads = stageChoices[rng.Intn(len(stageChoices))]
		cfg.ReplayEpochGroups = epochChoices[rng.Intn(len(epochChoices))]
		t.Logf("round %d: freeze=%d persist=%d repro=%d epochs=%d",
			round, freeze, cfg.PersistThreads, cfg.ReproThreads, cfg.ReplayEpochGroups)
		s, err = Recover(dev, cfg)
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		frontier := s.Durable()

		// Drop lost transactions from the model: recovery keeps exactly
		// the dense prefix up to the frontier.
		historyMu.Lock()
		kept := history[:0]
		expect := map[uint64]write{}
		for _, wr := range history {
			if wr.tid > frontier {
				continue
			}
			kept = append(kept, wr)
			// >= so a later write in the same transaction wins.
			if cur, ok := expect[wr.addr]; !ok || wr.tid >= cur.tid {
				expect[wr.addr] = wr
			}
		}
		history = kept
		historyMu.Unlock()

		s.Run(0, func(tx *Tx) error {
			for addr, wr := range expect {
				if got := tx.Load(addr); got != wr.val {
					t.Errorf("round %d: addr %d = %#x, want %#x (tid %d <= frontier %d)",
						round, addr, got, wr.val, wr.tid, frontier)
				}
			}
			return nil
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	s.Close()
}

// TestCrashRecoveryFuzzSyncMode runs a shorter variant in ModeSync,
// where per-thread logs flush out of order and recovery must anchor the
// dense prefix correctly.
func TestCrashRecoveryFuzzSyncMode(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeSync
	cfg.Threads = 3
	s, err := Create(cfg)
	stageChoices := []int{1, 2, 4}
	epochChoices := []int{1, 4, 64}
	if err != nil {
		t.Fatal(err)
	}
	type write struct{ addr, val, tid uint64 }
	var mu sync.Mutex
	var history []write

	for round := 0; round < 4; round++ {
		s.PauseReproduce() // sync mode: txs durable, data region frozen
		var wg sync.WaitGroup
		for w := 0; w < cfg.Threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(round*10 + w)))
				for i := 0; i < 60; i++ {
					addr := uint64(r.Intn(128)) * 8
					val := r.Uint64()
					tid, err := s.Run(w, func(tx *Tx) error {
						tx.Store(addr, val)
						return nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					history = append(history, write{addr, val, tid})
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		img := s.Device().PersistedImage()
		s.ResumeReproduce()
		s.Close()

		dev := pmem.New(pmem.Config{Size: s.Device().Size()})
		dev.Restore(img)
		// ModeSync persists inline on the Perform threads; only the
		// Reproduce applier count and the replay-epoch cap vary.
		cfg.ReproThreads = stageChoices[round%len(stageChoices)]
		cfg.ReplayEpochGroups = epochChoices[round%len(epochChoices)]
		s, err = Recover(dev, cfg)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		frontier := s.Durable()
		expect := map[uint64]write{}
		mu.Lock()
		kept := history[:0]
		for _, wr := range history {
			if wr.tid > frontier {
				continue
			}
			kept = append(kept, wr)
			if cur, ok := expect[wr.addr]; !ok || wr.tid >= cur.tid {
				expect[wr.addr] = wr
			}
		}
		history = kept
		mu.Unlock()
		s.Run(0, func(tx *Tx) error {
			for addr, wr := range expect {
				if got := tx.Load(addr); got != wr.val {
					t.Errorf("round %d: addr %d = %#x, want %#x", round, addr, got, wr.val)
				}
			}
			return nil
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	s.Close()
}

func TestInspect(t *testing.T) {
	cfg := testConfig()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.PauseReproduce()
	var last uint64
	for i := uint64(0); i < 10; i++ {
		last, _ = s.Run(0, func(tx *Tx) error { tx.Store(i*8, i); return nil })
	}
	s.WaitDurable(last)
	s.PausePersist()
	img := s.Device().PersistedImage()
	s.ResumePersist()
	s.ResumeReproduce()
	s.Close()

	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	info, err := Inspect(dev)
	if err != nil {
		t.Fatal(err)
	}
	// The pool lays out one log per Perform thread or persist worker,
	// whichever is larger (the worker count may come from
	// DUDETM_STAGE_THREADS).
	if info.NLogs < uint64(cfg.Threads) {
		t.Errorf("nlogs = %d, want >= %d", info.NLogs, cfg.Threads)
	}
	if info.Frontier != last {
		t.Errorf("frontier = %d, want %d", info.Frontier, last)
	}
	var live int
	for _, lg := range info.Logs {
		live += lg.LiveGroups
	}
	if live == 0 {
		t.Error("no live groups despite frozen reproduce")
	}
	// Inspect must agree with an actual recovery.
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Durable() != info.Frontier {
		t.Errorf("recovery frontier %d != inspect %d", s2.Durable(), info.Frontier)
	}
}

func TestInspectRejectsGarbage(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 1 << 20})
	if _, err := Inspect(dev); err == nil {
		t.Fatal("garbage accepted")
	}
}
