package dudetm

import (
	"strings"
	"testing"
	"time"

	"dudetm/internal/pmem"
)

// crashWithDeepLog drives a system with Reproduce frozen so the crash
// image holds durable-but-unreproduced groups, and returns the image
// device plus the last acknowledged-durable transaction ID.
func crashWithDeepLog(t *testing.T, cfg Config) (dev *pmem.Device, last uint64) {
	t.Helper()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.PauseReproduce()
	for i := uint64(0); i < 30; i++ {
		tid, err := s.Run(0, func(tx *Tx) error { tx.Store(i*8, i+1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := s.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the persist loop go idle
	d := restoreInto(s)
	s.ResumeReproduce()
	s.Close()
	return d, last
}

// TestCrashReportMatchesRecoveredImage pins the tentpole acceptance
// criterion: the forensic report's durable frontier, computed from the
// crash image alone, exactly matches what Recover restores — and the
// flight-recorder stamps agree with both.
func TestCrashReportMatchesRecoveredImage(t *testing.T) {
	for _, mode := range []Mode{ModeAsync, ModeSync} {
		cfg := testConfig()
		cfg.Mode = mode
		dev, last := crashWithDeepLog(t, cfg)

		rep, err := Forensics(dev)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if rep.LogFrontier < last {
			t.Errorf("mode %d: report frontier %d < acked %d", mode, rep.LogFrontier, last)
		}
		if rep.LastDurableStamp == 0 {
			t.Errorf("mode %d: no durable stamp survived the crash", mode)
		}
		if rep.LastDurableStamp > rep.LogFrontier {
			t.Errorf("mode %d: durable stamp %d ahead of log frontier %d (stamp flushed before its group?)",
				mode, rep.LastDurableStamp, rep.LogFrontier)
		}
		if rep.LiveGroups == 0 {
			t.Errorf("mode %d: no live groups in a paused-Reproduce crash image", mode)
		}
		// Every lost-work finding must be above the recovered frontier
		// and absent from the surviving log.
		for _, g := range append(append([]TidRange{}, rep.SealedUnpersisted...), rep.InFlightFences...) {
			if g.MinTid <= rep.LogFrontier {
				t.Errorf("mode %d: lost-work range [%d,%d] at or below frontier %d",
					mode, g.MinTid, g.MaxTid, rep.LogFrontier)
			}
		}
		if !strings.Contains(rep.String(), "log frontier") {
			t.Errorf("mode %d: String() lacks the frontier line:\n%s", mode, rep)
		}

		s2, err := Recover(dev, cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if got := s2.Durable(); got != rep.LogFrontier {
			t.Errorf("mode %d: recovered durable %d != report frontier %d", mode, got, rep.LogFrontier)
		}

		rec := s2.Stats().Recovery
		if !rec.Recovered {
			t.Errorf("mode %d: Recovery.Recovered false after Recover", mode)
		}
		if rec.Report == nil || rec.Report.LogFrontier != rep.LogFrontier {
			t.Errorf("mode %d: recovery-attached report %+v disagrees with standalone forensics %d",
				mode, rec.Report, rep.LogFrontier)
		}
		if rec.GroupsReplayed == 0 || rec.EntriesReplayed == 0 || rec.BytesReplayed == 0 {
			t.Errorf("mode %d: replay counters empty: %+v", mode, rec)
		}
		if rec.LogsScanned == 0 {
			t.Errorf("mode %d: LogsScanned = 0", mode)
		}
		if rec.ScanNanos < 0 || rec.ReplayNanos < 0 || rec.RecycleNanos < 0 {
			t.Errorf("mode %d: negative phase timing: %+v", mode, rec)
		}
		s2.Close()
	}
}

// TestAuditRecovery pins both audit verdicts: an acked ID within the
// recovered frontier passes; one beyond it fails with the forensic
// report attached.
func TestAuditRecovery(t *testing.T) {
	cfg := testConfig()
	dev, last := crashWithDeepLog(t, cfg)
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AuditRecovery(last); err != nil {
		t.Errorf("audit of acked tid %d failed: %v", last, err)
	}
	err = s2.AuditRecovery(s2.Durable() + 10)
	if err == nil {
		t.Fatal("audit accepted a tid beyond the recovered frontier")
	}
	if !strings.Contains(err.Error(), "crash report") {
		t.Errorf("audit failure lacks forensic context: %v", err)
	}
}

// TestBlackboxFenceBudget pins the steady-state overhead criterion:
// the recorder's write-backs ride the pipeline's existing barriers, so
// the blackbox region sees at most the boot Sync's fence no matter how
// many groups the run seals.
func TestBlackboxFenceBudget(t *testing.T) {
	cfg := testConfig()
	s, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var last uint64
	for i := uint64(0); i < 200; i++ {
		last, _ = s.Run(0, func(tx *Tx) error { tx.Store(i%32*8, i); return nil })
	}
	s.WaitDurable(last)
	var bb *pmem.RegionStats
	for _, r := range s.Stats().Regions {
		if r.Name == "blackbox" {
			rr := r
			bb = &rr
		}
	}
	if bb == nil {
		t.Fatal("no blackbox region in Stats().Regions")
	}
	if bb.BytesFlushed == 0 {
		t.Error("no recorder stamps were written back")
	}
	if bb.Fences > 2 {
		t.Errorf("blackbox region charged %d fences for 200 transactions, want <= 2 (boot only)", bb.Fences)
	}
}

// TestBlackboxDisabled checks the opt-out: a negative BlackboxEntries
// yields a pool with no recorder region that still crashes and
// recovers, producing a log-only report.
func TestBlackboxDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.BlackboxEntries = -1
	dev, last := crashWithDeepLog(t, cfg)
	rep, err := Forensics(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 || rep.LastDurableStamp != 0 {
		t.Errorf("recorder disabled but report has stamps: %+v", rep)
	}
	if rep.LogFrontier < last {
		t.Errorf("log-only frontier %d < acked %d", rep.LogFrontier, last)
	}
	s2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, r := range s2.Stats().Regions {
		if r.Name == "blackbox" {
			t.Error("disabled recorder still has a region")
		}
	}
	if err := s2.AuditRecovery(last); err != nil {
		t.Error(err)
	}
}

// TestRecoveryStatsFreshCreate: a Create mount reports no recovery.
func TestRecoveryStatsFreshCreate(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec := s.Stats().Recovery; rec.Recovered || rec.Report != nil {
		t.Errorf("fresh Create reports recovery: %+v", rec)
	}
}
