package loadgen

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func sorted(at []time.Duration) bool {
	return sort.SliceIsSorted(at, func(i, j int) bool { return at[i] < at[j] })
}

func inWindow(t *testing.T, at []time.Duration, d time.Duration) {
	t.Helper()
	for i, a := range at {
		if a < 0 || a >= d {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, a, d)
		}
	}
}

func TestConstantSpacing(t *testing.T) {
	p := Constant{Rate: 1000}
	at := p.Arrivals(time.Second, rand.New(rand.NewSource(1)))
	if len(at) != 1000 {
		t.Fatalf("got %d arrivals, want 1000", len(at))
	}
	inWindow(t, at, time.Second)
	for i := 1; i < len(at); i++ {
		gap := at[i] - at[i-1]
		if gap < 999*time.Microsecond || gap > 1001*time.Microsecond {
			t.Fatalf("gap %d = %v, want ~1ms", i, gap)
		}
	}
}

// TestDeterministicPerSeed: the same seed must reproduce the same
// schedule exactly (replayable runs), and different seeds must not.
func TestDeterministicPerSeed(t *testing.T) {
	procs := []Process{
		Poisson{Rate: 5000},
		Bursty{BaseRate: 500, BurstRate: 5000},
	}
	for _, p := range procs {
		a := p.Arrivals(time.Second, rand.New(rand.NewSource(7)))
		b := p.Arrivals(time.Second, rand.New(rand.NewSource(7)))
		if len(a) != len(b) {
			t.Fatalf("%s: same seed, different lengths %d vs %d", p.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverges at %d: %v vs %v", p.Name(), i, a[i], b[i])
			}
		}
		c := p.Arrivals(time.Second, rand.New(rand.NewSource(8)))
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical schedules", p.Name())
		}
		if !sorted(a) {
			t.Fatalf("%s: arrivals not sorted", p.Name())
		}
		inWindow(t, a, time.Second)
	}
}

// TestPoissonMean: over a long window the arrival count concentrates
// around Rate*d (stddev sqrt(n)), and the mean inter-arrival time
// around 1/Rate. 5% tolerance is ~5 sigma at n=10000 — loose enough to
// never flake, tight enough to catch a rate-off-by-2.
func TestPoissonMean(t *testing.T) {
	const rate = 5000.0
	d := 2 * time.Second
	at := Poisson{Rate: rate}.Arrivals(d, rand.New(rand.NewSource(42)))
	n := float64(len(at))
	want := rate * d.Seconds()
	if math.Abs(n-want) > 0.05*want {
		t.Fatalf("got %v arrivals, want %v ±5%%", n, want)
	}
	var sum time.Duration
	for i := 1; i < len(at); i++ {
		sum += at[i] - at[i-1]
	}
	meanIAT := float64(sum) / (n - 1)
	wantIAT := float64(time.Second) / rate
	if math.Abs(meanIAT-wantIAT) > 0.05*wantIAT {
		t.Fatalf("mean IAT %v, want %v ±5%%", time.Duration(meanIAT), time.Duration(wantIAT))
	}
}

// TestBurstyRate: the total count matches the phase-weighted MeanRate,
// and the On phases really are denser than the Off phases.
func TestBurstyRate(t *testing.T) {
	b := Bursty{BaseRate: 500, BurstRate: 8000, On: 100 * time.Millisecond, Off: 400 * time.Millisecond}
	d := 5 * time.Second // 10 full cycles
	at := b.Arrivals(d, rand.New(rand.NewSource(42)))
	if !sorted(at) {
		t.Fatal("arrivals not sorted")
	}
	inWindow(t, at, d)
	n := float64(len(at))
	want := b.MeanRate() * d.Seconds()
	if math.Abs(n-want) > 0.10*want {
		t.Fatalf("got %v arrivals, want %v ±10%%", n, want)
	}
	// Count arrivals inside On windows (cycle starts On).
	cycle := b.On + b.Off
	var on, off int
	for _, a := range at {
		if a%cycle < b.On {
			on++
		} else {
			off++
		}
	}
	onRate := float64(on) / (10 * b.On.Seconds())
	offRate := float64(off) / (10 * b.Off.Seconds())
	if onRate < 4*offRate {
		t.Fatalf("on-phase rate %.0f/s not clearly above off-phase %.0f/s", onRate, offRate)
	}
}

func TestTraceTruncatesAndSorts(t *testing.T) {
	tr := &Trace{Label: "x", At: []time.Duration{
		3 * time.Second, time.Second, 2 * time.Second, 500 * time.Millisecond,
	}}
	at := tr.Arrivals(2500*time.Millisecond, nil)
	want := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("got %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("got %v, want %v", at, want)
		}
	}
	if tr.Name() != "trace:x" {
		t.Fatalf("Name() = %q", tr.Name())
	}
}

// TestTraceGoldenCSV: replay fidelity against the checked-in golden
// trace — every recorded timestamp must come back, in order, exactly.
func TestTraceGoldenCSV(t *testing.T) {
	tr, err := LoadTraceCSV(filepath.Join("testdata", "trace_golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "trace_golden.csv" {
		t.Fatalf("label = %q", tr.Label)
	}
	want := []time.Duration{
		0,
		2500 * time.Microsecond,
		10 * time.Millisecond,
		10500 * time.Microsecond,
		250 * time.Millisecond,
		1200 * time.Millisecond,
		1900 * time.Millisecond,
	}
	if len(tr.At) != len(want) {
		t.Fatalf("got %d arrivals %v, want %d", len(tr.At), tr.At, len(want))
	}
	for i := range want {
		if tr.At[i] != want[i] {
			t.Fatalf("arrival %d = %v, want %v", i, tr.At[i], want[i])
		}
	}
	// The replay window truncates but never reorders or thins.
	got := tr.Arrivals(1200*time.Millisecond, nil)
	if len(got) != 5 {
		t.Fatalf("window [0,1.2s) kept %d arrivals, want 5", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("windowed arrival %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestParseTraceCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"negative":  "0.5\n-1.0\n",
		"nan":       "0.5\nNaN\n",
		"inf":       "0.5\n+Inf\n",
		"mid-file":  "0.5\nbogus\n1.0\n",
		"empty":     "",
		"only-hdr":  "t_seconds,op\n",
		"only-cmnt": "# nothing here\n\n",
	}
	for name, body := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(body)); err == nil {
			t.Errorf("%s: ParseTraceCSV accepted %q", name, body)
		}
	}
}

func TestParseTraceCSVHeaderCommentsUnsorted(t *testing.T) {
	body := "t_seconds,op\n# recorded 2026-08-08\n1.5,put\n0.5,put\n\n1.0,get\n"
	tr, err := ParseTraceCSV(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{500 * time.Millisecond, time.Second, 1500 * time.Millisecond}
	if len(tr.At) != len(want) {
		t.Fatalf("got %v", tr.At)
	}
	for i := range want {
		if tr.At[i] != want[i] {
			t.Fatalf("got %v, want %v", tr.At, want)
		}
	}
}
