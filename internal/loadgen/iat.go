// Package loadgen is an open-loop, trace-driven load generator for a
// running dudesrv. Unlike the closed-loop drivers in internal/harness
// (each connection keeps one durable write outstanding, so an
// overloaded server silently throttles its own clients), loadgen
// schedules request *arrivals* from a configured inter-arrival process
// and fires them whether or not earlier requests have completed — the
// only driver shape that exposes queueing collapse past the saturation
// knee.
//
// Latency is coordinated-omission-safe: each request is measured from
// its *intended* arrival time (the schedule) to the durable
// acknowledgment, so a stalled server is charged for the whole queueing
// delay it caused, not just the service time of the requests it got
// around to reading. The intended-vs-actual send skew is recorded
// separately; a generator that cannot keep its own schedule reports
// that too instead of silently thinning the offered load.
package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Process generates one run's arrival schedule: sorted offsets from the
// run start, all within [0, d). Implementations must be deterministic
// for a given rng seed, so a recorded run can be replayed exactly.
type Process interface {
	// Name labels the process in results and BENCH records.
	Name() string
	// Arrivals returns the sorted arrival offsets for a run of length d.
	Arrivals(d time.Duration, rng *rand.Rand) []time.Duration
}

// Constant is a fixed-rate arrival process: one arrival every 1/Rate
// seconds. The degenerate but useful baseline — any latency spread it
// produces is the server's, not the arrival process's.
type Constant struct {
	Rate float64 // arrivals per second
}

// Name implements Process.
func (c Constant) Name() string { return "constant" }

// Arrivals implements Process.
func (c Constant) Arrivals(d time.Duration, _ *rand.Rand) []time.Duration {
	if c.Rate <= 0 || d <= 0 {
		return nil
	}
	n := int(c.Rate * d.Seconds())
	out := make([]time.Duration, 0, n)
	period := float64(time.Second) / c.Rate
	for i := 0; i < n; i++ {
		out = append(out, time.Duration(float64(i)*period))
	}
	return out
}

// Poisson is a memoryless arrival process: exponentially distributed
// inter-arrival times with mean 1/Rate. The standard open-system model
// for many independent users.
type Poisson struct {
	Rate float64 // mean arrivals per second
}

// Name implements Process.
func (p Poisson) Name() string { return "poisson" }

// Arrivals implements Process.
func (p Poisson) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	if p.Rate <= 0 || d <= 0 {
		return nil
	}
	out := make([]time.Duration, 0, int(p.Rate*d.Seconds())+16)
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
		if t >= d {
			return out
		}
		out = append(out, t)
	}
}

// Bursty is an MMPP-style on/off modulated Poisson process: the run
// alternates between an On phase arriving at BurstRate and an Off phase
// arriving at BaseRate. The mean offered load is the phase-weighted
// average; the tail behaviour is dominated by whether the pipeline can
// absorb an On phase before the next one begins.
type Bursty struct {
	BaseRate  float64       // arrivals per second during Off phases
	BurstRate float64       // arrivals per second during On phases
	On        time.Duration // On-phase length (default 100ms)
	Off       time.Duration // Off-phase length (default 400ms)
}

// Name implements Process.
func (b Bursty) Name() string { return "bursty" }

// MeanRate returns the phase-weighted average arrival rate.
func (b Bursty) MeanRate() float64 {
	on, off := b.On, b.Off
	if on <= 0 {
		on = 100 * time.Millisecond
	}
	if off <= 0 {
		off = 400 * time.Millisecond
	}
	return (b.BurstRate*on.Seconds() + b.BaseRate*off.Seconds()) / (on + off).Seconds()
}

// Arrivals implements Process. The run starts in an On phase, so even a
// run shorter than one full cycle carries a burst.
func (b Bursty) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	if d <= 0 || (b.BaseRate <= 0 && b.BurstRate <= 0) {
		return nil
	}
	on, off := b.On, b.Off
	if on <= 0 {
		on = 100 * time.Millisecond
	}
	if off <= 0 {
		off = 400 * time.Millisecond
	}
	var out []time.Duration
	phaseStart := time.Duration(0)
	burst := true
	for phaseStart < d {
		rate, plen := b.BurstRate, on
		if !burst {
			rate, plen = b.BaseRate, off
		}
		end := phaseStart + plen
		if end > d {
			end = d
		}
		if rate > 0 {
			t := phaseStart
			for {
				t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
				if t >= end {
					break
				}
				out = append(out, t)
			}
		}
		phaseStart += plen
		burst = !burst
	}
	return out
}

// Trace replays a recorded arrival schedule: offsets from the run
// start, typically loaded from a CSV of timestamps. Offsets at or past
// the run length are dropped (the replay window truncates the trace).
type Trace struct {
	Label string
	At    []time.Duration
}

// Name implements Process.
func (t *Trace) Name() string {
	if t.Label != "" {
		return "trace:" + t.Label
	}
	return "trace"
}

// Arrivals implements Process: the recorded offsets, sorted, truncated
// to the run window. The rng is unused — a trace is already determined.
func (t *Trace) Arrivals(d time.Duration, _ *rand.Rand) []time.Duration {
	out := make([]time.Duration, 0, len(t.At))
	for _, at := range t.At {
		if at >= 0 && at < d {
			out = append(out, at)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ParseTraceCSV reads a recorded arrival trace: one arrival timestamp
// per line (first comma-separated field), in seconds from the start of
// the recording. Blank lines and '#' comments are skipped; a first line
// whose leading field is not a number is treated as a header. Negative
// and non-finite timestamps are rejected — a torn trace must fail
// loudly, not thin the offered load.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		field := text
		if i := strings.IndexByte(field, ','); i >= 0 {
			field = field[:i]
		}
		field = strings.TrimSpace(field)
		sec, err := strconv.ParseFloat(field, 64)
		if err != nil {
			if len(tr.At) == 0 && line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("loadgen: trace line %d: %q is not a timestamp", line, field)
		}
		if sec < 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
			return nil, fmt.Errorf("loadgen: trace line %d: timestamp %v out of range", line, sec)
		}
		// Round, don't truncate: 1.2 (not exactly representable in
		// float64) must land on 1.2s, not 1.199999999s.
		tr.At = append(tr.At, time.Duration(math.Round(sec*float64(time.Second))))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loadgen: reading trace: %w", err)
	}
	if len(tr.At) == 0 {
		return nil, fmt.Errorf("loadgen: trace holds no arrivals")
	}
	sort.Slice(tr.At, func(i, j int) bool { return tr.At[i] < tr.At[j] })
	return tr, nil
}

// LoadTraceCSV reads a trace file with ParseTraceCSV, labeling the
// trace with the file's base name.
func LoadTraceCSV(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ParseTraceCSV(f)
	if err != nil {
		return nil, err
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	tr.Label = base
	return tr, nil
}
