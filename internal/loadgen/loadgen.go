package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/obs"
	"dudetm/internal/server"
	"dudetm/internal/wire"
)

// Opts configures one open-loop run.
type Opts struct {
	// Addr is the dudesrv TCP address.
	Addr string
	// Proc generates the arrival schedule (required).
	Proc Process
	// Duration is the scheduled length of the run (default 1s). The run
	// may take longer: outstanding acknowledgments are drained for up to
	// DrainTimeout after the last scheduled arrival.
	Duration time.Duration
	// Conns is the number of pipelined connections the arrivals are
	// dealt across, round-robin (default 4). Connections are transport,
	// not load: each one pipelines every request assigned to it without
	// waiting for completions.
	Conns int
	// ValueBytes sizes each written value (default 64).
	ValueBytes int
	// Keys bounds the keyspace: writes land on uniform-random keys in
	// [0, Keys) (default 1<<20). Size it past cache residency to
	// exercise the B+-tree and blob heap at realistic working-set sizes.
	Keys uint64
	// Seed makes the schedule and key stream reproducible (default 42).
	Seed int64
	// UniqueKeys makes every write hit a distinct key (worker<<32|seq)
	// with its generation equal to the per-worker sequence number, so a
	// crash audit can demand exact presence of every acknowledged write.
	// Keys is ignored.
	UniqueKeys bool
	// DrainTimeout bounds the wait for outstanding acknowledgments
	// after the schedule ends (default 2s). Requests still unanswered at
	// the deadline count as errors, and the drain time is charged to the
	// served rate — an overloaded server cannot hide behind the drain.
	DrainTimeout time.Duration
	// OnAck, when set, is called on every durably acknowledged write
	// with the worker, key, value generation and transaction ID — from
	// the connections' read goroutines, so it must be fast and
	// thread-safe. Crash drills record exactly what a recovered image
	// must contain.
	OnAck func(conn int, key, gen, tid uint64)
}

func (o Opts) withDefaults() Opts {
	if o.Duration == 0 {
		o.Duration = time.Second
	}
	if o.Conns == 0 {
		o.Conns = 4
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 64
	}
	if o.Keys == 0 {
		o.Keys = 1 << 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 2 * time.Second
	}
	return o
}

// Result summarizes one open-loop run. Latency quantiles are
// coordinated-omission-safe: measured from each request's intended
// arrival time in the schedule to its durable acknowledgment.
type Result struct {
	// Process names the arrival process that generated the schedule.
	Process string
	// Scheduled is the number of arrivals in the schedule; Sent is how
	// many were actually written to a connection (lower only if a
	// connection died); Acked is how many were acknowledged durable
	// before the drain deadline; Errors counts send failures, error
	// responses and drain-deadline abandonments.
	Scheduled, Sent, Acked, Errors uint64
	// Offered is Scheduled over the scheduled duration; Served is Acked
	// over the full wall time including drain. Their ratio is the
	// served/offered shortfall — 1.0 means the server kept up.
	Offered, Served float64
	// Elapsed is the full wall time (schedule plus drain used).
	Elapsed time.Duration
	// Drain is how much of DrainTimeout was spent waiting for
	// stragglers after the last scheduled arrival.
	Drain time.Duration
	// Latency is the intended-arrival-to-durable-ack histogram (ns).
	Latency obs.HistSnapshot
	// SendSkew is the intended-vs-actual send lag histogram (ns): how
	// far behind its own schedule the generator fired each request.
	SendSkew obs.HistSnapshot
	// Headline quantiles of Latency and SendSkew.
	P50, P99, P999   time.Duration
	SkewP50, SkewP99 time.Duration
	// MaxTid is the largest acknowledged transaction ID (0 if none) —
	// the frontier a recovered image must cover.
	MaxTid uint64
}

// Shortfall returns 1 - served/offered, clamped at 0.
func (r Result) Shortfall() float64 {
	if r.Offered <= 0 {
		return 0
	}
	s := 1 - r.Served/r.Offered
	if s < 0 {
		return 0
	}
	return s
}

// Run executes one open-loop run against a dudesrv. The schedule is
// generated up front from Opts.Proc, dealt round-robin across Conns
// pipelined connections, and each worker fires its arrivals at their
// intended absolute times — never waiting for completions. Run returns
// the first connection error (e.g. a server crash mid-run) alongside
// the partial result, so crash drills keep the statistics gathered
// before the plug was pulled.
func Run(o Opts) (Result, error) {
	o = o.withDefaults()
	if o.Proc == nil {
		return Result{}, fmt.Errorf("loadgen: Opts.Proc is required")
	}
	schedule := o.Proc.Arrivals(o.Duration, rand.New(rand.NewSource(o.Seed)))
	res := Result{
		Process:   o.Proc.Name(),
		Scheduled: uint64(len(schedule)),
		Offered:   float64(len(schedule)) / o.Duration.Seconds(),
	}
	if len(schedule) == 0 {
		return res, fmt.Errorf("loadgen: %s schedule is empty over %v", o.Proc.Name(), o.Duration)
	}

	var (
		latHist   obs.Histogram
		skewHist  obs.Histogram
		sent      atomic.Uint64
		acked     atomic.Uint64
		errs      atomic.Uint64
		maxTid    atomic.Uint64
		inflight  sync.WaitGroup
		abandoned atomic.Bool
		errMu     sync.Mutex
		firstErr  error
	)
	recordErr := func(err error) {
		errs.Add(1)
		if err == nil {
			return
		}
		// Stragglers we abandon at the drain deadline are an expected
		// overload outcome, counted in Errors but not a run failure —
		// otherwise every past-the-knee sweep point would error out.
		if abandoned.Load() && errors.Is(err, server.ErrClientClosed) {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	clients := make([]*server.Client, o.Conns)
	for w := range clients {
		c, err := server.Dial(o.Addr)
		if err != nil {
			for _, prev := range clients[:w] {
				prev.Close()
			}
			return res, fmt.Errorf("loadgen: %w", err)
		}
		clients[w] = c
	}

	start := time.Now()
	var workers sync.WaitGroup
	for w := 0; w < o.Conns; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			c := clients[w]
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			val := make([]byte, o.ValueBytes)
			var seq uint64
			// Worker w owns schedule indices w, w+Conns, w+2*Conns, ...
			for i := w; i < len(schedule); i += o.Conns {
				intended := start.Add(schedule[i])
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				// Late sends are fired immediately (open loop never
				// thins the schedule); the lag is recorded as skew.
				skewHist.ObserveSince(0, int64(time.Since(intended)))

				seq++
				gen := seq
				var key uint64
				if o.UniqueKeys {
					key = uint64(w)<<32 | seq
				} else {
					key = rng.Uint64() % o.Keys
				}
				rng.Read(val)
				if o.ValueBytes >= 8 {
					for b := 0; b < 8; b++ {
						val[b] = byte(gen >> (8 * b))
					}
				}
				inflight.Add(1)
				err := c.GoFn([]wire.Op{{Kind: wire.OpPut, Key: key, Val: val}}, false,
					func(resp *wire.Response, err error) {
						defer inflight.Done()
						if err != nil {
							recordErr(err)
							return
						}
						latHist.ObserveSince(0, int64(time.Since(intended)))
						acked.Add(1)
						for {
							cur := maxTid.Load()
							if resp.Tid <= cur || maxTid.CompareAndSwap(cur, resp.Tid) {
								break
							}
						}
						if o.OnAck != nil {
							o.OnAck(w, key, gen, resp.Tid)
						}
					})
				if err != nil {
					inflight.Done()
					recordErr(err)
					return // connection is dead; its remaining arrivals are lost
				}
				sent.Add(1)
			}
		}(w)
	}
	workers.Wait()
	scheduleEnd := time.Now()

	// Drain: wait for outstanding acks, but only up to the deadline —
	// an overloaded server's stragglers count against it, not forever.
	done := make(chan struct{})
	go func() { inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(o.DrainTimeout):
		abandoned.Store(true)
	}
	res.Drain = time.Since(scheduleEnd)
	for _, c := range clients {
		c.Close() // fails any straggler callbacks, releasing inflight
	}
	<-done

	res.Elapsed = time.Since(start)
	res.Sent = sent.Load()
	res.Acked = acked.Load()
	res.Errors = errs.Load()
	res.MaxTid = maxTid.Load()
	res.Served = float64(res.Acked) / res.Elapsed.Seconds()
	res.Latency = latHist.Snapshot()
	res.SendSkew = skewHist.Snapshot()
	res.P50 = time.Duration(res.Latency.Quantile(0.5))
	res.P99 = time.Duration(res.Latency.Quantile(0.99))
	res.P999 = time.Duration(res.Latency.Quantile(0.999))
	res.SkewP50 = time.Duration(res.SendSkew.Quantile(0.5))
	res.SkewP99 = time.Duration(res.SendSkew.Quantile(0.99))

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return res, fmt.Errorf("loadgen: %w", err)
	}
	return res, nil
}
