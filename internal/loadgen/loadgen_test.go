package loadgen

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"dudetm"
	"dudetm/internal/server"
)

func startServer(t *testing.T, opts dudetm.Options) (*server.Server, *dudetm.Pool, string) {
	t.Helper()
	if opts.DataSize == 0 {
		opts.DataSize = 16 << 20
	}
	pool, err := dudetm.Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(pool, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, pool, ln.Addr().String()
}

// TestOpenLoopRun drives a moderate constant-rate schedule at an
// in-process server and checks the accounting invariants: every
// scheduled arrival is sent and acked, the histograms hold exactly the
// acked population, and quantiles come out finite and ordered.
func TestOpenLoopRun(t *testing.T) {
	opts := dudetm.Options{GroupSize: 16, Threads: 4, PersistThreads: 2, ReproThreads: 2}
	srv, pool, addr := startServer(t, opts)
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)

	res, err := Run(Opts{
		Addr:     addr,
		Proc:     Constant{Rate: 2000},
		Duration: 500 * time.Millisecond,
		Conns:    4,
		Keys:     1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled != 1000 {
		t.Fatalf("Scheduled = %d, want 1000", res.Scheduled)
	}
	if res.Sent != res.Scheduled || res.Acked != res.Scheduled || res.Errors != 0 {
		t.Fatalf("sent=%d acked=%d errors=%d, want all %d sent+acked",
			res.Sent, res.Acked, res.Errors, res.Scheduled)
	}
	if res.Latency.Count != res.Acked {
		t.Fatalf("latency count %d != acked %d", res.Latency.Count, res.Acked)
	}
	if res.SendSkew.Count != res.Sent {
		t.Fatalf("skew count %d != sent %d", res.SendSkew.Count, res.Sent)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", res.P50, res.P99, res.P999)
	}
	if res.Offered < 1900 || res.Offered > 2100 {
		t.Fatalf("Offered = %.0f, want ~2000", res.Offered)
	}
	if res.Served <= 0 {
		t.Fatalf("Served = %v", res.Served)
	}
	if s := res.Shortfall(); s > 0.5 {
		t.Fatalf("shortfall %.2f at trivial load", s)
	}
	if res.MaxTid == 0 {
		t.Fatal("MaxTid not recorded")
	}
	if res.Process != "constant" {
		t.Fatalf("Process = %q", res.Process)
	}
}

// TestOpenLoopCrashAudit is the crash-safety drill: pull the plug on
// the server mid-open-loop-run, then prove the recovered image plus
// AuditRecovery cover every acknowledgment the generator observed.
// UniqueKeys mode writes each key exactly once, so presence of the
// acked generation under each acked key is an exact durability check.
func TestOpenLoopCrashAudit(t *testing.T) {
	opts := dudetm.Options{DataSize: 32 << 20, GroupSize: 16, Threads: 4, PersistThreads: 2, ReproThreads: 4}
	srv, _, addr := startServer(t, opts)

	var (
		mu       sync.Mutex
		ackedGen = make(map[uint64]uint64)
		maxTid   uint64
	)
	resCh := make(chan Result, 1)
	go func() {
		res, _ := Run(Opts{ // the error is the crash itself — expected
			Addr:         addr,
			Proc:         Poisson{Rate: 4000},
			Duration:     10 * time.Second, // the crash ends the run early
			Conns:        4,
			UniqueKeys:   true,
			DrainTimeout: 200 * time.Millisecond,
			OnAck: func(conn int, key, gen, tid uint64) {
				mu.Lock()
				ackedGen[key] = gen
				if tid > maxTid {
					maxTid = tid
				}
				mu.Unlock()
			},
		})
		resCh <- res
	}()

	time.Sleep(300 * time.Millisecond)
	img := srv.Kill() // power failure: unpersisted state is gone
	res := <-resCh
	mu.Lock()
	acked, tid := len(ackedGen), maxTid
	mu.Unlock()
	if acked == 0 {
		t.Fatal("no acks observed before the crash; drill proves nothing")
	}
	if res.Acked != uint64(acked) {
		t.Fatalf("result Acked=%d, OnAck saw %d", res.Acked, acked)
	}
	if res.MaxTid != tid {
		t.Fatalf("result MaxTid=%d, OnAck saw %d", res.MaxTid, tid)
	}

	// Remount with recovery; the audit must cover the acked frontier.
	pool2, err := dudetm.OpenSnapshot(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if err := pool2.AuditRecovery(tid); err != nil {
		t.Fatalf("durability audit: %v", err)
	}
	srv2, err := server.New(pool2, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln2)
	defer srv2.Shutdown(5 * time.Second)
	c, err := server.Dial(ln2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for key, gen := range ackedGen {
		v, found, err := c.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("acked key %d missing after recovery", key)
		}
		if got := binary.LittleEndian.Uint64(v[:8]); got != gen {
			t.Fatalf("acked key %d recovered generation %d, want %d", key, got, gen)
		}
	}
	t.Logf("crash drill: %d acked writes, maxTid %d, all present after recovery", acked, tid)
}

// TestRunRequiresProcess: a missing process is a loud error, not an
// empty run that looks like a perfect score.
func TestRunRequiresProcess(t *testing.T) {
	if _, err := Run(Opts{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("Run accepted nil Proc")
	}
	if _, err := Run(Opts{Addr: "127.0.0.1:1", Proc: Constant{Rate: 0}}); err == nil {
		t.Fatal("Run accepted an empty schedule")
	}
}
