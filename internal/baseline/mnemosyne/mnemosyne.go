// Package mnemosyne implements a Mnemosyne-style durable transactional
// memory baseline (Volos et al., ASPLOS 2011), as evaluated against
// DudeTM in §5.2.2 of the paper.
//
// Design points that define the baseline's cost profile:
//
//   - Redo logging with write-back access: transactional writes are
//     buffered in a per-transaction write set; every transactional read
//     must first look the address up in that write set — the address-
//     mapping overhead the paper attributes to redo logging.
//   - Transactions execute directly on (simulated) persistent memory;
//     there is no shadow DRAM.
//   - Commit is synchronous: the redo log is flushed and fenced before
//     the transaction returns, then the writes are applied in place,
//     flushed, and the log is truncated. Perform and Persist are not
//     decoupled, so every commit stalls for the NVM write latency.
//
// Concurrency control is the same time-based orec scheme as
// internal/stm, so throughput differences against DudeTM come from the
// durability design, not the TM algorithm.
package mnemosyne

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

// ErrAborted is returned by Run when the user function called Abort.
var ErrAborted = errors.New("mnemosyne: transaction aborted by user")

// Config describes a Mnemosyne-style system.
type Config struct {
	// DataSize is the persistent data region size in bytes.
	DataSize uint64
	// Threads is the number of concurrent Run callers.
	Threads int
	// LogBufBytes is the per-thread persistent redo-log size.
	LogBufBytes uint64
	// OrecCount is the ownership-record table size (power of two).
	OrecCount uint64
	// Pmem carries the NVM timing model; Size is computed.
	Pmem pmem.Config
}

// System is a mounted Mnemosyne-style pool.
type System struct {
	dev     *pmem.Device
	dataOff uint64
	cfg     Config

	orecs []atomic.Uint64
	mask  uint64
	clock atomic.Uint64

	writers []*redolog.Writer
	txs     []mTx

	commits atomic.Uint64
	aborts  atomic.Uint64
}

const (
	logMetaSlot = 64
	maxBackoff  = 1 << 14
)

type conflict struct{}
type userAbort struct{}

type readEntry struct {
	orec    *atomic.Uint64
	version uint64
}

type lockEntry struct {
	orec        *atomic.Uint64
	prevVersion uint64
}

type mTx struct {
	e     *System
	slot  int
	rv    uint64
	reads []readEntry
	locks []lockEntry
	// wset is the redo-log write buffer: the address mapping every
	// tmRead must consult.
	wset   map[uint64]uint64
	worder []redolog.Entry
	_pad   [4]uint64
}

// Create initializes a fresh pool and its simulated device.
func Create(cfg Config) (*System, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.LogBufBytes == 0 {
		cfg.LogBufBytes = 8 << 20
	}
	if cfg.OrecCount == 0 {
		cfg.OrecCount = 1 << 20
	}
	if cfg.OrecCount&(cfg.OrecCount-1) != 0 {
		return nil, fmt.Errorf("mnemosyne: OrecCount must be a power of two")
	}
	if cfg.DataSize == 0 {
		cfg.DataSize = 64 << 20
	}
	n := uint64(cfg.Threads)
	metaOff := uint64(0)
	logsOff := metaOff + n*logMetaSlot
	dataOff := (logsOff + n*cfg.LogBufBytes + 4095) &^ 4095
	pc := cfg.Pmem
	pc.Size = dataOff + cfg.DataSize
	dev := pmem.New(pc)

	s := &System{
		dev:     dev,
		dataOff: dataOff,
		cfg:     cfg,
		orecs:   make([]atomic.Uint64, cfg.OrecCount),
		mask:    cfg.OrecCount - 1,
		writers: make([]*redolog.Writer, cfg.Threads),
		txs:     make([]mTx, cfg.Threads),
	}
	for i := 0; i < cfg.Threads; i++ {
		s.writers[i] = redolog.NewWriter(dev, metaOff+uint64(i)*logMetaSlot,
			logsOff+uint64(i)*cfg.LogBufBytes, cfg.LogBufBytes, false)
		s.txs[i] = mTx{
			e:     s,
			slot:  i,
			reads: make([]readEntry, 0, 256),
			locks: make([]lockEntry, 0, 64),
			wset:  make(map[uint64]uint64, 64),
		}
	}
	return s, nil
}

// Device returns the simulated NVM device.
func (s *System) Device() *pmem.Device { return s.dev }

// Clock returns the largest transaction ID assigned so far.
func (s *System) Clock() uint64 { return s.clock.Load() }

// Stats returns commit/abort counters.
func (s *System) Stats() (commits, aborts uint64) {
	return s.commits.Load(), s.aborts.Load()
}

func (s *System) orecFor(addr uint64) *atomic.Uint64 {
	return &s.orecs[(addr>>3)&s.mask]
}

// Tx is the transaction handle (satisfies memdb.Ctx).
type Tx = mTx

// Run executes fn as a durable transaction; when it returns, the
// transaction is durable (synchronous persist).
func (s *System) Run(slot int, fn func(tx *Tx) error) (uint64, error) {
	tx := &s.txs[slot]
	backoff := 1
	for {
		tx.begin()
		tid, err, retry := tx.attempt(fn)
		if !retry {
			if err == nil {
				s.commits.Add(1)
			}
			return tid, err
		}
		s.aborts.Add(1)
		spin := rand.Intn(backoff)
		for i := 0; i < spin; i++ {
			runtime.Gosched()
		}
		if backoff < maxBackoff {
			backoff <<= 1
		}
	}
}

func (t *mTx) begin() {
	t.rv = t.e.clock.Load()
	t.reads = t.reads[:0]
	t.locks = t.locks[:0]
	t.resetWriteSet()
}

// resetWriteSet empties the write set, reallocating the map if a large
// transaction inflated it (clear() on a huge map sweeps every bucket).
func (t *mTx) resetWriteSet() {
	if len(t.wset) > 256 {
		t.wset = make(map[uint64]uint64, 64)
	} else {
		clear(t.wset)
	}
	t.worder = t.worder[:0]
}

func (t *mTx) attempt(fn func(*Tx) error) (tid uint64, err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflict:
				tid, err, retry = 0, nil, true
			case userAbort:
				tid, err, retry = 0, ErrAborted, false
			default:
				t.rollback()
				panic(r)
			}
		}
	}()
	if err := fn(t); err != nil {
		t.rollback()
		return 0, err, false
	}
	return t.commit()
}

// Load implements the transactional read: write-set lookup first (the
// redo-logging address mapping), then an orec-validated read of
// persistent memory.
func (t *mTx) Load(addr uint64) uint64 {
	if len(t.wset) > 0 {
		if v, ok := t.wset[addr]; ok {
			return v
		}
	}
	o := t.e.orecFor(addr)
	for {
		v1 := o.Load()
		if v1&1 == 1 {
			if int(v1>>1) == t.slot {
				// Locked by us but not in the write set: another word
				// covered by the same orec. Fall through to memory.
				return t.e.dev.Load8(t.e.dataOff + addr)
			}
			t.conflictAbort()
		}
		val := t.e.dev.Load8(t.e.dataOff + addr)
		if o.Load() != v1 {
			continue
		}
		ver := v1 >> 1
		if ver > t.rv {
			// Extend the snapshot, then re-sample: the value read
			// above predates the extension (see stm.(*sTx).Load).
			t.extend()
			continue
		}
		t.reads = append(t.reads, readEntry{orec: o, version: ver})
		return val
	}
}

// Store implements the transactional write: acquire the orec and buffer
// the value in the write set (no in-place update until commit).
func (t *mTx) Store(addr, val uint64) {
	o := t.e.orecFor(addr)
	for {
		v := o.Load()
		if v&1 == 1 {
			if int(v>>1) != t.slot {
				t.conflictAbort()
			}
			break
		}
		if v>>1 > t.rv {
			t.extend()
			continue
		}
		if o.CompareAndSwap(v, uint64(t.slot)<<1|1) {
			t.locks = append(t.locks, lockEntry{orec: o, prevVersion: v >> 1})
			break
		}
	}
	t.wset[addr] = val
	t.worder = append(t.worder, redolog.Entry{Addr: addr, Val: val})
}

// Abort rolls back and makes Run return ErrAborted.
func (t *mTx) Abort() {
	t.rollback()
	panic(userAbort{})
}

func (t *mTx) conflictAbort() {
	t.rollback()
	panic(conflict{})
}

// rollback releases orecs; nothing was written in place, so there is no
// data to restore.
func (t *mTx) rollback() {
	for i := len(t.locks) - 1; i >= 0; i-- {
		l := t.locks[i]
		l.orec.Store(l.prevVersion << 1)
	}
	t.locks = t.locks[:0]
	clear(t.wset)
	t.worder = t.worder[:0]
}

func (t *mTx) extend() {
	now := t.e.clock.Load()
	if !t.validate() {
		t.conflictAbort()
	}
	t.rv = now
}

func (t *mTx) validate() bool {
	for i := range t.reads {
		r := t.reads[i]
		v := r.orec.Load()
		if v&1 == 1 {
			if int(v>>1) != t.slot {
				return false
			}
			ok := false
			for j := range t.locks {
				if t.locks[j].orec == r.orec {
					ok = t.locks[j].prevVersion == r.version
					break
				}
			}
			if !ok {
				return false
			}
			continue
		}
		if v>>1 != r.version {
			return false
		}
	}
	return true
}

// commit persists the redo log synchronously (one fence), applies the
// writes in place, flushes them (second fence), truncates the log, and
// releases the orecs. The transaction is durable when commit returns.
func (t *mTx) commit() (uint64, error, bool) {
	if len(t.locks) == 0 {
		return t.rv, nil, false
	}
	ts := t.e.clock.Add(1)
	if ts > t.rv+1 && !t.validate() {
		t.rollback()
		return 0, nil, true
	}

	// Persist the redo log: the synchronous stall on the critical path.
	w := t.e.writers[t.slot]
	g := &redolog.Group{MinTid: ts, MaxTid: ts, Entries: t.worder}
	w.AppendGroup(g)

	// Apply in place and write back.
	b := t.e.dev.NewBatch()
	for _, e := range t.worder {
		t.e.dev.Store8(t.e.dataOff+e.Addr, e.Val)
	}
	for _, e := range t.worder {
		b.Flush(t.e.dataOff+e.Addr, 8)
	}
	b.Fence()

	// Truncate (recycle) the log now that the data is durable.
	w.Recycle(g.EndPos, g.Seq+1, ts)

	rel := ts << 1
	for i := range t.locks {
		t.locks[i].orec.Store(rel)
	}
	t.locks = t.locks[:0]
	t.resetWriteSet()
	return ts, nil, false
}

// Recover mounts a crashed pool: live redo-log records are replayed in
// transaction-ID order (a missing ID means that transaction persisted no
// log and therefore wrote nothing in place; later independent
// transactions are still valid).
func Recover(dev *pmem.Device, cfg Config) (*System, error) {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.LogBufBytes == 0 {
		cfg.LogBufBytes = 8 << 20
	}
	n := uint64(cfg.Threads)
	logsOff := n * logMetaSlot
	dataOff := (logsOff + n*cfg.LogBufBytes + 4095) &^ 4095

	var groups []redolog.Group
	results := make([]redolog.ScanResult, cfg.Threads)
	var maxTid uint64
	for i := 0; i < cfg.Threads; i++ {
		res, err := redolog.Scan(dev, uint64(i)*logMetaSlot,
			logsOff+uint64(i)*cfg.LogBufBytes, cfg.LogBufBytes)
		if err != nil {
			return nil, err
		}
		results[i] = res
		groups = append(groups, res.Groups...)
	}
	for _, g := range groups {
		if g.MaxTid > maxTid {
			maxTid = g.MaxTid
		}
	}
	b := dev.NewBatch()
	// Replay in tid order.
	for tid := uint64(1); tid <= maxTid; tid++ {
		for _, g := range groups {
			if g.MinTid != tid {
				continue
			}
			for _, e := range g.Entries {
				dev.Store8(dataOff+e.Addr, e.Val)
			}
			for _, e := range g.Entries {
				b.Flush(dataOff+e.Addr, 8)
			}
		}
	}
	b.Fence()

	s := &System{dev: dev, dataOff: dataOff, cfg: cfg}
	if cfg.OrecCount == 0 {
		cfg.OrecCount = 1 << 20
	}
	s.cfg = cfg
	s.orecs = make([]atomic.Uint64, cfg.OrecCount)
	s.mask = cfg.OrecCount - 1
	s.clock.Store(maxTid)
	s.writers = make([]*redolog.Writer, cfg.Threads)
	s.txs = make([]mTx, cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		s.writers[i] = redolog.Resume(dev, uint64(i)*logMetaSlot,
			logsOff+uint64(i)*cfg.LogBufBytes, cfg.LogBufBytes, false, results[i], maxTid)
		s.txs[i] = mTx{
			e:     s,
			slot:  i,
			reads: make([]readEntry, 0, 256),
			locks: make([]lockEntry, 0, 64),
			wset:  make(map[uint64]uint64, 64),
		}
	}
	return s, nil
}
