package mnemosyne

import (
	"errors"
	"sync"
	"testing"

	"dudetm/internal/pmem"
	"dudetm/internal/redolog"
)

func testConfig() Config {
	return Config{
		DataSize:    1 << 20,
		Threads:     4,
		LogBufBytes: 256 << 10,
		OrecCount:   1 << 12,
	}
}

func TestBasicReadWrite(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tid, err := s.Run(0, func(tx *Tx) error {
		tx.Store(0, 41)
		tx.Store(8, tx.Load(0)+1) // read own write through the mapping
		return nil
	})
	if err != nil || tid == 0 {
		t.Fatalf("tid=%d err=%v", tid, err)
	}
	s.Run(0, func(tx *Tx) error {
		if tx.Load(0) != 41 || tx.Load(8) != 42 {
			t.Errorf("got %d,%d", tx.Load(0), tx.Load(8))
		}
		return nil
	})
}

func TestDurableAtReturn(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, func(tx *Tx) error { tx.Store(16, 7); return nil })
	// Synchronous durability: a crash right after Run keeps the write.
	img := s.Device().PersistedImage()
	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	s2, err := Recover(dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(0, func(tx *Tx) error {
		if v := tx.Load(16); v != 7 {
			t.Errorf("durable write lost: %d", v)
		}
		return nil
	})
}

func TestAbortRollsBack(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, func(tx *Tx) error { tx.Store(0, 1); return nil })
	_, err := s.Run(0, func(tx *Tx) error {
		tx.Store(0, 99)
		tx.Abort()
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	s.Run(0, func(tx *Tx) error {
		if v := tx.Load(0); v != 1 {
			t.Errorf("abort leaked: %d", v)
		}
		return nil
	})
}

func TestErrorRollsBack(t *testing.T) {
	s, _ := Create(testConfig())
	boom := errors.New("boom")
	if _, err := s.Run(0, func(tx *Tx) error {
		tx.Store(0, 5)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	s.Run(0, func(tx *Tx) error {
		if v := tx.Load(0); v != 0 {
			t.Errorf("error leaked: %d", v)
		}
		return nil
	})
}

func TestConcurrentBank(t *testing.T) {
	s, _ := Create(testConfig())
	const accounts = 32
	const initial = 100
	s.Run(0, func(tx *Tx) error {
		for i := uint64(0); i < accounts; i++ {
			tx.Store(i*8, initial)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 3
			for i := 0; i < 200; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				src := (rng >> 30) % accounts
				dst := (rng >> 10) % accounts
				if src == dst {
					continue
				}
				s.Run(w, func(tx *Tx) error {
					b := tx.Load(src * 8)
					if b == 0 {
						tx.Abort()
					}
					tx.Store(src*8, b-1)
					tx.Store(dst*8, tx.Load(dst*8)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	s.Run(0, func(tx *Tx) error {
		var sum uint64
		for i := uint64(0); i < accounts; i++ {
			sum += tx.Load(i * 8)
		}
		if sum != accounts*initial {
			t.Errorf("sum = %d", sum)
		}
		return nil
	})
}

func TestRecoveryReplaysLiveLog(t *testing.T) {
	// Emulate a crash between log persist and in-place apply: the log
	// record is durable, the data is not. Recovery must redo it.
	s, _ := Create(testConfig())
	s.Run(0, func(tx *Tx) error { tx.Store(0, 1); return nil })
	// Manually append a committed-but-unapplied record.
	g := &redolog.Group{MinTid: s.Clock() + 1, MaxTid: s.Clock() + 1,
		Entries: []redolog.Entry{{Addr: 24, Val: 777}}}
	s.writers[1].AppendGroup(g)

	img := s.Device().PersistedImage()
	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	s2, err := Recover(dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(0, func(tx *Tx) error {
		if v := tx.Load(24); v != 777 {
			t.Errorf("redo not replayed: %d", v)
		}
		if v := tx.Load(0); v != 1 {
			t.Errorf("earlier data lost: %d", v)
		}
		return nil
	})
	if s2.Clock() < g.MaxTid {
		t.Errorf("clock not resumed: %d", s2.Clock())
	}
}

func TestReadOnlyNoClockAdvance(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, func(tx *Tx) error { tx.Store(0, 1); return nil })
	before := s.Clock()
	s.Run(0, func(tx *Tx) error { _ = tx.Load(0); return nil })
	if s.Clock() != before {
		t.Fatal("read-only advanced clock")
	}
}
