package nvml

import (
	"errors"
	"sync"
	"testing"

	"dudetm/internal/pmem"
)

func testConfig() Config {
	return Config{DataSize: 1 << 20, Threads: 4, UndoLogBytes: 64 << 10}
}

func clone(s *System) *pmem.Device {
	img := s.Device().PersistedImage()
	dev := pmem.New(pmem.Config{Size: s.Device().Size()})
	dev.Restore(img)
	return dev
}

func TestBasicReadWrite(t *testing.T) {
	s, err := Create(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run(0, []uint64{0}, func(tx *Tx) error {
		tx.Store(0, 41)
		tx.Store(8, tx.Load(0)+1) // in-place: read sees own write directly
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0, []uint64{0}, func(tx *Tx) error {
		if tx.Load(0) != 41 || tx.Load(8) != 42 {
			t.Errorf("got %d,%d", tx.Load(0), tx.Load(8))
		}
		return nil
	})
}

func TestDurableAtReturn(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, []uint64{0}, func(tx *Tx) error { tx.Store(16, 7); return nil })
	dev := clone(s)
	s2, err := Recover(dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(0, nil, func(tx *Tx) error {
		if v := tx.Load(16); v != 7 {
			t.Errorf("durable write lost: %d", v)
		}
		return nil
	})
}

func TestAbortRestoresOldValues(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, []uint64{0}, func(tx *Tx) error { tx.Store(0, 1); return nil })
	err := s.Run(0, []uint64{0}, func(tx *Tx) error {
		tx.Store(0, 99)
		tx.Abort()
		return nil
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	s.Run(0, []uint64{0}, func(tx *Tx) error {
		if v := tx.Load(0); v != 1 {
			t.Errorf("abort leaked: %d", v)
		}
		return nil
	})
}

func TestUncommittedNeverDurable(t *testing.T) {
	// In-place writes live in the simulated cache until commit flushes
	// them: a crash mid-transaction must lose them.
	s, _ := Create(testConfig())
	boom := errors.New("boom")
	s.Run(0, []uint64{0}, func(tx *Tx) error {
		tx.Store(0, 99)
		return boom
	})
	dev := clone(s)
	s2, _ := Recover(dev, testConfig())
	s2.Run(0, nil, func(tx *Tx) error {
		if v := tx.Load(0); v != 0 {
			t.Errorf("uncommitted write survived: %d", v)
		}
		return nil
	})
}

func TestRecoveryRollsBackSealedLog(t *testing.T) {
	// Crash after the undo log is sealed and some in-place updates are
	// flushed, but before truncation: recovery must restore old values.
	s, _ := Create(testConfig())
	s.Run(0, []uint64{0}, func(tx *Tx) error { tx.Store(0, 1); return nil })

	// Hand-craft the interrupted transaction.
	s.seal(&s.logs[2], []entry{{addr: 0, val: 1}, {addr: 8, val: 0}})
	s.dev.Store8(s.dataOff+0, 555)
	s.dev.Store8(s.dataOff+8, 556)
	s.dev.Persist(s.dataOff, 16) // partially flushed new data

	dev := clone(s)
	s2, err := Recover(dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(0, nil, func(tx *Tx) error {
		if v := tx.Load(0); v != 1 {
			t.Errorf("old value not restored: %d", v)
		}
		if v := tx.Load(8); v != 0 {
			t.Errorf("old value not restored: %d", v)
		}
		return nil
	})
	// The log must be truncated after recovery.
	if c := dev.Load8(s2.logs[2].base); c != 0 {
		t.Errorf("log not truncated: count=%d", c)
	}
}

func TestRecoveryIgnoresTornSeal(t *testing.T) {
	s, _ := Create(testConfig())
	s.Run(0, []uint64{0}, func(tx *Tx) error { tx.Store(0, 1); return nil })
	// A torn seal: count persisted but entries garbage (bad crc).
	lg := &s.logs[1]
	s.dev.Store8(lg.base, 2)
	s.dev.Persist(lg.base, 8)

	dev := clone(s)
	s2, err := Recover(dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s2.Run(0, nil, func(tx *Tx) error {
		if v := tx.Load(0); v != 1 {
			t.Errorf("data corrupted by torn seal: %d", v)
		}
		return nil
	})
}

func TestConcurrentBankWithStripedLocks(t *testing.T) {
	s, _ := Create(testConfig())
	const accounts = 32
	const initial = 100
	keys := make([]uint64, accounts)
	for i := range keys {
		keys[i] = uint64(i)
	}
	s.Run(0, keys, func(tx *Tx) error {
		for i := uint64(0); i < accounts; i++ {
			tx.Store(i*8, initial)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 3
			for i := 0; i < 200; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				src := (rng >> 30) % accounts
				dst := (rng >> 10) % accounts
				if src == dst {
					continue
				}
				s.Run(w, []uint64{src, dst}, func(tx *Tx) error {
					b := tx.Load(src * 8)
					if b == 0 {
						tx.Abort()
					}
					tx.Store(src*8, b-1)
					tx.Store(dst*8, tx.Load(dst*8)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	s.Run(0, keys, func(tx *Tx) error {
		var sum uint64
		for i := uint64(0); i < accounts; i++ {
			sum += tx.Load(i * 8)
		}
		if sum != accounts*initial {
			t.Errorf("sum = %d", sum)
		}
		return nil
	})
}

func TestEmptyTransactionCheap(t *testing.T) {
	s, _ := Create(testConfig())
	if err := s.Run(0, nil, func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if f := s.Device().Stats().Fences; f > 5 {
		// Creation truncates each log once (4 fences); an empty tx must
		// add none.
		t.Errorf("empty tx fenced: %d", f)
	}
}
