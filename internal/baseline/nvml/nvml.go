// Package nvml implements an NVML-style (Intel PMDK libpmemobj) durable
// transaction baseline, as evaluated against DudeTM in §5.2.2 of the
// paper.
//
// Design points that define the baseline's cost profile:
//
//   - Undo logging: old values are persisted before new data may reach
//     persistent memory. Logging all old values of a transaction at once
//     needs prior knowledge of the write set, so transactions are
//     static: the caller declares the lock set up front and all writes
//     happen under those locks.
//   - No isolation from the TM: concurrency control is the caller's
//     striped-lock declaration (the paper implements its NVML hash table
//     with fine-grained locks for the same reason).
//   - Three persist barriers per transaction on the critical path: seal
//     the undo log, flush the in-place data updates, truncate the log.
//   - Per-transaction metadata is heap-allocated, mirroring NVML's
//     dynamic allocation of transaction state that the paper identifies
//     as a first-order cost ("at most 1.14 million empty transactions
//     per second per thread").
package nvml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"dudetm/internal/pmem"
)

// ErrAborted is returned by Run when the user function called Abort.
var ErrAborted = errors.New("nvml: transaction aborted by user")

// Config describes an NVML-style pool.
type Config struct {
	// DataSize is the persistent data region size in bytes.
	DataSize uint64
	// Threads is the number of concurrent Run callers.
	Threads int
	// UndoLogBytes is the per-thread undo-log capacity (default 1 MiB).
	UndoLogBytes uint64
	// LockStripes is the size of the striped lock table (default 4096).
	LockStripes int
	// Pmem carries the NVM timing model; Size is computed.
	Pmem pmem.Config
}

// System is a mounted NVML-style pool.
type System struct {
	dev     *pmem.Device
	dataOff uint64
	cfg     Config

	locks []sync.Mutex
	logs  []undoLog
}

// undoLog is one thread's persistent undo-log region:
//
//	+0  count (number of entries; 0 = empty/truncated)
//	+8  crc of the entries
//	+16 entries: (addr, old value) pairs
type undoLog struct {
	base uint64
	size uint64
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Create initializes a fresh pool and its simulated device.
func Create(cfg Config) (*System, error) {
	applyDefaults(&cfg)
	lay := poolLayout(cfg)
	pc := cfg.Pmem
	pc.Size = lay.total
	dev := pmem.New(pc)
	s := build(dev, cfg, lay)
	// Truncate all logs (persist count=0).
	for i := range s.logs {
		s.truncate(&s.logs[i])
	}
	return s, nil
}

func applyDefaults(cfg *Config) {
	if cfg.Threads == 0 {
		cfg.Threads = 1
	}
	if cfg.UndoLogBytes == 0 {
		cfg.UndoLogBytes = 1 << 20
	}
	if cfg.LockStripes == 0 {
		cfg.LockStripes = 4096
	}
	if cfg.DataSize == 0 {
		cfg.DataSize = 64 << 20
	}
}

type lay struct {
	logsOff uint64
	dataOff uint64
	total   uint64
}

func poolLayout(cfg Config) lay {
	n := uint64(cfg.Threads)
	logsOff := uint64(0)
	dataOff := (logsOff + n*cfg.UndoLogBytes + 4095) &^ 4095
	return lay{logsOff: logsOff, dataOff: dataOff, total: dataOff + cfg.DataSize}
}

func build(dev *pmem.Device, cfg Config, l lay) *System {
	s := &System{
		dev:     dev,
		dataOff: l.dataOff,
		cfg:     cfg,
		locks:   make([]sync.Mutex, cfg.LockStripes),
		logs:    make([]undoLog, cfg.Threads),
	}
	for i := range s.logs {
		s.logs[i] = undoLog{
			base: l.logsOff + uint64(i)*cfg.UndoLogBytes,
			size: cfg.UndoLogBytes,
		}
	}
	return s
}

// Device returns the simulated NVM device.
func (s *System) Device() *pmem.Device { return s.dev }

// Tx is the transaction handle (satisfies memdb.Ctx). Its metadata is
// allocated per transaction, as in NVML.
type Tx struct {
	s     *System
	undo  []entry // old values, in first-write order
	seen  map[uint64]struct{}
	abort bool
}

type entry struct {
	addr, val uint64
}

// Load reads directly from persistent memory — undo logging permits
// in-place data, so reads need no remapping.
func (t *Tx) Load(addr uint64) uint64 {
	return t.s.dev.Load8(t.s.dataOff + addr)
}

// Store updates in place after capturing the old value for the undo log.
func (t *Tx) Store(addr, val uint64) {
	if _, ok := t.seen[addr]; !ok {
		t.seen[addr] = struct{}{}
		t.undo = append(t.undo, entry{addr, t.s.dev.Load8(t.s.dataOff + addr)})
	}
	//dudelint:ignore persistorder in-place update is made durable by Run's barrier 2 after the undo log seals
	t.s.dev.Store8(t.s.dataOff+addr, val)
}

// Abort rolls the transaction back; Run returns ErrAborted.
func (t *Tx) Abort() {
	t.abort = true
	panic(txAbort{})
}

type txAbort struct{}

// Run executes fn as a static durable transaction on behalf of thread
// slot. lockKeys declares the lock set — the caller's prior knowledge of
// the write set. When Run returns nil the transaction is durable.
func (s *System) Run(slot int, lockKeys []uint64, fn func(tx *Tx) error) (err error) {
	// Acquire declared stripes in sorted order (deadlock freedom).
	stripes := make([]int, 0, len(lockKeys))
	for _, k := range lockKeys {
		stripes = append(stripes, int((k*0x9E3779B97F4A7C15)>>40)%s.cfg.LockStripes)
	}
	sort.Ints(stripes)
	n := 0
	for i, st := range stripes {
		if i > 0 && st == stripes[i-1] {
			continue
		}
		stripes[n] = st
		n++
	}
	stripes = stripes[:n]
	for _, st := range stripes {
		s.locks[st].Lock()
	}
	defer func() {
		for i := len(stripes) - 1; i >= 0; i-- {
			s.locks[stripes[i]].Unlock()
		}
	}()

	// NVML allocates transaction metadata dynamically per transaction.
	tx := &Tx{s: s, undo: make([]entry, 0, 16), seen: make(map[uint64]struct{}, 16)}
	lg := &s.logs[slot]

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(txAbort); ok {
				s.rollback(tx)
				err = ErrAborted
				return
			}
			s.rollback(tx)
			panic(r)
		}
	}()
	if ferr := fn(tx); ferr != nil {
		s.rollback(tx)
		return ferr
	}

	if len(tx.undo) == 0 {
		return nil
	}

	// Persist barrier 1: seal the undo log before any in-place update
	// may reach persistent memory.
	s.seal(lg, tx.undo)

	// Persist barrier 2: write back the in-place updates.
	b := s.dev.NewBatch()
	for a := range tx.seen {
		b.Flush(s.dataOff+a, 8)
	}
	b.Fence()

	// Persist barrier 3: truncate the log — the commit point.
	s.truncate(lg)
	return nil
}

// seal writes count, crc and entries, then flushes and fences once.
func (s *System) seal(lg *undoLog, undo []entry) {
	need := 16 + uint64(len(undo))*16
	if need > lg.size {
		panic(fmt.Sprintf("nvml: undo log overflow: %d > %d", need, lg.size))
	}
	buf := make([]byte, need)
	binary.LittleEndian.PutUint64(buf[0:], uint64(len(undo)))
	for i, e := range undo {
		binary.LittleEndian.PutUint64(buf[16+i*16:], e.addr)
		binary.LittleEndian.PutUint64(buf[24+i*16:], e.val)
	}
	crc := crc32.Checksum(buf[16:], crcTable)
	binary.LittleEndian.PutUint64(buf[8:], uint64(crc))
	s.dev.Store(lg.base, buf)
	s.dev.Persist(lg.base, need)
}

// truncate marks the log empty (persisted).
func (s *System) truncate(lg *undoLog) {
	s.dev.Store8(lg.base, 0)
	s.dev.Persist(lg.base, 8)
}

// rollback restores old values in reverse order (in cache; nothing was
// flushed yet) and truncates the log if it was sealed.
func (s *System) rollback(tx *Tx) {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		//dudelint:ignore persistorder rollback restores cached old values; nothing was flushed, so the durable state is already the old values
		s.dev.Store8(s.dataOff+e.addr, e.val)
	}
}

// Recover mounts a crashed pool: any sealed, untruncated undo log marks
// an interrupted transaction whose old values must be restored.
func Recover(dev *pmem.Device, cfg Config) (*System, error) {
	applyDefaults(&cfg)
	l := poolLayout(cfg)
	if l.total > dev.Size() {
		return nil, fmt.Errorf("nvml: device too small for configuration")
	}
	s := build(dev, cfg, l)
	for i := range s.logs {
		lg := &s.logs[i]
		count := dev.Load8(lg.base)
		if count == 0 {
			continue
		}
		need := 16 + count*16
		if need > lg.size {
			// Torn count word with garbage: the log was never sealed.
			s.truncate(lg)
			continue
		}
		buf := make([]byte, need)
		dev.Load(lg.base, buf)
		crc := binary.LittleEndian.Uint64(buf[8:])
		if uint64(crc32.Checksum(buf[16:], crcTable)) != crc {
			// Seal never completed; in-place data never flushed.
			s.truncate(lg)
			continue
		}
		// Roll the interrupted transaction back.
		b := dev.NewBatch()
		for j := int(count) - 1; j >= 0; j-- {
			addr := binary.LittleEndian.Uint64(buf[16+j*16:])
			val := binary.LittleEndian.Uint64(buf[24+j*16:])
			dev.Store8(s.dataOff+addr, val)
			b.Flush(s.dataOff+addr, 8)
		}
		b.Fence()
		s.truncate(lg)
	}
	return s, nil
}

// ReadCtx returns a non-transactional, read-only view of the pool, used
// by lock planners to estimate probe spans before acquiring locks (the
// estimate is verified under the locks and the transaction retried with
// a wider span if it was stale).
func (s *System) ReadCtx() ReadCtx { return ReadCtx{s} }

// ReadCtx is a read-only memdb.Ctx; Store and Abort panic.
type ReadCtx struct{ s *System }

// Load reads a word directly from persistent memory.
func (c ReadCtx) Load(addr uint64) uint64 { return c.s.dev.Load8(c.s.dataOff + addr) }

// Store panics: the view is read-only.
func (c ReadCtx) Store(addr, val uint64) { panic("nvml: store outside transaction") }

// Abort panics: there is no transaction to abort.
func (c ReadCtx) Abort() { panic("nvml: abort outside transaction") }
