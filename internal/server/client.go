package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"dudetm/internal/wire"
)

// ErrClientClosed is returned by calls on a closed client (including
// in-flight calls whose connection died).
var ErrClientClosed = errors.New("server: client closed")

// Client is a pipelined wire-protocol client. All methods are safe for
// concurrent use; concurrent calls share one connection and are
// answered by request ID, so many transactions ride the same
// group-commit window on the server side.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]pendingCall
	nextID  uint64
	err     error // set once the connection dies
}

// pendingCall is one in-flight request: either a Future's response
// channel or a completion callback (GoFn), never both.
type pendingCall struct {
	ch chan wire.Response
	fn func(*wire.Response, error)
}

// Dial connects to a dudesrv server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		pending: make(map[uint64]pendingCall),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.nc.Close()
}

func (c *Client) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(payload)
		if err != nil {
			c.fail(fmt.Errorf("server: protocol error: %w", err))
			return
		}
		c.mu.Lock()
		call, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if !ok {
			continue
		}
		if call.fn != nil {
			// Callback path: invoked on the read loop at response
			// arrival, so completion timestamps taken inside fn are
			// arrival times, not reaper-scheduling times. fn must be
			// fast (counters, histogram observes).
			if resp.Status != wire.StatusOK {
				call.fn(nil, fmt.Errorf("server: %s", resp.Err))
			} else {
				call.fn(&resp, nil)
			}
			continue
		}
		call.ch <- resp
	}
}

// fail marks the client dead and unblocks every in-flight call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	victims := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.nc.Close()
	for _, call := range victims {
		if call.fn != nil {
			call.fn(nil, err)
			continue
		}
		close(call.ch) // receivers translate a closed channel into c.err
	}
}

// Future is an in-flight pipelined request.
type Future struct {
	c  *Client
	ch chan wire.Response
}

// Wait blocks for the response. A response with StatusErr becomes an
// error; a dead connection yields the connection error.
func (f *Future) Wait() (*wire.Response, error) {
	resp, ok := <-f.ch
	if !ok {
		f.c.mu.Lock()
		err := f.c.err
		f.c.mu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	if resp.Status != wire.StatusOK {
		return nil, fmt.Errorf("server: %s", resp.Err)
	}
	return &resp, nil
}

// Go sends one request (a transaction of ops) without waiting for the
// response — the heart of pipelining: many Go calls may be in flight
// and the server batches their durability waits.
func (c *Client) Go(ops []wire.Op, relaxed bool) (*Future, error) {
	ch := make(chan wire.Response, 1)
	if err := c.send(ops, relaxed, pendingCall{ch: ch}); err != nil {
		return nil, err
	}
	return &Future{c: c, ch: ch}, nil
}

// GoFn sends one request and invokes fn exactly once when the response
// arrives (on the connection's read goroutine) or when the connection
// dies (fn receives the connection error). A send failure is returned
// directly and fn is never called. Open-loop load generation uses this
// form: completion timestamps are taken at response arrival with no
// per-request goroutine, so tens of thousands of requests can be in
// flight. fn must not block.
func (c *Client) GoFn(ops []wire.Op, relaxed bool, fn func(*wire.Response, error)) error {
	if fn == nil {
		return errors.New("server: GoFn requires a callback")
	}
	return c.send(ops, relaxed, pendingCall{fn: fn})
}

// send registers the pending call and writes one request frame.
func (c *Client) send(ops []wire.Op, relaxed bool, call pendingCall) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = call
	c.mu.Unlock()

	payload, err := wire.AppendRequest(nil, &wire.Request{ID: id, Relaxed: relaxed, Ops: ops})
	if err == nil {
		c.wmu.Lock()
		err = wire.WriteFrame(c.bw, payload)
		if err == nil {
			err = c.bw.Flush()
		}
		c.wmu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		_, present := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if !present && call.fn != nil {
			// fail() raced the write error and already delivered the
			// connection error to the callback; reporting the send
			// failure too would double-count the request.
			return nil
		}
		return err
	}
	return nil
}

// Do sends one request and waits for its response.
func (c *Client) Do(ops []wire.Op, relaxed bool) (*wire.Response, error) {
	f, err := c.Go(ops, relaxed)
	if err != nil {
		return nil, err
	}
	return f.Wait()
}

// Get fetches the value under key.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	resp, err := c.Do([]wire.Op{{Kind: wire.OpGet, Key: key}}, false)
	if err != nil {
		return nil, false, err
	}
	return resp.Results[0].Val, resp.Results[0].Found, nil
}

// Put durably stores val under key; it returns once the server has
// acknowledged the write as durable.
func (c *Client) Put(key uint64, val []byte) error {
	_, err := c.Do([]wire.Op{{Kind: wire.OpPut, Key: key, Val: val}}, false)
	return err
}

// PutRelaxed stores val under key with a fast acknowledgment: the
// server replies after Perform, and the response's Durable flag reports
// whether the durable frontier had already passed the write.
func (c *Client) PutRelaxed(key uint64, val []byte) (durable bool, err error) {
	resp, err := c.Do([]wire.Op{{Kind: wire.OpPut, Key: key, Val: val}}, true)
	if err != nil {
		return false, err
	}
	return resp.Durable, nil
}

// Delete durably removes key, reporting whether it existed.
func (c *Client) Delete(key uint64) (bool, error) {
	resp, err := c.Do([]wire.Op{{Kind: wire.OpDelete, Key: key}}, false)
	if err != nil {
		return false, err
	}
	return resp.Results[0].Found, nil
}

// Scan returns up to limit pairs with from <= key < to (to == 0 means
// unbounded, limit == 0 means the protocol maximum).
func (c *Client) Scan(from, to uint64, limit uint32) ([]wire.KV, error) {
	resp, err := c.Do([]wire.Op{{Kind: wire.OpScan, Key: from, ScanTo: to, ScanLimit: limit}}, false)
	if err != nil {
		return nil, err
	}
	return resp.Results[0].Pairs, nil
}

// Txn executes ops as one atomic durable transaction.
func (c *Client) Txn(ops ...wire.Op) (*wire.Response, error) {
	return c.Do(ops, false)
}
