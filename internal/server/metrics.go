package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"dudetm"
	idudetm "dudetm/internal/dudetm"
	"dudetm/internal/obs"
	"dudetm/internal/repl"
)

// WriteMetrics renders the pool's pipeline state and the server's
// service counters in the Prometheus text exposition format (0.0.4).
// One scrape is a consistent-enough snapshot for operations: every
// value is read from a monotonic counter or a current gauge; no locks
// are taken on the transaction hot path.
func (s *Server) WriteMetrics(w io.Writer) error {
	st := s.pool.Stats()
	sv := s.Stats()
	p := obs.NewPromWriter(w)

	// Pipeline frontiers. clock >= durable >= reproduced in steady
	// state; the gaps are the Persist and Reproduce backlogs in
	// transaction IDs — the decoupling the paper buys throughput with.
	p.Gauge("dudetm_clock_tid", "Largest committed transaction ID (Perform frontier).", float64(st.Clock))
	p.Gauge("dudetm_durable_tid", "Durable frontier: every transaction at or below it survives a crash.", float64(st.Durable))
	p.Gauge("dudetm_reproduced_tid", "Largest transaction ID applied to persistent data.", float64(st.Reproduced))

	p.Counter("dudetm_commits_total", "Committed write transactions.", float64(st.Committed))
	p.Counter("dudetm_log_bytes_total", "Serialized bytes appended to persistent redo logs.", float64(st.LogBytes))
	p.Counter("dudetm_nvm_bytes_total", "Bytes written back to (simulated) NVM.", float64(st.Device.BytesFlushed))
	p.Counter("dudetm_device_fences_total", "Persist barriers issued to the device.", float64(st.Device.Fences))

	// Per-stage utilization, labeled like a real job system so one
	// dashboard query covers both background stages.
	stages := []struct {
		labels string
		ss     idudetm.StageStats
	}{
		{`stage="persist"`, st.Persist},
		{`stage="reproduce"`, st.Reproduce},
	}
	p.Header("dudetm_stage_busy_seconds_total", "counter", "Busy time per pipeline stage (summed across workers).")
	for _, r := range stages {
		p.Sample("dudetm_stage_busy_seconds_total", r.labels, float64(r.ss.BusyNanos)*1e-9)
	}
	p.Header("dudetm_stage_groups_total", "counter", "Groups processed per pipeline stage.")
	for _, r := range stages {
		p.Sample("dudetm_stage_groups_total", r.labels, float64(r.ss.Groups))
	}
	p.Header("dudetm_stage_fences_total", "counter", "Persist barriers issued per pipeline stage.")
	for _, r := range stages {
		p.Sample("dudetm_stage_fences_total", r.labels, float64(r.ss.Fences))
	}
	p.Header("dudetm_stage_workers", "gauge", "Configured worker count per pipeline stage.")
	for _, r := range stages {
		p.Sample("dudetm_stage_workers", r.labels, float64(r.ss.Workers))
	}
	p.Header("dudetm_stage_queue_depth", "gauge", "Current stage backlog in groups.")
	for _, r := range stages {
		p.Sample("dudetm_stage_queue_depth", r.labels, float64(r.ss.QueueDepth))
	}
	p.Header("dudetm_stage_utilization", "gauge", "Per-worker stage utilization in [0,1].")
	for _, r := range stages {
		p.Sample("dudetm_stage_utilization", r.labels, r.ss.Utilization)
	}
	p.Gauge("dudetm_persist_window_depth", "Reserved-but-unretired persist dispatch sequences.", float64(st.Persist.WindowDepth))

	// Replay-epoch coalescing (Reproduce stage). The counters exist (at
	// zero) while Reproduce keeps up — epochs only form under backlog —
	// so the scrape contract is stable across load levels.
	rp := st.Reproduce
	p.Counter("dudetm_repro_epochs_total", "Coalesced replay epochs (dense backlog runs replayed under one fence).", float64(rp.Epochs))
	p.Counter("dudetm_repro_epoch_entries_in_total", "Log entries entering last-writer-wins epoch coalescing.", float64(rp.CoalesceIn))
	p.Counter("dudetm_repro_epoch_entries_out_total", "Log entries surviving last-writer-wins epoch coalescing.", float64(rp.CoalesceOut))
	p.Counter("dudetm_repro_lines_flushed_total", "Distinct cache lines written back by Reproduce replay.", float64(rp.LinesFlushed))
	ratio := 1.0
	if rp.CoalesceOut > 0 {
		ratio = float64(rp.CoalesceIn) / float64(rp.CoalesceOut)
	}
	p.Gauge("dudetm_repro_epoch_coalesce_ratio", "Entries in over entries out of epoch coalescing (1 = no duplication).", ratio)

	// Lifecycle latency histograms (nanosecond observations rendered in
	// seconds) and their headline quantiles as ready-made gauges, so a
	// scraper without histogram_quantile still sees p50/p99/p999.
	ob := st.Obs
	p.Gauge("dudetm_trace_sample_every", "Lifecycle trace sampling period (0 = tracing off).", float64(ob.SampleEvery))
	p.Counter("dudetm_trace_sampled_total", "Transactions stamped by the lifecycle tracer.", float64(ob.SampledCommits))
	p.Histogram("dudetm_commit_durable_seconds", "Commit to durable-fence latency of sampled transactions.", ob.CommitDurable, 1e-9)
	p.Histogram("dudetm_commit_reproduced_seconds", "Commit to reproduce-apply latency of sampled transactions.", ob.CommitReproduced, 1e-9)
	p.Histogram("dudetm_fence_seconds", "Per-group log append + persist barrier duration.", ob.Fence, 1e-9)
	p.Histogram("dudetm_queue_dwell_seconds", "Per-group seal-to-pickup queue dwell.", ob.QueueDwell, 1e-9)
	p.Histogram("dudetm_group_txns", "Transactions per sealed persist group.", ob.GroupTxns, 1)
	p.Histogram("dudetm_group_entries", "Combined log entries per sealed persist group.", ob.GroupEntries, 1)
	p.Histogram("dudetm_repro_epoch_groups", "Groups merged per coalesced replay epoch.", ob.EpochGroups, 1)
	p.Histogram("dudetm_repro_epoch_entries", "Coalesced entries per replay epoch.", ob.EpochEntries, 1)

	quantiles := []struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}}
	p.Header("dudetm_commit_durable_latency_seconds", "gauge", "Commit to durable latency quantiles of sampled transactions.")
	for _, q := range quantiles {
		p.Sample("dudetm_commit_durable_latency_seconds", `quantile="`+q.label+`"`, float64(ob.CommitDurable.Quantile(q.q))*1e-9)
	}
	p.Header("dudetm_commit_reproduced_latency_seconds", "gauge", "Commit to reproduced latency quantiles of sampled transactions.")
	for _, q := range quantiles {
		p.Sample("dudetm_commit_reproduced_latency_seconds", `quantile="`+q.label+`"`, float64(ob.CommitReproduced.Quantile(q.q))*1e-9)
	}

	// Critical-path decomposition of sampled transactions: where the
	// commit→acked window goes, segment by segment. The segment set is
	// fixed (unreplicated nodes report zero repl segments), so the
	// scrape contract is stable across topologies.
	crit := ob.Crit
	p.Counter("dudetm_critpath_txns_total", "Sampled transactions decomposed into critical-path segments.", float64(crit.Txns))
	p.Counter("dudetm_critpath_incomplete_total", "Sampled transactions whose timeline was missing a required stamp.", float64(crit.Incomplete))
	p.Counter("dudetm_critpath_dropped_total", "Samples dropped because the critpath collector was behind.", float64(crit.Dropped))
	p.Histogram("dudetm_critpath_e2e_seconds", "Commit to quorum-acked latency of decomposed transactions.", crit.E2E, 1e-9)
	p.Header("dudetm_critpath_segment_seconds_total", "counter", "Critical-path time attributed per segment across decomposed transactions.")
	for seg := obs.CritSegment(0); seg < obs.NumCritSegments; seg++ {
		p.Sample("dudetm_critpath_segment_seconds_total", `segment="`+seg.String()+`"`, float64(crit.Segments[seg].Sum)*1e-9)
	}
	p.Header("dudetm_critpath_segment_share", "gauge", "Fraction of total critical-path time attributed per segment.")
	for seg := obs.CritSegment(0); seg < obs.NumCritSegments; seg++ {
		share := 0.0
		if crit.E2E.Sum > 0 {
			share = float64(crit.Segments[seg].Sum) / float64(crit.E2E.Sum)
		}
		p.Sample("dudetm_critpath_segment_share", `segment="`+seg.String()+`"`, share)
	}
	p.Header("dudetm_critpath_segment_p99_seconds", "gauge", "Per-transaction p99 of each critical-path segment.")
	for seg := obs.CritSegment(0); seg < obs.NumCritSegments; seg++ {
		p.Sample("dudetm_critpath_segment_p99_seconds", `segment="`+seg.String()+`"`, float64(crit.Segments[seg].Quantile(0.99))*1e-9)
	}

	p.Counter("dudetm_watchdog_stalls_total", "Pipeline stall episodes detected by the watchdog.", float64(st.Stalls))

	// Recovery observability. The gauges exist (at zero) on a fresh
	// pool so scrapers and `dudectl top -check` see a stable series set;
	// after a recovery mount they describe it.
	rec := st.Recovery
	var recovered float64
	if rec.Recovered {
		recovered = 1
	}
	p.Counter("dudetm_recovery_runs_total", "Recovery mounts performed by this process's pool (0 or 1).", recovered)
	p.Gauge("dudetm_recovery_scan_seconds", "Wall time of the recovery log-scan phase.", float64(rec.ScanNanos)*1e-9)
	p.Gauge("dudetm_recovery_replay_seconds", "Wall time of the recovery replay phase.", float64(rec.ReplayNanos)*1e-9)
	p.Gauge("dudetm_recovery_recycle_seconds", "Wall time of the recovery log-reset phase.", float64(rec.RecycleNanos)*1e-9)
	p.Gauge("dudetm_recovery_groups_replayed", "Redo-log groups replayed by recovery.", float64(rec.GroupsReplayed))
	p.Gauge("dudetm_recovery_entries_replayed", "Redo-log entries replayed by recovery.", float64(rec.EntriesReplayed))
	p.Gauge("dudetm_recovery_bytes_replayed", "Bytes written back to the data region by recovery replay.", float64(rec.BytesReplayed))

	// Replication. Like the recovery gauges, every series exists (at
	// zero or "healthy") on an unreplicated node so the scrape contract
	// is stable across R=0 and R>0 deployments.
	rs := s.pool.ReplStats()
	var enabled, healthy float64
	if rs.Enabled {
		enabled = 1
	}
	if !rs.Degraded {
		healthy = 1 // replication off counts as healthy: acks gate on local only
	}
	p.Gauge("dudetm_repl_peers", "Configured replication peers (0 = replication off).", float64(rs.Peers))
	p.Gauge("dudetm_repl_quorum", "Replica acks required before the quorum frontier advances.", float64(rs.Quorum))
	p.Gauge("dudetm_repl_enabled", "1 when this node ships its persist log to peers.", enabled)
	p.Gauge("dudetm_repl_quorum_state", "1 while the ack quorum is intact (or replication is off), 0 while degraded.", healthy)
	acked := s.pool.AckFrontier()
	// acked is read after the Stats snapshot; without replication the
	// two race, so clamp the lag at zero rather than report a negative.
	lag := float64(st.Durable) - float64(acked)
	if lag < 0 {
		lag = 0
	}
	p.Gauge("dudetm_repl_acked_tid", "Quorum-acked frontier: client acks never pass it.", float64(acked))
	p.Gauge("dudetm_repl_frontier_lag", "Local durable frontier minus the quorum-acked frontier, in transaction IDs.", lag)
	p.Counter("dudetm_repl_degraded_events_total", "Times the ack quorum was lost.", float64(rs.DegradedEvents))
	p.Counter("dudetm_repl_raw_bytes_total", "Shipped group payload bytes before compression.", float64(st.Persist.ReplRawBytes))
	p.Counter("dudetm_repl_wire_bytes_total", "Shipped group payload bytes after compression (on the wire).", float64(st.Persist.ReplWireBytes))

	// Transport detail comes from the attached sender; without one the
	// zero snapshot keeps the series present.
	var snd repl.SenderStats
	if s.replSnd != nil {
		snd = s.replSnd.Stats()
	}
	p.Counter("dudetm_repl_groups_shipped_total", "Sealed groups handed to the replication transport.", float64(snd.GroupsShipped))
	p.Gauge("dudetm_repl_peers_connected", "Peers with a live replication stream.", float64(snd.Connected))
	p.Counter("dudetm_repl_dead_peers_total", "Peers abandoned permanently (queue overflow or oversize group).", float64(snd.DeadPeers))
	p.Histogram("dudetm_repl_ack_seconds", "Ship-to-replica-ack latency per shipped group.", snd.AckLatency, 1e-9)
	p.Header("dudetm_repl_ack_latency_seconds", "gauge", "Ship-to-replica-ack latency quantiles.")
	for _, q := range quantiles {
		p.Sample("dudetm_repl_ack_latency_seconds", `quantile="`+q.label+`"`, float64(snd.AckLatency.Quantile(q.q))*1e-9)
	}

	// Per-region device traffic: which pool region (header, meta,
	// blackbox, log, data) the flush/fence/byte volume lands in.
	p.Header("dudetm_region_stored_bytes_total", "counter", "Bytes stored per pool region.")
	for _, r := range st.Regions {
		p.Sample("dudetm_region_stored_bytes_total", `region="`+r.Name+`"`, float64(r.BytesStored))
	}
	p.Header("dudetm_region_flushed_bytes_total", "counter", "Bytes written back per pool region.")
	for _, r := range st.Regions {
		p.Sample("dudetm_region_flushed_bytes_total", `region="`+r.Name+`"`, float64(r.BytesFlushed))
	}
	p.Header("dudetm_region_flushed_lines_total", "counter", "Cache lines written back per pool region.")
	for _, r := range st.Regions {
		p.Sample("dudetm_region_flushed_lines_total", `region="`+r.Name+`"`, float64(r.LinesFlushed))
	}
	p.Header("dudetm_region_fences_total", "counter", "Persist barriers attributed per pool region.")
	for _, r := range st.Regions {
		p.Sample("dudetm_region_fences_total", `region="`+r.Name+`"`, float64(r.Fences))
	}

	// Service counters.
	p.Counter("dudesrv_connections_total", "Connections accepted.", float64(sv.Conns))
	p.Counter("dudesrv_requests_total", "Requests executed.", float64(sv.Requests))
	p.Counter("dudesrv_acked_writes_total", "Write transactions acknowledged durable to clients.", float64(sv.AckedWrites))
	p.Counter("dudesrv_offered_requests_total", "Requests decoded off the wire (demand, counted before execution).", float64(sv.Offered))
	p.Counter("dudesrv_served_responses_total", "Responses written back to clients.", float64(sv.Served))
	p.Counter("dudesrv_notifier_wakeups_total", "Durable-frontier advances observed by the ack notifier.", float64(sv.Notifier.Wakeups))
	p.Counter("dudesrv_notifier_released_total", "Waiters released by the ack notifier.", float64(sv.Notifier.Released))
	p.Gauge("dudesrv_notifier_max_batch", "Most waiters released by a single frontier advance.", float64(sv.Notifier.MaxBatch))
	return p.Err()
}

// DebugHandler returns the server's observability endpoint: /metrics
// (Prometheus text), /debug/trace (lifecycle trace inspection),
// /debug/stall (last watchdog report) and the standard pprof profiles
// under /debug/pprof/. Serve it on a loopback or operations port — it
// is diagnostic surface, not client API.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			// Headers are gone; the truncated body is the best signal.
			fmt.Fprintf(w, "\n# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/stall", s.handleStall)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// handleTrace serves lifecycle trace records. ?tid=N reconstructs one
// sampled transaction's timeline (&format=chrome renders it as a
// Chrome trace-event / Perfetto JSON document); without it the most
// recent ?n= records (default 64) across all rings are dumped, oldest
// first. An unknown tid is a 404, not an empty 200 — scripts piping
// the output into Perfetto should fail loudly, and the body says why
// the tid has no records.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if tidStr := r.URL.Query().Get("tid"); tidStr != "" {
		tid, err := strconv.ParseUint(tidStr, 10, 64)
		if err != nil {
			http.Error(w, "trace: bad tid: "+err.Error(), http.StatusBadRequest)
			return
		}
		recs := s.pool.TraceOf(tid)
		if len(recs) == 0 {
			every := s.pool.Stats().Obs.SampleEvery
			if every == 0 {
				http.Error(w, fmt.Sprintf("tid %d not sampled; tracing is off (start with -trace-sample)", tid), http.StatusNotFound)
				return
			}
			http.Error(w, fmt.Sprintf("tid %d not sampled; sampling is 1-in-%d (or the records were evicted from the trace rings)", tid, every), http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			if err := obs.WriteChromeTrace(w, tid, recs); err != nil {
				fmt.Fprintf(w, "\n// write error: %v\n", err)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "tid %d lifecycle:\n", tid)
		writeTrace(w, recs)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	n := 64
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		v, err := strconv.Atoi(nStr)
		if err != nil {
			http.Error(w, "trace: bad n: "+err.Error(), http.StatusBadRequest)
			return
		}
		n = v
	}
	recs := s.pool.TraceTail(n)
	if len(recs) == 0 {
		fmt.Fprintln(w, "no trace records (is -trace-sample enabled?)")
		return
	}
	fmt.Fprintf(w, "last %d trace records:\n", len(recs))
	writeTrace(w, recs)
}

// writeTrace renders records with timestamps relative to the first, so
// a timeline reads as elapsed pipeline time.
func writeTrace(w io.Writer, recs []dudetm.TraceRecord) {
	base := recs[0].At
	for _, rec := range recs {
		fmt.Fprintf(w, "  +%-12v %-15s tids [%d,%d]",
			time.Duration(rec.At-base), rec.Kind, rec.MinTid, rec.MaxTid)
		if rec.Kind == obs.EvReplSent || rec.Kind == obs.EvReplicaFence {
			fmt.Fprintf(w, " peer %d", rec.Arg)
		}
		if rec.Dur > 0 {
			fmt.Fprintf(w, " dur %v", time.Duration(rec.Dur))
		}
		fmt.Fprintln(w)
	}
}

// handleStall serves the most recent watchdog stall report.
func (s *Server) handleStall(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rep := s.pool.LastStall()
	if rep == nil {
		fmt.Fprintln(w, "no stalls recorded")
		return
	}
	fmt.Fprintln(w, rep.String())
}
