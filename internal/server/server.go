package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dudetm"
	"dudetm/internal/repl"
	"dudetm/internal/wire"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// MaxConns caps concurrent connections (default 64). When the cap
	// is reached the server stops accepting — pending dialers queue in
	// the listen backlog (backpressure) instead of being reset.
	MaxConns int
	// MaxPipeline caps in-flight requests per connection (default 32);
	// beyond it the server stops reading the connection and TCP flow
	// control pushes back on the client.
	MaxPipeline int
	// IdleTimeout closes a connection with no complete request for this
	// long (default 2 minutes).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response flush (default 10 seconds).
	WriteTimeout time.Duration
	// ReadOnly rejects write requests. Replica-mode servers set it:
	// a replica's transaction ID stream is owned by the primary's
	// replicated log, so a locally committed write would collide with
	// the next ingested group.
	ReadOnly bool
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 64
	}
	if c.MaxPipeline == 0 {
		c.MaxPipeline = 32
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	return c
}

// ServerStats is a snapshot of service counters.
type ServerStats struct {
	// Conns is the number of connections accepted so far.
	Conns uint64
	// Requests is the number of requests executed.
	Requests uint64
	// AckedWrites is the number of write transactions acknowledged
	// durable to clients.
	AckedWrites uint64
	// Offered is the number of requests decoded off the wire — demand
	// as the server saw it, counted before execution or any queueing.
	Offered uint64
	// Served is the number of responses written back. Offered minus
	// Served is the in-server backlog; an open-loop generator's
	// offered/served rates come from deltas of these two counters.
	Served uint64
	// Notifier is the group-commit acknowledgment activity.
	Notifier NotifierStats
}

// Server serves the wire protocol over a dudetm.Pool.
type Server struct {
	pool    *dudetm.Pool
	store   *store
	cfg     Config
	notif   *notifier
	replSnd *repl.Sender // nil unless this node replicates outward

	// slots holds the pool's Update/View slot tokens; an executing
	// request borrows one for the duration of its transaction.
	slots chan int

	mu    sync.Mutex
	ln    net.Listener
	conns map[*conn]struct{}
	// connSem bounds concurrent connections; Serve acquires before
	// Accept, so overload manifests as accept backpressure.
	connSem chan struct{}

	draining atomic.Bool
	dead     atomic.Bool

	connWG sync.WaitGroup

	acceptedConns atomic.Uint64
	requests      atomic.Uint64
	ackedWrites   atomic.Uint64
	offered       atomic.Uint64
	served        atomic.Uint64
	// maxTid is the largest transaction ID handed out to any client;
	// graceful shutdown waits for the durable frontier to cover it.
	maxTid atomic.Uint64
}

// New builds a server over an already-mounted pool, formatting the
// keyspace if the pool is fresh. The caller keeps ownership of the
// pool: after Shutdown it may snapshot and close it.
func New(pool *dudetm.Pool, cfg Config) (*Server, error) {
	st, err := openStore(pool)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		pool:    pool,
		store:   st,
		cfg:     cfg,
		conns:   make(map[*conn]struct{}),
		connSem: make(chan struct{}, cfg.MaxConns),
		slots:   make(chan int, pool.Threads()),
	}
	for i := 0; i < pool.Threads(); i++ {
		s.slots <- i
	}
	updates, _ := pool.DurableUpdates()
	// Acks gate on the quorum-acked frontier, not the local durable
	// frontier: with replication enabled they differ, and a client ack
	// must mean "durable on a quorum".
	s.notif = newNotifier(updates, pool.AckFrontier(), dudetm.ErrCrashed)
	return s, nil
}

// SetReplication attaches the log-shipping sender so the metrics
// endpoint can report transport activity (connections, shipped bytes,
// ack latency) alongside the pool's quorum gate. Call before Serve.
func (s *Server) SetReplication(snd *repl.Sender) { s.replSnd = snd }

// Serve accepts connections on ln until Shutdown or Kill. It returns
// nil on orderly shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		s.connSem <- struct{}{}
		nc, err := ln.Accept()
		if err != nil {
			<-s.connSem
			if s.draining.Load() || s.dead.Load() {
				return nil
			}
			return err
		}
		s.acceptedConns.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		if s.draining.Load() || s.dead.Load() {
			s.mu.Unlock()
			nc.Close()
			<-s.connSem
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
			<-s.connSem
		}()
	}
}

// Addr returns the listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// errDraining rejects requests that race a graceful shutdown.
var errDraining = errors.New("server draining")

// execute runs one request as one transaction and returns the response
// plus, for write transactions, the commit ID the caller must see pass
// the durable frontier before acknowledging durability.
func (s *Server) execute(q *wire.Request) (wire.Response, uint64) {
	resp := wire.Response{ID: q.ID}
	if s.dead.Load() {
		resp.Status = wire.StatusErr
		resp.Err = "server crashed"
		return resp, 0
	}
	s.requests.Add(1)
	if s.cfg.ReadOnly && writes(q) {
		resp.Status = wire.StatusErr
		resp.Err = "replica is read-only"
		return resp, 0
	}
	slot := <-s.slots
	var results []wire.OpResult
	var tid uint64
	var err error
	if writes(q) {
		tid, err = s.pool.Update(slot, func(tx *dudetm.Tx) error {
			results, err = s.store.apply(tx, q)
			return err
		})
	} else {
		err = s.pool.View(slot, func(tx *dudetm.Tx) error {
			results, err = s.store.apply(tx, q)
			return err
		})
	}
	s.slots <- slot
	if err != nil {
		resp.Status = wire.StatusErr
		resp.Err = err.Error()
		return resp, 0
	}
	resp.Results = results
	resp.Tid = tid
	if tid != 0 {
		for {
			cur := s.maxTid.Load()
			if cur >= tid || s.maxTid.CompareAndSwap(cur, tid) {
				break
			}
		}
	}
	return resp, tid
}

// Shutdown drains the server gracefully: stop accepting, let every
// connection finish its in-flight requests, then wait for the durable
// frontier to cover the last handed-out transaction ID, so that a
// snapshot taken afterwards contains every acknowledged write. The
// timeout bounds the connection drain; connections still busy after it
// are closed forcibly.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s.draining.Swap(true) {
		return nil
	}
	s.closeListener()
	s.mu.Lock()
	for c := range s.conns {
		c.drain()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		s.closeConns()
		<-done
	}
	if tid := s.maxTid.Load(); tid != 0 {
		if err := s.pool.WaitDurable(tid); err != nil {
			return fmt.Errorf("server: draining durability: %w", err)
		}
	}
	return nil
}

// Kill simulates a power failure mid-service: connections are severed
// where they are, in-flight transactions finish Perform but anything
// the durable frontier has not passed is lost, and the pool's crash
// image is returned for remounting. Every write the server acknowledged
// as durable is, by construction, in the image.
func (s *Server) Kill() []byte {
	if s.dead.Swap(true) {
		panic("server: Kill on dead server")
	}
	s.closeListener()
	s.closeConns()
	s.connWG.Wait()
	return s.pool.Crash()
}

func (s *Server) closeListener() {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		c.close()
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of service counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:       s.acceptedConns.Load(),
		Requests:    s.requests.Load(),
		AckedWrites: s.ackedWrites.Load(),
		Offered:     s.offered.Load(),
		Served:      s.served.Load(),
		Notifier:    s.notif.Stats(),
	}
}
