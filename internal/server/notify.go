package server

import (
	"container/heap"
	"sync"
)

// NotifierStats counts group-commit acknowledgment activity. Released
// much larger than Wakeups is the decoupling payoff made visible: many
// client transactions acknowledged per durable-frontier advance.
type NotifierStats struct {
	// Wakeups is the number of durable-frontier advances observed.
	Wakeups uint64
	// Released is the number of waiters released by those advances.
	Released uint64
	// MaxBatch is the most waiters released by a single advance.
	MaxBatch uint64
}

// notifier is the server's cross-client group-commit acknowledgment
// hub. Connections park on wait(tid); a single goroutine watches the
// pool's durable-frontier subscription and, on each advance, releases
// every parked waiter the frontier passed in one wake-up — regardless
// of which connection it came from. One subscription serves the whole
// server, so N clients cost one watcher, not N.
type notifier struct {
	mu       sync.Mutex
	frontier uint64
	failed   error // pool died: crashed or closed
	waiters  notifyHeap
	stats    NotifierStats
	done     chan struct{}
}

// newNotifier starts the watcher over a pool durable-updates
// subscription. failErr is delivered to stranded waiters when the
// subscription ends (pool crash or close).
func newNotifier(updates <-chan uint64, initial uint64, failErr error) *notifier {
	n := &notifier{frontier: initial, done: make(chan struct{})}
	go func() {
		for f := range updates {
			n.advance(f)
		}
		n.fail(failErr)
		close(n.done)
	}()
	return n
}

// wait returns a buffered channel that receives exactly one value: nil
// once the durable frontier reaches tid, or the failure error if the
// pool dies first. The caller may abandon the channel at any time.
func (n *notifier) wait(tid uint64) <-chan error {
	ch := make(chan error, 1)
	n.mu.Lock()
	if tid <= n.frontier {
		n.mu.Unlock()
		ch <- nil
		return ch
	}
	if n.failed != nil {
		err := n.failed
		n.mu.Unlock()
		ch <- err
		return ch
	}
	heap.Push(&n.waiters, notifyWaiter{tid: tid, ch: ch})
	n.mu.Unlock()
	return ch
}

// advance moves the frontier and releases, in one batch, every waiter
// whose tid it passed.
func (n *notifier) advance(f uint64) {
	n.mu.Lock()
	if f <= n.frontier {
		n.mu.Unlock()
		return
	}
	n.frontier = f
	var batch []chan error
	for len(n.waiters) > 0 && n.waiters[0].tid <= f {
		batch = append(batch, heap.Pop(&n.waiters).(notifyWaiter).ch)
	}
	n.stats.Wakeups++
	n.stats.Released += uint64(len(batch))
	if uint64(len(batch)) > n.stats.MaxBatch {
		n.stats.MaxBatch = uint64(len(batch))
	}
	n.mu.Unlock()
	for _, ch := range batch {
		ch <- nil
	}
}

// fail strands no one: every parked waiter (and all future ones beyond
// the final frontier) receives err.
func (n *notifier) fail(err error) {
	n.mu.Lock()
	if n.failed != nil {
		n.mu.Unlock()
		return
	}
	n.failed = err
	victims := n.waiters
	n.waiters = nil
	n.mu.Unlock()
	for _, w := range victims {
		w.ch <- err
	}
}

// Stats returns a snapshot of acknowledgment activity.
func (n *notifier) Stats() NotifierStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Frontier returns the notifier's view of the durable frontier.
func (n *notifier) Frontier() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.frontier
}

// notifyWaiter is one parked durability wait.
type notifyWaiter struct {
	tid uint64
	ch  chan error
}

// notifyHeap is a min-heap of waiters by tid, so an advance pops
// exactly the released prefix.
type notifyHeap []notifyWaiter

func (h notifyHeap) Len() int            { return len(h) }
func (h notifyHeap) Less(i, j int) bool  { return h[i].tid < h[j].tid }
func (h notifyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *notifyHeap) Push(x interface{}) { *h = append(*h, x.(notifyWaiter)) }
func (h *notifyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	*h = old[:n-1]
	return w
}
