// Package server implements dudesrv: a networked durable key-value
// service over a dudetm.Pool. Clients speak the internal/wire protocol
// over TCP; each request is one durable transaction (GET/PUT/DELETE/
// SCAN, or several ops atomically), executed on the shadow-DRAM B+-tree
// and acknowledged through a cross-client group-commit notifier — one
// durable-frontier advance (one persist fence) releases every
// connection whose transaction it covered, which is how the paper's
// decoupled Persist step turns into server-side commit batching.
package server

import (
	"fmt"

	"dudetm"
	"dudetm/internal/memdb"
	"dudetm/internal/wire"
)

// Pool root words used by the store.
const (
	// rootTree holds the B+-tree root node address (0 = unformatted).
	rootTree = 0
)

// store is the keyspace: a B+-tree mapping keys to blob addresses on
// the pool heap. Values are variable-length byte strings packed as
// memdb blobs; a Put frees the previous blob in the same transaction,
// so the heap can never leak across a crash.
type store struct {
	pool *dudetm.Pool
	tree memdb.BPlusTree
	heap memdb.Heap
}

// openStore binds (and, on a fresh pool, formats) the keyspace.
func openStore(pool *dudetm.Pool) (*store, error) {
	st := &store{
		pool: pool,
		tree: memdb.BPlusTree{RootPtr: pool.Root(rootTree), Heap: pool.Heap()},
		heap: pool.Heap(),
	}
	var formatted bool
	if err := pool.View(0, func(tx *dudetm.Tx) error {
		formatted = tx.Load(pool.Root(rootTree)) != 0
		return nil
	}); err != nil {
		return nil, err
	}
	if !formatted {
		if _, err := pool.Update(0, func(tx *dudetm.Tx) error {
			return st.tree.Format(tx)
		}); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// writes reports whether the request mutates the keyspace (and so needs
// a durability acknowledgment).
func writes(q *wire.Request) bool {
	for i := range q.Ops {
		switch q.Ops[i].Kind {
		case wire.OpPut, wire.OpDelete:
			return true
		}
	}
	return false
}

// apply executes every op of the request inside tx, in order, filling
// results. It is re-run from scratch on TM conflict retry, so it builds
// its result slice fresh each attempt.
func (st *store) apply(tx *dudetm.Tx, q *wire.Request) ([]wire.OpResult, error) {
	results := make([]wire.OpResult, len(q.Ops))
	for i := range q.Ops {
		op := &q.Ops[i]
		res := &results[i]
		switch op.Kind {
		case wire.OpGet:
			if addr, ok := st.tree.Get(tx, op.Key); ok {
				res.Found = true
				res.Val = st.heap.ReadBlob(tx, addr)
				if res.Val == nil {
					res.Val = []byte{}
				}
			}
		case wire.OpPut:
			if old, ok := st.tree.Get(tx, op.Key); ok {
				res.Found = true
				st.heap.FreeBlob(tx, old)
			}
			addr, err := st.heap.WriteBlob(tx, op.Val)
			if err != nil {
				return nil, err
			}
			if err := st.tree.Put(tx, op.Key, addr); err != nil {
				return nil, err
			}
		case wire.OpDelete:
			if addr, ok := st.tree.Get(tx, op.Key); ok {
				res.Found = true
				st.heap.FreeBlob(tx, addr)
				st.tree.Delete(tx, op.Key)
			}
		case wire.OpScan:
			to := op.ScanTo
			if to == 0 {
				to = ^uint64(0)
			}
			limit := int(op.ScanLimit)
			if limit == 0 || limit > wire.MaxScanPairs {
				limit = wire.MaxScanPairs
			}
			res.Pairs = make([]wire.KV, 0, 16)
			st.tree.Scan(tx, op.Key, to, func(k, addr uint64) bool {
				v := st.heap.ReadBlob(tx, addr)
				if v == nil {
					v = []byte{}
				}
				res.Pairs = append(res.Pairs, wire.KV{Key: k, Val: v})
				return len(res.Pairs) < limit
			})
		default:
			return nil, fmt.Errorf("unknown op kind %d", op.Kind)
		}
	}
	return results, nil
}
