package server

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dudetm"
	"dudetm/internal/obs"
)

// requiredSeries is the contract the live endpoint must satisfy; the
// dudectl top -check gate and the check.sh smoke test scrape the same
// names, so a rename here must propagate there.
var requiredSeries = []string{
	"dudetm_clock_tid",
	"dudetm_durable_tid",
	"dudetm_reproduced_tid",
	`dudetm_stage_utilization{stage="persist"}`,
	`dudetm_stage_utilization{stage="reproduce"}`,
	`dudetm_stage_queue_depth{stage="persist"}`,
	`dudetm_stage_queue_depth{stage="reproduce"}`,
	"dudetm_commit_durable_seconds_count",
	"dudetm_commit_durable_seconds_sum",
	`dudetm_commit_durable_latency_seconds{quantile="0.5"}`,
	`dudetm_commit_durable_latency_seconds{quantile="0.99"}`,
	`dudetm_commit_durable_latency_seconds{quantile="0.999"}`,
	"dudetm_repro_epochs_total",
	"dudetm_repro_epoch_entries_in_total",
	"dudetm_repro_epoch_entries_out_total",
	"dudetm_repro_epoch_coalesce_ratio",
	"dudetm_repro_epoch_groups_count",
	"dudetm_repro_lines_flushed_total",
	"dudetm_critpath_txns_total",
	"dudetm_critpath_incomplete_total",
	"dudetm_critpath_dropped_total",
	"dudetm_critpath_e2e_seconds_count",
	"dudetm_critpath_e2e_seconds_sum",
	`dudetm_critpath_segment_seconds_total{segment="ring_dwell"}`,
	`dudetm_critpath_segment_seconds_total{segment="persist_fence"}`,
	`dudetm_critpath_segment_seconds_total{segment="quorum_wait"}`,
	`dudetm_critpath_segment_share{segment="persist_fence"}`,
	`dudetm_critpath_segment_p99_seconds{segment="persist_fence"}`,
	"dudetm_watchdog_stalls_total",
	"dudetm_recovery_runs_total",
	"dudetm_recovery_replay_seconds",
	"dudetm_recovery_bytes_replayed",
	`dudetm_region_flushed_bytes_total{region="log"}`,
	`dudetm_region_flushed_bytes_total{region="data"}`,
	`dudetm_region_fences_total{region="log"}`,
	"dudetm_repl_peers",
	"dudetm_repl_quorum_state",
	"dudetm_repl_acked_tid",
	"dudetm_repl_frontier_lag",
	"dudetm_repl_degraded_events_total",
	"dudetm_repl_wire_bytes_total",
	`dudetm_repl_ack_latency_seconds{quantile="0.5"}`,
	`dudetm_repl_ack_latency_seconds{quantile="0.99"}`,
	`dudetm_repl_ack_latency_seconds{quantile="0.999"}`,
	"dudesrv_connections_total",
	"dudesrv_requests_total",
	"dudesrv_acked_writes_total",
	"dudesrv_offered_requests_total",
	"dudesrv_served_responses_total",
}

func TestMetricsEndpoint(t *testing.T) {
	srv, pool, addr := startServer(t,
		dudetm.Options{TraceSampleEvery: 1, GroupSize: 4, Watchdog: 50 * time.Millisecond},
		Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)
	c := dial(t, addr)
	defer c.Close()
	for i := 0; i < 50; i++ {
		if err := c.Put(uint64(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	hs := httptest.NewServer(srv.DebugHandler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	m, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range requiredSeries {
		v, ok := m[series]
		if !ok {
			t.Errorf("missing series %s", series)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v", series, v)
		}
	}
	// Put acks after durability, so 50 writes are behind the frontier
	// and each was a sampled (1-in-1) lifecycle observation.
	if m["dudetm_durable_tid"] < 50 {
		t.Errorf("dudetm_durable_tid = %v, want >= 50", m["dudetm_durable_tid"])
	}
	if m["dudetm_commit_durable_seconds_count"] == 0 {
		t.Error("commit_durable histogram is empty with sampling on")
	}
	if m[`dudetm_commit_durable_latency_seconds{quantile="0.99"}`] <= 0 {
		t.Error("p99 commit->durable quantile is zero")
	}
	if m["dudesrv_acked_writes_total"] < 50 {
		t.Errorf("dudesrv_acked_writes_total = %v, want >= 50", m["dudesrv_acked_writes_total"])
	}
	// Offered counts at decode, served at response write; with the
	// client fully drained they both cover all 50 requests.
	if m["dudesrv_offered_requests_total"] < 50 {
		t.Errorf("dudesrv_offered_requests_total = %v, want >= 50", m["dudesrv_offered_requests_total"])
	}
	if m["dudesrv_served_responses_total"] < 50 {
		t.Errorf("dudesrv_served_responses_total = %v, want >= 50", m["dudesrv_served_responses_total"])
	}
	// 50 durable writes must have flushed log-region bytes; this pool
	// was created fresh, so no recovery has run.
	if m[`dudetm_region_flushed_bytes_total{region="log"}`] == 0 {
		t.Error("log region reports no flushed bytes after 50 durable writes")
	}
	if m["dudetm_recovery_runs_total"] != 0 {
		t.Errorf("dudetm_recovery_runs_total = %v on a fresh pool", m["dudetm_recovery_runs_total"])
	}
	// Replication is off on this node, but the series contract holds:
	// quorum state reads healthy, the acked frontier tracks the local
	// durable frontier, and the lag gauge is non-negative.
	if m["dudetm_repl_peers"] != 0 || m["dudetm_repl_enabled"] != 0 {
		t.Errorf("repl peers/enabled = %v/%v on an unreplicated node",
			m["dudetm_repl_peers"], m["dudetm_repl_enabled"])
	}
	if m["dudetm_repl_quorum_state"] != 1 {
		t.Errorf("dudetm_repl_quorum_state = %v, want 1 (healthy) with replication off", m["dudetm_repl_quorum_state"])
	}
	if m["dudetm_repl_acked_tid"] < 50 {
		t.Errorf("dudetm_repl_acked_tid = %v, want >= 50 (tracks local durable)", m["dudetm_repl_acked_tid"])
	}
	if m["dudetm_repl_frontier_lag"] < 0 {
		t.Errorf("dudetm_repl_frontier_lag = %v, want >= 0", m["dudetm_repl_frontier_lag"])
	}

	// Critical-path decomposition: all 50 writes were sampled and acked
	// before the scrape, so the background collector folds them in; poll
	// briefly for the async drain.
	deadline := time.Now().Add(5 * time.Second)
	for m["dudetm_critpath_txns_total"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("critpath collector never decomposed a txn: txns=%v incomplete=%v dropped=%v",
				m["dudetm_critpath_txns_total"], m["dudetm_critpath_incomplete_total"], m["dudetm_critpath_dropped_total"])
		}
		time.Sleep(10 * time.Millisecond)
		resp, err := http.Get(hs.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		m, err = obs.ParseProm(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if m["dudetm_critpath_e2e_seconds_count"] != m["dudetm_critpath_txns_total"] {
		t.Errorf("e2e count %v != txns %v",
			m["dudetm_critpath_e2e_seconds_count"], m["dudetm_critpath_txns_total"])
	}
	// Unreplicated node: replication segments stay zero, the pipeline
	// segments carry all the attributed time, and shares sum to ~1.
	if m[`dudetm_critpath_segment_seconds_total{segment="repl_ship"}`] != 0 ||
		m[`dudetm_critpath_segment_seconds_total{segment="quorum_wait"}`] != 0 {
		t.Error("replication segments nonzero on an unreplicated node")
	}
	var share float64
	for _, seg := range []string{"ring_dwell", "seal_wait", "persist_fence", "repl_ship", "quorum_wait", "notify"} {
		share += m[`dudetm_critpath_segment_share{segment="`+seg+`"}`]
	}
	if math.Abs(share-1) > 0.01 {
		t.Errorf("segment shares sum to %v, want ~1", share)
	}

	// /debug/trace: the tail shows lifecycle stamps; a specific durable
	// tid reconstructs its timeline (sampling is 1-in-1).
	body := getBody(t, hs.URL+"/debug/trace")
	for _, kind := range []string{"commit", "group-seal", "persist-fence"} {
		if !strings.Contains(body, kind) {
			t.Errorf("/debug/trace missing %q stamps:\n%s", kind, body)
		}
	}
	body = getBody(t, hs.URL+"/debug/trace?tid=25")
	if !strings.Contains(body, "tid 25 lifecycle") || !strings.Contains(body, "commit") {
		t.Errorf("/debug/trace?tid=25:\n%s", body)
	}
	// An unknown tid is a 404 whose body explains the sampling period.
	resp, err = http.Get(hs.URL + "/debug/trace?tid=999999")
	if err != nil {
		t.Fatal(err)
	}
	nb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace with unknown tid: %s, want 404", resp.Status)
	}
	if !strings.Contains(string(nb), "not sampled") || !strings.Contains(string(nb), "1-in-1") {
		t.Errorf("404 body = %q, want sampling explanation", nb)
	}
	// format=chrome renders the timeline as a Perfetto-loadable
	// trace-event document.
	resp, err = http.Get(hs.URL + "/debug/trace?tid=25&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace?format=chrome: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("chrome trace Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(cb, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, cb)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}
	if body = getBody(t, hs.URL+"/debug/stall"); !strings.Contains(body, "no stalls recorded") {
		t.Errorf("/debug/stall: %q", body)
	}
	// pprof is mounted.
	if body = getBody(t, hs.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned nothing")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
