package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"dudetm/internal/wire"
)

// conn is one client connection: a reader goroutine that decodes and
// queues requests (pipelining), and a writer goroutine that executes
// them in order and acknowledges. The writer opportunistically batches:
// it executes every request already queued, then parks on the
// group-commit notifier once for the batch's newest transaction ID —
// the frontier advance that covers it covers the whole batch.
type conn struct {
	srv *Server
	nc  net.Conn

	closeOnce sync.Once
	closed    chan struct{} // force-close: abandon everything now
	draining  chan struct{} // graceful: finish queued work, then close
	drainOnce sync.Once
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:      s,
		nc:       nc,
		closed:   make(chan struct{}),
		draining: make(chan struct{}),
	}
}

// close severs the connection immediately.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.nc.Close()
	})
}

// drain asks the connection to stop reading new requests, finish the
// queued ones, and close. The immediate read deadline kicks the reader
// out of its blocking read.
func (c *conn) drain() {
	c.drainOnce.Do(func() {
		close(c.draining)
		c.nc.SetReadDeadline(time.Now())
	})
}

func (c *conn) serve() {
	defer c.close()
	pending := make(chan wire.Request, c.srv.cfg.MaxPipeline)
	go func() {
		defer close(pending)
		c.readLoop(pending)
	}()
	c.writeLoop(pending)
}

// readLoop decodes frames into the pending queue. It owns the read
// deadline: a connection idle past IdleTimeout, or one that sends a
// corrupt frame, is closed.
func (c *conn) readLoop(pending chan<- wire.Request) {
	br := bufio.NewReader(c.nc)
	for {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		q, err := wire.DecodeRequest(payload)
		if err != nil {
			return
		}
		// Offered load is counted at decode, before the pipeline queue:
		// demand the client put on the wire, whether or not execution
		// keeps up.
		c.srv.offered.Add(1)
		select {
		case pending <- q:
		case <-c.closed:
			return
		}
		select {
		case <-c.draining:
			return
		default:
		}
	}
}

// pendingAck is one executed-but-unacknowledged request in a batch.
type pendingAck struct {
	resp    wire.Response
	tid     uint64
	relaxed bool
}

// writeLoop executes queued requests and writes responses. Relaxed
// requests are acknowledged as soon as Perform commits (durable=false
// unless the frontier already passed them); others wait on the
// group-commit notifier — once per batch, not once per request.
func (c *conn) writeLoop(pending <-chan wire.Request) {
	bw := bufio.NewWriter(c.nc)
	var batch []pendingAck
	for {
		q, ok := <-pending
		if !ok {
			return
		}
		batch = batch[:0]
		resp, tid := c.srv.execute(&q)
		batch = append(batch, pendingAck{resp: resp, tid: tid, relaxed: q.Relaxed})
		// Opportunistic batching: execute everything else already
		// queued before waiting for durability.
	gather:
		for {
			select {
			case q, ok := <-pending:
				if !ok {
					break gather
				}
				resp, tid := c.srv.execute(&q)
				batch = append(batch, pendingAck{resp: resp, tid: tid, relaxed: q.Relaxed})
			default:
				break gather
			}
		}
		// The newest strict transaction ID covers the whole batch.
		var waitTid uint64
		for i := range batch {
			if !batch[i].relaxed && batch[i].tid > waitTid {
				waitTid = batch[i].tid
			}
		}
		var ackErr error
		if waitTid != 0 {
			select {
			case ackErr = <-c.srv.notif.wait(waitTid):
			case <-c.closed:
				return
			}
		}
		frontier := c.srv.notif.Frontier()
		for i := range batch {
			p := &batch[i]
			if p.tid != 0 {
				if ackErr != nil && !p.relaxed {
					p.resp.Status = wire.StatusErr
					p.resp.Err = ackErr.Error()
					p.resp.Results = nil
				} else {
					p.resp.Durable = p.tid <= frontier
					if p.resp.Durable {
						c.srv.ackedWrites.Add(1)
					}
				}
			}
			if !c.writeResponse(bw, &p.resp) {
				return
			}
		}
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
		if bw.Flush() != nil {
			return
		}
		if ackErr != nil {
			return
		}
	}
}

func (c *conn) writeResponse(bw *bufio.Writer, resp *wire.Response) bool {
	payload, err := wire.AppendResponse(nil, resp)
	if err != nil {
		// Response exceeds protocol limits (it was built from decoded
		// requests, so this is a server bug); drop the connection
		// rather than desynchronize the stream.
		return false
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	if wire.WriteFrame(bw, payload) != nil {
		return false
	}
	c.srv.served.Add(1)
	return true
}
