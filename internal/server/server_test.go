package server

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dudetm"
	"dudetm/internal/wire"
)

// startServer mounts a fresh pool, starts a server on a loopback
// listener, and returns both plus the dial address. The caller owns
// teardown (Shutdown/Kill and pool Close).
func startServer(t *testing.T, opts dudetm.Options, cfg Config) (*Server, *dudetm.Pool, string) {
	t.Helper()
	if opts.DataSize == 0 {
		opts.DataSize = 16 << 20
	}
	pool, err := dudetm.Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, pool, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerBasicOps(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{}, Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)
	c := dial(t, addr)
	defer c.Close()

	if _, found, err := c.Get(1); err != nil || found {
		t.Fatalf("Get(missing) = found=%v err=%v", found, err)
	}
	if err := c.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get(1)
	if err != nil || !found || string(v) != "one" {
		t.Fatalf("Get(1) = %q,%v,%v", v, found, err)
	}
	// Overwrite with a longer value (blob reallocation).
	long := bytes.Repeat([]byte("x"), 1000)
	if err := c.Put(1, long); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get(1); !bytes.Equal(v, long) {
		t.Fatalf("Get(1) after overwrite: %d bytes", len(v))
	}
	// Empty value round-trips as present-but-empty.
	if err := c.Put(3, nil); err != nil {
		t.Fatal(err)
	}
	if v, found, _ := c.Get(3); !found || len(v) != 0 {
		t.Fatalf("Get(3) = %q,%v", v, found)
	}
	// Scan sees the keys in order.
	pairs, err := c.Scan(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 || pairs[0].Key != 1 || pairs[1].Key != 2 || pairs[2].Key != 3 {
		t.Fatalf("scan: %+v", pairs)
	}
	// Delete.
	if found, err := c.Delete(2); err != nil || !found {
		t.Fatalf("Delete(2) = %v,%v", found, err)
	}
	if found, err := c.Delete(2); err != nil || found {
		t.Fatalf("Delete(2) again = %v,%v", found, err)
	}
	if _, found, _ := c.Get(2); found {
		t.Fatal("Get(2) after delete: found")
	}
}

func TestServerTxnAtomicity(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{}, Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)
	c := dial(t, addr)
	defer c.Close()

	// A multi-op transaction commits atomically.
	resp, err := c.Txn(
		wire.Op{Kind: wire.OpPut, Key: 10, Val: []byte("a")},
		wire.Op{Kind: wire.OpPut, Key: 11, Val: []byte("b")},
		wire.Op{Kind: wire.OpGet, Key: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Durable || resp.Tid == 0 {
		t.Fatalf("txn resp: %+v", resp)
	}
	if string(resp.Results[2].Val) != "a" {
		t.Fatalf("read-own-write inside txn: %q", resp.Results[2].Val)
	}
	// A bank-style transfer never shows a torn state to other clients.
	c.Txn(
		wire.Op{Kind: wire.OpPut, Key: 100, Val: []byte{100}},
		wire.Op{Kind: wire.OpPut, Key: 101, Val: []byte{100}},
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c2 := dial(t, addr)
		defer c2.Close()
		for i := 0; i < 200; i++ {
			resp, err := c2.Txn(
				wire.Op{Kind: wire.OpGet, Key: 100},
				wire.Op{Kind: wire.OpGet, Key: 101},
			)
			if err != nil {
				t.Error(err)
				return
			}
			sum := int(resp.Results[0].Val[0]) + int(resp.Results[1].Val[0])
			if sum != 200 {
				t.Errorf("torn read: sum=%d", sum)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		amt := byte(1 + i%10)
		resp, err := c.Txn(wire.Op{Kind: wire.OpGet, Key: 100}, wire.Op{Kind: wire.OpGet, Key: 101})
		if err != nil {
			t.Fatal(err)
		}
		a, b := resp.Results[0].Val[0], resp.Results[1].Val[0]
		if a < amt {
			continue
		}
		if _, err := c.Txn(
			wire.Op{Kind: wire.OpPut, Key: 100, Val: []byte{a - amt}},
			wire.Op{Kind: wire.OpPut, Key: 101, Val: []byte{b + amt}},
		); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}

func TestServerPipelining(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{GroupSize: 16}, Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)
	c := dial(t, addr)
	defer c.Close()

	// Many requests in flight on one connection; responses match by ID.
	const n = 100
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		f, err := c.Go([]wire.Op{{Kind: wire.OpPut, Key: uint64(i), Val: []byte{byte(i)}}}, false)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	for i, f := range futs {
		resp, err := f.Wait()
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if !resp.Durable {
			t.Fatalf("req %d: not durable", i)
		}
	}
	for i := 0; i < n; i++ {
		v, found, err := c.Get(uint64(i))
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("Get(%d) = %v,%v,%v", i, v, found, err)
		}
	}
}

func TestServerRelaxedFastAck(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{}, Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)
	c := dial(t, addr)
	defer c.Close()

	// Relaxed acks return without a durability wait; the write is still
	// applied and eventually durable.
	if _, err := c.PutRelaxed(5, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get(5)
	if err != nil || !found || string(v) != "fast" {
		t.Fatalf("Get(5) = %q,%v,%v", v, found, err)
	}
}

func TestServerRejectsCorruptFrame(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{}, Config{})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("this is not a frame, and much too short anyway"))
	// The server must close the connection rather than wedge.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server kept a corrupt connection open")
	}

	// A healthy connection still works afterwards.
	c := dial(t, addr)
	defer c.Close()
	if err := c.Put(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestServerConnLimitBackpressure(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{}, Config{MaxConns: 2})
	defer pool.Close()
	defer srv.Shutdown(5 * time.Second)

	c1, c2 := dial(t, addr), dial(t, addr)
	defer c1.Close()
	defer c2.Close()
	if err := c1.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// A third connection is not serviced until a slot frees: its
	// request sits unanswered (queued in the backlog, not reset).
	c3 := dial(t, addr)
	defer c3.Close()
	f, err := c3.Go([]wire.Op{{Kind: wire.OpGet, Key: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-f.ch:
		t.Fatal("over-limit connection was serviced")
	case <-time.After(200 * time.Millisecond):
	}
	// Freeing a slot lets it through.
	c1.Close()
	resp, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Results[0].Found {
		t.Fatal("backpressured request lost data")
	}
}

// TestGroupCommitBatching is the acceptance drill's throughput half: a
// 32-connection durable write load must cost fewer persist fences than
// acknowledged write transactions — the cross-client group commit.
func TestGroupCommitBatching(t *testing.T) {
	srv, pool, addr := startServer(t, dudetm.Options{GroupSize: 64, Threads: 4}, Config{})
	defer pool.Close()
	defer srv.Shutdown(10 * time.Second)

	fencesBefore := pool.Stats().Device.Fences
	const conns = 32
	const writesPerConn = 20
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial(t, addr)
			defer c.Close()
			for i := 0; i < writesPerConn; i++ {
				k := uint64(w)<<32 | uint64(i)
				if err := c.Put(k, []byte(fmt.Sprintf("v-%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := srv.Stats()
	fences := pool.Stats().Device.Fences - fencesBefore
	if st.AckedWrites < conns*writesPerConn {
		t.Fatalf("acked %d writes, want >= %d", st.AckedWrites, conns*writesPerConn)
	}
	if fences >= st.AckedWrites {
		t.Errorf("group commit broken: %d fences for %d acked writes", fences, st.AckedWrites)
	}
	if st.Notifier.Released == 0 || st.Notifier.MaxBatch < 2 {
		t.Errorf("no cross-client batching: %+v", st.Notifier)
	}
	t.Logf("fences=%d acked=%d notifier=%+v", fences, st.AckedWrites, st.Notifier)
}

// TestServerCrashDrill is the acceptance drill's durability half: kill
// the server mid-load with a simulated power failure, remount the
// image, and verify every write that was acknowledged durable.
func TestServerCrashDrill(t *testing.T) {
	// The drill runs against the parallel pipeline: 2 persist workers,
	// 4 sharded repro appliers.
	opts := dudetm.Options{DataSize: 16 << 20, GroupSize: 16, Threads: 4, PersistThreads: 2, ReproThreads: 4}
	srv, _, addr := startServer(t, opts, Config{})

	const conns = 8
	type ack struct{ key, gen, tid uint64 }
	ackedCh := make(chan ack, 1<<16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for gen := uint64(1); ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(w)<<32 | gen%128
				val := make([]byte, 8)
				for i := range val {
					val[i] = byte(gen >> (8 * i))
				}
				resp, err := c.Do([]wire.Op{{Kind: wire.OpPut, Key: key, Val: val}}, false)
				if err != nil {
					return // connection severed by the crash
				}
				ackedCh <- ack{key, gen, resp.Tid}
			}
		}(w)
	}

	// Let the load run, then pull the plug mid-flight.
	time.Sleep(300 * time.Millisecond)
	img := srv.Kill()
	close(stop)
	wg.Wait()
	close(ackedCh)

	// Highest acknowledged generation per key: that write and nothing
	// newer must be in the recovered store. Also the highest acked
	// transaction ID, for the online durability audit below.
	minGen := make(map[uint64]uint64)
	var total int
	var maxTid uint64
	for a := range ackedCh {
		total++
		if a.gen > minGen[a.key] {
			minGen[a.key] = a.gen
		}
		if a.tid > maxTid {
			maxTid = a.tid
		}
	}
	if total == 0 {
		t.Fatal("crash drill produced no acknowledged writes")
	}
	t.Logf("acked %d writes over %d keys (max tid %d) before the crash", total, len(minGen), maxTid)

	pool2, err := dudetm.OpenSnapshot(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	// Online durability audit: the recovered frontier must cover every
	// acknowledged transaction; a failure carries the forensic crash
	// report so the lost work is identifiable.
	if err := pool2.AuditRecovery(maxTid); err != nil {
		t.Errorf("durability audit after crash recovery: %v", err)
	}
	if rec := pool2.Stats().Recovery; !rec.Recovered || rec.Report == nil {
		t.Errorf("recovered pool missing recovery stats or crash report: %+v", rec)
	}
	srv2, err := New(pool2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(ln)
	defer srv2.Shutdown(5 * time.Second)
	c := dial(t, ln.Addr().String())
	defer c.Close()
	for key, gen := range minGen {
		v, found, err := c.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Errorf("key %#x: acknowledged write lost", key)
			continue
		}
		var got uint64
		for i := len(v) - 1; i >= 0; i-- {
			got = got<<8 | uint64(v[i])
		}
		if got < gen {
			t.Errorf("key %#x: recovered gen %d < acknowledged gen %d", key, got, gen)
		}
	}
}

// TestServerGracefulDrain: Shutdown lets in-flight requests finish,
// waits out the durable frontier, and the resulting snapshot remounts
// with everything acknowledged.
func TestServerGracefulDrain(t *testing.T) {
	opts := dudetm.Options{GroupSize: 8}
	srv, pool, addr := startServer(t, opts, Config{})

	c := dial(t, addr)
	for i := uint64(0); i < 50; i++ {
		if err := c.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// After the drain, new connections are refused.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Error("server accepted a connection after Shutdown")
	}
	pool.Close()
	img := pool.Snapshot()

	pool2, err := dudetm.OpenSnapshot(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	srv2, err := New(pool2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv2.Serve(ln)
	defer srv2.Shutdown(5 * time.Second)
	c2 := dial(t, ln.Addr().String())
	defer c2.Close()
	for i := uint64(0); i < 50; i++ {
		v, found, err := c2.Get(i)
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("key %d after drain+remount: %v,%v,%v", i, v, found, err)
		}
	}
}

// TestNotifierUnit exercises the notifier without a network: ordering,
// batch release, and failure strand-freedom.
func TestNotifierUnit(t *testing.T) {
	updates := make(chan uint64)
	n := newNotifier(updates, 0, dudetm.ErrCrashed)

	// Already-durable waits resolve immediately.
	updates <- 10
	for n.Frontier() != 10 {
		time.Sleep(time.Millisecond)
	}
	if err := <-n.wait(7); err != nil {
		t.Fatal(err)
	}
	// A batch of parked waiters is released by one advance.
	chans := make([]<-chan error, 20)
	for i := range chans {
		chans[i] = n.wait(uint64(11 + i))
	}
	updates <- 30
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	st := n.Stats()
	if st.MaxBatch != 20 {
		t.Errorf("MaxBatch = %d, want 20", st.MaxBatch)
	}
	// Failure strands no one, before or after.
	parked := n.wait(1000)
	close(updates)
	if err := <-parked; err == nil {
		t.Error("parked waiter survived pool death")
	}
	if err := <-n.wait(999); err == nil {
		t.Error("post-failure waiter got nil")
	}
	if err := <-n.wait(30); err != nil {
		t.Errorf("covered tid must stay nil after failure: %v", err)
	}
}
