package redolog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync/atomic"
	"time"

	"dudetm/internal/lz4"
	"dudetm/internal/pmem"
)

// Persistent log record layout (all fields little-endian uint64):
//
//	[ 0] payloadLen          (exact payload bytes; storage is 8-aligned)
//	[ 8] uncompressedLen     (== payloadLen when not compressed)
//	[16] seq                 (per-log record sequence number, never reused)
//	[24] minTid
//	[32] maxTid
//	[40] flags               (flagCompressed)
//	[48] crc                 (CRC-32C of header fields [0,48) + payload)
//
// A record is written, flushed, and fenced as one persist barrier — the
// single persist ordering per transaction/group that redo logging needs.
// On recovery a record is valid iff its checksum matches and its sequence
// number is the expected successor, which makes torn tails and stale
// recycled records detectable without a second "commit" fence.
const (
	headerSize = 56

	flagCompressed = 1 << 0

	// wrapMarker in the first word of a record slot means "the log
	// wraps: continue at the start of the buffer".
	wrapMarker = ^uint64(0)
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Group is a unit of persistence: the combined writes of one or more
// consecutive transactions, replayed atomically.
type Group struct {
	Seq     uint64
	MinTid  uint64
	MaxTid  uint64
	Entries []Entry
	// EndPos is the writer position just past this group's record; the
	// reproducer passes it to Recycle once the group has been replayed.
	EndPos uint64
}

// Writer appends groups to a circular persistent log buffer on a
// simulated NVM device.
type Writer struct {
	dev  *pmem.Device
	meta uint64 // metadata block address (MetaSize bytes)
	base uint64
	size uint64

	tail uint64        // next write position (monotonic)
	seq  uint64        // next record sequence number
	head atomic.Uint64 // oldest live byte (monotonic), advanced by Recycle

	compress bool
	scratch  []byte
	comp     []byte

	bytesAppended atomic.Uint64 // serialized record bytes written (after combine/compress)
}

// MetaSize is the size of a log's metadata block:
// [headPos][headSeq][reproTid][crc] little-endian. reproTid is the global
// Reproduce watermark at the time of the recycle — the anchor recovery
// starts its dense, ID-ordered replay from.
const MetaSize = 32

// NewWriter initializes a fresh, empty log over dev[base:base+size) with
// its metadata block at meta. size must be a multiple of 8 and large
// enough for any record. The metadata is persisted before returning.
func NewWriter(dev *pmem.Device, meta, base, size uint64, compress bool) *Writer {
	if size%8 != 0 || size < 4096 {
		panic("redolog: log size must be a multiple of 8 and at least 4096")
	}
	w := &Writer{dev: dev, meta: meta, base: base, size: size, seq: 1, compress: compress}
	w.persistMeta(0, 1, 0)
	return w
}

// resumeWriter reconstructs a writer after recovery: the log restarts
// empty at position pos with the next sequence number seq (sequence
// numbers are never reused, so stale pre-crash records can never be
// mistaken for live ones).
func resumeWriter(dev *pmem.Device, meta, base, size uint64, compress bool, pos, seq, reproTid uint64) *Writer {
	w := &Writer{dev: dev, meta: meta, base: base, size: size, seq: seq, compress: compress, tail: pos}
	w.head.Store(pos)
	w.persistMeta(pos, seq, reproTid)
	return w
}

func (w *Writer) persistMeta(headPos, headSeq, reproTid uint64) {
	var b [MetaSize]byte
	binary.LittleEndian.PutUint64(b[0:], headPos)
	binary.LittleEndian.PutUint64(b[8:], headSeq)
	binary.LittleEndian.PutUint64(b[16:], reproTid)
	crc := crc32.Checksum(b[:24], crcTable)
	binary.LittleEndian.PutUint64(b[24:], uint64(crc))
	w.dev.Store(w.meta, b[:])
	w.dev.Persist(w.meta, MetaSize)
}

// BytesAppended returns the total serialized bytes appended so far — the
// NVM log traffic after combination and compression. Safe to read
// concurrently with AppendGroup.
func (w *Writer) BytesAppended() uint64 { return w.bytesAppended.Load() }

// Tail returns the current write position (monotonic bytes).
func (w *Writer) Tail() uint64 { return w.tail }

// AppendGroup serializes, optionally compresses, and persists a group
// with a single fence. It sets g.Seq and g.EndPos, blocks until the
// buffer has space (i.e., until Recycle catches up), and returns the
// serialized record size in bytes.
//
//dudelint:fencebudget 1
func (w *Writer) AppendGroup(g *Group) uint64 {
	w.scratch = AppendEntries(w.scratch[:0], g.Entries)
	payload := w.scratch
	uncomp := uint64(len(payload))
	var flags uint64
	if w.compress && len(payload) > 64 {
		w.comp = lz4.Compress(w.comp[:0], payload)
		if len(w.comp) < len(payload) {
			payload = w.comp
			flags |= flagCompressed
		}
	}
	payloadLen := uint64(len(payload))
	recSize := headerSize + (payloadLen+7)&^7
	if recSize+8 > w.size {
		panic(fmt.Sprintf("redolog: record of %d bytes exceeds log size %d", recSize, w.size))
	}

	// If the record would cross the end of the buffer, emit a wrap
	// marker and continue at the start.
	batch := w.dev.NewBatch()
	if rem := w.size - w.tail%w.size; rem < recSize {
		w.waitSpace(rem)
		markerAddr := w.base + w.tail%w.size
		w.dev.Store8(markerAddr, wrapMarker)
		batch.Flush(markerAddr, 8)
		w.tail += rem
	}
	w.waitSpace(recSize)

	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], payloadLen)
	binary.LittleEndian.PutUint64(hdr[8:], uncomp)
	binary.LittleEndian.PutUint64(hdr[16:], w.seq)
	binary.LittleEndian.PutUint64(hdr[24:], g.MinTid)
	binary.LittleEndian.PutUint64(hdr[32:], g.MaxTid)
	binary.LittleEndian.PutUint64(hdr[40:], flags)
	crc := crc32.Checksum(hdr[:48], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint64(hdr[48:], uint64(crc))

	addr := w.base + w.tail%w.size
	w.dev.Store(addr, hdr[:])
	if len(payload) > 0 {
		w.dev.Store(addr+headerSize, payload)
	}
	batch.Flush(addr, recSize)
	batch.Fence()

	g.Seq = w.seq
	w.seq++
	w.tail += recSize
	g.EndPos = w.tail
	w.bytesAppended.Add(recSize)
	return recSize
}

// waitSpace blocks until n bytes are free past tail.
func (w *Writer) waitSpace(n uint64) {
	spins := 0
	for w.tail+n-w.head.Load() > w.size {
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Recycle frees the log up to pos (a Group.EndPos) whose records have all
// been replayed to persistent data, and persists the new head so recovery
// skips them. seq is the sequence number of the first live record.
//
// The persist ordering here is the only one Reproduce needs: the head may
// only advance after the replayed data updates are themselves persistent
// (§3.4) — the caller fences data writes before calling Recycle.
// reproTid is the global Reproduce watermark being persisted alongside.
//
//dudelint:fencebudget 1
func (w *Writer) Recycle(pos, seq, reproTid uint64) {
	w.persistMeta(pos, seq, reproTid)
	w.head.Store(pos)
}
