package redolog

// Combiner coalesces writes across a group of consecutive transactions
// (§3.3, "Log Combination"): if two writes in the group modify the same
// address, only the last survives, because the whole group is flushed —
// and later replayed — atomically. Entries must be added in transaction
// order.
//
// The index map is retained across groups and its slots are
// epoch-stamped: Reset bumps the epoch instead of clearing (or
// reallocating) the map, so a slot left over from an earlier group is
// simply stale rather than wrong. Steady-state combination therefore
// allocates nothing per group (BenchmarkCombiner checks this), and
// Reset is O(1) instead of O(map size).
type Combiner struct {
	idx     map[uint64]combSlot
	epoch   uint64
	entries []Entry
	raw     int // entries added before combination
}

// combSlot is one index-map slot: the entry position valid for epoch.
type combSlot struct {
	epoch uint64
	i     int
}

// NewCombiner creates an empty combiner.
func NewCombiner() *Combiner {
	return &Combiner{idx: make(map[uint64]combSlot, 1024), epoch: 1}
}

// Add records a write, overwriting any earlier write to the same address
// in the current group.
func (c *Combiner) Add(addr, val uint64) {
	c.raw++
	if sl, ok := c.idx[addr]; ok && sl.epoch == c.epoch {
		c.entries[sl.i].Val = val
		return
	}
	c.idx[addr] = combSlot{epoch: c.epoch, i: len(c.entries)}
	c.entries = append(c.entries, Entry{Addr: addr, Val: val})
}

// AddAll records a slice of writes in order.
func (c *Combiner) AddAll(entries []Entry) {
	for _, e := range entries {
		c.Add(e.Addr, e.Val)
	}
}

// Entries returns the combined group. The slice is owned by the combiner
// and invalidated by Reset.
func (c *Combiner) Entries() []Entry { return c.entries }

// RawCount returns the number of writes added since the last Reset,
// before combination.
func (c *Combiner) RawCount() int { return c.raw }

// Len returns the number of combined entries.
func (c *Combiner) Len() int { return len(c.entries) }

// Reset clears the combiner for the next group by advancing the epoch;
// stale index slots die lazily.
func (c *Combiner) Reset() {
	c.epoch++
	c.entries = c.entries[:0]
	c.raw = 0
}
