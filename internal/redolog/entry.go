// Package redolog implements DudeTM's redo logs: the per-thread volatile
// rings filled by the Perform step, the cross-transaction write
// combination applied by the Persist step, and the persistent log region
// those groups are flushed to (with the recovery scanner that reads them
// back after a crash).
//
// The volatile and persistent logs are the only channel between shadow
// memory and persistent memory — dirty shadow data is never written back
// directly (§3.1 of the paper).
package redolog

import "encoding/binary"

// Entry is one redo-log record: a word write at a pool-logical address.
type Entry struct {
	Addr uint64
	Val  uint64
}

// EntrySize is the serialized size of an Entry in bytes.
const EntrySize = 16

// txEndAddr marks a transaction-end entry inside a volatile ring; its Val
// is the commit transaction ID. Pool addresses are always far below it.
const txEndAddr = ^uint64(0)

// AppendEntries serializes entries little-endian onto dst.
func AppendEntries(dst []byte, entries []Entry) []byte {
	for _, e := range entries {
		var b [EntrySize]byte
		binary.LittleEndian.PutUint64(b[0:], e.Addr)
		binary.LittleEndian.PutUint64(b[8:], e.Val)
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeEntries parses a payload produced by AppendEntries. It returns
// false if the payload length is not a multiple of EntrySize.
func DecodeEntries(payload []byte) ([]Entry, bool) {
	if len(payload)%EntrySize != 0 {
		return nil, false
	}
	entries := make([]Entry, len(payload)/EntrySize)
	for i := range entries {
		off := i * EntrySize
		entries[i] = Entry{
			Addr: binary.LittleEndian.Uint64(payload[off:]),
			Val:  binary.LittleEndian.Uint64(payload[off+8:]),
		}
	}
	return entries, true
}
