package redolog

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"dudetm/internal/pmem"
)

// --- Ring ---

func TestRingSingleTx(t *testing.T) {
	r := NewRing(16)
	r.Append(8, 100)
	r.Append(16, 200)
	if _, ok := r.PeekTid(); ok {
		t.Fatal("uncommitted tx visible to consumer")
	}
	r.AppendTxEnd(7)
	tid, ok := r.PeekTid()
	if !ok || tid != 7 {
		t.Fatalf("PeekTid = %d,%v", tid, ok)
	}
	entries, tid := r.ConsumeTx(nil)
	if tid != 7 {
		t.Fatalf("tid = %d", tid)
	}
	want := []Entry{{8, 100}, {16, 200}}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("entries = %v", entries)
	}
	if _, ok := r.PeekTid(); ok {
		t.Fatal("consumed tx still visible")
	}
}

func TestRingAbortDiscards(t *testing.T) {
	r := NewRing(16)
	r.Append(8, 1)
	r.AppendTxEnd(1)
	r.Append(16, 2)
	r.Append(24, 3)
	r.PopToLastTx() // abort
	r.Append(32, 4)
	r.AppendTxEnd(2)

	e1, tid1 := r.ConsumeTx(nil)
	e2, tid2 := r.ConsumeTx(nil)
	if tid1 != 1 || tid2 != 2 {
		t.Fatalf("tids %d,%d", tid1, tid2)
	}
	if !reflect.DeepEqual(e1, []Entry{{8, 1}}) {
		t.Fatalf("e1 = %v", e1)
	}
	if !reflect.DeepEqual(e2, []Entry{{32, 4}}) {
		t.Fatalf("aborted entries leaked: %v", e2)
	}
}

func TestRingEmptyTx(t *testing.T) {
	r := NewRing(16)
	r.AppendTxEnd(5) // burned-tid no-op commit
	entries, tid := r.ConsumeTx(nil)
	if tid != 5 || len(entries) != 0 {
		t.Fatalf("got %v, %d", entries, tid)
	}
}

func TestRingBackPressure(t *testing.T) {
	r := NewRing(8) // tiny: producer must block until consumer drains
	const txs = 100
	var got []uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < txs {
			if _, ok := r.PeekTid(); !ok {
				continue
			}
			_, tid := r.ConsumeTx(nil)
			got = append(got, tid)
		}
	}()
	for i := 1; i <= txs; i++ {
		r.Append(uint64(i*8), uint64(i))
		r.Append(uint64(i*16), uint64(i))
		r.AppendTxEnd(uint64(i))
	}
	<-done
	for i, tid := range got {
		if tid != uint64(i+1) {
			t.Fatalf("tx order broken at %d: %d", i, tid)
		}
	}
}

func TestRingConcurrentProducerConsumer(t *testing.T) {
	r := NewRing(1024)
	const txs = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	var sum uint64
	go func() {
		defer wg.Done()
		var buf []Entry
		for consumed := 0; consumed < txs; {
			if _, ok := r.PeekTid(); !ok {
				continue
			}
			buf = buf[:0]
			var tid uint64
			buf, tid = r.ConsumeTx(buf)
			for _, e := range buf {
				sum += e.Val
			}
			_ = tid
			consumed++
		}
	}()
	var want uint64
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= txs; i++ {
		n := rng.Intn(5)
		for j := 0; j < n; j++ {
			v := rng.Uint64() % 1000
			r.Append(uint64(j*8), v)
			want += v
		}
		r.AppendTxEnd(uint64(i))
	}
	wg.Wait()
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// --- Combiner ---

func TestCombinerCoalesces(t *testing.T) {
	c := NewCombiner()
	c.Add(8, 1)
	c.Add(16, 2)
	c.Add(8, 3) // overwrites
	if c.Len() != 2 || c.RawCount() != 3 {
		t.Fatalf("len=%d raw=%d", c.Len(), c.RawCount())
	}
	m := map[uint64]uint64{}
	for _, e := range c.Entries() {
		m[e.Addr] = e.Val
	}
	if m[8] != 3 || m[16] != 2 {
		t.Fatalf("entries = %v", c.Entries())
	}
	c.Reset()
	if c.Len() != 0 || c.RawCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCombinerQuickLastWriteWins(t *testing.T) {
	f := func(writes []struct{ A, V uint8 }) bool {
		c := NewCombiner()
		model := map[uint64]uint64{}
		for _, w := range writes {
			addr := uint64(w.A) * 8
			c.Add(addr, uint64(w.V))
			model[addr] = uint64(w.V)
		}
		if c.Len() != len(model) {
			return false
		}
		for _, e := range c.Entries() {
			if model[e.Addr] != e.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Writer / Scanner ---

const (
	testMeta = 0
	testBase = 64
	testSize = 8192
)

func newLogDev() *pmem.Device {
	return pmem.New(pmem.Config{Size: testBase + testSize})
}

func scanAll(t *testing.T, dev *pmem.Device) ScanResult {
	t.Helper()
	res, err := Scan(dev, testMeta, testBase, testSize)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriterScanRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dev := newLogDev()
		w := NewWriter(dev, testMeta, testBase, testSize, compress)
		var want [][]Entry
		for i := 0; i < 5; i++ {
			g := &Group{MinTid: uint64(i*10 + 1), MaxTid: uint64(i*10 + 9)}
			for j := 0; j <= i*3; j++ {
				g.Entries = append(g.Entries, Entry{Addr: uint64(j * 8), Val: uint64(i*100 + j)})
			}
			w.AppendGroup(g)
			want = append(want, g.Entries)
		}
		dev.Crash() // everything appended must already be durable
		res := scanAll(t, dev)
		if len(res.Groups) != 5 {
			t.Fatalf("compress=%v: got %d groups, want 5", compress, len(res.Groups))
		}
		for i, g := range res.Groups {
			if !reflect.DeepEqual(g.Entries, want[i]) {
				t.Fatalf("group %d entries mismatch: %v != %v", i, g.Entries, want[i])
			}
			if g.MinTid != uint64(i*10+1) || g.MaxTid != uint64(i*10+9) {
				t.Fatalf("group %d tids: %d-%d", i, g.MinTid, g.MaxTid)
			}
			if g.Seq != uint64(i+1) {
				t.Fatalf("group %d seq = %d", i, g.Seq)
			}
		}
	}
}

func TestScanEmptyLog(t *testing.T) {
	dev := newLogDev()
	NewWriter(dev, testMeta, testBase, testSize, false)
	dev.Crash()
	res := scanAll(t, dev)
	if len(res.Groups) != 0 || res.NextPos != 0 || res.NextSeq != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestScanCorruptMetaErrors(t *testing.T) {
	dev := newLogDev()
	// Never initialized as a log, but non-zero junk.
	dev.Store8(0, 12345)
	dev.Persist(0, 8)
	if _, err := Scan(dev, testMeta, testBase, testSize); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

func TestScanDropsTornRecord(t *testing.T) {
	dev := newLogDev()
	w := NewWriter(dev, testMeta, testBase, testSize, false)
	g1 := &Group{MinTid: 1, MaxTid: 1, Entries: []Entry{{8, 1}}}
	w.AppendGroup(g1)
	// Simulate a torn append: write a record but corrupt its payload
	// before "crash" — emulate by appending then flipping a persisted
	// payload byte of the second record.
	g2 := &Group{MinTid: 2, MaxTid: 2, Entries: []Entry{{16, 2}}}
	w.AppendGroup(g2)
	// Corrupt g2's payload directly (persisted).
	addr := testBase + g2.EndPos - 8
	dev.Store8(addr, dev.Load8(addr)^1)
	dev.Persist(addr, 8)
	dev.Crash()

	res := scanAll(t, dev)
	if len(res.Groups) != 1 {
		t.Fatalf("got %d groups, want 1 (torn tail dropped)", len(res.Groups))
	}
	if res.Groups[0].MaxTid != 1 {
		t.Fatalf("wrong surviving group: %+v", res.Groups[0])
	}
}

func TestWriterWrapAround(t *testing.T) {
	dev := newLogDev()
	w := NewWriter(dev, testMeta, testBase, testSize, false)
	// Each group ~ 56 + 10*16 = 216 bytes; push enough to wrap several
	// times, recycling as we go.
	entries := make([]Entry, 10)
	for i := range entries {
		entries[i] = Entry{Addr: uint64(i * 8), Val: uint64(i)}
	}
	var lastEnd, lastSeq uint64
	for i := 1; i <= 200; i++ {
		g := &Group{MinTid: uint64(i), MaxTid: uint64(i), Entries: entries}
		w.AppendGroup(g)
		lastEnd, lastSeq = g.EndPos, g.Seq
		// Recycle immediately: everything replayed.
		w.Recycle(g.EndPos, g.Seq+1, g.MaxTid)
	}
	_ = lastEnd
	dev.Crash()
	res := scanAll(t, dev)
	if len(res.Groups) != 0 {
		t.Fatalf("fully recycled log still has %d groups", len(res.Groups))
	}
	if res.NextSeq != lastSeq+1 {
		t.Fatalf("NextSeq = %d, want %d", res.NextSeq, lastSeq+1)
	}
}

func TestWrapWithLiveRecords(t *testing.T) {
	dev := newLogDev()
	w := NewWriter(dev, testMeta, testBase, testSize, false)
	entries := make([]Entry, 20) // record ~ 56+320 = 376 bytes
	for i := range entries {
		entries[i] = Entry{Addr: uint64(i * 8), Val: uint64(i)}
	}
	// Fill ~70% then recycle, then fill again so live records straddle
	// the wrap point.
	var groups []*Group
	for i := 1; i <= 15; i++ {
		g := &Group{MinTid: uint64(i), MaxTid: uint64(i), Entries: entries}
		w.AppendGroup(g)
		groups = append(groups, g)
	}
	// Recycle the first 12.
	w.Recycle(groups[11].EndPos, groups[11].Seq+1, 12)
	// Append more, wrapping.
	for i := 16; i <= 25; i++ {
		g := &Group{MinTid: uint64(i), MaxTid: uint64(i), Entries: entries}
		w.AppendGroup(g)
		groups = append(groups, g)
	}
	dev.Crash()
	res := scanAll(t, dev)
	// Live: groups 13..25 = 13 groups.
	if len(res.Groups) != 13 {
		t.Fatalf("got %d live groups, want 13", len(res.Groups))
	}
	if res.Groups[0].MinTid != 13 || res.Groups[12].MinTid != 25 {
		t.Fatalf("live range %d..%d", res.Groups[0].MinTid, res.Groups[12].MinTid)
	}
}

func TestStaleRecordNotReplayed(t *testing.T) {
	// After recycling, old records remain as persisted bytes. A scan
	// must not resurrect them (their seq is stale).
	dev := newLogDev()
	w := NewWriter(dev, testMeta, testBase, testSize, false)
	g1 := &Group{MinTid: 1, MaxTid: 1, Entries: []Entry{{8, 111}}}
	w.AppendGroup(g1)
	g2 := &Group{MinTid: 2, MaxTid: 2, Entries: []Entry{{16, 222}}}
	w.AppendGroup(g2)
	w.Recycle(g2.EndPos, g2.Seq+1, 2) // all replayed
	dev.Crash()
	res := scanAll(t, dev)
	if len(res.Groups) != 0 {
		t.Fatalf("stale records resurrected: %+v", res.Groups)
	}
}

func TestResumeAfterScan(t *testing.T) {
	dev := newLogDev()
	w := NewWriter(dev, testMeta, testBase, testSize, false)
	g := &Group{MinTid: 1, MaxTid: 3, Entries: []Entry{{8, 1}, {16, 2}}}
	w.AppendGroup(g)
	dev.Crash()

	res := scanAll(t, dev)
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	w2 := Resume(dev, testMeta, testBase, testSize, false, res, 3)
	g2 := &Group{MinTid: 4, MaxTid: 4, Entries: []Entry{{24, 3}}}
	w2.AppendGroup(g2)
	dev.Crash()

	res2 := scanAll(t, dev)
	if len(res2.Groups) != 1 {
		t.Fatalf("after resume: groups = %d, want 1 (old one recycled by resume)", len(res2.Groups))
	}
	if res2.Groups[0].MinTid != 4 {
		t.Fatalf("wrong group: %+v", res2.Groups[0])
	}
}

func TestCompressedGroupsSmaller(t *testing.T) {
	mk := func(compress bool) uint64 {
		dev := newLogDev()
		w := NewWriter(dev, testMeta, testBase, testSize, compress)
		entries := make([]Entry, 100)
		for i := range entries {
			entries[i] = Entry{Addr: uint64(i%10) * 8, Val: 7} // highly compressible
		}
		g := &Group{MinTid: 1, MaxTid: 1, Entries: entries}
		w.AppendGroup(g)
		w.Recycle(g.EndPos, g.Seq+1, g.MaxTid)
		return w.BytesAppended()
	}
	plain, comp := mk(false), mk(true)
	if comp >= plain {
		t.Fatalf("compression did not shrink log: %d >= %d", comp, plain)
	}
}

func TestQuickWriterScanRoundTrip(t *testing.T) {
	f := func(seed int64, compress bool) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := newLogDev()
		w := NewWriter(dev, testMeta, testBase, testSize, compress)
		n := 1 + rng.Intn(6)
		var want [][]Entry
		tid := uint64(1)
		for i := 0; i < n; i++ {
			cnt := rng.Intn(30)
			es := make([]Entry, cnt)
			for j := range es {
				es[j] = Entry{Addr: uint64(rng.Intn(1000)) * 8, Val: rng.Uint64()}
			}
			g := &Group{MinTid: tid, MaxTid: tid + uint64(cnt), Entries: es}
			tid += uint64(cnt) + 1
			w.AppendGroup(g)
			want = append(want, es)
		}
		dev.Crash()
		res, err := Scan(dev, testMeta, testBase, testSize)
		if err != nil || len(res.Groups) != n {
			return false
		}
		for i, g := range res.Groups {
			if len(g.Entries) != len(want[i]) {
				return false
			}
			for j := range g.Entries {
				if g.Entries[j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- Entry serialization ---

func TestEntryCodecRoundTrip(t *testing.T) {
	f := func(addrs, vals []uint64) bool {
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		entries := make([]Entry, n)
		for i := 0; i < n; i++ {
			entries[i] = Entry{Addr: addrs[i], Val: vals[i]}
		}
		b := AppendEntries(nil, entries)
		got, ok := DecodeEntries(b)
		if !ok || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntriesRejectsBadLength(t *testing.T) {
	if _, ok := DecodeEntries(make([]byte, 17)); ok {
		t.Fatal("accepted non-multiple length")
	}
}

// BenchmarkCombiner drives a steady stream of groups through one
// combiner: after warmup the epoch-stamped index reuses its map and
// entry slice, so the per-group allocation count must be zero.
func BenchmarkCombiner(b *testing.B) {
	c := NewCombiner()
	rng := rand.New(rand.NewSource(7))
	group := make([]Entry, 256)
	for i := range group {
		// ~25% same-address overlap so combination does real work.
		group[i] = Entry{Addr: uint64(rng.Intn(192)) * 8, Val: rng.Uint64()}
	}
	// Warm up: grow the map and entry slice to steady-state capacity.
	c.AddAll(group)
	c.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddAll(group)
		c.Reset()
	}
	if allocs := testing.AllocsPerRun(100, func() {
		c.AddAll(group)
		c.Reset()
	}); allocs != 0 {
		b.Fatalf("combiner allocates %.1f times per group in steady state, want 0", allocs)
	}
}
