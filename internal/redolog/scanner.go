package redolog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dudetm/internal/lz4"
	"dudetm/internal/pmem"
)

// ScanResult is the outcome of scanning one persistent log after a crash.
type ScanResult struct {
	// Groups are the valid, complete groups in append order. Incomplete
	// or torn trailing records are dropped (their transactions were
	// never acknowledged as durable).
	Groups []Group
	// NextPos and NextSeq are where a resumed writer continues.
	NextPos uint64
	NextSeq uint64
	// ReproTid is the global Reproduce watermark persisted at this
	// log's last recycle; recovery anchors its replay at the maximum
	// across all logs.
	ReproTid uint64
	// Torn reports that the scan stopped at a half-written record — one
	// carrying the expected sequence number but failing validation — the
	// signature of a crash mid-append rather than a clean log end
	// (sequence numbers start at 1, so zeroed never-written space can
	// never match the expected sequence).
	Torn bool
}

// Scan reads the persistent log at dev[base:base+size) with metadata at
// meta, returning every valid group that has not been recycled. It stops
// at the first record that is torn (bad checksum), stale (wrong sequence
// number), or malformed — everything after that point was not part of
// the durable prefix.
func Scan(dev *pmem.Device, meta, base, size uint64) (ScanResult, error) {
	var mb [MetaSize]byte
	dev.Load(meta, mb[:])
	headPos := binary.LittleEndian.Uint64(mb[0:])
	headSeq := binary.LittleEndian.Uint64(mb[8:])
	reproTid := binary.LittleEndian.Uint64(mb[16:])
	crc := binary.LittleEndian.Uint64(mb[24:])
	if uint64(crc32.Checksum(mb[:24], crcTable)) != crc {
		return ScanResult{}, fmt.Errorf("redolog: corrupt log metadata at %#x", meta)
	}

	res := ScanResult{NextPos: headPos, NextSeq: headSeq, ReproTid: reproTid}
	pos, seq := headPos, headSeq
	hdr := make([]byte, headerSize)
	// The log holds at most size bytes of live records; bound the walk.
	for scanned := uint64(0); scanned < size; {
		idx := pos % size
		if size-idx < 8 {
			break // cannot even hold a wrap marker; malformed
		}
		first := dev.Load8(base + idx)
		if first == wrapMarker {
			skip := size - idx
			pos += skip
			scanned += skip
			continue
		}
		if size-idx < headerSize {
			break
		}
		dev.Load(base+idx, hdr)
		payloadLen := binary.LittleEndian.Uint64(hdr[0:])
		uncomp := binary.LittleEndian.Uint64(hdr[8:])
		recSeq := binary.LittleEndian.Uint64(hdr[16:])
		minTid := binary.LittleEndian.Uint64(hdr[24:])
		maxTid := binary.LittleEndian.Uint64(hdr[32:])
		flags := binary.LittleEndian.Uint64(hdr[40:])
		wantCRC := binary.LittleEndian.Uint64(hdr[48:])

		// Bound fields before arithmetic: a torn header can hold garbage.
		if payloadLen >= size || uncomp > size<<8 || uncomp%EntrySize != 0 {
			res.Torn = recSeq == seq
			break
		}
		padded := (payloadLen + 7) &^ 7
		if recSeq != seq {
			break // stale record: clean end of the durable prefix
		}
		if headerSize+padded > size-idx {
			res.Torn = true
			break
		}
		payload := make([]byte, payloadLen)
		dev.Load(base+idx+headerSize, payload)
		crc := crc32.Checksum(hdr[:48], crcTable)
		crc = crc32.Update(crc, crcTable, payload)
		if uint64(crc) != wantCRC {
			res.Torn = true
			break
		}
		body := payload
		if flags&flagCompressed != 0 {
			dec, err := lz4.Decompress(body, int(uncomp))
			if err != nil {
				res.Torn = true
				break
			}
			body = dec
		} else if uncomp != payloadLen {
			res.Torn = true
			break
		}
		entries, ok := DecodeEntries(body)
		if !ok {
			res.Torn = true
			break
		}
		recSize := headerSize + padded
		res.Groups = append(res.Groups, Group{
			Seq:     recSeq,
			MinTid:  minTid,
			MaxTid:  maxTid,
			Entries: entries,
			EndPos:  pos + recSize,
		})
		pos += recSize
		scanned += recSize
		seq++
	}
	res.NextPos = pos
	res.NextSeq = seq
	return res, nil
}

// Resume creates a writer that continues an existing log after Scan: the
// log restarts empty at res.NextPos with sequence res.NextSeq, so stale
// pre-crash records can never be confused with new ones.
// reproTid is the post-recovery global watermark to persist.
func Resume(dev *pmem.Device, meta, base, size uint64, compress bool, res ScanResult, reproTid uint64) *Writer {
	return resumeWriter(dev, meta, base, size, compress, res.NextPos, res.NextSeq, reproTid)
}
