package redolog

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Ring is the fixed-length circular volatile redo-log buffer of one
// Perform thread (§3.2): a single producer (the transaction thread)
// appends entries and transaction-end marks; a single consumer (the
// Persist merger) reads complete transactions.
//
// When the ring is full the producer blocks until the consumer frees
// space — the back-pressure the paper describes ("if the buffer is full,
// the Perform thread will be blocked"). The DudeTM-Inf configuration
// simply uses a ring large enough never to fill during a run.
type Ring struct {
	buf  []Entry
	mask uint64

	head atomic.Uint64 // consumer position (monotonic)

	// Producer-private state.
	tail    uint64
	txStart uint64

	// txIndex is a parallel SPSC queue of (tid, endPos) pairs published
	// at each end mark, letting the consumer peek the next transaction's
	// ID in O(1) instead of scanning for the mark.
	txIndex []txRef
	txHead  atomic.Uint64
	txTail  atomic.Uint64
	_pad    [4]uint64
}

type txRef struct {
	tid    uint64
	endPos uint64 // ring position just past the end mark
}

// NewRing creates a ring with the given entry capacity (rounded up to a
// power of two; the paper's default is one million entries per thread).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	c := uint64(1)
	for c < uint64(capacity) {
		c <<= 1
	}
	return &Ring{
		buf:     make([]Entry, c),
		mask:    c - 1,
		txIndex: make([]txRef, c),
	}
}

// Cap returns the entry capacity of the ring.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of occupied entry slots (including unpublished
// ones); approximate under concurrency.
func (r *Ring) Len() int { return int(r.tail - r.head.Load()) }

func (r *Ring) waitSpace() {
	spins := 0
	for r.tail-r.head.Load() >= uint64(len(r.buf)) {
		spins++
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}
}

// Append records a transactional write (dtmWrite). Producer only; blocks
// while the ring is full.
func (r *Ring) Append(addr, val uint64) {
	r.waitSpace()
	r.buf[r.tail&r.mask] = Entry{Addr: addr, Val: val}
	r.tail++
}

// AppendTxEnd appends the end mark of a committed transaction (dtmEnd)
// and publishes the transaction to the consumer. Producer only.
func (r *Ring) AppendTxEnd(tid uint64) {
	r.waitSpace()
	r.buf[r.tail&r.mask] = Entry{Addr: txEndAddr, Val: tid}
	r.tail++
	// The index store below is the publish point: the consumer acquires
	// txTail before touching buf, ordering these plain writes.
	t := r.txTail.Load()
	r.txIndex[t&r.mask] = txRef{tid: tid, endPos: r.tail}
	r.txTail.Store(t + 1)
	r.txStart = r.tail
}

// PopToLastTx discards the entries of the in-flight transaction
// (dtmAbort / a conflict retry). Producer only.
func (r *Ring) PopToLastTx() {
	r.tail = r.txStart
}

// PeekTid returns the commit ID of the next complete transaction without
// consuming it. Consumer only.
func (r *Ring) PeekTid() (uint64, bool) {
	h := r.txHead.Load()
	if h == r.txTail.Load() {
		return 0, false
	}
	return r.txIndex[h&r.mask].tid, true
}

// ConsumeTx appends the entries of the next complete transaction to dst
// and returns (entries, tid). It must only be called after PeekTid
// reported a transaction. Consumer only.
func (r *Ring) ConsumeTx(dst []Entry) ([]Entry, uint64) {
	h := r.txHead.Load()
	if h == r.txTail.Load() {
		panic("redolog: ConsumeTx without a pending transaction")
	}
	ref := r.txIndex[h&r.mask]
	pos := r.head.Load()
	for ; pos < ref.endPos-1; pos++ {
		dst = append(dst, r.buf[pos&r.mask])
	}
	// Free the slots (including the end mark), then pop the index.
	r.head.Store(ref.endPos)
	r.txHead.Store(h + 1)
	return dst, ref.tid
}
