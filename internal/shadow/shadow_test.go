package shadow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dudetm/internal/word"
)

// fakeSource is an in-DRAM stand-in for the persistent data region with a
// settable Reproduce watermark.
type fakeSource struct {
	mu         sync.Mutex
	data       []byte
	pageSize   uint64
	reproduced atomic.Uint64
}

func newFakeSource(size, pageSize uint64) *fakeSource {
	return &fakeSource{data: word.Alloc(size), pageSize: pageSize}
}

func (s *fakeSource) ReadPage(page uint64, dst []byte) {
	s.mu.Lock()
	copy(dst, s.data[page*s.pageSize:(page+1)*s.pageSize])
	s.mu.Unlock()
}

func (s *fakeSource) Reproduced() uint64 { return s.reproduced.Load() }

// apply emulates the Reproduce step: write the value into the persistent
// copy, then advance the watermark.
func (s *fakeSource) apply(addr, val, tid uint64) {
	s.mu.Lock()
	word.Store(s.data, addr, val)
	s.mu.Unlock()
	for {
		cur := s.reproduced.Load()
		if cur >= tid || s.reproduced.CompareAndSwap(cur, tid) {
			return
		}
	}
}

const (
	tPageSize = 512
	tPages    = 64
	tSize     = tPageSize * tPages
)

func spaces(shadowPages uint64) map[string]Space {
	mk := func(mode Mode) Space {
		return NewPaged(PagedConfig{
			Size:          tSize,
			ShadowBytes:   shadowPages * tPageSize,
			PageSize:      tPageSize,
			Mode:          mode,
			DisableDelays: true,
		}, newFakeSource(tSize, tPageSize))
	}
	return map[string]Space{
		"flat": NewFlat(tSize, nil, tPageSize),
		"sw":   mk(SWPaging),
		"hw":   mk(HWPaging),
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for name, sp := range spaces(tPages) {
		t.Run(name, func(t *testing.T) {
			sp.Store8(0, 1)
			sp.Store8(tSize-8, 2)
			sp.Store8(tPageSize*3+16, 3)
			if sp.Load8(0) != 1 || sp.Load8(tSize-8) != 2 || sp.Load8(tPageSize*3+16) != 3 {
				t.Fatal("round trip failed")
			}
		})
	}
}

func TestFlatInitFromSource(t *testing.T) {
	src := newFakeSource(tSize, tPageSize)
	word.Store(src.data, 128, 77)
	f := NewFlat(tSize, src, tPageSize)
	if f.Load8(128) != 77 {
		t.Fatal("flat space not initialized from source")
	}
}

func TestPagedFaultsInFromSource(t *testing.T) {
	for _, mode := range []Mode{SWPaging, HWPaging} {
		src := newFakeSource(tSize, tPageSize)
		word.Store(src.data, tPageSize*5+8, 123)
		p := NewPaged(PagedConfig{
			Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
			Mode: mode, DisableDelays: true,
		}, src)
		if v := p.Load8(tPageSize*5 + 8); v != 123 {
			t.Fatalf("mode %d: got %d", mode, v)
		}
		if p.Stats().Faults != 1 {
			t.Fatalf("faults = %d", p.Stats().Faults)
		}
	}
}

func TestEvictionDiscardsAndRefaults(t *testing.T) {
	for _, mode := range []Mode{SWPaging, HWPaging} {
		src := newFakeSource(tSize, tPageSize)
		p := NewPaged(PagedConfig{
			Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
			Mode: mode, DisableDelays: true,
		}, src)
		// Commit a write on page 0 and reproduce it to the source.
		p.Store8(8, 42)
		pg := p.PinWritePage(8)
		src.apply(8, 42, 1)
		p.CommitPages([]uint64{pg}, 1)
		// Touch more pages than there are frames to force eviction.
		for page := uint64(1); page < tPages; page++ {
			p.Load8(page * tPageSize)
		}
		if p.Stats().Evictions == 0 {
			t.Fatalf("mode %d: no evictions with %d pages over 8 frames", mode, tPages)
		}
		// Page 0 was discarded; refault must read the reproduced value.
		if v := p.Load8(8); v != 42 {
			t.Fatalf("mode %d: refaulted value %d, want 42", mode, v)
		}
	}
}

func TestSwapInWaitsForReproduce(t *testing.T) {
	for _, mode := range []Mode{SWPaging, HWPaging} {
		src := newFakeSource(tSize, tPageSize)
		p := NewPaged(PagedConfig{
			Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
			Mode: mode, DisableDelays: true,
		}, src)
		// Write page 0, commit as tid 5 — but do not reproduce yet.
		p.Store8(8, 42)
		pg := p.PinWritePage(8)
		p.CommitPages([]uint64{pg}, 5)
		// Apply pressure until page 0 is actually evicted.
		for round := 0; slotFrame(p.slots[0].Load()) != 0; round++ {
			if round > 100 {
				t.Fatalf("mode %d: page 0 never evicted", mode)
			}
			for page := uint64(1); page < tPages; page++ {
				p.Load8(page * tPageSize)
			}
		}
		// Refault must block until the source catches up.
		done := make(chan uint64, 1)
		go func() { done <- p.Load8(8) }()
		select {
		case v := <-done:
			t.Fatalf("mode %d: swap-in returned %d before reproduce", mode, v)
		case <-time.After(20 * time.Millisecond):
		}
		src.apply(8, 42, 5)
		select {
		case v := <-done:
			if v != 42 {
				t.Fatalf("mode %d: got %d", mode, v)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("mode %d: swap-in never completed", mode)
		}
		if p.Stats().SwapInWaits == 0 {
			t.Fatalf("mode %d: wait not counted", mode)
		}
	}
}

func TestPinnedPageSurvivesPressure(t *testing.T) {
	for _, mode := range []Mode{SWPaging, HWPaging} {
		src := newFakeSource(tSize, tPageSize)
		p := NewPaged(PagedConfig{
			Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
			Mode: mode, DisableDelays: true,
		}, src)
		p.Store8(16, 7) // uncommitted write on page 0
		pg := p.PinWritePage(16)
		// Pressure: cycle through all other pages repeatedly.
		for round := 0; round < 3; round++ {
			for page := uint64(1); page < tPages; page++ {
				p.Load8(page * tPageSize)
			}
		}
		// The uncommitted value must still be visible (page never
		// evicted, since eviction would discard it and the source has
		// no copy).
		if v := p.Load8(16); v != 7 {
			t.Fatalf("mode %d: pinned page lost uncommitted write: %d", mode, v)
		}
		p.ReleasePages([]uint64{pg})
	}
}

func TestCommitPagesRaisesTouchMonotonically(t *testing.T) {
	src := newFakeSource(tSize, tPageSize)
	p := NewPaged(PagedConfig{
		Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
		Mode: SWPaging, DisableDelays: true,
	}, src)
	pg := p.PinWritePage(0)
	p.CommitPages([]uint64{pg}, 10)
	pg = p.PinWritePage(0)
	p.CommitPages([]uint64{pg}, 3) // lower tid must not regress touch
	if got := p.touch[0].Load(); got != 10 {
		t.Fatalf("touch = %d, want 10", got)
	}
}

func TestConfigValidation(t *testing.T) {
	src := newFakeSource(tSize, tPageSize)
	for _, cfg := range []PagedConfig{
		{Size: tSize, ShadowBytes: 2 * tPageSize, PageSize: tPageSize},     // too few frames
		{Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: 1000},          // not power of two
		{Size: tSize + 8, ShadowBytes: 8 * tPageSize, PageSize: tPageSize}, // not page multiple
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			NewPaged(cfg, src)
		}()
	}
}

func TestConcurrentPagingStress(t *testing.T) {
	// Each worker owns a disjoint set of pages and increments a counter
	// word on each, emulating commit+reproduce immediately. Any paging
	// bug (lost pin, torn optimistic read, frame reuse corruption)
	// breaks the final counts.
	for _, mode := range []Mode{SWPaging, HWPaging} {
		src := newFakeSource(tSize, tPageSize)
		p := NewPaged(PagedConfig{
			Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
			Mode: mode, DisableDelays: true,
		}, src)
		const workers = 4
		const iters = 800
		var tidGen atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := uint64(w)*2654435761 + 12345
				for i := 0; i < iters; i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					page := (uint64(w) + workers*(rng>>40)%((tPages)/workers)) % tPages
					page = uint64(w) + workers*((rng>>40)%(tPages/workers))
					addr := page * tPageSize
					pg := p.PinWritePage(addr)
					v := p.Load8(addr)
					p.Store8(addr, v+1)
					tid := tidGen.Add(1)
					src.apply(addr, v+1, tid)
					p.CommitPages([]uint64{pg}, tid)
				}
			}(w)
		}
		wg.Wait()
		var total uint64
		for page := uint64(0); page < tPages; page++ {
			total += p.Load8(page * tPageSize)
		}
		if total != workers*iters {
			t.Fatalf("mode %d: total increments %d, want %d", mode, total, workers*iters)
		}
	}
}

func TestHWShootdownDelayApplied(t *testing.T) {
	src := newFakeSource(tSize, tPageSize)
	p := NewPaged(PagedConfig{
		Size: tSize, ShadowBytes: 8 * tPageSize, PageSize: tPageSize,
		Mode: HWPaging, ShootdownDelay: 2 * time.Millisecond,
	}, src)
	// Fill all frames, then cause one eviction and time it.
	for page := uint64(0); page < 8; page++ {
		p.Load8(page * tPageSize)
	}
	start := time.Now()
	p.Load8(20 * tPageSize) // must evict
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("eviction took %v, want >= 2ms shootdown", el)
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
}
