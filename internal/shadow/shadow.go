// Package shadow implements DudeTM's shadow memory: the shared,
// cross-transaction volatile mirror of persistent memory that the
// Perform step executes on (§3.1, §4.3).
//
// Three configurations are provided:
//
//   - FlatSpace: shadow memory as large as persistent data; the
//     address mapping is the identity ("a constant offset" in the
//     paper). No paging.
//   - PagedSpace in SWPaging mode: a software page table — every access
//     translates through the table and takes a reference on the page, the
//     exact per-access overhead the paper attributes to software paging
//     ("at least two memory accesses per address translation" plus a
//     compare-and-swap on the page reference).
//   - PagedSpace in HWPaging mode: simulates Dune/VT-x hardware paging —
//     reads are optimistic (a versioned page-table word is sampled before
//     and after the uninstrumented load, standing in for a free TLB
//     translation), while evictions pay an explicit TLB-shootdown stall,
//     the cost profile that makes hardware paging win with large shadow
//     memory and lose as eviction rate grows (Figure 4).
//
// Pages are never written back on eviction — they are discarded, because
// every update is captured in the redo log. Swapping a page in must wait
// until the Reproduce step has replayed all transactions that touched it
// (the page's touching ID, §4.3).
package shadow

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/word"
)

// Space is the shadow memory seen by DudeTM: transactional word access
// plus the page-pinning hooks the durable-transaction wrapper uses to
// keep a transaction's written pages resident until commit.
type Space interface {
	// Load8 and Store8 access an 8-aligned word at a pool-logical
	// address (they satisfy stm.Space).
	Load8(addr uint64) uint64
	Store8(addr, val uint64)

	// PinWritePage pins the page containing addr and returns its page
	// index. The caller must balance it with CommitPages or
	// ReleasePages. Pinning the same page multiple times is allowed.
	PinWritePage(addr uint64) uint64

	// CommitPages records tid as the touching ID of the given pages and
	// releases one pin on each.
	CommitPages(pages []uint64, tid uint64)

	// ReleasePages releases one pin on each page without updating
	// touching IDs (abort path).
	ReleasePages(pages []uint64)

	// Stats returns paging counters (zero for FlatSpace).
	Stats() Stats
}

// Source is what a paged space swaps pages in from: the persistent data
// region, plus the Reproduce progress needed for safe swap-in.
type Source interface {
	// ReadPage copies the persistent contents of page into dst.
	ReadPage(page uint64, dst []byte)
	// Reproduced returns the largest transaction ID whose updates have
	// been replayed to persistent data.
	Reproduced() uint64
}

// Stats counts paging activity.
type Stats struct {
	Faults      uint64 // page faults (swap-ins)
	Evictions   uint64 // pages discarded to free a frame
	SwapInWaits uint64 // faults that had to wait for Reproduce
}

// --- FlatSpace ---

// FlatSpace is a full-size shadow memory with identity mapping.
type FlatSpace struct {
	buf []byte
}

// NewFlat creates a flat shadow space of size bytes, initialized from
// src (pass nil to start zeroed).
func NewFlat(size uint64, src Source, pageSize uint64) *FlatSpace {
	f := &FlatSpace{buf: word.Alloc(size)}
	if src != nil {
		for page := uint64(0); page*pageSize < size; page++ {
			src.ReadPage(page, f.buf[page*pageSize:(page+1)*pageSize])
		}
	}
	return f
}

// Load8 implements Space.
func (f *FlatSpace) Load8(addr uint64) uint64 { return word.Load(f.buf, addr) }

// Store8 implements Space.
func (f *FlatSpace) Store8(addr, val uint64) { word.Store(f.buf, addr, val) }

// PinWritePage implements Space (no-op for a flat space).
func (f *FlatSpace) PinWritePage(addr uint64) uint64 { return 0 }

// CommitPages implements Space (no-op).
func (f *FlatSpace) CommitPages(pages []uint64, tid uint64) {}

// ReleasePages implements Space (no-op).
func (f *FlatSpace) ReleasePages(pages []uint64) {}

// Stats implements Space.
func (f *FlatSpace) Stats() Stats { return Stats{} }

// --- PagedSpace ---

// Mode selects the paging implementation a PagedSpace simulates.
type Mode int

const (
	// SWPaging is software paging: table lookup + page reference count
	// on every access, cheap eviction.
	SWPaging Mode = iota
	// HWPaging simulates hardware (Dune/VT-x) paging: optimistic reads
	// with no reference counting, but every eviction pays a simulated
	// TLB-shootdown stall.
	HWPaging
)

// PagedConfig configures a PagedSpace.
type PagedConfig struct {
	// Size is the logical (persistent data) size in bytes.
	Size uint64
	// ShadowBytes is the DRAM budget; Size/PageSize frames hold the hot
	// set. Must be at least 8 pages.
	ShadowBytes uint64
	// PageSize is the paging granularity (default 4096).
	PageSize uint64
	// Mode selects software or simulated-hardware paging.
	Mode Mode
	// ShootdownDelay is the simulated cost of a TLB shootdown on
	// eviction in HWPaging mode (default 4us; the paper measures a VM
	// exit plus IPIs to all cores).
	ShootdownDelay time.Duration
	// DisableDelays turns off the shootdown stall (unit tests).
	DisableDelays bool
}

// Page-table slot packing: [frame+1 : 28 bits][version : 20][refs : 16].
const (
	refBits   = 16
	verBits   = 20
	refMask   = 1<<refBits - 1
	verShift  = refBits
	verMask   = (1<<verBits - 1) << verShift
	frmShift  = refBits + verBits
	maxFrames = 1<<28 - 2
)

func slotFrame(s uint64) uint64 { return s >> frmShift } // frame+1; 0 = absent
func slotRefs(s uint64) uint64  { return s & refMask }

// bumpVer returns s with the version field incremented (wrapping).
func bumpVer(s uint64) uint64 {
	return (s &^ uint64(verMask)) | ((s + 1<<verShift) & verMask)
}

// PagedSpace is a demand-paged shadow memory over a Source.
type PagedSpace struct {
	cfg    PagedConfig
	src    Source
	slots  []atomic.Uint64 // one per logical page
	touch  []atomic.Uint64 // touching ID per logical page
	frames [][]byte

	freeMu sync.Mutex
	free   []uint64 // free frame indices

	faultLocks [256]sync.Mutex
	hand       atomic.Uint64 // clock hand for eviction

	faults    atomic.Uint64
	evictions atomic.Uint64
	waits     atomic.Uint64

	pageShift uint
	pageMask  uint64
}

// NewPaged creates a demand-paged shadow space.
func NewPaged(cfg PagedConfig, src Source) *PagedSpace {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.PageSize&(cfg.PageSize-1) != 0 {
		panic("shadow: page size must be a power of two")
	}
	if cfg.ShootdownDelay == 0 {
		cfg.ShootdownDelay = 4 * time.Microsecond
	}
	if cfg.Size%cfg.PageSize != 0 {
		panic("shadow: size must be a multiple of page size")
	}
	nFrames := cfg.ShadowBytes / cfg.PageSize
	if nFrames < 8 {
		panic("shadow: need at least 8 frames")
	}
	if nFrames > maxFrames {
		panic("shadow: too many frames")
	}
	nPages := cfg.Size / cfg.PageSize
	p := &PagedSpace{
		cfg:    cfg,
		src:    src,
		slots:  make([]atomic.Uint64, nPages),
		touch:  make([]atomic.Uint64, nPages),
		frames: make([][]byte, nFrames),
	}
	shift := uint(0)
	for 1<<shift != cfg.PageSize {
		shift++
	}
	p.pageShift = shift
	p.pageMask = cfg.PageSize - 1
	for i := uint64(0); i < nFrames; i++ {
		p.frames[i] = word.Alloc(cfg.PageSize)
		p.free = append(p.free, i)
	}
	return p
}

// Stats implements Space.
func (p *PagedSpace) Stats() Stats {
	return Stats{
		Faults:      p.faults.Load(),
		Evictions:   p.evictions.Load(),
		SwapInWaits: p.waits.Load(),
	}
}

func (p *PagedSpace) pageOf(addr uint64) uint64 { return addr >> p.pageShift }

// acquire pins the page containing addr (refs+1) and returns its frame.
// This is the software-paging access path: a table load plus a CAS.
func (p *PagedSpace) acquire(page uint64) uint64 {
	slot := &p.slots[page]
	for {
		s := slot.Load()
		if f := slotFrame(s); f != 0 {
			if slotRefs(s) == refMask {
				runtime.Gosched() // pathological pin pile-up
				continue
			}
			if slot.CompareAndSwap(s, s+1) {
				return f - 1
			}
			continue
		}
		p.fault(page)
	}
}

func (p *PagedSpace) release(page uint64) {
	p.slots[page].Add(^uint64(0)) // refs-1
}

// Load8 implements Space.
func (p *PagedSpace) Load8(addr uint64) uint64 {
	page := p.pageOf(addr)
	off := addr & p.pageMask
	if p.cfg.Mode == HWPaging {
		// Optimistic read: sample the versioned slot, do the plain
		// load (the "TLB hit"), and validate frame+version. A frame
		// reused mid-read changes the version and the value is retried.
		slot := &p.slots[page]
		for {
			s := slot.Load()
			f := slotFrame(s)
			if f == 0 {
				p.fault(page)
				continue
			}
			v := word.Load(p.frames[f-1], off)
			if slot.Load()&^uint64(refMask) == s&^uint64(refMask) {
				return v
			}
		}
	}
	f := p.acquire(page)
	v := word.Load(p.frames[f], off)
	p.release(page)
	return v
}

// Store8 implements Space. Stores pin the page in both modes (a store
// into a reused frame would corrupt an unrelated page).
func (p *PagedSpace) Store8(addr, val uint64) {
	page := p.pageOf(addr)
	f := p.acquire(page)
	word.Store(p.frames[f], addr&p.pageMask, val)
	p.release(page)
}

// PinWritePage implements Space.
func (p *PagedSpace) PinWritePage(addr uint64) uint64 {
	page := p.pageOf(addr)
	p.acquire(page)
	return page
}

// CommitPages implements Space: raise each page's touching ID to tid and
// drop the write pin.
func (p *PagedSpace) CommitPages(pages []uint64, tid uint64) {
	for _, page := range pages {
		t := &p.touch[page]
		for {
			cur := t.Load()
			if cur >= tid || t.CompareAndSwap(cur, tid) {
				break
			}
		}
		p.release(page)
	}
}

// ReleasePages implements Space.
func (p *PagedSpace) ReleasePages(pages []uint64) {
	for _, page := range pages {
		p.release(page)
	}
}

// fault swaps the page in, evicting a victim if no frame is free. Safe
// swap-in (§4.3): if the page was modified by transactions Reproduce has
// not replayed yet, wait for Reproduce to catch up before reading the
// persistent copy.
func (p *PagedSpace) fault(page uint64) {
	lk := &p.faultLocks[page%uint64(len(p.faultLocks))]
	lk.Lock()
	defer lk.Unlock()
	if slotFrame(p.slots[page].Load()) != 0 {
		return // another thread faulted it in
	}
	frame := p.allocFrame()

	if touch := p.touch[page].Load(); p.src.Reproduced() < touch {
		p.waits.Add(1)
		spins := 0
		for p.src.Reproduced() < touch {
			spins++
			if spins < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(5 * time.Microsecond)
			}
		}
	}
	p.src.ReadPage(page, p.frames[frame])
	p.faults.Add(1)

	slot := &p.slots[page]
	for {
		s := slot.Load() // frame 0, refs may not be 0? absent => refs 0
		ns := bumpVer(s) | (frame+1)<<frmShift
		if slot.CompareAndSwap(s, ns) {
			return
		}
	}
}

// allocFrame pops a free frame or evicts an unpinned resident page.
func (p *PagedSpace) allocFrame() uint64 {
	p.freeMu.Lock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		p.freeMu.Unlock()
		return f
	}
	p.freeMu.Unlock()

	// Clock sweep for a resident, unpinned victim.
	n := uint64(len(p.slots))
	for attempt := uint64(0); ; attempt++ {
		page := p.hand.Add(1) % n
		slot := &p.slots[page]
		s := slot.Load()
		f := slotFrame(s)
		if f == 0 || slotRefs(s) != 0 {
			if attempt > 0 && attempt%(8*n) == 0 {
				// Every frame pinned: misconfiguration (shadow memory
				// smaller than the working set of in-flight writes).
				panic(fmt.Sprintf("shadow: no evictable page after %d probes", attempt))
			}
			continue
		}
		if !slot.CompareAndSwap(s, bumpVer(s)&^(uint64(maxFrames+1)<<frmShift)) {
			continue
		}
		p.evictions.Add(1)
		if p.cfg.Mode == HWPaging && !p.cfg.DisableDelays {
			// TLB shootdown: a VM exit plus IPIs stall the evictor.
			spinWait(p.cfg.ShootdownDelay)
		}
		return f - 1
	}
}

func spinWait(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}
