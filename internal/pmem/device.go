// Package pmem simulates a byte-addressable non-volatile memory device.
//
// Real persistent memory exposes ordinary loads and stores; stores become
// durable only after the affected cache lines are written back (CLWB /
// CLFLUSHOPT) and ordered by a fence (SFENCE). Portable Go offers no control
// over the CPU cache, so this package models the cache explicitly: every
// store lands in a simulated volatile cache (per-line dirty tracking), and
// only FlushRange followed by Fence makes data durable. Crash discards all
// non-persisted lines, reverting them to their last persisted contents,
// which makes crash-consistency protocols testable instead of assumed.
//
// The device also models the performance of persist barriers the same way
// the DudeTM paper's evaluation does (§5.1): a synchronous persist of a
// batch of writes stalls the caller for
//
//	max(WriteLatency, totalBytes/Bandwidth)
//
// and a persist of a single small write stalls for WriteLatency.
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/word"
)

// LineSize is the cache-line granularity of flushes, matching x86.
const LineSize = 64

const lineShift = 6

// numShards shards the dirty-line bookkeeping to reduce contention.
const numShards = 256

// Config describes a simulated device.
type Config struct {
	// Size is the capacity of the device in bytes. It is rounded up to a
	// multiple of LineSize.
	Size uint64

	// WriteLatency is the stall applied to each persist barrier,
	// modelling NVM write latency. The paper uses 1000 and 3500 CPU
	// cycles at 3.4 GHz; see Latency1000 and Latency3500.
	WriteLatency time.Duration

	// Bandwidth is the sustained write bandwidth in bytes per second used
	// for batched persists. Zero means unlimited.
	Bandwidth float64

	// DelayEnabled turns the timing model on. When false, persist
	// barriers are free (useful for unit tests).
	DelayEnabled bool
}

// Latency presets matching the paper's emulation (3.4 GHz clock).
const (
	// Latency1000 is 1000 cycles at 3.4 GHz, the paper's optimistic
	// future-NVM write latency (about 300 ns).
	Latency1000 = 294 * time.Nanosecond
	// Latency3500 is 3500 cycles at 3.4 GHz, the paper's PCM-like write
	// latency (about 1 us).
	Latency3500 = 1029 * time.Nanosecond
)

// GB expresses bandwidths in the units the paper sweeps (GB/s).
const GB = float64(1 << 30)

// Stats is a snapshot of device activity counters.
type Stats struct {
	// Stores counts store operations issued to the device.
	Stores uint64
	// BytesStored counts bytes written by stores (durable or not).
	BytesStored uint64
	// BytesFlushed counts bytes of dirty lines made durable; this is the
	// NVM write traffic the paper reports.
	BytesFlushed uint64
	// LinesFlushed counts dirty cache lines written back.
	LinesFlushed uint64
	// Fences counts persist barriers.
	Fences uint64
	// DelayNanos is the total simulated stall time in nanoseconds.
	DelayNanos uint64
}

// Region names a sub-range of the device for per-region accounting:
// the pool layout registers its header, log, flight-recorder and data
// regions so flush/fence/byte traffic can be attributed to each.
type Region struct {
	Name string
	Addr uint64
	Size uint64
}

// RegionStats is the per-region slice of the activity counters. A fence
// is attributed to a region when the flush traffic it orders touched
// that region (Persist, or a Batch whose Flush calls covered it);
// standalone Fence calls order traffic the device cannot attribute and
// count only in the global total.
type RegionStats struct {
	Name         string
	Stores       uint64
	BytesStored  uint64
	BytesFlushed uint64
	LinesFlushed uint64
	Fences       uint64
}

// regionCtr is the live counter block of one configured region.
type regionCtr struct {
	name      string
	idx       int
	addr, end uint64

	stores       atomic.Uint64
	bytesStored  atomic.Uint64
	bytesFlushed atomic.Uint64
	linesFlushed atomic.Uint64
	fences       atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	saved map[uint64][]byte // line index -> last persisted copy
	// free recycles retired persisted-line copies: the steady-state
	// pipeline dirties and flushes the same lines continuously, and
	// allocating 64 bytes per clean->dirty transition would put the
	// simulator's bookkeeping — which has no real-hardware counterpart —
	// on the measured allocation profile of every persist path.
	free [][]byte
}

// getLineCopy pops a recycled line buffer or allocates one. Caller holds
// s.mu.
func (s *shard) getLineCopy() []byte {
	if n := len(s.free); n > 0 {
		cp := s.free[n-1]
		s.free = s.free[:n-1]
		return cp
	}
	return make([]byte, LineSize)
}

// putLineCopy retires a saved-line buffer for reuse. Caller holds s.mu.
func (s *shard) putLineCopy(cp []byte) { s.free = append(s.free, cp) }

// Device is a simulated NVM device. All methods are safe for concurrent
// use; concurrent stores to overlapping ranges race exactly as concurrent
// unsynchronized stores to real memory would.
type Device struct {
	cfg   Config
	data  []byte
	dirty []uint32 // atomic bitset, one bit per line
	sh    [numShards]shard

	stores       atomic.Uint64
	bytesStored  atomic.Uint64
	bytesFlushed atomic.Uint64
	linesFlushed atomic.Uint64
	fences       atomic.Uint64
	delayNanos   atomic.Uint64

	regions atomic.Pointer[[]*regionCtr]
}

// SetRegions installs named sub-ranges for per-region accounting;
// subsequent stores, flushes and attributable fences are credited to the
// region containing their start address. At most 64 regions are
// supported (a Batch tracks touched regions in one word). Replaces any
// previous configuration; counters start at zero.
func (d *Device) SetRegions(regions []Region) {
	if len(regions) > 64 {
		panic("pmem: at most 64 regions")
	}
	rs := make([]*regionCtr, 0, len(regions))
	for i, r := range regions {
		d.check(r.Addr, r.Size)
		rs = append(rs, &regionCtr{name: r.Name, idx: i, addr: r.Addr, end: r.Addr + r.Size})
	}
	d.regions.Store(&rs)
}

// regionOf returns the configured region containing addr, or nil.
func (d *Device) regionOf(addr uint64) *regionCtr {
	rs := d.regions.Load()
	if rs == nil {
		return nil
	}
	for _, r := range *rs {
		if addr >= r.addr && addr < r.end {
			return r
		}
	}
	return nil
}

// RegionStats snapshots the per-region counters (nil when SetRegions was
// never called).
func (d *Device) RegionStats() []RegionStats {
	rs := d.regions.Load()
	if rs == nil {
		return nil
	}
	out := make([]RegionStats, 0, len(*rs))
	for _, r := range *rs {
		out = append(out, RegionStats{
			Name:         r.name,
			Stores:       r.stores.Load(),
			BytesStored:  r.bytesStored.Load(),
			BytesFlushed: r.bytesFlushed.Load(),
			LinesFlushed: r.linesFlushed.Load(),
			Fences:       r.fences.Load(),
		})
	}
	return out
}

// New creates a device of the configured size, zero-filled and fully
// persisted.
func New(cfg Config) *Device {
	if cfg.Size == 0 {
		panic("pmem: zero-size device")
	}
	cfg.Size = (cfg.Size + LineSize - 1) &^ uint64(LineSize-1)
	d := &Device{
		cfg:   cfg,
		data:  word.Alloc(cfg.Size),
		dirty: make([]uint32, (cfg.Size>>lineShift+31)/32),
	}
	for i := range d.sh {
		d.sh[i].saved = make(map[uint64][]byte)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.cfg.Size }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

func (d *Device) check(addr, n uint64) {
	if addr+n > d.cfg.Size || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%d,%d) out of range (size %d)", addr, addr+n, d.cfg.Size))
	}
}

func (d *Device) lineDirty(line uint64) bool {
	return atomic.LoadUint32(&d.dirty[line/32])&(1<<(line%32)) != 0
}

// markDirty ensures the persisted copy of line is saved before the caller
// modifies it.
func (d *Device) markDirty(line uint64) {
	if d.lineDirty(line) {
		return
	}
	s := &d.sh[line%numShards]
	s.mu.Lock()
	if !d.lineDirty(line) {
		// Copy word-atomically: a concurrent Store8 to another word of
		// this line may be in flight (its dirty-bit check can race with
		// a flush clearing the bit), and either snapshot is a legal
		// "persisted" image for a store concurrent with a write-back.
		cp := s.getLineCopy()
		base := line << lineShift
		for o := uint64(0); o < LineSize; o += 8 {
			binary.LittleEndian.PutUint64(cp[o:], word.Load(d.data, base+o))
		}
		s.saved[line] = cp
		// Publish the bit only after the persisted copy is saved, so a
		// concurrent fast-path store cannot modify the line first.
		atomic.OrUint32(&d.dirty[line/32], 1<<(line%32))
	}
	s.mu.Unlock()
}

// Store writes b at addr. The write is volatile until the covering lines
// are flushed and fenced.
func (d *Device) Store(addr uint64, b []byte) {
	n := uint64(len(b))
	if n == 0 {
		return
	}
	d.check(addr, n)
	for line := addr >> lineShift; line <= (addr+n-1)>>lineShift; line++ {
		d.markDirty(line)
	}
	copy(d.data[addr:], b)
	d.stores.Add(1)
	d.bytesStored.Add(n)
	if r := d.regionOf(addr); r != nil {
		r.stores.Add(1)
		r.bytesStored.Add(n)
	}
}

// Store8 atomically writes the 8-byte word at addr, which must be
// 8-aligned — modelling the single-copy atomicity of aligned stores on
// real hardware. Optimistic TM readers may race with this store and
// detect the conflict afterwards.
func (d *Device) Store8(addr, val uint64) {
	d.check(addr, 8)
	d.markDirty(addr >> lineShift)
	word.Store(d.data, addr, val)
	d.stores.Add(1)
	d.bytesStored.Add(8)
	if r := d.regionOf(addr); r != nil {
		r.stores.Add(1)
		r.bytesStored.Add(8)
	}
}

// Load reads len(b) bytes at addr into b, observing the latest (possibly
// unpersisted) contents, as a CPU load through the cache would.
func (d *Device) Load(addr uint64, b []byte) {
	d.check(addr, uint64(len(b)))
	copy(b, d.data[addr:])
}

// Load8 atomically reads the 8-byte word at addr, which must be
// 8-aligned.
func (d *Device) Load8(addr uint64) uint64 {
	d.check(addr, 8)
	return word.Load(d.data, addr)
}

// FlushRange writes back all dirty lines covering [addr, addr+n), like a
// sequence of CLWB instructions. It returns the number of bytes written
// back. The write-back is not ordered until a subsequent Fence.
func (d *Device) FlushRange(addr, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	d.check(addr, n)
	var bytes uint64
	for line := addr >> lineShift; line <= (addr+n-1)>>lineShift; line++ {
		if !d.lineDirty(line) {
			continue
		}
		s := &d.sh[line%numShards]
		s.mu.Lock()
		if d.lineDirty(line) {
			s.putLineCopy(s.saved[line])
			delete(s.saved, line)
			atomic.AndUint32(&d.dirty[line/32], ^uint32(1<<(line%32)))
			bytes += LineSize
		}
		s.mu.Unlock()
	}
	if bytes > 0 {
		d.bytesFlushed.Add(bytes)
		d.linesFlushed.Add(bytes / LineSize)
		if r := d.regionOf(addr); r != nil {
			r.bytesFlushed.Add(bytes)
			r.linesFlushed.Add(bytes / LineSize)
		}
	}
	return bytes
}

// Fence orders previously issued flushes (SFENCE) and stalls the caller
// according to the delay model: max(WriteLatency, bytes/Bandwidth), where
// bytes is the write-back volume being ordered by this fence.
func (d *Device) Fence(bytes uint64) {
	d.fences.Add(1)
	if !d.cfg.DelayEnabled {
		return
	}
	delay := d.cfg.WriteLatency
	if d.cfg.Bandwidth > 0 && bytes > 0 {
		bw := time.Duration(float64(bytes) / d.cfg.Bandwidth * float64(time.Second))
		if bw > delay {
			delay = bw
		}
	}
	if delay > 0 {
		spinWait(delay)
		d.delayNanos.Add(uint64(delay))
	}
}

// Persist flushes and fences a single range: the paper's "persist
// operation" (CLWB ... SFENCE) used once per transaction or per update.
func (d *Device) Persist(addr, n uint64) {
	b := d.FlushRange(addr, n)
	if r := d.regionOf(addr); r != nil {
		r.fences.Add(1)
	}
	d.Fence(b)
}

// Batch accumulates flushes whose ordering cost is paid by one fence, the
// pattern used when persisting a whole redo log at once. Flush may be
// called from multiple goroutines concurrently (the sharded Reproduce
// appliers share one batch); Fence must be called by a single goroutine
// after joining all flushers, mirroring how SFENCE orders the CLWBs the
// issuing core has observed.
type Batch struct {
	d     *Device
	bytes atomic.Uint64
	// touched is a bitmask of region indices this batch flushed, so the
	// closing fence can be attributed to every region it orders.
	touched atomic.Uint64
}

// NewBatch starts a flush batch.
func (d *Device) NewBatch() *Batch { return &Batch{d: d} }

// Flush writes back the dirty lines of the range, accumulating volume.
func (b *Batch) Flush(addr, n uint64) {
	b.bytes.Add(b.d.FlushRange(addr, n))
	if r := b.d.regionOf(addr); r != nil {
		b.touched.Or(1 << uint(r.idx))
	}
}

// Fence orders the batch and stalls for max(latency, volume/bandwidth).
// The batch can be reused afterwards.
func (b *Batch) Fence() {
	if mask := b.touched.Swap(0); mask != 0 {
		if rs := b.d.regions.Load(); rs != nil {
			for _, r := range *rs {
				if mask&(1<<uint(r.idx)) != 0 {
					r.fences.Add(1)
				}
			}
		}
	}
	b.d.Fence(b.bytes.Swap(0))
}

// Crash simulates a power failure: every line not made durable reverts to
// its last persisted contents. The caller must have quiesced all other
// users of the device.
func (d *Device) Crash() {
	for i := range d.sh {
		s := &d.sh[i]
		s.mu.Lock()
		for line, cp := range s.saved {
			copy(d.data[line<<lineShift:], cp)
			s.putLineCopy(cp)
			delete(s.saved, line)
			atomic.AndUint32(&d.dirty[line/32], ^uint32(1<<(line%32)))
		}
		s.mu.Unlock()
	}
}

// PersistedImage returns a copy of the durable contents of the device:
// what a crash right now would leave behind. The caller must have
// quiesced all other users of the device.
func (d *Device) PersistedImage() []byte {
	img := make([]byte, d.cfg.Size)
	copy(img, d.data)
	for i := range d.sh {
		s := &d.sh[i]
		s.mu.Lock()
		for line, cp := range s.saved {
			copy(img[line<<lineShift:], cp)
		}
		s.mu.Unlock()
	}
	return img
}

// Restore loads img as the fully persisted contents of the device,
// discarding all current state. It is used to remount a pool image after
// a simulated crash in a separate process or example.
func (d *Device) Restore(img []byte) {
	if uint64(len(img)) != d.cfg.Size {
		panic("pmem: restore image size mismatch")
	}
	for i := range d.sh {
		d.sh[i].mu.Lock()
	}
	copy(d.data, img)
	for i := range d.sh {
		s := &d.sh[i]
		for line, cp := range s.saved {
			s.putLineCopy(cp)
			delete(s.saved, line)
			atomic.AndUint32(&d.dirty[line/32], ^uint32(1<<(line%32)))
		}
		d.sh[i].mu.Unlock()
	}
}

// DirtyLines reports the number of lines that would be lost on a crash.
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.sh {
		s := &d.sh[i]
		s.mu.Lock()
		n += len(s.saved)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats {
	return Stats{
		Stores:       d.stores.Load(),
		BytesStored:  d.bytesStored.Load(),
		BytesFlushed: d.bytesFlushed.Load(),
		LinesFlushed: d.linesFlushed.Load(),
		Fences:       d.fences.Load(),
		DelayNanos:   d.delayNanos.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (d *Device) ResetStats() {
	d.stores.Store(0)
	d.bytesStored.Store(0)
	d.bytesFlushed.Store(0)
	d.linesFlushed.Store(0)
	d.fences.Store(0)
	d.delayNanos.Store(0)
	if rs := d.regions.Load(); rs != nil {
		for _, r := range *rs {
			r.stores.Store(0)
			r.bytesStored.Store(0)
			r.bytesFlushed.Store(0)
			r.linesFlushed.Store(0)
			r.fences.Store(0)
		}
	}
}

// spinWait busy-waits for roughly dur. time.Sleep has coarse granularity
// (often 1 ms in containers) while NVM persist latencies are hundreds of
// nanoseconds, so a calibrated spin is the only faithful option — the
// paper's emulation loops on RDTSC for the same reason.
func spinWait(dur time.Duration) {
	start := time.Now()
	for time.Since(start) < dur {
	}
}
