package pmem

import "testing"

// TestRegionAttribution pins the per-region accounting contract: stores
// and flushes are credited to the region containing their start
// address, Persist attributes its fence to that region, and a Batch
// fence is attributed to every region the batch flushed.
func TestRegionAttribution(t *testing.T) {
	d := New(Config{Size: 4096})
	d.SetRegions([]Region{
		{Name: "log", Addr: 0, Size: 1024},
		{Name: "data", Addr: 1024, Size: 1024},
	})

	buf := make([]byte, 128)
	d.Store(0, buf)      // log
	d.Store8(1024, 7)    // data
	d.Persist(0, 128)    // log flush + fence
	d.Store(2048, buf)   // outside all regions
	d.Persist(2048, 128) // unattributed

	find := func(name string) RegionStats {
		t.Helper()
		for _, r := range d.RegionStats() {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("region %q missing", name)
		return RegionStats{}
	}

	lg, da := find("log"), find("data")
	if lg.Stores != 1 || lg.BytesStored != 128 {
		t.Errorf("log stores = %d/%d bytes, want 1/128", lg.Stores, lg.BytesStored)
	}
	if lg.BytesFlushed != 128 || lg.LinesFlushed != 2 || lg.Fences != 1 {
		t.Errorf("log flushed = %d bytes/%d lines/%d fences, want 128/2/1",
			lg.BytesFlushed, lg.LinesFlushed, lg.Fences)
	}
	if da.Stores != 1 || da.BytesStored != 8 || da.Fences != 0 {
		t.Errorf("data = %+v, want 1 store, 8 bytes, 0 fences", da)
	}

	// A batch spanning both regions attributes its single fence to each.
	d.Store8(64, 1)
	d.Store8(1088, 2)
	b := d.NewBatch()
	b.Flush(64, 8)
	b.Flush(1088, 8)
	b.Fence()
	if lg, da = find("log"), find("data"); lg.Fences != 2 || da.Fences != 1 {
		t.Errorf("after batch: log fences = %d (want 2), data fences = %d (want 1)",
			lg.Fences, da.Fences)
	}

	// The global counters include the unattributed traffic too.
	if st := d.Stats(); st.BytesStored != 128+8+128+8+8 {
		t.Errorf("global BytesStored = %d", st.BytesStored)
	}

	d.ResetStats()
	if lg = find("log"); lg.BytesFlushed != 0 || lg.Fences != 0 {
		t.Errorf("ResetStats left region counters: %+v", lg)
	}
}
