package pmem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestDev(size uint64) *Device {
	return New(Config{Size: size})
}

func TestNewRoundsSizeToLine(t *testing.T) {
	d := New(Config{Size: 100})
	if d.Size() != 128 {
		t.Fatalf("size = %d, want 128", d.Size())
	}
}

func TestNewZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newTestDev(4096)
	msg := []byte("hello persistent world")
	d.Store(100, msg)
	got := make([]byte, len(msg))
	d.Load(100, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestStore8Load8(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(8, 0xdeadbeefcafe)
	if v := d.Load8(8); v != 0xdeadbeefcafe {
		t.Fatalf("got %#x", v)
	}
}

func TestStore8UnalignedPanics(t *testing.T) {
	d := newTestDev(4096)
	for _, f := range []func(){
		func() { d.Store8(60, 1) },
		func() { d.Load8(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on unaligned word access")
				}
			}()
			f()
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDev(128)
	for _, f := range []func(){
		func() { d.Store8(128, 1) },
		func() { d.Store8(124, 1) },
		func() { d.Load8(121) },
		func() { d.Store(120, make([]byte, 16)) },
		func() { d.Load(129, make([]byte, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCrashDiscardsUnflushed(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 42)
	d.Crash()
	if v := d.Load8(0); v != 0 {
		t.Fatalf("unflushed store survived crash: %d", v)
	}
}

func TestCrashKeepsPersisted(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 42)
	d.Persist(0, 8)
	d.Store8(0, 43) // dirty again, not persisted
	d.Crash()
	if v := d.Load8(0); v != 42 {
		t.Fatalf("got %d, want last persisted 42", v)
	}
}

func TestCrashRevertsToLastPersistedNotOriginal(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(64, 1)
	d.Persist(64, 8)
	d.Store8(64, 2)
	d.Persist(64, 8)
	d.Store8(64, 3)
	d.Crash()
	if v := d.Load8(64); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
}

func TestFlushWithoutFenceStillDurableInModel(t *testing.T) {
	// In this model FlushRange alone moves data to the durable image;
	// Fence only orders/stalls. A crash between flush and fence may keep
	// the data (real CLWB may also have written back). Verify flush makes
	// the line clean.
	d := newTestDev(4096)
	d.Store8(0, 7)
	d.FlushRange(0, 8)
	d.Crash()
	if v := d.Load8(0); v != 7 {
		t.Fatalf("flushed line reverted: %d", v)
	}
}

func TestFlushRangeCoversWholeLines(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 1)
	d.Store8(56, 2)         // same line
	n := d.FlushRange(0, 1) // flushing any byte of the line flushes the line
	if n != LineSize {
		t.Fatalf("flushed %d bytes, want %d", n, LineSize)
	}
	d.Crash()
	if d.Load8(0) != 1 || d.Load8(56) != 2 {
		t.Fatal("line contents lost")
	}
}

func TestFlushCleanLineWritesNothing(t *testing.T) {
	d := newTestDev(4096)
	if n := d.FlushRange(0, 4096); n != 0 {
		t.Fatalf("flushed %d bytes from clean device", n)
	}
	if s := d.Stats(); s.BytesFlushed != 0 {
		t.Fatalf("BytesFlushed = %d", s.BytesFlushed)
	}
}

func TestStatsCounting(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 1)
	d.Store(100, []byte{1, 2, 3})
	d.Persist(0, 8)
	s := d.Stats()
	if s.Stores != 2 {
		t.Errorf("Stores = %d, want 2", s.Stores)
	}
	if s.BytesStored != 11 {
		t.Errorf("BytesStored = %d, want 11", s.BytesStored)
	}
	if s.BytesFlushed != LineSize {
		t.Errorf("BytesFlushed = %d, want %d", s.BytesFlushed, LineSize)
	}
	if s.Fences != 1 {
		t.Errorf("Fences = %d, want 1", s.Fences)
	}
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestBatchAccumulates(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 1)
	d.Store8(1024, 2)
	b := d.NewBatch()
	b.Flush(0, 8)
	b.Flush(1024, 8)
	b.Fence()
	if s := d.Stats(); s.Fences != 1 || s.BytesFlushed != 2*LineSize {
		t.Fatalf("stats %+v", s)
	}
	d.Crash()
	if d.Load8(0) != 1 || d.Load8(1024) != 2 {
		t.Fatal("batched flush not durable")
	}
}

func TestDelayModel(t *testing.T) {
	d := New(Config{
		Size:         4096,
		WriteLatency: 200 * time.Microsecond,
		Bandwidth:    GB,
		DelayEnabled: true,
	})
	d.Store8(0, 1)
	start := time.Now()
	d.Persist(0, 8)
	if el := time.Since(start); el < 200*time.Microsecond {
		t.Fatalf("persist returned after %v, want >= 200us", el)
	}
}

func TestDelayBandwidthDominates(t *testing.T) {
	// 1 MB at 1 GB/s is ~1 ms >> 10us latency.
	d := New(Config{
		Size:         1 << 21,
		WriteLatency: 10 * time.Microsecond,
		Bandwidth:    GB,
		DelayEnabled: true,
	})
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	d.Store(0, buf)
	start := time.Now()
	d.Persist(0, 1<<20)
	if el := time.Since(start); el < 900*time.Microsecond {
		t.Fatalf("persist of 1MB took %v, want >= ~1ms", el)
	}
}

func TestDelayDisabledIsFast(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 1)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Store8(0, uint64(i))
		d.Persist(0, 8)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("disabled delay model too slow: %v", el)
	}
}

func TestPersistedImageMatchesCrash(t *testing.T) {
	d := newTestDev(4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(4096/8)) * 8
		d.Store8(addr, rng.Uint64())
		if rng.Intn(3) == 0 {
			d.Persist(addr, 8)
		}
	}
	img := d.PersistedImage()
	d.Crash()
	cur := make([]byte, 4096)
	d.Load(0, cur)
	if !bytes.Equal(img, cur) {
		t.Fatal("PersistedImage disagrees with post-crash contents")
	}
}

func TestRestore(t *testing.T) {
	d := newTestDev(4096)
	d.Store8(0, 99)
	d.Persist(0, 8)
	img := d.PersistedImage()

	d2 := newTestDev(4096)
	d2.Store8(8, 1) // dirty state to be discarded
	d2.Restore(img)
	if v := d2.Load8(0); v != 99 {
		t.Fatalf("restored value = %d", v)
	}
	if n := d2.DirtyLines(); n != 0 {
		t.Fatalf("dirty lines after restore = %d", n)
	}
	d2.Crash()
	if v := d2.Load8(0); v != 99 {
		t.Fatal("restored image not treated as persisted")
	}
}

func TestRestoreSizeMismatchPanics(t *testing.T) {
	d := newTestDev(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Restore(make([]byte, 128))
}

func TestConcurrentDisjointStores(t *testing.T) {
	d := newTestDev(1 << 20)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * (1 << 20 / workers)
			for i := uint64(0); i < 1000; i++ {
				addr := base + (i%1024)*8
				d.Store8(addr, i)
				if i%7 == 0 {
					d.Persist(addr, 8)
				}
			}
		}(w)
	}
	wg.Wait()
	d.Crash()
	// "Must not corrupt" means every word reads either zero (store was
	// discarded) or the exact value its worker wrote — never a torn or
	// foreign value — and every explicitly persisted word survives.
	for w := 0; w < workers; w++ {
		base := uint64(w) * (1 << 20 / workers)
		for i := uint64(0); i < 1000; i++ {
			addr := base + (i%1024)*8
			got := d.Load8(addr)
			if got != 0 && got != i {
				t.Fatalf("worker %d addr %d: got %d, want 0 or %d", w, addr, got, i)
			}
			if i%7 == 0 && got != i {
				t.Fatalf("worker %d addr %d: persisted store lost (got %d, want %d)", w, addr, got, i)
			}
		}
	}
}

func TestConcurrentSameLineFirstWriteRace(t *testing.T) {
	// Two goroutines race to dirty the same clean line; the saved copy
	// must be the persisted (zero) content, so a crash restores zeros.
	for iter := 0; iter < 100; iter++ {
		d := newTestDev(4096)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				d.Store8(uint64(w*8), 0xff)
			}(w)
		}
		wg.Wait()
		d.Crash()
		if d.Load8(0) != 0 || d.Load8(8) != 0 {
			t.Fatal("crash restored non-persisted content")
		}
	}
}

func TestQuickPersistedSurvivesCrash(t *testing.T) {
	// Property: any persisted word survives any later unpersisted noise.
	f := func(vals []uint64, noise []uint64) bool {
		d := newTestDev(1 << 16)
		want := map[uint64]uint64{}
		for i, v := range vals {
			addr := (uint64(i) % (1 << 13)) * 8
			d.Store8(addr, v)
			d.Persist(addr, 8)
			want[addr] = v
		}
		for i, v := range noise {
			addr := (uint64(i) % (1 << 13)) * 8
			d.Store8(addr, v)
		}
		d.Crash()
		for addr, v := range want {
			if d.Load8(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	d := newTestDev(128)
	d.Store8(0, 0x0102030405060708)
	b := make([]byte, 8)
	d.Load(0, b)
	if binary.LittleEndian.Uint64(b) != 0x0102030405060708 {
		t.Fatal("layout mismatch")
	}
	if b[0] != 0x08 {
		t.Fatalf("not little-endian: b[0]=%#x", b[0])
	}
}

// TestPersistIsFlushPlusFence pins the contract the persistorder
// analyzer relies on when it treats Persist as a complete terminator:
// Persist(addr, n) must be exactly FlushRange(addr, n) followed by
// Fence(bytes) — identical counter movement, identical durable image.
func TestPersistIsFlushPlusFence(t *testing.T) {
	cases := []struct {
		name  string
		addr  uint64
		n     uint64
		store func(d *Device)
	}{
		{"single word", 64, 8, func(d *Device) { d.Store8(64, 42) }},
		{"whole line", 128, 64, func(d *Device) { d.Store(128, bytes.Repeat([]byte{7}, 64)) }},
		{"spans three lines", 60, 140, func(d *Device) { d.Store(60, bytes.Repeat([]byte{9}, 140)) }},
		{"partial dirty range", 0, 512, func(d *Device) { d.Store8(256, 1) }},
		{"clean range", 0, 256, func(d *Device) {}},
		{"zero length", 64, 0, func(d *Device) { d.Store8(64, 3) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			persisted := newTestDev(4096)
			manual := newTestDev(4096)
			tc.store(persisted)
			tc.store(manual)

			persisted.Persist(tc.addr, tc.n)
			manual.Fence(manual.FlushRange(tc.addr, tc.n))

			ps, ms := persisted.Stats(), manual.Stats()
			if ps != ms {
				t.Errorf("stats diverge: Persist %+v, FlushRange+Fence %+v", ps, ms)
			}
			if pd, md := persisted.DirtyLines(), manual.DirtyLines(); pd != md {
				t.Errorf("dirty lines diverge: Persist %d, FlushRange+Fence %d", pd, md)
			}
			if !bytes.Equal(persisted.PersistedImage(), manual.PersistedImage()) {
				t.Error("durable images diverge")
			}
		})
	}
}
