// Package lz4 implements the LZ4 block format (compression and
// decompression) from scratch.
//
// The DudeTM paper compresses combined redo logs with lz4 before flushing
// them to persistent memory (§3.3, Figure 3); the module constraint of
// this repository is stdlib-only, so the block codec is reimplemented
// here. The format is the standard one: a stream of sequences, each a
// token byte (literal length in the high nibble, match length - 4 in the
// low nibble, 15 meaning "extended by 255-continuation bytes"), the
// literals, and a 2-byte little-endian match offset. The final sequence
// carries literals only.
package lz4

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	minMatch  = 4
	maxOffset = 65535
	hashLog   = 14
	// The spec requires the last 5 bytes to be literals and the last
	// match to begin at least 12 bytes before the end of the block.
	lastLiterals = 5
	mfLimit      = 12
)

// ErrCorrupt is returned when decompression encounters malformed input.
var ErrCorrupt = errors.New("lz4: corrupt input")

// MaxCompressedLen returns the worst-case compressed size for n input
// bytes (incompressible data expands by 1 byte per 255 literals plus
// constant overhead).
func MaxCompressedLen(n int) int {
	return n + n/255 + 16
}

func hash4(u uint32) uint32 {
	return (u * 2654435761) >> (32 - hashLog)
}

// Compress appends the LZ4 block encoding of src to dst and returns the
// extended slice. Compressing an empty src yields an empty block.
func Compress(dst, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	var table [1 << hashLog]uint32 // position+1 of a recent occurrence

	anchor := 0 // start of pending literals
	pos := 0
	limit := len(src) - mfLimit

	for pos < limit {
		u := binary.LittleEndian.Uint32(src[pos:])
		h := hash4(u)
		cand := int(table[h]) - 1
		table[h] = uint32(pos + 1)

		if cand < 0 || pos-cand > maxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != u {
			pos++
			continue
		}

		// Extend the match forward; stop early enough to leave the
		// spec-required literal tail.
		matchLen := minMatch
		maxLen := len(src) - lastLiterals - pos
		for matchLen < maxLen && src[cand+matchLen] == src[pos+matchLen] {
			matchLen++
		}
		if matchLen < minMatch || matchLen > maxLen {
			pos++
			continue
		}

		dst = emitSequence(dst, src[anchor:pos], pos-cand, matchLen)
		pos += matchLen
		anchor = pos
	}

	// Final sequence: remaining literals only.
	return emitLiterals(dst, src[anchor:])
}

// emitSequence encodes one token + literals + offset + extended match
// length.
func emitSequence(dst, lits []byte, offset, matchLen int) []byte {
	litLen := len(lits)
	ml := matchLen - minMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 15
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendLen(dst, litLen-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = appendLen(dst, ml-15)
	}
	return dst
}

// emitLiterals encodes the final literal-only sequence.
func emitLiterals(dst, lits []byte) []byte {
	if len(lits) == 0 {
		return dst
	}
	litLen := len(lits)
	if litLen >= 15 {
		dst = append(dst, 15<<4)
		dst = appendLen(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, lits...)
}

func appendLen(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress decodes an LZ4 block into a buffer of exactly dstLen bytes.
// It returns ErrCorrupt (wrapped with detail) if src is malformed or does
// not decode to dstLen bytes.
func Decompress(src []byte, dstLen int) ([]byte, error) {
	dst := make([]byte, 0, dstLen)
	if dstLen == 0 {
		if len(src) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes after empty block", ErrCorrupt)
		}
		return dst, nil
	}
	i := 0
	for {
		if i >= len(src) {
			return nil, fmt.Errorf("%w: truncated token", ErrCorrupt)
		}
		token := src[i]
		i++

		litLen := int(token >> 4)
		if litLen == 15 {
			var err error
			litLen, i, err = readLen(src, i, litLen)
			if err != nil {
				return nil, err
			}
		}
		if i+litLen > len(src) {
			return nil, fmt.Errorf("%w: truncated literals", ErrCorrupt)
		}
		if len(dst)+litLen > dstLen {
			return nil, fmt.Errorf("%w: output overflow on literals", ErrCorrupt)
		}
		dst = append(dst, src[i:i+litLen]...)
		i += litLen

		if i == len(src) {
			// Final literal-only sequence.
			if len(dst) != dstLen {
				return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(dst), dstLen)
			}
			return dst, nil
		}

		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		offset := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		if offset == 0 || offset > len(dst) {
			return nil, fmt.Errorf("%w: bad offset %d at output %d", ErrCorrupt, offset, len(dst))
		}

		matchLen := int(token & 15)
		if matchLen == 15 {
			var err error
			matchLen, i, err = readLen(src, i, matchLen)
			if err != nil {
				return nil, err
			}
		}
		matchLen += minMatch
		if len(dst)+matchLen > dstLen {
			return nil, fmt.Errorf("%w: output overflow on match", ErrCorrupt)
		}
		// Overlapping copy: must proceed byte-wise when offset < length.
		start := len(dst) - offset
		for j := 0; j < matchLen; j++ {
			dst = append(dst, dst[start+j])
		}
	}
}

func readLen(src []byte, i, base int) (int, int, error) {
	n := base
	for {
		if i >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated length", ErrCorrupt)
		}
		b := src[i]
		i++
		n += int(b)
		if b != 255 {
			return n, i, nil
		}
	}
}
