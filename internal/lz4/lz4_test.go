package lz4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) []byte {
	t.Helper()
	comp := Compress(nil, src)
	got, err := Decompress(comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v (src len %d, comp len %d)", err, len(src), len(comp))
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round trip mismatch: len %d -> %d", len(src), len(got))
	}
	return comp
}

func TestEmpty(t *testing.T) {
	comp := Compress(nil, nil)
	if len(comp) != 0 {
		t.Fatalf("empty input compressed to %d bytes", len(comp))
	}
	got, err := Decompress(comp, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestShortInputsAllLiterals(t *testing.T) {
	for n := 1; n < 32; n++ {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i * 7)
		}
		roundTrip(t, src)
	}
}

func TestRepetitiveCompresses(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 1000)
	comp := roundTrip(t, src)
	if len(comp) > len(src)/10 {
		t.Fatalf("repetitive data barely compressed: %d -> %d", len(src), len(comp))
	}
}

func TestRunLengthOverlappingMatch(t *testing.T) {
	src := bytes.Repeat([]byte{'a'}, 10000)
	comp := roundTrip(t, src)
	if len(comp) > 100 {
		t.Fatalf("RLE data compressed to %d bytes", len(comp))
	}
}

func TestIncompressibleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 1<<16)
	rng.Read(src)
	comp := roundTrip(t, src)
	if len(comp) > MaxCompressedLen(len(src)) {
		t.Fatalf("compressed %d > MaxCompressedLen %d", len(comp), MaxCompressedLen(len(src)))
	}
}

func TestLongLiteralRun(t *testing.T) {
	// > 255+15 literals forces extended literal-length encoding.
	src := make([]byte, 600)
	for i := range src {
		src[i] = byte(i)
	}
	roundTrip(t, src)
}

func TestLongMatch(t *testing.T) {
	// A very long match forces extended match-length encoding.
	src := append([]byte("0123456789abcdef"), bytes.Repeat([]byte("Z"), 2000)...)
	src = append(src, "0123456789abcdef"...)
	roundTrip(t, src)
}

func TestRedoLogShapedData(t *testing.T) {
	// Log entries: (addr, val) pairs with clustered addresses — the
	// payload shape Figure 3 compresses. Expect a decent ratio.
	var src []byte
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4096; i++ {
		addr := uint64(rng.Intn(1024)) * 8
		val := uint64(rng.Intn(100))
		var e [16]byte
		for j := 0; j < 8; j++ {
			e[j] = byte(addr >> (8 * j))
			e[8+j] = byte(val >> (8 * j))
		}
		src = append(src, e[:]...)
	}
	comp := roundTrip(t, src)
	ratio := 1 - float64(len(comp))/float64(len(src))
	if ratio < 0.3 {
		t.Fatalf("log-shaped data ratio %.2f, want >= 0.3", ratio)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(src []byte) bool {
		comp := Compress(nil, src)
		got, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripCompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, blocks uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var src []byte
		word := make([]byte, 1+r.Intn(40))
		r.Read(word)
		for i := 0; i < int(blocks); i++ {
			if r.Intn(4) == 0 {
				extra := make([]byte, r.Intn(20))
				rng.Read(extra)
				src = append(src, extra...)
			}
			src = append(src, word...)
		}
		comp := Compress(nil, src)
		got, err := Decompress(comp, len(src))
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 100)
	comp := Compress(nil, src)

	// Truncations must error, never panic.
	for cut := 0; cut < len(comp); cut++ {
		if _, err := Decompress(comp[:cut], len(src)); err == nil {
			// A prefix could accidentally be valid only if it decodes
			// to exactly len(src) bytes; that can't happen for a strict
			// prefix of a valid block ending in literals.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Wrong destination length must error.
	if _, err := Decompress(comp, len(src)+1); err == nil {
		t.Fatal("wrong dstLen accepted")
	}
	if _, err := Decompress(comp, len(src)-1); err == nil {
		t.Fatal("wrong dstLen accepted")
	}

	// Bad offset (points before start of output).
	bad := []byte{0x10, 'a', 0xff, 0xff, 0x00} // 1 literal, offset 65535
	if _, err := Decompress(bad, 100); err == nil {
		t.Fatal("bad offset accepted")
	}

	// Zero offset is invalid.
	bad = []byte{0x10, 'a', 0x00, 0x00, 0x00}
	if _, err := Decompress(bad, 100); err == nil {
		t.Fatal("zero offset accepted")
	}
}

func TestDecompressFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		junk := make([]byte, n)
		rng.Read(junk)
		Decompress(junk, rng.Intn(256)) // must not panic
	}
}

func BenchmarkCompressLogShaped(b *testing.B) {
	var src []byte
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 65536/16; i++ {
		addr := uint64(rng.Intn(4096)) * 8
		var e [16]byte
		for j := 0; j < 8; j++ {
			e[j] = byte(addr >> (8 * j))
		}
		src = append(src, e[:]...)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Compress(dst[:0], src)
	}
}
