package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export: a sampled transaction's cross-node
// timeline rendered as the JSON object format Perfetto and
// chrome://tracing load directly ("JSON Array Format" with the
// displayTimeUnit envelope). Primary-side stages appear as lanes of
// process 1; replica fences as one lane per peer under process 2, so
// the cross-node critical path reads left to right across two process
// tracks.
//
// Timestamps: the trace-event format's ts/dur are microseconds; trace
// records are nanoseconds since the observer epoch, so values are
// divided by 1e3 and keep fractional precision. Replica fence spans
// are anchored on the primary's clock (ack arrival minus the replica's
// self-measured ingest duration) — see the critpath package comment.

// ChromeEvent is one trace-event JSON object. Ph "X" is a complete
// span (Ts..Ts+Dur), "i" an instant, "M" metadata (process/thread
// names).
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// Chrome lane layout.
const (
	ChromePidPrimary  = 1 // primary pipeline lanes
	ChromePidReplicas = 2 // one lane per replica peer

	chromeLanePerform = 1 // commit + acked stamps
	chromeLanePersist = 2 // group seal + persist fence
	chromeLaneShip    = 3 // repl ship/sent stamps
	chromeLaneRepro   = 4 // reproduce apply
)

// chromeMeta builds a process_name or thread_name metadata event.
func chromeMeta(kind string, pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// ChromeTraceOf converts one transaction's trace records (TraceOf
// output, time-ordered) into trace events, metadata lanes included.
func ChromeTraceOf(tid uint64, recs []Record) []ChromeEvent {
	events := []ChromeEvent{
		chromeMeta("process_name", ChromePidPrimary, 0, "primary"),
		chromeMeta("thread_name", ChromePidPrimary, chromeLanePerform, "perform"),
		chromeMeta("thread_name", ChromePidPrimary, chromeLanePersist, "persist"),
		chromeMeta("thread_name", ChromePidPrimary, chromeLaneShip, "repl-ship"),
		chromeMeta("thread_name", ChromePidPrimary, chromeLaneRepro, "reproduce"),
	}
	seen := map[int]bool{}
	var peers []int
	for _, r := range recs {
		if r.Kind == EvReplicaFence && !seen[int(r.Arg)] {
			seen[int(r.Arg)] = true
			peers = append(peers, int(r.Arg))
		}
	}
	sort.Ints(peers)
	if len(peers) > 0 {
		events = append(events, chromeMeta("process_name", ChromePidReplicas, 0, "replicas"))
		for _, peer := range peers {
			events = append(events, chromeMeta("thread_name", ChromePidReplicas, peer+1,
				"replica "+itoa(peer)))
		}
	}
	for _, r := range recs {
		ev := ChromeEvent{
			Name: r.Kind.String(),
			Pid:  ChromePidPrimary,
			Args: map[string]any{"min_tid": r.MinTid, "max_tid": r.MaxTid, "sampled_tid": tid},
		}
		switch r.Kind {
		case EvCommit, EvAcked:
			ev.Tid = chromeLanePerform
		case EvGroupSeal, EvPersistFence:
			ev.Tid = chromeLanePersist
		case EvReplShip, EvReplSent:
			ev.Tid = chromeLaneShip
			if r.Kind == EvReplSent {
				ev.Args["peer"] = r.Arg
			}
		case EvReplicaFence:
			ev.Pid = ChromePidReplicas
			ev.Tid = int(r.Arg) + 1
			ev.Args["peer"] = r.Arg
			ev.Args["ingest_ns"] = r.Dur
		case EvReproApply:
			ev.Tid = chromeLaneRepro
		default:
			ev.Tid = chromeLanePerform
		}
		if r.Dur > 0 {
			// Duration-carrying stamps mark the END of their span.
			ev.Ph = "X"
			ev.Ts = float64(r.At-r.Dur) / 1e3
			ev.Dur = float64(r.Dur) / 1e3
		} else {
			ev.Ph = "i"
			ev.Ts = float64(r.At) / 1e3
			ev.S = "t"
		}
		events = append(events, ev)
	}
	return events
}

// WriteChromeTrace renders one transaction's records as a complete
// Chrome trace-event JSON document.
func WriteChromeTrace(w io.Writer, tid uint64, recs []Record) error {
	return WriteChromeEvents(w, ChromeTraceOf(tid, recs))
}

// WriteChromeEvents renders pre-built trace events as a complete
// Chrome trace-event JSON document (the envelope dudectl forensics
// -chrome shares).
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ns", TraceEvents: events})
}

// itoa avoids strconv for the tiny peer-index labels.
func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
