package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). Errors are sticky; check Err once at the end.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Header emits the HELP/TYPE preamble of one metric family. typ is
// "gauge", "counter" or "histogram".
func (p *PromWriter) Header(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one series sample. labels is the raw label list without
// braces (`stage="persist"`), or "" for an unlabeled series.
func (p *PromWriter) Sample(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, formatValue(v))
}

// Gauge emits a complete single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Header(name, "gauge", help)
	p.Sample(name, "", v)
}

// Counter emits a complete single-sample counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.Header(name, "counter", help)
	p.Sample(name, "", v)
}

// Histogram emits a HistSnapshot as a Prometheus histogram family.
// Bucket bounds are scaled by scale (1e-9 renders nanosecond
// observations in seconds); empty buckets are elided (the cumulative
// convention keeps sparse output valid), the +Inf bucket, _sum and
// _count always appear.
func (p *PromWriter) Histogram(name, help string, s HistSnapshot, scale float64) {
	p.Header(name, "histogram", help)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		bound := float64(BucketBound(i)) * scale
		p.Sample(name+"_bucket", fmt.Sprintf("le=%q", strconv.FormatFloat(bound, 'g', -1, 64)), float64(cum))
	}
	p.Sample(name+"_bucket", `le="+Inf"`, float64(s.Count))
	p.Sample(name+"_sum", "", float64(s.Sum)*scale)
	p.Sample(name+"_count", "", float64(s.Count))
}

// ParseProm parses Prometheus text exposition into a flat map keyed by
// the series as written (name, or name{labels}). Comment and blank
// lines are skipped; a malformed sample line is an error. Values that
// parse to NaN or ±Inf are kept — validity checking is the caller's
// policy (dudectl top -check fails on them).
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series name
		// (possibly containing spaces inside label values) is the rest.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: malformed metric line %q", line)
		}
		series := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: malformed value in %q: %v", line, err)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
