package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Critical-path decomposition: for each completed sampled transaction,
// split the commit→acknowledged window into named segments whose sum
// reconciles exactly with the measured end-to-end latency, and
// aggregate per-segment time-on-critical-path into histograms.
//
// The decomposition is a tiling, not a sum of independent timers: each
// boundary is taken from a trace stamp and clamped monotonically into
// [commit, acked], so overlapping or skewed stamps shift time between
// adjacent segments instead of breaking the identity
//
//	ring_dwell + seal_wait + persist_fence + repl_ship + quorum_wait + notify == acked - commit
//
// There is no "STM commit" segment: the commit stamp is the origin of
// the measured window (it is taken on the committing thread before the
// transaction is published to Persist), so STM execution time lies
// before the window and is visible in the commit-rate metrics instead.
//
// Replica boundaries cross clocks: a replica's timestamps are never
// compared against the primary's. The enriched replication ack carries
// the replica's self-measured ingest (append+fence) duration, which is
// clock-free; the primary anchors the replica's fence span at the
// ack's arrival time on its own clock and extends it backward by that
// duration. Network asymmetry therefore lands in repl_ship (primary
// fence end → quorum-th replica's ingest start), which is exactly the
// shipping + queueing component an operator can act on.

// CritSegment names one segment of the commit→acked critical path.
type CritSegment int

// The segments, in pipeline order.
const (
	// SegRingDwell: commit stamp → group seal (the transaction sat in
	// its thread's volatile ring waiting for the coordinator).
	SegRingDwell CritSegment = iota
	// SegSealWait: group seal → persist-fence start (queue dwell behind
	// other groups plus the log append up to the barrier).
	SegSealWait
	// SegPersistFence: the primary's log persist barrier itself.
	SegPersistFence
	// SegReplShip: primary fence end → the quorum-th replica's ingest
	// start (frame build, per-peer queueing, the wire, and the
	// replica's receive path). Zero when unreplicated.
	SegReplShip
	// SegQuorumWait: the quorum-th replica's ingest span, anchored at
	// its ack's arrival on the primary. Zero when unreplicated.
	SegQuorumWait
	// SegNotify: quorum reached → the acked frontier actually passing
	// the transaction (frontier publication and notifier dispatch).
	SegNotify

	// NumCritSegments is the segment count (array sizing).
	NumCritSegments
)

// String returns the segment's metric-label name.
func (s CritSegment) String() string {
	switch s {
	case SegRingDwell:
		return "ring_dwell"
	case SegSealWait:
		return "seal_wait"
	case SegPersistFence:
		return "persist_fence"
	case SegReplShip:
		return "repl_ship"
	case SegQuorumWait:
		return "quorum_wait"
	case SegNotify:
		return "notify"
	}
	return "unknown"
}

// Critpath is one transaction's critical-path decomposition. All times
// are nanoseconds on the primary's monotonic clock (observer epoch).
type Critpath struct {
	Tid    uint64
	Commit int64 // EvCommit stamp (window origin)
	Acked  int64 // EvAcked stamp (window end)
	Total  int64 // Acked - Commit == sum of Seg
	// Seg is the per-segment time on the critical path; the entries
	// always sum to Total exactly.
	Seg [NumCritSegments]int64
	// Quorum echoes the quorum the decomposition used (0 when
	// unreplicated).
	Quorum int
	// Replicated reports whether replica fences fed the decomposition
	// (Seg[SegReplShip] and Seg[SegQuorumWait] are meaningful).
	Replicated bool
}

// DecomposeCritpath builds the decomposition of transaction tid from
// its trace records (TraceOf output: every stamp whose ID range covers
// tid). quorum is the replication write quorum (0 = unreplicated; the
// repl segments collapse to zero). Returns ok=false when the timeline
// is incomplete — a required stamp was evicted from its ring, or fewer
// than quorum replica fences survive — so the caller can count the
// miss instead of skewing the aggregate.
func DecomposeCritpath(tid uint64, recs []Record, quorum int) (Critpath, bool) {
	cp := Critpath{Tid: tid, Quorum: quorum}
	var commit, seal, fenceEnd, fenceDur, acked int64
	var haveCommit, haveSeal, haveFence, haveAcked bool
	type rfence struct{ at, dur int64 }
	var rfs []rfence
	for _, r := range recs {
		if tid < r.MinTid || tid > r.MaxTid {
			continue
		}
		switch r.Kind {
		case EvCommit:
			if !haveCommit || r.At < commit {
				commit, haveCommit = r.At, true
			}
		case EvGroupSeal:
			if !haveSeal || r.At < seal {
				seal, haveSeal = r.At, true
			}
		case EvPersistFence:
			if !haveFence || r.At < fenceEnd {
				fenceEnd, fenceDur, haveFence = r.At, r.Dur, true
			}
		case EvReplicaFence:
			rfs = append(rfs, rfence{at: r.At, dur: r.Dur})
		case EvAcked:
			if !haveAcked || r.At < acked {
				acked, haveAcked = r.At, true
			}
		}
	}
	if !haveCommit || !haveSeal || !haveFence || !haveAcked || acked < commit {
		return cp, false
	}
	if quorum > 0 && len(rfs) < quorum {
		return cp, false
	}
	a := acked
	clamp := func(x, lo int64) int64 {
		if x < lo {
			x = lo
		}
		if x > a {
			x = a
		}
		return x
	}
	t0 := commit
	t1 := clamp(seal, t0)
	t2 := clamp(fenceEnd-fenceDur, t1)
	t3 := clamp(fenceEnd, t2)
	t4, t5 := t3, t3
	if quorum > 0 {
		// The ack whose arrival completed the quorum: the quorum-th
		// smallest replica-fence arrival time.
		sort.Slice(rfs, func(i, j int) bool { return rfs[i].at < rfs[j].at })
		q := rfs[quorum-1]
		t4 = clamp(q.at-q.dur, t3)
		t5 = clamp(q.at, t4)
		cp.Replicated = true
	}
	cp.Commit, cp.Acked, cp.Total = t0, a, a-t0
	cp.Seg[SegRingDwell] = t1 - t0
	cp.Seg[SegSealWait] = t2 - t1
	cp.Seg[SegPersistFence] = t3 - t2
	cp.Seg[SegReplShip] = t4 - t3
	cp.Seg[SegQuorumWait] = t5 - t4
	cp.Seg[SegNotify] = a - t5
	return cp, true
}

// critState is the Observer's critical-path collector: completed
// sampled transactions are handed over a buffered channel (non-blocking
// from the stamp path: a full channel drops the sample and counts the
// drop) to a background goroutine that reconstructs the timeline,
// decomposes it and feeds the aggregate histograms. Decomposition
// allocates — that is legal here, off the hot path.
type critState struct {
	ch     chan uint64
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	quorum atomic.Int64

	txns       atomic.Uint64 // decomposed transactions
	incomplete atomic.Uint64 // timelines missing a required stamp
	dropped    atomic.Uint64 // samples dropped on a full channel
	e2e        Histogram     // commit→acked (ns), decomposed txns only
	seg        [NumCritSegments]Histogram
}

// offer hands a completed sampled transaction to the collector. Never
// blocks: callers sit on frontier-publication paths.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (c *critState) offer(tid uint64) {
	if c.ch == nil {
		return
	}
	select {
	case c.ch <- tid:
	default:
		c.dropped.Add(1)
	}
}

// close drains and stops the collector. The stop channel (not the work
// channel) is closed: racing offers must never send on a closed
// channel.
func (c *critState) close() {
	c.once.Do(func() {
		if c.ch == nil {
			return
		}
		close(c.stop)
		c.wg.Wait()
	})
}

func (c *critState) snapshot() CritSnapshot {
	s := CritSnapshot{
		Txns:       c.txns.Load(),
		Incomplete: c.incomplete.Load(),
		Dropped:    c.dropped.Load(),
		E2E:        c.e2e.Snapshot(),
	}
	for i := range c.seg {
		s.Segments[i] = c.seg[i].Snapshot()
	}
	return s
}

// startCollector launches the background decomposition goroutine.
// Called from New when sampling is on.
func (o *Observer) startCollector() {
	o.crit.ch = make(chan uint64, 1024)
	o.crit.stop = make(chan struct{})
	o.crit.wg.Add(1)
	go o.collectLoop()
}

func (o *Observer) collectLoop() {
	defer o.crit.wg.Done()
	for {
		select {
		case tid := <-o.crit.ch:
			o.critObserve(tid)
		case <-o.crit.stop:
			// Final drain: everything offered before close is observed.
			for {
				select {
				case tid := <-o.crit.ch:
					o.critObserve(tid)
				default:
					return
				}
			}
		}
	}
}

func (o *Observer) critObserve(tid uint64) {
	cp, ok := DecomposeCritpath(tid, o.TraceOf(tid), int(o.crit.quorum.Load()))
	if !ok {
		o.crit.incomplete.Add(1)
		return
	}
	o.crit.txns.Add(1)
	o.crit.e2e.Observe(uint64(cp.Total))
	for i, d := range cp.Seg {
		o.crit.seg[i].Observe(uint64(d))
	}
}

// SetReplQuorum tells the collector the replication write quorum, so
// decompositions wait for the quorum-th replica fence (0 =
// unreplicated).
func (o *Observer) SetReplQuorum(q int) {
	o.crit.quorum.Store(int64(max(q, 0)))
}

// CritpathOf decomposes transaction tid from the live trace rings with
// the configured quorum — the debug-endpoint view of one transaction.
func (o *Observer) CritpathOf(tid uint64) (Critpath, bool) {
	return DecomposeCritpath(tid, o.TraceOf(tid), int(o.crit.quorum.Load()))
}

// CritSnapshot is the mergeable aggregate view of the critical-path
// collector.
type CritSnapshot struct {
	// Txns counts transactions decomposed into the segment histograms.
	Txns uint64
	// Incomplete counts sampled transactions whose timeline was missing
	// a required stamp (ring eviction, quorum fences not yet arrived).
	Incomplete uint64
	// Dropped counts samples dropped because the collector was behind.
	Dropped uint64
	// E2E is the commit→acked latency histogram (ns) over decomposed
	// transactions (the population the segment histograms tile).
	E2E HistSnapshot
	// Segments holds one time-on-critical-path histogram (ns) per
	// CritSegment; across a population, the segment sums add up to the
	// E2E sum.
	Segments [NumCritSegments]HistSnapshot
}

// Sub returns the interval aggregate between an earlier snapshot b and s.
func (s CritSnapshot) Sub(b CritSnapshot) CritSnapshot {
	out := CritSnapshot{
		Txns:       s.Txns - b.Txns,
		Incomplete: s.Incomplete - b.Incomplete,
		Dropped:    s.Dropped - b.Dropped,
		E2E:        s.E2E.Sub(b.E2E),
	}
	for i := range s.Segments {
		out.Segments[i] = s.Segments[i].Sub(b.Segments[i])
	}
	return out
}

// Merge returns the union of two aggregates.
func (s CritSnapshot) Merge(b CritSnapshot) CritSnapshot {
	out := CritSnapshot{
		Txns:       s.Txns + b.Txns,
		Incomplete: s.Incomplete + b.Incomplete,
		Dropped:    s.Dropped + b.Dropped,
		E2E:        s.E2E.Merge(b.E2E),
	}
	for i := range s.Segments {
		out.Segments[i] = s.Segments[i].Merge(b.Segments[i])
	}
	return out
}
