package obs

import "sync/atomic"

// EventKind labels one point of the transaction lifecycle.
type EventKind uint8

const (
	// EvCommit: the transaction committed in the Perform step (the
	// timestamp is taken before the ring publish, so it orders before
	// every downstream stamp of the same transaction).
	EvCommit EventKind = iota + 1
	// EvGroupSeal: the Persist coordinator sealed the group covering
	// the transaction and handed it to a log writer.
	EvGroupSeal
	// EvPersistFence: the group's log append and persist barrier
	// completed — the transaction is on NVM.
	EvPersistFence
	// EvReproApply: the Reproduce step applied the group to the
	// persistent data region.
	EvReproApply
	// EvReplShip: the Persist coordinator handed the sealed group to
	// the replication sink (frame build + per-peer enqueue).
	EvReplShip
	// EvReplSent: a peer's write loop finished writing the group's
	// frame to the socket. Arg is the peer index.
	EvReplSent
	// EvReplicaFence: a replica acknowledged the group: its local log
	// append and persist barrier completed. At is the ack's arrival
	// time on the primary's clock; Dur is the replica's self-measured
	// ingest duration (clock-free, so the fence span is anchored at
	// At-Dur..At). Arg is the peer index.
	EvReplicaFence
	// EvAcked: the quorum-gated acknowledged frontier covered the
	// transaction — client notifiers may fire from here.
	EvAcked
)

// String returns the lifecycle-stage name.
func (k EventKind) String() string {
	switch k {
	case EvCommit:
		return "commit"
	case EvGroupSeal:
		return "group-seal"
	case EvPersistFence:
		return "persist-fence"
	case EvReproApply:
		return "reproduce-apply"
	case EvReplShip:
		return "repl-ship"
	case EvReplSent:
		return "repl-sent"
	case EvReplicaFence:
		return "replica-fence"
	case EvAcked:
		return "acked"
	}
	return "unknown"
}

// Record is one trace stamp. Commit stamps cover a single transaction
// (MinTid == MaxTid); group stamps cover the sealed ID range. At is
// nanoseconds since the observer's epoch (monotonic), so subtracting
// two records of one transaction gives the stage latency between them.
// Arg carries a kind-specific operand (peer index on replication
// stamps); Dur a kind-specific duration in nanoseconds (fence span on
// EvPersistFence, replica ingest span on EvReplicaFence), zero when
// the kind has none.
type Record struct {
	Kind   EventKind
	MinTid uint64
	MaxTid uint64
	At     int64
	Arg    uint64
	Dur    int64
}

// traceRing is one event source's fixed-size trace buffer: a single
// writer goroutine stamps records, any number of readers scan them
// lock-free. Each slot is a seqlock (odd sequence = write in progress;
// a reader that observes an unstable or changed sequence discards the
// slot), so a reader never blocks the hot path and never observes a
// torn record — at worst it misses the slot being overwritten.
type traceRing struct {
	slots []traceSlot
	mask  uint64
	pos   atomic.Uint64 // next write index (monotonic)
}

type traceSlot struct {
	seq    atomic.Uint64
	kind   atomic.Uint64
	minTid atomic.Uint64
	maxTid atomic.Uint64
	at     atomic.Int64
	arg    atomic.Uint64
	dur    atomic.Int64
}

func newTraceRing(capacity int) *traceRing {
	c := uint64(1)
	for c < uint64(capacity) {
		c <<= 1
	}
	return &traceRing{slots: make([]traceSlot, c), mask: c - 1}
}

// put stamps one record. Single writer per ring.
//
//dudelint:noalloc
func (r *traceRing) put(kind EventKind, minTid, maxTid uint64, at int64, arg uint64, dur int64) {
	p := r.pos.Load()
	s := &r.slots[p&r.mask]
	s.seq.Store(2*p + 1) // odd: write in progress
	s.kind.Store(uint64(kind))
	s.minTid.Store(minTid)
	s.maxTid.Store(maxTid)
	s.at.Store(at)
	s.arg.Store(arg)
	s.dur.Store(dur)
	s.seq.Store(2*p + 2) // even: stable
	r.pos.Store(p + 1)
}

// collect appends to dst every stable record in the ring whose ID range
// contains tid (tid == 0 collects everything). Readers race the writer;
// slots mid-overwrite are skipped.
func (r *traceRing) collect(dst []Record, tid uint64) []Record {
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq&1 == 1 {
			continue
		}
		rec := Record{
			Kind:   EventKind(s.kind.Load()),
			MinTid: s.minTid.Load(),
			MaxTid: s.maxTid.Load(),
			At:     s.at.Load(),
			Arg:    s.arg.Load(),
			Dur:    s.dur.Load(),
		}
		if s.seq.Load() != seq {
			continue // overwritten mid-read
		}
		if tid != 0 && (tid < rec.MinTid || tid > rec.MaxTid) {
			continue
		}
		dst = append(dst, rec)
	}
	return dst
}
