package obs

import (
	"testing"
	"time"
)

// synthetic timeline: commit@100, seal@250, fence 400→500, replica
// fences (peer0 ack@900 ingest 150, peer1 ack@1200 ingest 200),
// acked@1300.
func replicatedTimeline() []Record {
	return []Record{
		{Kind: EvCommit, MinTid: 8, MaxTid: 8, At: 100},
		{Kind: EvGroupSeal, MinTid: 5, MaxTid: 9, At: 250},
		{Kind: EvPersistFence, MinTid: 5, MaxTid: 9, At: 500, Dur: 100},
		{Kind: EvReplShip, MinTid: 5, MaxTid: 9, At: 520},
		{Kind: EvReplSent, MinTid: 5, MaxTid: 9, At: 560, Arg: 0},
		{Kind: EvReplicaFence, MinTid: 5, MaxTid: 9, At: 900, Arg: 0, Dur: 150},
		{Kind: EvReplicaFence, MinTid: 5, MaxTid: 9, At: 1200, Arg: 1, Dur: 200},
		{Kind: EvAcked, MinTid: 8, MaxTid: 8, At: 1300},
	}
}

func TestDecomposeCritpathReplicated(t *testing.T) {
	cp, ok := DecomposeCritpath(8, replicatedTimeline(), 2)
	if !ok {
		t.Fatal("decomposition incomplete")
	}
	if !cp.Replicated || cp.Total != 1200 {
		t.Fatalf("cp = %+v", cp)
	}
	// Quorum 2 → the 2nd-smallest replica-fence arrival (1200, ingest
	// 200) sets the quorum boundary.
	want := [NumCritSegments]int64{
		SegRingDwell:    150, // 100→250
		SegSealWait:     150, // 250→400 (fence end 500 - dur 100)
		SegPersistFence: 100, // 400→500
		SegReplShip:     500, // 500→1000 (1200 - ingest 200)
		SegQuorumWait:   200, // 1000→1200
		SegNotify:       100, // 1200→1300
	}
	if cp.Seg != want {
		t.Fatalf("segments = %v, want %v", cp.Seg, want)
	}
	var sum int64
	for _, d := range cp.Seg {
		sum += d
	}
	if sum != cp.Total {
		t.Fatalf("segment sum %d != total %d", sum, cp.Total)
	}
}

func TestDecomposeCritpathUnreplicated(t *testing.T) {
	recs := replicatedTimeline()[:3]
	recs = append(recs, Record{Kind: EvAcked, MinTid: 8, MaxTid: 8, At: 600})
	cp, ok := DecomposeCritpath(8, recs, 0)
	if !ok {
		t.Fatal("decomposition incomplete")
	}
	if cp.Replicated {
		t.Fatal("unreplicated decomposition marked replicated")
	}
	if cp.Seg[SegReplShip] != 0 || cp.Seg[SegQuorumWait] != 0 {
		t.Fatalf("repl segments nonzero: %v", cp.Seg)
	}
	if cp.Seg[SegNotify] != 100 || cp.Total != 500 {
		t.Fatalf("cp = %+v", cp)
	}
}

func TestDecomposeCritpathIncomplete(t *testing.T) {
	full := replicatedTimeline()
	drop := func(kind EventKind) []Record {
		var out []Record
		for _, r := range full {
			if r.Kind != kind {
				out = append(out, r)
			}
		}
		return out
	}
	for _, kind := range []EventKind{EvCommit, EvGroupSeal, EvPersistFence, EvAcked} {
		if _, ok := DecomposeCritpath(8, drop(kind), 2); ok {
			t.Errorf("decomposed without %s", kind)
		}
	}
	// Quorum 2 but only one replica fence survived.
	one := append(drop(EvReplicaFence), Record{Kind: EvReplicaFence, MinTid: 5, MaxTid: 9, At: 900, Dur: 150})
	if _, ok := DecomposeCritpath(8, one, 2); ok {
		t.Error("decomposed with 1 of 2 quorum fences")
	}
	// ...which is fine at quorum 1.
	if cp, ok := DecomposeCritpath(8, one, 1); !ok || !cp.Replicated {
		t.Errorf("quorum-1 decomposition failed: %+v ok=%v", cp, ok)
	}
	// Records not covering the tid are invisible.
	if _, ok := DecomposeCritpath(4, full, 2); ok {
		t.Error("decomposed a tid outside the commit/acked stamps")
	}
}

// Out-of-order or skewed stamps must clamp into the window: the tiling
// identity holds and no segment goes negative.
func TestDecomposeCritpathClamping(t *testing.T) {
	recs := []Record{
		{Kind: EvCommit, MinTid: 3, MaxTid: 3, At: 1000},
		{Kind: EvGroupSeal, MinTid: 1, MaxTid: 4, At: 400},               // before commit
		{Kind: EvPersistFence, MinTid: 1, MaxTid: 4, At: 5000, Dur: 100}, // after acked
		{Kind: EvReplicaFence, MinTid: 1, MaxTid: 4, At: 1100, Dur: 900}, // ingest start before commit
		{Kind: EvAcked, MinTid: 3, MaxTid: 3, At: 1500},
	}
	cp, ok := DecomposeCritpath(3, recs, 1)
	if !ok {
		t.Fatal("decomposition incomplete")
	}
	var sum int64
	for s, d := range cp.Seg {
		if d < 0 {
			t.Fatalf("segment %s negative: %d", CritSegment(s), d)
		}
		sum += d
	}
	if sum != cp.Total || cp.Total != 500 {
		t.Fatalf("sum %d, total %d, want 500", sum, cp.Total)
	}
}

// TestCritpathCollector drives a full synthetic lifecycle through the
// Observer hooks and waits for the background collector to fold it
// into the aggregate.
func TestCritpathCollector(t *testing.T) {
	o := New(Config{SampleEvery: 1, Sources: 6})
	defer o.Close()
	o.SetReplQuorum(2)
	o.Commit(0, 1)
	seal := o.GroupSealed(1, 1, 1, 1, 4)
	o.GroupPersisted(1, 1, 1, seal, o.Now(), o.Now()+1)
	o.ReplShipped(4, 1, 1)
	o.ReplSent(4, 1, 1, 0)
	o.ReplicaFenced(4, 1, 1, 0, 500)
	o.ReplicaFenced(4, 1, 1, 1, 700)
	o.DurableAdvanced(1)
	o.AckedAdvanced(5, 1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		c := o.Snapshot().Crit
		if c.Txns == 1 {
			if c.E2E.Count != 1 || c.Segments[SegQuorumWait].Count != 1 {
				t.Fatalf("crit snapshot: %+v", c)
			}
			var segSum uint64
			for _, s := range c.Segments {
				segSum += s.Sum
			}
			if segSum != c.E2E.Sum {
				t.Fatalf("segment sum %d != e2e sum %d", segSum, c.E2E.Sum)
			}
			break
		}
		if c.Incomplete != 0 {
			t.Fatalf("collector counted the txn incomplete: %+v", c)
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector never folded the txn: %+v", c)
		}
		time.Sleep(time.Millisecond)
	}
	// Sub/Merge are closed over the crit aggregate too.
	s := o.Snapshot()
	if d := s.Sub(s); d.Crit.Txns != 0 || d.Crit.E2E.Count != 0 {
		t.Fatalf("self-sub not zero: %+v", d.Crit)
	}
	if m := s.Crit.Merge(s.Crit); m.Txns != 2*s.Crit.Txns {
		t.Fatalf("merge txns = %d", m.Txns)
	}
}
