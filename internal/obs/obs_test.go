package obs

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if want := uint64(0 + 1 + 2 + 3 + 4 + 1000 + 1<<40); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	// v=0 → bucket 0, v=1 → 1, v∈{2,3} → 2, v=4 → 3.
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[3] != 1 {
		t.Fatalf("low buckets = %v", s.Counts[:4])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7: [64,127]
	}
	h.Observe(1 << 20)
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 64 || q > 127 {
		t.Errorf("p50 = %d, want within [64,127]", q)
	}
	if q := s.Quantile(0.999); q < 1<<19 {
		t.Errorf("p999 = %d, want in the 2^20 bucket", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestHistogramMergeSub(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(30)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 60 {
		t.Fatalf("merge = count %d sum %d", m.Count, m.Sum)
	}
	before := a.Snapshot()
	a.Observe(40)
	iv := a.Snapshot().Sub(before)
	if iv.Count != 1 || iv.Sum != 40 {
		t.Fatalf("interval = count %d sum %d", iv.Count, iv.Sum)
	}
}

func TestTraceRingWrap(t *testing.T) {
	r := newTraceRing(8)
	for i := uint64(1); i <= 20; i++ {
		r.put(EvCommit, i, i, int64(i), 0, 0)
	}
	recs := r.collect(nil, 0)
	if len(recs) != 8 {
		t.Fatalf("collected %d records from a ring of 8", len(recs))
	}
	for _, rec := range recs {
		if rec.MinTid <= 12 {
			t.Errorf("record for tid %d survived 20 puts in a ring of 8", rec.MinTid)
		}
	}
	if got := r.collect(nil, 15); len(got) != 1 || got[0].MinTid != 15 {
		t.Fatalf("collect(tid=15) = %v", got)
	}
}

func TestSampling(t *testing.T) {
	o := New(Config{SampleEvery: 4, Sources: 1})
	for tid := uint64(1); tid <= 12; tid++ {
		if got, want := o.Sampled(tid), tid%4 == 0; got != want {
			t.Errorf("Sampled(%d) = %v, want %v", tid, got, want)
		}
	}
	cases := []struct {
		min, max uint64
		want     bool
	}{
		{1, 3, false}, {1, 4, true}, {4, 4, true}, {5, 7, false}, {5, 8, true}, {5, 100, true},
	}
	for _, c := range cases {
		if got := o.rangeSampled(c.min, c.max); got != c.want {
			t.Errorf("rangeSampled(%d,%d) = %v, want %v", c.min, c.max, got, c.want)
		}
	}
	off := New(Config{SampleEvery: 0, Sources: 1})
	if off.Sampled(4) || off.rangeSampled(1, 100) {
		t.Error("sampling disabled but Sampled/rangeSampled returned true")
	}
}

func TestTraceOfTimeline(t *testing.T) {
	o := New(Config{SampleEvery: 1, Sources: 3})
	o.Commit(0, 7)
	seal := o.GroupSealed(1, 6, 9, 4, 16)
	start := o.Now()
	end := o.Now() + 1
	o.GroupPersisted(1, 6, 9, seal, start, end)
	o.GroupApplied(2, 6, 9)
	recs := o.TraceOf(7)
	if len(recs) != 4 {
		t.Fatalf("TraceOf(7) = %d records, want 4: %v", len(recs), recs)
	}
	want := []EventKind{EvCommit, EvGroupSeal, EvPersistFence, EvReproApply}
	var last int64 = -1
	for i, r := range recs {
		if r.Kind != want[i] {
			t.Errorf("record %d kind = %s, want %s", i, r.Kind, want[i])
		}
		if r.At < last {
			t.Errorf("record %d out of time order: %d < %d", i, r.At, last)
		}
		last = r.At
	}
	if got := o.TraceOf(10); len(got) != 0 {
		t.Errorf("TraceOf(10) = %v, want none (outside every range)", got)
	}
}

func TestPendingLatency(t *testing.T) {
	o := New(Config{SampleEvery: 1, Sources: 1})
	o.Commit(0, 1)
	o.Commit(0, 2)
	o.DurableAdvanced(1)
	s := o.Snapshot()
	if s.CommitDurable.Count != 1 {
		t.Fatalf("commit→durable count = %d, want 1", s.CommitDurable.Count)
	}
	o.DurableAdvanced(5)
	o.ReproducedAdvanced(5)
	o.AckedAdvanced(0, 5)
	s = o.Snapshot()
	if s.CommitDurable.Count != 2 || s.CommitReproduced.Count != 2 {
		t.Fatalf("after full advance: durable %d reproduced %d, want 2/2",
			s.CommitDurable.Count, s.CommitReproduced.Count)
	}
	if o.pendN.Load() != 0 {
		t.Fatalf("pendN = %d after draining everything", o.pendN.Load())
	}
	o.Close()
}

// TestDisabledHooksAllocFree pins the disabled-sampling hot path at
// zero allocations: tracing off must cost a comparison, not garbage.
func TestDisabledHooksAllocFree(t *testing.T) {
	o := New(Config{SampleEvery: 0, Sources: 2})
	tid := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		tid++
		o.Commit(0, tid)
		o.DurableAdvanced(tid)
		o.ReproducedAdvanced(tid)
	}); n != 0 {
		t.Fatalf("disabled per-txn hooks allocate %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tid++
		seal := o.GroupSealed(1, tid, tid, 1, 4)
		o.GroupPersisted(1, tid, tid, seal, seal, seal+1)
		o.GroupApplied(1, tid, tid)
	}); n != 0 {
		t.Fatalf("per-group hooks allocate %.1f/op, want 0", n)
	}
}

// TestSampledStampAllocFree pins the sampled ring stamp itself at zero
// allocations (the pending-latency append may grow its slice; the
// slices are primed first).
func TestSampledStampAllocFree(t *testing.T) {
	o := New(Config{SampleEvery: 1, Sources: 1})
	o.pendDur = make([]pendTx, 0, 4096)
	o.pendRepro = make([]pendTx, 0, 4096)
	o.pendAck = make([]pendTx, 0, 4096)
	tid := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		tid++
		o.Commit(0, tid)
	}); n != 0 {
		t.Fatalf("sampled Commit allocates %.1f/op, want 0", n)
	}
}

// TestTraceRingReaderRace drives a writer and a concurrent reader over
// one ring; under -race this proves the seqlock publication is clean,
// and in any mode it checks a reader never observes a torn record.
func TestTraceRingReaderRace(t *testing.T) {
	r := newTraceRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Tear detection: every field of a stable record carries i.
			r.put(EvCommit, i, i, int64(i), i, int64(i))
		}
	}()
	for n := 0; n < 200; n++ {
		for _, rec := range r.collect(nil, 0) {
			if rec.MinTid != rec.MaxTid || rec.At != int64(rec.MinTid) ||
				rec.Arg != rec.MinTid || rec.Dur != rec.At {
				t.Fatalf("torn record: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestTraceOfWraparoundRace races TraceOf against a writer that laps a
// tiny ring many times over: a timeline read mid-wrap must come back
// either as internally consistent records or as a clean miss — never
// torn — and once the writer quiesces, the newest transaction's full
// timeline is reconstructible. Run under -race this also proves the
// seqlock publication across the wrap boundary.
func TestTraceOfWraparoundRace(t *testing.T) {
	o := New(Config{SampleEvery: 1, Sources: 1, RingEntries: 8})
	defer o.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var lastTid atomic.Uint64
	// One timeline = three adjacent stamps; a ring of 8 holds barely two
	// timelines, so the reader constantly observes slots mid-overwrite.
	stamp := func(tid uint64) {
		o.rings[0].put(EvCommit, tid, tid, int64(tid*10), tid, int64(tid))
		o.rings[0].put(EvGroupSeal, tid, tid, int64(tid*10+1), tid, int64(tid))
		o.rings[0].put(EvPersistFence, tid, tid, int64(tid*10+2), tid, int64(tid))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			stamp(i)
			lastTid.Store(i)
		}
	}()
	for lastTid.Load() == 0 {
		runtime.Gosched() // single-CPU hosts: let the writer start
	}
	for n := 0; n < 500; n++ {
		tid := lastTid.Load()
		recs := o.TraceOf(tid)
		// Complete, partial-but-consistent, or clean miss — each
		// surviving record must carry tid in every field (tear check)
		// and the timeline must stay time-ordered.
		var prevAt int64 = -1
		for _, rec := range recs {
			if rec.MinTid != tid || rec.MaxTid != tid || rec.Arg != tid ||
				rec.Dur != int64(tid) || rec.At/10 != int64(tid) {
				t.Fatalf("torn record for tid %d: %+v", tid, rec)
			}
			if rec.At <= prevAt {
				t.Fatalf("timeline out of order for tid %d: %v", tid, recs)
			}
			prevAt = rec.At
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: the newest timeline survived the last lap intact.
	final := lastTid.Load()
	recs := o.TraceOf(final)
	if len(recs) != 3 {
		t.Fatalf("quiescent TraceOf(%d) = %d records, want the complete 3-stamp timeline:\n%v",
			final, len(recs), recs)
	}
	for i, kind := range []EventKind{EvCommit, EvGroupSeal, EvPersistFence} {
		if recs[i].Kind != kind {
			t.Fatalf("record %d kind %s, want %s", i, recs[i].Kind, kind)
		}
	}
}

func TestPromRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(200)
	var sb strings.Builder
	pw := NewPromWriter(&sb)
	pw.Gauge("dudetm_durable_tid", "durable frontier", 42)
	pw.Header("dudetm_stage_queue_depth", "gauge", "backlog")
	pw.Sample("dudetm_stage_queue_depth", `stage="persist"`, 3)
	pw.Histogram("dudetm_fence_seconds", "fence duration", h.Snapshot(), 1e-9)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	m, err := ParseProm(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if m["dudetm_durable_tid"] != 42 {
		t.Errorf("gauge = %v", m["dudetm_durable_tid"])
	}
	if m[`dudetm_stage_queue_depth{stage="persist"}`] != 3 {
		t.Errorf("labeled gauge = %v", m[`dudetm_stage_queue_depth{stage="persist"}`])
	}
	if m["dudetm_fence_seconds_count"] != 2 {
		t.Errorf("hist count = %v", m["dudetm_fence_seconds_count"])
	}
	if m[`dudetm_fence_seconds_bucket{le="+Inf"}`] != 2 {
		t.Errorf("+Inf bucket = %v", m[`dudetm_fence_seconds_bucket{le="+Inf"}`])
	}
	for k, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("series %s = %v", k, v)
		}
	}
}

func BenchmarkCommitDisabled(b *testing.B) {
	o := New(Config{SampleEvery: 0, Sources: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Commit(0, uint64(i))
	}
}

func BenchmarkCommitSampled(b *testing.B) {
	o := New(Config{SampleEvery: 1, Sources: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Commit(0, uint64(i)+1)
		if i%64 == 0 {
			o.DurableAdvanced(uint64(i) + 1)
			o.ReproducedAdvanced(uint64(i) + 1)
		}
	}
}
