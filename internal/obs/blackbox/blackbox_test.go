package blackbox

import (
	"hash/crc32"
	"testing"

	"dudetm/internal/pmem"
)

func newRing(t *testing.T, entries uint64) (*pmem.Device, *Recorder) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: Size(entries) + 4096})
	Format(dev, 0, entries)
	r, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	return dev, r
}

func TestStampFlushDecode(t *testing.T) {
	dev, r := newRing(t, 8)
	r.Stamp(KindGroupSeal, 1, 4, 4)
	r.Stamp(KindPersistFence, 1, 4, 0)
	r.Stamp(KindDurable, 4, 0, 0)
	r.Flush()

	// Flush alone (no fence) is enough to survive a power failure.
	dev.Crash()
	recs, torn, err := Decode(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Errorf("torn = %d, want 0", torn)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	want := []struct {
		kind    Kind
		a, b, c uint64
	}{
		{KindGroupSeal, 1, 4, 4},
		{KindPersistFence, 1, 4, 0},
		{KindDurable, 4, 0, 0},
	}
	for i, w := range want {
		got := recs[i]
		if got.Seq != uint64(i+1) || got.Kind != w.kind || got.A != w.a || got.B != w.b || got.C != w.c {
			t.Errorf("recs[%d] = %+v, want seq %d kind %v a/b/c %d/%d/%d",
				i, got, i+1, w.kind, w.a, w.b, w.c)
		}
		if got.At == 0 {
			t.Errorf("recs[%d] has no timestamp", i)
		}
	}
}

func TestUnflushedStampLostOnCrash(t *testing.T) {
	dev, r := newRing(t, 8)
	r.Stamp(KindGroupSeal, 1, 1, 1)
	r.Flush()
	r.Stamp(KindPersistFence, 1, 1, 0) // never flushed
	dev.Crash()
	recs, torn, err := Decode(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != KindGroupSeal {
		t.Fatalf("decoded %v, want only the flushed seal stamp", recs)
	}
	if torn != 0 {
		t.Errorf("torn = %d, want 0 (lost line reverts to zero, not garbage)", torn)
	}
}

func TestWrapKeepsNewestAndResumes(t *testing.T) {
	dev, r := newRing(t, 4)
	for i := uint64(1); i <= 10; i++ {
		r.Stamp(KindDurable, i, 0, 0)
	}
	r.Flush()
	recs, _, err := Decode(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("decoded %d records, want ring capacity 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("recs[%d].Seq = %d, want %d (newest survive, in order)", i, rec.Seq, want)
		}
	}

	// Reopening resumes after the highest surviving stamp.
	r2, err := Open(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2.Stamp(KindBoot, 0, 0, 0)
	r2.Flush()
	recs, _, _ = Decode(dev, 0)
	last := recs[len(recs)-1]
	if last.Seq != 11 || last.Kind != KindBoot {
		t.Errorf("post-reopen tail = %+v, want boot at seq 11", last)
	}
}

func TestTornSlotCounted(t *testing.T) {
	dev, r := newRing(t, 8)
	r.Stamp(KindDurable, 1, 0, 0)
	r.Flush()
	// Corrupt one word of a second, half-written stamp: the slot CRC
	// fails, so it must count as torn, not decode as an event.
	r.Stamp(KindDurable, 2, 0, 0)
	dev.Store8(HeaderBytes+2*SlotBytes+24, 0xdeadbeef)
	r.Flush()
	recs, torn, err := Decode(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 1 {
		t.Errorf("torn = %d, want 1", torn)
	}
	if len(recs) != 1 || recs[0].A != 1 {
		t.Errorf("recs = %v, want only the intact stamp", recs)
	}
}

// TestStampPathAllocs pins the acceptance criterion: zero allocations on
// the steady-state stamp path, including the batched write-back. One lap
// around the ring warms the device's per-line bookkeeping (the simulated
// cache saves a persisted copy the first time each line is dirtied — a
// cold-start cost with no real-hardware counterpart, recycled thereafter).
func TestStampPathAllocs(t *testing.T) {
	_, r := newRing(t, 64)
	for i := 0; i < 64; i++ {
		r.Stamp(KindGroupSeal, 0, 0, 0)
	}
	r.Flush()
	if n := testing.AllocsPerRun(1000, func() {
		r.Stamp(KindGroupSeal, 1, 2, 3)
	}); n != 0 {
		t.Errorf("Stamp allocates %.1f objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.Stamp(KindPersistFence, 1, 2, 3)
		r.Flush()
	}); n != 0 {
		t.Errorf("Stamp+Flush allocates %.1f objects per call, want 0", n)
	}
}

// TestSlotCRCMatchesStdlib pins the hand-rolled stamp-path CRC to the
// stdlib implementation the decoder uses.
func TestSlotCRCMatchesStdlib(t *testing.T) {
	b := make([]byte, 56)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	if got, want := slotCRC(b), crc32.Checksum(b, crcTable); got != want {
		t.Fatalf("slotCRC = %#x, crc32.Checksum = %#x", got, want)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 4096})
	if _, err := Open(dev, 0); err == nil {
		t.Error("Open accepted an unformatted region")
	}
	Format(dev, 0, 8)
	dev.Store8(8, 999) // corrupt the entry count under the CRC
	dev.Persist(8, 8)
	if _, err := Open(dev, 0); err == nil {
		t.Error("Open accepted a corrupt header")
	}
}
