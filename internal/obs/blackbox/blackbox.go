// Package blackbox is a persistent flight recorder: a small append-only
// ring of fixed-size milestone records stored inside the simulated NVM
// device, in its own pool region. The live pipeline stamps it at
// persistence milestones (group seal, persist fence, durable-ID advance,
// log recycle, watchdog stall); after a crash, the surviving stamps are
// the only record of what the pipeline was doing when power failed, and
// the forensics pass decodes them into the CrashReport.
//
// Durability discipline: each record occupies exactly one cache line, so
// it persists atomically, and carries a CRC-32C so a line that never made
// it out of the cache (or was half-written when the recorder was lapped)
// reads as a torn slot rather than a bogus event. Stamps are volatile
// stores; Flush writes the pending slots back without a fence — batched
// so a group's stamps ride the pipeline's existing barriers — and Sync
// adds a fence for rare events (boot, stall) that must not wait for one.
// The stamp path takes one mutex and allocates nothing.
package blackbox

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"dudetm/internal/pmem"
)

// Ring layout on the device, starting at the region offset:
//
//	[0,  64)                 header (magic, entries, crc), one line
//	[64, 64+entries*64)      record slots, one line each; slot = seq % entries
const (
	ringMagic = 0x4455444542423031 // "DUDEBB01"

	// HeaderBytes is the size of the ring header.
	HeaderBytes = 64
	// SlotBytes is the size of one record slot: one cache line, so a
	// record persists atomically.
	SlotBytes = 64
)

// Record slot layout (little-endian uint64 fields):
//
//	[ 0] seq    (1-based; 0 marks a never-written slot)
//	[ 8] kind
//	[16] at     (wall clock, Unix nanoseconds)
//	[24] a
//	[32] b
//	[40] c
//	[48] reserved (zero)
//	[56] crc    (CRC-32C of bytes [0,56))

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// slotCRC is a byte-at-a-time CRC-32C, identical to
// crc32.Checksum(b, crcTable). The stdlib entry point dispatches through
// an arch-specific function variable, which escape analysis cannot see
// through, so a stack slot buffer passed to it would be forced to the
// heap — and the stamp path must not allocate.
func slotCRC(b []byte) uint32 {
	crc := ^uint32(0)
	for _, v := range b {
		crc = crcTable[byte(crc)^v] ^ (crc >> 8)
	}
	return ^crc
}

// Kind identifies a pipeline milestone.
type Kind uint64

const (
	// KindBoot marks a mount (Create or Recover); a is the start
	// transaction ID, b the mode. Forensics analyzes only stamps after
	// the last boot — earlier epochs may reuse transaction IDs that were
	// discarded by recovery.
	KindBoot Kind = iota + 1
	// KindGroupSeal marks a sealed persist group; a/b are MinTid/MaxTid,
	// c the transaction count.
	KindGroupSeal
	// KindFenceBegin marks a persist worker starting a group's log
	// append (flush+fence); a/b are MinTid/MaxTid, c the worker index.
	KindFenceBegin
	// KindPersistFence marks the group's persist barrier completing;
	// a/b are MinTid/MaxTid, c the worker index.
	KindPersistFence
	// KindDurable marks a durable-frontier advance; a is the frontier.
	KindDurable
	// KindRecycle marks a log recycle; a is the log index, b the next
	// live sequence number, c the reproduced watermark persisted.
	KindRecycle
	// KindStall marks a watchdog stall episode; a encodes the stage
	// (1 persist, 2 reproduce), b/c the durable/reproduced frontiers.
	KindStall
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindBoot:
		return "boot"
	case KindGroupSeal:
		return "group-seal"
	case KindFenceBegin:
		return "fence-begin"
	case KindPersistFence:
		return "persist-fence"
	case KindDurable:
		return "durable"
	case KindRecycle:
		return "recycle"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("kind-%d", uint64(k))
}

// Record is one decoded flight-recorder stamp.
type Record struct {
	Seq  uint64
	Kind Kind
	At   int64 // Unix nanoseconds
	A    uint64
	B    uint64
	C    uint64
}

// Size returns the device bytes a ring with the given slot count
// occupies.
func Size(entries uint64) uint64 { return HeaderBytes + entries*SlotBytes }

// Recorder appends milestone records to the ring. Stamp may be called
// from any pipeline goroutine; a single mutex serializes slot claims
// (milestones are per-group events, orders of magnitude rarer than
// transactions, so the lock is never contended enough to matter).
type Recorder struct {
	dev     *pmem.Device
	base    uint64 // first slot address
	entries uint64

	mu        sync.Mutex
	seq       uint64 // next sequence to claim (1-based)
	flushed   uint64 // first sequence not yet written back
	pendBytes uint64 // flushed-but-unfenced volume, for Sync's fence
}

// Format initializes the ring header at off with the given slot count
// and persists it. The slots are left as-is: a fresh device reads as
// zero (empty), and reformatting over old stamps is prevented by the
// sequence numbers restarting — callers create rings only on fresh
// pools.
func Format(dev *pmem.Device, off, entries uint64) {
	if entries == 0 {
		panic("blackbox: zero-entry ring")
	}
	var b [HeaderBytes]byte
	binary.LittleEndian.PutUint64(b[0:], ringMagic)
	binary.LittleEndian.PutUint64(b[8:], entries)
	crc := crc32.Checksum(b[:16], crcTable)
	binary.LittleEndian.PutUint64(b[16:], uint64(crc))
	dev.Store(off, b[:])
	dev.Persist(off, HeaderBytes)
}

// readRingHeader validates the header at off and returns the slot count.
func readRingHeader(dev *pmem.Device, off uint64) (uint64, error) {
	var b [HeaderBytes]byte
	dev.Load(off, b[:])
	if binary.LittleEndian.Uint64(b[0:]) != ringMagic {
		return 0, fmt.Errorf("blackbox: bad ring magic at %#x", off)
	}
	if uint64(crc32.Checksum(b[:16], crcTable)) != binary.LittleEndian.Uint64(b[16:]) {
		return 0, fmt.Errorf("blackbox: corrupt ring header at %#x", off)
	}
	return binary.LittleEndian.Uint64(b[8:]), nil
}

// Open mounts the ring at off for recording, resuming the sequence after
// the highest surviving stamp so reboots never reuse a sequence number.
func Open(dev *pmem.Device, off uint64) (*Recorder, error) {
	entries, err := readRingHeader(dev, off)
	if err != nil {
		return nil, err
	}
	r := &Recorder{dev: dev, base: off + HeaderBytes, entries: entries}
	recs, _, err := Decode(dev, off)
	if err != nil {
		return nil, err
	}
	r.seq = 1
	if n := len(recs); n > 0 {
		r.seq = recs[n-1].Seq + 1
	}
	r.flushed = r.seq
	return r, nil
}

// Entries returns the ring's slot count.
func (r *Recorder) Entries() uint64 { return r.entries }

func (r *Recorder) slotAddr(seq uint64) uint64 {
	return r.base + (seq%r.entries)*SlotBytes
}

// Stamp appends one milestone record. The store is volatile until a
// later Flush or Sync; a crash before then loses the stamp, exactly as
// it loses any other unflushed line. Allocation-free.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (r *Recorder) Stamp(kind Kind, a, b, c uint64) {
	at := time.Now().UnixNano()
	r.mu.Lock()
	var buf [SlotBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], r.seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(kind))
	binary.LittleEndian.PutUint64(buf[16:], uint64(at))
	binary.LittleEndian.PutUint64(buf[24:], a)
	binary.LittleEndian.PutUint64(buf[32:], b)
	binary.LittleEndian.PutUint64(buf[40:], c)
	binary.LittleEndian.PutUint64(buf[56:], uint64(slotCRC(buf[:56])))
	r.dev.Store(r.slotAddr(r.seq), buf[:])
	r.seq++
	r.mu.Unlock()
}

// Flush writes the pending stamps back (CLWB) without a fence: on this
// device a written-back line survives a crash, and the stamps only claim
// that their milestone was reached, never that later data is durable, so
// no ordering barrier is needed on the steady-state path. Allocation-free.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (r *Recorder) Flush() {
	r.mu.Lock()
	r.flushLocked()
	r.mu.Unlock()
}

func (r *Recorder) flushLocked() {
	lo, hi := r.flushed, r.seq
	if lo == hi {
		return
	}
	if hi-lo >= r.entries {
		// The recorder lapped itself since the last flush; every slot is
		// pending.
		r.pendBytes += r.dev.FlushRange(r.base, r.entries*SlotBytes)
	} else {
		for s := lo; s < hi; s++ {
			r.pendBytes += r.dev.FlushRange(r.slotAddr(s), SlotBytes)
		}
	}
	r.flushed = hi
}

// Sync flushes and fences the pending stamps — for rare milestones
// (boot, stall) that must be on stable media before the caller proceeds.
//
//dudelint:fencebudget 1
//dudelint:noalloc
func (r *Recorder) Sync() {
	r.mu.Lock()
	r.flushLocked()
	bytes := r.pendBytes
	r.pendBytes = 0
	r.mu.Unlock()
	r.dev.Fence(bytes)
}

// Decode reads every surviving record from the ring at off — typically
// from a crash image — returning them in sequence order plus the count
// of torn slots (written but failing their CRC: a stamp that was in the
// cache, or mid-overwrite, when power failed).
func Decode(dev *pmem.Device, off uint64) ([]Record, int, error) {
	entries, err := readRingHeader(dev, off)
	if err != nil {
		return nil, 0, err
	}
	var recs []Record
	torn := 0
	buf := make([]byte, SlotBytes)
	for i := uint64(0); i < entries; i++ {
		dev.Load(off+HeaderBytes+i*SlotBytes, buf)
		seq := binary.LittleEndian.Uint64(buf[0:])
		kind := binary.LittleEndian.Uint64(buf[8:])
		if seq == 0 && kind == 0 {
			continue // never written
		}
		want := binary.LittleEndian.Uint64(buf[56:])
		if uint64(crc32.Checksum(buf[:56], crcTable)) != want {
			torn++
			continue
		}
		recs = append(recs, Record{
			Seq:  seq,
			Kind: Kind(kind),
			At:   int64(binary.LittleEndian.Uint64(buf[16:])),
			A:    binary.LittleEndian.Uint64(buf[24:]),
			B:    binary.LittleEndian.Uint64(buf[32:]),
			C:    binary.LittleEndian.Uint64(buf[40:]),
		})
	}
	sortRecords(recs)
	return recs, torn, nil
}

// sortRecords orders by sequence (insertion sort: the ring reads out
// nearly sorted — at most one rotation point).
func sortRecords(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j-1].Seq > recs[j].Seq; j-- {
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
}
