package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the exporter's exact output and re-parses
// it to prove the document is the trace-event JSON Perfetto loads:
// top-level traceEvents array, every event carrying name/ph/pid/tid,
// "X" spans with non-negative dur, metadata naming both processes.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, 8, replicatedTimeline()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden (run with -update to regenerate)\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// Structural validation: the bytes must round-trip as the
	// trace-event object format.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	procs := map[int]string{}
	var spans, instants int
	sawReplicaLane := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event missing required keys: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procs[*ev.Pid] = ev.Args["name"].(string)
			}
		case "X":
			spans++
			if ev.Ts == nil || ev.Dur < 0 {
				t.Fatalf("bad span: %+v", ev)
			}
		case "i":
			instants++
			if ev.Ts == nil || ev.S == "" {
				t.Fatalf("instant missing ts or scope: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if *ev.Pid == ChromePidReplicas && ev.Ph == "X" {
			sawReplicaLane = true
		}
	}
	if procs[ChromePidPrimary] != "primary" || procs[ChromePidReplicas] != "replicas" {
		t.Fatalf("process names = %v", procs)
	}
	// Fixture: persist fence + 2 replica fences are spans, the rest
	// instants.
	if spans != 3 || instants != 5 {
		t.Fatalf("spans = %d, instants = %d", spans, instants)
	}
	if !sawReplicaLane {
		t.Fatal("no replica-lane span in export")
	}
}

// The generic event writer (forensics -chrome path) emits the same
// envelope around caller-built events.
func TestWriteChromeEvents(t *testing.T) {
	var buf bytes.Buffer
	events := []ChromeEvent{
		chromeMeta("process_name", 1, 0, "dudesrv"),
		{Name: "seal", Ph: "i", Ts: 1.5, Pid: 1, Tid: 1, S: "t"},
	}
	if err := WriteChromeEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents missing: %s", buf.Bytes())
	}
}
