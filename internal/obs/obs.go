// Package obs is the low-overhead observability layer of the DudeTM
// pipeline: per-source lock-free trace rings that stamp each sampled
// transaction at commit, group-seal, persist-fence and reproduce-apply
// (so TraceOf reconstructs the full Perform→Persist→Reproduce
// timeline), power-of-two-bucket latency histograms with mergeable
// snapshots, and a Prometheus text-format renderer for live scraping.
//
// The package deliberately knows nothing about the transaction system:
// dudetm calls the stamp hooks at its lifecycle points and obs only
// records. Per-transaction work (trace stamps, commit→durable latency
// tracking) is sampled 1-in-N and costs a single comparison when
// sampling is disabled; per-group work (fence duration, group size,
// queue dwell) is a few atomic adds and is always on.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes an Observer.
type Config struct {
	// SampleEvery enables lifecycle tracing for every N-th transaction
	// ID (1 traces everything, 0 disables tracing and per-transaction
	// latency sampling entirely).
	SampleEvery int
	// Sources is the number of single-writer event sources (one trace
	// ring each): Perform threads, the Persist coordinator and workers,
	// and the Reproduce loop.
	Sources int
	// RingEntries is the per-source trace-ring capacity (default 4096,
	// rounded up to a power of two).
	RingEntries int
}

// Observer records lifecycle traces and latency histograms for one
// system instance. All methods are safe for concurrent use; each trace
// ring additionally requires a single writer (the source goroutine it
// belongs to) — except the two replication rings, which are written by
// several goroutines (per-peer sender loops, the acked-frontier
// publishers) and are serialized by a dedicated mutex each (replMu for
// the ship/sent/replica-fence ring, mu for the acked ring, stamped only
// inside the pendAck drain). One lock domain per ring: two independent
// locks writing one ring would tear its position counter.
type Observer struct {
	sampleEvery uint64
	epoch       time.Time
	rings       []*traceRing

	// replMu serializes the multi-writer replication trace ring
	// (EvReplShip from the coordinator, EvReplSent / EvReplicaFence
	// from per-peer sender goroutines).
	replMu sync.Mutex

	// crit is the critical-path collector (critpath.go): completed
	// sampled transactions are decomposed off the hot path by a
	// background goroutine fed through a non-blocking channel.
	crit critState

	// Histograms. Latencies are nanoseconds.
	commitDurable Histogram // commit → durable-frontier pass (sampled)
	commitRepro   Histogram // commit → reproduced-frontier pass (sampled)
	fenceDur      Histogram // log append + persist barrier duration, per group
	queueDwell    Histogram // group seal → persist-worker pickup, per group
	groupTxns     Histogram // transactions per sealed group
	groupEntries  Histogram // combined log entries per sealed group
	epochGroups   Histogram // groups per coalesced replay epoch
	epochEntries  Histogram // entries surviving coalescing per replay epoch

	sampledCommits atomic.Uint64

	// Sampled commits whose durability / reproduction latency is still
	// pending. pendN gates the frontier-advance hooks so an advance
	// with nothing pending costs one atomic load.
	mu        sync.Mutex
	pendDur   []pendTx
	pendRepro []pendTx
	pendAck   []pendTx
	pendN     atomic.Int64
}

type pendTx struct {
	tid uint64
	at  int64
}

// New builds an Observer. cfg.Sources must cover every source index
// the stamp hooks will be called with.
func New(cfg Config) *Observer {
	if cfg.RingEntries <= 0 {
		cfg.RingEntries = 4096
	}
	if cfg.Sources <= 0 {
		cfg.Sources = 1
	}
	o := &Observer{
		sampleEvery: uint64(max(cfg.SampleEvery, 0)),
		epoch:       time.Now(),
		rings:       make([]*traceRing, cfg.Sources),
	}
	for i := range o.rings {
		o.rings[i] = newTraceRing(cfg.RingEntries)
	}
	if o.sampleEvery != 0 {
		o.startCollector()
	}
	return o
}

// Close stops the critical-path collector after draining it. Call it
// once the stamp sources have quiesced (e.g. after the pipeline's
// goroutines joined); safe to call more than once.
func (o *Observer) Close() { o.crit.close() }

// Now returns nanoseconds since the observer's epoch on the monotonic
// clock — the timestamp base of every trace record.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) Now() int64 { return int64(time.Since(o.epoch)) }

// SampleEvery returns the configured sampling period (0 = disabled).
func (o *Observer) SampleEvery() int { return int(o.sampleEvery) }

// Sampled reports whether transaction tid is traced.
func (o *Observer) Sampled(tid uint64) bool {
	n := o.sampleEvery
	return n != 0 && tid%n == 0
}

// rangeSampled reports whether any transaction in [minTid, maxTid] is
// traced (i.e. the range contains a multiple of the sampling period).
func (o *Observer) rangeSampled(minTid, maxTid uint64) bool {
	n := o.sampleEvery
	return n != 0 && maxTid/n*n >= minTid
}

// Commit stamps a committed write transaction. Call it on the
// committing thread before the transaction is published to the Persist
// step, so the commit stamp orders before every downstream stamp of
// the same transaction. When the transaction is not sampled this is a
// single comparison and no allocation (the sampled slow path may grow
// the pending slices, so the zero-alloc claim stops there).
//
//dudelint:fencebudget 0
func (o *Observer) Commit(src int, tid uint64) {
	if !o.Sampled(tid) {
		return
	}
	at := o.Now()
	o.rings[src].put(EvCommit, tid, tid, at, 0, 0)
	o.sampledCommits.Add(1)
	// The pending count is raised before the entries are visible, so a
	// racing frontier advance can at worst take the mutex and find
	// nothing — it can never miss a pending entry for good.
	o.pendN.Add(3)
	o.mu.Lock()
	o.pendDur = append(o.pendDur, pendTx{tid: tid, at: at})
	o.pendRepro = append(o.pendRepro, pendTx{tid: tid, at: at})
	o.pendAck = append(o.pendAck, pendTx{tid: tid, at: at})
	o.mu.Unlock()
}

// GroupSealed stamps a sealed persist group covering [minTid, maxTid]
// with txns transactions and entries combined log entries, and returns
// the seal timestamp (for the queue-dwell measurement at pickup).
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) GroupSealed(src int, minTid, maxTid uint64, txns, entries int) int64 {
	o.groupTxns.Observe(uint64(txns))
	o.groupEntries.Observe(uint64(entries))
	at := o.Now()
	if o.rangeSampled(minTid, maxTid) {
		o.rings[src].put(EvGroupSeal, minTid, maxTid, at, 0, 0)
	}
	return at
}

// GroupPersisted stamps a group's completed log append and persist
// barrier: startAt/endAt bound the append (fence duration), sealAt is
// GroupSealed's return value (queue dwell = startAt-sealAt; pass 0
// when the group was never queued, e.g. the synchronous commit path).
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) GroupPersisted(src int, minTid, maxTid uint64, sealAt, startAt, endAt int64) {
	if d := endAt - startAt; d > 0 {
		o.fenceDur.Observe(uint64(d))
	} else {
		o.fenceDur.Observe(0)
	}
	if sealAt > 0 {
		if d := startAt - sealAt; d > 0 {
			o.queueDwell.Observe(uint64(d))
		} else {
			o.queueDwell.Observe(0)
		}
	}
	if o.rangeSampled(minTid, maxTid) {
		d := endAt - startAt
		if d < 0 {
			d = 0
		}
		o.rings[src].put(EvPersistFence, minTid, maxTid, endAt, 0, d)
	}
}

// GroupApplied stamps a group's Reproduce application to the
// persistent data region.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) GroupApplied(src int, minTid, maxTid uint64) {
	if o.rangeSampled(minTid, maxTid) {
		o.rings[src].put(EvReproApply, minTid, maxTid, o.Now(), 0, 0)
	}
}

// EpochCoalesced records one coalesced replay epoch: the groups merged
// and the entries that survived last-writer-wins coalescing (the raw
// entering count lives in the stage counters, where the ratio is
// computed). The Reproduce loop calls it once per epoch, after the
// epoch fence.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) EpochCoalesced(groups, combEntries int) {
	o.epochGroups.Observe(uint64(groups))
	o.epochEntries.Observe(uint64(combEntries))
}

// ReplShipped stamps a sealed group's handoff to the replication sink
// (frame build + per-peer enqueue done). src is the shared replication
// trace ring; the stamp is serialized with the per-peer sender stamps
// by replMu.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) ReplShipped(src int, minTid, maxTid uint64) {
	if !o.rangeSampled(minTid, maxTid) {
		return
	}
	o.replMu.Lock()
	o.rings[src].put(EvReplShip, minTid, maxTid, o.Now(), 0, 0)
	o.replMu.Unlock()
}

// ReplSent stamps a group's frame fully written to peer's socket.
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) ReplSent(src int, minTid, maxTid uint64, peer int) {
	if !o.rangeSampled(minTid, maxTid) {
		return
	}
	o.replMu.Lock()
	o.rings[src].put(EvReplSent, minTid, maxTid, o.Now(), uint64(peer), 0)
	o.replMu.Unlock()
}

// ReplicaFenced stamps a replica's acknowledgment of a group: the
// replica appended and fenced it into its local log, self-measuring
// ingestNanos for the append+barrier. The stamp's At is the ack's
// arrival on the primary's clock; the replica's span is anchored
// backward from it (clocks are never compared across nodes).
//
//dudelint:fencebudget 0
//dudelint:noalloc
func (o *Observer) ReplicaFenced(src int, minTid, maxTid uint64, peer int, ingestNanos int64) {
	if !o.rangeSampled(minTid, maxTid) {
		return
	}
	if ingestNanos < 0 {
		ingestNanos = 0
	}
	o.replMu.Lock()
	o.rings[src].put(EvReplicaFence, minTid, maxTid, o.Now(), uint64(peer), ingestNanos)
	o.replMu.Unlock()
}

// AckedAdvanced stamps the acknowledged-frontier pass for every pending
// sampled transaction the new acked frontier covers (EvAcked into the
// src ring, written only here under mu) and hands each completed
// transaction to the critical-path collector. On an unreplicated
// system the acked frontier is the durable frontier and the
// decomposition simply has empty replication segments.
//
//dudelint:fencebudget 0
func (o *Observer) AckedAdvanced(src int, frontier uint64) {
	if o.pendN.Load() == 0 {
		return
	}
	now := o.Now()
	o.mu.Lock()
	kept := o.pendAck[:0]
	done := 0
	for _, p := range o.pendAck {
		if p.tid <= frontier {
			o.rings[src].put(EvAcked, p.tid, p.tid, now, 0, 0)
			o.crit.offer(p.tid)
			done++
		} else {
			kept = append(kept, p)
		}
	}
	o.pendAck = kept
	o.mu.Unlock()
	if done > 0 {
		o.pendN.Add(-int64(done))
	}
}

// DurableAdvanced records commit→durable latency for every pending
// sampled transaction the new durable frontier covers.
//
//dudelint:fencebudget 0
func (o *Observer) DurableAdvanced(frontier uint64) {
	if o.pendN.Load() == 0 {
		return
	}
	o.drain(&o.pendDur, frontier, &o.commitDurable)
}

// ReproducedAdvanced records commit→reproduced latency for every
// pending sampled transaction the new reproduced frontier covers.
//
//dudelint:fencebudget 0
func (o *Observer) ReproducedAdvanced(frontier uint64) {
	if o.pendN.Load() == 0 {
		return
	}
	o.drain(&o.pendRepro, frontier, &o.commitRepro)
}

func (o *Observer) drain(pend *[]pendTx, frontier uint64, h *Histogram) {
	now := o.Now()
	o.mu.Lock()
	kept := (*pend)[:0]
	done := 0
	for _, p := range *pend {
		if p.tid <= frontier {
			if d := now - p.at; d > 0 {
				h.Observe(uint64(d))
			} else {
				h.Observe(0)
			}
			done++
		} else {
			kept = append(kept, p)
		}
	}
	*pend = kept
	o.mu.Unlock()
	if done > 0 {
		o.pendN.Add(-int64(done))
	}
}

// TraceOf reconstructs the lifecycle timeline of transaction tid from
// every source's trace ring: all stable records whose ID range covers
// tid, ordered by timestamp. For a sampled transaction still resident
// in the rings this is commit → group-seal → persist-fence →
// reproduce-apply; older transactions may have been overwritten and
// return a partial (or empty) timeline.
func (o *Observer) TraceOf(tid uint64) []Record {
	var recs []Record
	for _, r := range o.rings {
		recs = r.collect(recs, tid)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	return recs
}

// TraceTail returns the most recent n stable records across all rings
// (all of them when n <= 0), newest last — the watchdog's diagnostic
// dump.
func (o *Observer) TraceTail(n int) []Record {
	var recs []Record
	for _, r := range o.rings {
		recs = r.collect(recs, 0)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// Snapshot is a mergeable point-in-time view of every histogram and
// counter. Interval activity between two snapshots is After.Sub(Before).
type Snapshot struct {
	// SampleEvery echoes the sampling configuration (0 = tracing off).
	SampleEvery int
	// SampledCommits counts commit stamps taken so far.
	SampledCommits uint64
	// CommitDurable is the commit→durable latency histogram (ns,
	// sampled transactions).
	CommitDurable HistSnapshot
	// CommitReproduced is the commit→reproduced latency histogram (ns,
	// sampled transactions).
	CommitReproduced HistSnapshot
	// Fence is the per-group log-append + persist-barrier duration
	// histogram (ns).
	Fence HistSnapshot
	// QueueDwell is the per-group seal→pickup dwell histogram (ns).
	QueueDwell HistSnapshot
	// GroupTxns is the transactions-per-sealed-group histogram.
	GroupTxns HistSnapshot
	// GroupEntries is the combined-entries-per-sealed-group histogram.
	GroupEntries HistSnapshot
	// EpochGroups is the groups-per-coalesced-replay-epoch histogram
	// (empty while Reproduce keeps up and never forms epochs).
	EpochGroups HistSnapshot
	// EpochEntries is the coalesced-entries-per-replay-epoch histogram.
	EpochEntries HistSnapshot
	// Crit is the critical-path decomposition aggregate (critpath.go).
	Crit CritSnapshot
}

// Snapshot captures the current histograms and counters.
func (o *Observer) Snapshot() Snapshot {
	return Snapshot{
		SampleEvery:      int(o.sampleEvery),
		SampledCommits:   o.sampledCommits.Load(),
		CommitDurable:    o.commitDurable.Snapshot(),
		CommitReproduced: o.commitRepro.Snapshot(),
		Fence:            o.fenceDur.Snapshot(),
		QueueDwell:       o.queueDwell.Snapshot(),
		GroupTxns:        o.groupTxns.Snapshot(),
		GroupEntries:     o.groupEntries.Snapshot(),
		EpochGroups:      o.epochGroups.Snapshot(),
		EpochEntries:     o.epochEntries.Snapshot(),
		Crit:             o.crit.snapshot(),
	}
}

// Sub returns the interval snapshot between an earlier snapshot b and s.
func (s Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		SampleEvery:      s.SampleEvery,
		SampledCommits:   s.SampledCommits - b.SampledCommits,
		CommitDurable:    s.CommitDurable.Sub(b.CommitDurable),
		CommitReproduced: s.CommitReproduced.Sub(b.CommitReproduced),
		Fence:            s.Fence.Sub(b.Fence),
		QueueDwell:       s.QueueDwell.Sub(b.QueueDwell),
		GroupTxns:        s.GroupTxns.Sub(b.GroupTxns),
		GroupEntries:     s.GroupEntries.Sub(b.GroupEntries),
		EpochGroups:      s.EpochGroups.Sub(b.EpochGroups),
		EpochEntries:     s.EpochEntries.Sub(b.EpochEntries),
		Crit:             s.Crit.Sub(b.Crit),
	}
}

// Merge returns the union of two snapshots (e.g. from sharded
// observers).
func (s Snapshot) Merge(b Snapshot) Snapshot {
	return Snapshot{
		SampleEvery:      s.SampleEvery,
		SampledCommits:   s.SampledCommits + b.SampledCommits,
		CommitDurable:    s.CommitDurable.Merge(b.CommitDurable),
		CommitReproduced: s.CommitReproduced.Merge(b.CommitReproduced),
		Fence:            s.Fence.Merge(b.Fence),
		QueueDwell:       s.QueueDwell.Merge(b.QueueDwell),
		GroupTxns:        s.GroupTxns.Merge(b.GroupTxns),
		GroupEntries:     s.GroupEntries.Merge(b.GroupEntries),
		EpochGroups:      s.EpochGroups.Merge(b.EpochGroups),
		EpochEntries:     s.EpochEntries.Merge(b.EpochEntries),
		Crit:             s.Crit.Merge(b.Crit),
	}
}
