package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count of every Histogram: bucket i
// holds values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Power-of-two bucketing gives HDR-style relative error (< 2x) over the
// full uint64 range with no configuration and no allocation.
const histBuckets = 64

// Histogram is a concurrent power-of-two-bucket histogram. Observe is
// two atomic adds; any number of writers may record concurrently and
// Snapshot may race them (each counter is read atomically, so a
// snapshot is a consistent-enough view for monitoring: per-bucket
// counts never tear, though buckets may be skewed by in-flight adds).
// The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value.
//
//dudelint:noalloc
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time nowNS-startNS, clamping
// negatives to zero. This is the coordinated-omission-safe form: pass
// the *intended* start (when the event was scheduled to begin), not the
// actual start, so queueing delay before the event even started is
// charged to the measured latency. A clock step or an event completing
// ahead of its intended slot records as 0 rather than wrapping to a
// huge unsigned value.
//
//dudelint:noalloc
func (h *Histogram) ObserveSince(startNS, nowNS int64) {
	d := nowNS - startNS
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i (the
// largest value the bucket can hold).
func BucketBound(i int) uint64 {
	if i >= histBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Snapshot returns a point-in-time copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable histogram snapshot. Snapshots from
// different histograms (or different processes) merge by addition, and
// interval activity is the difference of two snapshots of the same
// histogram — both closed operations, so sharded recording and
// delta-based monitoring compose.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Merge returns the bucket-wise sum of s and o.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return s
}

// Sub returns the interval histogram between an earlier snapshot o and
// s (bucket counts are monotonic, so the difference is itself a valid
// snapshot).
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	for i := range s.Counts {
		s.Counts[i] -= o.Counts[i]
	}
	s.Count -= o.Count
	s.Sum -= o.Sum
	return s
}

// Quantile returns the approximate q-quantile (q in [0,1]): the value
// is interpolated linearly within the bucket where the cumulative count
// crosses q*Count, so the error is bounded by the bucket width (a
// factor of two). Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(BucketBound(i-1) + 1)
			hi := float64(BucketBound(i))
			frac := (rank - cum) / float64(c)
			return uint64(lo + (hi-lo)*frac)
		}
		cum = next
	}
	return BucketBound(histBuckets - 1)
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
