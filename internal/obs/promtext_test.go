package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"
)

// TestPromRoundTripFull pins the writer↔parser contract exhaustively:
// everything the PromWriter emits — gauges, counters, labeled samples,
// and every non-empty bucket of a densely populated histogram family —
// parses back to the same series and values, with the cumulative-bucket
// invariants intact.
func TestPromRoundTripFull(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i * 37)
	}
	snap := h.Snapshot()

	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Gauge("test_gauge", "a gauge", 42.5)
	w.Counter("test_counter", "a counter", 12345)
	w.Header("test_labeled", "gauge", "labeled series")
	w.Sample("test_labeled", `stage="persist"`, 0.25)
	w.Sample("test_labeled", `stage="reproduce"`, 0.75)
	w.Histogram("test_hist_seconds", "a histogram", snap, 1e-9)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	m, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parsing writer output: %v\n%s", err, buf.String())
	}
	want := map[string]float64{
		"test_gauge":                          42.5,
		"test_counter":                        12345,
		`test_labeled{stage="persist"}`:       0.25,
		`test_labeled{stage="reproduce"}`:     0.75,
		`test_hist_seconds_bucket{le="+Inf"}`: float64(snap.Count),
		"test_hist_seconds_count":             float64(snap.Count),
		"test_hist_seconds_sum":               float64(snap.Sum) * 1e-9,
	}
	for series, v := range want {
		got, ok := m[series]
		if !ok {
			t.Errorf("round trip lost %s\n%s", series, buf.String())
			continue
		}
		if math.Abs(got-v) > math.Abs(v)*1e-12 {
			t.Errorf("%s = %v, want %v", series, got, v)
		}
	}

	// Every non-empty bucket emitted must parse back, cumulative counts
	// must be non-decreasing, and the last finite bucket must not exceed
	// the +Inf bucket.
	var cum, buckets float64
	for i, c := range snap.Counts {
		if c == 0 {
			continue
		}
		buckets++
		bound := float64(BucketBound(i)) * 1e-9
		series := fmt.Sprintf("test_hist_seconds_bucket{le=%q}", strconv.FormatFloat(bound, 'g', -1, 64))
		got, ok := m[series]
		if !ok {
			t.Fatalf("round trip lost bucket %s", series)
		}
		if got < cum {
			t.Errorf("bucket %s cumulative count %v < previous %v", series, got, cum)
		}
		cum = got
	}
	if buckets == 0 {
		t.Fatal("histogram emitted no finite buckets")
	}
	if cum > float64(snap.Count) {
		t.Errorf("last finite bucket %v exceeds +Inf bucket %v", cum, snap.Count)
	}
}

// TestPromRoundTripEmptyHistogram pins the zero-snapshot shape the
// replication series rely on: an unreplicated node still emits its
// ack-latency family (count 0, sum 0, +Inf bucket 0) and zero-valued
// quantile gauges, so the scrape contract — and `dudectl top -check` —
// is stable across R=0 and R>0 deployments.
func TestPromRoundTripEmptyHistogram(t *testing.T) {
	var empty HistSnapshot
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Histogram("repl_ack_seconds", "empty at R=0", empty, 1e-9)
	w.Header("repl_ack_latency_seconds", "gauge", "ack latency quantiles")
	for _, q := range []string{"0.5", "0.99", "0.999"} {
		w.Sample("repl_ack_latency_seconds", `quantile="`+q+`"`, float64(empty.Quantile(0.5))*1e-9)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	m, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parsing writer output: %v\n%s", err, buf.String())
	}
	for _, series := range []string{
		"repl_ack_seconds_count",
		"repl_ack_seconds_sum",
		`repl_ack_seconds_bucket{le="+Inf"}`,
		`repl_ack_latency_seconds{quantile="0.5"}`,
		`repl_ack_latency_seconds{quantile="0.99"}`,
		`repl_ack_latency_seconds{quantile="0.999"}`,
	} {
		v, ok := m[series]
		if !ok {
			t.Errorf("empty-histogram round trip lost %s\n%s", series, buf.String())
			continue
		}
		if v != 0 {
			t.Errorf("%s = %v, want 0 on an empty snapshot", series, v)
		}
	}
}

// TestParsePromRejectsMalformed: sample lines without a value are
// errors, not silent drops.
func TestParsePromRejectsMalformed(t *testing.T) {
	if _, err := ParseProm(bytes.NewReader([]byte("loneseries\n"))); err == nil {
		t.Error("no-value line accepted")
	}
	if _, err := ParseProm(bytes.NewReader([]byte("series notanumber\n"))); err == nil {
		t.Error("non-numeric value accepted")
	}
	m, err := ParseProm(bytes.NewReader([]byte("# HELP x y\n\nseries 1\n")))
	if err != nil || m["series"] != 1 {
		t.Errorf("comments/blanks mishandled: %v %v", m, err)
	}
}

// TestHistogramConcurrentMerge exercises the histogram under racing
// writers (the -race gate) and pins the merge algebra: sharded
// histograms merged by addition account for every observation, and
// Sub(earlier) inverts Merge.
func TestHistogramConcurrentMerge(t *testing.T) {
	const (
		writers = 8
		perW    = 10000
	)
	shards := make([]*Histogram, writers)
	var shared Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		shards[w] = &Histogram{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := uint64(w*perW + i + 1)
				shards[w].Observe(v)
				shared.Observe(v)
			}
		}(w)
	}
	// Snapshot concurrently with the writers: the race detector checks
	// the access discipline; consistency is checked after the join.
	for i := 0; i < 100; i++ {
		s := shared.Snapshot()
		if s.Quantile(0.5) > math.MaxUint64/2 {
			t.Errorf("mid-run p50 out of range: %d", s.Quantile(0.5))
		}
	}
	wg.Wait()

	var merged HistSnapshot
	for _, h := range shards {
		merged = merged.Merge(h.Snapshot())
	}
	total := shared.Snapshot()
	if merged != total {
		t.Errorf("sharded merge diverges from single histogram:\nmerged %+v\ntotal  %+v", merged.Count, total.Count)
	}
	if want := uint64(writers * perW); merged.Count != want {
		t.Errorf("merged count %d, want %d", merged.Count, want)
	}
	// Sum of 1..N.
	n := uint64(writers * perW)
	if want := n * (n + 1) / 2; merged.Sum != want {
		t.Errorf("merged sum %d, want %d", merged.Sum, want)
	}
	// Sub inverts Merge: removing one shard leaves the rest.
	rest := total.Sub(shards[0].Snapshot())
	var wantRest HistSnapshot
	for _, h := range shards[1:] {
		wantRest = wantRest.Merge(h.Snapshot())
	}
	if rest != wantRest {
		t.Error("Sub(shard0) does not invert Merge")
	}
	// The quantile of the merged view lands within the power-of-two
	// bucket of the true median.
	p50 := merged.Quantile(0.5)
	trueMedian := n / 2
	if p50 < trueMedian/2 || p50 > trueMedian*2 {
		t.Errorf("merged p50 %d outside 2x of true median %d", p50, trueMedian)
	}
}
