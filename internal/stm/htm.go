package stm

import (
	"runtime"
	"sync/atomic"
)

// HTMEngine simulates a restricted hardware TM (Intel RTM) for the
// paper's §4.2/§5.7 experiments, using a NOrec-style design: reads go
// straight to memory and are validated by value against a single global
// sequence lock; writes are buffered and applied while the sequence lock
// is held at commit, so execution is fully concurrent and only the
// write-back is serialized — the concurrency profile of an eager HTM
// with lazy conflict detection. After MaxRetries aborted attempts the
// transaction runs under the lock from the start, mirroring RTM's
// software fallback path.
//
// Transaction IDs come from an atomic counter incremented while the
// commit lock is held, so IDs agree with the write-back order. In real
// RTM a shared counter would conflict-abort every transaction; the paper
// proposes a minor hardware change (ignore conflicts on designated
// addresses) and evaluates with the counter outside conflict detection —
// the behaviour simulated here.
type HTMEngine struct {
	space Space
	// seq is the global sequence lock: even = unlocked, odd = a commit
	// (or fallback transaction) is writing.
	seq   atomic.Uint64
	clock atomic.Uint64

	commits   atomic.Uint64
	aborts    atomic.Uint64
	fallbacks atomic.Uint64

	maxRetries int
	txs        []hTx
}

// HTMConfig configures an HTMEngine.
type HTMConfig struct {
	// MaxRetries is the number of optimistic attempts before the
	// global-lock fallback; the paper uses 5.
	MaxRetries int
	// MaxSlots is the maximum number of concurrent Run callers.
	MaxSlots int
}

type rEntry struct {
	addr, val uint64
}

type wEntry struct {
	addr, val uint64
}

type hTx struct {
	e        *HTMEngine
	snapshot uint64
	locked   bool // holding the sequence lock (fallback mode)
	reads    []rEntry
	writes   []wEntry
	wmap     map[uint64]int
	_pad     [4]uint64
}

// resetWriteSet empties the write set. Go maps never shrink, so after an
// unusually large transaction (e.g. a bulk load) the map is reallocated —
// clear() on a huge map costs a bucket sweep on every later transaction.
func (t *hTx) resetWriteSet() {
	t.writes = t.writes[:0]
	if len(t.wmap) > 256 {
		t.wmap = make(map[uint64]int, 64)
	} else {
		clear(t.wmap)
	}
}

// NewHTM creates an HTM-simulation engine over space.
func NewHTM(space Space, cfg HTMConfig) *HTMEngine {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 5
	}
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = defaultMaxSlots
	}
	e := &HTMEngine{space: space, maxRetries: cfg.MaxRetries}
	e.txs = make([]hTx, cfg.MaxSlots)
	for i := range e.txs {
		e.txs[i] = hTx{
			e:      e,
			reads:  make([]rEntry, 0, 256),
			writes: make([]wEntry, 0, 256),
			wmap:   make(map[uint64]int, 64),
		}
	}
	return e
}

// Clock returns the largest transaction ID assigned so far.
func (e *HTMEngine) Clock() uint64 { return e.clock.Load() }

// SetClock initializes the commit clock (see Engine.SetClock).
func (e *HTMEngine) SetClock(v uint64) { e.clock.Store(v) }

// Stats returns cumulative counters.
func (e *HTMEngine) Stats() Stats {
	return Stats{
		Commits:   e.commits.Load(),
		Aborts:    e.aborts.Load(),
		Fallbacks: e.fallbacks.Load(),
	}
}

// Run implements TM.
func (e *HTMEngine) Run(slot int, fn func(Tx) error) (uint64, error) {
	if slot < 0 || slot >= len(e.txs) {
		panic("stm: slot out of range")
	}
	tx := &e.txs[slot]
	for attempt := 0; ; attempt++ {
		fallback := attempt >= e.maxRetries
		if fallback {
			e.fallbacks.Add(1)
		}
		tx.begin(fallback)
		tid, err, retry := tx.attempt(fn)
		if !retry {
			if err == nil {
				e.commits.Add(1)
			}
			return tid, err
		}
		e.aborts.Add(1)
		runtime.Gosched()
	}
}

// begin samples an even (unlocked) sequence value; in fallback mode it
// acquires the lock up front, making the attempt immune to conflicts.
func (t *hTx) begin(fallback bool) {
	t.reads = t.reads[:0]
	t.resetWriteSet()
	t.locked = false
	for {
		s := t.e.seq.Load()
		if s&1 == 1 {
			runtime.Gosched()
			continue
		}
		if fallback {
			if !t.e.seq.CompareAndSwap(s, s+1) {
				continue
			}
			t.locked = true
		}
		t.snapshot = s
		return
	}
}

func (t *hTx) attempt(fn func(Tx) error) (tid uint64, err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflict:
				tid, err, retry = 0, nil, true
			case userAbort:
				tid, err, retry = 0, ErrAborted, false
			default:
				t.rollback()
				panic(r)
			}
		}
	}()
	if err := fn(Tx(t)); err != nil {
		t.rollback()
		return 0, err, false
	}
	return t.commit()
}

// Load implements Tx: a direct memory read validated against the global
// sequence — the closest software analogue of HTM's uninstrumented
// reads. Buffered own writes are returned from the write set.
func (t *hTx) Load(addr uint64) uint64 {
	if len(t.writes) > 0 {
		if i, ok := t.wmap[addr]; ok {
			return t.writes[i].val
		}
	}
	for {
		v := t.e.space.Load8(addr)
		if t.locked || t.e.seq.Load() == t.snapshot {
			t.reads = append(t.reads, rEntry{addr: addr, val: v})
			return v
		}
		// Someone committed since the snapshot: revalidate the read
		// set by value and advance the snapshot, then re-read.
		t.revalidate()
	}
}

// revalidate advances the snapshot to the current (even) sequence after
// checking every prior read still returns the same value; any change
// aborts the attempt.
func (t *hTx) revalidate() {
	for {
		s := t.e.seq.Load()
		if s&1 == 1 {
			runtime.Gosched()
			continue
		}
		ok := true
		for i := range t.reads {
			if t.e.space.Load8(t.reads[i].addr) != t.reads[i].val {
				ok = false
				break
			}
		}
		if !ok {
			t.conflictAbort()
		}
		if t.e.seq.Load() == s {
			t.snapshot = s
			return
		}
	}
}

// Store implements Tx: writes are buffered until commit.
func (t *hTx) Store(addr, val uint64) {
	if i, ok := t.wmap[addr]; ok {
		t.writes[i].val = val
		return
	}
	t.wmap[addr] = len(t.writes)
	t.writes = append(t.writes, wEntry{addr: addr, val: val})
}

// Abort implements Tx.
func (t *hTx) Abort() {
	t.rollback()
	panic(userAbort{})
}

func (t *hTx) conflictAbort() {
	t.rollback()
	panic(conflict{})
}

// rollback discards the buffers (no memory was modified before commit)
// and releases the fallback lock if held.
func (t *hTx) rollback() {
	t.reads = t.reads[:0]
	t.resetWriteSet()
	if t.locked {
		t.e.seq.Store(t.snapshot + 2)
		t.locked = false
	}
}

// commit acquires the sequence lock (a successful CAS from the snapshot
// also proves the read set is still valid), applies the buffered writes,
// assigns the transaction ID under the lock, and releases.
func (t *hTx) commit() (uint64, error, bool) {
	if len(t.writes) == 0 {
		// Read-only: reads were validated continuously.
		if t.locked {
			t.e.seq.Store(t.snapshot + 2)
			t.locked = false
		}
		return t.e.clock.Load(), nil, false
	}
	if !t.locked {
		for !t.e.seq.CompareAndSwap(t.snapshot, t.snapshot+1) {
			// The sequence moved: revalidate (possibly aborting) and
			// retry the acquisition from the new snapshot.
			t.revalidate()
		}
		t.locked = true
	}
	for i := range t.writes {
		t.e.space.Store8(t.writes[i].addr, t.writes[i].val)
	}
	tid := t.e.clock.Add(1)
	t.reads = t.reads[:0]
	t.resetWriteSet()
	t.e.seq.Store(t.snapshot + 2)
	t.locked = false
	return tid, nil, false
}
