// Package stm provides the transactional-memory engines DudeTM runs its
// Perform step on.
//
// Engine is a from-scratch, word-based, time-based software TM in the
// TinySTM/LSA family: a global version clock, a hashed ownership-record
// (orec) table with versioned locks, encounter-time locking, and
// write-through access with an undo list (the variant the paper picks for
// DudeTM because it permits in-place updates; the undo list is volatile,
// so rolling back costs no persist ordering).
//
// HTMEngine simulates Intel RTM: reads and writes are uninstrumented
// except for a single global sequence-lock check, conflicts abort the
// transaction wholesale, and after MaxRetries attempts a global-lock
// fallback runs the transaction exclusively. Transaction IDs are drawn
// from an atomic counter outside conflict detection, replicating the
// estimation methodology of the paper's §5.7 (their proposed hardware
// change makes the HTM ignore conflicts on the ID counter).
//
// Both engines satisfy TM, so every benchmark and every DudeTM mode runs
// unchanged on either.
package stm

import (
	"errors"
	"math/rand"
	"runtime"
	"sync/atomic"
)

// Space is the memory a TM executes on. DudeTM points it at shadow DRAM;
// baselines point it directly at simulated NVM.
type Space interface {
	Load8(addr uint64) uint64
	Store8(addr, val uint64)
}

// Tx is the per-attempt transaction handle passed to the user function.
// A Tx is only valid during the callback invocation it was passed to.
type Tx interface {
	// Load returns the 8-byte word at addr within the transaction.
	Load(addr uint64) uint64
	// Store transactionally writes the 8-byte word at addr.
	Store(addr, val uint64)
	// Abort rolls the transaction back and makes Run return ErrAborted
	// without retrying. It does not return.
	Abort()
}

// TM is the interface shared by the STM and HTM engines.
type TM interface {
	// Run executes fn as a transaction on behalf of thread slot,
	// retrying on conflicts, and returns the commit timestamp. Read-only
	// transactions commit without advancing the clock and report the
	// snapshot they read from. If fn returns an error or calls Abort,
	// the transaction rolls back and Run returns the error (ErrAborted
	// for Abort) without retrying.
	Run(slot int, fn func(Tx) error) (tid uint64, err error)
	// Clock returns the current global commit clock: the largest
	// transaction ID assigned so far.
	Clock() uint64
	// Stats returns cumulative commit/abort counters.
	Stats() Stats
}

// ErrAborted is returned by Run when the user function called Abort.
var ErrAborted = errors.New("stm: transaction aborted by user")

// Stats counts transaction outcomes.
type Stats struct {
	Commits   uint64 // committed transactions (including read-only)
	Aborts    uint64 // conflict aborts (each retried attempt counts)
	Fallbacks uint64 // HTM transactions that took the global-lock fallback
}

// conflict is the panic payload used to unwind an attempt on a conflict,
// the moral equivalent of TinySTM's longjmp-based rollback.
type conflict struct{}

// userAbort unwinds an attempt when the user calls Abort.
type userAbort struct{}

const (
	defaultOrecCount = 1 << 20
	defaultMaxSlots  = 64
	maxBackoffSpin   = 1 << 14
)

// Config configures an Engine.
type Config struct {
	// OrecCount is the number of ownership records; must be a power of
	// two. Defaults to 1<<20.
	OrecCount uint64
	// MaxSlots is the maximum number of concurrent Run callers (each
	// must use a distinct slot). Defaults to 64.
	MaxSlots int
	// OnNoopCommit, if set, is called when a write transaction takes a
	// commit timestamp and then fails validation: the timestamp is
	// consumed by a no-op commit (the data was rolled back) and the
	// transaction retries under a new one. Consumers that replay
	// transactions by ID use this to keep the ID sequence dense.
	// Called on the transaction's goroutine with all locks released.
	OnNoopCommit func(slot int, tid uint64)
}

// Engine is the TinySTM-like software TM.
type Engine struct {
	space  Space
	orecs  []atomic.Uint64 // versioned locks: version<<1 | lockbit
	mask   uint64
	clock  atomic.Uint64
	onNoop func(slot int, tid uint64)

	commits atomic.Uint64
	aborts  atomic.Uint64

	txs []sTx // one preallocated transaction per slot
}

// orec encoding: unlocked = version<<1 (even); locked = slot<<1|1 (odd).
func lockedVal(slot int) uint64     { return uint64(slot)<<1 | 1 }
func isLocked(v uint64) bool        { return v&1 == 1 }
func ownerSlot(v uint64) int        { return int(v >> 1) }
func versionOf(v uint64) uint64     { return v >> 1 }
func unlockedVal(ver uint64) uint64 { return ver << 1 }

type readEntry struct {
	orec    *atomic.Uint64
	version uint64
}

type undoEntry struct {
	addr uint64
	old  uint64
}

type lockEntry struct {
	orec        *atomic.Uint64
	prevVersion uint64
}

// sTx is the per-slot transaction state, reused across attempts and
// transactions to avoid allocation in the hot path.
type sTx struct {
	e     *Engine
	slot  int
	rv    uint64
	reads []readEntry
	undo  []undoEntry
	locks []lockEntry
	_pad  [4]uint64 // reduce false sharing between slots
}

// New creates an STM engine over space.
func New(space Space, cfg Config) *Engine {
	if cfg.OrecCount == 0 {
		cfg.OrecCount = defaultOrecCount
	}
	if cfg.OrecCount&(cfg.OrecCount-1) != 0 {
		panic("stm: OrecCount must be a power of two")
	}
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = defaultMaxSlots
	}
	e := &Engine{
		space:  space,
		orecs:  make([]atomic.Uint64, cfg.OrecCount),
		mask:   cfg.OrecCount - 1,
		onNoop: cfg.OnNoopCommit,
		txs:    make([]sTx, cfg.MaxSlots),
	}
	for i := range e.txs {
		e.txs[i] = sTx{
			e:     e,
			slot:  i,
			reads: make([]readEntry, 0, 256),
			undo:  make([]undoEntry, 0, 256),
			locks: make([]lockEntry, 0, 64),
		}
	}
	return e
}

// Clock returns the largest transaction ID assigned so far.
func (e *Engine) Clock() uint64 { return e.clock.Load() }

// SetClock initializes the commit clock, e.g. when resuming a recovered
// pool whose transaction IDs must keep increasing. It must be called
// before any transaction runs.
func (e *Engine) SetClock(v uint64) { e.clock.Store(v) }

// Stats returns cumulative counters.
func (e *Engine) Stats() Stats {
	return Stats{Commits: e.commits.Load(), Aborts: e.aborts.Load()}
}

func (e *Engine) orecFor(addr uint64) *atomic.Uint64 {
	return &e.orecs[(addr>>3)&e.mask]
}

// Run implements TM.
func (e *Engine) Run(slot int, fn func(Tx) error) (uint64, error) {
	if slot < 0 || slot >= len(e.txs) {
		panic("stm: slot out of range")
	}
	tx := &e.txs[slot]
	backoff := 1
	for {
		tx.begin()
		tid, err, retry := tx.attempt(fn)
		if !retry {
			if err == nil {
				e.commits.Add(1)
			}
			return tid, err
		}
		e.aborts.Add(1)
		spin := rand.Intn(backoff)
		for i := 0; i < spin; i++ {
			runtime.Gosched()
		}
		if backoff < maxBackoffSpin {
			backoff <<= 1
		}
	}
}

func (t *sTx) begin() {
	t.rv = t.e.clock.Load()
	t.reads = t.reads[:0]
	t.undo = t.undo[:0]
	t.locks = t.locks[:0]
}

// attempt runs fn once, converting conflict panics into a retry signal.
func (t *sTx) attempt(fn func(Tx) error) (tid uint64, err error, retry bool) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case conflict:
				tid, err, retry = 0, nil, true
			case userAbort:
				tid, err, retry = 0, ErrAborted, false
			default:
				// Roll back before propagating unexpected panics so
				// the shadow memory is not left with torn updates.
				t.rollback()
				panic(r)
			}
		}
	}()
	if err := fn(Tx(t)); err != nil {
		t.rollback()
		return 0, err, false
	}
	return t.commit()
}

// Abort implements Tx.
func (t *sTx) Abort() {
	t.rollback()
	panic(userAbort{})
}

// conflictAbort rolls back and unwinds for a retry.
func (t *sTx) conflictAbort() {
	t.rollback()
	panic(conflict{})
}

// rollback restores undo values (in reverse) and releases held orecs to
// their pre-lock versions.
func (t *sTx) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		t.e.space.Store8(u.addr, u.old)
	}
	for i := len(t.locks) - 1; i >= 0; i-- {
		l := t.locks[i]
		l.orec.Store(unlockedVal(l.prevVersion))
	}
	t.undo = t.undo[:0]
	t.locks = t.locks[:0]
}

func (t *sTx) ownsOrec(o *atomic.Uint64) bool {
	for i := range t.locks {
		if t.locks[i].orec == o {
			return true
		}
	}
	return false
}

func (t *sTx) prevVersionOf(o *atomic.Uint64) uint64 {
	for i := range t.locks {
		if t.locks[i].orec == o {
			return t.locks[i].prevVersion
		}
	}
	panic("stm: prevVersionOf on unowned orec")
}

// Load implements Tx (tmRead).
func (t *sTx) Load(addr uint64) uint64 {
	o := t.e.orecFor(addr)
	for {
		v1 := o.Load()
		if isLocked(v1) {
			if ownerSlot(v1) == t.slot {
				return t.e.space.Load8(addr) // read own write-through value
			}
			t.conflictAbort()
		}
		val := t.e.space.Load8(addr)
		v2 := o.Load()
		if v1 != v2 {
			continue // raced with a writer; re-sample
		}
		ver := versionOf(v1)
		if ver > t.rv {
			// Snapshot too old: extend it, then re-sample — the value
			// just read predates the extension and may already be
			// stale under the new snapshot (a read-only transaction
			// would otherwise return it unvalidated).
			t.extend()
			continue
		}
		t.reads = append(t.reads, readEntry{orec: o, version: ver})
		return val
	}
}

// Store implements Tx (tmWrite): encounter-time locking, write-through
// with undo.
func (t *sTx) Store(addr, val uint64) {
	o := t.e.orecFor(addr)
	for {
		v := o.Load()
		if isLocked(v) {
			if ownerSlot(v) != t.slot {
				t.conflictAbort()
			}
			break // already own it
		}
		if versionOf(v) > t.rv {
			t.extend()
			// Re-read the orec after a successful extension.
			continue
		}
		if o.CompareAndSwap(v, lockedVal(t.slot)) {
			t.locks = append(t.locks, lockEntry{orec: o, prevVersion: versionOf(v)})
			break
		}
	}
	t.undo = append(t.undo, undoEntry{addr: addr, old: t.e.space.Load8(addr)})
	t.e.space.Store8(addr, val)
}

// extend attempts to advance the read snapshot to the current clock after
// validating every prior read; on failure the transaction aborts.
func (t *sTx) extend() {
	now := t.e.clock.Load()
	if !t.validate() {
		t.conflictAbort()
	}
	t.rv = now
}

// validate checks that every read is still consistent with the snapshot.
func (t *sTx) validate() bool {
	for i := range t.reads {
		r := t.reads[i]
		v := r.orec.Load()
		if isLocked(v) {
			if ownerSlot(v) != t.slot {
				return false
			}
			if t.prevVersionOf(r.orec) != r.version {
				return false
			}
			continue
		}
		if versionOf(v) != r.version {
			return false
		}
	}
	return true
}

// commit finishes the attempt: read-only transactions validate trivially;
// write transactions take a new timestamp, validate reads, and publish
// the new version on all held orecs. The returned ID is the commit
// timestamp — globally unique and monotonically increasing across write
// transactions — and is the order the Reproduce step replays by.
func (t *sTx) commit() (uint64, error, bool) {
	if len(t.locks) == 0 {
		// Read-only: the snapshot rv was continuously valid.
		return t.rv, nil, false
	}
	ts := t.e.clock.Add(1)
	if ts > t.rv+1 && !t.validate() {
		// The clock tick ts is consumed by a no-op commit: the data is
		// rolled back, the locks released, and the attempt retried
		// under a fresh timestamp. OnNoopCommit lets ID-ordered
		// consumers (DudeTM's Reproduce) account for the empty slot.
		t.rollback()
		if t.e.onNoop != nil {
			t.e.onNoop(t.slot, ts)
		}
		return 0, nil, true
	}
	rel := unlockedVal(ts)
	for i := range t.locks {
		t.locks[i].orec.Store(rel)
	}
	t.undo = t.undo[:0]
	t.locks = t.locks[:0]
	return ts, nil, false
}
