package stm

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"dudetm/internal/word"
)

// flatSpace is a trivial Space for tests, with the atomic word access
// every Space implementation must provide (optimistic TM readers race
// with writers by design and rely on word atomicity).
type flatSpace struct{ b []byte }

func newFlat(size int) *flatSpace { return &flatSpace{b: word.Alloc(uint64(size))} }

func (f *flatSpace) Load8(addr uint64) uint64 { return word.Load(f.b, addr) }

func (f *flatSpace) Store8(addr, val uint64) { word.Store(f.b, addr, val) }

// engines returns both TM implementations over a fresh space.
func engines(size int) map[string]TM {
	return map[string]TM{
		"stm": New(newFlat(size), Config{OrecCount: 1 << 12}),
		"htm": NewHTM(newFlat(size), HTMConfig{}),
	}
}

func TestSingleThreadReadWrite(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			tid, err := e.Run(0, func(tx Tx) error {
				tx.Store(0, 41)
				tx.Store(8, tx.Load(0)+1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if tid == 0 {
				t.Fatal("write transaction got tid 0")
			}
			_, err = e.Run(0, func(tx Tx) error {
				if tx.Load(0) != 41 || tx.Load(8) != 42 {
					t.Errorf("got %d,%d", tx.Load(0), tx.Load(8))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadOwnWrite(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			_, err := e.Run(0, func(tx Tx) error {
				tx.Store(16, 7)
				if got := tx.Load(16); got != 7 {
					t.Errorf("read own write = %d", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			if _, err := e.Run(0, func(tx Tx) error {
				tx.Store(0, 100)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			_, err := e.Run(0, func(tx Tx) error {
				tx.Store(0, 999)
				tx.Abort()
				return nil
			})
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("err = %v, want ErrAborted", err)
			}
			e.Run(0, func(tx Tx) error {
				if v := tx.Load(0); v != 100 {
					t.Errorf("abort leaked: %d", v)
				}
				return nil
			})
		})
	}
}

func TestErrorReturnRollsBackWithoutRetry(t *testing.T) {
	wantErr := errors.New("business rule")
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			calls := 0
			_, err := e.Run(0, func(tx Tx) error {
				calls++
				tx.Store(0, 5)
				return wantErr
			})
			if !errors.Is(err, wantErr) {
				t.Fatalf("err = %v", err)
			}
			if calls != 1 {
				t.Fatalf("fn called %d times, want 1", calls)
			}
			e.Run(0, func(tx Tx) error {
				if v := tx.Load(0); v != 0 {
					t.Errorf("error path leaked: %d", v)
				}
				return nil
			})
		})
	}
}

func TestPanicPropagatesAfterRollback(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			func() {
				defer func() {
					if r := recover(); r != "boom" {
						t.Fatalf("recover = %v", r)
					}
				}()
				e.Run(0, func(tx Tx) error {
					tx.Store(0, 1)
					panic("boom")
				})
			}()
			e.Run(0, func(tx Tx) error {
				if v := tx.Load(0); v != 0 {
					t.Errorf("panic path leaked: %d", v)
				}
				return nil
			})
		})
	}
}

func TestReadOnlyDoesNotAdvanceClock(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			e.Run(0, func(tx Tx) error { tx.Store(0, 1); return nil })
			before := e.Clock()
			tid, err := e.Run(0, func(tx Tx) error { tx.Load(0); return nil })
			if err != nil {
				t.Fatal(err)
			}
			if e.Clock() != before {
				t.Fatalf("clock advanced by read-only tx")
			}
			if tid > before {
				t.Fatalf("read-only tid %d > clock %d", tid, before)
			}
		})
	}
}

func TestSequentialTidsMonotonic(t *testing.T) {
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			var last uint64
			for i := 0; i < 100; i++ {
				tid, err := e.Run(0, func(tx Tx) error {
					tx.Store(0, uint64(i))
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if tid <= last {
					t.Fatalf("tid %d not > %d", tid, last)
				}
				last = tid
			}
			if e.Clock() != last {
				t.Fatalf("clock %d != last tid %d", e.Clock(), last)
			}
		})
	}
}

func TestConcurrentCounter(t *testing.T) {
	const workers, iters = 8, 500
	for name, e := range engines(4096) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			tids := make([][]uint64, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						tid, err := e.Run(w, func(tx Tx) error {
							tx.Store(0, tx.Load(0)+1)
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
						tids[w] = append(tids[w], tid)
					}
				}(w)
			}
			wg.Wait()
			e.Run(0, func(tx Tx) error {
				if v := tx.Load(0); v != workers*iters {
					t.Errorf("counter = %d, want %d", v, workers*iters)
				}
				return nil
			})
			// All write tids must be unique.
			var all []uint64
			for _, ts := range tids {
				all = append(all, ts...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			for i := 1; i < len(all); i++ {
				if all[i] == all[i-1] {
					t.Fatalf("duplicate tid %d", all[i])
				}
			}
		})
	}
}

func TestBankInvariant(t *testing.T) {
	const accounts = 64
	const workers, iters = 4, 400
	const initial = 1000
	for name, e := range engines(accounts * 8) {
		t.Run(name, func(t *testing.T) {
			e.Run(0, func(tx Tx) error {
				for i := 0; i < accounts; i++ {
					tx.Store(uint64(i*8), initial)
				}
				return nil
			})
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Auditor: scans total in a transaction; must always be conserved.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					e.Run(workers, func(tx Tx) error {
						var sum uint64
						for i := 0; i < accounts; i++ {
							sum += tx.Load(uint64(i * 8))
						}
						if sum != accounts*initial {
							t.Errorf("invariant broken: sum=%d", sum)
						}
						return nil
					})
				}
			}()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := uint64(w*2654435761 + 1)
					for i := 0; i < iters; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						src := (rng >> 33) % accounts
						dst := (rng >> 13) % accounts
						if src == dst {
							continue
						}
						e.Run(w, func(tx Tx) error {
							s := tx.Load(src * 8)
							if s == 0 {
								tx.Abort()
							}
							tx.Store(src*8, s-1)
							tx.Store(dst*8, tx.Load(dst*8)+1)
							return nil
						})
					}
				}(w)
			}
			// Let workers finish, then stop the auditor.
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			// Workers are wg members too; signal auditor once workers drain.
			// Simpler: wait for workers via separate group is overkill; the
			// auditor loops until stop, so close stop after a full pass.
			close(stop)
			<-done
			// Final audit.
			e.Run(0, func(tx Tx) error {
				var sum uint64
				for i := 0; i < accounts; i++ {
					sum += tx.Load(uint64(i * 8))
				}
				if sum != accounts*initial {
					t.Errorf("final sum=%d", sum)
				}
				return nil
			})
		})
	}
}

func TestTornPairInvariant(t *testing.T) {
	// Writers keep words X and Y equal inside every transaction; readers
	// must never observe X != Y.
	const workers, iters = 4, 300
	for name, e := range engines(64) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						if w%2 == 0 {
							e.Run(w, func(tx Tx) error {
								v := tx.Load(0) + 1
								tx.Store(0, v)
								tx.Store(8, v)
								return nil
							})
						} else {
							e.Run(w, func(tx Tx) error {
								if x, y := tx.Load(0), tx.Load(8); x != y {
									t.Errorf("torn read: %d != %d", x, y)
								}
								return nil
							})
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestSlotOutOfRangePanics(t *testing.T) {
	for name, e := range engines(64) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			e.Run(1000, func(tx Tx) error { return nil })
		})
	}
}

func TestSTMOrecCountValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two orec count")
		}
	}()
	New(newFlat(64), Config{OrecCount: 3})
}

func TestHTMFallbackCounted(t *testing.T) {
	sp := newFlat(64)
	e := NewHTM(sp, HTMConfig{MaxRetries: 0}) // MaxRetries 0 -> default 5
	e = NewHTM(sp, HTMConfig{MaxRetries: 1})
	const workers, iters = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				e.Run(w, func(tx Tx) error {
					tx.Store(0, tx.Load(0)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	if v := sp.Load8(0); v != workers*iters {
		t.Fatalf("counter = %d", v)
	}
	// With contention and MaxRetries=1 some fallbacks are expected, but
	// zero is also legal on a lightly loaded machine; just read stats.
	_ = e.Stats()
}

func TestStatsCommitsCount(t *testing.T) {
	for name, e := range engines(64) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				e.Run(0, func(tx Tx) error { tx.Store(0, 1); return nil })
			}
			if s := e.Stats(); s.Commits != 10 {
				t.Fatalf("commits = %d", s.Commits)
			}
		})
	}
}

func TestWriteWriteConflictSerializes(t *testing.T) {
	// Two slots repeatedly read-modify-write two words in opposite
	// order; with encounter-time locking and suicide contention
	// management this must not deadlock and must preserve atomicity.
	for name, e := range engines(64) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						e.Run(w, func(tx Tx) error {
							if w == 0 {
								tx.Store(0, tx.Load(0)+1)
								tx.Store(8, tx.Load(8)+1)
							} else {
								tx.Store(8, tx.Load(8)+1)
								tx.Store(0, tx.Load(0)+1)
							}
							return nil
						})
					}
				}(w)
			}
			wg.Wait()
			e.Run(0, func(tx Tx) error {
				if x, y := tx.Load(0), tx.Load(8); x != 1000 || y != 1000 {
					t.Errorf("got %d,%d want 1000,1000", x, y)
				}
				return nil
			})
		})
	}
}
