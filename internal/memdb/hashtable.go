package memdb

// HashTable is the paper's HashTable microbenchmark structure (§5.1): a
// simple fixed-size open-addressing table mapping 64-bit keys to 64-bit
// values, with collisions resolved by circularly probing the next
// bucket.
//
// Region layout: Buckets consecutive (key, value) pairs of 16 bytes each
// starting at Base. Key 0 marks an empty bucket and key ^0 a tombstone,
// so user keys must avoid both (the workloads offset keys by 1).
type HashTable struct {
	// Base is the pool-logical address of the bucket array.
	Base uint64
	// Buckets is the bucket count; must be a power of two.
	Buckets uint64
}

const (
	htEmpty     = uint64(0)
	htTombstone = ^uint64(0)
)

// NewHashTable validates the geometry.
func NewHashTable(base, buckets uint64) HashTable {
	if buckets == 0 || buckets&(buckets-1) != 0 {
		panic("memdb: bucket count must be a power of two")
	}
	return HashTable{Base: base, Buckets: buckets}
}

// SizeBytes returns the region size the table occupies.
func (h HashTable) SizeBytes() uint64 { return h.Buckets * 16 }

func (h HashTable) slot(i uint64) uint64 { return h.Base + i*16 }

func (h HashTable) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & (h.Buckets - 1)
}

// Put inserts or updates key. It returns ErrFull when every bucket is
// occupied.
func (h HashTable) Put(ctx Ctx, key, val uint64) error {
	if key == htEmpty || key == htTombstone {
		panic("memdb: reserved key")
	}
	i := h.hash(key)
	firstFree := uint64(0)
	haveFree := false
	for probes := uint64(0); probes < h.Buckets; probes++ {
		s := h.slot(i)
		k := ctx.Load(s)
		switch k {
		case key:
			ctx.Store(s+8, val)
			return nil
		case htEmpty:
			if !haveFree {
				firstFree = s
			}
			ctx.Store(firstFree, key)
			ctx.Store(firstFree+8, val)
			return nil
		case htTombstone:
			if !haveFree {
				firstFree, haveFree = s, true
			}
		}
		i = (i + 1) & (h.Buckets - 1)
	}
	if haveFree {
		ctx.Store(firstFree, key)
		ctx.Store(firstFree+8, val)
		return nil
	}
	return ErrFull
}

// Get returns the value stored under key.
func (h HashTable) Get(ctx Ctx, key uint64) (uint64, bool) {
	i := h.hash(key)
	for probes := uint64(0); probes < h.Buckets; probes++ {
		s := h.slot(i)
		switch k := ctx.Load(s); k {
		case key:
			return ctx.Load(s + 8), true
		case htEmpty:
			return 0, false
		}
		i = (i + 1) & (h.Buckets - 1)
	}
	return 0, false
}

// Delete removes key, leaving a tombstone so later probes keep working.
func (h HashTable) Delete(ctx Ctx, key uint64) bool {
	i := h.hash(key)
	for probes := uint64(0); probes < h.Buckets; probes++ {
		s := h.slot(i)
		switch k := ctx.Load(s); k {
		case key:
			ctx.Store(s, htTombstone)
			return true
		case htEmpty:
			return false
		}
		i = (i + 1) & (h.Buckets - 1)
	}
	return false
}

// HomeIndex returns the bucket index key hashes to — the start of its
// probe chain (used by lock planners for static transaction systems).
func (h HashTable) HomeIndex(key uint64) uint64 { return h.hash(key) }

// LockSpan returns the probe-chain extent of key as a bucket count: an
// operation on key touches buckets [HomeIndex, HomeIndex+span) modulo
// the table size. The span ends at (and includes) the first empty
// bucket, the farthest any Get, Put, or Delete can probe.
func (h HashTable) LockSpan(ctx Ctx, key uint64) uint64 {
	i := h.hash(key)
	for probes := uint64(0); probes < h.Buckets; probes++ {
		k := ctx.Load(h.slot(i))
		if k == htEmpty || k == key {
			return probes + 1
		}
		i = (i + 1) & (h.Buckets - 1)
	}
	return h.Buckets
}
