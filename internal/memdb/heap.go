package memdb

// Heap is a transactional first-fit allocator over a region of the
// persistent pool. Its metadata (free-list head, bump pointer) and block
// headers live inside the region and are read and written through the
// transaction context, so an allocation or free is atomic and durable
// with the transaction that performs it — this replaces the paper's
// separate per-thread pmalloc/pfree log (§3.5) with a strictly stronger
// mechanism: allocator state can never disagree with the data structures
// that use it.
//
// Region layout:
//
//	Base+0   free-list head (0 = empty)
//	Base+8   bump pointer (next never-allocated address)
//	Base+16  start of block storage
//
// A block is [size uint64][payload size bytes]; a free block stores the
// next free block's address in its first payload word. Freed blocks are
// not coalesced (allocation patterns in the benchmarks are uniform).
type Heap struct {
	// Base is the pool-logical address of the region.
	Base uint64
	// Size is the region length in bytes.
	Size uint64
}

const (
	heapMeta     = 16
	minPayload   = 8
	splitReserve = 16 // split only if the remainder fits a header + payload
)

// Format initializes the heap metadata. It must run in a transaction
// before the first Alloc (typically once, right after pool creation).
func (h Heap) Format(ctx Ctx) {
	ctx.Store(h.Base, 0)
	ctx.Store(h.Base+8, h.Base+heapMeta)
}

// Alloc allocates n bytes (rounded up to a multiple of 8, minimum 8) and
// returns the payload address.
func (h Heap) Alloc(ctx Ctx, n uint64) (uint64, error) {
	n = (n + 7) &^ 7
	if n < minPayload {
		n = minPayload
	}
	// First fit over the free list.
	prev := h.Base // address of the word pointing at the current block
	for b := ctx.Load(prev); b != 0; {
		size := ctx.Load(b)
		if size >= n {
			next := ctx.Load(b + 8)
			if size >= n+8+splitReserve {
				// Split the tail into a new free block.
				nb := b + 8 + n
				ctx.Store(nb, size-n-8)
				ctx.Store(nb+8, next)
				ctx.Store(prev, nb)
				ctx.Store(b, n)
			} else {
				ctx.Store(prev, next)
			}
			return b + 8, nil
		}
		prev = b + 8
		b = ctx.Load(prev)
	}
	// Extend the wilderness.
	bp := ctx.Load(h.Base + 8)
	if bp+8+n > h.Base+h.Size {
		return 0, ErrOutOfMemory
	}
	ctx.Store(h.Base+8, bp+8+n)
	ctx.Store(bp, n)
	return bp + 8, nil
}

// Free returns the block at payload address addr to the free list.
func (h Heap) Free(ctx Ctx, addr uint64) {
	b := addr - 8
	ctx.Store(b+8, ctx.Load(h.Base))
	ctx.Store(h.Base, b)
}

// BlockSize returns the payload size of the block at addr.
func (h Heap) BlockSize(ctx Ctx, addr uint64) uint64 {
	return ctx.Load(addr - 8)
}

// End returns the first address past the region.
func (h Heap) End() uint64 { return h.Base + h.Size }
