package memdb

// BPlusTree is the paper's B+-Tree microbenchmark structure (§5.1): a
// B+-tree mapping 64-bit keys to 64-bit values, with all node reads and
// writes going through the transaction context. Nodes are allocated from
// a transactional Heap, so structural changes (splits) are atomic with
// the insert that caused them.
//
// Node layout (272 bytes, both kinds):
//
//	+0    meta: count<<1 | leafBit
//	+8    keys[16]
//	+136  leaf: values[16]        internal: children[17]
//	+264  leaf: next-leaf address
//
// Delete removes keys from leaves without rebalancing (underfull nodes
// are allowed); Get/Put remain correct, and the benchmarks are
// insert/update/lookup dominated, as in the paper.
type BPlusTree struct {
	// RootPtr is the pool-logical address of the word holding the root
	// node's address.
	RootPtr uint64
	// Heap allocates nodes.
	Heap Heap
}

const (
	btFanout   = 16
	btNodeSize = 272
	btKeys     = 8
	btVals     = 136
	btChildren = 136
	btNext     = 264
)

func btMeta(count uint64, leaf bool) uint64 {
	m := count << 1
	if leaf {
		m |= 1
	}
	return m
}

func btCount(meta uint64) uint64 { return meta >> 1 }
func btLeaf(meta uint64) bool    { return meta&1 == 1 }

// Format allocates an empty root leaf. Must run in a transaction before
// first use.
func (t BPlusTree) Format(ctx Ctx) error {
	root, err := t.Heap.Alloc(ctx, btNodeSize)
	if err != nil {
		return err
	}
	ctx.Store(root, btMeta(0, true))
	ctx.Store(root+btNext, 0)
	ctx.Store(t.RootPtr, root)
	return nil
}

// Get returns the value stored under key.
func (t BPlusTree) Get(ctx Ctx, key uint64) (uint64, bool) {
	n := ctx.Load(t.RootPtr)
	for {
		meta := ctx.Load(n)
		count := btCount(meta)
		if btLeaf(meta) {
			for i := uint64(0); i < count; i++ {
				k := ctx.Load(n + btKeys + i*8)
				if k == key {
					return ctx.Load(n + btVals + i*8), true
				}
				if k > key {
					return 0, false
				}
			}
			return 0, false
		}
		i := uint64(0)
		for i < count && key >= ctx.Load(n+btKeys+i*8) {
			i++
		}
		n = ctx.Load(n + btChildren + i*8)
	}
}

// Put inserts or updates key.
func (t BPlusTree) Put(ctx Ctx, key, val uint64) error {
	root := ctx.Load(t.RootPtr)
	promoted, newNode, err := t.insert(ctx, root, key, val)
	if err != nil {
		return err
	}
	if newNode != 0 {
		// Root split: grow the tree by one level.
		nr, err := t.Heap.Alloc(ctx, btNodeSize)
		if err != nil {
			return err
		}
		ctx.Store(nr, btMeta(1, false))
		ctx.Store(nr+btKeys, promoted)
		ctx.Store(nr+btChildren, root)
		ctx.Store(nr+btChildren+8, newNode)
		ctx.Store(t.RootPtr, nr)
	}
	return nil
}

// insert adds key to the subtree at n. If n split, it returns the
// promoted key and the new right sibling's address.
func (t BPlusTree) insert(ctx Ctx, n, key, val uint64) (uint64, uint64, error) {
	meta := ctx.Load(n)
	count := btCount(meta)
	if btLeaf(meta) {
		// Update in place if present.
		pos := uint64(0)
		for pos < count {
			k := ctx.Load(n + btKeys + pos*8)
			if k == key {
				ctx.Store(n+btVals+pos*8, val)
				return 0, 0, nil
			}
			if k > key {
				break
			}
			pos++
		}
		if count < btFanout {
			t.leafInsertAt(ctx, n, count, pos, key, val)
			return 0, 0, nil
		}
		// Split: upper half moves to a new right sibling.
		right, err := t.Heap.Alloc(ctx, btNodeSize)
		if err != nil {
			return 0, 0, err
		}
		half := uint64(btFanout / 2)
		for i := uint64(0); i < half; i++ {
			ctx.Store(right+btKeys+i*8, ctx.Load(n+btKeys+(half+i)*8))
			ctx.Store(right+btVals+i*8, ctx.Load(n+btVals+(half+i)*8))
		}
		ctx.Store(right, btMeta(half, true))
		ctx.Store(right+btNext, ctx.Load(n+btNext))
		ctx.Store(n+btNext, right)
		ctx.Store(n, btMeta(half, true))
		if pos < half {
			t.leafInsertAt(ctx, n, half, pos, key, val)
		} else {
			t.leafInsertAt(ctx, right, half, pos-half, key, val)
		}
		return ctx.Load(right + btKeys), right, nil
	}

	// Internal node: descend.
	i := uint64(0)
	for i < count && key >= ctx.Load(n+btKeys+i*8) {
		i++
	}
	child := ctx.Load(n + btChildren + i*8)
	promoted, newChild, err := t.insert(ctx, child, key, val)
	if err != nil || newChild == 0 {
		return 0, 0, err
	}
	if count < btFanout {
		t.nodeInsertAt(ctx, n, count, i, promoted, newChild)
		return 0, 0, nil
	}
	// Split the internal node around its middle key.
	right, err := t.Heap.Alloc(ctx, btNodeSize)
	if err != nil {
		return 0, 0, err
	}
	half := uint64(btFanout / 2)
	up := ctx.Load(n + btKeys + half*8) // middle key moves up
	rc := btFanout - half - 1
	for j := uint64(0); j < rc; j++ {
		ctx.Store(right+btKeys+j*8, ctx.Load(n+btKeys+(half+1+j)*8))
	}
	for j := uint64(0); j <= rc; j++ {
		ctx.Store(right+btChildren+j*8, ctx.Load(n+btChildren+(half+1+j)*8))
	}
	ctx.Store(right, btMeta(rc, false))
	ctx.Store(n, btMeta(half, false))
	if i <= half {
		t.nodeInsertAt(ctx, n, half, i, promoted, newChild)
	} else {
		t.nodeInsertAt(ctx, right, rc, i-half-1, promoted, newChild)
	}
	return up, right, nil
}

// leafInsertAt shifts keys/values [pos, count) right and writes the new
// pair, updating the count.
func (t BPlusTree) leafInsertAt(ctx Ctx, n, count, pos, key, val uint64) {
	for i := count; i > pos; i-- {
		ctx.Store(n+btKeys+i*8, ctx.Load(n+btKeys+(i-1)*8))
		ctx.Store(n+btVals+i*8, ctx.Load(n+btVals+(i-1)*8))
	}
	ctx.Store(n+btKeys+pos*8, key)
	ctx.Store(n+btVals+pos*8, val)
	ctx.Store(n, btMeta(count+1, true))
}

// nodeInsertAt inserts a separator key and its right child at key
// position pos in an internal node.
func (t BPlusTree) nodeInsertAt(ctx Ctx, n, count, pos, key, child uint64) {
	for i := count; i > pos; i-- {
		ctx.Store(n+btKeys+i*8, ctx.Load(n+btKeys+(i-1)*8))
	}
	for i := count + 1; i > pos+1; i-- {
		ctx.Store(n+btChildren+i*8, ctx.Load(n+btChildren+(i-1)*8))
	}
	ctx.Store(n+btKeys+pos*8, key)
	ctx.Store(n+btChildren+(pos+1)*8, child)
	ctx.Store(n, btMeta(count+1, false))
}

// Delete removes key from its leaf (no rebalancing). It reports whether
// the key was present.
func (t BPlusTree) Delete(ctx Ctx, key uint64) bool {
	n := ctx.Load(t.RootPtr)
	for {
		meta := ctx.Load(n)
		count := btCount(meta)
		if btLeaf(meta) {
			for i := uint64(0); i < count; i++ {
				k := ctx.Load(n + btKeys + i*8)
				if k > key {
					return false
				}
				if k != key {
					continue
				}
				for j := i; j+1 < count; j++ {
					ctx.Store(n+btKeys+j*8, ctx.Load(n+btKeys+(j+1)*8))
					ctx.Store(n+btVals+j*8, ctx.Load(n+btVals+(j+1)*8))
				}
				ctx.Store(n, btMeta(count-1, true))
				return true
			}
			return false
		}
		i := uint64(0)
		for i < count && key >= ctx.Load(n+btKeys+i*8) {
			i++
		}
		n = ctx.Load(n + btChildren + i*8)
	}
}

// Scan calls fn for each pair with from <= key < to, in key order,
// following the leaf chain. fn returns false to stop early.
func (t BPlusTree) Scan(ctx Ctx, from, to uint64, fn func(key, val uint64) bool) {
	n := ctx.Load(t.RootPtr)
	for {
		meta := ctx.Load(n)
		if btLeaf(meta) {
			break
		}
		count := btCount(meta)
		i := uint64(0)
		for i < count && from >= ctx.Load(n+btKeys+i*8) {
			i++
		}
		n = ctx.Load(n + btChildren + i*8)
	}
	for n != 0 {
		meta := ctx.Load(n)
		count := btCount(meta)
		for i := uint64(0); i < count; i++ {
			k := ctx.Load(n + btKeys + i*8)
			if k < from {
				continue
			}
			if k >= to {
				return
			}
			if !fn(k, ctx.Load(n+btVals+i*8)) {
				return
			}
		}
		n = ctx.Load(n + btNext)
	}
}
