package memdb

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// flatCtx is a non-transactional Ctx over a flat word array: structure
// logic is tested here; transactional behaviour is exercised by the
// engine test suites.
type flatCtx struct{ w []uint64 }

func newCtx(size uint64) *flatCtx { return &flatCtx{w: make([]uint64, size/8)} }

func (c *flatCtx) Load(addr uint64) uint64 {
	if addr%8 != 0 {
		panic("unaligned")
	}
	return c.w[addr/8]
}

func (c *flatCtx) Store(addr, val uint64) {
	if addr%8 != 0 {
		panic("unaligned")
	}
	c.w[addr/8] = val
}

func (c *flatCtx) Abort() { panic("abort") }

// --- Heap ---

func TestHeapAllocBasics(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := Heap{Base: 0, Size: 1 << 16}
	h.Format(ctx)
	a, err := h.Alloc(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a%8 != 0 || b%8 != 0 {
		t.Fatal("unaligned allocation")
	}
	if b < a+104 {
		t.Fatalf("overlap: a=%d b=%d", a, b)
	}
	if got := h.BlockSize(ctx, a); got != 104 {
		t.Fatalf("BlockSize = %d, want 104 (rounded)", got)
	}
}

func TestHeapFreeReuse(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := Heap{Base: 0, Size: 1 << 16}
	h.Format(ctx)
	a, _ := h.Alloc(ctx, 64)
	h.Free(ctx, a)
	b, _ := h.Alloc(ctx, 64)
	if b != a {
		t.Fatalf("freed block not reused: %d != %d", b, a)
	}
}

func TestHeapSplit(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := Heap{Base: 0, Size: 1 << 16}
	h.Format(ctx)
	a, _ := h.Alloc(ctx, 256)
	h.Free(ctx, a)
	b, _ := h.Alloc(ctx, 32) // should split the 256 block
	if b != a {
		t.Fatalf("split block at %d, want %d", b, a)
	}
	c, _ := h.Alloc(ctx, 32) // remainder serves this one
	if !(c > b && c < a+264) {
		t.Fatalf("remainder not reused: c=%d", c)
	}
}

func TestHeapOOM(t *testing.T) {
	ctx := newCtx(4096)
	h := Heap{Base: 0, Size: 512}
	h.Format(ctx)
	if _, err := h.Alloc(ctx, 1024); err != ErrOutOfMemory {
		t.Fatalf("err = %v", err)
	}
	// Fill exactly, then fail.
	var last uint64
	for {
		a, err := h.Alloc(ctx, 32)
		if err != nil {
			break
		}
		last = a
	}
	if last == 0 {
		t.Fatal("no allocation succeeded")
	}
}

func TestHeapQuickNoOverlap(t *testing.T) {
	f := func(ops []uint16) bool {
		ctx := newCtx(1 << 20)
		h := Heap{Base: 0, Size: 1 << 20}
		h.Format(ctx)
		type blk struct{ addr, size uint64 }
		var live []blk
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				n := uint64(op%500) + 1
				a, err := h.Alloc(ctx, n)
				if err != nil {
					continue
				}
				rn := (n + 7) &^ 7
				if rn < 8 {
					rn = 8
				}
				for _, b := range live {
					if a < b.addr+b.size && b.addr < a+rn {
						return false // overlap
					}
				}
				live = append(live, blk{a, rn})
			} else {
				i := int(op) % len(live)
				h.Free(ctx, live[i].addr)
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- HashTable ---

func TestHashTableBasics(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := NewHashTable(0, 256)
	if err := h.Put(ctx, 1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(ctx, 1); !ok || v != 100 {
		t.Fatalf("got %d,%v", v, ok)
	}
	h.Put(ctx, 1, 200) // update
	if v, _ := h.Get(ctx, 1); v != 200 {
		t.Fatalf("update failed: %d", v)
	}
	if _, ok := h.Get(ctx, 2); ok {
		t.Fatal("phantom key")
	}
	if !h.Delete(ctx, 1) {
		t.Fatal("delete failed")
	}
	if _, ok := h.Get(ctx, 1); ok {
		t.Fatal("deleted key visible")
	}
	if h.Delete(ctx, 1) {
		t.Fatal("double delete succeeded")
	}
}

func TestHashTableCollisionsAndTombstones(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := NewHashTable(0, 8)
	// Fill to capacity.
	for k := uint64(1); k <= 8; k++ {
		if err := h.Put(ctx, k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Put(ctx, 9, 90); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// Delete one; the slot must be reusable despite the tombstone.
	h.Delete(ctx, 3)
	if err := h.Put(ctx, 9, 90); err != nil {
		t.Fatalf("tombstone not reused: %v", err)
	}
	for k := uint64(1); k <= 9; k++ {
		if k == 3 {
			continue
		}
		if v, ok := h.Get(ctx, k); !ok || v != k*10 {
			t.Fatalf("key %d: %d,%v", k, v, ok)
		}
	}
}

func TestHashTableReservedKeysPanic(t *testing.T) {
	ctx := newCtx(1 << 12)
	h := NewHashTable(0, 8)
	for _, k := range []uint64{0, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("reserved key accepted")
				}
			}()
			h.Put(ctx, k, 1)
		}()
	}
}

func TestHashTableQuickVsMap(t *testing.T) {
	f := func(ops []struct {
		K uint16
		V uint64
		D bool
	}) bool {
		ctx := newCtx(1 << 20)
		h := NewHashTable(0, 1<<12)
		model := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op.K) + 1
			if op.D {
				got := h.Delete(ctx, k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			} else {
				if h.Put(ctx, k, op.V) != nil {
					return false
				}
				model[k] = op.V
			}
		}
		for k, v := range model {
			if got, ok := h.Get(ctx, k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- BPlusTree ---

func newTree(t *testing.T) (*flatCtx, BPlusTree) {
	t.Helper()
	ctx := newCtx(8 << 20)
	h := Heap{Base: 64, Size: 8<<20 - 64}
	h.Format(ctx)
	tr := BPlusTree{RootPtr: 0, Heap: h}
	if err := tr.Format(ctx); err != nil {
		t.Fatal(err)
	}
	return ctx, tr
}

func TestBTreeSequentialInserts(t *testing.T) {
	ctx, tr := newTree(t)
	const n = 5000
	for i := uint64(1); i <= n; i++ {
		if err := tr.Put(ctx, i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := tr.Get(ctx, i); !ok || v != i*2 {
			t.Fatalf("key %d: %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(ctx, n+1); ok {
		t.Fatal("phantom key")
	}
}

func TestBTreeReverseInserts(t *testing.T) {
	ctx, tr := newTree(t)
	for i := uint64(3000); i >= 1; i-- {
		if err := tr.Put(ctx, i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 3000; i++ {
		if v, ok := tr.Get(ctx, i); !ok || v != i {
			t.Fatalf("key %d: %d,%v", i, v, ok)
		}
	}
}

func TestBTreeUpdate(t *testing.T) {
	ctx, tr := newTree(t)
	tr.Put(ctx, 42, 1)
	tr.Put(ctx, 42, 2)
	if v, _ := tr.Get(ctx, 42); v != 2 {
		t.Fatalf("v = %d", v)
	}
}

func TestBTreeDelete(t *testing.T) {
	ctx, tr := newTree(t)
	for i := uint64(1); i <= 1000; i++ {
		tr.Put(ctx, i, i)
	}
	for i := uint64(2); i <= 1000; i += 2 {
		if !tr.Delete(ctx, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := uint64(1); i <= 1000; i++ {
		v, ok := tr.Get(ctx, i)
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d visible", i)
		}
		if i%2 == 1 && (!ok || v != i) {
			t.Fatalf("key %d lost: %d,%v", i, v, ok)
		}
	}
	if tr.Delete(ctx, 2) {
		t.Fatal("double delete succeeded")
	}
	// Reinsert deleted keys.
	for i := uint64(2); i <= 1000; i += 2 {
		if err := tr.Put(ctx, i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(2); i <= 1000; i += 2 {
		if v, ok := tr.Get(ctx, i); !ok || v != i*3 {
			t.Fatalf("reinserted key %d: %d,%v", i, v, ok)
		}
	}
}

func TestBTreeScan(t *testing.T) {
	ctx, tr := newTree(t)
	rng := rand.New(rand.NewSource(5))
	model := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000)) + 1
		tr.Put(ctx, k, k*7)
		model[k] = k * 7
	}
	var got []uint64
	tr.Scan(ctx, 100, 5000, func(k, v uint64) bool {
		if v != k*7 {
			t.Fatalf("scan value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	var want []uint64
	for k := range model {
		if k >= 100 && k < 5000 {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBTreeScanEarlyStop(t *testing.T) {
	ctx, tr := newTree(t)
	for i := uint64(1); i <= 100; i++ {
		tr.Put(ctx, i, i)
	}
	n := 0
	tr.Scan(ctx, 1, 101, func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop: %d", n)
	}
}

func TestBTreeQuickVsMap(t *testing.T) {
	f := func(seed int64, opCount uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := newCtx(16 << 20)
		h := Heap{Base: 64, Size: 16<<20 - 64}
		h.Format(ctx)
		tr := BPlusTree{RootPtr: 0, Heap: h}
		if tr.Format(ctx) != nil {
			return false
		}
		model := map[uint64]uint64{}
		for i := 0; i < int(opCount); i++ {
			k := uint64(rng.Intn(500)) + 1
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64()
				if tr.Put(ctx, k, v) != nil {
					return false
				}
				model[k] = v
			case 2:
				got := tr.Delete(ctx, k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
		}
		for k, v := range model {
			if got, ok := tr.Get(ctx, k); !ok || got != v {
				return false
			}
		}
		// Scan must agree with the sorted model.
		var keys []uint64
		tr.Scan(ctx, 0, ^uint64(0), func(k, _ uint64) bool {
			keys = append(keys, k)
			return true
		})
		if len(keys) != len(model) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
