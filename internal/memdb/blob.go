package memdb

import "encoding/binary"

// Blob helpers: variable-length byte values stored on the transactional
// Heap. The word-granular transactional memories in this repository only
// move 8-byte words, so a blob is packed as
//
//	+0  length in bytes (uint64)
//	+8  payload, little-endian packed 8 bytes per word, zero-padded
//
// and read back word by word through the transaction context. The blob
// is allocated, written, and (on overwrite or delete) freed inside the
// caller's transaction, so a crash can never leak or tear one: either
// the whole blob — header, payload, and the pointer that references
// it — is durable, or none of it is.

// blobWords returns the number of payload words for n bytes.
func blobWords(n int) uint64 { return (uint64(n) + 7) / 8 }

// WriteBlob allocates a block for b on the heap and writes it, returning
// the blob's address (to store wherever a value pointer is needed).
func (h Heap) WriteBlob(ctx Ctx, b []byte) (uint64, error) {
	addr, err := h.Alloc(ctx, 8+blobWords(len(b))*8)
	if err != nil {
		return 0, err
	}
	ctx.Store(addr, uint64(len(b)))
	for i := uint64(0); i < blobWords(len(b)); i++ {
		var word [8]byte
		copy(word[:], b[i*8:])
		ctx.Store(addr+8+i*8, binary.LittleEndian.Uint64(word[:]))
	}
	return addr, nil
}

// ReadBlob reads the blob at addr into a fresh byte slice. The stored
// length is clamped to the block's capacity, so a corrupt header cannot
// drive an unbounded allocation or read past the block.
func (h Heap) ReadBlob(ctx Ctx, addr uint64) []byte {
	n := ctx.Load(addr)
	if blockPayload := h.BlockSize(ctx, addr); blockPayload < 8 {
		return nil
	} else if n > blockPayload-8 {
		n = blockPayload - 8
	}
	b := make([]byte, blobWords(int(n))*8)
	for i := uint64(0); i < blobWords(int(n)); i++ {
		binary.LittleEndian.PutUint64(b[i*8:], ctx.Load(addr+8+i*8))
	}
	return b[:n]
}

// BlobLen returns the byte length of the blob at addr without reading
// its payload.
func (h Heap) BlobLen(ctx Ctx, addr uint64) uint64 {
	return ctx.Load(addr)
}

// FreeBlob returns the blob's block to the heap's free list.
func (h Heap) FreeBlob(ctx Ctx, addr uint64) {
	h.Free(ctx, addr)
}
