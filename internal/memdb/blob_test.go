package memdb

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestBlobRoundTrip(t *testing.T) {
	ctx := newCtx(1 << 16)
	h := Heap{Base: 0, Size: 1 << 16}
	h.Format(ctx)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100, 1000} {
		b := make([]byte, n)
		rng.Read(b)
		addr, err := h.WriteBlob(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := h.BlobLen(ctx, addr); got != uint64(n) {
			t.Fatalf("BlobLen(%d bytes) = %d", n, got)
		}
		if got := h.ReadBlob(ctx, addr); !bytes.Equal(got, b) {
			t.Fatalf("%d bytes: read %x want %x", n, got, b)
		}
	}
}

func TestBlobFreeReuse(t *testing.T) {
	ctx := newCtx(1 << 12)
	h := Heap{Base: 0, Size: 1 << 12}
	h.Format(ctx)
	// Write/free in a loop much larger than the region: without reuse
	// the heap would run out.
	for i := 0; i < 1000; i++ {
		b := bytes.Repeat([]byte{byte(i)}, 200)
		addr, err := h.WriteBlob(ctx, b)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got := h.ReadBlob(ctx, addr); !bytes.Equal(got, b) {
			t.Fatalf("iter %d: mismatch", i)
		}
		h.FreeBlob(ctx, addr)
	}
}

func TestBlobCorruptLengthClamped(t *testing.T) {
	ctx := newCtx(1 << 12)
	h := Heap{Base: 0, Size: 1 << 12}
	h.Format(ctx)
	addr, err := h.WriteBlob(ctx, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the length header far beyond the block.
	ctx.Store(addr, 1<<40)
	got := h.ReadBlob(ctx, addr)
	if uint64(len(got)) > h.BlockSize(ctx, addr) {
		t.Fatalf("read %d bytes from a %d-byte block", len(got), h.BlockSize(ctx, addr))
	}
}
