// Package memdb provides transactional data structures — a heap
// allocator, an open-addressing hash table, and a B+-tree — written
// against a generic transaction context, so the same structure code runs
// unchanged on DudeTM, on the volatile TM engines, and on the Mnemosyne-
// and NVML-style baselines.
//
// All structures operate on 8-byte words at 8-aligned pool-logical
// addresses, matching the word-granular transactional memories in this
// repository.
package memdb

import "errors"

// Ctx is the transactional context: the intersection of every
// transaction handle in this repository (dudetm.Tx, stm.Tx, and the
// baseline transactions all satisfy it).
type Ctx interface {
	// Load reads the 8-byte word at addr within the transaction.
	Load(addr uint64) uint64
	// Store transactionally writes the 8-byte word at addr.
	Store(addr, val uint64)
	// Abort rolls the transaction back; it does not return.
	Abort()
}

// Errors shared by the structures.
var (
	// ErrOutOfMemory is returned when a Heap cannot satisfy an
	// allocation.
	ErrOutOfMemory = errors.New("memdb: out of persistent memory")
	// ErrFull is returned when a fixed-size hash table has no free
	// bucket on the probe path.
	ErrFull = errors.New("memdb: hash table full")
)

// Table is the common key-value interface of HashTable and BPlusTree,
// letting TPC-C and TATP swap their storage engine (the paper evaluates
// both variants).
type Table interface {
	Put(ctx Ctx, key, val uint64) error
	Get(ctx Ctx, key uint64) (uint64, bool)
	Delete(ctx Ctx, key uint64) bool
}
