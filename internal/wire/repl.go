package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Replication protocol messages. A primary streams sealed persist
// groups to its replicas over the same framed transport as the client
// protocol; replicas answer with their durable frontier. Every message
// is one frame whose payload starts with a kind byte, so a single
// DecodeRepl entry point covers the whole stream (and a single fuzz
// target, FuzzDecodeReplFrame, covers its defensive decoding).
//
// Handshake: the primary opens with ReplHello (magic, protocol
// version, primary epoch); the replica answers ReplHelloAck carrying
// its durable frontier, and the primary resumes the stream from the
// first group beyond it (catch-up). Steady state: ReplGroup frames in
// transaction-ID order, ReplAck frames whenever the replica's durable
// frontier advances.
//
// A ReplGroup payload is the group's serialized redo entries
// (redolog.AppendEntries layout), optionally lz4 block-compressed.
// PayloadCRC is the CRC-32C of the UNCOMPRESSED entry bytes: the frame
// CRC already guards the wire bytes, so this second checksum pins the
// decompression output — a corrupt compressed stream that still frames
// cleanly cannot smuggle wrong entries into a replica's log.

// ReplKind discriminates replication messages.
type ReplKind uint8

// Replication message kinds.
const (
	ReplHello ReplKind = iota + 1
	ReplHelloAck
	ReplGroup
	ReplAck
	replKindMax = ReplAck
)

// String returns the protocol name of the kind.
func (k ReplKind) String() string {
	switch k {
	case ReplHello:
		return "HELLO"
	case ReplHelloAck:
		return "HELLO_ACK"
	case ReplGroup:
		return "GROUP"
	case ReplAck:
		return "ACK"
	}
	return fmt.Sprintf("ReplKind(%d)", uint8(k))
}

// ReplMagic identifies the replication stream; a replica refuses a
// connection whose hello carries anything else (e.g. a client that
// dialed the replication port by mistake).
const ReplMagic = 0x4455_4445_5245_504c // "DUDEREPL"

// ReplVersion is the replication protocol version. Version 2 enriched
// ReplAck with the acked group's tid range and the replica's measured
// ingest (fence) duration, feeding the primary's cross-node critical-path
// decomposition. Both ends of a stream must speak the same version — the
// hello handshake rejects a mismatch before any group flows.
const ReplVersion = 2

const replGroupFlagCompressed = 1 << 0

// ReplMsg is one decoded replication message. Fields beyond Kind are
// populated per kind: Epoch for ReplHello; Frontier for ReplHelloAck
// and ReplAck; MinTid/MaxTid/Compressed/RawLen/PayloadCRC/Payload for
// ReplGroup.
type ReplMsg struct {
	Kind ReplKind
	// Epoch is the primary's log epoch (its durable frontier at boot):
	// a replica whose frontier is beyond the primary's history refuses
	// the stream instead of silently diverging.
	Epoch uint64
	// Frontier is the replica's durable transaction ID: every shipped
	// group at or below it is fenced into the replica's log.
	Frontier uint64
	// MinTid and MaxTid delimit the group's dense transaction-ID range.
	// On a ReplAck they name the group this ack fenced (zero when the
	// ack carries no new group — a catch-up duplicate re-ack).
	MinTid, MaxTid uint64
	// IngestNanos is the replica's measured ingest duration for the
	// acked group — its local log append plus persist barrier — in
	// nanoseconds on the replica's clock (ReplAck only). The primary
	// cannot compare replica timestamps against its own clock, but a
	// duration is clock-free: the critical-path pass anchors the
	// replica's fence span at the ack's arrival time and extends it
	// backward by this much.
	IngestNanos int64
	// Compressed marks Payload as lz4 block-compressed.
	Compressed bool
	// RawLen is the uncompressed payload length in bytes (== len(Payload)
	// when not compressed).
	RawLen uint32
	// PayloadCRC is the CRC-32C of the uncompressed payload.
	PayloadCRC uint32
	// Payload is the (possibly compressed) serialized redo entries. It
	// aliases the decode buffer; retain requires a copy.
	Payload []byte
}

// ReplPayloadCRC computes the checksum stored in ReplMsg.PayloadCRC
// (CRC-32C over the uncompressed entry bytes).
func ReplPayloadCRC(raw []byte) uint32 {
	return crc32.Checksum(raw, castagnoli)
}

// AppendReplHello appends an encoded hello to dst.
func AppendReplHello(dst []byte, epoch uint64) []byte {
	dst = append(dst, byte(ReplHello))
	dst = binary.LittleEndian.AppendUint64(dst, ReplMagic)
	dst = append(dst, ReplVersion)
	return binary.LittleEndian.AppendUint64(dst, epoch)
}

// AppendReplHelloAck appends an encoded hello acknowledgment to dst.
func AppendReplHelloAck(dst []byte, frontier uint64) []byte {
	dst = append(dst, byte(ReplHelloAck))
	return binary.LittleEndian.AppendUint64(dst, frontier)
}

// AppendReplAck appends an encoded frontier acknowledgment to dst.
// minTid/maxTid name the group this ack fenced (pass zeros for a pure
// frontier re-ack, e.g. a catch-up duplicate) and ingestNanos is the
// replica's measured append+fence duration for it.
func AppendReplAck(dst []byte, frontier, minTid, maxTid uint64, ingestNanos int64) []byte {
	dst = append(dst, byte(ReplAck))
	dst = binary.LittleEndian.AppendUint64(dst, frontier)
	dst = binary.LittleEndian.AppendUint64(dst, minTid)
	dst = binary.LittleEndian.AppendUint64(dst, maxTid)
	return binary.LittleEndian.AppendUint64(dst, uint64(ingestNanos))
}

// AppendReplGroup appends an encoded group message to dst. payload is
// the wire payload (compressed when compressed is true), rawLen the
// uncompressed length, and crc the CRC-32C of the uncompressed bytes.
func AppendReplGroup(dst []byte, minTid, maxTid uint64, payload []byte, compressed bool, rawLen, crc uint32) ([]byte, error) {
	if len(payload) > MaxPayload-64 {
		return dst, fmt.Errorf("wire: repl group payload is %d bytes (max %d)", len(payload), MaxPayload-64)
	}
	dst = append(dst, byte(ReplGroup))
	dst = binary.LittleEndian.AppendUint64(dst, minTid)
	dst = binary.LittleEndian.AppendUint64(dst, maxTid)
	var flags byte
	if compressed {
		flags |= replGroupFlagCompressed
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, rawLen)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...), nil
}

// DecodeRepl parses one replication message payload. Byte slices in
// the result alias the payload. Decoding is defensive: arbitrary input
// can fail, never panic or over-allocate (FuzzDecodeReplFrame).
func DecodeRepl(payload []byte) (ReplMsg, error) {
	r := reader{payload}
	var m ReplMsg
	k, err := r.u8()
	if err != nil {
		return m, err
	}
	m.Kind = ReplKind(k)
	switch m.Kind {
	case ReplHello:
		magic, err := r.u64()
		if err != nil {
			return m, err
		}
		if magic != ReplMagic {
			return m, fmt.Errorf("wire: repl hello magic %#x (want %#x)", magic, uint64(ReplMagic))
		}
		ver, err := r.u8()
		if err != nil {
			return m, err
		}
		if ver != ReplVersion {
			return m, fmt.Errorf("wire: repl protocol version %d (want %d)", ver, ReplVersion)
		}
		if m.Epoch, err = r.u64(); err != nil {
			return m, err
		}
	case ReplHelloAck:
		if m.Frontier, err = r.u64(); err != nil {
			return m, err
		}
	case ReplAck:
		if m.Frontier, err = r.u64(); err != nil {
			return m, err
		}
		if m.MinTid, err = r.u64(); err != nil {
			return m, err
		}
		if m.MaxTid, err = r.u64(); err != nil {
			return m, err
		}
		// Zero range = pure frontier re-ack; a named group must be a
		// valid range the frontier covers.
		if m.MinTid == 0 != (m.MaxTid == 0) || m.MaxTid < m.MinTid {
			return m, fmt.Errorf("wire: repl ack group range [%d,%d]", m.MinTid, m.MaxTid)
		}
		ingest, err := r.u64()
		if err != nil {
			return m, err
		}
		if ingest > 1<<62 {
			return m, fmt.Errorf("wire: repl ack ingest duration overflows")
		}
		m.IngestNanos = int64(ingest)
	case ReplGroup:
		if m.MinTid, err = r.u64(); err != nil {
			return m, err
		}
		if m.MaxTid, err = r.u64(); err != nil {
			return m, err
		}
		if m.MinTid == 0 || m.MaxTid < m.MinTid {
			return m, fmt.Errorf("wire: repl group tid range [%d,%d]", m.MinTid, m.MaxTid)
		}
		flags, err := r.u8()
		if err != nil {
			return m, err
		}
		if flags&^byte(replGroupFlagCompressed) != 0 {
			return m, fmt.Errorf("wire: unknown repl group flags %#x", flags)
		}
		m.Compressed = flags&replGroupFlagCompressed != 0
		rawLen, err := r.u32()
		if err != nil {
			return m, err
		}
		if rawLen > MaxPayload {
			return m, fmt.Errorf("wire: repl group raw length %d exceeds MaxPayload", rawLen)
		}
		m.RawLen = rawLen
		if m.PayloadCRC, err = r.u32(); err != nil {
			return m, err
		}
		if m.Payload, err = r.bytes(); err != nil {
			return m, err
		}
		if !m.Compressed && uint32(len(m.Payload)) != m.RawLen {
			return m, fmt.Errorf("wire: uncompressed repl group payload %d bytes, raw length says %d", len(m.Payload), m.RawLen)
		}
	default:
		return m, fmt.Errorf("wire: unknown repl message kind %d", k)
	}
	if len(r.b) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after repl %s", len(r.b), m.Kind)
	}
	return m, nil
}
