// Package wire implements the dudesrv client/server protocol: compact
// length-prefixed binary frames with a CRC-32 integrity check, carrying
// pipelined key-value requests and responses.
//
// Frame layout (all integers little-endian):
//
//	+0  u32  payload length (at most MaxPayload)
//	+4  u32  CRC-32C (Castagnoli) of the payload
//	+8  payload
//
// Frames are self-delimiting, so any number of requests may be in
// flight on one connection (request pipelining); responses carry the
// request ID they answer. Decoding is defensive: a frame or message
// assembled from arbitrary bytes can fail, but it can never panic,
// read out of bounds, or allocate more than the bytes actually present
// (FuzzDecodeFrame and FuzzDecodeRequest enforce this).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxPayload bounds a frame's payload: large enough for a full scan
// reply, small enough that a hostile length field cannot balloon
// allocation.
const MaxPayload = 1 << 20

// frameHeader is the fixed frame header size (length + CRC).
const frameHeader = 8

// Frame decoding errors.
var (
	// ErrShortFrame: the buffer does not yet hold a complete frame
	// (stream callers should read more bytes).
	ErrShortFrame = errors.New("wire: incomplete frame")
	// ErrFrameTooBig: the length field exceeds MaxPayload.
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxPayload")
	// ErrChecksum: the payload does not match its CRC.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
	// ErrTruncated: a message ended mid-field.
	ErrTruncated = errors.New("wire: truncated message")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends payload as one framed message to dst and returns
// the extended buffer.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame parses one frame from the front of b. It returns the
// payload as a subslice of b (no allocation) and the total number of
// bytes the frame occupies. ErrShortFrame means b does not yet contain
// the whole frame; other errors mean the stream is corrupt.
func DecodeFrame(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeader {
		return nil, 0, ErrShortFrame
	}
	ln := binary.LittleEndian.Uint32(b)
	if ln > MaxPayload {
		return nil, 0, ErrFrameTooBig
	}
	if uint64(len(b)) < frameHeader+uint64(ln) {
		return nil, 0, ErrShortFrame
	}
	payload = b[frameHeader : frameHeader+int(ln)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, ErrChecksum
	}
	return payload, frameHeader + int(ln), nil
}

// ReadFrame reads one complete frame from r and returns its payload.
// It allocates at most MaxPayload bytes, and only after the header has
// been validated.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	ln := binary.LittleEndian.Uint32(hdr[:])
	if ln > MaxPayload {
		return nil, ErrFrameTooBig
	}
	payload := make([]byte, ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading %d-byte payload: %w", ln, err)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// WriteFrame writes payload as one framed message to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxPayload {
		return ErrFrameTooBig
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// --- primitive cursor used by message decoding ---

// reader is a bounds-checked cursor over a message payload. Every
// accessor fails with ErrTruncated instead of reading past the end.
type reader struct {
	b []byte
}

func (r *reader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, ErrTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

// bytes reads a uvarint length followed by that many bytes, returned as
// a subslice (no allocation). The length is validated against the
// remaining buffer before any use, so a hostile length cannot
// over-allocate.
func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) {
		return nil, ErrTruncated
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

// count reads a uvarint element count for elements of at least minSize
// bytes each and validates it against the remaining buffer, bounding
// slice pre-allocation by what the payload can actually hold.
func (r *reader) count(minSize int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > uint64(len(r.b)/minSize) {
		return 0, ErrTruncated
	}
	return int(n), nil
}
