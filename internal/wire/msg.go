package wire

import (
	"encoding/binary"
	"fmt"
)

// Protocol limits, enforced on both encode and decode.
const (
	// MaxOps bounds the operations in one request (one transaction).
	MaxOps = 1024
	// MaxValueBytes bounds one value.
	MaxValueBytes = 64 << 10
	// MaxScanPairs bounds one scan result (and the default limit when a
	// scan does not specify one).
	MaxScanPairs = 1024
)

// OpKind identifies one key-value operation.
type OpKind uint8

// Operations. A request carrying more than one op executes them as a
// single atomic durable transaction.
const (
	OpGet OpKind = iota + 1
	OpPut
	OpDelete
	OpScan
	opKindMax = OpScan
)

// String returns the protocol name of the op.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one key-value operation inside a request.
type Op struct {
	Kind OpKind
	// Key is the operation's key; for OpScan, the inclusive lower
	// bound.
	Key uint64
	// Val is the OpPut payload (variable-length bytes).
	Val []byte
	// ScanTo is OpScan's exclusive upper bound (0 = unbounded).
	ScanTo uint64
	// ScanLimit caps OpScan's result pairs (0 = MaxScanPairs).
	ScanLimit uint32
}

// Request is one framed client request: a transaction of Ops answered
// by a Response with the same ID. IDs are chosen by the client and must
// be unique among its in-flight requests.
type Request struct {
	ID uint64
	// Relaxed requests a fast acknowledgment: the server replies after
	// the Perform step without waiting for the durable frontier.
	Relaxed bool
	Ops     []Op
}

const flagRelaxed = 1 << 0

// AppendRequest appends the encoded request to dst.
func AppendRequest(dst []byte, q *Request) ([]byte, error) {
	if len(q.Ops) == 0 || len(q.Ops) > MaxOps {
		return dst, fmt.Errorf("wire: request has %d ops (want 1..%d)", len(q.Ops), MaxOps)
	}
	dst = binary.LittleEndian.AppendUint64(dst, q.ID)
	var flags byte
	if q.Relaxed {
		flags |= flagRelaxed
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(q.Ops)))
	for i := range q.Ops {
		op := &q.Ops[i]
		dst = append(dst, byte(op.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, op.Key)
		switch op.Kind {
		case OpGet, OpDelete:
		case OpPut:
			if len(op.Val) > MaxValueBytes {
				return dst, fmt.Errorf("wire: value is %d bytes (max %d)", len(op.Val), MaxValueBytes)
			}
			dst = binary.AppendUvarint(dst, uint64(len(op.Val)))
			dst = append(dst, op.Val...)
		case OpScan:
			dst = binary.LittleEndian.AppendUint64(dst, op.ScanTo)
			dst = binary.AppendUvarint(dst, uint64(op.ScanLimit))
		default:
			return dst, fmt.Errorf("wire: unknown op kind %d", op.Kind)
		}
	}
	return dst, nil
}

// DecodeRequest parses a request payload. Byte slices in the result
// alias the payload; callers that retain them past the buffer's
// lifetime must copy.
func DecodeRequest(payload []byte) (Request, error) {
	r := reader{payload}
	var q Request
	var err error
	if q.ID, err = r.u64(); err != nil {
		return q, err
	}
	flags, err := r.u8()
	if err != nil {
		return q, err
	}
	q.Relaxed = flags&flagRelaxed != 0
	// Each op occupies at least kind+key bytes.
	n, err := r.count(9)
	if err != nil {
		return q, err
	}
	if n == 0 || n > MaxOps {
		return q, fmt.Errorf("wire: request has %d ops (want 1..%d)", n, MaxOps)
	}
	q.Ops = make([]Op, 0, n)
	for i := 0; i < n; i++ {
		var op Op
		k, err := r.u8()
		if err != nil {
			return q, err
		}
		op.Kind = OpKind(k)
		if op.Kind == 0 || op.Kind > opKindMax {
			return q, fmt.Errorf("wire: unknown op kind %d", k)
		}
		if op.Key, err = r.u64(); err != nil {
			return q, err
		}
		switch op.Kind {
		case OpPut:
			if op.Val, err = r.bytes(); err != nil {
				return q, err
			}
			if len(op.Val) > MaxValueBytes {
				return q, fmt.Errorf("wire: value is %d bytes (max %d)", len(op.Val), MaxValueBytes)
			}
		case OpScan:
			if op.ScanTo, err = r.u64(); err != nil {
				return q, err
			}
			lim, err := r.uvarint()
			if err != nil {
				return q, err
			}
			if lim > MaxScanPairs {
				lim = MaxScanPairs
			}
			op.ScanLimit = uint32(lim)
		}
		q.Ops = append(q.Ops, op)
	}
	if len(r.b) != 0 {
		return q, fmt.Errorf("wire: %d trailing bytes after request", len(r.b))
	}
	return q, nil
}

// Status is the outcome of a request.
type Status uint8

// Statuses.
const (
	// StatusOK: the transaction committed (and, unless the response
	// says otherwise, is durable).
	StatusOK Status = iota
	// StatusErr: the request failed; Err carries the message. The
	// transaction did not commit.
	StatusErr
)

// KV is one scan result pair.
type KV struct {
	Key uint64
	Val []byte
}

// OpResult is the per-op part of a response, index-aligned with the
// request's Ops.
type OpResult struct {
	// Found: OpGet found the key / OpDelete removed an existing key.
	Found bool
	// Val is OpGet's value.
	Val []byte
	// Pairs is OpScan's result.
	Pairs []KV
}

// Response answers the request with the same ID.
type Response struct {
	ID     uint64
	Status Status
	// Err is the failure message when Status != StatusOK.
	Err string
	// Tid is the commit ID of the write transaction (0 for read-only
	// requests, which need no durability wait).
	Tid uint64
	// Durable reports that Tid had been passed by the durable frontier
	// when the response was sent (always true for acknowledged
	// non-relaxed writes; false for relaxed fast-acks still in flight).
	Durable bool
	// Results are index-aligned with the request's ops.
	Results []OpResult
}

const (
	resFlagFound = 1 << 0
	resFlagVal   = 1 << 1
	resFlagPairs = 1 << 2
)

const respFlagDurable = 1 << 0

// AppendResponse appends the encoded response to dst.
func AppendResponse(dst []byte, p *Response) ([]byte, error) {
	dst = binary.LittleEndian.AppendUint64(dst, p.ID)
	dst = append(dst, byte(p.Status))
	if p.Status != StatusOK {
		dst = binary.AppendUvarint(dst, uint64(len(p.Err)))
		return append(dst, p.Err...), nil
	}
	dst = binary.LittleEndian.AppendUint64(dst, p.Tid)
	var flags byte
	if p.Durable {
		flags |= respFlagDurable
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(p.Results)))
	for i := range p.Results {
		res := &p.Results[i]
		var tag byte
		if res.Found {
			tag |= resFlagFound
		}
		if res.Val != nil {
			tag |= resFlagVal
		}
		if res.Pairs != nil {
			tag |= resFlagPairs
		}
		dst = append(dst, tag)
		if res.Val != nil {
			if len(res.Val) > MaxValueBytes {
				return dst, fmt.Errorf("wire: value is %d bytes (max %d)", len(res.Val), MaxValueBytes)
			}
			dst = binary.AppendUvarint(dst, uint64(len(res.Val)))
			dst = append(dst, res.Val...)
		}
		if res.Pairs != nil {
			if len(res.Pairs) > MaxScanPairs {
				return dst, fmt.Errorf("wire: scan returned %d pairs (max %d)", len(res.Pairs), MaxScanPairs)
			}
			dst = binary.AppendUvarint(dst, uint64(len(res.Pairs)))
			for _, kv := range res.Pairs {
				dst = binary.LittleEndian.AppendUint64(dst, kv.Key)
				dst = binary.AppendUvarint(dst, uint64(len(kv.Val)))
				dst = append(dst, kv.Val...)
			}
		}
	}
	return dst, nil
}

// DecodeResponse parses a response payload. Byte slices in the result
// alias the payload.
func DecodeResponse(payload []byte) (Response, error) {
	r := reader{payload}
	var p Response
	var err error
	if p.ID, err = r.u64(); err != nil {
		return p, err
	}
	st, err := r.u8()
	if err != nil {
		return p, err
	}
	p.Status = Status(st)
	if p.Status != StatusOK {
		msg, err := r.bytes()
		if err != nil {
			return p, err
		}
		p.Err = string(msg)
		if len(r.b) != 0 {
			return p, fmt.Errorf("wire: %d trailing bytes after response", len(r.b))
		}
		return p, nil
	}
	if p.Tid, err = r.u64(); err != nil {
		return p, err
	}
	flags, err := r.u8()
	if err != nil {
		return p, err
	}
	p.Durable = flags&respFlagDurable != 0
	n, err := r.count(1)
	if err != nil {
		return p, err
	}
	if n > MaxOps {
		return p, fmt.Errorf("wire: response has %d results (max %d)", n, MaxOps)
	}
	p.Results = make([]OpResult, 0, n)
	for i := 0; i < n; i++ {
		var res OpResult
		tag, err := r.u8()
		if err != nil {
			return p, err
		}
		if tag&^(resFlagFound|resFlagVal|resFlagPairs) != 0 {
			return p, fmt.Errorf("wire: unknown result tag %#x", tag)
		}
		res.Found = tag&resFlagFound != 0
		if tag&resFlagVal != 0 {
			if res.Val, err = r.bytes(); err != nil {
				return p, err
			}
			if res.Val == nil {
				res.Val = []byte{}
			}
		}
		if tag&resFlagPairs != 0 {
			// A pair occupies at least key+len bytes.
			np, err := r.count(9)
			if err != nil {
				return p, err
			}
			if np > MaxScanPairs {
				return p, fmt.Errorf("wire: scan result has %d pairs (max %d)", np, MaxScanPairs)
			}
			res.Pairs = make([]KV, 0, np)
			for j := 0; j < np; j++ {
				var kv KV
				if kv.Key, err = r.u64(); err != nil {
					return p, err
				}
				if kv.Val, err = r.bytes(); err != nil {
					return p, err
				}
				res.Pairs = append(res.Pairs, kv)
			}
		}
		p.Results = append(p.Results, res)
	}
	if len(r.b) != 0 {
		return p, fmt.Errorf("wire: %d trailing bytes after response", len(r.b))
	}
	return p, nil
}
