package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"dudetm/internal/lz4"
)

func TestReplControlRoundTrip(t *testing.T) {
	hello, err := DecodeRepl(AppendReplHello(nil, 42))
	if err != nil {
		t.Fatal(err)
	}
	if hello.Kind != ReplHello || hello.Epoch != 42 {
		t.Fatalf("hello: %+v", hello)
	}
	hack, err := DecodeRepl(AppendReplHelloAck(nil, 7))
	if err != nil {
		t.Fatal(err)
	}
	if hack.Kind != ReplHelloAck || hack.Frontier != 7 {
		t.Fatalf("hello ack: %+v", hack)
	}
	ack, err := DecodeRepl(AppendReplAck(nil, 99, 98, 99, 12345))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Kind != ReplAck || ack.Frontier != 99 || ack.MinTid != 98 || ack.MaxTid != 99 || ack.IngestNanos != 12345 {
		t.Fatalf("ack: %+v", ack)
	}
	// Pure frontier re-ack: zero group range, zero ingest duration.
	ack, err = DecodeRepl(AppendReplAck(nil, 50, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ack.MinTid != 0 || ack.MaxTid != 0 || ack.IngestNanos != 0 {
		t.Fatalf("re-ack: %+v", ack)
	}
	// Half-zero or inverted ack ranges are rejected.
	for _, bad := range [][2]uint64{{0, 3}, {3, 0}, {9, 3}} {
		if _, err := DecodeRepl(AppendReplAck(nil, 99, bad[0], bad[1], 0)); err == nil {
			t.Fatalf("decoded ack with group range [%d,%d]", bad[0], bad[1])
		}
	}
}

func TestReplGroupRoundTrip(t *testing.T) {
	raw := bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}, 64)
	crc := ReplPayloadCRC(raw)

	// Uncompressed.
	enc, err := AppendReplGroup(nil, 10, 12, raw, false, uint32(len(raw)), crc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeRepl(enc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ReplGroup || m.MinTid != 10 || m.MaxTid != 12 || m.Compressed ||
		m.RawLen != uint32(len(raw)) || m.PayloadCRC != crc || !bytes.Equal(m.Payload, raw) {
		t.Fatalf("group: %+v", m)
	}

	// Compressed: the decompressed bytes must match the CRC.
	comp := lz4.Compress(nil, raw)
	if len(comp) >= len(raw) {
		t.Fatalf("repetitive payload did not compress (%d -> %d)", len(raw), len(comp))
	}
	enc, err = AppendReplGroup(nil, 13, 13, comp, true, uint32(len(raw)), crc)
	if err != nil {
		t.Fatal(err)
	}
	m, err = DecodeRepl(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Compressed || m.RawLen != uint32(len(raw)) {
		t.Fatalf("compressed group: %+v", m)
	}
	dec, err := lz4.Decompress(m.Payload, int(m.RawLen))
	if err != nil {
		t.Fatal(err)
	}
	if ReplPayloadCRC(dec) != m.PayloadCRC {
		t.Fatal("decompressed payload fails its CRC")
	}
	if !bytes.Equal(dec, raw) {
		t.Fatal("decompressed payload differs from the original")
	}
}

// TestReplDecodeRejectsGarbage holds the decoder to its defensive
// contract across the interesting corruption classes: truncation at
// every boundary, wrong magic/version, inverted tid ranges, bad flags,
// hostile lengths, trailing bytes.
func TestReplDecodeRejectsGarbage(t *testing.T) {
	raw := bytes.Repeat([]byte{7}, 32)
	group, err := AppendReplGroup(nil, 5, 6, raw, false, uint32(len(raw)), ReplPayloadCRC(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Torn messages: every proper prefix of every message kind fails.
	for _, msg := range [][]byte{
		AppendReplHello(nil, 1),
		AppendReplHelloAck(nil, 2),
		AppendReplAck(nil, 3, 2, 3, 777),
		group,
	} {
		for i := 0; i < len(msg); i++ {
			if _, err := DecodeRepl(msg[:i]); err == nil {
				t.Fatalf("decoded torn prefix %d of %v", i, msg[:i])
			}
		}
		// Trailing garbage is rejected too.
		if _, err := DecodeRepl(append(append([]byte{}, msg...), 0)); err == nil {
			t.Fatal("decoded message with trailing byte")
		}
	}
	cases := map[string][]byte{
		"empty":        {},
		"unknown kind": {0xee},
		"bad magic": func() []byte {
			b := AppendReplHello(nil, 1)
			b[1] ^= 0xff
			return b
		}(),
		"bad version": func() []byte {
			b := AppendReplHello(nil, 1)
			b[9] = 0xfe
			return b
		}(),
		"zero min tid": func() []byte {
			b, _ := AppendReplGroup(nil, 1, 1, nil, false, 0, 0)
			copy(b[1:9], make([]byte, 8))
			return b
		}(),
		"inverted range": func() []byte {
			b := append([]byte{byte(ReplGroup)}, 9, 0, 0, 0, 0, 0, 0, 0)
			return append(b, 3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
		}(),
		"bad flags": func() []byte {
			b := append([]byte(nil), group...)
			b[17] |= 0x80
			return b
		}(),
		"raw len mismatch": func() []byte {
			b := append([]byte(nil), group...)
			b[18] ^= 1 // rawLen != len(payload) on an uncompressed group
			return b
		}(),
		"payload len beyond buffer": func() []byte {
			b := append([]byte(nil), group[:26]...)
			return append(b, 0xff, 0xff, 0xff, 0x7f)
		}(),
	}
	for name, b := range cases {
		if _, err := DecodeRepl(b); err == nil {
			t.Fatalf("%s: decoded garbage", name)
		}
	}
}

// TestReplGroupCRCDetectsCorruption flips bits in a framed compressed
// group and checks that one of the integrity layers (frame CRC when the
// wire bytes are torn, payload CRC after decompression) rejects it.
func TestReplGroupCRCDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	raw := make([]byte, 2048)
	for i := range raw {
		raw[i] = byte(rng.Intn(4)) // compressible
	}
	crc := ReplPayloadCRC(raw)
	comp := lz4.Compress(nil, raw)
	msg, err := AppendReplGroup(nil, 2, 4, comp, true, uint32(len(raw)), crc)
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendFrame(nil, msg)
	for trial := 0; trial < 100; trial++ {
		bad := append([]byte(nil), frame...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		payload, _, err := DecodeFrame(bad)
		if err != nil {
			continue // frame CRC caught it
		}
		m, err := DecodeRepl(payload)
		if err != nil || m.Kind != ReplGroup {
			continue // message layer caught it (or it became another kind)
		}
		dec, err := lz4.Decompress(m.Payload, int(m.RawLen))
		if err != nil {
			continue // decompressor caught it
		}
		if ReplPayloadCRC(dec) == m.PayloadCRC && !bytes.Equal(dec, raw) {
			t.Fatalf("trial %d: corruption passed every integrity layer", trial)
		}
	}
}

// FuzzDecodeReplFrame: arbitrary bytes through frame + repl decoding
// never panic; whatever decodes re-encodes to the same message; and a
// group that claims compression either decompresses to RawLen bytes or
// fails cleanly.
func FuzzDecodeReplFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, AppendReplHello(nil, 3)))
	f.Add(AppendFrame(nil, AppendReplHelloAck(nil, 17)))
	f.Add(AppendFrame(nil, AppendReplAck(nil, 123456, 123450, 123456, 98765)))
	f.Add(AppendFrame(nil, AppendReplAck(nil, 123456, 0, 0, 0)))
	raw := bytes.Repeat([]byte{0xaa, 0xbb}, 100)
	g, _ := AppendReplGroup(nil, 8, 9, raw, false, uint32(len(raw)), ReplPayloadCRC(raw))
	f.Add(AppendFrame(nil, g))
	comp := lz4.Compress(nil, raw)
	gc, _ := AppendReplGroup(nil, 10, 10, comp, true, uint32(len(raw)), ReplPayloadCRC(raw))
	f.Add(AppendFrame(nil, gc))
	// Torn and CRC-corrupted seeds.
	f.Add(AppendFrame(nil, g)[:11])
	torn := AppendFrame(nil, gc)
	torn[len(torn)-1] ^= 1
	f.Add(torn)
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, _, err := DecodeFrame(b)
		if err != nil {
			return
		}
		m, err := DecodeRepl(payload)
		if err != nil {
			return
		}
		// Round-trip: re-encoding the decoded message must reproduce the
		// original payload bytes.
		var re []byte
		switch m.Kind {
		case ReplHello:
			re = AppendReplHello(nil, m.Epoch)
		case ReplHelloAck:
			re = AppendReplHelloAck(nil, m.Frontier)
		case ReplAck:
			re = AppendReplAck(nil, m.Frontier, m.MinTid, m.MaxTid, m.IngestNanos)
		case ReplGroup:
			re, err = AppendReplGroup(nil, m.MinTid, m.MaxTid, m.Payload, m.Compressed, m.RawLen, m.PayloadCRC)
			if err != nil {
				t.Fatalf("re-encode of decoded group failed: %v", err)
			}
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("re-encode mismatch for %s", m.Kind)
		}
		if m.Kind == ReplGroup && m.Compressed {
			// A hostile compressed payload must fail cleanly, never
			// produce more than RawLen bytes.
			dec, err := lz4.Decompress(m.Payload, int(m.RawLen))
			if err == nil && len(dec) != int(m.RawLen) {
				t.Fatalf("decompressed %d bytes, raw length says %d", len(dec), m.RawLen)
			}
		}
	})
}
