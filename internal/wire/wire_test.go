package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	var stream []byte
	for _, p := range payloads {
		stream = AppendFrame(stream, p)
	}
	for i, want := range payloads {
		payload, n, err := DecodeFrame(stream)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: got %v want %v", i, payload, want)
		}
		stream = stream[n:]
	}
	if len(stream) != 0 {
		t.Fatalf("%d leftover bytes", len(stream))
	}
}

func TestFrameErrors(t *testing.T) {
	f := AppendFrame(nil, []byte("hello"))
	// Short prefixes ask for more bytes.
	for i := 0; i < len(f); i++ {
		if _, _, err := DecodeFrame(f[:i]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d: got %v, want ErrShortFrame", i, err)
		}
	}
	// A flipped payload bit fails the CRC.
	bad := append([]byte(nil), f...)
	bad[len(bad)-1] ^= 1
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: got %v, want ErrChecksum", err)
	}
	// A hostile length field is rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("huge length: got %v, want ErrFrameTooBig", err)
	}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("ReadFrame huge length: got %v, want ErrFrameTooBig", err)
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func randomRequest(rng *rand.Rand) *Request {
	q := &Request{ID: rng.Uint64(), Relaxed: rng.Intn(2) == 0}
	nops := rng.Intn(5) + 1
	for i := 0; i < nops; i++ {
		op := Op{Key: rng.Uint64()}
		switch rng.Intn(4) {
		case 0:
			op.Kind = OpGet
		case 1:
			op.Kind = OpPut
			op.Val = make([]byte, rng.Intn(64))
			rng.Read(op.Val)
		case 2:
			op.Kind = OpDelete
		case 3:
			op.Kind = OpScan
			op.ScanTo = rng.Uint64()
			op.ScanLimit = uint32(rng.Intn(MaxScanPairs))
		}
		q.Ops = append(q.Ops, op)
	}
	return q
}

func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		q := randomRequest(rng)
		enc, err := AppendRequest(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.ID != q.ID || got.Relaxed != q.Relaxed || len(got.Ops) != len(q.Ops) {
			t.Fatalf("iter %d: header mismatch", i)
		}
		for j := range q.Ops {
			a, b := q.Ops[j], got.Ops[j]
			if a.Kind != b.Kind || a.Key != b.Key || !bytes.Equal(a.Val, b.Val) ||
				a.ScanTo != b.ScanTo || a.ScanLimit != b.ScanLimit {
				t.Fatalf("iter %d op %d: %+v != %+v", i, j, a, b)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{ID: 1, Status: StatusErr, Err: "key not found"},
		{ID: 2, Tid: 77, Durable: true, Results: []OpResult{{Found: true, Val: []byte("v")}}},
		{ID: 3, Tid: 0, Results: []OpResult{
			{Found: false},
			{Pairs: []KV{{Key: 9, Val: []byte("a")}, {Key: 10, Val: nil}}},
		}},
		{ID: 4, Results: []OpResult{}},
	}
	for i, p := range cases {
		enc, err := AppendResponse(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.ID != p.ID || got.Status != p.Status || got.Err != p.Err ||
			got.Tid != p.Tid || got.Durable != p.Durable || len(got.Results) != len(p.Results) {
			t.Fatalf("case %d: %+v != %+v", i, got, p)
		}
		for j := range p.Results {
			a, b := p.Results[j], got.Results[j]
			if a.Found != b.Found || !bytes.Equal(a.Val, b.Val) || len(a.Pairs) != len(b.Pairs) {
				t.Fatalf("case %d result %d: %+v != %+v", i, j, a, b)
			}
			for k := range a.Pairs {
				if a.Pairs[k].Key != b.Pairs[k].Key || !bytes.Equal(a.Pairs[k].Val, b.Pairs[k].Val) {
					t.Fatalf("case %d result %d pair %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		// Valid header, zero ops.
		append(bytes.Repeat([]byte{0}, 9), 0),
		// Op count far beyond the payload.
		append(bytes.Repeat([]byte{0}, 9), 0xff, 0xff, 0xff, 0x7f),
	}
	for i, b := range cases {
		if _, err := DecodeRequest(b); err == nil {
			t.Fatalf("case %d: decoded garbage", i)
		}
	}
}

// FuzzDecodeFrame: arbitrary bytes never panic and never allocate
// beyond the input, and every encode→decode round-trips.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, []byte("seed")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	rng := rand.New(rand.NewSource(2))
	q, _ := AppendRequest(nil, randomRequest(rng))
	f.Add(AppendFrame(nil, q))
	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := DecodeFrame(b)
		if err != nil {
			if n != 0 || payload != nil {
				t.Fatalf("error with non-zero result: n=%d payload=%v", n, payload)
			}
			return
		}
		if n < frameHeader || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		// Whatever decoded must re-encode to the identical frame.
		re := AppendFrame(nil, payload)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch")
		}
		// The payload, if it parses as a request or response, must
		// survive its own round-trip without panicking.
		if req, err := DecodeRequest(payload); err == nil {
			if enc, err := AppendRequest(nil, &req); err == nil {
				if _, err := DecodeRequest(enc); err != nil {
					t.Fatalf("request re-decode: %v", err)
				}
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			if enc, err := AppendResponse(nil, &resp); err == nil {
				if _, err := DecodeResponse(enc); err != nil {
					t.Fatalf("response re-decode: %v", err)
				}
			}
		}
	})
}

// FuzzDecodeRequest: the message layer alone never panics on arbitrary
// bytes.
func FuzzDecodeRequest(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		enc, _ := AppendRequest(nil, randomRequest(rng))
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeRequest(b)
		DecodeResponse(b)
	})
}
