// Package repl is the log-shipping replication transport: a Sender on
// the primary streams every sealed persist group, in dense
// transaction-ID order, to peer dudesrv nodes over the framed protocol
// in internal/wire, and a Receiver on each replica fences the groups
// into its own NVM log and acknowledges its durable frontier.
//
// The durability pipeline stays decoupled end to end, exactly in the
// spirit of the paper: the Persist coordinator hands a sealed group to
// the Sender and moves on; serialization, compression, and the network
// happen off the critical path, and only WaitDurable observes the
// quorum gate (internal/dudetm's replState) fed by the acks flowing
// back here.
//
// Connection lifecycle per peer: dial (with capped exponential
// backoff) → ReplHello/ReplHelloAck handshake → catch-up (queued
// groups at or below the replica's frontier are dropped, the rest are
// resent) → steady-state streaming with acks read concurrently. A
// broken connection marks the peer not-live (feeding the quorum
// degraded logic) and reconnects. A full unacked queue on a live
// connection backpressures the Persist coordinator; a full queue on a
// DEAD connection marks the peer dead — it has fallen further behind
// than the primary can replay, since recycled log space is gone, and
// needs a rebuild.
package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/lz4"
	"dudetm/internal/obs"
	"dudetm/internal/redolog"
	"dudetm/internal/wire"
)

// Primary is the quorum-gate surface the Sender feeds replica state
// into (implemented by dudetm.System and the dude.Pool facade).
type Primary interface {
	ReplicaAcked(peer string, frontier uint64)
	ReplicaLive(peer string, live bool)
}

// PrimaryTracer is the optional tracing surface of a Primary: when the
// quorum gate also implements it (dudetm.System and dude.Pool do), the
// sender stamps per-peer frame-sent and replica-fence events into the
// primary's trace rings, extending a sampled transaction's timeline
// across nodes for critical-path decomposition. peer is the index into
// Config.Peers.
type PrimaryTracer interface {
	ReplicaGroupSent(peer int, minTid, maxTid uint64)
	ReplicaGroupAcked(peer int, minTid, maxTid uint64, ingestNanos int64)
}

// Config configures a Sender.
type Config struct {
	// Peers are the replica addresses (host:port); each is also the
	// peer name used with Primary.ReplicaAcked/ReplicaLive.
	Peers []string
	// Epoch is the primary's durable frontier when replication started:
	// groups at or below it predate the stream and are never shipped, so
	// a replica that is missing any of them refuses the handshake.
	Epoch uint64
	// Compress enables lz4 block compression of shipped groups.
	Compress bool
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (default 1s, starting at
	// 25ms and doubling).
	MaxBackoff time.Duration
	// QueueGroups is the per-peer unacked-group queue capacity (default
	// 4096). A full queue backpressures the Persist coordinator while
	// the peer is connected; while it is down, overflow marks the peer
	// dead — too far behind to ever catch up from the stream (the
	// primary recycles shipped log space), it needs a rebuild.
	QueueGroups int
}

func (c *Config) applyDefaults() {
	if c.DialTimeout == 0 {
		c.DialTimeout = time.Second
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = time.Second
	}
	if c.QueueGroups == 0 {
		c.QueueGroups = 4096
	}
}

// Sender ships sealed persist groups to every configured peer. It
// implements dudetm.ReplSink: ShipGroup runs on the Persist
// coordinator goroutine and only serializes, compresses, and enqueues
// — each peer's connection is driven by its own goroutine.
type Sender struct {
	cfg     Config
	pri     Primary
	tracer  PrimaryTracer // pri's optional tracing surface (may be nil)
	peers   []*peer
	closed  atomic.Bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	groupsShipped atomic.Uint64
	rawBytes      atomic.Uint64
	wireBytes     atomic.Uint64
	oversize      atomic.Uint64
	deadPeers     atomic.Uint64
	ackLat        obs.Histogram // ship→ack nanoseconds, per peer ack

	// Coordinator-goroutine scratch (ShipGroup is single-threaded).
	encBuf, cmpBuf, msgBuf []byte
}

// shipped is one group queued for a peer: the complete pre-encoded
// wire frame (shared read-only across peers) plus what ack tracking
// needs.
type shipped struct {
	frame          []byte
	minTid, maxTid uint64
	shipAt         int64 // UnixNano at ShipGroup
}

// NewSender builds a Sender for the given peers. It does not connect;
// call Start after attaching it to the pool (EnableReplication), so no
// ack can arrive before the quorum gate exists.
func NewSender(pri Primary, cfg Config) *Sender {
	cfg.applyDefaults()
	s := &Sender{cfg: cfg, pri: pri, closeCh: make(chan struct{})}
	s.tracer, _ = pri.(PrimaryTracer)
	for i, addr := range cfg.Peers {
		p := &peer{name: addr, idx: i, s: s}
		p.cond = sync.NewCond(&p.mu)
		s.peers = append(s.peers, p)
	}
	return s
}

// Start launches the per-peer connection loops.
func (s *Sender) Start() {
	for _, p := range s.peers {
		s.wg.Add(1)
		go p.run()
	}
}

// PeerNames returns the peer names acks will arrive under (the
// addresses), for EnableReplication.
func (s *Sender) PeerNames() []string { return append([]string(nil), s.cfg.Peers...) }

// ShipGroup implements dudetm.ReplSink: serialize and compress once,
// frame once, enqueue the shared frame to every peer. The entries
// slice is not retained.
func (s *Sender) ShipGroup(minTid, maxTid uint64, entries []redolog.Entry) {
	s.encBuf = redolog.AppendEntries(s.encBuf[:0], entries)
	raw := s.encBuf
	crc := wire.ReplPayloadCRC(raw)
	payload := raw
	compressed := false
	if s.cfg.Compress && len(raw) > 0 {
		s.cmpBuf = lz4.Compress(s.cmpBuf[:0], raw)
		if len(s.cmpBuf) < len(raw) {
			payload = s.cmpBuf
			compressed = true
		}
	}
	msg, err := wire.AppendReplGroup(s.msgBuf[:0], minTid, maxTid, payload, compressed, uint32(len(raw)), crc)
	s.msgBuf = msg[:0]
	if err != nil {
		// The group cannot be framed (beyond MaxPayload even
		// compressed): the stream is broken for every peer, and
		// pretending otherwise would leave a silent gap.
		s.oversize.Add(1)
		for _, p := range s.peers {
			p.kill()
		}
		return
	}
	frame := wire.AppendFrame(make([]byte, 0, len(msg)+8), msg)
	s.groupsShipped.Add(1)
	s.rawBytes.Add(uint64(len(raw)))
	s.wireBytes.Add(uint64(len(frame)))
	g := shipped{frame: frame, minTid: minTid, maxTid: maxTid, shipAt: time.Now().UnixNano()}
	for _, p := range s.peers {
		p.enqueue(g)
	}
}

// ShipStats implements dudetm.ReplSink: cumulative serialized bytes
// before and after compression.
func (s *Sender) ShipStats() (rawBytes, wireBytes uint64) {
	return s.rawBytes.Load(), s.wireBytes.Load()
}

// SenderStats is a Sender activity snapshot.
type SenderStats struct {
	// GroupsShipped counts groups handed to the sender.
	GroupsShipped uint64
	// RawBytes and WireBytes are cumulative group payload before and
	// after compression and framing.
	RawBytes, WireBytes uint64
	// OversizeDrops counts groups too large to frame (each kills the
	// stream rather than leaving a silent gap).
	OversizeDrops uint64
	// DeadPeers counts peers abandoned after an unacked-queue overflow.
	DeadPeers uint64
	// Connected is the number of peers with a live, handshaken
	// connection right now.
	Connected int
	// AckLatency is the ship→ack latency distribution in nanoseconds
	// (one observation per group per peer ack).
	AckLatency obs.HistSnapshot
}

// Stats returns an activity snapshot.
func (s *Sender) Stats() SenderStats {
	st := SenderStats{
		GroupsShipped: s.groupsShipped.Load(),
		RawBytes:      s.rawBytes.Load(),
		WireBytes:     s.wireBytes.Load(),
		OversizeDrops: s.oversize.Load(),
		DeadPeers:     s.deadPeers.Load(),
		AckLatency:    s.ackLat.Snapshot(),
	}
	for _, p := range s.peers {
		if p.connected.Load() {
			st.Connected++
		}
	}
	return st
}

// WaitConnected blocks until at least n peers hold a handshaken
// connection, or the timeout elapses; it reports whether the quorum of
// connections was reached.
func (s *Sender) WaitConnected(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.Stats().Connected >= n {
			return true
		}
		if time.Now().After(deadline) || s.closed.Load() {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops every peer loop and closes their connections. It does
// not wait for unacked groups: replication durability is whatever the
// quorum gate observed. Close the sender BEFORE closing or crashing
// the pool — pool teardown joins the Persist coordinator, and a
// coordinator backpressured on a full peer queue unblocks only on
// replica acks or this Close.
func (s *Sender) Close() {
	if s.closed.Swap(true) {
		return
	}
	close(s.closeCh)
	for _, p := range s.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	s.wg.Wait()
}

// peer is one replica connection: a queue of unacked groups and the
// goroutine that drives dial/handshake/stream/reconnect.
type peer struct {
	name string
	idx  int // index into Config.Peers (the trace-stamp peer id)
	s    *Sender

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds every group not yet known-acked, in tid order;
	// queue[:sent] has been written to the current connection. On
	// reconnect sent rewinds to 0 and the handshake frontier trims the
	// prefix the replica already holds — the catch-up path.
	queue []shipped
	sent  int
	gen   int // connection generation; bumped to kick the write loop
	dead  bool
	conn  net.Conn

	connected atomic.Bool
}

// enqueue adds a group to the unacked queue. A full queue on a
// connected peer blocks the caller (the Persist coordinator) until
// acks open space — the pipeline's natural flow control, extended over
// the wire; a slow replica slows the primary instead of being
// abandoned. A full queue with NO connection to drain it declares the
// peer dead: it has fallen further behind than the primary keeps
// history (shipped log space gets recycled) and needs a rebuild.
func (p *peer) enqueue(g shipped) {
	p.mu.Lock()
	for len(p.queue) >= p.s.cfg.QueueGroups && !p.dead && p.connected.Load() && !p.s.closed.Load() {
		p.cond.Wait()
	}
	if p.dead || p.s.closed.Load() {
		p.mu.Unlock()
		return
	}
	if len(p.queue) >= p.s.cfg.QueueGroups {
		p.deadLocked()
		p.mu.Unlock()
		p.cond.Broadcast()
		p.s.pri.ReplicaLive(p.name, false)
		return
	}
	p.queue = append(p.queue, g)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// kill marks the peer dead from outside (oversize group).
func (p *peer) kill() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.deadLocked()
	p.mu.Unlock()
	p.cond.Broadcast()
	p.s.pri.ReplicaLive(p.name, false)
}

func (p *peer) deadLocked() {
	p.dead = true
	p.queue = nil
	p.sent = 0
	if p.conn != nil {
		p.conn.Close()
	}
	p.s.deadPeers.Add(1)
}

// run is the peer's connection loop: dial with backoff, serve, mark
// not-live, repeat until the sender closes or the peer dies.
func (p *peer) run() {
	defer p.s.wg.Done()
	backoff := 25 * time.Millisecond
	for {
		p.mu.Lock()
		dead := p.dead
		p.mu.Unlock()
		if dead || p.s.closed.Load() {
			return
		}
		conn, err := net.DialTimeout("tcp", p.name, p.s.cfg.DialTimeout)
		if err != nil {
			select {
			case <-p.s.closeCh:
				return
			case <-time.After(backoff):
			}
			backoff = min(backoff*2, p.s.cfg.MaxBackoff)
			continue
		}
		handshook := p.serveConn(conn)
		conn.Close()
		p.connected.Store(false)
		if !p.s.closed.Load() {
			p.s.pri.ReplicaLive(p.name, false)
		}
		if handshook {
			backoff = 25 * time.Millisecond
			continue
		}
		// The replica accepted the dial but refused or dropped the
		// handshake: back off rather than hammering it.
		select {
		case <-p.s.closeCh:
			return
		case <-time.After(backoff):
		}
		backoff = min(backoff*2, p.s.cfg.MaxBackoff)
	}
}

// serveConn runs the handshake and the concurrent write/ack loops on
// one connection; it returns when the connection breaks, reporting
// whether the handshake completed (so the caller can back off on a
// replica that accepts but refuses).
func (p *peer) serveConn(conn net.Conn) bool {
	if err := wire.WriteFrame(conn, wire.AppendReplHello(nil, p.s.cfg.Epoch)); err != nil {
		return false
	}
	pl, err := wire.ReadFrame(conn)
	if err != nil {
		return false
	}
	m, err := wire.DecodeRepl(pl)
	if err != nil || m.Kind != wire.ReplHelloAck {
		return false
	}
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return true
	}
	// Catch-up: the replica already holds everything at or below its
	// frontier; resend the rest from the start of the queue.
	p.trimLocked(m.Frontier, 0)
	p.sent = 0
	p.conn = conn
	p.gen++
	gen := p.gen
	p.mu.Unlock()
	p.connected.Store(true)
	// The handshake trim frees space and flips connected: wake both a
	// backpressured coordinator and the (new-gen) write loop.
	p.cond.Broadcast()
	p.s.pri.ReplicaAcked(p.name, m.Frontier)

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.readAcks(conn, gen)
	}()
	p.writeLoop(conn, gen)
	conn.Close()
	<-done
	p.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	p.mu.Unlock()
	return true
}

// writeLoop streams queued frames until the connection generation is
// retired (ack-reader error), the peer dies, or the sender closes.
func (p *peer) writeLoop(conn net.Conn, gen int) {
	for {
		p.mu.Lock()
		for p.gen == gen && !p.dead && !p.s.closed.Load() && p.sent == len(p.queue) {
			p.cond.Wait()
		}
		if p.gen != gen || p.dead || p.s.closed.Load() {
			p.mu.Unlock()
			return
		}
		g := p.queue[p.sent]
		p.sent++
		p.mu.Unlock()
		if _, err := conn.Write(g.frame); err != nil {
			return
		}
		if t := p.s.tracer; t != nil {
			t.ReplicaGroupSent(p.idx, g.minTid, g.maxTid)
		}
	}
}

// readAcks consumes frontier acknowledgments, feeding the quorum gate
// and the ack-latency histogram; on any error it retires the
// connection generation so the write loop unblocks.
func (p *peer) readAcks(conn net.Conn, gen int) {
	for {
		pl, err := wire.ReadFrame(conn)
		if err != nil {
			break
		}
		m, err := wire.DecodeRepl(pl)
		if err != nil || m.Kind != wire.ReplAck {
			break
		}
		// Stamp the replica fence BEFORE the frontier feeds the quorum
		// gate: the acked-frontier advance may complete the sampled
		// transaction's timeline, which must already hold this fence.
		// A zero tid range is a pure re-ack (catch-up duplicate).
		if t := p.s.tracer; t != nil && m.MinTid != 0 {
			t.ReplicaGroupAcked(p.idx, m.MinTid, m.MaxTid, m.IngestNanos)
		}
		p.mu.Lock()
		p.trimLocked(m.Frontier, time.Now().UnixNano())
		p.mu.Unlock()
		// The trim may have opened queue space a backpressured
		// coordinator is waiting on.
		p.cond.Broadcast()
		p.s.pri.ReplicaAcked(p.name, m.Frontier)
	}
	conn.Close()
	p.mu.Lock()
	if p.gen == gen {
		p.gen++
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// trimLocked drops the queue prefix the frontier covers. nowNs > 0
// records ship→ack latency for each trimmed group; handshake trims
// pass 0 (reconnect downtime is not ack latency).
func (p *peer) trimLocked(frontier uint64, nowNs int64) {
	n := 0
	for n < len(p.queue) && p.queue[n].maxTid <= frontier {
		if nowNs > 0 {
			if d := nowNs - p.queue[n].shipAt; d > 0 {
				p.s.ackLat.Observe(uint64(d))
			} else {
				p.s.ackLat.Observe(0)
			}
		}
		n++
	}
	if n > 0 {
		p.queue = append(p.queue[:0], p.queue[n:]...)
		p.sent = max(p.sent-n, 0)
	}
}

// errBadHandshake is returned by the Receiver for a malformed or
// refused hello.
var errBadHandshake = errors.New("repl: bad replication handshake")

func badHandshake(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadHandshake, fmt.Sprintf(format, args...))
}
