package repl_test

import (
	"testing"
	"time"

	"dudetm/internal/dudetm"
	"dudetm/internal/obs"
)

// TestCritpathReplicatedReconciliation proves the cross-node tracing
// contract under a real R=2, Q=2 cluster: a sampled transaction's
// merged timeline carries the replica-side events (ship, per-peer
// sent, per-peer fence), and the critical-path decomposition's segment
// sum reconciles with the timeline's measured commit→acked latency.
func TestCritpathReplicatedReconciliation(t *testing.T) {
	cfg := testConfig()
	cfg.TraceSampleEvery = 1
	r1 := startReplica(t, cfg)
	defer r1.close()
	r2 := startReplica(t, cfg)
	defer r2.close()
	pri, snd := startPrimary(t, cfg, r1, r2)
	defer pri.Close()
	defer snd.Close()
	if !snd.WaitConnected(2, 10*time.Second) {
		t.Fatal("replicas never connected")
	}

	var last uint64
	for i := uint64(0); i < 50; i++ {
		tid, err := pri.Run(int(i)%cfg.Threads, func(tx *dudetm.Tx) error {
			tx.Store(i%128*8, i+1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	// WaitDurable returning nil means the quorum acked a frontier
	// covering last — and the ack path stamps the trace ring before it
	// releases waiters, so every stamp of last's timeline is in place.
	if err := pri.WaitDurable(last); err != nil {
		t.Fatal(err)
	}

	recs := pri.TraceOf(last)
	if len(recs) == 0 {
		t.Fatal("sampled transaction has no trace records")
	}
	kinds := map[obs.EventKind]int{}
	fencePeers := map[uint64]bool{}
	var commitAt, ackedAt int64
	for _, r := range recs {
		kinds[r.Kind]++
		switch r.Kind {
		case obs.EvCommit:
			commitAt = r.At
		case obs.EvAcked:
			ackedAt = r.At
		case obs.EvReplicaFence:
			fencePeers[r.Arg] = true
			if r.Dur < 0 {
				t.Fatalf("replica fence with negative ingest duration: %+v", r)
			}
		}
	}
	// The merged timeline must cover both sides of the wire: the
	// coordinator's ship handoff, at least one per-peer sent stamp, and
	// a quorum's worth of re-associated replica fences.
	for _, kind := range []obs.EventKind{obs.EvReplShip, obs.EvReplSent, obs.EvReplicaFence, obs.EvAcked} {
		if kinds[kind] == 0 {
			t.Errorf("merged timeline missing %s events:\n%v", kind, recs)
		}
	}
	if len(fencePeers) < 2 {
		t.Errorf("replica fences from %d peers, want 2 (R=2, Q=2)", len(fencePeers))
	}

	cp, ok := pri.CritpathOf(last)
	if !ok {
		t.Fatalf("critpath decomposition incomplete for tid %d:\n%v", last, recs)
	}
	if !cp.Replicated || cp.Quorum != 2 {
		t.Fatalf("cp = %+v, want replicated at quorum 2", cp)
	}
	var sum int64
	for _, d := range cp.Seg {
		sum += d
	}
	// Reconciliation: the segments tile the measured commit→acked
	// window. The tiling is exact by construction; hold it to the 5%
	// contract so a future lossy decomposition fails loudly.
	e2e := ackedAt - commitAt
	if e2e <= 0 {
		t.Fatalf("measured e2e %d (commit %d, acked %d)", e2e, commitAt, ackedAt)
	}
	diff := sum - e2e
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(e2e) {
		t.Fatalf("segment sum %d deviates from measured e2e %d by more than 5%%", sum, e2e)
	}
	if cp.Total != e2e {
		t.Fatalf("cp.Total %d != measured e2e %d", cp.Total, e2e)
	}
	// Replication did real work on this path: the shipped-and-waited
	// time is visible in the decomposition.
	if cp.Seg[obs.SegReplShip]+cp.Seg[obs.SegQuorumWait] <= 0 {
		t.Errorf("replication segments empty in a replicated decomposition: %+v", cp.Seg)
	}

	// The background collector folds sampled transactions into the
	// aggregate the /metrics endpoint exports.
	deadline := time.Now().Add(5 * time.Second)
	for {
		crit := pri.Stats().Obs.Crit
		if crit.Txns > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector never decomposed a txn: %+v", crit)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
