package repl_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"dudetm/internal/dudetm"
	"dudetm/internal/pmem"
	"dudetm/internal/repl"
)

func testConfig() dudetm.Config {
	return dudetm.Config{
		DataSize:    1 << 20,
		Threads:     2,
		VLogEntries: 1 << 12,
		LogBufBytes: 64 << 10,
		ReplFactor:  2,
		ReplQuorum:  2,
	}
}

// replicaNode is one in-process replica: a pool, its receiver, and the
// listener it serves on.
type replicaNode struct {
	sys  *dudetm.System
	rcv  *repl.Receiver
	ln   net.Listener
	done chan struct{}
}

func startReplica(t *testing.T, cfg dudetm.Config) *replicaNode {
	t.Helper()
	sys, err := dudetm.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sys.Close()
		t.Fatal(err)
	}
	n := &replicaNode{sys: sys, rcv: repl.NewReceiver(sys), ln: ln, done: make(chan struct{})}
	go func() {
		defer close(n.done)
		n.rcv.Serve(ln)
	}()
	return n
}

// stopIngest halts replication into the node (listener and streams)
// without touching the pool — the first half of both failover and
// shutdown.
func (n *replicaNode) stopIngest() {
	n.ln.Close()
	<-n.done
	n.rcv.Shutdown()
}

func (n *replicaNode) close() {
	n.stopIngest()
	n.sys.Close()
}

// startPrimary wires a pool to a sender shipping to the given nodes.
func startPrimary(t *testing.T, cfg dudetm.Config, nodes ...*replicaNode) (*dudetm.System, *repl.Sender) {
	t.Helper()
	sys, err := dudetm.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.ln.Addr().String()
	}
	snd := repl.NewSender(sys, repl.Config{
		Peers:    addrs,
		Epoch:    sys.Durable(),
		Compress: true,
	})
	if err := sys.EnableReplication(snd, snd.PeerNames()); err != nil {
		sys.Close()
		t.Fatal(err)
	}
	snd.Start()
	return sys, snd
}

func TestReplicationEndToEnd(t *testing.T) {
	// Primary plus two replicas at Q=2: every quorum-acked transaction
	// must survive a primary power failure on a promoted replica's
	// image, proven by the recovery audit.
	cfg := testConfig()
	r1 := startReplica(t, cfg)
	r2 := startReplica(t, cfg)
	pri, snd := startPrimary(t, cfg, r1, r2)
	if !snd.WaitConnected(2, 10*time.Second) {
		t.Fatal("replicas never connected")
	}

	var last uint64
	for i := uint64(0); i < 200; i++ {
		tid, err := pri.Run(int(i)%cfg.Threads, func(tx *dudetm.Tx) error {
			tx.Store(i%128*8, i+1000)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	// The quorum gate: WaitDurable returning nil means both replicas
	// acked a frontier covering last.
	if err := pri.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	st := pri.ReplStats()
	if st.Published < last {
		t.Fatalf("published %d < last %d after WaitDurable", st.Published, last)
	}
	sst := snd.Stats()
	if sst.GroupsShipped == 0 || sst.RawBytes == 0 || sst.WireBytes == 0 {
		t.Fatalf("sender stats = %+v", sst)
	}
	if sst.AckLatency.Count == 0 {
		t.Fatal("no ack latencies recorded")
	}

	// Power-fail the primary: the transport dies with it (sender first —
	// pool teardown joins the coordinator, which a full peer queue could
	// otherwise block forever).
	snd.Close()
	pri.Crash()

	// Promote the replica with the larger durable frontier — the
	// takeover rule — and prove every acked transaction survived on its
	// image via crash-image recovery plus the durability audit.
	promoted := r1
	other := r2
	if r2.sys.Durable() > r1.sys.Durable() {
		promoted, other = r2, r1
	}
	other.close()
	promoted.stopIngest()
	if got := promoted.sys.Durable(); got < last {
		t.Fatalf("promoted replica frontier %d < quorum-acked %d", got, last)
	}
	img := promoted.sys.Crash()
	dev := pmem.New(pmem.Config{Size: uint64(len(img))})
	dev.Restore(img)
	recovered, err := dudetm.Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if err := recovered.AuditRecovery(last); err != nil {
		t.Fatalf("promoted replica failed the durability audit: %v", err)
	}
	recovered.Run(0, func(tx *dudetm.Tx) error {
		for i := uint64(200 - 128); i < 200; i++ {
			if v := tx.Load(i % 128 * 8); v != i+1000 {
				t.Errorf("addr %d = %d, want %d", i%128*8, v, i+1000)
			}
		}
		return nil
	})
}

func TestReplicationReconnectCatchUp(t *testing.T) {
	// A replica that disconnects mid-stream reconnects, re-acks from
	// its durable frontier, and the sender resumes from there — the
	// catch-up trim — without ever moving the quorum frontier backward.
	cfg := testConfig()
	cfg.ReplFactor = 1
	cfg.ReplQuorum = 1
	r1 := startReplica(t, cfg)
	defer r1.close()
	pri, snd := startPrimary(t, cfg, r1)
	defer pri.Close()
	defer snd.Close()
	if !snd.WaitConnected(1, 10*time.Second) {
		t.Fatal("replica never connected")
	}

	var last uint64
	for i := uint64(0); i < 50; i++ {
		tid, err := pri.Run(0, func(tx *dudetm.Tx) error { tx.Store(i*8, i+1); return nil })
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := pri.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	published := pri.ReplStats().Published

	// Sever every stream into the replica (transient network failure);
	// the receiver keeps accepting, the pool keeps its frontier, so the
	// reconnect handshake re-acks an old value.
	eventsBefore := pri.ReplStats().DegradedEvents
	r1.rcv.CloseStreams()
	// Wait for the sender to notice the dead connection — the degraded
	// flag may flip back within microseconds once the reconnect
	// handshake lands, so latch on the monotonic event counter.
	deadline := time.Now().Add(10 * time.Second)
	for pri.ReplStats().DegradedEvents == eventsBefore {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never detected")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if pri.ReplStats().Published < published {
		t.Fatalf("published regressed on disconnect")
	}

	// Wait for the reconnect handshake to heal the quorum (its re-ack
	// marks the replica live again); until then new waiters fail fast.
	deadline = time.Now().Add(10 * time.Second)
	for pri.ReplStats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("quorum never healed after reconnect")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Traffic across the reconnect: the sender queues while down, the
	// handshake trims what the replica already holds, and the stream
	// resumes densely (any gap would reset the connection and show up
	// as a WaitDurable hang here).
	for i := uint64(0); i < 50; i++ {
		tid, err := pri.Run(0, func(tx *dudetm.Tx) error { tx.Store(i*8, i+500); return nil })
		if err != nil {
			t.Fatal(err)
		}
		last = tid
	}
	if err := pri.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if got := pri.ReplStats().Published; got < published || got < last {
		t.Fatalf("published = %d, want >= %d and >= %d", got, published, last)
	}
	if got := r1.sys.Durable(); got < last {
		t.Fatalf("replica frontier %d < %d after catch-up", got, last)
	}
	if gaps := r1.rcv.Stats().Gaps; gaps > 0 {
		// Gap resets heal via reconnect, but a clean single-disconnect
		// catch-up should not need any.
		t.Logf("note: %d gap resets during catch-up", gaps)
	}
}

func TestReplicationQuorumLossFailsWaiters(t *testing.T) {
	// Killing one of two replicas at Q=2 drops the quorum: in fail mode
	// new waiters get ErrQuorumLost instead of hanging or silently
	// acking.
	cfg := testConfig()
	r1 := startReplica(t, cfg)
	defer r1.close()
	r2 := startReplica(t, cfg)
	pri, snd := startPrimary(t, cfg, r1, r2)
	defer pri.Close()
	defer snd.Close()
	if !snd.WaitConnected(2, 10*time.Second) {
		t.Fatal("replicas never connected")
	}
	tid, err := pri.Run(0, func(tx *dudetm.Tx) error { tx.Store(0, 1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := pri.WaitDurable(tid); err != nil {
		t.Fatal(err)
	}

	// Kill r2 (streams and pool) and wait for the sender to notice.
	r2.close()
	deadline := time.Now().Add(10 * time.Second)
	for !pri.ReplStats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("quorum loss never detected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tid2, err := pri.Run(0, func(tx *dudetm.Tx) error { tx.Store(8, 2); return nil })
	if err != nil {
		t.Fatal(err)
	}
	werr := pri.WaitDurable(tid2)
	if werr == nil {
		// The waiter may race the degraded transition if r1's ack plus
		// the pre-close r2 ack covered tid2 first; what must never
		// happen is an ack beyond the quorum frontier.
		if pri.ReplStats().Published < tid2 {
			t.Fatal("WaitDurable returned nil beyond the published frontier")
		}
	} else if !errors.Is(werr, dudetm.ErrQuorumLost) {
		t.Fatalf("degraded wait: got %v, want ErrQuorumLost", werr)
	}
	if ev := pri.ReplStats().DegradedEvents; ev == 0 {
		t.Fatal("degraded events not counted")
	}
}
