package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dudetm/internal/dudetm"
	"dudetm/internal/lz4"
	"dudetm/internal/redolog"
	"dudetm/internal/wire"
)

// Replica is the pool surface the Receiver ingests into (implemented
// by dudetm.System and the dude.Pool facade). The Receiver must be
// stopped — listener and connections closed, handlers drained — before
// the pool is closed or crashed.
type Replica interface {
	IngestGroup(minTid, maxTid uint64, entries []redolog.Entry) error
	Durable() uint64
}

// Receiver accepts replication streams from a primary and fences each
// shipped group into the replica pool, acknowledging the durable
// frontier after every ingest.
type Receiver struct {
	rep Replica

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	groups atomic.Uint64 // groups fenced (duplicates excluded)
	dupes  atomic.Uint64 // catch-up duplicates skipped and re-acked
	gaps   atomic.Uint64 // streams reset because a group left a gap
}

// NewReceiver wraps a replica pool.
func NewReceiver(rep Replica) *Receiver {
	return &Receiver{rep: rep, conns: make(map[net.Conn]struct{})}
}

// ReceiverStats is a Receiver activity snapshot.
type ReceiverStats struct {
	// Groups counts shipped groups fenced into the local log.
	Groups uint64
	// Dupes counts catch-up duplicates (already durable, re-acked).
	Dupes uint64
	// Gaps counts connections reset because a group did not extend the
	// dense tid stream (the sender reconnects and catches up).
	Gaps uint64
}

// Stats returns an activity snapshot.
func (r *Receiver) Stats() ReceiverStats {
	return ReceiverStats{Groups: r.groups.Load(), Dupes: r.dupes.Load(), Gaps: r.gaps.Load()}
}

// Serve accepts replication connections until the listener closes,
// serving each on its own goroutine. It returns the accept error
// (net.ErrClosed after a clean shutdown).
func (r *Receiver) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			r.ServeConn(conn)
		}()
	}
}

// CloseStreams severs every in-flight replication stream without
// shutting the receiver down: new connections are still accepted, so
// the sender's reconnect-and-catch-up path heals the break. This is
// the transient-network-failure injection point for tests and drills.
func (r *Receiver) CloseStreams() {
	r.mu.Lock()
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
}

// Shutdown force-closes every in-flight replication connection and
// waits for their handlers to return; no new stream is accepted
// afterwards. Callers must Shutdown (after closing the listener)
// before closing, crashing, or promoting the replica pool — ingest
// must never race the pool teardown.
func (r *Receiver) Shutdown() {
	r.mu.Lock()
	r.closed = true
	for c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// ServeConn handles one replication stream: handshake, then
// group-ingest-ack until the connection breaks or a group fails to
// ingest. A gap error closes the connection — the sender's reconnect
// handshake learns the replica's frontier and resumes from there, so a
// dropped frame heals instead of diverging.
func (r *Receiver) ServeConn(conn net.Conn) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("repl: receiver is shut down")
	}
	r.conns[conn] = struct{}{}
	r.wg.Add(1)
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		r.wg.Done()
	}()
	pl, err := wire.ReadFrame(conn)
	if err != nil {
		return err
	}
	m, err := wire.DecodeRepl(pl)
	if err != nil {
		return err
	}
	if m.Kind != wire.ReplHello {
		return badHandshake("expected HELLO, got %s", m.Kind)
	}
	// The primary never ships its pre-epoch history. A replica missing
	// any of it can never become dense from this stream: refuse, it
	// needs a rebuild from a fresh image.
	if d := r.rep.Durable(); d < m.Epoch {
		return badHandshake("replica frontier %d predates primary epoch %d", d, m.Epoch)
	}
	if err := wire.WriteFrame(conn, wire.AppendReplHelloAck(nil, r.rep.Durable())); err != nil {
		return err
	}
	for {
		pl, err := wire.ReadFrame(conn)
		if err != nil {
			return err
		}
		m, err := wire.DecodeRepl(pl)
		if err != nil {
			return err
		}
		if m.Kind != wire.ReplGroup {
			return fmt.Errorf("repl: unexpected %s in group stream", m.Kind)
		}
		raw := m.Payload
		if m.Compressed {
			if raw, err = lz4.Decompress(m.Payload, int(m.RawLen)); err != nil {
				return fmt.Errorf("repl: group [%d,%d]: %w", m.MinTid, m.MaxTid, err)
			}
		}
		// The frame CRC guarded the wire bytes; this one pins the
		// decompression output before it can reach the log.
		if wire.ReplPayloadCRC(raw) != m.PayloadCRC {
			return fmt.Errorf("repl: group [%d,%d] payload checksum mismatch", m.MinTid, m.MaxTid)
		}
		entries, ok := redolog.DecodeEntries(raw)
		if !ok {
			return fmt.Errorf("repl: group [%d,%d] payload is not an entry array", m.MinTid, m.MaxTid)
		}
		before := r.rep.Durable()
		start := time.Now()
		if err := r.rep.IngestGroup(m.MinTid, m.MaxTid, entries); err != nil {
			if errors.Is(err, dudetm.ErrReplGap) {
				r.gaps.Add(1)
			}
			return err
		}
		// The ack names the group this connection just fenced and the
		// measured ingest (append + persist barrier) duration, feeding
		// the primary's critical-path decomposition. The duration is
		// clock-free — the two nodes' clocks are never compared. A
		// catch-up duplicate re-acks the frontier with a zero range.
		ackMin, ackMax := m.MinTid, m.MaxTid
		ingest := time.Since(start).Nanoseconds()
		if m.MaxTid <= before {
			r.dupes.Add(1)
			ackMin, ackMax, ingest = 0, 0, 0
		} else {
			r.groups.Add(1)
		}
		if err := wire.WriteFrame(conn, wire.AppendReplAck(nil, r.rep.Durable(), ackMin, ackMax, ingest)); err != nil {
			return err
		}
	}
}
