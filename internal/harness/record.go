package harness

import (
	"encoding/json"
	"io"
	"sync"
)

// Record is one measured run in machine-readable form. encoding/json
// emits struct fields in declaration order, so the key order below is
// the stable output order — downstream diffing and plotting scripts can
// rely on it.
type Record struct {
	Experiment  string  `json:"experiment"`
	System      string  `json:"system"`
	Bench       string  `json:"bench"`
	Threads     int     `json:"threads"`
	Ops         uint64  `json:"ops"`
	ElapsedNS   int64   `json:"elapsed_ns"`
	TPS         float64 `json:"tps"`
	P50NS       int64   `json:"p50_ns"`
	P90NS       int64   `json:"p90_ns"`
	P99NS       int64   `json:"p99_ns"`
	Commits     uint64  `json:"commits"`
	Aborts      uint64  `json:"aborts"`
	Writes      uint64  `json:"writes"`
	NVMBytes    uint64  `json:"nvm_bytes"`
	LogBytes    uint64  `json:"log_bytes"`
	RawEntries  uint64  `json:"raw_entries"`
	CombEntries uint64  `json:"comb_entries"`
	// Background-stage utilization over the measured interval (new
	// fields append after the original ones to keep the key order of
	// older records stable).
	PersistBusyNS uint64 `json:"persist_busy_ns"`
	ReproBusyNS   uint64 `json:"repro_busy_ns"`
	PersistFences uint64 `json:"persist_fences"`
	ReproFences   uint64 `json:"repro_fences"`
	// Observability-layer interval metrics (DudeTM only): sampled
	// lifecycle latencies and per-group histogram quantiles.
	TraceSampled    uint64 `json:"trace_sampled"`
	DurP50NS        uint64 `json:"dur_p50_ns"`
	DurP99NS        uint64 `json:"dur_p99_ns"`
	DurP999NS       uint64 `json:"dur_p999_ns"`
	ReproP99NS      uint64 `json:"repro_p99_ns"`
	FenceP99NS      uint64 `json:"fence_p99_ns"`
	QueueDwellP99NS uint64 `json:"queue_dwell_p99_ns"`
	GroupTxnsP50    uint64 `json:"group_txns_p50"`
	// Crash-recovery instrumentation (DudeTM only, zero unless the
	// system was mounted with Recover): per-phase timings and replay
	// volume of the mount-time recovery pass.
	RecoveryScanNS    int64  `json:"recovery_scan_ns"`
	RecoveryReplayNS  int64  `json:"recovery_replay_ns"`
	RecoveryRecycleNS int64  `json:"recovery_recycle_ns"`
	RecoveryGroups    uint64 `json:"recovery_groups_replayed"`
	RecoveryEntries   uint64 `json:"recovery_entries_replayed"`
	RecoveryBytes     uint64 `json:"recovery_bytes_replayed"`
	// Replicated-durability metrics (repl experiment only): the quorum
	// shape, ship-to-replica-ack latency quantiles, and the shipped
	// payload volume before/after wire compression.
	ReplFactor    int    `json:"repl_factor"`
	ReplQuorum    int    `json:"repl_quorum"`
	ReplAckP50NS  uint64 `json:"repl_ack_p50_ns"`
	ReplAckP99NS  uint64 `json:"repl_ack_p99_ns"`
	ReplAckP999NS uint64 `json:"repl_ack_p999_ns"`
	ReplRawBytes  uint64 `json:"repl_raw_bytes"`
	ReplWireBytes uint64 `json:"repl_wire_bytes"`
	// Replay-epoch coalescing and per-stage utilization (DudeTM only):
	// coalesced Reproduce epochs, the entries-in/entries-out reduction
	// of last-writer-wins coalescing, the distinct cache lines replay
	// wrote back, and the per-worker stage utilizations over the run.
	ReproEpochs        uint64  `json:"repro_epochs"`
	ReproCoalesceIn    uint64  `json:"repro_coalesce_in"`
	ReproCoalesceOut   uint64  `json:"repro_coalesce_out"`
	ReproCoalesceRatio float64 `json:"repro_coalesce_ratio"`
	ReproLinesFlushed  uint64  `json:"repro_lines_flushed"`
	PersistUtil        float64 `json:"persist_util"`
	ReproUtil          float64 `json:"repro_util"`
	// Open-loop load-curve metrics (loadcurve experiment only): the
	// arrival process, offered vs served rate, the p999 tail the
	// shared histogram now exposes, intended-vs-actual send skew,
	// served/offered shortfall, and watchdog stall episodes scraped
	// from the live /metrics endpoint mid-run.
	Process    string  `json:"process,omitempty"`
	OfferedTPS float64 `json:"offered_tps,omitempty"`
	ServedTPS  float64 `json:"served_tps,omitempty"`
	P999NS     int64   `json:"p999_ns,omitempty"`
	SkewP50NS  int64   `json:"skew_p50_ns,omitempty"`
	SkewP99NS  int64   `json:"skew_p99_ns,omitempty"`
	Shortfall  float64 `json:"shortfall,omitempty"`
	Stalls     uint64  `json:"stalls,omitempty"`
	AtKnee     bool    `json:"at_knee,omitempty"`
}

// recorder collects the Result of every Measure call while recording is
// active. Experiments run sequentially, so one current-experiment label
// suffices; the mutex covers the measurement goroutine itself.
var recorder struct {
	mu         sync.Mutex
	active     bool
	experiment string
	records    []Record
}

// StartRecording makes every subsequent measured run append a Record.
func StartRecording() {
	recorder.mu.Lock()
	recorder.active = true
	recorder.records = nil
	recorder.mu.Unlock()
}

// SetExperiment labels subsequent records (e.g. "fig2"); the driver
// calls it before each experiment function.
func SetExperiment(name string) {
	recorder.mu.Lock()
	recorder.experiment = name
	recorder.mu.Unlock()
}

// record appends one measured result if recording is active.
func record(res Result) {
	recorder.mu.Lock()
	if recorder.active {
		recorder.records = append(recorder.records, Record{
			Experiment:    recorder.experiment,
			System:        res.Sys.String(),
			Bench:         res.Bench,
			Threads:       res.Threads,
			Ops:           res.Ops,
			ElapsedNS:     res.Elapsed.Nanoseconds(),
			TPS:           res.TPS,
			P50NS:         res.P50.Nanoseconds(),
			P90NS:         res.P90.Nanoseconds(),
			P99NS:         res.P99.Nanoseconds(),
			Commits:       res.Stats.Commits,
			Aborts:        res.Stats.Aborts,
			Writes:        res.Stats.Writes,
			NVMBytes:      res.Stats.NVMBytes,
			LogBytes:      res.Stats.LogBytes,
			RawEntries:    res.Stats.RawEntries,
			CombEntries:   res.Stats.CombEntries,
			PersistBusyNS: res.Stats.PersistBusyNS,
			ReproBusyNS:   res.Stats.ReproBusyNS,
			PersistFences: res.Stats.PersistFences,
			ReproFences:   res.Stats.ReproFences,

			TraceSampled:    res.Stats.Obs.SampledCommits,
			DurP50NS:        res.Stats.Obs.CommitDurable.Quantile(0.5),
			DurP99NS:        res.Stats.Obs.CommitDurable.Quantile(0.99),
			DurP999NS:       res.Stats.Obs.CommitDurable.Quantile(0.999),
			ReproP99NS:      res.Stats.Obs.CommitReproduced.Quantile(0.99),
			FenceP99NS:      res.Stats.Obs.Fence.Quantile(0.99),
			QueueDwellP99NS: res.Stats.Obs.QueueDwell.Quantile(0.99),
			GroupTxnsP50:    res.Stats.Obs.GroupTxns.Quantile(0.5),

			RecoveryScanNS:    res.Stats.Recovery.ScanNanos,
			RecoveryReplayNS:  res.Stats.Recovery.ReplayNanos,
			RecoveryRecycleNS: res.Stats.Recovery.RecycleNanos,
			RecoveryGroups:    res.Stats.Recovery.GroupsReplayed,
			RecoveryEntries:   res.Stats.Recovery.EntriesReplayed,
			RecoveryBytes:     res.Stats.Recovery.BytesReplayed,

			ReproEpochs:        res.Stats.ReproEpochs,
			ReproCoalesceIn:    res.Stats.ReproCoalesceIn,
			ReproCoalesceOut:   res.Stats.ReproCoalesceOut,
			ReproCoalesceRatio: coalesceRatio(res.Stats.ReproCoalesceIn, res.Stats.ReproCoalesceOut),
			ReproLinesFlushed:  res.Stats.ReproLines,
			PersistUtil:        res.Stats.PersistUtil,
			ReproUtil:          res.Stats.ReproUtil,
			P999NS:             res.P999.Nanoseconds(),
		})
	}
	recorder.mu.Unlock()
}

// coalesceRatio is entries-in over entries-out of epoch coalescing
// (1 when no epochs formed — no duplication observed).
func coalesceRatio(in, out uint64) float64 {
	if out == 0 {
		return 1
	}
	return float64(in) / float64(out)
}

// recordRaw appends a fully-formed record if recording is active,
// stamping the current experiment label. Experiments whose
// measurements do not flow through Measure (repl: the workload spans
// several processes' worth of pools and a TCP transport) build their
// Record directly.
func recordRaw(rec Record) {
	recorder.mu.Lock()
	if recorder.active {
		rec.Experiment = recorder.experiment
		recorder.records = append(recorder.records, rec)
	}
	recorder.mu.Unlock()
}

// WriteJSON emits every recorded run as one indented JSON document:
// {"records": [...]} with per-record keys in the fixed Record order.
func WriteJSON(w io.Writer) error {
	recorder.mu.Lock()
	records := recorder.records
	recorder.mu.Unlock()
	if records == nil {
		records = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Records []Record `json:"records"`
	}{records})
}
