package harness

import (
	"net"
	"testing"
	"time"

	"dudetm"
	"dudetm/internal/server"
)

func TestNetLoadClosedLoop(t *testing.T) {
	pool, err := dudetm.Create(dudetm.Options{DataSize: 16 << 20, Threads: 4, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv, err := server.New(pool, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(5 * time.Second)

	var acks int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	res, err := NetLoad(NetLoadOpts{
		Addr:          ln.Addr().String(),
		Conns:         4,
		WritesPerConn: 50,
		ValueBytes:    32,
		ReadEvery:     10,
		OnAck: func(conn int, key, gen uint64) {
			<-mu
			acks++
			mu <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 200 || acks != 200 {
		t.Fatalf("writes=%d acks=%d, want 200", res.Writes, acks)
	}
	if res.TPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("implausible latency stats: %+v", res)
	}
	if res.Latency.Count != res.Writes {
		t.Fatalf("latency histogram count %d != writes %d", res.Latency.Count, res.Writes)
	}
	// Self-clocked run: no schedule, so no skew samples.
	if res.SendSkew.Count != 0 {
		t.Fatalf("unpaced run recorded %d skew samples", res.SendSkew.Count)
	}
	// Every connection really waited for durability: the server's
	// acknowledged-write count matches.
	if st := srv.Stats(); st.AckedWrites < 200 {
		t.Fatalf("server acked %d writes, want >= 200", st.AckedWrites)
	}

	// Paced run: intended-time stamping records one skew sample per
	// write, and the latency quantiles stay ordered with p999 present.
	res, err = NetLoad(NetLoadOpts{
		Addr:          ln.Addr().String(),
		Conns:         4,
		WritesPerConn: 50,
		ValueBytes:    32,
		TargetRate:    2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 200 {
		t.Fatalf("paced writes=%d, want 200", res.Writes)
	}
	if res.SendSkew.Count != res.Writes {
		t.Fatalf("paced run recorded %d skew samples for %d writes", res.SendSkew.Count, res.Writes)
	}
	if res.SkewP99 < res.SkewP50 {
		t.Fatalf("skew quantiles out of order: p50=%v p99=%v", res.SkewP50, res.SkewP99)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("paced latency quantiles out of order: %+v", res)
	}
}
