package harness

import (
	"math/rand"

	"dudetm/internal/memdb"
	"dudetm/internal/workload/tatp"
	"dudetm/internal/workload/tpcc"
	"dudetm/internal/workload/ycsb"
	"dudetm/internal/workload/zipf"
)

// Bench is one benchmark from §5.1: it loads its data set through the
// system's transactions and then issues one transaction per Op call.
type Bench interface {
	Name() string
	// DataSize is the persistent data region the benchmark needs.
	DataSize() uint64
	// Setup loads the initial data set (single-threaded).
	Setup(sys System) error
	// Op runs one transaction on slot and returns its ID.
	Op(sys System, slot int, rng *rand.Rand) (uint64, error)
}

// NVMLBench is implemented by benchmarks that can run on the NVML
// baseline: hash-based workloads whose lock sets can be planned
// statically (the paper evaluates NVML only on these).
type NVMLBench interface {
	OpNVML(n *NVMLSys, slot int, rng *rand.Rand) error
}

// heapBase leaves the first page of the data region for fixed roots.
const heapBase = 4096

// setupTxRun adapts System.Run for the workload Setup helpers.
func setupTxRun(sys System) func(fn func(memdb.Ctx) error) error {
	return func(fn func(memdb.Ctx) error) error {
		_, err := sys.Run(0, fn)
		return err
	}
}

// --- HashTable microbenchmark ---

// HashBench inserts randomly generated 64-bit pairs into a fixed-size
// open-addressing hash table, one insert per transaction.
type HashBench struct {
	Buckets  uint64
	Keyspace uint64
	tbl      memdb.HashTable
}

// NewHashBench returns the paper-scale configuration.
func NewHashBench() *HashBench {
	return &HashBench{Buckets: 1 << 20, Keyspace: 1 << 19}
}

// Name implements Bench.
func (b *HashBench) Name() string { return "HashTable" }

// DataSize implements Bench.
func (b *HashBench) DataSize() uint64 { return heapBase + b.Buckets*16 + (1 << 20) }

// Setup implements Bench: the zeroed pool is already an empty table.
func (b *HashBench) Setup(sys System) error {
	b.tbl = memdb.NewHashTable(heapBase, b.Buckets)
	return nil
}

// Op implements Bench.
func (b *HashBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	k := rng.Uint64()%b.Keyspace + 1
	v := rng.Uint64()
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		return b.tbl.Put(ctx, k, v)
	})
}

// --- B+-Tree microbenchmark ---

// BTreeBench inserts randomly generated 64-bit pairs into a B+-tree, one
// insert per transaction.
type BTreeBench struct {
	Keyspace uint64
	tree     memdb.BPlusTree
}

// NewBTreeBench returns the paper-scale configuration.
func NewBTreeBench() *BTreeBench { return &BTreeBench{Keyspace: 1 << 19} }

// Name implements Bench.
func (b *BTreeBench) Name() string { return "B+-tree" }

// DataSize implements Bench.
func (b *BTreeBench) DataSize() uint64 { return 96 << 20 }

// Setup implements Bench.
func (b *BTreeBench) Setup(sys System) error {
	heap := memdb.Heap{Base: heapBase, Size: b.DataSize() - heapBase}
	_, err := sys.Run(0, func(ctx memdb.Ctx) error {
		heap.Format(ctx)
		rootPtr, err := heap.Alloc(ctx, 8)
		if err != nil {
			return err
		}
		b.tree = memdb.BPlusTree{RootPtr: rootPtr, Heap: heap}
		return b.tree.Format(ctx)
	})
	return err
}

// Op implements Bench.
func (b *BTreeBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	k := rng.Uint64()%b.Keyspace + 1
	v := rng.Uint64()
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		return b.tree.Put(ctx, k, v)
	})
}

// --- TPC-C New Order ---

// TPCCBench runs the New Order transaction over B+-tree or hash tables.
type TPCCBench struct {
	Cfg tpcc.Config
	// LowConflict pins each thread to its own district (the paper's
	// reduced-conflict variant in Figure 5).
	LowConflict bool
	db          *tpcc.DB
}

// NewTPCCBench returns the paper-scale configuration for the given
// storage kind.
func NewTPCCBench(storage tpcc.StorageKind) *TPCCBench {
	return &TPCCBench{Cfg: tpcc.Config{
		Warehouses: 4,
		Districts:  10,
		Customers:  120,
		Items:      1024,
		MaxOrders:  1 << 17,
		Storage:    storage,
	}}
}

// Name implements Bench.
func (b *TPCCBench) Name() string {
	if b.Cfg.Storage == tpcc.HashStorage {
		return "TPC-C (hash)"
	}
	return "TPC-C (B+-tree)"
}

// DataSize implements Bench.
func (b *TPCCBench) DataSize() uint64 { return 256 << 20 }

// Setup implements Bench.
func (b *TPCCBench) Setup(sys System) error {
	heap := memdb.Heap{Base: heapBase, Size: b.DataSize() - heapBase}
	db, err := tpcc.Setup(b.Cfg, heap, setupTxRun(sys))
	if err != nil {
		return err
	}
	b.db = db
	return nil
}

// Op implements Bench.
func (b *TPCCBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	in := b.db.GenInput(rng, slot%b.db.Cfg.Warehouses)
	if b.LowConflict {
		in.D = slot % b.db.Cfg.Districts
	}
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		return b.db.NewOrder(ctx, in)
	})
}

// --- TATP Update Location ---

// TATPBench runs the Update Location transaction.
type TATPBench struct {
	Cfg tatp.Config
	db  *tatp.DB
}

// NewTATPBench returns the paper-scale configuration.
func NewTATPBench(storage tatp.StorageKind) *TATPBench {
	return &TATPBench{Cfg: tatp.Config{Subscribers: 32768, Storage: storage}}
}

// Name implements Bench.
func (b *TATPBench) Name() string {
	if b.Cfg.Storage == tatp.HashStorage {
		return "TATP (hash)"
	}
	return "TATP (B+-tree)"
}

// DataSize implements Bench.
func (b *TATPBench) DataSize() uint64 { return 64 << 20 }

// Setup implements Bench.
func (b *TATPBench) Setup(sys System) error {
	heap := memdb.Heap{Base: heapBase, Size: b.DataSize() - heapBase}
	db, err := tatp.Setup(b.Cfg, heap, setupTxRun(sys))
	if err != nil {
		return err
	}
	b.db = db
	return nil
}

// Op implements Bench.
func (b *TATPBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	sub := b.db.GenSubscriber(rng)
	loc := rng.Uint64() % 10000
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		b.db.UpdateLocation(ctx, sub, loc)
		return nil
	})
}

// --- YCSB Session Store (Figure 3) ---

// YCSBBench runs the Session Store mix (50/50 read-update, Zipfian
// 0.99) over a B+-tree key-value store.
type YCSBBench struct {
	Cfg     ycsb.Config
	db      *ycsb.DB
	drivers []*ycsb.Driver
}

// NewYCSBBench returns the paper-scale configuration (10 K records).
func NewYCSBBench() *YCSBBench { return &YCSBBench{Cfg: ycsb.Config{Records: 10000}} }

// Name implements Bench.
func (b *YCSBBench) Name() string { return "YCSB Session Store" }

// DataSize implements Bench.
func (b *YCSBBench) DataSize() uint64 { return 32 << 20 }

// Setup implements Bench.
func (b *YCSBBench) Setup(sys System) error {
	heap := memdb.Heap{Base: heapBase, Size: b.DataSize() - heapBase}
	db, err := ycsb.Setup(b.Cfg, heap, setupTxRun(sys))
	if err != nil {
		return err
	}
	b.db = db
	// Pre-sized so each worker initializes only its own slot (no append
	// races between workers).
	b.drivers = make([]*ycsb.Driver, 64)
	return nil
}

func (b *YCSBBench) driver(slot int, rng *rand.Rand) *ycsb.Driver {
	if b.drivers[slot] == nil {
		b.drivers[slot] = b.db.NewDriver(rng)
	}
	return b.drivers[slot]
}

// Op implements Bench.
func (b *YCSBBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	d := b.driver(slot, rng)
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		d.Op(ctx)
		return nil
	})
}

// --- B+-tree KV update workload (Figure 4) ---

// KVUpdateBench updates whole records of a loaded B+-tree key-value
// store with Zipfian-distributed keys — the paper's swap-overhead
// workload (§5.5).
type KVUpdateBench struct {
	Records    int
	Theta      float64
	ValueWords int
	tree       memdb.BPlusTree
	gens       []*zipf.Generator
}

// NewKVUpdateBench returns the scaled-down Figure 4 configuration.
func NewKVUpdateBench(theta float64) *KVUpdateBench {
	return &KVUpdateBench{Records: 150000, Theta: theta, ValueWords: 8}
}

// Name implements Bench.
func (b *KVUpdateBench) Name() string { return "KV update" }

// DataSize implements Bench.
func (b *KVUpdateBench) DataSize() uint64 { return 48 << 20 }

// Setup implements Bench.
func (b *KVUpdateBench) Setup(sys System) error {
	heap := memdb.Heap{Base: heapBase, Size: b.DataSize() - heapBase}
	if _, err := sys.Run(0, func(ctx memdb.Ctx) error {
		heap.Format(ctx)
		rootPtr, err := heap.Alloc(ctx, 8)
		if err != nil {
			return err
		}
		b.tree = memdb.BPlusTree{RootPtr: rootPtr, Heap: heap}
		return b.tree.Format(ctx)
	}); err != nil {
		return err
	}
	const batch = 512
	for start := 0; start < b.Records; start += batch {
		end := start + batch
		if end > b.Records {
			end = b.Records
		}
		if _, err := sys.Run(0, func(ctx memdb.Ctx) error {
			for i := start; i < end; i++ {
				row, err := heap.Alloc(ctx, uint64(b.ValueWords)*8)
				if err != nil {
					return err
				}
				ctx.Store(row, uint64(i))
				if err := b.tree.Put(ctx, uint64(i)+1, row); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	b.gens = make([]*zipf.Generator, 64)
	return nil
}

func (b *KVUpdateBench) gen(slot int, rng *rand.Rand) *zipf.Generator {
	if b.gens[slot] == nil {
		b.gens[slot] = zipf.New(rng, uint64(b.Records), b.Theta)
	}
	return b.gens[slot]
}

// Op implements Bench: one whole-record update.
func (b *KVUpdateBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	key := b.gen(slot, rng).Next() + 1
	v := rng.Uint64()
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		row, ok := b.tree.Get(ctx, key)
		if !ok {
			panic("kvupdate: missing record")
		}
		for w := 0; w < b.ValueWords; w++ {
			ctx.Store(row+uint64(w)*8, v+uint64(w))
		}
		return nil
	})
}

// --- Full TPC-C mix (repository extension) ---

// TPCCMixBench runs the complete TPC-C blend (45% New Order, 43%
// Payment, 4% each Order-Status/Delivery/Stock-Level) — beyond the
// paper's New-Order-only evaluation; Delivery exercises table deletes
// through the durable pipeline.
type TPCCMixBench struct {
	TPCCBench
}

// NewTPCCMixBench returns the standard-mix benchmark.
func NewTPCCMixBench(storage tpcc.StorageKind) *TPCCMixBench {
	return &TPCCMixBench{TPCCBench: *NewTPCCBench(storage)}
}

// Name implements Bench.
func (b *TPCCMixBench) Name() string { return "TPC-C full mix" }

// Op implements Bench.
func (b *TPCCMixBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	w := slot % b.db.Cfg.Warehouses
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		_, err := b.db.RunMix(ctx, rng, w)
		return err
	})
}

// --- TATP mix (repository extension) ---

// TATPMixBench runs the read-dominated TATP blend (~80% reads).
type TATPMixBench struct {
	TATPBench
}

// NewTATPMixBench returns the TATP-mix benchmark.
func NewTATPMixBench(storage tatp.StorageKind) *TATPMixBench {
	return &TATPMixBench{TATPBench: *NewTATPBench(storage)}
}

// Name implements Bench.
func (b *TATPMixBench) Name() string { return "TATP mix" }

// Op implements Bench.
func (b *TATPMixBench) Op(sys System, slot int, rng *rand.Rand) (uint64, error) {
	return sys.Run(slot, func(ctx memdb.Ctx) error {
		b.db.RunMix(ctx, rng)
		return nil
	})
}
