package harness

import (
	"errors"
	"fmt"
	"math/rand"

	"dudetm/internal/baseline/nvml"
	"dudetm/internal/memdb"
	"dudetm/internal/workload/tatp"
	"dudetm/internal/workload/tpcc"
)

// NVML static drivers.
//
// NVML-style transactions have no TM isolation: the caller must declare
// a lock set covering everything the transaction writes — the "prior
// knowledge of the write set" that restricts NVML to static transactions
// (§2.2). For hash tables the write location of an insert is the probe
// chain, so the drivers lock bucket *regions*: an optimistic read-only
// probe estimates the chain's extent, the transaction locks the covering
// regions, re-verifies the extent under the locks, and retries with a
// wider lock set if a concurrent insert stretched the chain. This is the
// fine-grained locking the paper built for its NVML hash table, made
// verifiable.

// hashRegionShift groups 64 buckets per lock region.
const hashRegionShift = 6

// Lock-key namespaces (folded into the stripe hash; collisions across
// namespaces only add contention, never unsafety).
const (
	nsHashBench = iota + 1
	nsTATPTable
	nsTATPRow
	nsTPCCOrders
	nsTPCCNewOrders
	nsTPCCOrderLines
	nsTPCCDistrict
	nsTPCCStock
	nsHeap
)

func lockKey(ns int, v uint64) uint64 { return uint64(ns)<<48 ^ v }

// hashPlan is the planned lock coverage for one hash-table key.
type hashPlan struct {
	t       memdb.HashTable
	ns      int
	key     uint64
	regions uint64
}

func (p *hashPlan) regionCount() uint64 {
	rc := p.t.Buckets >> hashRegionShift
	if rc == 0 {
		rc = 1
	}
	return rc
}

func (p *hashPlan) appendKeys(dst []uint64) []uint64 {
	rc := p.regionCount()
	n := p.regions
	if n > rc {
		n = rc
	}
	home := p.t.HomeIndex(p.key) >> hashRegionShift
	for j := uint64(0); j < n; j++ {
		dst = append(dst, lockKey(p.ns, (home+j)%rc))
	}
	return dst
}

// verify checks, under the locks, that the key's probe chain is fully
// covered by the locked regions.
func (p *hashPlan) verify(ctx memdb.Ctx) bool {
	span := p.t.LockSpan(ctx, p.key)
	off := p.t.HomeIndex(p.key) & (1<<hashRegionShift - 1)
	needed := (off + span + (1 << hashRegionShift) - 1) >> hashRegionShift
	rc := p.regionCount()
	if needed > rc {
		needed = rc
	}
	return needed <= p.regions
}

var errWiden = errors.New("harness: lock span too narrow")

// runPlanned executes fn under the planned locks, widening and retrying
// if any probe chain outgrew its coverage.
func runPlanned(n *NVMLSys, slot int, plans []*hashPlan, extra []uint64, fn func(tx *nvml.Tx) error) error {
	for {
		keys := append([]uint64(nil), extra...)
		for _, p := range plans {
			keys = p.appendKeys(keys)
		}
		err := n.S().Run(slot, keys, func(tx *nvml.Tx) error {
			for _, p := range plans {
				if !p.verify(tx) {
					return errWiden
				}
			}
			return fn(tx)
		})
		if errors.Is(err, errWiden) {
			for _, p := range plans {
				p.regions *= 2
			}
			continue
		}
		if err == nil {
			n.countCommit()
		}
		return err
	}
}

// OpNVML implements NVMLBench for the HashTable microbenchmark.
func (b *HashBench) OpNVML(n *NVMLSys, slot int, rng *rand.Rand) error {
	k := rng.Uint64()%b.Keyspace + 1
	v := rng.Uint64()
	p := &hashPlan{t: b.tbl, ns: nsHashBench, key: k, regions: 2}
	return runPlanned(n, slot, []*hashPlan{p}, nil, func(tx *nvml.Tx) error {
		return b.tbl.Put(tx, k, v)
	})
}

// OpNVML implements NVMLBench for TATP (hash storage only).
func (b *TATPBench) OpNVML(n *NVMLSys, slot int, rng *rand.Rand) error {
	if b.Cfg.Storage != tatp.HashStorage {
		return fmt.Errorf("harness: NVML requires the hash variant of %s", b.Name())
	}
	tbl := b.db.Subscribers.(memdb.HashTable)
	sub := b.db.GenSubscriber(rng)
	loc := rng.Uint64() % 10000
	key := tatp.SubscriberKey(sub)
	p := &hashPlan{t: tbl, ns: nsTATPTable, key: key, regions: 2}
	extra := []uint64{lockKey(nsTATPRow, key)}
	return runPlanned(n, slot, []*hashPlan{p}, extra, func(tx *nvml.Tx) error {
		b.db.UpdateLocation(tx, sub, loc)
		return nil
	})
}

var errStaleOID = errors.New("harness: order id moved")

// OpNVML implements NVMLBench for TPC-C (hash storage only): the lock
// plan covers the district counter, every stock row, the allocator, and
// the probe chains of the three insert tables — derived from an order-id
// estimate that is re-verified under the district lock.
func (b *TPCCBench) OpNVML(n *NVMLSys, slot int, rng *rand.Rand) error {
	if b.Cfg.Storage != tpcc.HashStorage {
		return fmt.Errorf("harness: NVML requires the hash variant of %s", b.Name())
	}
	db := b.db
	in := db.GenInput(rng, slot%db.Cfg.Warehouses)
	if b.LowConflict {
		in.D = slot % db.Cfg.Districts
	}
	orders := db.Orders.(memdb.HashTable)
	newOrders := db.NewOrders.(memdb.HashTable)
	orderLines := db.OrderLines.(memdb.HashTable)
	rc := n.S().ReadCtx()

	regions := uint64(2)
	for {
		oid := db.NextOID(rc, in.W, in.D) // optimistic estimate
		okey := db.OrderKey(in.W, in.D, oid)
		plans := []*hashPlan{
			{t: orders, ns: nsTPCCOrders, key: okey, regions: regions},
			{t: newOrders, ns: nsTPCCNewOrders, key: okey, regions: regions},
		}
		for i := range in.Items {
			plans = append(plans, &hashPlan{
				t: orderLines, ns: nsTPCCOrderLines,
				key: db.OrderLineKey(in.W, in.D, oid, i), regions: regions,
			})
		}
		extra := []uint64{
			lockKey(nsTPCCDistrict, db.DistrictKey(in.W, in.D)),
			lockKey(nsHeap, 0),
		}
		for _, it := range in.Items {
			extra = append(extra, lockKey(nsTPCCStock, db.StockKey(in.W, it)))
		}
		err := runPlanned(n, slot, plans, extra, func(tx *nvml.Tx) error {
			if db.NextOID(tx, in.W, in.D) != oid {
				return errStaleOID
			}
			return db.NewOrder(tx, in)
		})
		if errors.Is(err, errStaleOID) {
			continue // another thread took this order id; re-plan
		}
		return err
	}
}
