package harness

import (
	"strings"
	"testing"
	"time"
)

// curve builds a synthetic sweep: offered loads with the shortfalls and
// p99s a server with the given capacity would show.
func curve(points ...LoadCurvePoint) []LoadCurvePoint { return points }

func pt(offered, shortfall float64, p99 time.Duration, stalls uint64) LoadCurvePoint {
	return LoadCurvePoint{
		Process:    "poisson",
		OfferedTPS: offered,
		ServedTPS:  offered * (1 - shortfall),
		Shortfall:  shortfall,
		P99NS:      p99.Nanoseconds(),
		Stalls:     stalls,
	}
}

func TestDetectKnee(t *testing.T) {
	pts := curve(
		pt(1000, 0.001, time.Millisecond, 0),
		pt(2000, 0.002, 2*time.Millisecond, 0),
		pt(3000, 0.04, 10*time.Millisecond, 0), // still within 5% tolerance
		pt(4000, 0.25, 300*time.Millisecond, 0),
		pt(5000, 0.40, 800*time.Millisecond, 0),
	)
	if got := DetectKnee(pts); got != 2 {
		t.Errorf("DetectKnee = %d, want 2 (largest offered load within tolerance)", got)
	}
	// Every point saturated: no knee.
	if got := DetectKnee(curve(pt(1000, 0.5, time.Second, 0))); got != -1 {
		t.Errorf("DetectKnee(all saturated) = %d, want -1", got)
	}
	if got := DetectKnee(nil); got != -1 {
		t.Errorf("DetectKnee(nil) = %d, want -1", got)
	}
}

func TestEvaluateSLOPasses(t *testing.T) {
	pts := curve(
		pt(1000, 0.001, time.Millisecond, 0),
		pt(2000, 0.002, 3*time.Millisecond, 0),
		pt(3000, 0.30, 400*time.Millisecond, 2), // past the knee: stalls allowed
	)
	slo := SLO{MaxP99: 100 * time.Millisecond, AtOffered: 2500, MaxShortfall: 0.10}
	if v := EvaluateSLO(pts, DetectKnee(pts), slo); len(v) != 0 {
		t.Errorf("healthy curve violated SLO: %v", v)
	}
}

// TestEvaluateSLOOverSaturated is the acceptance drill: an SLO written
// for more load than the server can absorb must fail the gate, not pass
// vacuously.
func TestEvaluateSLOOverSaturated(t *testing.T) {
	// The server keeps up to 2 KTPS; the operator claims p99 <= 5ms all
	// the way to 4 KTPS. The 4 KTPS point is past saturation and its
	// queueing p99 blows the bound.
	pts := curve(
		pt(1000, 0.001, time.Millisecond, 0),
		pt(2000, 0.01, 4*time.Millisecond, 0),
		pt(4000, 0.35, 900*time.Millisecond, 0),
	)
	slo := SLO{MaxP99: 5 * time.Millisecond, AtOffered: 4000, MaxShortfall: 0.10}
	v := EvaluateSLO(pts, DetectKnee(pts), slo)
	if len(v) == 0 {
		t.Fatal("over-saturated SLO config passed the gate")
	}
	if !strings.Contains(strings.Join(v, "\n"), "p99") {
		t.Errorf("violations do not name the p99 breach: %v", v)
	}
}

func TestEvaluateSLOFullySaturated(t *testing.T) {
	// No point keeps up at all: the gate must call out that every
	// offered load is past saturation.
	pts := curve(pt(1000, 0.5, time.Second, 0), pt(2000, 0.7, 2*time.Second, 0))
	v := EvaluateSLO(pts, DetectKnee(pts), SLO{MaxP99: time.Second, AtOffered: 500, MaxShortfall: 0.10})
	if len(v) == 0 {
		t.Fatal("fully saturated curve passed the gate")
	}
	if !strings.Contains(strings.Join(v, "\n"), "past saturation") {
		t.Errorf("violations do not flag total saturation: %v", v)
	}
}

func TestEvaluateSLOBelowKneeChecks(t *testing.T) {
	// Shortfall and stall violations only bind at or below the knee.
	pts := curve(
		pt(1000, 0.03, time.Millisecond, 1), // below knee, 1 stall: violation
		pt(2000, 0.04, 2*time.Millisecond, 0),
		pt(3000, 0.30, 500*time.Millisecond, 5), // past knee: stalls ignored
	)
	slo := SLO{MaxP99: time.Second, AtOffered: 100, MaxShortfall: 0.02}
	v := strings.Join(EvaluateSLO(pts, DetectKnee(pts), slo), "\n")
	if !strings.Contains(v, "stall") {
		t.Errorf("below-knee stall not reported: %q", v)
	}
	if !strings.Contains(v, "shortfall") {
		t.Errorf("below-knee shortfall breach (3%% and 4%% > 2%%) not reported: %q", v)
	}
	if strings.Contains(v, "point 2") {
		t.Errorf("past-knee point reported below-knee violations: %q", v)
	}
	if len(EvaluateSLO(nil, -1, slo)) == 0 {
		t.Error("empty curve passed the gate")
	}
}
