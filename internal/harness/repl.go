package harness

import (
	"fmt"
	"net"
	"time"

	"dudetm/internal/dudetm"
	"dudetm/internal/repl"
)

// Repl measures the cost of replicated durability: the same write
// workload at R=0 (local durability only), R=1 Q=1 and R=2 Q=2, each
// over real TCP loopback streams to in-process replica pools. Reported
// per row: committed throughput, the ship-to-replica-ack latency
// quantiles, and the wire compression the lz4 path achieves on the
// shipped log payload. The throughput cost of raising R is the price
// of the quorum gate; it buys survival of a primary power failure.
func Repl(cfg ExpConfig) error {
	ops := uint64(20000)
	if cfg.Quick {
		ops /= 10
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = 1
	}
	fmt.Fprintf(cfg.Out, "Replicated durability (%d txns, %d threads, quorum = all replicas):\n", ops, threads)
	fmt.Fprintf(cfg.Out, "  %-10s %12s %12s %12s %12s %10s\n",
		"config", "txns/s", "ack p50", "ack p99", "ack p999", "wire ratio")
	for r := 0; r <= 2; r++ {
		if err := replRun(cfg, r, ops, threads); err != nil {
			return err
		}
	}
	return nil
}

// replRun is one R-replica measurement: build the cluster, drive the
// workload, wait out the (quorum-gated) durable frontier, record.
func replRun(cfg ExpConfig, r int, ops uint64, threads int) error {
	dcfg := dudetm.Config{
		DataSize:    4 << 20,
		Threads:     threads,
		VLogEntries: 1 << 14,
		LogBufBytes: 256 << 10,
		ReplFactor:  r,
		ReplQuorum:  r,
	}

	type node struct {
		sys  *dudetm.System
		rcv  *repl.Receiver
		ln   net.Listener
		done chan struct{}
	}
	nodes := make([]*node, r)
	addrs := make([]string, r)
	for i := range nodes {
		sys, err := dudetm.Create(dcfg)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			sys.Close()
			return err
		}
		n := &node{sys: sys, rcv: repl.NewReceiver(sys), ln: ln, done: make(chan struct{})}
		go func() {
			defer close(n.done)
			n.rcv.Serve(ln)
		}()
		nodes[i] = n
		addrs[i] = ln.Addr().String()
	}
	defer func() {
		for _, n := range nodes {
			n.ln.Close()
			<-n.done
			n.rcv.Shutdown()
			n.sys.Close()
		}
	}()

	pri, err := dudetm.Create(dcfg)
	if err != nil {
		return err
	}
	defer pri.Close()
	var snd *repl.Sender
	if r > 0 {
		snd = repl.NewSender(pri, repl.Config{Peers: addrs, Epoch: pri.Durable(), Compress: true})
		if err := pri.EnableReplication(snd, snd.PeerNames()); err != nil {
			return err
		}
		snd.Start()
		defer snd.Close()
		if !snd.WaitConnected(r, 10*time.Second) {
			return fmt.Errorf("repl bench: %d replicas never connected", r)
		}
	}

	perThread := ops / uint64(threads)
	lastTids := make([]uint64, threads)
	errs := make(chan error, threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		go func(t int) {
			var last uint64
			var err error
			for i := uint64(0); i < perThread; i++ {
				last, err = pri.Run(t, func(tx *dudetm.Tx) error {
					// Two stores per txn, thread-disjoint addresses, a
					// skewed value stream the lz4 pass can bite into.
					base := (uint64(t)*perThread + i) % 8192 * 16
					tx.Store(base, i)
					tx.Store(base+8, i/7)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
			lastTids[t] = last
			errs <- nil
		}(t)
	}
	for t := 0; t < threads; t++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	var last uint64
	for _, tid := range lastTids {
		if tid > last {
			last = tid
		}
	}
	// The durability wait is part of the measured interval: at R>0 it
	// completes only when the quorum has acked the final group.
	if err := pri.WaitDurable(last); err != nil {
		return err
	}
	elapsed := time.Since(start)
	done := perThread * uint64(threads)
	tps := float64(done) / elapsed.Seconds()

	rec := Record{
		System:     "DUDETM",
		Bench:      fmt.Sprintf("ReplStore R=%d", r),
		Threads:    threads,
		Ops:        done,
		ElapsedNS:  elapsed.Nanoseconds(),
		TPS:        tps,
		Commits:    done,
		ReplFactor: r,
		ReplQuorum: r,
	}
	ratio := "-"
	if snd != nil {
		st := snd.Stats()
		rec.ReplAckP50NS = st.AckLatency.Quantile(0.5)
		rec.ReplAckP99NS = st.AckLatency.Quantile(0.99)
		rec.ReplAckP999NS = st.AckLatency.Quantile(0.999)
		rec.ReplRawBytes = st.RawBytes
		rec.ReplWireBytes = st.WireBytes
		if st.WireBytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(st.RawBytes)/float64(st.WireBytes))
		}
	}
	recordRaw(rec)
	fmt.Fprintf(cfg.Out, "  R=%d Q=%-4d %12.0f %12s %12s %12s %10s\n",
		r, r, tps,
		replDur(rec.ReplAckP50NS), replDur(rec.ReplAckP99NS), replDur(rec.ReplAckP999NS), ratio)
	return nil
}

// replDur renders a nanosecond quantile, dash when unmeasured (R=0).
func replDur(ns uint64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}
