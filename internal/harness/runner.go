// Package harness runs the paper's benchmarks against every system in
// this repository and regenerates each table and figure of the
// evaluation (§5). Benchmarks are written once against memdb.Ctx and run
// unchanged on the volatile TMs, on every DudeTM configuration, and on
// the Mnemosyne baseline; the NVML baseline needs statically planned
// lock sets, so hash-based benchmarks additionally provide an NVML
// driver (mirroring the paper, which runs NVML only on its hash-based
// workloads).
package harness

import (
	"fmt"
	"sync/atomic"
	"time"

	"dudetm/internal/baseline/mnemosyne"
	"dudetm/internal/baseline/nvml"
	"dudetm/internal/dudetm"
	"dudetm/internal/memdb"
	"dudetm/internal/obs"
	"dudetm/internal/pmem"
	"dudetm/internal/shadow"
	"dudetm/internal/stm"
)

// SysKind enumerates the systems under evaluation.
type SysKind int

const (
	// VolatileSTM is TinySTM-like STM on DRAM, no durability — the
	// paper's upper bound.
	VolatileSTM SysKind = iota
	// VolatileHTM is the simulated HTM on DRAM, no durability.
	VolatileHTM
	// DudeSTM is DudeTM: decoupled, asynchronous persist.
	DudeSTM
	// DudeInf is DudeTM with an effectively unbounded volatile log.
	DudeInf
	// DudeSync is DUDETM-Sync: log flushed synchronously at commit.
	DudeSync
	// DudeHTM is DudeTM over the simulated HTM.
	DudeHTM
	// Mnemosyne is the redo-logging baseline.
	Mnemosyne
	// NVML is the undo-logging static-transaction baseline.
	NVML
)

// String returns the display name used in tables.
func (k SysKind) String() string {
	switch k {
	case VolatileSTM:
		return "Volatile-STM"
	case VolatileHTM:
		return "Volatile-HTM"
	case DudeSTM:
		return "DUDETM"
	case DudeInf:
		return "DUDETM-Inf"
	case DudeSync:
		return "DUDETM-Sync"
	case DudeHTM:
		return "DUDETM-HTM"
	case Mnemosyne:
		return "Mnemosyne"
	case NVML:
		return "NVML"
	}
	return fmt.Sprintf("SysKind(%d)", int(k))
}

// Options configures a system instance for one benchmark run.
type Options struct {
	Threads  int
	DataSize uint64
	// NVM timing model (§5.1): persist latency and write bandwidth.
	Latency   time.Duration
	Bandwidth float64
	// DelaysOn enables the timing model (off for functional tests).
	DelaysOn bool
	// DudeTM knobs.
	GroupSize   int
	Compress    bool
	VLogEntries int
	Shadow      dudetm.ShadowKind
	ShadowBytes uint64
	// Background-stage worker counts (0 = dudetm defaults).
	PersistThreads int
	ReproThreads   int
	// TraceSampleEvery enables lifecycle tracing for every N-th
	// transaction (DudeTM only; 0 = default / DUDETM_TRACE_SAMPLE).
	TraceSampleEvery int
	// BlackboxEntries sizes the persistent flight-recorder ring (DudeTM
	// only; 0 = dudetm default, negative disables the recorder).
	BlackboxEntries int
	// ReplayEpochGroups caps Reproduce epoch coalescing (DudeTM only;
	// 0 = dudetm default, 1 disables coalescing).
	ReplayEpochGroups int
	// ReplayEpochEntries bounds the combined entry count of one replay
	// epoch (DudeTM only; 0 = dudetm default).
	ReplayEpochEntries int
}

func (o *Options) applyDefaults() {
	if o.Threads == 0 {
		o.Threads = 2
	}
	if o.DataSize == 0 {
		o.DataSize = 64 << 20
	}
	if o.Latency == 0 {
		o.Latency = pmem.Latency1000
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = pmem.GB
	}
}

// SysStats is a cross-system statistics snapshot. All fields are
// monotonic counters, so interval activity is the difference of two
// snapshots.
type SysStats struct {
	Commits     uint64
	Aborts      uint64
	Writes      uint64 // transactional writes (dtmWrite count; DudeTM only)
	NVMBytes    uint64 // bytes written back to NVM
	LogBytes    uint64 // serialized log bytes (after combine/compress)
	RawEntries  uint64
	CombEntries uint64
	// Background-stage utilization (DudeTM only): busy nanoseconds and
	// persist barriers per stage.
	PersistBusyNS uint64
	ReproBusyNS   uint64
	PersistFences uint64
	ReproFences   uint64
	// PersistUtil and ReproUtil are absolute per-worker utilizations
	// since pool start (DudeTM only) — not interval deltas, but the
	// harness builds a fresh pool per measured run, so they describe
	// the run.
	PersistUtil float64
	ReproUtil   float64
	// Replay-epoch coalescing counters (DudeTM only): coalesced
	// epochs, entries entering / surviving last-writer-wins
	// coalescing, and cache lines written back by replay.
	ReproEpochs      uint64
	ReproCoalesceIn  uint64
	ReproCoalesceOut uint64
	ReproLines       uint64
	// Obs carries the lifecycle-latency histograms (DudeTM only;
	// mergeable snapshots, interval activity via Obs.Sub).
	Obs obs.Snapshot
	// Recovery describes the mount-time recovery pass (DudeTM only).
	// Unlike the counters above it is not an interval delta: recovery
	// happens once, before any measurement, so snapshots carry it
	// absolute.
	Recovery dudetm.RecoveryStats
}

// System is the harness view of a system under test.
type System interface {
	Kind() SysKind
	// Run executes one transaction; tid is meaningful for durability
	// waiting on DudeTM systems.
	Run(slot int, fn func(memdb.Ctx) error) (uint64, error)
	// WaitDurable blocks until the transaction is durable (no-op for
	// volatile systems and systems that are durable at Run return).
	WaitDurable(tid uint64)
	// Drain blocks until the background pipeline has fully caught up
	// (no-op for systems without one), so byte and entry counters are
	// exact.
	Drain()
	// AsyncDurability reports whether transactions become durable after
	// Run returns (DudeTM's decoupled modes) rather than at return.
	AsyncDurability() bool
	Close()
	Stats() SysStats
}

// NewSystem builds a system of the given kind.
func NewSystem(kind SysKind, o Options) (System, error) {
	o.applyDefaults()
	pc := pmem.Config{
		WriteLatency: o.Latency,
		Bandwidth:    o.Bandwidth,
		DelayEnabled: o.DelaysOn,
	}
	switch kind {
	case VolatileSTM:
		sp := shadow.NewFlat(o.DataSize, nil, 4096)
		return &volatileSys{kind: kind, tm: stm.New(sp, stm.Config{MaxSlots: o.Threads})}, nil
	case VolatileHTM:
		sp := shadow.NewFlat(o.DataSize, nil, 4096)
		return &volatileSys{kind: kind, tm: stm.NewHTM(sp, stm.HTMConfig{MaxSlots: o.Threads})}, nil
	case DudeSTM, DudeInf, DudeSync, DudeHTM:
		s, err := dudetm.Create(dudeConfig(kind, o, pc))
		if err != nil {
			return nil, err
		}
		return &dudeSys{kind: kind, s: s}, nil
	case Mnemosyne:
		s, err := mnemosyne.Create(mnemosyne.Config{
			DataSize: o.DataSize,
			Threads:  o.Threads,
			Pmem:     pc,
		})
		if err != nil {
			return nil, err
		}
		return &mnemoSys{s: s}, nil
	case NVML:
		s, err := nvml.Create(nvml.Config{
			DataSize: o.DataSize,
			Threads:  o.Threads,
			Pmem:     pc,
		})
		if err != nil {
			return nil, err
		}
		return &NVMLSys{s: s}, nil
	}
	return nil, fmt.Errorf("harness: unknown system kind %d", kind)
}

// dudeConfig maps harness Options onto a dudetm.Config for the given
// DudeTM variant.
func dudeConfig(kind SysKind, o Options, pc pmem.Config) dudetm.Config {
	cfg := dudetm.Config{
		DataSize:           o.DataSize,
		Threads:            o.Threads,
		GroupSize:          o.GroupSize,
		Compress:           o.Compress,
		VLogEntries:        o.VLogEntries,
		Shadow:             o.Shadow,
		ShadowBytes:        o.ShadowBytes,
		PersistThreads:     o.PersistThreads,
		ReproThreads:       o.ReproThreads,
		ReplayEpochGroups:  o.ReplayEpochGroups,
		ReplayEpochEntries: o.ReplayEpochEntries,
		TraceSampleEvery:   o.TraceSampleEvery,
		BlackboxEntries:    o.BlackboxEntries,
		Pmem:               pc,
	}
	switch kind {
	case DudeInf:
		if cfg.VLogEntries == 0 {
			cfg.VLogEntries = 1 << 23 // effectively unbounded for a run
		}
	case DudeSync:
		cfg.Mode = dudetm.ModeSync
	case DudeHTM:
		cfg.Engine = dudetm.EngineHTM
	}
	return cfg
}

// RecoverSystem remounts a DudeTM crash image as a harness System,
// running the crash-recovery pass; Stats().Recovery carries its phase
// timings and replay counters. Only the DudeTM kinds can recover.
func RecoverSystem(kind SysKind, img []byte, o Options) (System, error) {
	switch kind {
	case DudeSTM, DudeInf, DudeSync, DudeHTM:
	default:
		return nil, fmt.Errorf("harness: %s cannot recover a crash image", kind)
	}
	o.applyDefaults()
	pc := pmem.Config{
		WriteLatency: o.Latency,
		Bandwidth:    o.Bandwidth,
		DelayEnabled: o.DelaysOn,
	}
	devCfg := pc
	devCfg.Size = uint64(len(img))
	dev := pmem.New(devCfg)
	dev.Restore(img)
	s, err := dudetm.Recover(dev, dudeConfig(kind, o, pc))
	if err != nil {
		return nil, err
	}
	return &dudeSys{kind: kind, s: s}, nil
}

// --- volatile TM adapter ---

type volatileSys struct {
	kind SysKind
	tm   stm.TM
}

func (v *volatileSys) Kind() SysKind { return v.kind }

func (v *volatileSys) Run(slot int, fn func(memdb.Ctx) error) (uint64, error) {
	return v.tm.Run(slot, func(tx stm.Tx) error { return fn(tx) })
}

func (v *volatileSys) WaitDurable(uint64)    {}
func (v *volatileSys) Drain()                {}
func (v *volatileSys) AsyncDurability() bool { return false }
func (v *volatileSys) Close()                {}

func (v *volatileSys) Stats() SysStats {
	st := v.tm.Stats()
	return SysStats{Commits: st.Commits, Aborts: st.Aborts}
}

// --- DudeTM adapter ---

type dudeSys struct {
	kind SysKind
	s    *dudetm.System
}

func (d *dudeSys) Kind() SysKind { return d.kind }

// Sys exposes the underlying system (for paging stats and experiments).
func (d *dudeSys) Sys() *dudetm.System { return d.s }

func (d *dudeSys) Run(slot int, fn func(memdb.Ctx) error) (uint64, error) {
	return d.s.Run(slot, func(tx *dudetm.Tx) error { return fn(tx) })
}

func (d *dudeSys) WaitDurable(tid uint64) { d.s.WaitDurable(tid) }
func (d *dudeSys) Drain()                 { d.s.Drain() }

// AsyncDurability reports whether Run returns before durability (true
// for the decoupled modes, false for DUDETM-Sync).
func (d *dudeSys) AsyncDurability() bool { return d.kind != DudeSync }

func (d *dudeSys) Close() { d.s.Close() }

func (d *dudeSys) Stats() SysStats {
	st := d.s.Stats()
	return SysStats{
		Commits:          st.TM.Commits,
		Aborts:           st.TM.Aborts,
		Writes:           st.Writes,
		NVMBytes:         st.Device.BytesFlushed,
		LogBytes:         st.LogBytes,
		RawEntries:       st.RawEntries,
		CombEntries:      st.CombEntries,
		PersistBusyNS:    st.Persist.BusyNanos,
		ReproBusyNS:      st.Reproduce.BusyNanos,
		PersistFences:    st.Persist.Fences,
		ReproFences:      st.Reproduce.Fences,
		PersistUtil:      st.Persist.Utilization,
		ReproUtil:        st.Reproduce.Utilization,
		ReproEpochs:      st.Reproduce.Epochs,
		ReproCoalesceIn:  st.Reproduce.CoalesceIn,
		ReproCoalesceOut: st.Reproduce.CoalesceOut,
		ReproLines:       st.Reproduce.LinesFlushed,
		Obs:              st.Obs,
		Recovery:         st.Recovery,
	}
}

// --- Mnemosyne adapter ---

type mnemoSys struct {
	s *mnemosyne.System
}

func (m *mnemoSys) Kind() SysKind { return Mnemosyne }

func (m *mnemoSys) Run(slot int, fn func(memdb.Ctx) error) (uint64, error) {
	return m.s.Run(slot, func(tx *mnemosyne.Tx) error { return fn(tx) })
}

func (m *mnemoSys) WaitDurable(uint64)    {} // durable at Run return
func (m *mnemoSys) Drain()                {}
func (m *mnemoSys) AsyncDurability() bool { return false }
func (m *mnemoSys) Close()                {}

func (m *mnemoSys) Stats() SysStats {
	c, a := m.s.Stats()
	return SysStats{Commits: c, Aborts: a, NVMBytes: m.s.Device().Stats().BytesFlushed}
}

// --- NVML adapter ---

// NVMLSys adapts the NVML baseline. Its generic Run serializes under a
// single global lock (used for single-threaded setup); measured
// operations use the statically planned drivers in nvmlops.go.
type NVMLSys struct {
	s       *nvml.System
	commits atomic.Uint64
}

// Kind implements System.
func (n *NVMLSys) Kind() SysKind { return NVML }

// S exposes the underlying system for the static drivers.
func (n *NVMLSys) S() *nvml.System { return n.s }

const nvmlGlobalLockKey = ^uint64(0) >> 1

// Run implements System by serializing under one global lock — correct
// for any transaction, and only used for setup/validation paths.
func (n *NVMLSys) Run(slot int, fn func(memdb.Ctx) error) (uint64, error) {
	err := n.s.Run(slot, []uint64{nvmlGlobalLockKey}, func(tx *nvml.Tx) error { return fn(tx) })
	if err != nil {
		return 0, err
	}
	n.commits.Add(1)
	return 0, nil
}

func (n *NVMLSys) countCommit() { n.commits.Add(1) }

// WaitDurable implements System (durable at Run return).
func (n *NVMLSys) WaitDurable(uint64) {}

// Drain implements System (no background pipeline).
func (n *NVMLSys) Drain() {}

// AsyncDurability implements System (durable at Run return).
func (n *NVMLSys) AsyncDurability() bool { return false }

// Close implements System.
func (n *NVMLSys) Close() {}

// Stats implements System.
func (n *NVMLSys) Stats() SysStats {
	return SysStats{Commits: n.commits.Load(), NVMBytes: n.s.Device().Stats().BytesFlushed}
}
