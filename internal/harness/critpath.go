package harness

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"dudetm"
	"dudetm/internal/loadgen"
	"dudetm/internal/obs"
	"dudetm/internal/server"
)

// critpathFracs are the knee-relative offered loads the decomposition
// is recorded at: well under the knee (queueing negligible — the
// decomposition shows the pipeline's intrinsic costs), just under it
// (the operating point a capacity planner cares about), and just past
// it (the segment that grows first is the bottleneck). Absolute rates
// are host-dependent; knee-relative points are comparable across hosts.
var critpathFracs = []struct {
	label string
	frac  float64
}{
	{"0.5x", 0.5},
	{"0.9x", 0.9},
	{"1.1x", 1.1},
}

// CritpathSegPoint is one segment's aggregate at one offered load.
type CritpathSegPoint struct {
	Segment string  `json:"segment"`
	MeanNS  int64   `json:"mean_ns"`
	P99NS   int64   `json:"p99_ns"`
	Share   float64 `json:"share"`
}

// CritpathPoint is the decomposition recorded at one knee-relative
// offered load.
type CritpathPoint struct {
	Label      string  `json:"label"`
	KneeFrac   float64 `json:"knee_frac"`
	OfferedTPS float64 `json:"offered_tps"`
	ServedTPS  float64 `json:"served_tps"`
	Shortfall  float64 `json:"shortfall"`
	// Decomposed sampled transactions over the point (interval delta).
	Txns       uint64 `json:"txns"`
	Incomplete uint64 `json:"incomplete"`
	Dropped    uint64 `json:"dropped"`
	E2EMeanNS  int64  `json:"e2e_mean_ns"`
	E2EP99NS   int64  `json:"e2e_p99_ns"`
	// Segments in pipeline order; shares sum to ~1.
	Segments []CritpathSegPoint `json:"segments"`
}

// CritpathReport is the BENCH_critpath.json document.
type CritpathReport struct {
	Experiment  string          `json:"experiment"`
	CapacityTPS float64         `json:"capacity_tps"`
	SampleEvery int             `json:"sample_every"`
	Replicated  bool            `json:"replicated"`
	Points      []CritpathPoint `json:"points"`
}

// CritpathOpts tunes the sweep; the zero value runs the standard
// 3-point knee-relative recording.
type CritpathOpts struct {
	// PointDuration is the open-loop run length per point (default 2s;
	// 1s under -quick).
	PointDuration time.Duration
	// Keys is the uniform keyspace (default 4Mi).
	Keys uint64
	// OutPath, when set, receives the CritpathReport as indented JSON
	// (the BENCH_critpath.json artifact).
	OutPath string
}

// Critpath records the critical-path decomposition of sampled
// transactions at knee-relative offered loads. Topology: single
// unreplicated node (the system under test matches the loadcurve
// experiment), so the repl_ship and quorum_wait segments read zero —
// the replicated decomposition is covered by the repl package's
// reconciliation test; this experiment tracks where the local
// pipeline's commit→ack window goes as load approaches saturation.
// Aggregates are read straight from the pool's obs snapshot (interval
// Sub around each point) rather than scraped, so the artifact carries
// full nanosecond resolution.
func Critpath(c ExpConfig, o CritpathOpts) error {
	c.applyDefaults()
	if o.PointDuration == 0 {
		o.PointDuration = 2 * time.Second
		if c.Quick {
			o.PointDuration = time.Second
		}
	}
	if o.Keys == 0 {
		o.Keys = 4 << 20
	}

	opts := loadCurveOptions()
	pool, err := dudetm.Create(opts)
	if err != nil {
		return err
	}
	defer pool.Close()
	srv, err := server.New(pool, server.Config{MaxConns: 128})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Shutdown(10 * time.Second)

	// Knee calibration, same two-step recipe as the loadcurve sweep: a
	// closed-loop floor, then open-loop overload probes until the served
	// rate stops following the offered rate.
	calWrites := 400
	if c.Quick {
		calWrites = 150
	}
	cal, err := NetLoad(NetLoadOpts{
		Addr: ln.Addr().String(), Conns: 8, WritesPerConn: calWrites, Keys: o.Keys,
	})
	if err != nil {
		return fmt.Errorf("critpath calibration: %w", err)
	}
	if cal.TPS <= 0 {
		return fmt.Errorf("critpath calibration measured no throughput")
	}
	capacity := cal.TPS
	probeRate := 3 * cal.TPS
	for iter := 0; iter < 4; iter++ {
		probe, err := loadgen.Run(loadgen.Opts{
			Addr:     ln.Addr().String(),
			Proc:     loadgen.Constant{Rate: probeRate},
			Duration: o.PointDuration,
			Conns:    8,
			Keys:     o.Keys,
			Seed:     int64(47 + iter),
		})
		if err != nil {
			return fmt.Errorf("critpath capacity probe at %.0f/s: %w", probeRate, err)
		}
		if probe.Served > capacity {
			capacity = probe.Served
		}
		if probe.Shortfall() > 2*kneeTolerance {
			break
		}
		probeRate *= 2
	}
	fmt.Fprintf(c.Out, "calibrated knee: %s served under overload (closed-loop floor %s)\n",
		fmtTPS(capacity), fmtTPS(cal.TPS))

	var points []CritpathPoint
	for i, f := range critpathFracs {
		rate := f.frac * capacity
		before := pool.Stats().Obs.Crit
		res, err := loadgen.Run(loadgen.Opts{
			Addr:     ln.Addr().String(),
			Proc:     loadgen.Poisson{Rate: rate},
			Duration: o.PointDuration,
			Conns:    8,
			Keys:     o.Keys,
			Seed:     int64(2000 + i),
		})
		if err != nil {
			return fmt.Errorf("critpath point %s (offered %.0f/s): %w", f.label, rate, err)
		}
		// The collector folds samples in asynchronously; poll until the
		// interval delta stops growing (two consecutive snapshots agree).
		crit := pool.Stats().Obs.Crit.Sub(before)
		deadline := time.Now().Add(2 * time.Second)
		for {
			time.Sleep(50 * time.Millisecond)
			cur := pool.Stats().Obs.Crit.Sub(before)
			if (cur.Txns == crit.Txns && cur.Txns > 0) || time.Now().After(deadline) {
				crit = cur
				break
			}
			crit = cur
		}
		if crit.Txns == 0 {
			return fmt.Errorf("critpath point %s: no sampled transactions decomposed (sampling 1-in-%d, %d sent)",
				f.label, opts.TraceSampleEvery, res.Sent)
		}
		points = append(points, critpathPointFrom(f.label, f.frac, res, crit))
	}

	renderCritpathTable(c, points)

	for _, p := range points {
		recordRaw(Record{
			System: "DUDETM", Bench: "critpath/" + p.Label, Threads: 8,
			TPS: p.ServedTPS, P99NS: p.E2EP99NS,
			Process: "poisson", OfferedTPS: p.OfferedTPS, ServedTPS: p.ServedTPS,
			Shortfall: p.Shortfall,
		})
	}

	rep := CritpathReport{
		Experiment:  "critpath",
		CapacityTPS: capacity,
		SampleEvery: opts.TraceSampleEvery,
		Replicated:  false,
		Points:      points,
	}
	if o.OutPath != "" {
		f, err := os.Create(o.OutPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "critpath decomposition written to %s\n", o.OutPath)
	}
	return nil
}

// critpathPointFrom folds one point's generator result and interval
// critpath delta into the report row.
func critpathPointFrom(label string, frac float64, res loadgen.Result, crit obs.CritSnapshot) CritpathPoint {
	p := CritpathPoint{
		Label:      label,
		KneeFrac:   frac,
		OfferedTPS: res.Offered,
		ServedTPS:  res.Served,
		Shortfall:  res.Shortfall(),
		Txns:       crit.Txns,
		Incomplete: crit.Incomplete,
		Dropped:    crit.Dropped,
		E2EMeanNS:  int64(crit.E2E.Mean()),
		E2EP99NS:   int64(crit.E2E.Quantile(0.99)),
	}
	for seg := obs.CritSegment(0); seg < obs.NumCritSegments; seg++ {
		s := crit.Segments[seg]
		share := 0.0
		if crit.E2E.Sum > 0 {
			share = float64(s.Sum) / float64(crit.E2E.Sum)
		}
		p.Segments = append(p.Segments, CritpathSegPoint{
			Segment: seg.String(),
			MeanNS:  int64(s.Mean()),
			P99NS:   int64(s.Quantile(0.99)),
			Share:   share,
		})
	}
	return p
}

// renderCritpathTable prints one row per point with the segments
// ranked by share, so the dominant cost reads left to right.
func renderCritpathTable(c ExpConfig, points []CritpathPoint) {
	tw := tabwriter.NewWriter(c.Out, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "point\toffered\tserved\ttxns\te2e mean\te2e p99\ttop segments (share)\t")
	for _, p := range points {
		ranked := append([]CritpathSegPoint(nil), p.Segments...)
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Share > ranked[j].Share })
		top := ""
		for i, s := range ranked {
			if i == 3 || s.Share <= 0 {
				break
			}
			if i > 0 {
				top += "  "
			}
			top += fmt.Sprintf("%s %.0f%%", s.Segment, 100*s.Share)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%v\t%s\t\n",
			p.Label, fmtTPS(p.OfferedTPS), fmtTPS(p.ServedTPS), p.Txns,
			time.Duration(p.E2EMeanNS).Round(time.Microsecond),
			time.Duration(p.E2EP99NS).Round(time.Microsecond), top)
	}
	tw.Flush()
}
