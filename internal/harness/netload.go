package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dudetm/internal/server"
)

// NetLoadOpts drives a closed-loop load against a running dudesrv: each
// connection keeps exactly one durable write outstanding (plus optional
// interleaved reads), which is the workload shape where cross-client
// group commit matters — per-connection latency is a full durability
// wait, yet the server amortizes one fence over every parked
// connection.
type NetLoadOpts struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the number of client connections (default 8).
	Conns int
	// WritesPerConn is the number of durable writes each connection
	// issues (default 200).
	WritesPerConn int
	// ValueBytes sizes each written value (default 64).
	ValueBytes int
	// Keys bounds the keyspace per connection (default 128).
	Keys uint64
	// ReadEvery interleaves one GET after every n writes (0 = none).
	ReadEvery int
	// Seed makes the value stream reproducible.
	Seed int64
	// OnAck, when set, is called after every durably acknowledged
	// write with its key and the monotonically increasing generation
	// encoded in the value — crash drills use it to record exactly
	// which writes a recovered image must contain.
	OnAck func(conn int, key, gen uint64)
}

// NetLoadResult summarizes one closed-loop run.
type NetLoadResult struct {
	// Writes is the number of durably acknowledged writes.
	Writes uint64
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// TPS is acknowledged durable writes per second.
	TPS float64
	// P50, P90, P99 are durable-acknowledgment latency percentiles
	// (request send to durable response).
	P50, P90, P99 time.Duration
}

func (o NetLoadOpts) withDefaults() NetLoadOpts {
	if o.Conns == 0 {
		o.Conns = 8
	}
	if o.WritesPerConn == 0 {
		o.WritesPerConn = 200
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 64
	}
	if o.Keys == 0 {
		o.Keys = 128
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// NetLoad runs the closed-loop generator and reports throughput and
// durable-latency percentiles. An error on any connection (including a
// server crash mid-run) stops that connection; NetLoad returns the
// first error alongside the partial result, so crash drills can keep
// the statistics gathered before the plug was pulled.
func NetLoad(o NetLoadOpts) (NetLoadResult, error) {
	o = o.withDefaults()
	lats := make([][]time.Duration, o.Conns)
	errs := make([]error, o.Conns)
	ackCounts := make([]uint64, o.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(o.Addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			val := make([]byte, o.ValueBytes)
			for i := 0; i < o.WritesPerConn; i++ {
				gen := uint64(i + 1)
				key := uint64(w)<<32 | rng.Uint64()%o.Keys
				rng.Read(val)
				if o.ValueBytes >= 8 {
					for b := 0; b < 8; b++ {
						val[b] = byte(gen >> (8 * b))
					}
				}
				t0 := time.Now()
				if err := c.Put(key, val); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
				ackCounts[w]++
				if o.OnAck != nil {
					o.OnAck(w, key, gen)
				}
				if o.ReadEvery > 0 && (i+1)%o.ReadEvery == 0 {
					if _, _, err := c.Get(key); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res NetLoadResult
	res.Elapsed = elapsed
	var all []time.Duration
	for w := 0; w < o.Conns; w++ {
		res.Writes += ackCounts[w]
		all = append(all, lats[w]...)
	}
	res.TPS = float64(res.Writes) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.P50 = all[len(all)*50/100]
		res.P90 = all[len(all)*90/100]
		res.P99 = all[len(all)*99/100]
	}
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("netload: %w", err)
			break
		}
	}
	return res, firstErr
}
