package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dudetm/internal/obs"
	"dudetm/internal/server"
)

// NetLoadOpts drives a closed-loop load against a running dudesrv: each
// connection keeps exactly one durable write outstanding (plus optional
// interleaved reads), which is the workload shape where cross-client
// group commit matters — per-connection latency is a full durability
// wait, yet the server amortizes one fence over every parked
// connection.
type NetLoadOpts struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns is the number of client connections (default 8).
	Conns int
	// WritesPerConn is the number of durable writes each connection
	// issues (default 200).
	WritesPerConn int
	// ValueBytes sizes each written value (default 64).
	ValueBytes int
	// Keys bounds the keyspace per connection (default 128).
	Keys uint64
	// ReadEvery interleaves one GET after every n writes (0 = none).
	ReadEvery int
	// Seed makes the value stream reproducible.
	Seed int64
	// TargetRate, when > 0, paces each connection to an evenly spaced
	// per-connection schedule summing to TargetRate writes/s overall.
	// Latency is then measured from each write's *intended* send time,
	// not its actual send time — the coordinated-omission fix: when an
	// ack stalls, the writes queued behind it are charged their full
	// schedule delay instead of silently shifting the schedule. At 0
	// the loop self-clocks (classic closed loop) and intended == actual.
	TargetRate float64
	// OnAck, when set, is called after every durably acknowledged
	// write with its key and the monotonically increasing generation
	// encoded in the value — crash drills use it to record exactly
	// which writes a recovered image must contain.
	OnAck func(conn int, key, gen uint64)
}

// NetLoadResult summarizes one closed-loop run.
type NetLoadResult struct {
	// Writes is the number of durably acknowledged writes.
	Writes uint64
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// TPS is acknowledged durable writes per second.
	TPS float64
	// Latency is the full durable-ack latency histogram (ns), measured
	// from the intended send time when TargetRate paces the run.
	Latency obs.HistSnapshot
	// SendSkew is the intended-vs-actual send lag histogram (ns). All
	// zeros when TargetRate == 0 (a self-clocked loop has no schedule
	// to fall behind). A fat skew tail means the report under-states
	// the offered-load the configuration claims.
	SendSkew obs.HistSnapshot
	// P50, P90, P99, P999 are durable-acknowledgment latency quantiles.
	P50, P90, P99, P999 time.Duration
	// SkewP50, SkewP99 are send-skew quantiles.
	SkewP50, SkewP99 time.Duration
}

func (o NetLoadOpts) withDefaults() NetLoadOpts {
	if o.Conns == 0 {
		o.Conns = 8
	}
	if o.WritesPerConn == 0 {
		o.WritesPerConn = 200
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 64
	}
	if o.Keys == 0 {
		o.Keys = 128
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// NetLoad runs the closed-loop generator and reports throughput and
// durable-latency percentiles. An error on any connection (including a
// server crash mid-run) stops that connection; NetLoad returns the
// first error alongside the partial result, so crash drills can keep
// the statistics gathered before the plug was pulled.
func NetLoad(o NetLoadOpts) (NetLoadResult, error) {
	o = o.withDefaults()
	var (
		latHist  obs.Histogram
		skewHist obs.Histogram
	)
	errs := make([]error, o.Conns)
	ackCounts := make([]uint64, o.Conns)
	// Per-connection pacing interval: o.Conns connections together
	// offer TargetRate, so each one fires every Conns/TargetRate.
	var interval time.Duration
	if o.TargetRate > 0 {
		interval = time.Duration(float64(o.Conns) / o.TargetRate * float64(time.Second))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(o.Addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			val := make([]byte, o.ValueBytes)
			for i := 0; i < o.WritesPerConn; i++ {
				gen := uint64(i + 1)
				key := uint64(w)<<32 | rng.Uint64()%o.Keys
				rng.Read(val)
				if o.ValueBytes >= 8 {
					for b := 0; b < 8; b++ {
						val[b] = byte(gen >> (8 * b))
					}
				}
				// Intended send time: the schedule slot when paced,
				// the actual send when self-clocked. Latency always
				// counts from the intended time, so a stalled ack
				// charges the writes queued behind it too.
				intended := time.Now()
				if interval > 0 {
					intended = start.Add(time.Duration(i) * interval)
					if d := time.Until(intended); d > 0 {
						time.Sleep(d)
					}
					skewHist.ObserveSince(0, int64(time.Since(intended)))
				}
				if err := c.Put(key, val); err != nil {
					errs[w] = err
					return
				}
				latHist.ObserveSince(0, int64(time.Since(intended)))
				ackCounts[w]++
				if o.OnAck != nil {
					o.OnAck(w, key, gen)
				}
				if o.ReadEvery > 0 && (i+1)%o.ReadEvery == 0 {
					if _, _, err := c.Get(key); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res NetLoadResult
	res.Elapsed = elapsed
	for w := 0; w < o.Conns; w++ {
		res.Writes += ackCounts[w]
	}
	res.TPS = float64(res.Writes) / elapsed.Seconds()
	res.Latency = latHist.Snapshot()
	res.SendSkew = skewHist.Snapshot()
	res.P50 = time.Duration(res.Latency.Quantile(0.50))
	res.P90 = time.Duration(res.Latency.Quantile(0.90))
	res.P99 = time.Duration(res.Latency.Quantile(0.99))
	res.P999 = time.Duration(res.Latency.Quantile(0.999))
	res.SkewP50 = time.Duration(res.SendSkew.Quantile(0.50))
	res.SkewP99 = time.Duration(res.SendSkew.Quantile(0.99))
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("netload: %w", err)
			break
		}
	}
	return res, firstErr
}
