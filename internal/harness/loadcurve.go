package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"dudetm"
	"dudetm/internal/loadgen"
	"dudetm/internal/obs"
	"dudetm/internal/pmem"
	"dudetm/internal/server"
)

// kneeTolerance is the served/offered shortfall up to which a point
// counts as "the server kept up". The saturation knee is the largest
// offered load still within it.
const kneeTolerance = 0.05

// SLO is the declarative gate a load curve must pass. The zero value
// disables nothing — fill every field (LoadCurve fills defaults
// relative to the calibrated capacity).
type SLO struct {
	// MaxP99 bounds the open-loop p99 durable latency at every point
	// whose offered load is at or below AtOffered.
	MaxP99 time.Duration `json:"max_p99_ns"`
	// AtOffered is the stated offered load (writes/s) up to which
	// MaxP99 must hold.
	AtOffered float64 `json:"at_offered_tps"`
	// MaxShortfall bounds the served/offered shortfall at every point
	// at or below the detected knee.
	MaxShortfall float64 `json:"max_shortfall"`
}

// LoadCurvePoint is one offered-load step of the sweep: the open-loop
// generator's client-side measurements plus the pipeline state scraped
// from the live /metrics endpoint over the run.
type LoadCurvePoint struct {
	Process    string  `json:"process"`
	OfferedTPS float64 `json:"offered_tps"`
	ServedTPS  float64 `json:"served_tps"`
	Shortfall  float64 `json:"shortfall"`
	// Coordinated-omission-safe durable latency (intended arrival to
	// durable ack), nanoseconds.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	// Intended-vs-actual send skew of the generator itself.
	SkewP50NS int64 `json:"skew_p50_ns"`
	SkewP99NS int64 `json:"skew_p99_ns"`
	// Stage state over the point, from /metrics deltas: busy-time
	// utilization per worker, mid-run queue depths and frontier lags.
	PersistUtil   float64 `json:"persist_util"`
	ReproUtil     float64 `json:"repro_util"`
	PersistQueue  float64 `json:"persist_queue"`
	ReproQueue    float64 `json:"repro_queue"`
	DurableLag    float64 `json:"durable_lag"`
	ReproducedLag float64 `json:"reproduced_lag"`
	// Stalls is the watchdog stall-episode delta over the point.
	Stalls uint64 `json:"stalls"`
	// AtKnee marks the detected saturation knee.
	AtKnee bool `json:"at_knee"`
}

// LoadCurveReport is the BENCH_loadcurve.json document.
type LoadCurveReport struct {
	Experiment     string           `json:"experiment"`
	CapacityTPS    float64          `json:"capacity_tps"`
	KneeOfferedTPS float64          `json:"knee_offered_tps"`
	KneeIndex      int              `json:"knee_index"`
	SLOPass        bool             `json:"slo_pass"`
	SLOMaxP99NS    int64            `json:"slo_max_p99_ns"`
	SLOAtOffered   float64          `json:"slo_at_offered_tps"`
	SLOShortfall   float64          `json:"slo_max_shortfall"`
	Violations     []string         `json:"violations"`
	Points         []LoadCurvePoint `json:"points"`
}

// DetectKnee returns the index of the saturation knee: the largest
// offered load whose shortfall stays within kneeTolerance (-1 if every
// point is past saturation). Points must be sorted by OfferedTPS.
func DetectKnee(points []LoadCurvePoint) int {
	knee := -1
	for i, p := range points {
		if p.Shortfall <= kneeTolerance {
			knee = i
		}
	}
	return knee
}

// EvaluateSLO holds a measured curve to the gate and returns the
// violations (empty = pass). Pure: tests feed synthetic curves to prove
// an over-saturated configuration fails.
func EvaluateSLO(points []LoadCurvePoint, knee int, slo SLO) []string {
	var v []string
	if len(points) == 0 {
		return []string{"no load-curve points measured"}
	}
	if knee < 0 {
		v = append(v, fmt.Sprintf("no point kept served/offered shortfall within %.0f%% — every offered load is past saturation", 100*kneeTolerance))
	}
	for i, p := range points {
		if slo.MaxP99 > 0 && slo.AtOffered > 0 && p.OfferedTPS <= slo.AtOffered && time.Duration(p.P99NS) > slo.MaxP99 {
			v = append(v, fmt.Sprintf("point %d (offered %.0f/s): p99 %v exceeds SLO %v at stated load %.0f/s",
				i, p.OfferedTPS, time.Duration(p.P99NS), slo.MaxP99, slo.AtOffered))
		}
		if knee >= 0 && i <= knee {
			if slo.MaxShortfall > 0 && p.Shortfall > slo.MaxShortfall {
				v = append(v, fmt.Sprintf("point %d (offered %.0f/s): shortfall %.1f%% exceeds SLO %.1f%% below the knee",
					i, p.OfferedTPS, 100*p.Shortfall, 100*slo.MaxShortfall))
			}
			if p.Stalls > 0 {
				v = append(v, fmt.Sprintf("point %d (offered %.0f/s): %d watchdog stall episodes below the knee",
					i, p.OfferedTPS, p.Stalls))
			}
		}
	}
	return v
}

// LoadCurveOpts tunes the sweep shape; the zero value is the full
// 5-point curve with host-calibrated SLO defaults.
type LoadCurveOpts struct {
	// Points is the number of offered-load steps, spread from 0.3x to
	// 1.3x the calibrated closed-loop capacity (default 5, min 2) —
	// always spanning both sides of the expected knee.
	Points int
	// PointDuration is the scheduled length of each open-loop run
	// (default 2s; 1s under -quick).
	PointDuration time.Duration
	// Keys is the uniform keyspace (default 4Mi keys, so the B+-tree
	// and blob heap leave cache residency).
	Keys uint64
	// OutPath, when set, receives the LoadCurveReport as indented JSON
	// (the BENCH_loadcurve.json artifact).
	OutPath string
	// SLO overrides the gate; zero fields get capacity-relative
	// defaults (p99 <= 500ms at 0.55x capacity, shortfall <= 10%).
	SLO SLO
}

// loadCurveOptions is the system under test: the parallel pipeline with
// the NVM delay model on and constrained write bandwidth, so saturation
// comes from the modeled device rather than host scheduling noise, plus
// the watchdog and sampled lifecycle tracing the scrape reports on.
func loadCurveOptions() dudetm.Options {
	return dudetm.Options{
		DataSize:         256 << 20,
		Threads:          4,
		GroupSize:        64,
		PersistThreads:   2,
		ReproThreads:     2,
		Timing:           true,
		Bandwidth:        pmem.GB / 32,
		TraceSampleEvery: 64,
		Watchdog:         time.Second,
	}
}

// LoadCurve runs the open-loop latency-vs-offered-load sweep: calibrate
// capacity with a short closed-loop burst, then step a Poisson arrival
// process from well below to past the knee, scraping the live /metrics
// endpoint around each point for stage utilization, queue depths,
// frontier lags and watchdog stalls. The detected knee and the SLO
// verdict ship in BENCH_loadcurve.json; a failed SLO is the returned
// error, so dudebench (and check.sh) exit non-zero on regression.
func LoadCurve(c ExpConfig, o LoadCurveOpts) error {
	c.applyDefaults()
	if o.Points == 0 {
		o.Points = 5
	}
	if o.Points < 2 {
		o.Points = 2
	}
	if o.PointDuration == 0 {
		o.PointDuration = 2 * time.Second
		if c.Quick {
			o.PointDuration = time.Second
		}
	}
	if o.Keys == 0 {
		o.Keys = 4 << 20
	}

	pool, err := dudetm.Create(loadCurveOptions())
	if err != nil {
		return err
	}
	defer pool.Close()
	srv, err := server.New(pool, server.Config{MaxConns: 128})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Shutdown(10 * time.Second)

	// A real HTTP /metrics endpoint, scraped over the wire like an
	// operator would — the experiment exercises the same surface
	// `dudectl top` reads.
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ms := &http.Server{Handler: srv.DebugHandler()}
	go ms.Serve(mln)
	defer ms.Close()
	metricsURL := "http://" + mln.Addr().String() + "/metrics"

	// Calibrate in two steps. A closed-loop burst gives a floor — but
	// each of its connections waits out a full durability ack, so it
	// understates what the pipelined server can absorb. Open-loop
	// overload probes then push the offered rate up until the served
	// rate stops following: that served rate is the service capacity,
	// and the sweep brackets it from 0.3x to 1.3x so the knee lands
	// inside the curve.
	calWrites := 400
	if c.Quick {
		calWrites = 150
	}
	cal, err := NetLoad(NetLoadOpts{
		Addr: ln.Addr().String(), Conns: 8, WritesPerConn: calWrites, Keys: o.Keys,
	})
	if err != nil {
		return fmt.Errorf("loadcurve calibration: %w", err)
	}
	if cal.TPS <= 0 {
		return fmt.Errorf("loadcurve calibration measured no throughput")
	}
	capacity := cal.TPS
	probeRate := 3 * cal.TPS
	for iter := 0; iter < 4; iter++ {
		probe, err := loadgen.Run(loadgen.Opts{
			Addr:     ln.Addr().String(),
			Proc:     loadgen.Constant{Rate: probeRate},
			Duration: o.PointDuration,
			Conns:    8,
			Keys:     o.Keys,
			Seed:     int64(31 + iter),
		})
		if err != nil {
			return fmt.Errorf("loadcurve capacity probe at %.0f/s: %w", probeRate, err)
		}
		if probe.Served > capacity {
			capacity = probe.Served
		}
		if probe.Shortfall() > 2*kneeTolerance {
			break // saturated: the served rate is the capacity
		}
		probeRate *= 2
	}
	fmt.Fprintf(c.Out, "calibrated capacity: %s served under overload (closed-loop floor %s)\n",
		fmtTPS(capacity), fmtTPS(cal.TPS))

	slo := o.SLO
	if slo.MaxP99 == 0 {
		slo.MaxP99 = 500 * time.Millisecond
	}
	if slo.AtOffered == 0 {
		slo.AtOffered = 0.55 * capacity
	}
	if slo.MaxShortfall == 0 {
		slo.MaxShortfall = 0.10
	}

	var points []LoadCurvePoint
	for i := 0; i < o.Points; i++ {
		frac := 0.3 + (1.3-0.3)*float64(i)/float64(o.Points-1)
		rate := frac * capacity
		m0, err := scrapeProm(metricsURL)
		if err != nil {
			return fmt.Errorf("loadcurve scrape: %w", err)
		}
		// Mid-run scrape: queue depths and frontier lags only mean
		// something while the load is on the wire.
		midCh := make(chan map[string]float64, 1)
		go func() {
			time.Sleep(o.PointDuration / 2)
			mid, _ := scrapeProm(metricsURL)
			midCh <- mid
		}()
		res, err := loadgen.Run(loadgen.Opts{
			Addr:     ln.Addr().String(),
			Proc:     loadgen.Poisson{Rate: rate},
			Duration: o.PointDuration,
			Conns:    8,
			Keys:     o.Keys,
			Seed:     int64(1000 + i),
		})
		if err != nil {
			return fmt.Errorf("loadcurve point %d (offered %.0f/s): %w", i, rate, err)
		}
		mid := <-midCh
		m1, err := scrapeProm(metricsURL)
		if err != nil {
			return fmt.Errorf("loadcurve scrape: %w", err)
		}
		points = append(points, pointFrom(res, m0, mid, m1))
	}

	knee := DetectKnee(points)
	if knee >= 0 {
		points[knee].AtKnee = true
	}
	violations := EvaluateSLO(points, knee, slo)

	tw := tabwriter.NewWriter(c.Out, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "offered\tserved\tshortfall\tp50\tp99\tp999\tutil P/R\tqueue P/R\tstalls\t")
	for i, p := range points {
		mark := ""
		if i == knee {
			mark = "  <- knee"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.1f%%\t%v\t%v\t%v\t%.2f/%.2f\t%.0f/%.0f\t%d%s\t\n",
			fmtTPS(p.OfferedTPS), fmtTPS(p.ServedTPS), 100*p.Shortfall,
			time.Duration(p.P50NS).Round(time.Microsecond),
			time.Duration(p.P99NS).Round(time.Microsecond),
			time.Duration(p.P999NS).Round(time.Microsecond),
			p.PersistUtil, p.ReproUtil, p.PersistQueue, p.ReproQueue, p.Stalls, mark)
	}
	tw.Flush()

	// Feed the dudebench -json stream: one Record per point, so the
	// curve diffs across commits with the same tooling as every other
	// experiment.
	for _, p := range points {
		recordRaw(Record{
			System: "DUDETM", Bench: "open-loop/" + p.Process, Threads: 8,
			TPS: p.ServedTPS, P50NS: p.P50NS, P99NS: p.P99NS, P999NS: p.P999NS,
			PersistUtil: p.PersistUtil, ReproUtil: p.ReproUtil,
			Process: p.Process, OfferedTPS: p.OfferedTPS, ServedTPS: p.ServedTPS,
			SkewP50NS: p.SkewP50NS, SkewP99NS: p.SkewP99NS,
			Shortfall: p.Shortfall, Stalls: p.Stalls, AtKnee: p.AtKnee,
		})
	}

	rep := LoadCurveReport{
		Experiment:   "loadcurve",
		CapacityTPS:  capacity,
		KneeIndex:    knee,
		SLOPass:      len(violations) == 0,
		SLOMaxP99NS:  slo.MaxP99.Nanoseconds(),
		SLOAtOffered: slo.AtOffered,
		SLOShortfall: slo.MaxShortfall,
		Violations:   violations,
		Points:       points,
	}
	if rep.Violations == nil {
		rep.Violations = []string{}
	}
	if knee >= 0 {
		rep.KneeOfferedTPS = points[knee].OfferedTPS
	}
	if o.OutPath != "" {
		f, err := os.Create(o.OutPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "load curve written to %s\n", o.OutPath)
	}

	if knee >= 0 {
		fmt.Fprintf(c.Out, "saturation knee: %s offered (%.0f%% of calibrated capacity)\n",
			fmtTPS(points[knee].OfferedTPS), 100*points[knee].OfferedTPS/capacity)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(c.Out, "SLO violation: %s\n", v)
		}
		return fmt.Errorf("loadcurve: %d SLO violations", len(violations))
	}
	fmt.Fprintf(c.Out, "SLO gate passed: p99 <= %v at %s offered, shortfall <= %.0f%% and no stalls below the knee\n",
		slo.MaxP99, fmtTPS(slo.AtOffered), 100*slo.MaxShortfall)
	return nil
}

// pointFrom folds the generator's client-side result and the bracketing
// /metrics scrapes into one curve point.
func pointFrom(res loadgen.Result, m0, mid, m1 map[string]float64) LoadCurvePoint {
	p := LoadCurvePoint{
		Process:    res.Process,
		OfferedTPS: res.Offered,
		ServedTPS:  res.Served,
		Shortfall:  res.Shortfall(),
		P50NS:      res.P50.Nanoseconds(),
		P99NS:      res.P99.Nanoseconds(),
		P999NS:     res.P999.Nanoseconds(),
		SkewP50NS:  res.SkewP50.Nanoseconds(),
		SkewP99NS:  res.SkewP99.Nanoseconds(),
	}
	elapsed := res.Elapsed.Seconds()
	for _, st := range []struct {
		util  *float64
		stage string
	}{
		{&p.PersistUtil, "persist"},
		{&p.ReproUtil, "reproduce"},
	} {
		l := fmt.Sprintf("{stage=%q}", st.stage)
		workers := m1["dudetm_stage_workers"+l]
		busy := m1["dudetm_stage_busy_seconds_total"+l] - m0["dudetm_stage_busy_seconds_total"+l]
		if workers > 0 && elapsed > 0 {
			u := busy / (elapsed * workers)
			if !math.IsNaN(u) && !math.IsInf(u, 0) {
				*st.util = u
			}
		}
	}
	if mid != nil {
		p.PersistQueue = mid[`dudetm_stage_queue_depth{stage="persist"}`]
		p.ReproQueue = mid[`dudetm_stage_queue_depth{stage="reproduce"}`]
		p.DurableLag = mid["dudetm_clock_tid"] - mid["dudetm_durable_tid"]
		p.ReproducedLag = mid["dudetm_durable_tid"] - mid["dudetm_reproduced_tid"]
	}
	if d := m1["dudetm_watchdog_stalls_total"] - m0["dudetm_watchdog_stalls_total"]; d > 0 {
		p.Stalls = uint64(d)
	}
	return p
}

// scrapeProm fetches and parses one Prometheus text-format scrape.
func scrapeProm(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return obs.ParseProm(resp.Body)
}
