package harness

import (
	"strings"
	"testing"

	"dudetm/internal/workload/tatp"
	"dudetm/internal/workload/tpcc"
)

// small shrinks a benchmark so functional tests stay fast.
func small(b Bench) Bench {
	switch t := b.(type) {
	case *HashBench:
		t.Buckets = 1 << 14
		t.Keyspace = 1 << 12
	case *BTreeBench:
		t.Keyspace = 1 << 12
	case *TPCCBench:
		t.Cfg.Customers = 16
		t.Cfg.Items = 128
		t.Cfg.MaxOrders = 1 << 12
	case *TATPBench:
		t.Cfg.Subscribers = 2048
	case *YCSBBench:
		t.Cfg.Records = 1000
	case *KVUpdateBench:
		t.Records = 4000
	}
	return b
}

func allBenches() []func() Bench {
	return []func() Bench{
		func() Bench { return small(NewHashBench()) },
		func() Bench { return small(NewBTreeBench()) },
		func() Bench { return small(NewTPCCBench(tpcc.BTreeStorage)) },
		func() Bench { return small(NewTPCCBench(tpcc.HashStorage)) },
		func() Bench { return small(NewTATPBench(tatp.BTreeStorage)) },
		func() Bench { return small(NewTATPBench(tatp.HashStorage)) },
		func() Bench { return small(NewYCSBBench()) },
		func() Bench { return small(NewKVUpdateBench(0.99)) },
	}
}

// nvmlRunnable reports whether the paper (and this harness) runs the
// benchmark on NVML.
func nvmlRunnable(b Bench) bool {
	switch t := b.(type) {
	case *HashBench:
		return true
	case *TPCCBench:
		return t.Cfg.Storage == tpcc.HashStorage
	case *TATPBench:
		return t.Cfg.Storage == tatp.HashStorage
	}
	return false
}

func TestAllSystemsAllBenches(t *testing.T) {
	kinds := []SysKind{
		VolatileSTM, VolatileHTM, DudeSTM, DudeInf, DudeSync, DudeHTM,
		Mnemosyne, NVML,
	}
	for _, kind := range kinds {
		for _, mk := range allBenches() {
			bench := mk()
			if kind == NVML && !nvmlRunnable(bench) {
				continue
			}
			name := kind.String() + "/" + bench.Name()
			t.Run(name, func(t *testing.T) {
				res, err := Run(kind, bench, Options{
					Threads:     2,
					VLogEntries: 1 << 14,
				}, MeasureOpts{TotalOps: 600})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops != 600 {
					t.Fatalf("ops = %d", res.Ops)
				}
				if res.TPS <= 0 {
					t.Fatalf("tps = %f", res.TPS)
				}
				if res.Stats.Commits == 0 {
					t.Fatal("no commits recorded")
				}
			})
		}
	}
}

func TestLatencySampling(t *testing.T) {
	for _, kind := range []SysKind{DudeSTM, DudeSync, Mnemosyne} {
		bench := small(NewTATPBench(tatp.HashStorage))
		res, err := Run(kind, bench, Options{Threads: 2, VLogEntries: 1 << 14},
			MeasureOpts{TotalOps: 2000, SampleLat: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.P50 == 0 || res.P99 < res.P50 {
			t.Fatalf("%s: p50=%v p99=%v", kind, res.P50, res.P99)
		}
	}
}

func TestCombinationReducesLogBytes(t *testing.T) {
	run := func(group int) Result {
		bench := small(NewYCSBBench())
		res, err := Run(DudeSTM, bench, Options{
			Threads:   2,
			GroupSize: group,
		}, MeasureOpts{TotalOps: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(1)
	combined := run(1000)
	if combined.Stats.LogBytes >= plain.Stats.LogBytes {
		t.Fatalf("combination did not reduce log bytes: %d >= %d",
			combined.Stats.LogBytes, plain.Stats.LogBytes)
	}
	if combined.Stats.CombEntries >= combined.Stats.RawEntries {
		t.Fatalf("no entries combined: %d >= %d",
			combined.Stats.CombEntries, combined.Stats.RawEntries)
	}
}

func TestPagedShadowHarness(t *testing.T) {
	for _, kind := range []SysKind{DudeSTM} {
		bench := small(NewKVUpdateBench(0.99))
		res, err := Run(kind, bench, Options{
			Threads:     2,
			Shadow:      2, // dudetm.ShadowHW
			ShadowBytes: 1 << 20,
		}, MeasureOpts{TotalOps: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 2000 {
			t.Fatalf("ops = %d", res.Ops)
		}
	}
}

func TestNVMLRejectsBTreeBenches(t *testing.T) {
	bench := small(NewTPCCBench(tpcc.BTreeStorage))
	_, err := Run(NVML, bench, Options{Threads: 1}, MeasureOpts{TotalOps: 10})
	if err == nil || !strings.Contains(err.Error(), "hash") {
		t.Fatalf("err = %v", err)
	}
}

func TestNVMLHashPlanWidens(t *testing.T) {
	// A tiny, heavily loaded table forces probe chains across lock
	// regions, exercising the widen-and-retry path.
	bench := NewHashBench()
	bench.Buckets = 256
	bench.Keyspace = 180 // ~70% fill
	res, err := Run(NVML, bench, Options{Threads: 2}, MeasureOpts{TotalOps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Verify the table contents are consistent afterwards.
	sys, err := NewSystem(NVML, Options{Threads: 1, DataSize: bench.DataSize()})
	_ = sys
	if err != nil {
		t.Fatal(err)
	}
}
