package harness

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"dudetm/internal/dudetm"
	"dudetm/internal/pmem"
	"dudetm/internal/workload/tatp"
	"dudetm/internal/workload/tpcc"
)

// ExpConfig configures an experiment sweep.
type ExpConfig struct {
	// Threads is the Perform thread count (the paper uses 4 on 12
	// cores; on small hosts fewer threads give cleaner shapes).
	Threads int
	// Quick divides the per-run transaction counts by 10.
	Quick bool
	// Out receives the formatted tables.
	Out io.Writer
}

func (c *ExpConfig) applyDefaults() {
	if c.Threads == 0 {
		c.Threads = 2
	}
}

// benchOps is the per-benchmark transaction budget for a measured run.
func benchOps(name string, quick bool) int {
	ops := map[string]int{
		"HashTable":          200000,
		"B+-tree":            150000,
		"TPC-C (B+-tree)":    20000,
		"TPC-C (hash)":       20000,
		"TATP (B+-tree)":     200000,
		"TATP (hash)":        200000,
		"YCSB Session Store": 200000,
		"KV update":          60000,
	}[name]
	if ops == 0 {
		ops = 50000
	}
	if quick {
		ops /= 10
	}
	return ops
}

// fig2Benches builds the six benchmarks of Figure 2 / Tables 1-2.
func fig2Benches() []func() Bench {
	return []func() Bench{
		func() Bench { return NewBTreeBench() },
		func() Bench { return NewTPCCBench(tpcc.BTreeStorage) },
		func() Bench { return NewTATPBench(tatp.BTreeStorage) },
		func() Bench { return NewHashBench() },
		func() Bench { return NewTPCCBench(tpcc.HashStorage) },
		func() Bench { return NewTATPBench(tatp.HashStorage) },
	}
}

func fmtTPS(tps float64) string {
	switch {
	case tps >= 1e6:
		return fmt.Sprintf("%.2f MTPS", tps/1e6)
	case tps >= 1e3:
		return fmt.Sprintf("%.1f KTPS", tps/1e3)
	default:
		return fmt.Sprintf("%.0f TPS", tps)
	}
}

// Fig2 regenerates Figure 2: throughput of Volatile-STM, DUDETM,
// DUDETM-Inf and DUDETM-Sync across NVM bandwidths of 1-16 GB/s (1000-
// cycle latency; DUDETM-Sync additionally at 3500 cycles).
func Fig2(c ExpConfig) error {
	c.applyDefaults()
	bandwidths := []float64{1, 2, 4, 8, 16}
	type series struct {
		name    string
		kind    SysKind
		latency time.Duration
	}
	sweep := []series{
		{"Volatile-STM", VolatileSTM, pmem.Latency1000},
		{"DUDETM", DudeSTM, pmem.Latency1000},
		{"DUDETM-Inf", DudeInf, pmem.Latency1000},
		{"DUDETM-Sync(1000)", DudeSync, pmem.Latency1000},
		{"DUDETM-Sync(3500)", DudeSync, pmem.Latency3500},
	}
	fmt.Fprintf(c.Out, "=== Figure 2: throughput vs NVM bandwidth (%d threads) ===\n", c.Threads)
	for _, mk := range fig2Benches() {
		name := mk().Name()
		tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\t", name)
		for _, bw := range bandwidths {
			fmt.Fprintf(tw, "%.0f GB/s\t", bw)
		}
		fmt.Fprintln(tw)
		for _, s := range sweep {
			fmt.Fprintf(tw, "%s\t", s.name)
			for _, bw := range bandwidths {
				if s.kind == VolatileSTM && bw != bandwidths[0] {
					// Bandwidth-independent; measure once.
					fmt.Fprintf(tw, "-\t")
					continue
				}
				bench := mk()
				res, err := Run(s.kind, bench, Options{
					Threads:   c.Threads,
					Latency:   s.latency,
					Bandwidth: bw * pmem.GB,
					DelaysOn:  true,
				}, MeasureOpts{TotalOps: benchOps(name, c.Quick)})
				if err != nil {
					return fmt.Errorf("fig2 %s/%s@%v: %w", name, s.name, bw, err)
				}
				fmt.Fprintf(tw, "%s\t", fmtTPS(res.TPS))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(c.Out)
	}
	return nil
}

// Table1 regenerates Table 1: memory-write statistics of each benchmark
// under DUDETM (1 GB/s, 1000 cycles).
func Table1(c ExpConfig) error {
	c.applyDefaults()
	fmt.Fprintf(c.Out, "=== Table 1: memory writes (DUDETM, 1 GB/s, 1000 cycles, %d threads) ===\n", c.Threads)
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\t# writes\tThroughput\t# writes per tx")
	order := []int{0, 1, 2, 3, 4, 5} // B+tree group then hash group, as in the paper
	benches := fig2Benches()
	for _, i := range order {
		bench := benches[i]()
		res, err := Run(DudeSTM, bench, Options{
			Threads:  c.Threads,
			DelaysOn: true,
		}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick)})
		if err != nil {
			return fmt.Errorf("table1 %s: %w", bench.Name(), err)
		}
		wps := float64(res.Stats.Writes) / res.Elapsed.Seconds()
		wpt := float64(res.Stats.Writes) / float64(res.Ops)
		fmt.Fprintf(tw, "%s\t%.1f M/s\t%s\t%.1f\n", bench.Name(), wps/1e6, fmtTPS(res.TPS), wpt)
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Table2 regenerates Table 2: DUDETM vs DUDETM-Sync vs Mnemosyne vs NVML
// (NVML on the hash-based benchmarks only, as in the paper).
func Table2(c ExpConfig) error {
	c.applyDefaults()
	fmt.Fprintf(c.Out, "=== Table 2: throughput vs existing systems (1 GB/s, 1000 cycles, %d threads) ===\n", c.Threads)
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tDUDETM\tDUDE-Sync\tMnemosyne\tNVML")
	for _, mk := range fig2Benches() {
		name := mk().Name()
		fmt.Fprintf(tw, "%s\t", name)
		for _, kind := range []SysKind{DudeSTM, DudeSync, Mnemosyne, NVML} {
			bench := mk()
			if kind == NVML {
				if _, ok := bench.(NVMLBench); !ok {
					fmt.Fprintf(tw, "-\t")
					continue
				}
				if tb, ok := bench.(*TATPBench); ok && tb.Cfg.Storage != tatp.HashStorage {
					fmt.Fprintf(tw, "-\t")
					continue
				}
				if tb, ok := bench.(*TPCCBench); ok && tb.Cfg.Storage != tpcc.HashStorage {
					fmt.Fprintf(tw, "-\t")
					continue
				}
				if _, ok := bench.(*BTreeBench); ok {
					fmt.Fprintf(tw, "-\t")
					continue
				}
			}
			res, err := Run(kind, bench, Options{
				Threads:  c.Threads,
				DelaysOn: true,
			}, MeasureOpts{TotalOps: benchOps(name, c.Quick)})
			if err != nil {
				return fmt.Errorf("table2 %s/%s: %w", name, kind, err)
			}
			fmt.Fprintf(tw, "%s\t", fmtTPS(res.TPS))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Table3 regenerates Table 3: durable-transaction latency percentiles of
// hash-based TPC-C across systems. The latency experiment runs a single
// Perform thread so the Persist/Reproduce threads get their own core, as
// they effectively do on the paper's 12-core testbed; with the pipeline
// CPU-starved, DudeTM's ack queue depth (not its design) dominates the
// percentiles.
func Table3(c ExpConfig) error {
	c.applyDefaults()
	c.Threads = 1
	fmt.Fprintf(c.Out, "=== Table 3: durable latency, TPC-C (hash), %d thread ===\n", c.Threads)
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Percentile\tDUDETM\tDUDE-Sync\tMnemosyne\tNVML")
	type row struct{ p50, p90, p99 time.Duration }
	rows := map[SysKind]row{}
	kinds := []SysKind{DudeSTM, DudeSync, Mnemosyne, NVML}
	for _, kind := range kinds {
		bench := NewTPCCBench(tpcc.HashStorage)
		res, err := Run(kind, bench, Options{
			Threads:  c.Threads,
			DelaysOn: true,
		}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick), SampleLat: true})
		if err != nil {
			return fmt.Errorf("table3 %s: %w", kind, err)
		}
		rows[kind] = row{res.P50, res.P90, res.P99}
	}
	for _, p := range []struct {
		name string
		get  func(row) time.Duration
	}{
		{"50%", func(r row) time.Duration { return r.p50 }},
		{"90%", func(r row) time.Duration { return r.p90 }},
		{"99%", func(r row) time.Duration { return r.p99 }},
	} {
		fmt.Fprintf(tw, "%s\t", p.name)
		for _, kind := range kinds {
			fmt.Fprintf(tw, "%d us\t", p.get(rows[kind]).Microseconds())
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Fig3 regenerates Figure 3: NVM-write reduction from cross-transaction
// log combination and lz4 compression as the persist group size grows
// (YCSB Session Store, Zipfian 0.99).
func Fig3(c ExpConfig) error {
	c.applyDefaults()
	fmt.Fprintf(c.Out, "=== Figure 3: log combination and compression (YCSB, Zipfian 0.99, %d threads) ===\n", c.Threads)
	groupSizes := []int{1, 10, 100, 1000, 10000, 100000}
	ops := benchOps("YCSB Session Store", c.Quick)

	measure := func(group int, compress bool) (logBytes, raw, comb uint64, err error) {
		bench := NewYCSBBench()
		res, err := Run(DudeSTM, bench, Options{
			Threads:   c.Threads,
			DelaysOn:  true,
			GroupSize: group,
			Compress:  compress,
		}, MeasureOpts{TotalOps: ops})
		if err != nil {
			return 0, 0, 0, err
		}
		return res.Stats.LogBytes, res.Stats.RawEntries, res.Stats.CombEntries, nil
	}

	base, _, _, err := measure(1, false)
	if err != nil {
		return fmt.Errorf("fig3 baseline: %w", err)
	}
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Group size\tEntries combined\tNVM log writes saved\t+lz4 saved")
	for _, g := range groupSizes {
		lb, raw, comb, err := measure(g, false)
		if err != nil {
			return fmt.Errorf("fig3 g=%d: %w", g, err)
		}
		lbz, _, _, err := measure(g, true)
		if err != nil {
			return fmt.Errorf("fig3 g=%d lz4: %w", g, err)
		}
		combPct := 0.0
		if raw > 0 {
			combPct = 100 * (1 - float64(comb)/float64(raw))
		}
		fmt.Fprintf(tw, "%d\t%.1f%%\t%.1f%%\t%.1f%%\n",
			g, combPct,
			100*(1-float64(lb)/float64(base)),
			100*(1-float64(lbz)/float64(base)))
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Fig4 regenerates Figure 4: throughput of the B+-tree KV update
// workload as the shadow memory shrinks, for software and simulated-
// hardware paging, at Zipfian 0.99 and 1.07.
func Fig4(c ExpConfig) error {
	c.applyDefaults()
	fmt.Fprintf(c.Out, "=== Figure 4: swap overhead (B+-tree KV update, %d threads) ===\n", c.Threads)
	shadowSizes := []uint64{3 << 20, 6 << 20, 12 << 20, 24 << 20, 48 << 20}
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Config\t")
	for _, sb := range shadowSizes {
		fmt.Fprintf(tw, "%dMB\t", sb>>20)
	}
	fmt.Fprintln(tw, "flat")
	for _, theta := range []float64{0.99, 1.07} {
		for _, mode := range []struct {
			name string
			kind dudetm.ShadowKind
		}{{"sw", dudetm.ShadowSW}, {"hw", dudetm.ShadowHW}} {
			fmt.Fprintf(tw, "zipf %.2f %s\t", theta, mode.name)
			for _, sb := range shadowSizes {
				bench := NewKVUpdateBench(theta)
				res, err := Run(DudeSTM, bench, Options{
					Threads:     c.Threads,
					DelaysOn:    true,
					Shadow:      mode.kind,
					ShadowBytes: sb,
				}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick)})
				if err != nil {
					return fmt.Errorf("fig4 %.2f/%s/%d: %w", theta, mode.name, sb, err)
				}
				fmt.Fprintf(tw, "%s\t", fmtTPS(res.TPS))
			}
			// Flat (no paging) reference.
			bench := NewKVUpdateBench(theta)
			res, err := Run(DudeSTM, bench, Options{
				Threads:  c.Threads,
				DelaysOn: true,
			}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick)})
			if err != nil {
				return fmt.Errorf("fig4 flat: %w", err)
			}
			fmt.Fprintf(tw, "%s\n", fmtTPS(res.TPS))
		}
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Fig5 regenerates Figure 5: scalability of TPC-C (B+-tree) with thread
// count, for TinySTM, DUDETM, and the reduced-conflict per-district
// variant, normalized to one thread.
func Fig5(c ExpConfig, maxThreads int) error {
	c.applyDefaults()
	if maxThreads == 0 {
		maxThreads = 4
	}
	fmt.Fprintf(c.Out, "=== Figure 5: scalability, TPC-C (B+-tree), 1..%d threads ===\n", maxThreads)
	type series struct {
		name        string
		kind        SysKind
		lowConflict bool
	}
	sweep := []series{
		{"TinySTM", VolatileSTM, false},
		{"DUDETM", DudeSTM, false},
		{"DUDETM (per-district)", DudeSTM, true},
	}
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "System\t")
	for t := 1; t <= maxThreads; t++ {
		fmt.Fprintf(tw, "%d thr\t", t)
	}
	fmt.Fprintln(tw)
	for _, s := range sweep {
		fmt.Fprintf(tw, "%s\t", s.name)
		var base float64
		for t := 1; t <= maxThreads; t++ {
			bench := NewTPCCBench(tpcc.BTreeStorage)
			bench.LowConflict = s.lowConflict
			if s.lowConflict {
				// One district per thread needs enough districts.
				bench.Cfg.Warehouses = 1
				bench.Cfg.Districts = maxThreads
			}
			res, err := Run(s.kind, bench, Options{
				Threads:  t,
				DelaysOn: true,
			}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick)})
			if err != nil {
				return fmt.Errorf("fig5 %s/%d: %w", s.name, t, err)
			}
			if t == 1 {
				base = res.TPS
			}
			fmt.Fprintf(tw, "%.2fx (%s)\t", res.TPS/base, fmtTPS(res.TPS))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Table4 regenerates Table 4: STM- vs HTM-based DudeTM (and their
// volatile upper bounds) with the durability slowdown.
func Table4(c ExpConfig) error {
	c.applyDefaults()
	fmt.Fprintf(c.Out, "=== Table 4: STM- vs HTM-based DUDETM (1 GB/s, 1000 cycles, %d threads) ===\n", c.Threads)
	benches := []func() Bench{
		func() Bench { return NewBTreeBench() },
		func() Bench { return NewHashBench() },
		func() Bench { return NewTATPBench(tatp.BTreeStorage) },
	}
	tw := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "System\tB+-Tree\tHashTable\tTATP (B+-tree)")
	tps := map[SysKind][]float64{}
	for _, kind := range []SysKind{VolatileSTM, DudeSTM, VolatileHTM, DudeHTM} {
		for _, mk := range benches {
			bench := mk()
			res, err := Run(kind, bench, Options{
				Threads:  c.Threads,
				DelaysOn: true,
			}, MeasureOpts{TotalOps: benchOps(bench.Name(), c.Quick)})
			if err != nil {
				return fmt.Errorf("table4 %s/%s: %w", kind, bench.Name(), err)
			}
			tps[kind] = append(tps[kind], res.TPS)
		}
	}
	slowdown := func(vol, dude SysKind, i int) string {
		return fmt.Sprintf("%.0f%%", 100*(1-tps[dude][i]/tps[vol][i]))
	}
	for _, kind := range []SysKind{VolatileSTM, DudeSTM} {
		fmt.Fprintf(tw, "%s\t", kind)
		for i := range benches {
			fmt.Fprintf(tw, "%s\t", fmtTPS(tps[kind][i]))
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Slowdown (STM)\t%s\t%s\t%s\n",
		slowdown(VolatileSTM, DudeSTM, 0), slowdown(VolatileSTM, DudeSTM, 1), slowdown(VolatileSTM, DudeSTM, 2))
	for _, kind := range []SysKind{VolatileHTM, DudeHTM} {
		fmt.Fprintf(tw, "%s\t", kind)
		for i := range benches {
			fmt.Fprintf(tw, "%s\t", fmtTPS(tps[kind][i]))
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Slowdown (HTM)\t%s\t%s\t%s\n",
		slowdown(VolatileHTM, DudeHTM, 0), slowdown(VolatileHTM, DudeHTM, 1), slowdown(VolatileHTM, DudeHTM, 2))
	tw.Flush()
	fmt.Fprintln(c.Out)
	return nil
}

// Recovery is the crash-forensics drill: run a DUDETM load with
// Reproduce frozen so the crash image carries a deep unreproduced log,
// pull the plug, remount with crash recovery, and audit the result —
// the durable frontier must cover every acknowledged transaction, the
// standalone forensic report (computed from the image alone) must agree
// with what recovery restored, and the recovery pass must account for
// its replay work. The remounted system then serves a measured run, so
// -json records carry the recovery phase timings and replay volume.
func Recovery(c ExpConfig) error {
	c.applyDefaults()
	ops := 20000
	if c.Quick {
		ops /= 10
	}
	opts := Options{
		Threads:   c.Threads,
		GroupSize: 16,
	}

	// Phase 1: the crash. Freeze Reproduce so acknowledged-durable work
	// piles up in the persistent logs, then snapshot the durable image
	// mid-flight — exactly what a power failure leaves behind.
	sys, err := NewSystem(DudeSTM, opts)
	if err != nil {
		return err
	}
	bench := NewHashBench()
	if err := bench.Setup(sys); err != nil {
		sys.Close()
		return fmt.Errorf("recovery setup: %w", err)
	}
	ds := sys.(*dudeSys).Sys()
	ds.PauseReproduce()
	rng := rand.New(rand.NewSource(42))
	var last uint64
	for i := 0; i < ops; i++ {
		tid, err := bench.Op(sys, 0, rng)
		if err != nil {
			ds.ResumeReproduce()
			sys.Close()
			return fmt.Errorf("recovery load: %w", err)
		}
		if tid > last {
			last = tid
		}
	}
	if err := ds.WaitDurable(last); err != nil {
		ds.ResumeReproduce()
		sys.Close()
		return fmt.Errorf("recovery drill: %w", err)
	}
	time.Sleep(20 * time.Millisecond) // let the persist stage go idle
	img := ds.Device().PersistedImage()
	ds.ResumeReproduce()
	sys.Close()

	// Phase 2: standalone forensics on the image, before any recovery
	// mutates it.
	fdev := pmem.New(pmem.Config{Size: uint64(len(img))})
	fdev.Restore(img)
	rep, err := dudetm.Forensics(fdev)
	if err != nil {
		return fmt.Errorf("recovery forensics: %w", err)
	}

	// Phase 3: remount, audit, and cross-check report vs. image.
	rsys, err := RecoverSystem(DudeSTM, img, opts)
	if err != nil {
		return fmt.Errorf("recovery remount: %w", err)
	}
	defer rsys.Close()
	rds := rsys.(*dudeSys).Sys()
	if err := rds.AuditRecovery(last); err != nil {
		return fmt.Errorf("recovery durability audit: %w", err)
	}
	if got := rds.Durable(); got != rep.LogFrontier {
		return fmt.Errorf("recovery: forensic frontier %d != recovered durable %d\n%s",
			rep.LogFrontier, got, rep)
	}
	rec := rsys.Stats().Recovery
	if !rec.Recovered || rec.Report == nil {
		return fmt.Errorf("recovery: stats not instrumented: %+v", rec)
	}
	if rec.GroupsReplayed == 0 || rec.EntriesReplayed == 0 || rec.BytesReplayed == 0 {
		return fmt.Errorf("recovery: paused-Reproduce image replayed nothing: %+v", rec)
	}

	// Phase 4: the recovered system serves a measured run; its Record
	// carries the recovery stats.
	res, err := Measure(rsys, bench, c.Threads, MeasureOpts{TotalOps: ops})
	if err != nil {
		return fmt.Errorf("recovery measured run: %w", err)
	}
	fmt.Fprintf(c.Out, "recovery: audited durable frontier %d (acked %d) · scan %v · replay %v (%d groups, %d entries, %d KiB) · recycle %v · then %s\n",
		rds.Durable(), last,
		time.Duration(rec.ScanNanos), time.Duration(rec.ReplayNanos),
		rec.GroupsReplayed, rec.EntriesReplayed, rec.BytesReplayed>>10,
		time.Duration(rec.RecycleNanos), fmtTPS(res.TPS))
	return nil
}

// Smoke is the CI health check for the parallel pipeline: a short
// DUDETM run with both background stages forced multi-worker and
// lifecycle tracing sampled. It fails if either stage's utilization
// counters stay zero — the symptom of a regression that silently routes
// work around the worker pools (or stops counting it) — or if the
// observability layer loses the sampled lifecycle latencies.
func Smoke(c ExpConfig) error {
	c.applyDefaults()
	ops := 20000
	if c.Quick {
		ops /= 10
	}
	res, err := Run(DudeSTM, NewHashBench(), Options{
		Threads:          c.Threads,
		GroupSize:        16,
		PersistThreads:   2,
		ReproThreads:     4,
		TraceSampleEvery: 8,
	}, MeasureOpts{TotalOps: ops})
	if err != nil {
		return err
	}
	if res.Stats.PersistBusyNS == 0 || res.Stats.PersistFences == 0 {
		return fmt.Errorf("smoke: persist stage idle over %d txs (busy=%dns fences=%d)",
			res.Ops, res.Stats.PersistBusyNS, res.Stats.PersistFences)
	}
	if res.Stats.ReproBusyNS == 0 || res.Stats.ReproFences == 0 {
		return fmt.Errorf("smoke: reproduce stage idle over %d txs (busy=%dns fences=%d)",
			res.Ops, res.Stats.ReproBusyNS, res.Stats.ReproFences)
	}
	ob := res.Stats.Obs
	if ob.SampledCommits == 0 || ob.CommitDurable.Count == 0 || ob.CommitDurable.Quantile(0.5) == 0 {
		return fmt.Errorf("smoke: tracing sampled %d commits but recorded %d commit→durable latencies (p50=%dns)",
			ob.SampledCommits, ob.CommitDurable.Count, ob.CommitDurable.Quantile(0.5))
	}
	if ob.Fence.Count == 0 || ob.GroupTxns.Count == 0 {
		return fmt.Errorf("smoke: per-group histograms idle (fences=%d groups=%d)",
			ob.Fence.Count, ob.GroupTxns.Count)
	}
	fmt.Fprintf(c.Out, "smoke: %s · persist busy %v / %d fences · reproduce busy %v / %d fences · dur p50 %v p99 %v (%d sampled)\n",
		fmtTPS(res.TPS),
		time.Duration(res.Stats.PersistBusyNS), res.Stats.PersistFences,
		time.Duration(res.Stats.ReproBusyNS), res.Stats.ReproFences,
		time.Duration(ob.CommitDurable.Quantile(0.5)), time.Duration(ob.CommitDurable.Quantile(0.99)),
		ob.SampledCommits)
	return nil
}

// PipelineBench is the workload the pipeline sweep replays: zipfian KV
// updates (the paper's §5.5 swap-overhead workload) on a hot 1024-record
// working set, so repeated updates give epoch coalescing and
// line-granular write-back real duplication to remove. Shared with
// BenchmarkPipeline so the recorded JSON and the experiment table come
// from the same configuration.
func PipelineBench() Bench {
	return &KVUpdateBench{Records: 1024, Theta: 0.99, ValueWords: 8}
}

// PipelineOptions is one row of the pipeline sweep: the timing model is
// on (NVM write latency + bandwidth), so flushed-line savings show up
// as stage time, not just counter deltas.
func PipelineOptions(threads, epochs int, compress bool) Options {
	return Options{
		Threads:  threads,
		DelaysOn: true,
		// Constrained write bandwidth (the paper's limited-bandwidth NVM
		// point): stage busy time is dominated by write-back volume, so
		// the distinct-line economy of epoch coalescing shows up as
		// Reproduce time while Persist — which writes the full log
		// regardless — is unaffected.
		Bandwidth: pmem.GB / 32,
		GroupSize: 64,
		// One Persist worker: utilization is normalized per worker, and
		// on the small host extra workers only dilute the comparison
		// against the single-ordering-loop Reproduce stage.
		PersistThreads:    1,
		ReproThreads:      2,
		ReplayEpochGroups: epochs,
		Compress:          compress,
	}
}

// Pipeline sweeps the Reproduce replay-epoch group cap on the zipfian
// KV-update workload (1 = per-group replay, the pre-epoch behavior)
// plus one Compress=true row exercising the lz4 group path under the
// same load. Each row records the epoch coalescing counters (epochs
// formed, entries in/out of last-writer-wins coalescing, cache lines
// written back) and the per-stage utilizations — the signal that epoch
// coalescing turns the Reproduce backlog into spare capacity.
func Pipeline(c ExpConfig) error {
	c.applyDefaults()
	ops := 30000
	if c.Quick {
		ops /= 10
	}
	type row struct {
		name     string
		epochs   int
		compress bool
	}
	rows := []row{
		{"epoch=1", 1, false},
		{"epoch=4", 4, false},
		{"epoch=64", 64, false},
		{"epoch=64+lz4", 64, true},
	}
	tw := tabwriter.NewWriter(c.Out, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "config\ttps\trepro busy\trepro fences\tepochs\tcoalesce\tlines\tutil P/R")
	for _, r := range rows {
		res, err := Run(DudeSTM, PipelineBench(),
			PipelineOptions(c.Threads, r.epochs, r.compress),
			MeasureOpts{TotalOps: ops, Seed: 1})
		if err != nil {
			return fmt.Errorf("pipeline %s: %w", r.name, err)
		}
		if res.Stats.PersistBusyNS == 0 || res.Stats.ReproBusyNS == 0 {
			return fmt.Errorf("pipeline %s: stage utilization counters idle", r.name)
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\t%.2fx\t%d\t%.2f/%.2f\n",
			r.name, fmtTPS(res.TPS),
			time.Duration(res.Stats.ReproBusyNS), res.Stats.ReproFences,
			res.Stats.ReproEpochs,
			coalesceRatio(res.Stats.ReproCoalesceIn, res.Stats.ReproCoalesceOut),
			res.Stats.ReproLines,
			res.Stats.PersistUtil, res.Stats.ReproUtil)
	}
	return tw.Flush()
}
