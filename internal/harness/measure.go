package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dudetm/internal/obs"
)

// MeasureOpts controls one measured run.
type MeasureOpts struct {
	// TotalOps transactions are split evenly across the threads.
	TotalOps int
	// SampleLat measures durable-acknowledgement latency using the
	// paper's application pattern (§5.3): for asynchronously durable
	// systems, a transaction is acknowledged after the *next*
	// transaction's Perform step, when the worker checks the global
	// durable ID; for synchronously durable systems the latency is the
	// Run duration itself.
	SampleLat bool
	// Seed makes runs reproducible.
	Seed int64
}

// Result is one measured benchmark run.
type Result struct {
	Sys     SysKind
	Bench   string
	Threads int
	Ops     uint64
	Elapsed time.Duration

	// Derived.
	TPS float64

	// Durable-ack latency quantiles (valid when sampled), from the
	// same mergeable power-of-two-bucket histogram all drivers share.
	P50, P90, P99, P999 time.Duration
	// Latency is the full histogram behind the quantiles.
	Latency obs.HistSnapshot

	// System counters over the measured interval.
	Stats SysStats
}

// Run builds the system, loads the benchmark, measures it, and tears
// everything down.
func Run(kind SysKind, bench Bench, o Options, m MeasureOpts) (Result, error) {
	o.applyDefaults()
	if o.DataSize == 0 || o.DataSize < bench.DataSize() {
		o.DataSize = bench.DataSize()
	}
	sys, err := NewSystem(kind, o)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	if err := bench.Setup(sys); err != nil {
		return Result{}, fmt.Errorf("%s setup on %s: %w", bench.Name(), kind, err)
	}
	return Measure(sys, bench, o.Threads, m)
}

// Measure drives TotalOps transactions through an already-loaded
// benchmark and reports throughput and latency.
func Measure(sys System, bench Bench, threads int, m MeasureOpts) (Result, error) {
	if m.TotalOps == 0 {
		m.TotalOps = 100000
	}
	if m.Seed == 0 {
		m.Seed = 42
	}
	nvmlB, isNVMLBench := bench.(NVMLBench)
	nvmlS, isNVML := sys.(*NVMLSys)
	if isNVML && !isNVMLBench {
		return Result{}, fmt.Errorf("harness: %s has no static (NVML) driver", bench.Name())
	}

	before := sys.Stats()
	perThread := m.TotalOps / threads
	var latHist obs.Histogram
	errs := make([]error, threads)
	asyncLat := m.SampleLat && sys.AsyncDurability()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(m.Seed + int64(w)*7919))
			var prevTid uint64
			var prevT0 time.Time
			havePrev := false
			for i := 0; i < perThread; i++ {
				sample := m.SampleLat
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				var tid uint64
				var err error
				if isNVML {
					err = nvmlB.OpNVML(nvmlS, w, rng)
				} else {
					tid, err = bench.Op(sys, w, rng)
				}
				if err != nil {
					errs[w] = err
					return
				}
				if !sample {
					continue
				}
				if !asyncLat {
					// Durable at Run return.
					latHist.ObserveSince(0, int64(time.Since(t0)))
					continue
				}
				// Acknowledge the previous transaction now that this
				// one's Perform step is done (the paper's pattern).
				if havePrev {
					sys.WaitDurable(prevTid)
					latHist.ObserveSince(0, int64(time.Since(prevT0)))
				}
				prevTid, prevT0, havePrev = tid, t0, true
			}
			if asyncLat && havePrev {
				sys.WaitDurable(prevTid)
				latHist.ObserveSince(0, int64(time.Since(prevT0)))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	// Let the pipeline catch up so byte/entry counters cover every
	// measured transaction (throughput uses the pre-drain wall time,
	// matching the paper's Perform-rate measurement).
	sys.Drain()
	after := sys.Stats()

	res := Result{
		Sys:     sys.Kind(),
		Bench:   bench.Name(),
		Threads: threads,
		Ops:     uint64(perThread * threads),
		Elapsed: elapsed,
		TPS:     float64(perThread*threads) / elapsed.Seconds(),
		Stats: SysStats{
			Commits:       after.Commits - before.Commits,
			Aborts:        after.Aborts - before.Aborts,
			Writes:        after.Writes - before.Writes,
			NVMBytes:      after.NVMBytes - before.NVMBytes,
			LogBytes:      after.LogBytes - before.LogBytes,
			RawEntries:    after.RawEntries - before.RawEntries,
			CombEntries:   after.CombEntries - before.CombEntries,
			PersistBusyNS: after.PersistBusyNS - before.PersistBusyNS,
			ReproBusyNS:   after.ReproBusyNS - before.ReproBusyNS,
			PersistFences: after.PersistFences - before.PersistFences,
			ReproFences:   after.ReproFences - before.ReproFences,
			// Utilization is absolute (since pool start); every measured
			// run builds a fresh pool, so it describes the run.
			PersistUtil:      after.PersistUtil,
			ReproUtil:        after.ReproUtil,
			ReproEpochs:      after.ReproEpochs - before.ReproEpochs,
			ReproCoalesceIn:  after.ReproCoalesceIn - before.ReproCoalesceIn,
			ReproCoalesceOut: after.ReproCoalesceOut - before.ReproCoalesceOut,
			ReproLines:       after.ReproLines - before.ReproLines,
			Obs:              after.Obs.Sub(before.Obs),
			// Recovery happened (if at all) at mount, before the run;
			// carry it absolute rather than as an interval delta.
			Recovery: after.Recovery,
		},
	}
	if m.SampleLat {
		res.Latency = latHist.Snapshot()
		if res.Latency.Count > 0 {
			res.P50 = time.Duration(res.Latency.Quantile(0.50))
			res.P90 = time.Duration(res.Latency.Quantile(0.90))
			res.P99 = time.Duration(res.Latency.Quantile(0.99))
			res.P999 = time.Duration(res.Latency.Quantile(0.999))
		}
	}
	record(res)
	return res, nil
}
