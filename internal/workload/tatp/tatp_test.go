package tatp

import (
	"math/rand"
	"testing"

	"dudetm/internal/memdb"
)

type flatCtx struct{ w []uint64 }

func (c *flatCtx) Load(addr uint64) uint64 { return c.w[addr/8] }
func (c *flatCtx) Store(addr, val uint64)  { c.w[addr/8] = val }
func (c *flatCtx) Abort()                  { panic("abort") }

func TestUpdateLocationBothStorages(t *testing.T) {
	for _, st := range []StorageKind{BTreeStorage, HashStorage} {
		ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
		heap := memdb.Heap{Base: 0, Size: 32 << 20}
		db, err := Setup(Config{Subscribers: 2000, Storage: st}, heap,
			func(fn func(memdb.Ctx) error) error { return fn(ctx) })
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		want := map[int]uint64{}
		for i := 0; i < 1000; i++ {
			s := db.GenSubscriber(rng)
			loc := rng.Uint64() % 10000
			db.UpdateLocation(ctx, s, loc)
			want[s] = loc
		}
		for s, loc := range want {
			if got := db.Location(ctx, s); got != loc {
				t.Fatalf("storage %d: subscriber %d at %d, want %d", st, s, got, loc)
			}
		}
		// Untouched subscribers keep their initial location.
		for s := 0; s < 100; s++ {
			if _, ok := want[s]; ok {
				continue
			}
			if got := db.Location(ctx, s); got != uint64(s%1000) {
				t.Fatalf("subscriber %d corrupted: %d", s, got)
			}
		}
	}
}

func TestTATPMix(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	db, err := Setup(Config{Subscribers: 1000}, heap,
		func(fn func(memdb.Ctx) error) error { return fn(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := map[MixOp]int{}
	for i := 0; i < 5000; i++ {
		counts[db.RunMix(ctx, rng)]++
	}
	if counts[OpGetSubscriberData] < 3500 {
		t.Fatalf("read share too low: %v", counts)
	}
	if counts[OpUpdateLocation] == 0 || counts[OpUpdateSubscriberData] == 0 {
		t.Fatalf("mix never ran a write op: %v", counts)
	}
}

func TestHandoffCounts(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	db, err := Setup(Config{Subscribers: 100}, heap,
		func(fn func(memdb.Ctx) error) error { return fn(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		db.Handoff(ctx, 5, uint64(i))
	}
	d := db.GetSubscriberData(ctx, 5)
	if d.Handoffs != 7 || d.Location != 6 {
		t.Fatalf("data = %+v", d)
	}
}
