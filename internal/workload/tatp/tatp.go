// Package tatp implements the TATP Update Location transaction over the
// transactional tables in internal/memdb (§5.1 of the paper): a mobile
// carrier database records the handoff of a subscriber between cell
// towers — one index search plus a single field update, the shortest
// transaction in the evaluation.
package tatp

import (
	"math/rand"

	"dudetm/internal/memdb"
)

// StorageKind selects the table implementation.
type StorageKind int

const (
	// BTreeStorage backs the subscriber table with a B+-tree.
	BTreeStorage StorageKind = iota
	// HashStorage backs it with an open-addressing hash table.
	HashStorage
)

// Subscriber row field offsets.
const (
	subVLRLocation = 0  // current cell tower
	subBits        = 8  // bit flags
	subHandoffs    = 16 // handoff count (repo extension, used by tests)
)

// Config sets the database scale.
type Config struct {
	// Subscribers (default 65536; the TATP spec default is 100000).
	Subscribers int
	// Storage selects the table kind.
	Storage StorageKind
}

// DB is a loaded TATP database.
type DB struct {
	Cfg         Config
	Heap        memdb.Heap
	Subscribers memdb.Table
}

// SubscriberKey encodes subscriber s (offset by 1: 0 is reserved).
func SubscriberKey(s int) uint64 { return uint64(s) + 1 }

// Setup formats the heap, creates the subscriber table and loads it.
func Setup(cfg Config, heap memdb.Heap, txRun func(fn func(memdb.Ctx) error) error) (*DB, error) {
	if cfg.Subscribers == 0 {
		cfg.Subscribers = 65536
	}
	db := &DB{Cfg: cfg, Heap: heap}

	if err := txRun(func(ctx memdb.Ctx) error {
		heap.Format(ctx)
		var err error
		if cfg.Storage == HashStorage {
			buckets := uint64(4)
			for buckets < uint64(cfg.Subscribers)*2 {
				buckets <<= 1
			}
			base, aerr := heap.Alloc(ctx, buckets*16)
			if aerr != nil {
				return aerr
			}
			db.Subscribers = memdb.NewHashTable(base, buckets)
			return nil
		}
		rootPtr, aerr := heap.Alloc(ctx, 8)
		if aerr != nil {
			return aerr
		}
		t := memdb.BPlusTree{RootPtr: rootPtr, Heap: heap}
		err = t.Format(ctx)
		db.Subscribers = t
		return err
	}); err != nil {
		return nil, err
	}

	const batch = 512
	for start := 0; start < cfg.Subscribers; start += batch {
		end := start + batch
		if end > cfg.Subscribers {
			end = cfg.Subscribers
		}
		if err := txRun(func(ctx memdb.Ctx) error {
			for s := start; s < end; s++ {
				row, err := heap.Alloc(ctx, 24)
				if err != nil {
					return err
				}
				ctx.Store(row+subVLRLocation, uint64(s%1000))
				ctx.Store(row+subBits, uint64(s)&0xff)
				if err := db.Subscribers.Put(ctx, SubscriberKey(s), row); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// GenSubscriber draws a random subscriber id.
func (db *DB) GenSubscriber(rng *rand.Rand) int { return rng.Intn(db.Cfg.Subscribers) }

// UpdateLocation executes the Update Location transaction: one search,
// one write.
func (db *DB) UpdateLocation(ctx memdb.Ctx, sub int, location uint64) {
	row, ok := db.Subscribers.Get(ctx, SubscriberKey(sub))
	if !ok {
		panic("tatp: missing subscriber")
	}
	ctx.Store(row+subVLRLocation, location)
}

// Location reads a subscriber's current location (for tests).
func (db *DB) Location(ctx memdb.Ctx, sub int) uint64 {
	row, ok := db.Subscribers.Get(ctx, SubscriberKey(sub))
	if !ok {
		panic("tatp: missing subscriber")
	}
	return ctx.Load(row + subVLRLocation)
}

// The paper evaluates only Update Location; the operations below
// implement the rest of the TATP mix touching the subscriber row (a
// repository extension): a read-only data lookup and a flag update,
// with the standard 80/14/2/4-style read-dominated blend approximated
// as 80% reads / 20% writes.

// SubscriberData is the read-only lookup result.
type SubscriberData struct {
	Location uint64
	Bits     uint64
	Handoffs uint64
}

// GetSubscriberData reads a subscriber row (read-only transaction).
func (db *DB) GetSubscriberData(ctx memdb.Ctx, sub int) SubscriberData {
	row, ok := db.Subscribers.Get(ctx, SubscriberKey(sub))
	if !ok {
		panic("tatp: missing subscriber")
	}
	return SubscriberData{
		Location: ctx.Load(row + subVLRLocation),
		Bits:     ctx.Load(row + subBits),
		Handoffs: ctx.Load(row + subHandoffs),
	}
}

// UpdateSubscriberData flips a subscriber's bit flags.
func (db *DB) UpdateSubscriberData(ctx memdb.Ctx, sub int, bits uint64) {
	row, ok := db.Subscribers.Get(ctx, SubscriberKey(sub))
	if !ok {
		panic("tatp: missing subscriber")
	}
	ctx.Store(row+subBits, bits)
}

// Handoff is UpdateLocation plus a handoff counter increment (used by
// the crash-consistency tests to audit totals).
func (db *DB) Handoff(ctx memdb.Ctx, sub int, location uint64) {
	row, ok := db.Subscribers.Get(ctx, SubscriberKey(sub))
	if !ok {
		panic("tatp: missing subscriber")
	}
	ctx.Store(row+subVLRLocation, location)
	ctx.Store(row+subHandoffs, ctx.Load(row+subHandoffs)+1)
}

// MixOp identifies a transaction of the TATP blend.
type MixOp int

// TATP mix operations.
const (
	OpGetSubscriberData MixOp = iota
	OpUpdateLocation
	OpUpdateSubscriberData
)

// RunMix executes one randomly drawn TATP transaction (~80% reads).
func (db *DB) RunMix(ctx memdb.Ctx, rng *rand.Rand) MixOp {
	sub := db.GenSubscriber(rng)
	switch r := rng.Intn(100); {
	case r < 80:
		db.GetSubscriberData(ctx, sub)
		return OpGetSubscriberData
	case r < 94:
		db.UpdateLocation(ctx, sub, rng.Uint64()%10000)
		return OpUpdateLocation
	default:
		db.UpdateSubscriberData(ctx, sub, rng.Uint64()&0xff)
		return OpUpdateSubscriberData
	}
}
