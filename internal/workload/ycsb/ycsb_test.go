package ycsb

import (
	"math/rand"
	"testing"

	"dudetm/internal/memdb"
)

type flatCtx struct{ w []uint64 }

func (c *flatCtx) Load(addr uint64) uint64 { return c.w[addr/8] }
func (c *flatCtx) Store(addr, val uint64)  { c.w[addr/8] = val }
func (c *flatCtx) Abort()                  { panic("abort") }

func TestSessionStore(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	db, err := Setup(Config{Records: 2000}, heap,
		func(fn func(memdb.Ctx) error) error { return fn(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDriver(rand.New(rand.NewSource(1)))
	reads := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if d.Op(ctx) {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("read fraction %.3f, want ~0.5", frac)
	}
}

func TestRecordsReadable(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	db, err := Setup(Config{Records: 500, ValueWords: 4}, heap,
		func(fn func(memdb.Ctx) error) error { return fn(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		row, ok := db.Tree.Get(ctx, recordKey(i))
		if !ok {
			t.Fatalf("record %d missing", i)
		}
		if v := ctx.Load(row); v != uint64(i*4) {
			t.Fatalf("record %d word 0 = %d", i, v)
		}
	}
}

func TestCoreWorkloadMixes(t *testing.T) {
	for _, w := range []Workload{WorkloadA, WorkloadB, WorkloadC} {
		ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
		heap := memdb.Heap{Base: 0, Size: 32 << 20}
		cfg := ConfigFor(w)
		cfg.Records = 1000
		db, err := Setup(cfg, heap,
			func(fn func(memdb.Ctx) error) error { return fn(ctx) })
		if err != nil {
			t.Fatal(err)
		}
		d := db.NewDriver(rand.New(rand.NewSource(int64(w))))
		reads := 0
		const n = 4000
		for i := 0; i < n; i++ {
			if d.Op(ctx) {
				reads++
			}
		}
		frac := float64(reads) / n
		want := cfg.ReadFraction
		if frac < want-0.05 || frac > want+0.05 {
			t.Fatalf("workload %d: read fraction %.3f, want ~%.2f", w, frac, want)
		}
	}
}

func TestWorkloadEScansAndInserts(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	cfg := ConfigFor(WorkloadE)
	cfg.Records = 500
	db, err := Setup(cfg, heap,
		func(fn func(memdb.Ctx) error) error { return fn(ctx) })
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDriver(rand.New(rand.NewSource(7)))
	scans, inserts := 0, 0
	for i := 0; i < 2000; i++ {
		if d.OpE(ctx) {
			scans++
		} else {
			inserts++
		}
	}
	if inserts == 0 || scans < inserts*10 {
		t.Fatalf("scans=%d inserts=%d", scans, inserts)
	}
	// Inserted records must be retrievable beyond the loaded range.
	found := 0
	db.Tree.Scan(ctx, recordKey(cfg.Records), ^uint64(0), func(k, v uint64) bool {
		found++
		return true
	})
	if found == 0 {
		t.Fatal("no inserted records found")
	}
}
