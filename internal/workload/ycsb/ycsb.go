// Package ycsb implements the YCSB "Session Store" workload used for the
// paper's log-optimization experiment (Figure 3): a key-value store
// loaded with 10 K records, driven by a 50/50 mix of read and update
// transactions whose keys follow a Zipfian distribution with constant
// 0.99.
package ycsb

import (
	"math/rand"
	"sync"

	"dudetm/internal/memdb"
	"dudetm/internal/workload/zipf"
)

// Config sets the store scale and mix.
type Config struct {
	// Records loaded initially (default 10000, as in §5.4).
	Records int
	// ReadFraction of operations (default 0.5).
	ReadFraction float64
	// Theta is the Zipfian constant (default 0.99).
	Theta float64
	// ValueWords is the record payload size in 8-byte words (default 4;
	// updates rewrite the whole payload, giving combination something
	// to coalesce).
	ValueWords int
}

func (c *Config) applyDefaults() {
	if c.Records == 0 {
		c.Records = 10000
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ValueWords == 0 {
		c.ValueWords = 4
	}
}

// DB is a loaded session store over a B+-tree.
type DB struct {
	Cfg  Config
	Heap memdb.Heap
	Tree memdb.BPlusTree

	// Workload E insert cursor.
	insertMu sync.Mutex
	inserted uint64
}

func recordKey(i int) uint64 { return uint64(i) + 1 }

// Setup formats the heap and loads the records.
func Setup(cfg Config, heap memdb.Heap, txRun func(fn func(memdb.Ctx) error) error) (*DB, error) {
	cfg.applyDefaults()
	db := &DB{Cfg: cfg, Heap: heap}
	if err := txRun(func(ctx memdb.Ctx) error {
		heap.Format(ctx)
		rootPtr, err := heap.Alloc(ctx, 8)
		if err != nil {
			return err
		}
		db.Tree = memdb.BPlusTree{RootPtr: rootPtr, Heap: heap}
		return db.Tree.Format(ctx)
	}); err != nil {
		return nil, err
	}
	const batch = 512
	for start := 0; start < cfg.Records; start += batch {
		end := start + batch
		if end > cfg.Records {
			end = cfg.Records
		}
		if err := txRun(func(ctx memdb.Ctx) error {
			for i := start; i < end; i++ {
				row, err := heap.Alloc(ctx, uint64(cfg.ValueWords)*8)
				if err != nil {
					return err
				}
				for w := 0; w < cfg.ValueWords; w++ {
					ctx.Store(row+uint64(w)*8, uint64(i*cfg.ValueWords+w))
				}
				if err := db.Tree.Put(ctx, recordKey(i), row); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Driver draws Session Store operations for one client.
type Driver struct {
	db   *DB
	rng  *rand.Rand
	keys *zipf.Generator
}

// NewDriver creates a client-local operation generator.
func (db *DB) NewDriver(rng *rand.Rand) *Driver {
	return &Driver{db: db, rng: rng, keys: zipf.New(rng, uint64(db.Cfg.Records), db.Cfg.Theta)}
}

// Op executes one workload operation (read or whole-record update) in
// the given transaction. It reports whether the op was a read.
func (d *Driver) Op(ctx memdb.Ctx) bool {
	key := recordKey(int(d.keys.Next()))
	read := d.rng.Float64() < d.db.Cfg.ReadFraction
	row, ok := d.db.Tree.Get(ctx, key)
	if !ok {
		panic("ycsb: missing record")
	}
	if read {
		var sum uint64
		for w := 0; w < d.db.Cfg.ValueWords; w++ {
			sum += ctx.Load(row + uint64(w)*8)
		}
		_ = sum
		return true
	}
	v := d.rng.Uint64()
	for w := 0; w < d.db.Cfg.ValueWords; w++ {
		ctx.Store(row+uint64(w)*8, v+uint64(w))
	}
	return false
}

// The paper uses only the Session Store mix; the standard YCSB core
// workloads are provided as a repository extension. Workload E adds
// range scans (exercising the B+-tree leaf chain) and inserts.

// Workload identifies a YCSB core workload.
type Workload int

// Standard YCSB core workloads.
const (
	// WorkloadA is update-heavy: 50% reads, 50% updates (the paper's
	// Session Store).
	WorkloadA Workload = iota
	// WorkloadB is read-heavy: 95% reads, 5% updates.
	WorkloadB
	// WorkloadC is read-only.
	WorkloadC
	// WorkloadE is scan-heavy: 95% short range scans, 5% inserts.
	WorkloadE
)

// ConfigFor returns the session-store configuration of a core workload
// (records and value size as in the paper's Figure 3 setup).
func ConfigFor(w Workload) Config {
	c := Config{Records: 10000}
	switch w {
	case WorkloadA:
		c.ReadFraction = 0.5
	case WorkloadB:
		c.ReadFraction = 0.95
	case WorkloadC:
		c.ReadFraction = 1.0
	case WorkloadE:
		c.ReadFraction = 0 // ops drawn by OpE instead
	}
	return c
}

// nextKey tracks inserts for Workload E (shared across drivers).
func (db *DB) insertKey() uint64 { return recordKey(db.Cfg.Records + int(db.inserted)) }

// OpE executes one Workload E operation: a short range scan (95%) or an
// insert of a fresh record (5%). It reports whether the op was a scan.
func (d *Driver) OpE(ctx memdb.Ctx) bool {
	if d.rng.Float64() < 0.95 {
		start := recordKey(int(d.keys.Next()))
		n := 1 + d.rng.Intn(20)
		count := 0
		d.db.Tree.Scan(ctx, start, ^uint64(0), func(k, v uint64) bool {
			count++
			return count < n
		})
		return true
	}
	// Insert a fresh record past the loaded range.
	d.db.insertMu.Lock()
	key := d.db.insertKey()
	d.db.inserted++
	d.db.insertMu.Unlock()
	row, err := d.db.Heap.Alloc(ctx, uint64(d.db.Cfg.ValueWords)*8)
	if err != nil {
		panic(err)
	}
	for w := 0; w < d.db.Cfg.ValueWords; w++ {
		ctx.Store(row+uint64(w)*8, key+uint64(w))
	}
	if err := d.db.Tree.Put(ctx, key, row); err != nil {
		panic(err)
	}
	return false
}
