package zipf

import (
	"math/rand"
	"testing"
)

func TestBounds(t *testing.T) {
	for _, theta := range []float64{0.5, 0.99, 1.07} {
		g := New(rand.New(rand.NewSource(1)), 1000, theta)
		for i := 0; i < 20000; i++ {
			if v := g.Next(); v >= 1000 {
				t.Fatalf("theta %.2f: out of range: %d", theta, v)
			}
		}
	}
}

func TestSkew(t *testing.T) {
	for _, theta := range []float64{0.99, 1.07} {
		g := New(rand.New(rand.NewSource(2)), 10000, theta)
		counts := make([]int, 10000)
		const n = 200000
		for i := 0; i < n; i++ {
			counts[g.Next()]++
		}
		// Rank 0 must be far above uniform (uniform = 20 hits).
		if counts[0] < 200 {
			t.Fatalf("theta %.2f: rank 0 hit %d times, want heavy skew", theta, counts[0])
		}
		// Top 100 ranks should take a large share.
		top := 0
		for i := 0; i < 100; i++ {
			top += counts[i]
		}
		if float64(top)/n < 0.3 {
			t.Fatalf("theta %.2f: top-100 share %.3f, want >= 0.3", theta, float64(top)/n)
		}
	}
}

func TestHigherThetaMoreSkewed(t *testing.T) {
	share := func(theta float64) float64 {
		g := New(rand.New(rand.NewSource(3)), 10000, theta)
		counts := make([]int, 10000)
		const n = 100000
		for i := 0; i < n; i++ {
			counts[g.Next()]++
		}
		top := 0
		for i := 0; i < 10; i++ {
			top += counts[i]
		}
		return float64(top) / n
	}
	if s99, s107 := share(0.99), share(1.07); s107 <= s99 {
		t.Fatalf("1.07 share %.3f <= 0.99 share %.3f", s107, s99)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := New(rand.New(rand.NewSource(7)), 100, 0.99)
	b := New(rand.New(rand.NewSource(7)), 100, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("non-deterministic")
		}
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { New(rand.New(rand.NewSource(1)), 0, 0.99) },
		func() { New(rand.New(rand.NewSource(1)), 10, 1.0) },
		func() { New(rand.New(rand.NewSource(1)), 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
