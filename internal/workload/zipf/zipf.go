// Package zipf generates Zipfian-distributed ranks for the skewed
// workloads in the paper's evaluation: YCSB Session Store with constant
// 0.99 (Figure 3) and the swap-overhead workloads with constants 0.99
// and 1.07 (Figure 4).
//
// For theta < 1 it implements the Gray et al. "Quickly Generating
// Billion-Record Synthetic Databases" algorithm (the one YCSB uses); for
// theta > 1, where that derivation does not apply, it delegates to
// math/rand's rejection-sampling Zipf generator. Rank 0 is always the
// most popular item.
package zipf

import (
	"math"
	"math/rand"
)

// Generator produces Zipfian ranks in [0, N).
type Generator struct {
	n     uint64
	theta float64
	rng   *rand.Rand

	// Gray et al. state (theta < 1).
	alpha, zetan, eta, zeta2 float64

	// Stdlib generator (theta > 1).
	z *rand.Zipf
}

// New creates a generator over [0, n) with skew theta (> 0, != 1; the
// paper uses 0.99, 0.99 and 1.07). rng must not be shared across
// goroutines.
func New(rng *rand.Rand, n uint64, theta float64) *Generator {
	if n == 0 {
		panic("zipf: empty range")
	}
	if theta <= 0 || theta == 1 {
		panic("zipf: theta must be positive and != 1")
	}
	g := &Generator{n: n, theta: theta, rng: rng}
	if theta > 1 {
		g.z = rand.NewZipf(rng, theta, 1, n-1)
		return g
	}
	g.zeta2 = zeta(2, theta)
	g.zetan = zeta(n, theta)
	g.alpha = 1 / (1 - theta)
	g.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - g.zeta2/g.zetan)
	return g
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank.
func (g *Generator) Next() uint64 {
	if g.z != nil {
		return g.z.Uint64()
	}
	u := g.rng.Float64()
	uz := u * g.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, g.theta) {
		return 1
	}
	return uint64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
}

// N returns the range size.
func (g *Generator) N() uint64 { return g.n }
