package tpcc

import (
	"math/rand"
	"testing"

	"dudetm/internal/memdb"
)

type flatCtx struct{ w []uint64 }

func (c *flatCtx) Load(addr uint64) uint64 { return c.w[addr/8] }
func (c *flatCtx) Store(addr, val uint64)  { c.w[addr/8] = val }
func (c *flatCtx) Abort()                  { panic("abort") }

func direct(ctx *flatCtx) func(func(memdb.Ctx) error) error {
	return func(fn func(memdb.Ctx) error) error { return fn(ctx) }
}

func smallConfig(st StorageKind) Config {
	return Config{
		Warehouses: 2,
		Districts:  4,
		Customers:  16,
		Items:      64,
		MaxOrders:  1 << 12,
		Storage:    st,
	}
}

func TestNewOrderBothStorages(t *testing.T) {
	for _, st := range []StorageKind{BTreeStorage, HashStorage} {
		ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
		heap := memdb.Heap{Base: 0, Size: 64 << 20}
		db, err := Setup(smallConfig(st), heap, direct(ctx))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))

		perDistrict := map[[2]int]uint64{}
		var inputs []Input
		for i := 0; i < 200; i++ {
			in := db.GenInput(rng, i%db.Cfg.Warehouses)
			if err := db.NewOrder(ctx, in); err != nil {
				t.Fatal(err)
			}
			inputs = append(inputs, in)
			perDistrict[[2]int{in.W, in.D}]++
		}

		// District order counters advanced exactly once per order.
		for wd, n := range perDistrict {
			if got := db.NextOID(ctx, wd[0], wd[1]); got != n+1 {
				t.Fatalf("storage %d: district %v nextOID = %d, want %d", st, wd, got, n+1)
			}
		}

		// Every order and its lines must be retrievable and consistent.
		oidSeen := map[[2]int]uint64{}
		for _, in := range inputs {
			oidSeen[[2]int{in.W, in.D}]++
			oid := oidSeen[[2]int{in.W, in.D}]
			orow, ok := db.Orders.Get(ctx, db.OrderKey(in.W, in.D, oid))
			if !ok {
				t.Fatalf("storage %d: order (%d,%d,%d) missing", st, in.W, in.D, oid)
			}
			if cnt := ctx.Load(orow + oOLCnt); cnt != uint64(len(in.Items)) {
				t.Fatalf("olCnt = %d, want %d", cnt, len(in.Items))
			}
			for i, item := range in.Items {
				olrow, ok := db.OrderLines.Get(ctx, db.OrderLineKey(in.W, in.D, oid, i))
				if !ok {
					t.Fatalf("order line %d missing", i)
				}
				if got := ctx.Load(olrow + olItem); got != uint64(item) {
					t.Fatalf("line item = %d, want %d", got, item)
				}
				if got := ctx.Load(olrow + olQty); got != uint64(in.Qty[i]) {
					t.Fatalf("line qty = %d, want %d", got, in.Qty[i])
				}
				if ctx.Load(olrow+olAmount) == 0 {
					t.Fatal("zero amount")
				}
			}
		}

		// Stock YTD equals total quantity ordered per (w, item).
		ytd := map[[2]int]uint64{}
		for _, in := range inputs {
			for i, item := range in.Items {
				ytd[[2]int{in.W, item}] += uint64(in.Qty[i])
			}
		}
		for wi, want := range ytd {
			srow, ok := db.Stocks.Get(ctx, db.StockKey(wi[0], wi[1]))
			if !ok {
				t.Fatalf("stock %v missing", wi)
			}
			if got := ctx.Load(srow + sYTD); got != want {
				t.Fatalf("stock %v ytd = %d, want %d", wi, got, want)
			}
		}
	}
}

func TestGenInputShape(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (32<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 32 << 20}
	db, err := Setup(smallConfig(BTreeStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		in := db.GenInput(rng, 1)
		if len(in.Items) < 5 || len(in.Items) > 15 {
			t.Fatalf("order lines = %d", len(in.Items))
		}
		seen := map[int]bool{}
		for j, it := range in.Items {
			if it < 0 || it >= db.Cfg.Items {
				t.Fatalf("item %d out of range", it)
			}
			if seen[it] {
				t.Fatal("duplicate item in order")
			}
			seen[it] = true
			if in.Qty[j] < 1 || in.Qty[j] > 10 {
				t.Fatalf("qty %d", in.Qty[j])
			}
		}
	}
}
