// Package tpcc implements the TPC-C New Order transaction over the
// transactional tables in internal/memdb, following the paper's setup
// (§5.1): the write-intensive New Order transaction simulating a
// customer buying 5-15 items from a local warehouse, with the table
// storage implemented both as B+-trees and as hash tables (the paper's
// "TPC-C (B+-tree)" and "TPC-C (hash)" variants, identical to the REWIND
// implementation it cites).
//
// Scale parameters are configurable and default to a laptop-scale subset
// (fewer items and customers than the full TPC-C spec); the transaction
// structure — reads, writes, and inserts per order — matches the spec,
// which is what the write-intensity results depend on.
package tpcc

import (
	"math/rand"

	"dudetm/internal/memdb"
)

// StorageKind selects the table implementation.
type StorageKind int

const (
	// BTreeStorage backs each table with a B+-tree.
	BTreeStorage StorageKind = iota
	// HashStorage backs each table with an open-addressing hash table.
	HashStorage
)

// Config sets the scale of the generated database.
type Config struct {
	// Warehouses (default 4).
	Warehouses int
	// DistrictsPerWarehouse (default 10, per spec).
	Districts int
	// CustomersPerDistrict (default 120; spec is 3000).
	Customers int
	// Items in the catalogue (default 1024; spec is 100000).
	Items int
	// MaxOrders bounds hash-table sizing for order/order-line inserts
	// (default 1<<16 orders per run).
	MaxOrders int
	// Storage selects B+-tree or hash tables.
	Storage StorageKind
}

func (c *Config) applyDefaults() {
	if c.Warehouses == 0 {
		c.Warehouses = 4
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.Customers == 0 {
		c.Customers = 120
	}
	if c.Items == 0 {
		c.Items = 1024
	}
	if c.MaxOrders == 0 {
		c.MaxOrders = 1 << 16
	}
}

// Row field offsets (words * 8 bytes).
const (
	wTax = 0 // warehouse: tax in basis points
	wYTD = 8 // warehouse: year-to-date payments in cents

	dTax      = 0  // district: tax in basis points
	dNextOID  = 8  // district: next order id
	dYTD      = 16 // district: year-to-date payments in cents
	dDelivOID = 24 // district: next order id to deliver

	cDiscount   = 0  // customer: discount in basis points
	cBalance    = 8  // customer: balance in cents (offset-encoded, see balBias)
	cYTDPayment = 16 // customer: year-to-date payments in cents
	cPaymentCnt = 24 // customer: payment count
	cLastOID    = 32 // customer: most recent order id (for Order-Status)
	cLastD      = 40 // customer: district of the most recent order

	iPrice = 0 // item: price in cents

	sQuantity = 0 // stock: quantity on hand
	sYTD      = 8 // stock: year-to-date sold

	oCID     = 0  // order: customer id
	oOLCnt   = 8  // order: order-line count
	oEntryD  = 16 // order: entry timestamp (logical)
	oCarrier = 24 // order: carrier id (0 = undelivered)

	olItem   = 0  // order line: item id
	olSupply = 8  // order line: supplying warehouse
	olQty    = 16 // order line: quantity
	olAmount = 24 // order line: amount in cents
	olDelivD = 32 // order line: delivery timestamp (0 = undelivered)

	// Customer balances can go negative; they are stored biased.
	balBias = uint64(1) << 40

	warehouseRowBytes = 16
	districtRowBytes  = 32
	customerRowBytes  = 48
	orderRowBytes     = 32
	orderLineRowBytes = 40
)

// DB is a loaded TPC-C database inside a transactional pool.
type DB struct {
	Cfg  Config
	Heap memdb.Heap

	Warehouses memdb.Table
	Districts  memdb.Table
	Customers  memdb.Table
	Items      memdb.Table
	Stocks     memdb.Table
	Orders     memdb.Table
	OrderLines memdb.Table
	NewOrders  memdb.Table
}

// Key encodings (all offset by +1 so 0 stays the "empty" sentinel).

// WarehouseKey returns the key of warehouse w.
func WarehouseKey(w int) uint64 { return uint64(w) + 1 }

// DistrictKey returns the key of district d of warehouse w.
func (db *DB) DistrictKey(w, d int) uint64 {
	return uint64(w*db.Cfg.Districts+d) + 1
}

// CustomerKey returns the key of customer c in district (w, d).
func (db *DB) CustomerKey(w, d, c int) uint64 {
	return uint64((w*db.Cfg.Districts+d)*db.Cfg.Customers+c) + 1
}

// ItemKey returns the key of item i.
func ItemKey(i int) uint64 { return uint64(i) + 1 }

// StockKey returns the key of the stock row for item i at warehouse w.
func (db *DB) StockKey(w, i int) uint64 {
	return uint64(w*db.Cfg.Items+i) + 1
}

// OrderKey returns the key of order oid in district (w, d).
func (db *DB) OrderKey(w, d int, oid uint64) uint64 {
	return uint64(w*db.Cfg.Districts+d)<<40 | oid + 1
}

// OrderLineKey returns the key of line number n of an order.
func (db *DB) OrderLineKey(w, d int, oid uint64, n int) uint64 {
	return (uint64(w*db.Cfg.Districts+d)<<40|oid)<<4 | uint64(n) + 1
}

// Setup formats the heap, creates the tables, and loads the initial
// database. It must run inside transactions on an empty pool; txRun
// executes one transactional step (Setup issues several to keep
// individual transactions and their redo logs bounded).
func Setup(cfg Config, heap memdb.Heap, txRun func(fn func(memdb.Ctx) error) error) (*DB, error) {
	cfg.applyDefaults()
	db := &DB{Cfg: cfg, Heap: heap}

	if err := txRun(func(ctx memdb.Ctx) error {
		heap.Format(ctx)
		return nil
	}); err != nil {
		return nil, err
	}

	specs := []struct {
		t      *memdb.Table
		expect int
	}{
		{&db.Warehouses, cfg.Warehouses},
		{&db.Districts, cfg.Warehouses * cfg.Districts},
		{&db.Customers, cfg.Warehouses * cfg.Districts * cfg.Customers},
		{&db.Items, cfg.Items},
		{&db.Stocks, cfg.Warehouses * cfg.Items},
		{&db.Orders, cfg.MaxOrders},
		{&db.OrderLines, cfg.MaxOrders * 16},
		{&db.NewOrders, cfg.MaxOrders},
	}
	for _, sp := range specs {
		var tbl memdb.Table
		if err := txRun(func(ctx memdb.Ctx) error {
			var err error
			tbl, err = makeTable(ctx, heap, cfg.Storage, sp.expect)
			return err
		}); err != nil {
			return nil, err
		}
		*sp.t = tbl
	}

	// Load rows in batches to bound transaction size.
	if err := db.load(txRun); err != nil {
		return nil, err
	}
	return db, nil
}

// makeTable allocates a table of the configured kind sized for expect
// entries.
func makeTable(ctx memdb.Ctx, heap memdb.Heap, kind StorageKind, expect int) (memdb.Table, error) {
	if kind == HashStorage {
		buckets := uint64(4)
		for buckets < uint64(expect)*2 {
			buckets <<= 1
		}
		base, err := heap.Alloc(ctx, buckets*16)
		if err != nil {
			return nil, err
		}
		return memdb.NewHashTable(base, buckets), nil
	}
	rootPtr, err := heap.Alloc(ctx, 8)
	if err != nil {
		return nil, err
	}
	t := memdb.BPlusTree{RootPtr: rootPtr, Heap: heap}
	if err := t.Format(ctx); err != nil {
		return nil, err
	}
	return t, nil
}

func (db *DB) load(txRun func(fn func(memdb.Ctx) error) error) error {
	cfg := db.Cfg
	// Warehouses and districts.
	if err := txRun(func(ctx memdb.Ctx) error {
		for w := 0; w < cfg.Warehouses; w++ {
			row, err := db.Heap.Alloc(ctx, warehouseRowBytes)
			if err != nil {
				return err
			}
			ctx.Store(row+wTax, uint64(w%20)*10) // 0-1.9% tax
			ctx.Store(row+wYTD, 0)
			if err := db.Warehouses.Put(ctx, WarehouseKey(w), row); err != nil {
				return err
			}
			for d := 0; d < cfg.Districts; d++ {
				row, err := db.Heap.Alloc(ctx, districtRowBytes)
				if err != nil {
					return err
				}
				ctx.Store(row+dTax, uint64(d)*15)
				ctx.Store(row+dNextOID, 1)
				ctx.Store(row+dYTD, 0)
				ctx.Store(row+dDelivOID, 1)
				if err := db.Districts.Put(ctx, db.DistrictKey(w, d), row); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Items and stock, batched.
	const batch = 256
	for start := 0; start < cfg.Items; start += batch {
		end := start + batch
		if end > cfg.Items {
			end = cfg.Items
		}
		if err := txRun(func(ctx memdb.Ctx) error {
			for i := start; i < end; i++ {
				row, err := db.Heap.Alloc(ctx, 8)
				if err != nil {
					return err
				}
				ctx.Store(row+iPrice, uint64(100+i%9900)) // $1.00-$99.99
				if err := db.Items.Put(ctx, ItemKey(i), row); err != nil {
					return err
				}
				for w := 0; w < cfg.Warehouses; w++ {
					srow, err := db.Heap.Alloc(ctx, 16)
					if err != nil {
						return err
					}
					ctx.Store(srow+sQuantity, 100)
					ctx.Store(srow+sYTD, 0)
					if err := db.Stocks.Put(ctx, db.StockKey(w, i), srow); err != nil {
						return err
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	// Customers, batched.
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.Districts; d++ {
			for start := 0; start < cfg.Customers; start += batch {
				end := start + batch
				if end > cfg.Customers {
					end = cfg.Customers
				}
				w, d, start, end := w, d, start, end
				if err := txRun(func(ctx memdb.Ctx) error {
					for c := start; c < end; c++ {
						row, err := db.Heap.Alloc(ctx, customerRowBytes)
						if err != nil {
							return err
						}
						ctx.Store(row+cDiscount, uint64(c%500)) // 0-5%
						ctx.Store(row+cBalance, balBias)        // zero balance
						if err := db.Customers.Put(ctx, db.CustomerKey(w, d, c), row); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Input is one New Order request, generated outside the transaction so
// the same input can be retried and so static (NVML-style) systems can
// derive their lock sets from it.
type Input struct {
	W, D, C int
	Items   []int // item ids
	Qty     []int
}

// GenInput draws a New Order for home warehouse w.
func (db *DB) GenInput(rng *rand.Rand, w int) Input {
	cfg := db.Cfg
	n := 5 + rng.Intn(11) // 5-15 order lines per spec
	in := Input{
		W:     w,
		D:     rng.Intn(cfg.Districts),
		C:     rng.Intn(cfg.Customers),
		Items: make([]int, n),
		Qty:   make([]int, n),
	}
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		for {
			it := rng.Intn(cfg.Items)
			if !seen[it] {
				seen[it] = true
				in.Items[i] = it
				break
			}
		}
		in.Qty[i] = 1 + rng.Intn(10)
	}
	return in
}

// NewOrder executes the New Order transaction body.
func (db *DB) NewOrder(ctx memdb.Ctx, in Input) error {
	wrow, ok := db.Warehouses.Get(ctx, WarehouseKey(in.W))
	if !ok {
		panic("tpcc: missing warehouse")
	}
	wtax := ctx.Load(wrow + wTax)

	drow, ok := db.Districts.Get(ctx, db.DistrictKey(in.W, in.D))
	if !ok {
		panic("tpcc: missing district")
	}
	dtax := ctx.Load(drow + dTax)
	oid := ctx.Load(drow + dNextOID)
	ctx.Store(drow+dNextOID, oid+1)

	crow, ok := db.Customers.Get(ctx, db.CustomerKey(in.W, in.D, in.C))
	if !ok {
		panic("tpcc: missing customer")
	}
	disc := ctx.Load(crow + cDiscount)
	ctx.Store(crow+cLastOID, oid)
	ctx.Store(crow+cLastD, uint64(in.D))

	orow, err := db.Heap.Alloc(ctx, orderRowBytes)
	if err != nil {
		return err
	}
	ctx.Store(orow+oCID, uint64(in.C))
	ctx.Store(orow+oOLCnt, uint64(len(in.Items)))
	ctx.Store(orow+oEntryD, oid) // logical timestamp
	ctx.Store(orow+oCarrier, 0)  // undelivered
	if err := db.Orders.Put(ctx, db.OrderKey(in.W, in.D, oid), orow); err != nil {
		return err
	}
	if err := db.NewOrders.Put(ctx, db.OrderKey(in.W, in.D, oid), oid); err != nil {
		return err
	}

	for i, item := range in.Items {
		irow, ok := db.Items.Get(ctx, ItemKey(item))
		if !ok {
			panic("tpcc: missing item")
		}
		price := ctx.Load(irow + iPrice)

		srow, ok := db.Stocks.Get(ctx, db.StockKey(in.W, item))
		if !ok {
			panic("tpcc: missing stock")
		}
		q := ctx.Load(srow + sQuantity)
		qty := uint64(in.Qty[i])
		if q >= qty+10 {
			q -= qty
		} else {
			q = q - qty + 91
		}
		ctx.Store(srow+sQuantity, q)
		ctx.Store(srow+sYTD, ctx.Load(srow+sYTD)+qty)

		amount := qty * price
		amount = amount * (10000 + wtax + dtax) / 10000
		amount = amount * (10000 - disc) / 10000

		olrow, err := db.Heap.Alloc(ctx, orderLineRowBytes)
		if err != nil {
			return err
		}
		ctx.Store(olrow+olItem, uint64(item))
		ctx.Store(olrow+olSupply, uint64(in.W))
		ctx.Store(olrow+olQty, qty)
		ctx.Store(olrow+olAmount, amount)
		ctx.Store(olrow+olDelivD, 0)
		if err := db.OrderLines.Put(ctx, db.OrderLineKey(in.W, in.D, oid, i), olrow); err != nil {
			return err
		}
	}
	return nil
}

// NextOID reads a district's next order id (for validation in tests).
func (db *DB) NextOID(ctx memdb.Ctx, w, d int) uint64 {
	drow, ok := db.Districts.Get(ctx, db.DistrictKey(w, d))
	if !ok {
		panic("tpcc: missing district")
	}
	return ctx.Load(drow + dNextOID)
}
