package tpcc

import (
	"math/rand"

	"dudetm/internal/memdb"
)

// The paper's evaluation runs only New Order; this file implements the
// remaining TPC-C transactions (Payment, Order-Status, Delivery,
// Stock-Level) as a repository extension, exercising code paths New
// Order does not touch: read-only transactions, table deletes, and
// cross-row monetary invariants that crash-recovery tests can audit.

// Payment records a customer payment: warehouse and district YTD
// increase, the customer's balance decreases (balances are stored with
// a bias so they may go negative).
func (db *DB) Payment(ctx memdb.Ctx, w, d, c int, amount uint64) {
	wrow, ok := db.Warehouses.Get(ctx, WarehouseKey(w))
	if !ok {
		panic("tpcc: missing warehouse")
	}
	ctx.Store(wrow+wYTD, ctx.Load(wrow+wYTD)+amount)

	drow, ok := db.Districts.Get(ctx, db.DistrictKey(w, d))
	if !ok {
		panic("tpcc: missing district")
	}
	ctx.Store(drow+dYTD, ctx.Load(drow+dYTD)+amount)

	crow, ok := db.Customers.Get(ctx, db.CustomerKey(w, d, c))
	if !ok {
		panic("tpcc: missing customer")
	}
	ctx.Store(crow+cBalance, ctx.Load(crow+cBalance)-amount)
	ctx.Store(crow+cYTDPayment, ctx.Load(crow+cYTDPayment)+amount)
	ctx.Store(crow+cPaymentCnt, ctx.Load(crow+cPaymentCnt)+1)
}

// OrderStatusResult is what the read-only Order-Status transaction
// returns.
type OrderStatusResult struct {
	Balance  int64
	OrderID  uint64
	Lines    int
	Total    uint64 // sum of order-line amounts
	HasOrder bool
}

// OrderStatus reads a customer's balance and most recent order.
func (db *DB) OrderStatus(ctx memdb.Ctx, w, d, c int) OrderStatusResult {
	crow, ok := db.Customers.Get(ctx, db.CustomerKey(w, d, c))
	if !ok {
		panic("tpcc: missing customer")
	}
	res := OrderStatusResult{
		Balance: int64(ctx.Load(crow+cBalance)) - int64(balBias),
	}
	oid := ctx.Load(crow + cLastOID)
	if oid == 0 {
		return res
	}
	od := int(ctx.Load(crow + cLastD))
	orow, ok := db.Orders.Get(ctx, db.OrderKey(w, od, oid))
	if !ok {
		return res
	}
	res.HasOrder = true
	res.OrderID = oid
	cnt := int(ctx.Load(orow + oOLCnt))
	res.Lines = cnt
	for i := 0; i < cnt; i++ {
		olrow, ok := db.OrderLines.Get(ctx, db.OrderLineKey(w, od, oid, i))
		if !ok {
			panic("tpcc: missing order line")
		}
		res.Total += ctx.Load(olrow + olAmount)
	}
	return res
}

// Delivery delivers the oldest undelivered order in every district of
// warehouse w: the NEW-ORDER entry is deleted, the order gets a carrier,
// each order line a delivery timestamp, and the customer's balance
// grows by the order total. It returns the number of orders delivered.
func (db *DB) Delivery(ctx memdb.Ctx, w int, carrier uint64) int {
	delivered := 0
	for d := 0; d < db.Cfg.Districts; d++ {
		drow, ok := db.Districts.Get(ctx, db.DistrictKey(w, d))
		if !ok {
			panic("tpcc: missing district")
		}
		oid := ctx.Load(drow + dDelivOID)
		if oid >= ctx.Load(drow+dNextOID) {
			continue // nothing undelivered in this district
		}
		key := db.OrderKey(w, d, oid)
		if !db.NewOrders.Delete(ctx, key) {
			// Already delivered (shouldn't happen with the cursor), or
			// the order was never placed; advance anyway.
			ctx.Store(drow+dDelivOID, oid+1)
			continue
		}
		orow, ok := db.Orders.Get(ctx, key)
		if !ok {
			panic("tpcc: order missing for new-order entry")
		}
		ctx.Store(orow+oCarrier, carrier)
		cnt := int(ctx.Load(orow + oOLCnt))
		var total uint64
		for i := 0; i < cnt; i++ {
			olrow, ok := db.OrderLines.Get(ctx, db.OrderLineKey(w, d, oid, i))
			if !ok {
				panic("tpcc: missing order line")
			}
			ctx.Store(olrow+olDelivD, oid) // logical timestamp
			total += ctx.Load(olrow + olAmount)
		}
		c := int(ctx.Load(orow + oCID))
		crow, ok := db.Customers.Get(ctx, db.CustomerKey(w, d, c))
		if !ok {
			panic("tpcc: missing customer")
		}
		ctx.Store(crow+cBalance, ctx.Load(crow+cBalance)+total)
		ctx.Store(drow+dDelivOID, oid+1)
		delivered++
	}
	return delivered
}

// StockLevel counts, among the items of the last up-to-20 orders of a
// district, how many have stock below the threshold. Read-only.
func (db *DB) StockLevel(ctx memdb.Ctx, w, d int, threshold uint64) int {
	drow, ok := db.Districts.Get(ctx, db.DistrictKey(w, d))
	if !ok {
		panic("tpcc: missing district")
	}
	next := ctx.Load(drow + dNextOID)
	lo := uint64(1)
	if next > 21 {
		lo = next - 21
	}
	seen := map[uint64]bool{}
	low := 0
	for oid := lo; oid < next; oid++ {
		orow, ok := db.Orders.Get(ctx, db.OrderKey(w, d, oid))
		if !ok {
			continue
		}
		cnt := int(ctx.Load(orow + oOLCnt))
		for i := 0; i < cnt; i++ {
			olrow, ok := db.OrderLines.Get(ctx, db.OrderLineKey(w, d, oid, i))
			if !ok {
				continue
			}
			item := ctx.Load(olrow + olItem)
			if seen[item] {
				continue
			}
			seen[item] = true
			srow, ok := db.Stocks.Get(ctx, db.StockKey(w, int(item)))
			if !ok {
				panic("tpcc: missing stock")
			}
			if ctx.Load(srow+sQuantity) < threshold {
				low++
			}
		}
	}
	return low
}

// Balance returns a customer's signed balance (for tests).
func (db *DB) Balance(ctx memdb.Ctx, w, d, c int) int64 {
	crow, ok := db.Customers.Get(ctx, db.CustomerKey(w, d, c))
	if !ok {
		panic("tpcc: missing customer")
	}
	return int64(ctx.Load(crow+cBalance)) - int64(balBias)
}

// YTD returns warehouse and summed district year-to-date payments (for
// consistency checks: they must be equal).
func (db *DB) YTD(ctx memdb.Ctx, w int) (warehouse, districts uint64) {
	wrow, ok := db.Warehouses.Get(ctx, WarehouseKey(w))
	if !ok {
		panic("tpcc: missing warehouse")
	}
	warehouse = ctx.Load(wrow + wYTD)
	for d := 0; d < db.Cfg.Districts; d++ {
		drow, ok := db.Districts.Get(ctx, db.DistrictKey(w, d))
		if !ok {
			panic("tpcc: missing district")
		}
		districts += ctx.Load(drow + dYTD)
	}
	return warehouse, districts
}

// MixOp is one transaction of the standard TPC-C mix.
type MixOp int

// The standard mix (TPC-C §5.2.3 minimums).
const (
	OpNewOrder MixOp = iota
	OpPayment
	OpOrderStatus
	OpDelivery
	OpStockLevel
)

// GenMixOp draws a transaction type with the standard TPC-C frequencies
// (45% New Order, 43% Payment, 4% each for the rest).
func GenMixOp(rng *rand.Rand) MixOp {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return OpNewOrder
	case r < 88:
		return OpPayment
	case r < 92:
		return OpOrderStatus
	case r < 96:
		return OpDelivery
	default:
		return OpStockLevel
	}
}

// RunMix executes one randomly drawn transaction of the standard mix for
// home warehouse w and reports which type ran.
func (db *DB) RunMix(ctx memdb.Ctx, rng *rand.Rand, w int) (MixOp, error) {
	op := GenMixOp(rng)
	switch op {
	case OpNewOrder:
		return op, db.NewOrder(ctx, db.GenInput(rng, w))
	case OpPayment:
		db.Payment(ctx, w, rng.Intn(db.Cfg.Districts), rng.Intn(db.Cfg.Customers),
			uint64(100+rng.Intn(500000))) // $1 - $5000
	case OpOrderStatus:
		db.OrderStatus(ctx, w, rng.Intn(db.Cfg.Districts), rng.Intn(db.Cfg.Customers))
	case OpDelivery:
		db.Delivery(ctx, w, uint64(1+rng.Intn(10)))
	case OpStockLevel:
		db.StockLevel(ctx, w, rng.Intn(db.Cfg.Districts), uint64(10+rng.Intn(11)))
	}
	return op, nil
}
