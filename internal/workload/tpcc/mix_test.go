package tpcc

import (
	"math/rand"
	"testing"

	"dudetm/internal/memdb"
)

func TestPaymentYTDConsistency(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 64 << 20}
	db, err := Setup(smallConfig(BTreeStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var total uint64
	for i := 0; i < 300; i++ {
		w := i % db.Cfg.Warehouses
		amount := uint64(100 + rng.Intn(10000))
		db.Payment(ctx, w, rng.Intn(db.Cfg.Districts), rng.Intn(db.Cfg.Customers), amount)
		if w == 0 {
			total += amount
		}
	}
	wYTD, dYTD := db.YTD(ctx, 0)
	if wYTD != dYTD {
		t.Fatalf("warehouse YTD %d != district sum %d", wYTD, dYTD)
	}
	if wYTD != total {
		t.Fatalf("warehouse 0 YTD %d, want %d", wYTD, total)
	}
}

func TestPaymentBalanceGoesNegative(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 64 << 20}
	db, err := Setup(smallConfig(HashStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	db.Payment(ctx, 0, 0, 0, 5000)
	if got := db.Balance(ctx, 0, 0, 0); got != -5000 {
		t.Fatalf("balance = %d, want -5000", got)
	}
}

func TestOrderStatusSeesLastOrder(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 64 << 20}
	db, err := Setup(smallConfig(BTreeStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// No orders yet.
	if res := db.OrderStatus(ctx, 0, 0, 0); res.HasOrder {
		t.Fatal("phantom order")
	}
	in := db.GenInput(rng, 0)
	in.C = 5
	if err := db.NewOrder(ctx, in); err != nil {
		t.Fatal(err)
	}
	res := db.OrderStatus(ctx, in.W, in.D, in.C)
	if !res.HasOrder {
		t.Fatal("order not found")
	}
	if res.Lines != len(in.Items) {
		t.Fatalf("lines = %d, want %d", res.Lines, len(in.Items))
	}
	if res.Total == 0 {
		t.Fatal("zero total")
	}
}

func TestDeliveryLifecycle(t *testing.T) {
	for _, st := range []StorageKind{BTreeStorage, HashStorage} {
		ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
		heap := memdb.Heap{Base: 0, Size: 64 << 20}
		db, err := Setup(smallConfig(st), heap, direct(ctx))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		// Place 3 orders in district 0 of warehouse 0 for customer 7.
		var want uint64
		for i := 0; i < 3; i++ {
			in := db.GenInput(rng, 0)
			in.D = 0
			in.C = 7
			if err := db.NewOrder(ctx, in); err != nil {
				t.Fatal(err)
			}
		}
		// Deliver: the first call delivers the oldest order per district.
		n := db.Delivery(ctx, 0, 3)
		if n != 1 {
			t.Fatalf("storage %d: delivered %d orders, want 1 (one district has orders)", st, n)
		}
		res := db.OrderStatus(ctx, 0, 0, 7)
		_ = res
		// Deliver the rest.
		n = db.Delivery(ctx, 0, 3) // second oldest
		n += db.Delivery(ctx, 0, 3)
		if n != 2 {
			t.Fatalf("storage %d: delivered %d more, want 2", st, n)
		}
		// Nothing left.
		if db.Delivery(ctx, 0, 3) != 0 {
			t.Fatalf("storage %d: delivery found phantom orders", st)
		}
		// Customer balance grew by the total of their 3 orders.
		bal := db.Balance(ctx, 0, 0, 7)
		if bal <= 0 {
			t.Fatalf("storage %d: balance %d after deliveries", st, bal)
		}
		_ = want
	}
}

func TestStockLevel(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 64 << 20}
	db, err := Setup(smallConfig(BTreeStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Initially all stock is 100: nothing below 50.
	if low := db.StockLevel(ctx, 0, 0, 50); low != 0 {
		t.Fatalf("low = %d on fresh stock", low)
	}
	// Hammer orders in district 0 until some stock drains below 100.
	for i := 0; i < 30; i++ {
		in := db.GenInput(rng, 0)
		in.D = 0
		if err := db.NewOrder(ctx, in); err != nil {
			t.Fatal(err)
		}
	}
	if low := db.StockLevel(ctx, 0, 0, 100); low == 0 {
		t.Fatal("no stock below 100 after 30 orders")
	}
}

func TestRunMixDistributionAndSafety(t *testing.T) {
	ctx := &flatCtx{w: make([]uint64, (64<<20)/8)}
	heap := memdb.Heap{Base: 0, Size: 64 << 20}
	db, err := Setup(smallConfig(BTreeStorage), heap, direct(ctx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	counts := map[MixOp]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		op, err := db.RunMix(ctx, rng, i%db.Cfg.Warehouses)
		if err != nil {
			t.Fatal(err)
		}
		counts[op]++
	}
	if counts[OpNewOrder] < n*35/100 || counts[OpPayment] < n*35/100 {
		t.Fatalf("mix off: %v", counts)
	}
	for _, op := range []MixOp{OpOrderStatus, OpDelivery, OpStockLevel} {
		if counts[op] == 0 {
			t.Fatalf("mix never ran op %d: %v", op, counts)
		}
	}
	// Money consistency must hold at the end.
	for w := 0; w < db.Cfg.Warehouses; w++ {
		wy, dy := db.YTD(ctx, w)
		if wy != dy {
			t.Fatalf("warehouse %d YTD %d != district sum %d", w, wy, dy)
		}
	}
}
