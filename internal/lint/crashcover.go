package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerCrashCover keeps crash tests honest: a test function that
// simulates a power failure with Crash() must afterwards observe the
// surviving durable state — by remounting (Recover/Restore/Scan),
// snapshotting (PersistedImage/DirtyLines), or reading the device
// (Load/Load8) — otherwise the crash asserts nothing and the test
// passes vacuously no matter what the persist ordering did.
//
// Every Crash() call in a Test function (closures included) must be
// followed, in source order, by at least one verification call.
var analyzerCrashCover = &Analyzer{
	Name: "crashcover",
	Doc:  "a test that calls Crash() must verify the durable state afterwards",
	Run:  runCrashCover,
}

// crashVerifiers are exact call names accepted as post-crash
// verification; crashVerifierSubstrings additionally accept helper
// names built around a verification verb (scanAll, verifyBalances,
// checkImage, mustRecover, ...).
var (
	crashVerifiers          = []string{"Load", "Load8", "DirtyLines"}
	crashVerifierSubstrings = []string{"scan", "recover", "restore", "verify", "reopen", "persistedimage", "check", "opensnapshot", "openimage", "decode", "forensic", "report", "audit"}
)

func isCrashVerifier(name string) bool {
	if contains(crashVerifiers, name) {
		return true
	}
	lower := strings.ToLower(name)
	for _, sub := range crashVerifierSubstrings {
		if strings.Contains(lower, sub) {
			return true
		}
	}
	return false
}

func runCrashCover(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if !f.Test {
			continue
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "Test") {
				continue
			}
			checkCrashCover(pass, fn)
		}
	}
}

func checkCrashCover(pass *Pass, fn *ast.FuncDecl) {
	var crashes, verifies []token.Pos
	// Closures (t.Run subtests, helpers defined inline) run within the
	// test, so the whole body is one stream here — unlike the persist
	// analyzers, source order across a closure boundary is still the
	// order the assertions appear in the test.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		_, name := callee(call)
		switch {
		case name == "Crash":
			crashes = append(crashes, call.Pos())
		case isCrashVerifier(name):
			verifies = append(verifies, call.Pos())
		}
		return true
	})
	for _, c := range crashes {
		covered := false
		for _, v := range verifies {
			if v > c {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(c,
				"%s calls Crash() but never verifies the durable state afterwards (Restore/Recover/PersistedImage/Scan/Load): the crash asserts nothing",
				fn.Name.Name)
		}
	}
}
