package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Interprocedural layer: a module-wide call graph with per-function
// effect summaries, computed to a fixpoint. The analyzers stay
// statement-order checks over a single function body, but the event
// stream they walk now includes the summarized effects of every call
// they can resolve statically, so a flush that happens in a helper, a
// fence hidden behind AppendGroup, or an atomic publish buried in
// setDurable is no longer invisible.
//
// Summaries distinguish persist *facts* (a flush happened, a fence
// happened, an atomic publish happened) from persist *obligations* (a
// store left unflushed, a flush left unfenced). Facts always propagate
// to callers. Obligations propagate only while unsuppressed: a
// //dudelint:ignore on the offending line is a human judgment that the
// deviation is deliberate at that boundary, so it stops the obligation
// from cascading up every call chain.
//
// The pmem package itself is the substrate, not a client: its Device
// and Batch operations are classified intrinsically at call sites
// (isDeviceCall / isBatchCall) and its bodies are not summarized. Calls
// into the blackbox flight recorder contribute no persist events either
// (its split-barrier Stamp/Flush/Sync API is a documented invariant of
// its own), but its fences do count toward fence budgets.

// fenceInf is the saturation value for fence counts: a recursive cycle
// that fences on every iteration has no static worst case.
const fenceInf = 1 << 28

// lockKey names one mutex path for summary purposes. Paths are
// receiver-normalized: a method's receiver identifier is rewritten to
// "@", so (s *S) release() { s.mu.Unlock() } releases "@.mu" no matter
// what the receiver is called. Receiver-relative paths carry the
// receiver's type name, so gate.resume releasing "@.mu" does not stand
// in for table's "@.mu" — "@" means "some receiver of this type", not
// "any receiver at all".
type lockKey struct {
	path     string
	read     bool
	recvType string // receiver type name for "@"-relative paths, else ""
}

// AllocSite is one statically detectable heap allocation inside a
// function body.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// CallSite is one statically resolved call to a module function.
type CallSite struct {
	Pos token.Pos
	Key string
}

// Summary is the effect summary of one function, the unit the fixpoint
// iterates over.
type Summary struct {
	// Persist obligations (propagate only while unsuppressed).
	StoresUnflushed bool // leaves a pmem store with no covering flush
	UnfencedFlush   bool // leaves an own-batch flush with no closing fence
	// Persist facts (always propagate).
	CoveredFlush bool // performs a write-back that carries no fence obligation upward
	HasFence     bool // executes a persist barrier on some path
	Publishes    bool // performs a sync/atomic store-like operation
	// Worst-/best-case persist barriers per activation (loop bodies
	// count once; see fenceCount). Saturates at fenceInf for recursion.
	MinFences int
	MaxFences int
	// Pure lock releases: Unlock/RUnlock of a path with no prior
	// matching Lock in the same body — the Resume half of a pause gate.
	Releases []lockKey
	// Local heap-allocation sites (this body only; reachability is the
	// noalloc analyzer's job).
	Allocs []AllocSite
	// Resolved static callees, in position order.
	Calls []CallSite
}

// propagated returns the fields the fixpoint compares for convergence
// (the locally computed slices never change across rounds).
func (s Summary) propagated() [7]int {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return [7]int{b(s.StoresUnflushed), b(s.UnfencedFlush), b(s.CoveredFlush),
		b(s.HasFence), b(s.Publishes), s.MinFences, s.MaxFences}
}

// FuncInfo is one module function in the call graph.
type FuncInfo struct {
	Key  string // (*types.Func).FullName(): stable across loader views
	Pkg  *Package
	Decl *ast.FuncDecl
	Recv string // receiver identifier, "" when none
	Sum  Summary

	// Hot-path annotations (see annotations.go... parsed below).
	FenceBudget int
	HasBudget   bool
	NoAlloc     bool
}

// annotIssue is a malformed or dangling hot-path annotation, reported
// by the analyzer the annotation belongs to.
type annotIssue struct {
	pos      token.Pos
	analyzer string // "fencebudget" or "noalloc"
	msg      string
}

// Program is the whole-module view shared by every Pass of a run.
type Program struct {
	funcs   map[string]*FuncInfo
	ignores map[*ast.File]map[int][]*ignoreDirective
	issues  map[*Package][]annotIssue
}

// FuncOf resolves the FuncInfo a call statically targets, or nil for
// intrinsics (pmem), stdlib, interface dispatch, and func values.
func (prog *Program) FuncOf(pkg *Package, call *ast.CallExpr) *FuncInfo {
	if prog == nil {
		return nil
	}
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			obj = sel.Obj()
		} else if o, ok := pkg.Info.Uses[fn.Sel]; ok {
			obj = o
		}
	case *ast.Ident:
		if o, ok := pkg.Info.Uses[fn]; ok {
			obj = o
		}
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return prog.funcs[f.FullName()]
}

// funcsOf returns the program's functions declared in pkg, in file and
// position order.
func (prog *Program) funcsOf(pkg *Package) []*FuncInfo {
	var fis []*FuncInfo
	for _, f := range pkg.Files {
		for _, d := range f.AST.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fi := prog.declInfo(pkg, fd); fi != nil {
					fis = append(fis, fi)
				}
			}
		}
	}
	return fis
}

func (prog *Program) declInfo(pkg *Package, decl *ast.FuncDecl) *FuncInfo {
	obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	fi := prog.funcs[obj.FullName()]
	if fi == nil || fi.Decl != decl {
		return nil
	}
	return fi
}

// isPmemPackage reports whether pkg is the persistent-memory substrate,
// whose operations are intrinsics rather than summarized functions.
func isPmemPackage(pkg *Package) bool {
	return strings.HasSuffix(pkg.Path, "internal/pmem") || strings.TrimSuffix(pkg.Name, "_test") == "pmem"
}

// isBlackboxPackage reports whether pkg is the flight recorder, whose
// calls contribute no persist events to callers (by design its
// write-backs ride the pipeline's barriers).
func isBlackboxPackage(pkg *Package) bool {
	return strings.TrimSuffix(pkg.Name, "_test") == "blackbox"
}

// buildProgram indexes every function of pkgs (earlier packages win key
// collisions, so LoadDir views take precedence over import views),
// parses hot-path annotations, computes local summaries, and iterates
// callee-dependent facts to a fixpoint.
func buildProgram(pkgs []*Package, root string) *Program {
	prog := &Program{
		funcs:   make(map[string]*FuncInfo),
		ignores: make(map[*ast.File]map[int][]*ignoreDirective),
		issues:  make(map[*Package][]annotIssue),
	}
	var order []*FuncInfo
	seenDir := make(map[string]bool)
	for _, pkg := range pkgs {
		if isPmemPackage(pkg) {
			continue
		}
		// A directory can appear both as a LoadDir view and an import
		// view; the first (LoadDir) wins wholesale so a package's
		// functions all come from one consistent type-check.
		dirKey := pkg.Dir + "\x00" + strings.TrimSuffix(pkg.Name, "_test")
		if strings.HasSuffix(pkg.Name, "_test") {
			dirKey = pkg.Dir + "\x00" + pkg.Name
		}
		if seenDir[dirKey] {
			continue
		}
		seenDir[dirKey] = true
		for _, f := range pkg.Files {
			ig, _ := ignoresForFile(pkg.Fset, f.AST, root)
			prog.ignores[f.AST] = ig
			ann := annotationsForFile(pkg, f)
			for _, d := range f.AST.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := obj.FullName()
				if _, dup := prog.funcs[key]; dup {
					continue
				}
				fi := &FuncInfo{Key: key, Pkg: pkg, Decl: fd, Recv: recvIdent(fd)}
				ann.apply(fi)
				prog.funcs[key] = fi
				order = append(order, fi)
			}
			prog.issues[pkg] = append(prog.issues[pkg], ann.leftover()...)
		}
	}
	// Fixpoint over callee-dependent facts. Merges are monotone (bools
	// or-ed, fence counts maxed), so the iteration converges; a fence
	// count still growing once the round budget for acyclic propagation
	// is spent sits on (or downstream of) a recursive cycle that fences,
	// and is pinned to fenceInf. Converged functions keep their exact
	// counts.
	const acyclicRounds = 25
	for round := 0; round < 2*acyclicRounds; round++ {
		changed := false
		var growing []*FuncInfo
		for _, fi := range order {
			next := summarize(prog, fi)
			merged := mergeSummary(fi.Sum, next)
			if merged.propagated() != fi.Sum.propagated() {
				changed = true
			}
			if merged.MaxFences != fi.Sum.MaxFences {
				growing = append(growing, fi)
			}
			fi.Sum = merged
		}
		if !changed {
			break
		}
		if round == acyclicRounds {
			for _, fi := range growing {
				fi.Sum.MaxFences = fenceInf
			}
		}
	}
	return prog
}

func mergeSummary(old, next Summary) Summary {
	next.StoresUnflushed = next.StoresUnflushed || old.StoresUnflushed
	next.UnfencedFlush = next.UnfencedFlush || old.UnfencedFlush
	next.CoveredFlush = next.CoveredFlush || old.CoveredFlush
	next.HasFence = next.HasFence || old.HasFence
	next.Publishes = next.Publishes || old.Publishes
	if old.MinFences > next.MinFences {
		next.MinFences = old.MinFences
	}
	if old.MaxFences > next.MaxFences {
		next.MaxFences = old.MaxFences
	}
	return next
}

func recvIdent(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// summarize computes fi's summary from its body and the current
// summaries of its callees.
func summarize(prog *Program, fi *FuncInfo) Summary {
	scope := funcScope{name: fi.Decl.Name.Name, body: fi.Decl.Body, decl: fi.Decl}
	events := persistEvents(prog, fi.Pkg, scope)
	var s Summary

	ignores := prog.ignores[fileOf(fi.Pkg, fi.Decl)]
	suppressedAt := func(pos token.Pos, analyzer string) bool {
		line := fi.Pkg.Fset.Position(pos).Line
		for _, l := range []int{line, line - 1} {
			for _, ig := range ignores[l] {
				if ig.analyzers["*"] || ig.analyzers[analyzer] {
					return true
				}
			}
		}
		return false
	}

	for i, ev := range events {
		switch ev.kind {
		case pevStore:
			covered := false
			for _, later := range events[i+1:] {
				if later.kind == pevFlush || later.kind == pevCoveredFlush {
					covered = true
					break
				}
			}
			if !covered && !suppressedAt(ev.pos, "persistorder") {
				s.StoresUnflushed = true
			}
		case pevFlush:
			fenced := false
			for _, later := range events[i+1:] {
				if later.kind == pevFence {
					fenced = true
					break
				}
			}
			if fenced {
				s.CoveredFlush = true
			} else if !suppressedAt(ev.pos, "fencepair") {
				s.UnfencedFlush = true
			}
		case pevCoveredFlush:
			s.CoveredFlush = true
		case pevFence:
			s.HasFence = true
		case pevPublish:
			s.Publishes = true
		}
	}

	fc := fenceCount(prog, fi.Pkg, fi.Decl.Body)
	s.MinFences, s.MaxFences = fc.min, fc.max

	s.Releases = pureReleases(fi)
	s.Allocs = allocSites(fi.Pkg, fi.Decl.Body)
	s.Calls = callSites(prog, fi.Pkg, fi.Decl.Body)
	return s
}

func fileOf(pkg *Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range pkg.Files {
		if f.AST.FileStart <= decl.Pos() && decl.Pos() <= f.AST.FileEnd {
			return f.AST
		}
	}
	return nil
}

// pureReleases collects the unlocks of fi's body that have no prior
// matching lock — the signature of the Resume half of a pause gate.
// Paths are receiver-normalized ("s.mu" in a method with receiver s
// becomes "@.mu").
func pureReleases(fi *FuncInfo) []lockKey {
	var locks, unlocks []lockEvent
	walkScope(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := callee(call)
		if recv == nil {
			return true
		}
		path := exprPath(recv)
		if path == "" {
			return true
		}
		switch name {
		case "Lock", "RLock":
			locks = append(locks, lockEvent{call.Pos(), path, name == "RLock"})
		case "Unlock", "RUnlock":
			unlocks = append(unlocks, lockEvent{call.Pos(), path, name == "RUnlock"})
		}
		return true
	})
	var rel []lockKey
	for _, u := range unlocks {
		prior := false
		for _, l := range locks {
			if l.path == u.path && l.read == u.read && l.pos < u.pos {
				prior = true
				break
			}
		}
		if !prior {
			rel = append(rel, lockKeyFor(u.path, u.read, fi.Recv, fi.Decl))
		}
	}
	return rel
}

// lockKeyFor builds the summary key for a lock path seen inside decl:
// receiver-normalized, and type-scoped when the path goes through the
// receiver.
func lockKeyFor(path string, read bool, recv string, decl *ast.FuncDecl) lockKey {
	norm := normalizeLockPath(path, recv)
	if strings.HasPrefix(norm, "@") {
		return lockKey{norm, read, recvTypeName(decl)}
	}
	return lockKey{norm, read, ""}
}

// recvTypeName returns the name of decl's receiver type ("" for plain
// functions), unwrapping pointers and type parameters.
func recvTypeName(decl *ast.FuncDecl) string {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.ParenExpr:
			t = u.X
		case *ast.Ident:
			return u.Name
		default:
			return ""
		}
	}
}

// normalizeLockPath rewrites a leading receiver identifier to "@".
func normalizeLockPath(path, recv string) string {
	if recv == "" {
		return path
	}
	if path == recv {
		return "@"
	}
	if strings.HasPrefix(path, recv+".") {
		return "@" + path[len(recv):]
	}
	return path
}

// callSites records fi's statically resolved calls into the module.
func callSites(prog *Program, pkg *Package, body *ast.BlockStmt) []CallSite {
	var calls []CallSite
	walkScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cfi := prog.FuncOf(pkg, call); cfi != nil {
			calls = append(calls, CallSite{call.Pos(), cfi.Key})
		}
		return true
	})
	return calls
}

// --- Persist event stream -------------------------------------------

// Event kinds, in the vocabulary the persist analyzers share:
//
//	pevStore        a Device.Store/Store8 (or a callee's unflushed one)
//	pevFlush        a write-back this function must fence (own-batch
//	                Flush / FlushRange, or a callee's unfenced one)
//	pevCoveredFlush a write-back carrying no fence obligation upward: a
//	                flush into a batch owned elsewhere, a Persist's
//	                flush half, or a callee's already-fenced flush
//	pevFence        a persist barrier (Fence, Persist's fence half, or
//	                a callee's)
//	pevPublish      a sync/atomic store-like operation
//	pevEscape       a locally created batch handed to other code
//	                (flush-like evidence for the fence-pairing rule)
const (
	pevStore = iota
	pevFlush
	pevCoveredFlush
	pevFence
	pevPublish
	pevEscape
)

type pEvent struct {
	pos  token.Pos
	kind int
	via  string // callee name for call-derived events, "" for direct ops
}

// persistEvents collects scope's persist-relevant events in source
// order, expanding each statically resolved call into the events its
// summary exports. Calls into the blackbox recorder export nothing
// (its split-barrier API is checked on its own terms); pmem operations
// are matched intrinsically.
func persistEvents(prog *Program, pkg *Package, scope funcScope) []pEvent {
	local := localBatchObjs(pkg, scope)
	var events []pEvent
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDeviceCall(pkg, call, "Store", "Store8"):
			events = append(events, pEvent{call.Pos(), pevStore, ""})
		case isDeviceCall(pkg, call, "FlushRange"):
			events = append(events, pEvent{call.Pos(), pevFlush, ""})
		case isBatchCall(pkg, call, "Flush"):
			kind := pevFlush
			if isForeignBatchCall(pkg, call, local) {
				// Flushing a shard into a batch owned elsewhere: the
				// owner fences at the join barrier.
				kind = pevCoveredFlush
			}
			events = append(events, pEvent{call.Pos(), kind, ""})
		case isDeviceCall(pkg, call, "Persist"):
			// Self-contained flush+fence: covers earlier stores and
			// orders earlier flushes, imposes nothing on the caller.
			events = append(events,
				pEvent{call.Pos(), pevCoveredFlush, ""},
				pEvent{call.Pos(), pevFence, ""})
		case isDeviceCall(pkg, call, "Fence") || isBatchCall(pkg, call, "Fence"):
			events = append(events, pEvent{call.Pos(), pevFence, ""})
		case isAtomicPublish(pkg, call):
			events = append(events, pEvent{call.Pos(), pevPublish, ""})
		default:
			if cfi := prog.FuncOf(pkg, call); cfi != nil && !isBlackboxPackage(cfi.Pkg) {
				events = append(events, callEvents(cfi, call.Pos())...)
			}
		}
		return true
	})
	for _, pos := range batchEscapes(pkg, scope, local) {
		events = append(events, pEvent{pos, pevEscape, ""})
	}
	sortEvents(events)
	return events
}

// callEvents expands one resolved call into the ordered events its
// summary exports: covered flushes and fences first (the callee closed
// them itself), then trailing obligations, then publishes.
func callEvents(cfi *FuncInfo, pos token.Pos) []pEvent {
	name := cfi.Decl.Name.Name
	s := cfi.Sum
	var evs []pEvent
	if s.CoveredFlush {
		evs = append(evs, pEvent{pos, pevCoveredFlush, name})
	}
	if s.HasFence {
		evs = append(evs, pEvent{pos, pevFence, name})
	}
	if s.UnfencedFlush {
		evs = append(evs, pEvent{pos, pevFlush, name})
	}
	if s.StoresUnflushed {
		evs = append(evs, pEvent{pos, pevStore, name})
	}
	if s.Publishes {
		evs = append(evs, pEvent{pos, pevPublish, name})
	}
	return evs
}

func sortEvents(events []pEvent) {
	// Stable by position; events sharing a position (one call's
	// expansion) keep their emission order.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j-1].pos > events[j].pos; j-- {
			events[j-1], events[j] = events[j], events[j-1]
		}
	}
}

// --- Fence counting -------------------------------------------------

// fc is a (min, max) fence-count pair along the paths of a construct.
type fc struct{ min, max int }

func satAdd(a, b int) int {
	s := a + b
	if s > fenceInf {
		return fenceInf
	}
	return s
}

func fcSeq(a, b fc) fc { return fc{satAdd(a.min, b.min), satAdd(a.max, b.max)} }

func fcAlt(a, b fc) fc {
	lo, hi := a.min, a.max
	if b.min < lo {
		lo = b.min
	}
	if b.max > hi {
		hi = b.max
	}
	return fc{lo, hi}
}

// fenceCount computes the fences a single activation of body executes:
// sequential statements add, branches take the per-path min/max, and a
// loop body counts once — the budget bounds the barriers per activation
// of the body, which is the per-message cost a hot loop pays. Calls
// add the callee's summarized counts; unresolvable calls (interface
// dispatch, func values) add nothing and are the analysis boundary.
func fenceCount(prog *Program, pkg *Package, body *ast.BlockStmt) fc {
	var stmtFC func(ast.Stmt) fc
	var exprFC func(ast.Node) fc

	exprFC = func(n ast.Node) fc {
		total := fc{}
		if n == nil {
			return total
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false // a closure's fences run when it is called
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isDeviceCall(pkg, call, "Fence", "Persist") || isBatchCall(pkg, call, "Fence"):
				total = fcSeq(total, fc{1, 1})
			default:
				if cfi := prog.FuncOf(pkg, call); cfi != nil {
					total = fcSeq(total, fc{cfi.Sum.MinFences, cfi.Sum.MaxFences})
				}
			}
			return true
		})
		return total
	}

	blockFC := func(stmts []ast.Stmt) fc {
		total := fc{}
		for _, s := range stmts {
			total = fcSeq(total, stmtFC(s))
		}
		return total
	}

	stmtFC = func(s ast.Stmt) fc {
		switch s := s.(type) {
		case nil:
			return fc{}
		case *ast.BlockStmt:
			return blockFC(s.List)
		case *ast.IfStmt:
			total := fcSeq(stmtFC(s.Init), exprFC(s.Cond))
			alt := fc{}
			if s.Else != nil {
				alt = stmtFC(s.Else)
			}
			return fcSeq(total, fcAlt(stmtFC(s.Body), alt))
		case *ast.ForStmt:
			total := stmtFC(s.Init)
			once := fcSeq(fcSeq(exprFC(s.Cond), stmtFC(s.Post)), stmtFC(s.Body))
			return fcSeq(total, fc{0, once.max})
		case *ast.RangeStmt:
			total := exprFC(s.X)
			return fcSeq(total, fc{0, stmtFC(s.Body).max})
		case *ast.SwitchStmt:
			total := fcSeq(stmtFC(s.Init), exprFC(s.Tag))
			return fcSeq(total, caseAlt(s.Body, blockFC, true))
		case *ast.TypeSwitchStmt:
			total := fcSeq(stmtFC(s.Init), stmtFC(s.Assign))
			return fcSeq(total, caseAlt(s.Body, blockFC, true))
		case *ast.SelectStmt:
			return caseAlt(s.Body, blockFC, false)
		case *ast.LabeledStmt:
			return stmtFC(s.Stmt)
		default:
			// Leaf statements (expressions, assignments, returns, defers,
			// go, sends, declarations) hold no nested statements outside
			// FuncLits; count every call they evaluate. A defer's call
			// runs at exit but still within this activation; a go
			// statement's fences are charged here conservatively.
			return exprFC(s)
		}
	}

	return blockFC(body.List)
}

// caseAlt folds the min/max over a switch/select clause list. withDflt
// adds an implicit empty path when no default clause exists.
func caseAlt(body *ast.BlockStmt, blockFC func([]ast.Stmt) fc, withDflt bool) fc {
	var alts []fc
	hasDefault := false
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			alts = append(alts, blockFC(c.Body))
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			cl := fc{}
			if c.Comm != nil {
				// The communication op itself cannot fence, but its
				// operands may contain calls.
				cl = blockFC([]ast.Stmt{c.Comm})
			}
			alts = append(alts, fcSeq(cl, blockFC(c.Body)))
		}
	}
	if len(alts) == 0 {
		return fc{}
	}
	total := alts[0]
	for _, a := range alts[1:] {
		total = fcAlt(total, a)
	}
	if withDflt && !hasDefault {
		total = fcAlt(total, fc{})
	}
	return total
}

// --- Hot-path annotations -------------------------------------------

const (
	budgetPrefix  = "//dudelint:fencebudget"
	noallocPrefix = "//dudelint:noalloc"
)

type annotation struct {
	pos      token.Pos
	line     int
	analyzer string
	budget   int
	bad      string // malformed-directive message, "" when well-formed
	attached bool
}

type fileAnnotations struct {
	pkg  *Package
	anns []*annotation
}

// annotationsForFile parses every fencebudget/noalloc directive in f.
func annotationsForFile(pkg *Package, f *File) *fileAnnotations {
	fa := &fileAnnotations{pkg: pkg}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			var a *annotation
			switch {
			case strings.HasPrefix(c.Text, budgetPrefix):
				a = &annotation{pos: c.Pos(), analyzer: "fencebudget"}
				rest := strings.Fields(strings.TrimPrefix(c.Text, budgetPrefix))
				if len(rest) != 1 {
					a.bad = "malformed fence budget (want //dudelint:fencebudget <N>)"
				} else if n, err := strconv.Atoi(rest[0]); err != nil || n < 0 {
					a.bad = fmt.Sprintf("malformed fence budget %q (want a non-negative integer)", rest[0])
				} else {
					a.budget = n
				}
			case strings.HasPrefix(c.Text, noallocPrefix):
				a = &annotation{pos: c.Pos(), analyzer: "noalloc"}
				if rest := strings.TrimPrefix(c.Text, noallocPrefix); strings.TrimSpace(rest) != "" {
					a.bad = "malformed noalloc annotation (want a bare //dudelint:noalloc)"
				}
			default:
				continue
			}
			a.line = pkg.Fset.Position(a.pos).Line
			fa.anns = append(fa.anns, a)
		}
	}
	return fa
}

// apply attaches the directives written in fi's doc comment (or on any
// line between the doc comment and the func keyword) to fi.
func (fa *fileAnnotations) apply(fi *FuncInfo) {
	if fa == nil || len(fa.anns) == 0 {
		return
	}
	start := fa.pkg.Fset.Position(fi.Decl.Pos()).Line
	if fi.Decl.Doc != nil {
		start = fa.pkg.Fset.Position(fi.Decl.Doc.Pos()).Line
	}
	end := fa.pkg.Fset.Position(fi.Decl.Pos()).Line
	for _, a := range fa.anns {
		if a.line < start || a.line > end {
			continue
		}
		a.attached = true
		if a.bad != "" {
			continue
		}
		switch a.analyzer {
		case "fencebudget":
			fi.FenceBudget = a.budget
			fi.HasBudget = true
		case "noalloc":
			fi.NoAlloc = true
		}
	}
}

// leftover returns the issues to report: malformed directives and
// directives attached to no function declaration.
func (fa *fileAnnotations) leftover() []annotIssue {
	var issues []annotIssue
	for _, a := range fa.anns {
		switch {
		case a.bad != "":
			issues = append(issues, annotIssue{a.pos, a.analyzer, a.bad})
		case !a.attached:
			issues = append(issues, annotIssue{a.pos, a.analyzer,
				fmt.Sprintf("//dudelint:%s directive is attached to no function declaration", a.analyzer)})
		}
	}
	return issues
}
