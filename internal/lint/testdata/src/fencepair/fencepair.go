// Package fencepair is dudelint analyzer testdata: flush/fence pairing
// positives and negatives. Never built by the go tool.
package fencepair

import "dudetm/internal/pmem"

// bad1: a fence with nothing flushed is a wasted barrier.
func bad1(dev *pmem.Device) {
	dev.Fence(0) // want: no preceding flush
}

// bad2: a flush that is never fenced is not durable.
func bad2(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 64) // want: never followed by a fence
}

// good1: flush then fence.
func good1(dev *pmem.Device, addr uint64) {
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
}

// good2: Persist is a self-contained flush+fence.
func good2(dev *pmem.Device, addr uint64) {
	dev.Persist(addr, 64)
}

// good3: batched flushes in a loop ordered by one fence.
func good3(dev *pmem.Device, addrs []uint64) {
	b := dev.NewBatch()
	for _, a := range addrs {
		b.Flush(a, 8)
	}
	b.Fence()
}
