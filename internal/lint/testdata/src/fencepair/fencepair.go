// Package fencepair is dudelint analyzer testdata: flush/fence pairing
// positives and negatives. Never built by the go tool.
package fencepair

import "dudetm/internal/pmem"

// bad1: a fence with nothing flushed is a wasted barrier.
func bad1(dev *pmem.Device) {
	dev.Fence(0) // want: no preceding flush
}

// bad2: a flush that is never fenced is not durable.
func bad2(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 64) // want: never followed by a fence
}

// good1: flush then fence.
func good1(dev *pmem.Device, addr uint64) {
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
}

// good2: Persist is a self-contained flush+fence.
func good2(dev *pmem.Device, addr uint64) {
	dev.Persist(addr, 64)
}

// good3: batched flushes in a loop ordered by one fence.
func good3(dev *pmem.Device, addrs []uint64) {
	b := dev.NewBatch()
	for _, a := range addrs {
		b.Flush(a, 8)
	}
	b.Fence()
}

// shardTask models the sharded Reproduce apply path: the ordering loop
// owns the batch; appliers flush their address shard into it.
type shardTask struct {
	b *pmem.Batch
}

// good4: flushing into a batch received from its owner (struct field) —
// the fence is the owner's duty at the join barrier, not this
// function's.
func good4(t shardTask, addrs []uint64) {
	for _, a := range addrs {
		t.b.Flush(a, 8)
	}
}

// good5: a batch parameter is likewise owned by the caller.
func good5(b *pmem.Batch, addr uint64) {
	b.Flush(addr, 8)
}

// good6: the owner's side of the sharded path — the locally created
// batch escapes to the appliers (composite literal, channel send), so
// the post-join fence orders their flushes and is not a wasted barrier.
func good6(dev *pmem.Device, ch chan shardTask) {
	b := dev.NewBatch()
	ch <- shardTask{b: b}
	b.Fence()
}

// bad3: creating a batch, flushing it and never fencing is still wrong —
// ownership does not waive the owner's pairing duty.
func bad3(dev *pmem.Device, addr uint64) {
	b := dev.NewBatch()
	b.Flush(addr, 8) // want: never followed by a fence
}
