// Package fencepair is dudelint analyzer testdata: flush/fence pairing
// positives and negatives. Never built by the go tool.
package fencepair

import "dudetm/internal/pmem"

// bad1: a fence with nothing flushed is a wasted barrier.
func bad1(dev *pmem.Device) {
	dev.Fence(0) // want: no preceding flush
}

// bad2: a flush that is never fenced is not durable.
func bad2(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 64) // want: never followed by a fence
}

// good1: flush then fence.
func good1(dev *pmem.Device, addr uint64) {
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
}

// good2: Persist is a self-contained flush+fence.
func good2(dev *pmem.Device, addr uint64) {
	dev.Persist(addr, 64)
}

// good3: batched flushes in a loop ordered by one fence.
func good3(dev *pmem.Device, addrs []uint64) {
	b := dev.NewBatch()
	for _, a := range addrs {
		b.Flush(a, 8)
	}
	b.Fence()
}

// shardTask models the sharded Reproduce apply path: the ordering loop
// owns the batch; appliers flush their address shard into it.
type shardTask struct {
	b *pmem.Batch
}

// good4: flushing into a batch received from its owner (struct field) —
// the fence is the owner's duty at the join barrier, not this
// function's.
func good4(t shardTask, addrs []uint64) {
	for _, a := range addrs {
		t.b.Flush(a, 8)
	}
}

// good5: a batch parameter is likewise owned by the caller.
func good5(b *pmem.Batch, addr uint64) {
	b.Flush(addr, 8)
}

// good6: the owner's side of the sharded path — the locally created
// batch escapes to the appliers (composite literal, channel send), so
// the post-join fence orders their flushes and is not a wasted barrier.
func good6(dev *pmem.Device, ch chan shardTask) {
	b := dev.NewBatch()
	ch <- shardTask{b: b}
	b.Fence()
}

// bad3: creating a batch, flushing it and never fencing is still wrong —
// ownership does not waive the owner's pairing duty.
func bad3(dev *pmem.Device, addr uint64) {
	b := dev.NewBatch()
	b.Flush(addr, 8) // want: never followed by a fence
}

// --- Interprocedural cases ------------------------------------------

// fenceOnlyHelper performs the closing barrier for its callers; in
// isolation the fence orders nothing, so it is flagged here exactly as
// its message suggests.
func fenceOnlyHelper(dev *pmem.Device) {
	dev.Fence(0) // want: no preceding flush
}

// good7: the helper's fence closes this function's flush.
func good7(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 64)
	fenceOnlyHelper(dev)
}

// selfContainedHelper flushes and fences on its own.
func selfContainedHelper(dev *pmem.Device, addr uint64) {
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
}

// good8: a self-contained callee neither wastes nor demands a barrier
// at the call site.
func good8(dev *pmem.Device, addr uint64) {
	selfContainedHelper(dev, addr)
}

// unfencedFlushHelper leaves its flush unfenced: flagged here, and the
// obligation propagates.
func unfencedFlushHelper(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 64) // want: never followed by a fence
}

// bad4: the helper's trailing flush becomes this function's obligation,
// reported at the call.
func bad4(dev *pmem.Device, addr uint64) {
	unfencedFlushHelper(dev, addr) // want: call leaves an unfenced flush
}

// good9: the caller fences the helper's trailing flush.
func good9(dev *pmem.Device, addr uint64) {
	unfencedFlushHelper(dev, addr)
	dev.Fence(0)
}
