// Package unlockpath is dudelint analyzer testdata: lock/unlock path
// positives and negatives. Never built by the go tool.
package unlockpath

import "sync"

type table struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	stripes []sync.Mutex
	m       map[uint64]uint64
}

// bad: the not-found return path skips the unlock.
func (t *table) bad(k uint64) (uint64, bool) {
	t.mu.Lock() // want: return path has no matching Unlock
	v, ok := t.m[k]
	if !ok {
		return 0, false
	}
	t.mu.Unlock()
	return v, true
}

// goodDefer: a deferred unlock covers every path.
func (t *table) goodDefer(k uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// goodDeferClosure: an unlock inside a deferred closure also counts.
func (t *table) goodDeferClosure(k uint64) uint64 {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
	return t.m[k]
}

// goodStraight: explicit unlock before the function ends.
func (t *table) goodStraight(k, v uint64) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

// goodStriped: indices are normalized, so stripe i pairs with stripe j.
func (t *table) goodStriped(i, j int) {
	t.stripes[i].Lock()
	t.stripes[j].Unlock()
}

// goodRead: RLock pairs with a deferred RUnlock.
func (t *table) goodRead(k uint64) uint64 {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// badRead: a write Unlock does not release a read lock.
func (t *table) badRead(k uint64) uint64 {
	t.rw.RLock() // want: no matching RUnlock
	v := t.m[k]
	t.rw.Unlock()
	return v
}

// --- Pause-gate cases -----------------------------------------------

// gate models the pause/resume pattern: pause leaks the lock that the
// sibling releaser owns.
type gate struct {
	mu sync.Mutex
}

// goodPause holds the gate across the function boundary on purpose.
// The existence of resume — a pure releaser of the same path in the
// same directory — exempts the leak, with no suppression directive.
func (g *gate) goodPause() {
	g.mu.Lock()
}

// resume is the pure releaser that legitimizes goodPause.
func (g *gate) resume() {
	g.mu.Unlock()
}

// goodDeferRelease: a deferred call to the pure releaser counts as the
// deferred unlock.
func (g *gate) goodDeferRelease() {
	g.mu.Lock()
	defer g.resume()
}
