// Package fencebudget is dudelint analyzer testdata: fence-budget
// positives and negatives. Never built by the go tool.
package fencebudget

import "dudetm/internal/pmem"

// bad1 declares a zero-fence path and then fences.
//
//dudelint:fencebudget 0
func bad1(dev *pmem.Device) { // want: exceeds its fence budget
	dev.Fence(0)
}

// twoBarriers is an unannotated helper whose worst case is two persist
// barriers (Persist is a self-contained flush+fence).
func twoBarriers(dev *pmem.Device, a, b uint64) {
	dev.Persist(a, 64)
	dev.Persist(b, 64)
}

// bad2 exceeds its budget only through a transitive call: nothing in
// its own body fences.
//
//dudelint:fencebudget 1
func bad2(dev *pmem.Device, a, b uint64) { // want: worst-case 2 via the call
	twoBarriers(dev, a, b)
}

// bad3: branches take the costliest path, so the else arm's two fences
// bust a budget of one.
//
//dudelint:fencebudget 1
func bad3(dev *pmem.Device, cold bool, a uint64) { // want: worst-case 2
	if cold {
		dev.Persist(a, 8)
	} else {
		dev.Fence(0)
		dev.Fence(0)
	}
}

// pingFence and pong are a recursive cycle that fences on every
// iteration: no static worst case exists.
func pingFence(dev *pmem.Device, n int) {
	dev.Fence(0)
	pong(dev, n)
}

func pong(dev *pmem.Device, n int) {
	if n > 0 {
		pingFence(dev, n-1)
	}
}

// bad4 sits on the cycle, so its worst case is unbounded.
//
//dudelint:fencebudget 3
func bad4(dev *pmem.Device, n int) { // want: unbounded
	pingFence(dev, n)
}

// good1 is the batched-barrier shape the budget exists to protect: many
// flushes in a loop, one fence per activation.
//
//dudelint:fencebudget 1
func good1(dev *pmem.Device, addrs []uint64) {
	b := dev.NewBatch()
	for _, a := range addrs {
		b.Flush(a, 8)
	}
	b.Fence()
}

// good2: a loop body counts once — the budget bounds the barriers per
// activation of the body, the per-message cost.
//
//dudelint:fencebudget 1
func good2(dev *pmem.Device, addrs []uint64) {
	for _, a := range addrs {
		dev.Persist(a, 8)
	}
}

// good3 stays within budget through the same transitive reasoning that
// condemns bad2.
//
//dudelint:fencebudget 2
func good3(dev *pmem.Device, a, b uint64) {
	twoBarriers(dev, a, b)
}

//dudelint:fencebudget two
func badDirective(dev *pmem.Device) { // the directive is malformed, not the function
	_ = dev
}

//dudelint:fencebudget 1

// The blank line above detaches the directive from any declaration.
var dangling = 0
