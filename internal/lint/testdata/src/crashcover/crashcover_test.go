// Package crashcover is dudelint analyzer testdata: crash-coverage
// positives and negatives. Never built or run by the go tool.
package crashcover

import (
	"testing"

	"dudetm/internal/pmem"
)

func newDev() *pmem.Device { return pmem.New(pmem.Config{Size: 4096}) }

// TestBad crashes and then asserts nothing about the durable state.
func TestBad(t *testing.T) {
	d := newDev()
	d.Store8(0, 7)
	d.Crash() // want: never verifies the durable state
}

// TestGood reads the device back after the crash.
func TestGood(t *testing.T) {
	d := newDev()
	d.Store8(0, 7)
	d.Persist(0, 8)
	d.Crash()
	if d.Load8(0) != 7 {
		t.Fatal("persisted store lost")
	}
}

// TestGoodHelper verifies through a named verification helper.
func TestGoodHelper(t *testing.T) {
	d := newDev()
	d.Crash()
	verifyEmpty(t, d)
}

func verifyEmpty(t *testing.T, d *pmem.Device) {
	t.Helper()
	if d.DirtyLines() != 0 {
		t.Fatal("dirty lines survived crash")
	}
}

// TestGoodForensics verifies through the flight-recorder forensics
// path: decoding the surviving ring and auditing the report reads the
// durable state back, so the crash asserts something.
func TestGoodForensics(t *testing.T) {
	d := newDev()
	d.Store8(0, 7)
	d.Persist(0, 8)
	d.Crash()
	auditReport(t, d)
}

func auditReport(t *testing.T, d *pmem.Device) {
	t.Helper()
	if d.Load8(0) != 7 {
		t.Fatal("durable store lost")
	}
}
