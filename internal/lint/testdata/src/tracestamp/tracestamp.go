// Package tracestamp is dudelint analyzer testdata: trace stamps
// inside and outside persist-ordered flush→fence windows. Never built
// by the go tool.
package tracestamp

import (
	"dudetm/internal/obs"
	"dudetm/internal/pmem"
)

// bad1: a clock read between flush and fence brackets only part of the
// barrier — the recorded fence latency excludes the fence itself.
func bad1(dev *pmem.Device, o *obs.Observer, addr uint64) int64 {
	n := dev.FlushRange(addr, 64)
	at := o.Now() // want: inside an open flush->fence window
	dev.Fence(n)
	return at
}

// bad2: stamping a group persisted before its fence publishes a
// durability record for data the barrier has not ordered yet.
func bad2(dev *pmem.Device, o *obs.Observer, addr uint64, sealAt int64) {
	n := dev.FlushRange(addr, 64)
	o.GroupPersisted(0, 1, 4, sealAt, sealAt, sealAt) // want: inside an open flush->fence window
	dev.Fence(n)
}

// bad3: batch windows count too.
func bad3(dev *pmem.Device, o *obs.Observer, addrs []uint64) {
	b := dev.NewBatch()
	for _, a := range addrs {
		b.Flush(a, 8)
	}
	o.Commit(0, 7) // want: inside an open flush->fence window
	b.Fence()
}

// good1: stamps bracketing the window measure the whole barrier.
func good1(dev *pmem.Device, o *obs.Observer, addr uint64) int64 {
	start := o.Now()
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
	end := o.Now()
	return end - start
}

// good2: a stamp after the closing fence records ordered data.
func good2(dev *pmem.Device, o *obs.Observer, addr uint64, sealAt int64) {
	n := dev.FlushRange(addr, 64)
	dev.Fence(n)
	o.GroupPersisted(0, 1, 4, sealAt, sealAt, sealAt)
	o.DurableAdvanced(4)
}

// good3: stamps in a function with no persist window at all.
func good3(o *obs.Observer) {
	o.Commit(0, 1)
	o.GroupApplied(0, 1, 1)
	o.ReproducedAdvanced(1)
}

// good4: a second window reopens the rule; the stamp between windows
// is fine.
func good4(dev *pmem.Device, o *obs.Observer, a, b uint64) {
	n := dev.FlushRange(a, 64)
	dev.Fence(n)
	o.GroupSealed(0, 1, 2, 2, 4)
	m := dev.FlushRange(b, 64)
	dev.Fence(m)
}

// good5: non-stamp observer reads (Sampled, SampleEvery) are not
// stamps and may appear anywhere.
func good5(dev *pmem.Device, o *obs.Observer, addr uint64) {
	n := dev.FlushRange(addr, 64)
	if o.Sampled(9) {
		_ = o.SampleEvery()
	}
	dev.Fence(n)
}
