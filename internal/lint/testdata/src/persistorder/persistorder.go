// Package persistorder is dudelint analyzer testdata: persist-ordering
// positives and negatives. It lives under testdata so the go tool never
// builds it; only the lint loader type-checks it.
package persistorder

import (
	"sync/atomic"

	"dudetm/internal/pmem"
)

type region struct {
	dev     *pmem.Device
	durable atomic.Uint64
}

// bad1: the store is never flushed before the function returns.
func (r *region) bad1(addr, val uint64) {
	r.dev.Store8(addr, val) // want: never covered by a flush
}

// bad2: the durable ID is published before the data is flushed.
func (r *region) bad2(addr, val uint64) {
	r.dev.Store8(addr, val) // want: published before flushed
	r.durable.Store(val)
	r.dev.Persist(addr, 8)
}

// good1: store then persist.
func (r *region) good1(addr, val uint64) {
	r.dev.Store8(addr, val)
	r.dev.Persist(addr, 8)
}

// good2: store, batch flush+fence, then publish — the legal ordering.
func (r *region) good2(addr uint64, buf []byte) {
	b := r.dev.NewBatch()
	r.dev.Store(addr, buf)
	b.Flush(addr, uint64(len(buf)))
	b.Fence()
	r.durable.Store(addr)
}

// volatileMap has a Store method that is not a persistent store; the
// analyzer must not flag non-device receivers.
type volatileMap map[uint64]uint64

func (m volatileMap) Store(k, v uint64) { m[k] = v }

// good3: a store through a volatile type needs no flush.
func good3(m volatileMap) { m.Store(1, 2) }

// applyTask models one address shard of the sharded Reproduce path:
// an applier stores its shard and flushes into the owner's shared
// batch; the owner fences at the join barrier.
type applyTask struct {
	b *pmem.Batch
}

// good4: the sharded applier — per-shard flushes into the foreign batch
// cover the stores; no suppression needed.
func (r *region) good4(t applyTask, addrs []uint64) {
	for _, a := range addrs {
		r.dev.Store8(a, 1)
	}
	for _, a := range addrs {
		t.b.Flush(a, 8)
	}
}

// bad3: an applier that atomically publishes completion before flushing
// its shard defeats the join barrier — the owner would fence and
// advance the replay frontier over unflushed data.
func (r *region) bad3(t applyTask, done *atomic.Uint64, addrs []uint64) {
	for _, a := range addrs {
		r.dev.Store8(a, 1) // want: published before flushed
	}
	done.Add(1)
	for _, a := range addrs {
		t.b.Flush(a, 8)
	}
}

// --- Interprocedural cases ------------------------------------------

// persistHelper performs the flush+fence for its caller.
func persistHelper(dev *pmem.Device, addr uint64) {
	dev.Persist(addr, 8)
}

// good5: the covering flush lives in a helper — the callee's summary
// covers the store, no suppression needed.
func (r *region) good5(addr, val uint64) {
	r.dev.Store8(addr, val)
	persistHelper(r.dev, addr)
}

// storeHelper leaves its store unflushed: flagged here, and the
// obligation propagates to callers that do not flush.
func storeHelper(dev *pmem.Device, addr, val uint64) {
	dev.Store8(addr, val) // want: never covered by a flush
}

// bad4: the helper's unflushed store surfaces at the call site.
func (r *region) bad4(addr, val uint64) {
	storeHelper(r.dev, addr, val) // want: left unflushed by the call
}

// good6: the caller covers the helper's store, so the obligation
// dissolves here.
func (r *region) good6(addr, val uint64) {
	storeHelper(r.dev, addr, val)
	r.dev.Persist(addr, 8)
}

// publishHelper atomically advances the durable marker.
func publishHelper(r *region, val uint64) {
	r.durable.Store(val)
}

// bad5: the publish is hidden in a helper but still lands between the
// store and its flush.
func (r *region) bad5(addr, val uint64) {
	r.dev.Store8(addr, val) // want: published before flushed
	publishHelper(r, val)
	r.dev.Persist(addr, 8)
}
