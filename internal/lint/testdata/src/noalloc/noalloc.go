// Package noalloc is dudelint analyzer testdata: zero-allocation-path
// positives and negatives. Never built by the go tool.
package noalloc

import "fmt"

type record struct {
	seq uint64
	val uint64
}

// bad1 hits the builtin allocators.
//
//dudelint:noalloc
func bad1(n int) []byte {
	buf := make([]byte, n) // want: make
	p := new(record)       // want: new
	p.seq = 1
	return append(buf, 0) // want: append
}

// bad2 hits literal and conversion allocations.
//
//dudelint:noalloc
func bad2(s string) int {
	r := &record{seq: 1}   // want: &composite literal
	xs := []int{1, 2, 3}   // want: slice literal
	m := map[int]int{1: 2} // want: map literal
	b := []byte(s)         // want: conversion copies
	return int(r.seq) + xs[0] + m[1] + len(b)
}

// bad3 hits formatting, concatenation, and closures.
//
//dudelint:noalloc
func bad3(name string) string {
	msg := fmt.Sprintf("hello %s", name) // want: fmt call
	msg = msg + name                     // want: string concatenation
	f := func() string { return msg }    // want: closure value
	return f()
}

// variadicSum exists to be called variadically.
func variadicSum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// box exists to force interface boxing at its call boundary.
func box(v interface{}) bool { return v != nil }

// bad4 hits call-boundary allocations: variadic packing, interface
// boxing, and the goroutine spawn.
//
//dudelint:noalloc
func bad4(a, b int) int {
	s := variadicSum(a, b) // want: variadic packing
	if box(a) {            // want: boxing of a
		s++
	}
	go clean(s) // want: go statement
	return s
}

// leafAlloc is two hops down from bad5; only its first allocation is
// the witness.
func leafAlloc(n int) []int {
	return make([]int, n)
}

// midHop is allocation-free itself but reaches leafAlloc.
func midHop(n int) int {
	return len(leafAlloc(n))
}

// bad5 allocates nothing locally: the diagnostic lands on the call and
// names the chain to the witness.
//
//dudelint:noalloc
func bad5(n int) int {
	return midHop(n) // want: reaches make via midHop → leafAlloc
}

// clean is a genuinely allocation-free helper: arithmetic, array (not
// slice) storage, and fixed-size loops.
func clean(x int) uint64 {
	var buf [8]uint64
	for i := range buf {
		buf[i] = uint64(x + i)
	}
	h := uint64(0)
	for _, v := range buf {
		h = h*31 + v
	}
	return h
}

// good1 proves the negative: annotated, calls through a clean helper,
// and emits no diagnostic.
//
//dudelint:noalloc
func good1(x int) uint64 {
	h := clean(x)
	h ^= h >> 7
	return h
}

//dudelint:noalloc because it is hot
func badDirective(x int) int { // the directive is malformed, not the function
	return x + 1
}
