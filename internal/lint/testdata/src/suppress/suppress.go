// Package suppress is dudelint testdata for the //dudelint:ignore
// machinery. Never built by the go tool.
package suppress

import "dudetm/internal/pmem"

// suppressed: a justified ignore on the line above silences the finding.
func suppressed(dev *pmem.Device, addr, val uint64) {
	//dudelint:ignore persistorder durability is the caller's job in this fixture
	dev.Store8(addr, val)
}

// trailing: a justified ignore on the same line silences the finding.
func trailing(dev *pmem.Device, addr uint64) {
	dev.FlushRange(addr, 8) //dudelint:ignore fencepair fenced by the caller in this fixture
}

// unsuppressed: an ignore naming a different analyzer does not apply.
func unsuppressed(dev *pmem.Device, addr, val uint64) {
	//dudelint:ignore fencepair wrong analyzer on purpose
	dev.Store8(addr, val)
}

// noReason: a directive without a justification is itself flagged and
// suppresses nothing.
func noReason(dev *pmem.Device, addr, val uint64) {
	//dudelint:ignore persistorder
	dev.Store8(addr, val)
}

// unknown: a directive naming an unknown analyzer is itself flagged.
func unknown(dev *pmem.Device, addr, val uint64) {
	//dudelint:ignore nosuchcheck because reasons
	dev.Store8(addr, val)
}
