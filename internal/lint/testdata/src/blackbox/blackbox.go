// Package blackbox is dudelint analyzer testdata mirroring the
// internal/obs/blackbox flight recorder's batched-barrier API: Stamp
// stores a slot without flushing it, Flush writes pending slots back
// without a fence, and Sync fences without a visible flush. The
// persistorder and fencepair analyzers exempt the package (it is a
// persistence substrate, like pmem), so the expected diagnostic list
// is empty. Never built by the go tool.
package blackbox

import (
	"sync"

	"dudetm/internal/pmem"
)

type recorder struct {
	dev     *pmem.Device
	base    uint64
	entries uint64

	mu        sync.Mutex
	seq       uint64
	flushed   uint64
	pendBytes uint64
}

// stamp stores a slot that a later flush writes back: persistorder
// would flag the uncovered store anywhere else.
func (r *recorder) stamp(val uint64) {
	r.mu.Lock()
	r.dev.Store8(r.base+(r.seq%r.entries)*64, val)
	r.seq++
	r.mu.Unlock()
}

// flush writes pending slots back with no fence: fencepair would flag
// the unordered write-back anywhere else.
func (r *recorder) flush() {
	r.mu.Lock()
	for s := r.flushed; s < r.seq; s++ {
		r.pendBytes += r.dev.FlushRange(r.base+(s%r.entries)*64, 64)
	}
	r.flushed = r.seq
	r.mu.Unlock()
}

// sync fences flushes issued by earlier calls: fencepair would flag
// the fence with no preceding flush anywhere else.
func (r *recorder) sync() {
	r.mu.Lock()
	bytes := r.pendBytes
	r.pendBytes = 0
	r.mu.Unlock()
	r.dev.Fence(bytes)
}
