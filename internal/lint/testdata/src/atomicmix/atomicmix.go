// Package atomicmix is dudelint analyzer testdata: mixed atomic/plain
// access positives and negatives. Never built by the go tool.
package atomicmix

import "sync/atomic"

type counter struct {
	hits  uint64
	cold  uint64
	slots []uint32
}

// newCounter initializes slots in a composite literal; pre-publication
// initialization is not a plain access.
func newCounter(n int) *counter {
	return &counter{slots: make([]uint32, n)}
}

func (c *counter) inc() {
	atomic.AddUint64(&c.hits, 1)
	atomic.OrUint32(&c.slots[0], 1)
}

// bad: plain read of an atomically updated field.
func (c *counter) bad() uint64 {
	return c.hits // want: data race
}

// badWrite: plain write through an atomically updated slice field.
func (c *counter) badWrite() {
	c.slots[1] = 0 // want: data race
}

// good: cold is only ever accessed plainly.
func (c *counter) good() uint64 {
	c.cold++
	return c.cold
}

// goodAtomic: atomic access everywhere is consistent.
func (c *counter) goodAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}
