package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file of a package under analysis.
type File struct {
	AST  *ast.File
	Path string // absolute path
	Test bool   // *_test.go
}

// Package is a type-checked unit handed to analyzers. For a directory
// with both in-package and external (foo_test) test files, the loader
// produces two Packages sharing the same Dir.
type Package struct {
	Name string // package name as written in the source
	Path string // import path ("dudetm/internal/pmem") or a synthetic one
	Dir  string
	Fset *token.FileSet

	Files []*File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module without
// go/packages: module-local imports are resolved recursively from
// source, stdlib imports through the go/importer source importer, and
// anything unresolvable degrades to an empty stub package so analysis
// still runs with partial type information.
type Loader struct {
	Root    string // module root (directory containing go.mod)
	ModPath string
	Fset    *token.FileSet

	// Warnings collects non-fatal load problems (stubbed imports,
	// type-check errors). Analysis proceeds regardless.
	Warnings []string

	src     types.Importer
	imports map[string]*types.Package // import-view cache (no test files)
	locals  map[string]*Package       // retained import-view Packages (ASTs + Info)
	loading map[string]bool
}

// LocalPackages returns the module-local packages the loader pulled in
// as imports (parsed without test files), in deterministic path order.
// Together with the packages returned by LoadDir they give the summary
// builder a whole-module view even when only a subset of directories is
// being linted.
func (l *Loader) LocalPackages() []*Package {
	paths := make([]string, 0, len(l.locals))
	for p := range l.locals {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkgs = append(pkgs, l.locals[p])
	}
	return pkgs
}

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		ModPath: mod,
		Fset:    fset,
		src:     importer.ForCompiler(fset, "source", nil),
		imports: make(map[string]*types.Package),
		locals:  make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// ModuleDirs lists every directory under the module root containing .go
// files, excluding testdata, vendor, and hidden directories.
func (l *Loader) ModuleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadDir parses and type-checks the package(s) in dir, including test
// files: the primary package (with in-package tests merged) and, if
// present, the external _test package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Split into units by package name; the external test package (name
	// ending in _test) is checked separately from the primary one.
	units := make(map[string][]*File)
	var names []string
	for _, f := range files {
		n := f.AST.Name.Name
		if _, ok := units[n]; !ok {
			names = append(names, n)
		}
		units[n] = append(units[n], f)
	}
	sort.Strings(names)
	importPath := l.importPathFor(dir)
	var pkgs []*Package
	for _, n := range names {
		path := importPath
		if strings.HasSuffix(n, "_test") {
			path += "_test"
		}
		pkgs = append(pkgs, l.check(n, path, dir, units[n]))
	}
	return pkgs, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lint.local/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

func (l *Loader) parseDir(dir string, tests bool) ([]*File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !tests {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, &File{AST: f, Path: path, Test: isTest})
	}
	return files, nil
}

// check type-checks one unit tolerantly: type errors are recorded as
// warnings and analysis proceeds with whatever information resolved.
func (l *Loader) check(name, path, dir string, files []*File) *Package {
	asts := make([]*ast.File, len(files))
	for i, f := range files {
		asts[i] = f.AST
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			l.Warnings = append(l.Warnings, fmt.Sprintf("typecheck %s: %v", path, err))
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, asts, info) // errors already collected
	return &Package{Name: name, Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
}

// Import implements types.Importer. Module-local paths are loaded from
// source (without test files); everything else goes through the stdlib
// source importer, degrading to an empty stub on failure.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		return l.importLocal(path)
	}
	pkg, err := l.src.Import(path)
	if err != nil || pkg == nil {
		l.Warnings = append(l.Warnings, fmt.Sprintf("import %s: %v (stubbed)", path, err))
		pkg = stubPackage(path)
	}
	l.imports[path] = pkg
	return pkg, nil
}

func (l *Loader) importLocal(path string) (*types.Package, error) {
	if l.loading[path] {
		l.Warnings = append(l.Warnings, fmt.Sprintf("import cycle through %s (stubbed)", path))
		return stubPackage(path), nil
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.Root
	if path != l.ModPath {
		dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
	}
	files, err := l.parseDir(dir, false)
	if err != nil || len(files) == 0 {
		l.Warnings = append(l.Warnings, fmt.Sprintf("import %s: %v (stubbed)", path, err))
		pkg := stubPackage(path)
		l.imports[path] = pkg
		return pkg, nil
	}
	p := l.check(files[0].AST.Name.Name, path, dir, files)
	if p.Types != nil {
		// Mark complete even on partial errors so dependents can use it.
		p.Types.MarkComplete()
	}
	l.imports[path] = p.Types
	l.locals[path] = p
	return p.Types, nil
}

func stubPackage(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg
}
