package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Call classification shared by the analyzers. Classification is
// type-driven where possible (receiver resolves to pmem.Device /
// pmem.Batch, or to a sync/atomic type); where type information is
// incomplete it falls back to conservative name-based heuristics so the
// suite degrades rather than going silent.

// callee splits a call into its selector receiver and method name.
// Plain function calls (ident callees) return name with a nil recv.
func callee(call *ast.CallExpr) (recv ast.Expr, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.X, fn.Sel.Name
	case *ast.Ident:
		return nil, fn.Name
	}
	return nil, ""
}

// namedIn reports whether t (after pointer indirection) is the named
// type typeName declared in a package whose import path ends in
// pkgSuffix.
func namedIn(t types.Type, pkgSuffix, typeName string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// recvType resolves the static type of a call's receiver expression,
// or nil when type information is missing.
func recvType(pkg *Package, recv ast.Expr) types.Type {
	if recv == nil {
		return nil
	}
	if tv, ok := pkg.Info.Types[recv]; ok && tv.Type != nil {
		return tv.Type
	}
	return nil
}

// exprPath renders a receiver expression as a stable textual path for
// matching lock/unlock pairs: identifiers and field selections joined
// by dots, with every index normalized to [*] (so s.locks[i] and
// s.locks[j] match). Expressions containing calls or other unmatchable
// forms render as "".
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "[*]"
	case *ast.StarExpr:
		return exprPath(e.X)
	case *ast.UnaryExpr:
		return exprPath(e.X)
	}
	return ""
}

// isDeviceCall reports whether call invokes one of names as a method on
// pmem.Device. Falls back to matching receivers spelled "dev"/"device"
// (or ending in ".dev"/".device") when types did not resolve.
func isDeviceCall(pkg *Package, call *ast.CallExpr, names ...string) bool {
	recv, method := callee(call)
	if recv == nil || !contains(names, method) {
		return false
	}
	if t := recvType(pkg, recv); t != nil {
		return namedIn(t, "internal/pmem", "Device")
	}
	path := exprPath(recv)
	return path == "dev" || path == "device" ||
		strings.HasSuffix(path, ".dev") || strings.HasSuffix(path, ".device")
}

// isBatchCall reports whether call invokes one of names on pmem.Batch.
func isBatchCall(pkg *Package, call *ast.CallExpr, names ...string) bool {
	recv, method := callee(call)
	if recv == nil || !contains(names, method) {
		return false
	}
	if t := recvType(pkg, recv); t != nil {
		return namedIn(t, "internal/pmem", "Batch")
	}
	path := exprPath(recv)
	return path == "batch" || strings.HasSuffix(path, ".batch") || path == "b"
}

// atomicOps are the mutating/reading operation names shared by the
// sync/atomic package functions and the atomic.IntN/UintN/... methods.
var atomicWriteOps = []string{"Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

// isAtomicPublish reports whether call is an atomic store-like
// operation: a sync/atomic package function (StoreUint64, AddUint32,
// OrUint32, ...) or a method on one of the sync/atomic value types
// (atomic.Uint64, atomic.Bool, ...). These are the "publish" points the
// persistorder analyzer orders against flushes.
func isAtomicPublish(pkg *Package, call *ast.CallExpr) bool {
	recv, method := callee(call)
	if recv == nil {
		return false
	}
	// Package function: atomic.StoreUint64(&x, v) etc.
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		if obj, ok := pkg.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				if pn.Imported().Path() == "sync/atomic" {
					for _, op := range atomicWriteOps {
						if strings.HasPrefix(method, op) {
							return true
						}
					}
				}
				return false
			}
		}
	}
	// Method on an atomic value type: x.durable.Store(v) etc.
	if !contains(atomicWriteOps, method) {
		return false
	}
	if t := recvType(pkg, recv); t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
				return obj.Pkg().Path() == "sync/atomic"
			}
		}
	}
	return false
}

// isAtomicFuncCall reports whether call is any sync/atomic package
// function, returning the function name.
func isAtomicFuncCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	recv, method := callee(call)
	if recv == nil {
		return "", false
	}
	id, ok := ast.Unparen(recv).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return "", false
	}
	pn, ok := obj.(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return method, true
}

// localBatchObjs returns the variable objects bound to a batch created
// in this scope (b := dev.NewBatch(), or var b = dev.NewBatch()). A
// scope that creates a batch owns its fence; a scope that only receives
// one (parameter, struct field, channel message) flushes into it on the
// owner's behalf.
func localBatchObjs(pkg *Package, scope funcScope) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isDeviceCall(pkg, call, "NewBatch") {
			return
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Values {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return objs
}

// isForeignBatchCall reports whether call is a method on a pmem.Batch
// the scope did not create: its fence is the batch owner's duty (the
// sharded Reproduce appliers flush per-shard into the group's batch;
// the ordering loop fences once at the join barrier). Requires resolved
// type information — name-fallback receivers are never foreign, so the
// exemption can only relax a call the types prove is a Batch.
func isForeignBatchCall(pkg *Package, call *ast.CallExpr, local map[types.Object]bool) bool {
	recv, _ := callee(call)
	if recv == nil {
		return false
	}
	t := recvType(pkg, recv)
	if t == nil || !namedIn(t, "internal/pmem", "Batch") {
		return false
	}
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		if obj := pkg.Info.Uses[id]; obj != nil && local[obj] {
			return false
		}
	}
	return true
}

// batchEscapes returns the positions where a locally created batch is
// used other than as a Flush/Fence receiver — passed as a call
// argument, stored in a composite literal, sent on a channel. An escape
// hands the batch to code that will flush into it, so for fence/flush
// pairing it is flush-like evidence that the scope's fence orders real
// work.
func batchEscapes(pkg *Package, scope funcScope, local map[types.Object]bool) []token.Pos {
	if len(local) == 0 {
		return nil
	}
	recvIdent := make(map[token.Pos]bool)
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name := callee(call); recv != nil && (name == "Flush" || name == "Fence") {
			if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
				recvIdent[id.Pos()] = true
			}
		}
		return true
	})
	var escapes []token.Pos
	walkScope(scope.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Uses[id]; obj != nil && local[obj] && !recvIdent[id.Pos()] {
			escapes = append(escapes, id.Pos())
		}
		return true
	})
	return escapes
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

// funcScopes yields every function-like body in file as an independent
// analysis scope: each FuncDecl and each FuncLit. Nested FuncLits are
// separate scopes and are NOT revisited by the enclosing scope's
// walker, since events inside a closure do not execute in the enclosing
// function's statement order.
type funcScope struct {
	name string // declared name, or "func literal"
	body *ast.BlockStmt
	decl *ast.FuncDecl // nil for literals
}

func funcScopes(file *ast.File) []funcScope {
	var scopes []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, funcScope{name: n.Name.Name, body: n.Body, decl: n})
			}
		case *ast.FuncLit:
			scopes = append(scopes, funcScope{name: "func literal", body: n.Body})
		}
		return true
	})
	return scopes
}

// walkScope walks body, visiting nodes but not descending into nested
// FuncLits (which form their own scopes).
func walkScope(body *ast.BlockStmt, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return visit(n)
	})
}
