package lint

// ReportSchema is the version of the machine-readable report format
// emitted by `dudelint -json`. The schema is:
//
//	{
//	  "schema": 1,
//	  "diagnostics": [ {"file","line","col","analyzer","message"}, ... ],
//	  "suppressed": <total findings silenced by ignore directives>,
//	  "counts": { "<analyzer>": <unsuppressed findings>, ... },
//	  "warnings": [ "<loader problem>", ... ]
//	}
//
// counts carries a key for every analyzer that ran (zeros included),
// so a consumer can both detect regressions per analyzer and notice a
// check silently disappearing. Consumers must reject any report whose
// schema version they do not know.
const ReportSchema = 1

// Report is the versioned machine-readable form of a Result.
type Report struct {
	Schema      int            `json:"schema"`
	Diagnostics []Diagnostic   `json:"diagnostics"`
	Suppressed  int            `json:"suppressed"`
	Counts      map[string]int `json:"counts"`
	Warnings    []string       `json:"warnings,omitempty"`
}

// NewReport builds the versioned report for res as produced by a run of
// analyzers (nil means All).
func NewReport(res *Result, analyzers []*Analyzer) Report {
	if analyzers == nil {
		analyzers = All
	}
	rep := Report{
		Schema:      ReportSchema,
		Diagnostics: res.Diags,
		Suppressed:  res.Suppressed,
		Counts:      make(map[string]int, len(analyzers)+1),
		Warnings:    res.Warnings,
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	for _, a := range analyzers {
		rep.Counts[a.Name] = 0
	}
	for _, d := range res.Diags {
		rep.Counts[d.Analyzer]++
	}
	return rep
}
