package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// analyzerTraceStamp checks that observability stamps stay outside
// persist-ordered regions. A flush→fence window is the code the persist
// barrier orders: between a Device.FlushRange / Batch.Flush and the
// fence that closes it, the only stores that belong are the ones being
// made durable. A trace stamp there is wrong twice over: the stamp's
// volatile ring write interleaves extra work into the measured barrier
// path (skewing the very fence-duration histogram it feeds), and a
// stamp that reads the clock mid-window brackets only part of the
// flush+fence sequence, so the recorded fence latency silently excludes
// the barrier. Stamps must bracket the window (before the first flush
// or after the closing fence), which is also where the pipeline takes
// them.
//
// The pmem and obs packages themselves and test files are exempt.
var analyzerTraceStamp = &Analyzer{
	Name: "tracestamp",
	Doc:  "trace stamps must not sit inside an open flush→fence persist window",
	Run:  runTraceStamp,
}

// obsStampMethods are the Observer calls that stamp trace rings or read
// the trace clock.
var obsStampMethods = []string{
	"Now", "Commit", "GroupSealed", "GroupPersisted", "GroupApplied",
	"DurableAdvanced", "ReproducedAdvanced", "AckedAdvanced",
	"ReplShipped", "ReplSent", "ReplicaFenced",
}

// isObsStampCall reports whether call invokes a stamp method on
// obs.Observer. Falls back to receivers spelled "obs" (or ending in
// ".obs") when types did not resolve.
func isObsStampCall(pkg *Package, call *ast.CallExpr) bool {
	recv, method := callee(call)
	if recv == nil || !contains(obsStampMethods, method) {
		return false
	}
	if t := recvType(pkg, recv); t != nil {
		return namedIn(t, "internal/obs", "Observer")
	}
	path := exprPath(recv)
	return path == "obs" || strings.HasSuffix(path, ".obs")
}

func runTraceStamp(pass *Pass) {
	name := strings.TrimSuffix(pass.Pkg.Name, "_test")
	if name == "pmem" || name == "obs" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkTraceStampScope(pass, scope)
		}
	}
}

type stampEvent struct {
	pos  token.Pos
	kind int // 0 = flush, 1 = fence, 2 = stamp
	seq  int // emission order among flush/fence events sharing a pos
	name string
}

func checkTraceStampScope(pass *Pass, scope funcScope) {
	// The flush/fence stream is the interprocedural one, so a
	// self-contained callee (flush+fence) opens and closes its window
	// atomically at the call and stamps after it stay legal, while a
	// callee's trailing unfenced flush leaves the window open across
	// the rest of the caller.
	var events []stampEvent
	for _, ev := range persistEvents(pass.Prog, pass.Pkg, scope) {
		switch ev.kind {
		case pevFlush, pevCoveredFlush:
			events = append(events, stampEvent{pos: ev.pos, kind: 0, seq: len(events)})
		case pevFence:
			events = append(events, stampEvent{pos: ev.pos, kind: 1, seq: len(events)})
		}
	}
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isObsStampCall(pass.Pkg, call) {
			_, method := callee(call)
			events = append(events, stampEvent{pos: call.Pos(), kind: 2, name: method})
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].seq < events[j].seq
	})
	open := false
	for _, ev := range events {
		switch ev.kind {
		case 0:
			open = true
		case 1:
			open = false
		case 2:
			if open {
				pass.Reportf(ev.pos,
					"trace stamp %s in %s sits inside an open flush→fence window: stamp before the flush or after the fence so the barrier path stays pure and the fence measurement brackets the whole barrier",
					ev.name, scope.name)
			}
		}
	}
}
