package lint

import (
	"go/ast"
	"go/token"
)

// analyzerUnlockPath finds mutex acquisitions that some return path can
// exit without releasing. A Lock/RLock is safe when the function has a
// matching deferred Unlock/RUnlock (directly or inside a deferred
// closure); without one, every return point after the Lock — including
// the implicit return at the closing brace — must be preceded by a
// matching Unlock in statement order.
//
// Lock expressions are matched textually with indices normalized, so
// s.locks[i].Lock() pairs with s.locks[j].Unlock(). Intentional
// cross-function holds (pause gates released by a Resume method)
// suppress with a justification.
var analyzerUnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "a Lock without defer must be Unlocked on every return path",
	Run:  runUnlockPath,
}

func runUnlockPath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, scope := range funcScopes(f.AST) {
			checkUnlockScope(pass, scope)
		}
	}
}

type lockEvent struct {
	pos  token.Pos
	path string
	read bool // RLock/RUnlock
}

func checkUnlockScope(pass *Pass, scope funcScope) {
	var locks, unlocks, deferred []lockEvent
	var returns []token.Pos

	classify := func(call *ast.CallExpr) (ev lockEvent, isLock, isUnlock bool) {
		recv, name := callee(call)
		if recv == nil {
			return
		}
		path := exprPath(recv)
		if path == "" {
			return
		}
		switch name {
		case "Lock", "RLock":
			return lockEvent{call.Pos(), path, name == "RLock"}, true, false
		case "Unlock", "RUnlock":
			return lockEvent{call.Pos(), path, name == "RUnlock"}, false, true
		}
		return
	}

	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer x.Unlock() or defer func() { ...; x.Unlock() }()
			if ev, _, isUnlock := classify(n.Call); isUnlock {
				deferred = append(deferred, ev)
				return true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if ev, _, isUnlock := classify(call); isUnlock {
							deferred = append(deferred, ev)
						}
					}
					return true
				})
			}
			return true
		case *ast.CallExpr:
			if ev, isLock, isUnlock := classify(n); isLock {
				locks = append(locks, ev)
			} else if isUnlock {
				unlocks = append(unlocks, ev)
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	// The closing brace is the implicit return.
	returns = append(returns, scope.body.Rbrace)

	for _, lk := range locks {
		if hasMatch(deferred, lk, func(token.Pos) bool { return true }) {
			continue
		}
		flagged := false
		for _, ret := range returns {
			if ret <= lk.pos || flagged {
				continue
			}
			if !hasMatch(unlocks, lk, func(p token.Pos) bool { return p > lk.pos && p < ret }) {
				line := pass.Pkg.Fset.Position(ret).Line
				pass.Reportf(lk.pos,
					"%s is locked in %s without defer, and the return path at line %d has no matching %s before it",
					lk.path, scope.name, line, unlockName(lk))
				flagged = true
			}
		}
	}
}

func unlockName(lk lockEvent) string {
	if lk.read {
		return "RUnlock"
	}
	return "Unlock"
}

func hasMatch(events []lockEvent, lk lockEvent, where func(token.Pos) bool) bool {
	for _, e := range events {
		if e.path == lk.path && e.read == lk.read && where(e.pos) {
			return true
		}
	}
	return false
}
