package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerUnlockPath finds mutex acquisitions that some return path can
// exit without releasing. A Lock/RLock is safe when the function has a
// matching deferred Unlock/RUnlock (directly or inside a deferred
// closure); without one, every return point after the Lock — including
// the implicit return at the closing brace — must be preceded by a
// matching Unlock in statement order.
//
// Lock expressions are matched textually with indices normalized, so
// s.locks[i].Lock() pairs with s.locks[j].Unlock().
//
// The check consults callee summaries (see summary.go) in two ways.
// First, a call to a pure releaser — a function whose summary releases
// a lock it never acquired, like ResumePersist — counts as the
// matching unlock at the call site (receiver paths are normalized, so
// s.resume() releasing "@.mu" unlocks "s.mu" for the caller), and a
// deferred releaser call counts as a deferred unlock. Second, the
// pause-gate pattern needs no suppression at all: a lock deliberately
// held across the function boundary is recognized by the existence of
// a sibling pure releaser of the same receiver-typed path in the same
// directory (PausePersist leaks the gates that ResumePersist
// releases), and is exempt. The cost of the exemption is that a
// genuine leak of a path that also has a dedicated releaser on the
// same type goes unflagged — acceptable, because such a pair is the
// gate pattern by construction.
var analyzerUnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc:  "a Lock without defer must be Unlocked on every return path",
	Run:  runUnlockPath,
}

func runUnlockPath(pass *Pass) {
	releasers := siblingReleasers(pass)
	for _, f := range pass.Pkg.Files {
		for _, scope := range funcScopes(f.AST) {
			checkUnlockScope(pass, scope, releasers)
		}
	}
}

// siblingReleasers collects the receiver-normalized lock paths some
// function in the package's directory purely releases. Both the
// primary and the external-test view of a directory share the set.
func siblingReleasers(pass *Pass) map[lockKey]bool {
	rel := make(map[lockKey]bool)
	if pass.Prog == nil {
		return rel
	}
	for _, fi := range pass.Prog.funcs {
		if fi.Pkg.Dir != pass.Pkg.Dir {
			continue
		}
		for _, k := range fi.Sum.Releases {
			rel[k] = true
		}
	}
	return rel
}

type lockEvent struct {
	pos  token.Pos
	path string
	read bool // RLock/RUnlock
}

func checkUnlockScope(pass *Pass, scope funcScope, releasers map[lockKey]bool) {
	var locks, unlocks, deferred []lockEvent
	var returns []token.Pos

	classify := func(call *ast.CallExpr) (ev lockEvent, isLock, isUnlock bool) {
		recv, name := callee(call)
		if recv == nil {
			return
		}
		path := exprPath(recv)
		if path == "" {
			return
		}
		switch name {
		case "Lock", "RLock":
			return lockEvent{call.Pos(), path, name == "RLock"}, true, false
		case "Unlock", "RUnlock":
			return lockEvent{call.Pos(), path, name == "RUnlock"}, false, true
		}
		return
	}

	// calleeReleases maps a call to a pure releaser (s.resume()
	// releasing "@.mu") onto the unlock events it performs for the
	// caller, with the receiver path substituted back in.
	calleeReleases := func(call *ast.CallExpr) []lockEvent {
		fi := pass.Prog.FuncOf(pass.Pkg, call)
		if fi == nil || len(fi.Sum.Releases) == 0 {
			return nil
		}
		recv, _ := callee(call)
		recvPath := exprPath(recv)
		var evs []lockEvent
		for _, k := range fi.Sum.Releases {
			path := k.path
			if strings.HasPrefix(path, "@") {
				if recvPath == "" {
					continue
				}
				path = recvPath + path[1:]
			}
			evs = append(evs, lockEvent{call.Pos(), path, k.read})
		}
		return evs
	}

	walkScope(scope.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer x.Unlock(), defer s.resume(), or
			// defer func() { ...; x.Unlock() }()
			if ev, _, isUnlock := classify(n.Call); isUnlock {
				deferred = append(deferred, ev)
				return true
			}
			deferred = append(deferred, calleeReleases(n.Call)...)
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if ev, _, isUnlock := classify(call); isUnlock {
							deferred = append(deferred, ev)
						} else {
							deferred = append(deferred, calleeReleases(call)...)
						}
					}
					return true
				})
			}
			return true
		case *ast.CallExpr:
			if ev, isLock, isUnlock := classify(n); isLock {
				locks = append(locks, ev)
			} else if isUnlock {
				unlocks = append(unlocks, ev)
			} else {
				unlocks = append(unlocks, calleeReleases(n)...)
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		}
		return true
	})

	// The closing brace is the implicit return.
	returns = append(returns, scope.body.Rbrace)

	recv := ""
	if scope.decl != nil {
		recv = recvIdent(scope.decl)
	}
	for _, lk := range locks {
		if hasMatch(deferred, lk, func(token.Pos) bool { return true }) {
			continue
		}
		if releasers[lockKeyFor(lk.path, lk.read, recv, scope.decl)] {
			// Pause-gate pattern: a sibling pure releaser owns the
			// matching unlock, so the cross-function hold is deliberate.
			continue
		}
		flagged := false
		for _, ret := range returns {
			if ret <= lk.pos || flagged {
				continue
			}
			if !hasMatch(unlocks, lk, func(p token.Pos) bool { return p > lk.pos && p < ret }) {
				line := pass.Pkg.Fset.Position(ret).Line
				pass.Reportf(lk.pos,
					"%s is locked in %s without defer, and the return path at line %d has no matching %s before it",
					lk.path, scope.name, line, unlockName(lk))
				flagged = true
			}
		}
	}
}

func unlockName(lk lockEvent) string {
	if lk.read {
		return "RUnlock"
	}
	return "Unlock"
}

func hasMatch(events []lockEvent, lk lockEvent, where func(token.Pos) bool) bool {
	for _, e := range events {
		if e.path == lk.path && e.read == lk.read && where(e.pos) {
			return true
		}
	}
	return false
}
