package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestReportRoundTrip pins the versioned -json schema: a report
// marshals with the documented keys and unmarshals back to an equal
// value, so CI consumers can parse it by schema version.
func TestReportRoundTrip(t *testing.T) {
	res := &Result{
		Diags: []Diagnostic{
			{File: "a.go", Line: 3, Col: 7, Analyzer: "persistorder", Message: "m1"},
			{File: "b.go", Line: 1, Col: 1, Analyzer: "persistorder", Message: "m2"},
		},
		Suppressed: 2,
		Warnings:   []string{"w"},
	}
	rep := NewReport(res, nil)
	if rep.Schema != ReportSchema {
		t.Fatalf("Schema = %d, want %d", rep.Schema, ReportSchema)
	}
	if got := rep.Counts["persistorder"]; got != 2 {
		t.Errorf("Counts[persistorder] = %d, want 2", got)
	}
	for _, a := range All {
		if _, ok := rep.Counts[a.Name]; !ok {
			t.Errorf("Counts missing analyzer %q (zero-filled keys are part of the schema)", a.Name)
		}
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"schema", "diagnostics", "suppressed", "counts", "warnings"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("marshaled report missing key %q", k)
		}
	}

	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != rep.Schema || back.Suppressed != rep.Suppressed ||
		len(back.Diagnostics) != len(rep.Diagnostics) || len(back.Counts) != len(rep.Counts) {
		t.Errorf("round trip changed the report: got %+v, want %+v", back, rep)
	}
	for i := range rep.Diagnostics {
		if back.Diagnostics[i] != rep.Diagnostics[i] {
			t.Errorf("diagnostic %d changed in round trip: got %+v, want %+v",
				i, back.Diagnostics[i], rep.Diagnostics[i])
		}
	}
}

// TestReportEmptyDiagnostics pins that a clean run emits
// "diagnostics": [] rather than null, so consumers can index it
// unconditionally.
func TestReportEmptyDiagnostics(t *testing.T) {
	raw, err := json.Marshal(NewReport(&Result{}, nil))
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(raw, &keys); err != nil {
		t.Fatal(err)
	}
	if _, ok := keys["diagnostics"].([]any); !ok {
		t.Errorf("diagnostics = %v, want an empty JSON array", keys["diagnostics"])
	}
}

// TestLookup pins the -run flag's analyzer resolution.
func TestLookup(t *testing.T) {
	for _, a := range All {
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the analyzer", a.Name)
		}
	}
	if got := Lookup("nope"); got != nil {
		t.Errorf("Lookup(nope) = %v, want nil", got)
	}
}

// TestLintSelfClean lints the linter: internal/lint itself must pass
// its own suite with no suppressions.
func TestLintSelfClean(t *testing.T) {
	root := moduleRoot(t)
	res, err := Run(root, []string{filepath.Join(root, "internal", "lint")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	if res.Suppressed != 0 {
		t.Errorf("internal/lint needed %d suppressions, want 0", res.Suppressed)
	}
}
