package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func runTestdata(t *testing.T, root, pkg string, analyzers []*Analyzer) *Result {
	t.Helper()
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", pkg)
	res, err := Run(root, []string{dir}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func formatDiags(res *Result) string {
	var b strings.Builder
	for _, d := range res.Diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestGoldenAnalyzers runs each analyzer alone over its testdata
// package and compares the full diagnostic list against a golden file.
// The golden file demonstrates the true positives; every unflagged
// construct in the testdata file is a verified correct negative.
func TestGoldenAnalyzers(t *testing.T) {
	root := moduleRoot(t)
	for _, a := range All {
		t.Run(a.Name, func(t *testing.T) {
			res := runTestdata(t, root, a.Name, []*Analyzer{a})
			if !*update && len(res.Diags) == 0 {
				t.Fatalf("analyzer %s found no true positives in its testdata", a.Name)
			}
			compareGolden(t, a.Name, formatDiags(res))
		})
	}
}

// TestBlackboxExemption pins the flight-recorder carve-out: a package
// named blackbox using the batched-barrier API (stores covered by a
// later Flush call, flushes fenced by a later Sync call) lints clean
// under the full analyzer suite, with no //dudelint:ignore directives.
func TestBlackboxExemption(t *testing.T) {
	root := moduleRoot(t)
	res := runTestdata(t, root, "blackbox", nil)
	compareGolden(t, "blackbox", formatDiags(res))
	if res.Suppressed != 0 {
		t.Errorf("fixture needed %d suppressions, want 0", res.Suppressed)
	}
}

// TestSuppression checks the //dudelint:ignore machinery: justified
// directives silence findings, mismatched or malformed ones do not,
// and malformed directives are themselves diagnosed.
func TestSuppression(t *testing.T) {
	root := moduleRoot(t)
	res := runTestdata(t, root, "suppress", nil)
	if want := 2; res.Suppressed != want {
		t.Errorf("suppressed = %d, want %d", res.Suppressed, want)
	}
	compareGolden(t, "suppress", formatDiags(res))
}

// TestRepoLintClean wires the suite into tier-1 verification: the
// repository's own packages must lint clean (fixed or explicitly
// suppressed with a justification).
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole module; skipped in -short mode")
	}
	root := moduleRoot(t)
	res, err := RunModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	if len(res.Diags) > 0 {
		t.Log("fix the findings above or add //dudelint:ignore <analyzer> <reason>")
	}
}

// TestDiagnosticOrdering pins the stable sort CI relies on to diff
// -json runs: file, then line, column, analyzer, message.
func TestDiagnosticOrdering(t *testing.T) {
	ds := []Diagnostic{
		{File: "b.go", Line: 1, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 9, Col: 1, Analyzer: "z", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "b", Message: "m"},
		{File: "a.go", Line: 2, Col: 5, Analyzer: "a", Message: "m"},
		{File: "a.go", Line: 2, Col: 1, Analyzer: "z", Message: "m"},
	}
	sortDiags(ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.String())
	}
	want := []string{
		"a.go:2:1: z: m",
		"a.go:2:5: a: m",
		"a.go:2:5: b: m",
		"a.go:9:1: z: m",
		"b.go:1:1: z: m",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
