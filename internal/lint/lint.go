// Package lint is a from-scratch static-analysis framework for this
// repository, built only on go/ast, go/parser and go/types (go/packages
// is unavailable, so parsing and type-checking are driven directly by
// the loader in load.go).
//
// It machine-checks the persist-ordering and concurrency invariants the
// DudeTM reproduction rests on: a store to the simulated NVM device is
// durable only after a FlushRange/Persist of its lines followed by a
// Fence, the durable ID may only be published after the covering log
// records are persistent, and the hot paths must not mix atomic and
// plain access to the same field. See the analyzer files (persistorder,
// fencepair, atomicmix, unlockpath, crashcover) for the individual
// rules, and DESIGN.md "Checked invariants" for the paper invariant
// each one encodes.
//
// A diagnostic can be suppressed with a justified comment on the same
// line or the line directly above:
//
//	//dudelint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line:col: analyzer: message".
type Diagnostic struct {
	File     string `json:"file"` // path relative to the module root
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries one analyzer's run over one package. Prog is the
// whole-module call graph with per-function effect summaries, shared by
// every pass of a run.
type Pass struct {
	Pkg      *Package
	Analyzer *Analyzer
	Prog     *Program
	report   func(Diagnostic)
	root     string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	p.report(Diagnostic{
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the analyzer suite, in the order diagnostics are attributed.
var All = []*Analyzer{
	analyzerPersistOrder,
	analyzerFencePair,
	analyzerAtomicMix,
	analyzerUnlockPath,
	analyzerCrashCover,
	analyzerTraceStamp,
	analyzerFenceBudget,
	analyzerNoAlloc,
}

// Lookup returns the analyzer named name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func analyzerNames() map[string]bool {
	m := make(map[string]bool, len(All))
	for _, a := range All {
		m[a.Name] = true
	}
	return m
}

// ignoreDirective is one parsed //dudelint:ignore comment. used is set
// when the directive suppresses at least one diagnostic; directives
// that suppress nothing across a run covering their analyzers are
// themselves reported as stale.
type ignoreDirective struct {
	file      string
	line      int
	col       int
	analyzers map[string]bool // nil means malformed
	reason    string
	used      bool
}

const ignorePrefix = "//dudelint:ignore"

// ignoresForFile parses every suppression directive in f. Malformed
// directives (missing analyzer or reason, unknown analyzer name) are
// returned separately as diagnostics of the pseudo-analyzer "dudelint".
func ignoresForFile(fset *token.FileSet, f *ast.File, root string) (map[int][]*ignoreDirective, []Diagnostic) {
	known := analyzerNames()
	byLine := make(map[int][]*ignoreDirective)
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			file := pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			malformed := func(msg string) {
				bad = append(bad, Diagnostic{
					File: file, Line: pos.Line, Col: pos.Column,
					Analyzer: "dudelint", Message: msg,
				})
			}
			if len(fields) == 0 {
				malformed("ignore directive names no analyzer (want //dudelint:ignore <analyzer> <reason>)")
				continue
			}
			names := make(map[string]bool)
			ok := true
			for _, n := range strings.Split(fields[0], ",") {
				if n != "*" && !known[n] {
					malformed(fmt.Sprintf("ignore directive names unknown analyzer %q", n))
					ok = false
					break
				}
				names[n] = true
			}
			if !ok {
				continue
			}
			if len(fields) < 2 {
				malformed("ignore directive has no justification (want //dudelint:ignore <analyzer> <reason>)")
				continue
			}
			byLine[pos.Line] = append(byLine[pos.Line], &ignoreDirective{
				file:      file,
				line:      pos.Line,
				col:       pos.Column,
				analyzers: names,
				reason:    strings.Join(fields[1:], " "),
			})
		}
	}
	return byLine, bad
}

// suppressed reports whether d is covered by a directive on its own
// line or the line directly above, marking the covering directive used.
func suppressed(d Diagnostic, ignores map[int][]*ignoreDirective) bool {
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, ig := range ignores[line] {
			if ig.analyzers["*"] || ig.analyzers[d.Analyzer] {
				ig.used = true
				return true
			}
		}
	}
	return false
}

// Result is the outcome of a lint run.
type Result struct {
	Diags      []Diagnostic // unsuppressed findings, sorted
	Suppressed int          // findings silenced by ignore directives
	Warnings   []string     // loader problems (partial type info etc.)
}

// Run lints the packages in dirs (module directories) with the given
// analyzers (nil means All), resolving imports against the module
// rooted at root. All packages are loaded first so the interprocedural
// program — the call graph and effect summaries every pass consults —
// covers the linted packages plus everything they transitively import
// from the module.
func Run(root string, dirs []string, analyzers []*Analyzer) (*Result, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	if analyzers == nil {
		analyzers = All
	}
	var linted []*Package
	for _, dir := range dirs {
		pkgs, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		linted = append(linted, pkgs...)
	}
	// LoadDir views first: on a function-key collision they win over the
	// import views, so a package's analysis and its summaries come from
	// the same type-check.
	prog := buildProgram(append(append([]*Package{}, linted...), loader.LocalPackages()...), root)
	res := &Result{}
	for _, pkg := range linted {
		res.lintPackage(pkg, prog, analyzers, root)
	}
	res.Warnings = loader.Warnings
	sortDiags(res.Diags)
	return res, nil
}

// RunModule lints every package of the module rooted at root.
func RunModule(root string, analyzers []*Analyzer) (*Result, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.ModuleDirs()
	if err != nil {
		return nil, err
	}
	return Run(root, dirs, analyzers)
}

func (r *Result) lintPackage(pkg *Package, prog *Program, analyzers []*Analyzer, root string) {
	ignores := make(map[int][]*ignoreDirective)
	for _, f := range pkg.Files {
		ig, bad := ignoresForFile(pkg.Fset, f.AST, root)
		for line, ds := range ig {
			ignores[line] = append(ignores[line], ds...)
		}
		r.Diags = append(r.Diags, bad...)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Pkg:      pkg,
			Analyzer: a,
			Prog:     prog,
			root:     root,
			report: func(d Diagnostic) {
				if suppressed(d, ignores) {
					r.Suppressed++
					return
				}
				r.Diags = append(r.Diags, d)
			},
		}
		a.Run(pass)
	}
	r.auditIgnores(ignores, analyzers)
}

// auditIgnores reports directives that suppressed nothing. A directive
// is only audited when every analyzer it names actually ran (a "*"
// directive needs the full suite), so partial runs cannot call a live
// suppression stale.
func (r *Result) auditIgnores(ignores map[int][]*ignoreDirective, analyzers []*Analyzer) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range All {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	for _, ds := range ignores {
		for _, ig := range ds {
			if ig.used {
				continue
			}
			covered := true
			for name := range ig.analyzers {
				if name == "*" && !fullSuite || name != "*" && !ran[name] {
					covered = false
					break
				}
			}
			if !covered {
				continue
			}
			names := make([]string, 0, len(ig.analyzers))
			for name := range ig.analyzers {
				names = append(names, name)
			}
			sort.Strings(names)
			r.Diags = append(r.Diags, Diagnostic{
				File: ig.file, Line: ig.line, Col: ig.col,
				Analyzer: "dudelint",
				Message: fmt.Sprintf("stale suppression: this directive silences no %s diagnostic; remove it",
					strings.Join(names, "/")),
			})
		}
	}
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
