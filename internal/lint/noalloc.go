package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerNoAlloc verifies the zero-allocation claim of annotated
// steady-state paths. The flight recorder's Stamp and the observability
// stamp paths are designed to be allocation-free — one heap allocation
// per transaction would put the garbage collector on the commit path —
// and the benchmarks assert it dynamically, but nothing stopped an
// innocent-looking fmt.Sprintf or append from landing there. A path
// declares the claim in its doc comment:
//
//	//dudelint:noalloc
//
// and the analyzer flags every statically detectable heap allocation
// reachable from it through the call graph: make/new, composite
// literals that escape via & or build slices/maps, append growth,
// fmt calls, string concatenation and string<->[]byte conversions,
// closures and go statements, variadic calls, and interface boxing of
// concrete arguments. Allocations in the annotated body are reported
// at the allocation; allocations in callees are reported at the call
// that reaches them, with the chain in the message. Calls the analysis
// cannot resolve (interface dispatch, func values) and the stdlib are
// the stated boundary; the pmem substrate is exempt (its bookkeeping
// simulates the device, it is not on the real hot path).
var analyzerNoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "no statically detectable heap allocation may be reachable from a //dudelint:noalloc path",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	for _, iss := range prog.issues[pass.Pkg] {
		if iss.analyzer == "noalloc" {
			pass.Reportf(iss.pos, "%s", iss.msg)
		}
	}
	w := &allocWalker{prog: prog, memo: make(map[*FuncInfo]*allocWitness)}
	for _, fi := range prog.funcsOf(pass.Pkg) {
		if !fi.NoAlloc {
			continue
		}
		for _, site := range fi.Sum.Allocs {
			pass.Reportf(site.Pos, "heap allocation on the //dudelint:noalloc path %s: %s",
				fi.Decl.Name.Name, site.What)
		}
		reported := make(map[string]bool)
		for _, call := range fi.Sum.Calls {
			cfi := prog.funcs[call.Key]
			if cfi == nil {
				continue
			}
			wit := w.witness(cfi)
			if wit == nil || reported[call.Key] {
				continue
			}
			reported[call.Key] = true
			pos := cfi.Pkg.Fset.Position(wit.site.Pos)
			chain := strings.Join(wit.chain, " → ")
			pass.Reportf(call.Pos,
				"call on the //dudelint:noalloc path %s reaches a heap allocation: %s at %s:%d (%s)",
				fi.Decl.Name.Name, wit.site.What, relPath(pass.root, pos.Filename), pos.Line, chain)
		}
	}
}

// allocWitness is the first allocation a function reaches, with the
// call chain leading to it.
type allocWitness struct {
	site  AllocSite
	chain []string
}

type allocWalker struct {
	prog     *Program
	memo     map[*FuncInfo]*allocWitness
	visiting map[*FuncInfo]bool
}

// witness returns an allocation reachable from fi (inclusive), or nil.
func (w *allocWalker) witness(fi *FuncInfo) *allocWitness {
	if wit, ok := w.memo[fi]; ok {
		return wit
	}
	if w.visiting == nil {
		w.visiting = make(map[*FuncInfo]bool)
	}
	if w.visiting[fi] {
		return nil // cycle: resolved by the caller that entered it
	}
	w.visiting[fi] = true
	defer delete(w.visiting, fi)

	var wit *allocWitness
	if len(fi.Sum.Allocs) > 0 {
		wit = &allocWitness{site: fi.Sum.Allocs[0], chain: []string{fi.Decl.Name.Name}}
	} else {
		for _, call := range fi.Sum.Calls {
			cfi := w.prog.funcs[call.Key]
			if cfi == nil {
				continue
			}
			if sub := w.witness(cfi); sub != nil {
				wit = &allocWitness{site: sub.site,
					chain: append([]string{fi.Decl.Name.Name}, sub.chain...)}
				break
			}
		}
	}
	w.memo[fi] = wit
	return wit
}

func relPath(root, file string) string {
	if rel, ok := strings.CutPrefix(file, root+"/"); ok {
		return rel
	}
	return file
}

// allocSites finds the statically detectable heap allocations in body.
// Nested function literals are themselves allocation sites (the closure
// value); their bodies run on some other activation and are not
// descended into.
func allocSites(pkg *Package, body *ast.BlockStmt) []AllocSite {
	var sites []AllocSite
	add := func(n ast.Node, what string) {
		sites = append(sites, AllocSite{n.Pos(), what})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n, "function literal (closure value escapes to the heap)")
			return false
		case *ast.GoStmt:
			add(n, "go statement (new goroutine)")
			return true
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n, "&composite literal (escapes to the heap)")
				}
			}
			return true
		case *ast.CompositeLit:
			if t := pkg.Info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n, "slice literal (backing array on the heap)")
				case *types.Map:
					add(n, "map literal")
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				tv, ok := pkg.Info.Types[n]
				if ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						add(n, "string concatenation")
					}
				}
			}
			return true
		case *ast.CallExpr:
			classifyAllocCall(pkg, n, add)
			return true
		}
		return true
	})
	return sites
}

func classifyAllocCall(pkg *Package, call *ast.CallExpr, add func(ast.Node, string)) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				add(call, "make")
				return
			case "new":
				add(call, "new")
				return
			case "append":
				add(call, "append (may grow its backing array)")
				return
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pkg.Info.Types[call.Args[0]].Type
		if isStringish(to) && isByteOrRuneSlice(from) || isByteOrRuneSlice(to) && isStringish(from) {
			add(call, "string/[]byte conversion copies")
		}
		return
	}

	// fmt is formatting: allocation by construction.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				add(call, "fmt."+sel.Sel.Name+" (formatting allocates)")
				return
			}
		}
	}

	// Interface boxing and variadic packing at the call boundary.
	sig := callSignature(pkg, fun)
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if i == n-1 {
				add(call, "variadic call packs arguments into a slice")
			}
			if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
				param = s.Elem()
			}
		case i < n:
			param = sig.Params().At(i).Type()
		}
		if param == nil {
			continue
		}
		if boxes(param, pkg.Info.Types[arg]) {
			add(arg, "interface conversion boxes a concrete value")
		}
	}
}

// callSignature resolves the signature of a call's function expression.
func callSignature(pkg *Package, fun ast.Expr) *types.Signature {
	tv, ok := pkg.Info.Types[fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// boxes reports whether passing a value of arg's static type to an
// interface-typed param heap-boxes it. Untyped nil and values that are
// already interfaces do not box; any concrete value may.
func boxes(param types.Type, arg types.TypeAndValue) bool {
	if param == nil || arg.Type == nil {
		return false
	}
	if _, ok := param.Underlying().(*types.Interface); !ok {
		return false
	}
	if b, ok := arg.Type.Underlying().(*types.Basic); ok {
		if b.Kind() == types.UntypedNil {
			return false
		}
	}
	if _, ok := arg.Type.Underlying().(*types.Interface); ok {
		return false
	}
	return true
}

func isStringish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
