package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerFencePair checks that write-backs and persist barriers come
// in pairs (paper §2.1: CLWB ... SFENCE). Within each function body, in
// statement order:
//
//   - a Device.Fence or Batch.Fence with no preceding flush-like call
//     is a wasted barrier (it orders nothing this function wrote back);
//   - a FlushRange or Batch.Flush never followed by a fence on any
//     textual path out of the function leaves the write-back unordered,
//     i.e. not durable.
//
// Device.Persist is a self-contained flush+fence and participates in
// neither rule. Functions that flush into a batch fenced by their
// caller suppress with a justification. The pmem package itself and
// test files (which deliberately leave data unflushed to exercise
// Crash()) are exempt.
var analyzerFencePair = &Analyzer{
	Name: "fencepair",
	Doc:  "every flush needs a following fence; every fence needs a preceding flush",
	Run:  runFencePair,
}

func runFencePair(pass *Pass) {
	if strings.TrimSuffix(pass.Pkg.Name, "_test") == "pmem" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkFencePairScope(pass, scope)
		}
	}
}

func checkFencePairScope(pass *Pass, scope funcScope) {
	var flushes, fences []token.Pos
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDeviceCall(pass.Pkg, call, "FlushRange") || isBatchCall(pass.Pkg, call, "Flush"):
			flushes = append(flushes, call.Pos())
		case isDeviceCall(pass.Pkg, call, "Fence") || isBatchCall(pass.Pkg, call, "Fence"):
			fences = append(fences, call.Pos())
		}
		return true
	})
	for _, fe := range fences {
		preceded := false
		for _, fl := range flushes {
			if fl < fe {
				preceded = true
				break
			}
		}
		if !preceded {
			pass.Reportf(fe,
				"fence in %s has no preceding flush in this function: a wasted persist barrier (if the flushes happen in a caller, suppress with a reason)",
				scope.name)
		}
	}
	for _, fl := range flushes {
		followed := false
		for _, fe := range fences {
			if fe > fl {
				followed = true
				break
			}
		}
		if !followed {
			pass.Reportf(fl,
				"flush in %s is never followed by a fence before the function returns: the write-back is unordered and not durable",
				scope.name)
		}
	}
}
