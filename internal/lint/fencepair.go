package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerFencePair checks that write-backs and persist barriers come
// in pairs (paper §2.1: CLWB ... SFENCE). Within each function body, in
// statement order:
//
//   - a Device.Fence or Batch.Fence with no preceding flush-like call
//     is a wasted barrier (it orders nothing this function wrote back);
//   - a FlushRange or Batch.Flush never followed by a fence on any
//     textual path out of the function leaves the write-back unordered,
//     i.e. not durable.
//
// Device.Persist is a self-contained flush+fence and participates in
// neither rule.
//
// Batch ownership splits the rules across the sharded apply path: a
// Batch.Flush on a batch the function did not create (a parameter,
// struct field, or channel-received value — e.g. a Reproduce applier
// flushing its address shard into the group's shared batch) is exempt
// from the following-fence rule, because the fence is the batch owner's
// duty at the join barrier; conversely, handing a locally created batch
// to other code (as a call argument, composite-literal field, or
// channel send) counts as flush-like evidence, so the owner's fence
// after the join is not a "wasted barrier". The pmem package itself,
// the blackbox flight recorder (whose batched-barrier API deliberately
// splits Stamp / Flush / Sync across calls so recorder write-backs ride
// the pipeline's existing fences) and test files (which deliberately
// leave data unflushed to exercise Crash()) are exempt.
var analyzerFencePair = &Analyzer{
	Name: "fencepair",
	Doc:  "every flush needs a following fence; every fence needs a preceding flush",
	Run:  runFencePair,
}

func runFencePair(pass *Pass) {
	if pkg := strings.TrimSuffix(pass.Pkg.Name, "_test"); pkg == "pmem" || pkg == "blackbox" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkFencePairScope(pass, scope)
		}
	}
}

func checkFencePairScope(pass *Pass, scope funcScope) {
	local := localBatchObjs(pass.Pkg, scope)
	var flushes, foreignFlushes, fences []token.Pos
	walkScope(scope.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isDeviceCall(pass.Pkg, call, "FlushRange") || isBatchCall(pass.Pkg, call, "Flush"):
			if isForeignBatchCall(pass.Pkg, call, local) {
				// Flushing a shard into a batch owned elsewhere: the
				// owner fences at the join barrier.
				foreignFlushes = append(foreignFlushes, call.Pos())
			} else {
				flushes = append(flushes, call.Pos())
			}
		case isDeviceCall(pass.Pkg, call, "Fence") || isBatchCall(pass.Pkg, call, "Fence"):
			fences = append(fences, call.Pos())
		}
		return true
	})
	// A local batch handed to other code is flush-like for the fence
	// rule: the fence after the join orders the escapees' flushes.
	flushLike := append(append([]token.Pos{}, flushes...), foreignFlushes...)
	flushLike = append(flushLike, batchEscapes(pass.Pkg, scope, local)...)
	for _, fe := range fences {
		preceded := false
		for _, fl := range flushLike {
			if fl < fe {
				preceded = true
				break
			}
		}
		if !preceded {
			pass.Reportf(fe,
				"fence in %s has no preceding flush in this function: a wasted persist barrier (if the flushes happen in a caller, suppress with a reason)",
				scope.name)
		}
	}
	for _, fl := range flushes {
		followed := false
		for _, fe := range fences {
			if fe > fl {
				followed = true
				break
			}
		}
		if !followed {
			pass.Reportf(fl,
				"flush in %s is never followed by a fence before the function returns: the write-back is unordered and not durable",
				scope.name)
		}
	}
}
