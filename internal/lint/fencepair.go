package lint

import (
	"strings"
)

// analyzerFencePair checks that write-backs and persist barriers come
// in pairs (paper §2.1: CLWB ... SFENCE). Within each function body, in
// statement order:
//
//   - a Device.Fence or Batch.Fence with no preceding flush-like call
//     is a wasted barrier (it orders nothing this function wrote back);
//   - a FlushRange or Batch.Flush never followed by a fence on any
//     textual path out of the function leaves the write-back unordered,
//     i.e. not durable.
//
// Device.Persist is a self-contained flush+fence: it imposes no
// obligation of its own, and its fence half closes any earlier flush
// (a fence orders every prior write-back, whoever issued it).
//
// The event stream is interprocedural (see summary.go): a statically
// resolved call contributes the flushes and fences its summary
// exports, so a helper that performs the closing fence satisfies the
// caller's flush, a self-contained helper like AppendGroup neither
// wastes nor demands a barrier, and a helper's trailing unfenced flush
// becomes an obligation at the call site. A //dudelint:ignore on the
// helper's flush stops the obligation from propagating.
//
// Batch ownership splits the rules across the sharded apply path: a
// Batch.Flush on a batch the function did not create (a parameter,
// struct field, or channel-received value — e.g. a Reproduce applier
// flushing its address shard into the group's shared batch) is exempt
// from the following-fence rule, because the fence is the batch owner's
// duty at the join barrier; conversely, handing a locally created batch
// to other code (as a call argument, composite-literal field, or
// channel send) counts as flush-like evidence, so the owner's fence
// after the join is not a "wasted barrier". The pmem package itself,
// the blackbox flight recorder (whose batched-barrier API deliberately
// splits Stamp / Flush / Sync across calls so recorder write-backs ride
// the pipeline's existing fences) and test files (which deliberately
// leave data unflushed to exercise Crash()) are exempt.
var analyzerFencePair = &Analyzer{
	Name: "fencepair",
	Doc:  "every flush needs a following fence; every fence needs a preceding flush",
	Run:  runFencePair,
}

func runFencePair(pass *Pass) {
	if pkg := strings.TrimSuffix(pass.Pkg.Name, "_test"); pkg == "pmem" || pkg == "blackbox" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkFencePairScope(pass, scope)
		}
	}
}

func checkFencePairScope(pass *Pass, scope funcScope) {
	events := persistEvents(pass.Prog, pass.Pkg, scope)
	for i, ev := range events {
		switch ev.kind {
		case pevFence:
			if ev.via != "" {
				// A callee's fence orders the callee's own flushes; the
				// wasted-barrier rule is about fences this function
				// issues itself.
				continue
			}
			preceded := false
			for _, fl := range events[:i] {
				if fl.kind == pevFlush || fl.kind == pevCoveredFlush || fl.kind == pevEscape {
					preceded = true
					break
				}
			}
			if !preceded {
				pass.Reportf(ev.pos,
					"fence in %s has no preceding flush in this function: a wasted persist barrier (if the flushes happen in a caller, suppress with a reason)",
					scope.name)
			}
		case pevFlush:
			followed := false
			for _, fe := range events[i+1:] {
				if fe.kind == pevFence {
					followed = true
					break
				}
			}
			if followed {
				continue
			}
			if ev.via != "" {
				pass.Reportf(ev.pos,
					"the call to %s in %s leaves a flush that is never followed by a fence before the function returns: the write-back is unordered and not durable",
					ev.via, scope.name)
			} else {
				pass.Reportf(ev.pos,
					"flush in %s is never followed by a fence before the function returns: the write-back is unordered and not durable",
					scope.name)
			}
		}
	}
}
