package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerAtomicMix finds struct fields and package-level variables
// that are accessed both through sync/atomic package functions (by
// address: atomic.AddUint64(&x.f, 1)) and through plain reads or
// writes elsewhere in the same package. Mixed access is a data race:
// the plain access is invisible to the atomic protocol, which is
// exactly the failure mode of a clock or version word in the stm /
// redolog hot paths. Fields of the typed atomic.* value kinds are
// immune by construction and not tracked.
//
// Initialization in composite literals (Device{dirty: make(...)}) is
// pre-publication and not counted as plain access.
var analyzerAtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never be accessed plainly in the same package",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	pkg := pass.Pkg
	// Pass 1: collect every variable reached by address through a
	// sync/atomic function call, and remember those exact AST nodes as
	// sanctioned atomic accesses.
	atomicSites := make(map[types.Object][]token.Pos)
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := isAtomicFuncCall(pkg, call); !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				base, node := addressedVar(pkg, un.X)
				if base != nil {
					atomicSites[base] = append(atomicSites[base], un.Pos())
					sanctioned[node] = true
				}
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return
	}
	// Pass 2: any other use of those variables is a plain access.
	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			obj := usedVar(pkg, n)
			if obj == nil {
				return true
			}
			sites, tracked := atomicSites[obj]
			if !tracked || sanctionedAccess(n, stack, sanctioned) || compositeKey(n, stack) {
				return true
			}
			pass.Reportf(n.Pos(),
				"%s is accessed with sync/atomic %d time(s) elsewhere in this package; this plain access is a data race",
				obj.Name(), len(sites))
			return true
		})
	}
}

// addressedVar resolves &expr's base variable: a struct field selector
// (possibly through indexing) or a package-level variable declared in
// this package. Returns the object and the AST node that names it.
func addressedVar(pkg *Package, e ast.Expr) (types.Object, ast.Node) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			obj := pkg.Info.Uses[x.Sel]
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return v, x
			}
			return nil, nil
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() == pkg.Types.Scope() {
				return v, x
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// usedVar reports the tracked-variable object n refers to, if n is a
// field selector or package-level identifier use.
func usedVar(pkg *Package, n ast.Node) types.Object {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && !v.IsField() && pkg.Types != nil && v.Parent() == pkg.Types.Scope() {
			return v
		}
	}
	return nil
}

// sanctionedAccess reports whether node n (or a selector ancestor that
// was recorded in pass 1) is the operand of a sanctioned atomic call.
func sanctionedAccess(n ast.Node, stack []ast.Node, sanctioned map[ast.Node]bool) bool {
	if sanctioned[n] {
		return true
	}
	// The ident inside a sanctioned selector (the "f" of x.f) also
	// appears in the walk; treat any ancestor being sanctioned as ok.
	for _, a := range stack {
		if sanctioned[a] {
			return true
		}
	}
	return false
}

// compositeKey reports whether n is the key of a composite-literal
// field initialization (Device{dirty: ...}).
func compositeKey(n ast.Node, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-2].(*ast.KeyValueExpr)
	return ok && kv.Key == n
}
