package lint

import (
	"go/token"
	"strings"
)

// analyzerPersistOrder encodes the core durability invariant of the
// paper (§2.1, §3.4): a store to persistent memory is durable only
// after its cache lines are written back (FlushRange / Persist /
// Batch.Flush) and ordered by a fence. Within each function body it
// checks two things, in statement order:
//
//  1. every pmem.Device Store/Store8 is eventually covered by a
//     flush-like call before the function returns, and
//  2. no atomic "publish" (a sync/atomic store such as advancing the
//     durable ID) happens between a device store and its first flush —
//     publishing a commit marker before the data is flushed is exactly
//     the bug class that survives testing and only fails under Crash().
//
// The event stream is interprocedural: every statically resolved call
// expands into the persist effects its summary exports (see
// summary.go), so a store whose flush lives in a helper is covered,
// and a helper's trailing unflushed store or atomic publish surfaces
// at the call site. Functions that intentionally defer durability to
// their caller (e.g. an undo-log Tx.Store whose flush happens at
// commit) carry a //dudelint:ignore persistorder comment with the
// justification; the suppression also stops the obligation from
// propagating to callers. The pmem package itself — the substrate that
// defines Store and Flush — the blackbox flight recorder (a second
// substrate: Stamp stores a slot that the batched Flush/Sync write back
// later, by design) and test files are exempt.
//
// The sharded Reproduce apply path needs no suppression: an applier
// that stores its address shard and flushes it into the group's shared
// batch satisfies rule 1 (Batch.Flush covers the stores regardless of
// who owns the batch — the owner fences at the join barrier), and rule
// 2 still fires if the applier publishes completion atomically before
// its flushes, which is the crash bug the barrier exists to prevent.
var analyzerPersistOrder = &Analyzer{
	Name: "persistorder",
	Doc:  "pmem stores must be flushed before return and before any atomic publish",
	Run:  runPersistOrder,
}

func runPersistOrder(pass *Pass) {
	if pkg := strings.TrimSuffix(pass.Pkg.Name, "_test"); pkg == "pmem" || pkg == "blackbox" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, scope := range funcScopes(f.AST) {
			checkPersistOrderScope(pass, scope)
		}
	}
}

func checkPersistOrderScope(pass *Pass, scope funcScope) {
	events := persistEvents(pass.Prog, pass.Pkg, scope)
	for i, st := range events {
		if st.kind != pevStore {
			continue
		}
		var firstFlush, firstPublish token.Pos
		for _, e := range events[i+1:] {
			switch e.kind {
			case pevFlush, pevCoveredFlush:
				if firstFlush == token.NoPos {
					firstFlush = e.pos
				}
			case pevPublish:
				if firstPublish == token.NoPos {
					firstPublish = e.pos
				}
			}
		}
		what := "store to persistent memory in " + scope.name
		if st.via != "" {
			what = "store to persistent memory left unflushed by the call to " + st.via + " in " + scope.name
		}
		switch {
		case firstFlush == token.NoPos:
			pass.Reportf(st.pos,
				"%s is never covered by a FlushRange/Persist/Batch.Flush before the function returns; it is lost on Crash()",
				what)
		case firstPublish != token.NoPos && firstPublish < firstFlush:
			pub := pass.Pkg.Fset.Position(firstPublish)
			pass.Reportf(st.pos,
				"%s is published by an atomic store (line %d) before being flushed; a crash between them breaks the durable-ID invariant",
				what, pub.Line)
		}
	}
}
